// Socialrank: analytics on a power-law social network — PageRank for
// influence, connected components for reachability, triangle counting
// for clustering, and MIS for seed selection. It also demonstrates the
// paper's §5.8 finding: on scale-free graphs, warp granularity beats
// thread granularity on the GPU.
package main

import (
	"fmt"
	"log"
	"sort"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

func main() {
	g := gen.Generate(gen.InputSocial, gen.Small)
	st := graph.ComputeStats(g)
	fmt.Printf("social network: %d users, %d friendships, max degree %d\n\n",
		st.Vertices, st.Edges/2, st.MaxDegree)

	opt := algo.Options{}

	// Influence: PageRank, pull, deterministic, clause reduction.
	prCfg := styles.Config{
		Algo: styles.PR, Model: styles.CPP, Flow: styles.Pull,
		Update: styles.ReadModifyWrite, Det: styles.Deterministic,
		CPURed: styles.ClauseRed,
	}
	pr := mustRun(runner.RunCPU(g, prCfg, opt))
	type ranked struct {
		v int32
		r float32
	}
	top := make([]ranked, g.N)
	for v := int32(0); v < g.N; v++ {
		top[v] = ranked{v, pr.Rank[v]}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("most influential users (PageRank):")
	for _, u := range top[:5] {
		fmt.Printf("  user %6d  rank %.2f  degree %d\n", u.v, u.r, g.Degree(u.v))
	}

	// Reachability: connected components.
	ccCfg := styles.Config{
		Algo: styles.CC, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	cc := mustRun(runner.RunCPU(g, ccCfg, opt))
	comps := make(map[int32]int)
	for _, l := range cc.Label {
		comps[l]++
	}
	fmt.Printf("\ncommunities (connected components): %d\n", len(comps))

	// Clustering: triangle count.
	tcCfg := styles.Config{
		Algo: styles.TC, Model: styles.CPP, Iterate: styles.EdgeBased,
		Det: styles.Deterministic, Update: styles.ReadModifyWrite,
		CPURed: styles.ClauseRed, CPPSched: styles.CyclicSched,
	}
	tc := mustRun(runner.RunCPU(g, tcCfg, opt))
	fmt.Printf("triangles: %d\n", tc.Triangles)

	// Seeds: maximal independent set.
	misCfg := styles.Config{
		Algo: styles.MIS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	mis := mustRun(runner.RunCPU(g, misCfg, opt))
	seeds := 0
	for _, in := range mis.InSet {
		if in {
			seeds++
		}
	}
	fmt.Printf("independent seed set size: %d\n\n", seeds)

	// §5.8 on the GPU: thread vs warp granularity for BFS on this
	// power-law input.
	base := styles.Config{
		Algo: styles.BFS, Model: styles.CUDA, Flow: styles.Push,
		Det: styles.NonDeterministic, Update: styles.ReadModifyWrite,
	}
	warp := base
	warp.Gran = styles.WarpGran
	dev := gpusim.New(gpusim.RTXSim())
	_, tputThread, errT := runner.TimeGPU(dev, g, base, opt)
	_, tputWarp, errW := runner.TimeGPU(gpusim.New(gpusim.RTXSim()), g, warp, opt)
	if errT != nil || errW != nil {
		log.Fatal(errT, errW)
	}
	fmt.Printf("GPU BFS thread-granularity: %8.4f GE/s\n", tputThread)
	fmt.Printf("GPU BFS warp-granularity:   %8.4f GE/s\n", tputWarp)
	if tputThread > 0 {
		fmt.Printf("warp/thread on a scale-free graph: %.2fx (§5.8)\n", tputWarp/tputThread)
	}
}

// mustRun aborts on dispatch errors, which hand-checked configs never
// produce.
func mustRun(res algo.Result, err error) algo.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
