// Styletuner: the paper's practical payoff — given your graph and
// algorithm, sweep the style space and report which parallelization and
// implementation styles to use (§5.16). It prints the best and worst
// variants and the resulting spread, which on adversarial inputs spans
// orders of magnitude.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"indigo/internal/advisor"
	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

func main() {
	algoName := flag.String("algo", "sssp", "algorithm to tune (bfs, sssp, cc, mis, pr, tc)")
	modelName := flag.String("model", "cuda", "programming model (cuda, omp, cpp)")
	inputName := flag.String("input", "road", "input class (grid2d, copaper, rmat, social, road)")
	scaleName := flag.String("scale", "tiny", "input scale")
	top := flag.Int("top", 5, "how many best/worst variants to print")
	flag.Parse()

	var a styles.Algorithm = -1
	for x := styles.Algorithm(0); x < styles.NumAlgorithms; x++ {
		if x.String() == *algoName {
			a = x
		}
	}
	var m styles.Model = -1
	for x := styles.Model(0); x < styles.NumModels; x++ {
		if x.String() == *modelName {
			m = x
		}
	}
	var in gen.Input = -1
	for x := gen.Input(0); x < gen.NumInputs; x++ {
		if x.String() == *inputName {
			in = x
		}
	}
	scale, okScale := gen.ParseScale(*scaleName)
	if a < 0 || m < 0 || in < 0 || !okScale {
		fmt.Fprintln(os.Stderr, "styletuner: bad -algo, -model, -input, or -scale")
		os.Exit(2)
	}

	g := gen.Generate(in, scale)
	fmt.Printf("tuning %s/%s on %v\n\n", a, m, g)

	type scored struct {
		cfg  styles.Config
		tput float64
	}
	var results []scored
	opt := algo.Options{}
	for _, cfg := range styles.Enumerate(a, m) {
		var tput float64
		var err error
		if m == styles.CUDA {
			_, tput, err = runner.TimeGPU(gpusim.New(gpusim.RTXSim()), g, cfg, opt)
		} else {
			_, tput, err = runner.TimeCPU(g, cfg, opt)
		}
		if err != nil {
			continue // enumeration never yields mismatched variants
		}
		results = append(results, scored{cfg, tput})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].tput > results[j].tput })

	n := *top
	if n > len(results) {
		n = len(results)
	}
	fmt.Printf("best %d of %d variants:\n", n, len(results))
	for _, r := range results[:n] {
		fmt.Printf("  %8.4f GE/s  %s\n", r.tput, r.cfg.Name())
	}
	fmt.Printf("\nworst %d:\n", n)
	for _, r := range results[len(results)-n:] {
		fmt.Printf("  %8.4f GE/s  %s\n", r.tput, r.cfg.Name())
	}
	if worst := results[len(results)-1].tput; worst > 0 {
		fmt.Printf("\nbest/worst spread: %.1fx — choosing the wrong style costs that much (§1)\n",
			results[0].tput/worst)
	}

	// Compare the paper's guidelines (§5.16) against the measured sweep.
	rec := advisor.Recommend(a, m, graph.ComputeStats(g))
	rank := 0
	var recTput float64
	for i, r := range results {
		if r.cfg == rec.Config {
			rank = i + 1
			recTput = r.tput
			break
		}
	}
	fmt.Printf("\nguideline recommendation (§5.16): %s\n", rec.Config.Name())
	if rank > 0 {
		fmt.Printf("  measured rank %d of %d (%.4f GE/s, %.0f%% of best)\n",
			rank, len(results), recTput, 100*recTput/results[0].tput)
	}
	for _, why := range rec.Rationale {
		fmt.Printf("  - %s\n", why)
	}
}
