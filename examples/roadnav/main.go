// Roadnav: single-source shortest paths on a road network — the
// high-diameter workload class where the paper's topology-vs-data-driven
// finding matters most (§5.3). It contrasts a topology-driven sweep, a
// data-driven worklist variant, and the delta-stepping baseline, then
// answers a few point-to-point distance queries.
package main

import (
	"fmt"
	"time"

	"indigo/internal/algo"
	"indigo/internal/baseline"
	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

func main() {
	g := gen.Generate(gen.InputRoad, gen.Small)
	st := graph.ComputeStats(g)
	fmt.Printf("road network: %d intersections, %d road segments, diameter ~%d hops\n\n",
		st.Vertices, st.Edges/2, st.Diameter)

	opt := algo.Options{Source: 0}

	topo := styles.Config{
		Algo: styles.SSSP, Model: styles.CPP,
		Drive: styles.TopologyDriven, Flow: styles.Push,
		Update: styles.ReadModifyWrite, Det: styles.NonDeterministic,
	}
	data := topo
	data.Drive = styles.DataDrivenNoDup

	resTopo, tputTopo, errTopo := runner.TimeCPU(g, topo, opt)
	resData, tputData, errData := runner.TimeCPU(g, data, opt)
	if errTopo != nil || errData != nil {
		fmt.Println("dispatch failed:", errTopo, errData)
		return
	}
	start := time.Now()
	distDelta := baseline.SSSPDelta(g, 0, 0, 0, nil)
	tputDelta := runner.Throughput(g, time.Since(start).Seconds())

	fmt.Printf("topology-driven sweep: %8.4f GE/s (%d iterations)\n", tputTopo, resTopo.Iterations)
	fmt.Printf("data-driven worklist:  %8.4f GE/s (%d iterations)\n", tputData, resData.Iterations)
	fmt.Printf("delta-stepping (base): %8.4f GE/s\n\n", tputDelta)

	// All three agree; answer some queries with the worklist result.
	queries := []int32{g.N / 4, g.N / 2, g.N - 1}
	for _, q := range queries {
		if resTopo.Dist[q] != resData.Dist[q] || resData.Dist[q] != distDelta[q] {
			fmt.Printf("DISAGREEMENT at %d!\n", q)
			continue
		}
		fmt.Printf("shortest distance from intersection 0 to %6d: %d\n", q, resData.Dist[q])
	}
	if tputTopo > 0 {
		fmt.Printf("\ndata-driven speedup over topology-driven on this high-diameter input: %.1fx (§5.3)\n",
			tputData/tputTopo)
	}
}
