// Quickstart: build a graph, pick a style variant, run it, and verify
// the result against the serial reference — the minimal end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/styles"
	"indigo/internal/verify"
)

func main() {
	// 1. An input graph: either build your own with graph.Builder...
	b := graph.NewBuilder("diamond", 4)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 5)
	small := b.Build()
	fmt.Printf("hand-built graph: %v\n", small)

	// ...or generate one of the study's synthetic inputs.
	road := gen.Generate(gen.InputRoad, gen.Tiny)
	fmt.Printf("generated input:  %v\n\n", road)

	// 2. A style variant: SSSP in the C++-threads model, vertex-based,
	// data-driven without duplicates, push flow, read-modify-write,
	// non-deterministic, cyclic schedule.
	cfg := styles.Config{
		Algo:     styles.SSSP,
		Model:    styles.CPP,
		Iterate:  styles.VertexBased,
		Drive:    styles.DataDrivenNoDup,
		Flow:     styles.Push,
		Update:   styles.ReadModifyWrite,
		Det:      styles.NonDeterministic,
		CPPSched: styles.CyclicSched,
	}
	if !styles.Valid(cfg) {
		log.Fatal("config is not a meaningful style combination")
	}

	// 3. Run it and check the answer.
	opt := algo.Options{Source: 0}
	res, tput, err := runner.TimeCPU(road, cfg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n  throughput %.4f GE/s, %d iterations\n", cfg.Name(), tput, res.Iterations)
	if err := verify.NewReference(road, opt).Check(cfg, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  verified against Dijkstra ✓")

	// 4. The same variant family on a simulated GPU: warp granularity,
	// persistent threads, classic atomics.
	gcfg := cfg
	gcfg.Model = styles.CUDA
	gcfg.CPPSched = styles.BlockedSched // CPU dims revert to zero values
	gcfg.Gran = styles.WarpGran
	gcfg.Persist = styles.Persistent
	dev := gpusim.New(gpusim.RTXSim())
	gres, gtput, err := runner.TimeGPU(dev, road, gcfg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s on %v\n  simulated throughput %.4f GE/s, %d iterations\n",
		gcfg.Name(), dev, gtput, gres.Iterations)
	if err := verify.NewReference(road, opt).Check(gcfg, gres); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  verified against Dijkstra ✓")
}
