package main

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

// GPUSimComparison is one kernel family measured on the sharded cost
// model against the shared-atomic baseline it replaced. One op is a
// full algorithm run (all of its launches) on a reused, Reset device —
// the sweep supervisor's steady state.
type GPUSimComparison struct {
	Name      string  `json:"name"`
	ShardedNs float64 `json:"sharded_ns_per_op"`
	SharedNs  float64 `json:"shared_ns_per_op"`
	// Speedup is SharedNs / ShardedNs: >1 means the sharded model wins.
	Speedup       float64 `json:"speedup"`
	ShardedAllocs int64   `json:"sharded_allocs_per_op"`
	SharedAllocs  int64   `json:"shared_allocs_per_op"`
	ShardedBytes  int64   `json:"sharded_bytes_per_op"`
	SharedBytes   int64   `json:"shared_bytes_per_op"`
}

// GPUSimReport is the -gpusim document (source of BENCH_gpusim.json).
type GPUSimReport struct {
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Quick       bool               `json:"quick"`
	Comparisons []GPUSimComparison `json:"comparisons"`
}

// gpusimCase is one measured kernel family.
type gpusimCase struct {
	name string
	cfg  styles.Config
	in   gen.Input
}

// gpusimCases covers both execution paths of the simulator: non-barrier
// kernels (blocks simulated sequentially; data-driven BFS is the
// many-small-launches extreme, where the baseline's per-launch fixed
// costs — allocations and the full atomic-table scan — dominate) and
// barrier kernels (reduction-add syncs per round; block-granularity MIS
// is the barrier extreme, three __syncthreads per work item). Variants
// come from the enumerated suite so every config is a valid style
// combination.
func gpusimCases() []gpusimCase {
	pick := func(a styles.Algorithm, want func(styles.Config) bool) styles.Config {
		for _, cfg := range styles.Enumerate(a, styles.CUDA) {
			if want(cfg) {
				return cfg
			}
		}
		panic(fmt.Sprintf("bench: no CUDA %v variant matches the predicate", a))
	}
	return []gpusimCase{
		{"bfs-dd-road", pick(styles.BFS, func(c styles.Config) bool {
			return c.Drive.IsDataDriven() && c.Flow == styles.Push
		}), gen.InputRoad},
		{"cc-topo-road", pick(styles.CC, func(c styles.Config) bool {
			return c.Drive == styles.TopologyDriven && c.Flow == styles.Push
		}), gen.InputRoad},
		{"pr-reduction-social", pick(styles.PR, func(c styles.Config) bool {
			return c.GPURed == styles.ReductionAdd
		}), gen.InputSocial},
		{"tc-reduction-rmat", pick(styles.TC, func(c styles.Config) bool {
			return c.GPURed == styles.ReductionAdd
		}), gen.InputRMAT},
		{"mis-block-road", pick(styles.MIS, func(c styles.Config) bool {
			return c.Gran == styles.BlockGran
		}), gen.InputRoad},
	}
}

// gpusimBench measures each case on both models. Both sides reuse one
// device across ops (Reset between), so the comparison isolates the
// cost model itself rather than device construction.
func gpusimBench(bt time.Duration, quick bool) GPUSimReport {
	rep := GPUSimReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	for _, c := range gpusimCases() {
		g := gen.Generate(c.in, gen.Tiny)
		cfg := c.cfg
		run := func(d *gpusim.Device) metrics {
			return measure(bt, func(b *testing.B) {
				opt := algo.Options{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Reset()
					runner.RunGPU(d, g, cfg, opt) //nolint:errcheck // benchmark body
				}
			})
		}
		sharded := run(gpusim.New(gpusim.RTXSim()))
		base := gpusim.New(gpusim.RTXSim())
		base.SetSharedBaseline(true)
		shared := run(base)
		rep.Comparisons = append(rep.Comparisons, GPUSimComparison{
			Name:          c.name,
			ShardedNs:     sharded.ns,
			SharedNs:      shared.ns,
			Speedup:       shared.ns / sharded.ns,
			ShardedAllocs: sharded.allocs,
			SharedAllocs:  shared.allocs,
			ShardedBytes:  sharded.bytes,
			SharedBytes:   shared.bytes,
		})
	}
	return rep
}

// gpusimAllocCheck pins the sharded model's steady state: a warmed
// device's Launch — sequential or barrier — performs zero heap
// allocations. Returns the observed per-launch average and whether the
// budget held.
func gpusimAllocCheck() (float64, bool) {
	d := gpusim.New(gpusim.RTXSim())
	n := int64(1 << 14)
	a := d.AllocI32(n)
	out := d.AllocI64(1)
	seqKern := func(w *gpusim.Warp) {
		base := w.Gidx(0)
		if base < n {
			cnt := n - base
			if cnt > gpusim.WarpSize {
				cnt = gpusim.WarpSize
			}
			w.CoalLdI32(a, base, int(cnt))
		}
	}
	barKern := func(w *gpusim.Warp) {
		ctr := w.SharedI64(0, 1)
		for l := 0; l < gpusim.WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.BlockAtomicAddI64(ctr, 0, 1)
			}
		}
		w.Sync()
		if w.WarpInBlock == 0 {
			w.AtomicAddI64(out, 0, w.SharedLdI64(ctr, 0))
		}
	}
	seqCfg := gpusim.LaunchCfg{Blocks: gpusim.GridSize(n, 256)}
	barCfg := gpusim.LaunchCfg{Blocks: gpusim.GridSize(n, 256), NeedsBarrier: true}
	both := func() {
		d.Launch(seqCfg, seqKern)
		d.Launch(barCfg, barKern)
	}
	for i := 0; i < 3; i++ {
		both()
	}
	avg := testing.AllocsPerRun(5, both)
	return avg, avg == 0
}
