package main

import (
	"fmt"
	"runtime"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/styles"
	"indigo/internal/sweep"
	"indigo/internal/tune"
)

// tuneBars are the pinned acceptance thresholds: the tuner must land
// within tuneRegretBarPct of the exhaustive best while spending at most
// tuneSpendBarPct of the full sweep's measurements, on every cell.
const (
	tuneRegretBarPct = 5.0
	tuneSpendBarPct  = 25.0
)

// TuneCell is one (algo, model, input) cell's tuner-vs-sweep record:
// what the exhaustive census cost and found, what the racing tuner cost
// and found, and the gap between them.
type TuneCell struct {
	Cell   string `json:"cell"`
	Input  string `json:"input"`
	Device string `json:"device"`
	Space  int    `json:"space"`

	SweepMeasurements int     `json:"sweep_measurements"`
	SweepWallMS       float64 `json:"sweep_wall_ms"`
	SweepBest         string  `json:"sweep_best"`
	SweepBestTput     float64 `json:"sweep_best_tput"`

	TuneMeasurements int     `json:"tune_measurements"`
	TuneWallMS       float64 `json:"tune_wall_ms"`
	TuneWinner       string  `json:"tune_winner"`
	TuneWinnerTput   float64 `json:"tune_winner_tput"`

	// RegretPct compares the winner's census throughput (not the
	// tuner's own reading, though on the deterministic simulator they
	// coincide) against the census best.
	RegretPct float64 `json:"regret_pct"`
	// SpendPct is tuner measurements as a percentage of the sweep's.
	SpendPct float64 `json:"spend_pct"`
}

// TuneReport is the -tune document, source of BENCH_tune.json.
type TuneReport struct {
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Quick      bool       `json:"quick"`
	Scale      string     `json:"scale"`
	Cells      []TuneCell `json:"cells"`

	MeanRegretPct float64 `json:"mean_regret_pct"`
	MaxRegretPct  float64 `json:"max_regret_pct"`
	MeanSpendPct  float64 `json:"mean_spend_pct"`
	MaxSpendPct   float64 `json:"max_spend_pct"`

	RegretBarPct float64 `json:"regret_bar_pct"`
	SpendBarPct  float64 `json:"spend_bar_pct"`
}

// tuneBench races the autotuner against an exhaustive sweep on CUDA
// cells of the generated suite, measured on the deterministic GPU
// simulator so the regret numbers are exact rather than wall-clock
// noise. -quick drops from the small scale to tiny for CI smoke runs.
func tuneBench(quick bool) TuneReport {
	scale := gen.Small
	if quick {
		scale = gen.Tiny
	}
	cells := []struct {
		a  styles.Algorithm
		m  styles.Model
		in gen.Input
	}{
		{styles.BFS, styles.CUDA, gen.InputRMAT},
		{styles.SSSP, styles.CUDA, gen.InputRoad},
		{styles.PR, styles.CUDA, gen.InputSocial},
	}
	rep := TuneReport{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Quick:        quick,
		Scale:        scale.String(),
		RegretBarPct: tuneRegretBarPct,
		SpendBarPct:  tuneSpendBarPct,
	}
	const device = "rtx-sim"
	for _, c := range cells {
		g := gen.Generate(c.in, scale)
		space := styles.Enumerate(c.a, c.m)
		popt := sweep.Options{Timeout: sweep.DefaultTimeout(scale), Verify: true}

		// Exhaustive census: every applicable variant once.
		census := make(map[string]float64, len(space))
		bestName, bestTput := "", 0.0
		pr := tune.NewProbeRunner(g, device, algo.Options{Threads: 2}, popt)
		start := time.Now()
		for _, cfg := range space {
			t, err := pr.Measure(cfg)
			if err != nil {
				continue
			}
			census[cfg.Name()] = t
			if t > bestTput {
				bestName, bestTput = cfg.Name(), t
			}
		}
		sweepWall := time.Since(start)
		pr.Close()

		// The racing tuner on the same cell, fresh runner, fixed seed.
		pr = tune.NewProbeRunner(g, device, algo.Options{Threads: 2}, popt)
		start = time.Now()
		res, err := tune.Run(tune.Options{
			Algo:   c.a,
			Model:  c.m,
			Device: device,
			Shape:  g.Stats(),
			Seed:   1,
			Runner: pr,
		})
		tuneWall := time.Since(start)
		pr.Close()
		if err != nil {
			fmt.Printf("bench: tune %s/%s: %v\n", c.a, c.m, err)
			continue
		}

		regret := 0.0
		if bestTput > 0 {
			regret = 100 * (bestTput - census[res.Best.Name()]) / bestTput
		}
		spend := 100 * float64(res.Measurements) / float64(len(census))
		rep.Cells = append(rep.Cells, TuneCell{
			Cell:              fmt.Sprintf("%s/%s", c.a, c.m),
			Input:             c.in.String(),
			Device:            device,
			Space:             len(space),
			SweepMeasurements: len(census),
			SweepWallMS:       float64(sweepWall.Microseconds()) / 1000,
			SweepBest:         bestName,
			SweepBestTput:     bestTput,
			TuneMeasurements:  res.Measurements,
			TuneWallMS:        float64(tuneWall.Microseconds()) / 1000,
			TuneWinner:        res.Best.Name(),
			TuneWinnerTput:    res.Tput,
			RegretPct:         regret,
			SpendPct:          spend,
		})
	}
	for _, c := range rep.Cells {
		rep.MeanRegretPct += c.RegretPct / float64(len(rep.Cells))
		rep.MeanSpendPct += c.SpendPct / float64(len(rep.Cells))
		rep.MaxRegretPct = max(rep.MaxRegretPct, c.RegretPct)
		rep.MaxSpendPct = max(rep.MaxSpendPct, c.SpendPct)
	}
	return rep
}
