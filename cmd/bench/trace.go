package main

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/par"
	"indigo/internal/runner"
	"indigo/internal/scratch"
	"indigo/internal/styles"
	"indigo/internal/trace"
)

// traceOverheadBarPct is the budgeted contract for DISABLED tracing on
// the dispatch-bound road BFS: the off-by-default path is a nil check
// per span site and must stay under this; -traceoverhead exits 1 at or
// past it. Live tracing is reported alongside but not gated — turning
// tracing on buys a journal and is allowed to cost more.
const traceOverheadBarPct = 1.0

// TraceReport is the -traceoverhead measurement. The gated number is
// DisabledOverheadPct: a timed run through runner.TimeCPU with the
// zero trace Ctx (tracing off, the default) against the identical
// envelope with the span sites elided — with the pool and arena
// pinned, TimeCPU minus its span sites is exactly RunCPU plus two
// clock reads, which the baseline side inlines. The road BFS is the
// worst case by design: the shortest runs the suite produces, so the
// per-run envelope cost recurs at the highest rate.
//
// LiveOverheadPct is informational: the same workload with a live
// tracer recording the full production span envelope and flushing
// through the JSONL encoder to io.Discard after every run, relative to
// the disabled path.
type TraceReport struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Quick      bool    `json:"quick"`
	Benchmark  string  `json:"benchmark"`
	Trials     int     `json:"trials"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	DisabledNs float64 `json:"disabled_ns_per_op"`
	LiveNs     float64 `json:"live_ns_per_op"`
	// DisabledOverheadPct is the median over trials of the per-trial
	// ratio (disabled/baseline - 1) * 100, the two sides alternating
	// run by run inside a trial so drift cancels — the BENCH_guard.json
	// methodology (see GuardReport).
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	LiveOverheadPct     float64 `json:"live_overhead_pct"`
	BarPct              float64 `json:"bar_pct"`
}

// traceOverhead measures the road BFS three ways — span sites elided,
// span sites present but disabled, and live tracing — interleaving the
// first two inside each trial so machine drift hits both sides of the
// gated ratio equally.
func traceOverhead(bt time.Duration, threads, trials int, quick bool) TraceReport {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	p := par.NewPool(threads)
	defer p.Close()
	a := scratch.New()
	opt := algo.Options{Threads: threads, Pool: p, Scratch: a}

	// Baseline: TimeCPU with the span sites elided. With Pool and
	// Scratch pinned the envelope reduces to the timed RunCPU itself.
	runBaseline := func() {
		a.Reset()
		start := time.Now()
		res, err := runner.RunCPU(g, cfg, opt)
		elapsed := time.Since(start).Seconds()
		_, _, _ = res, err, runner.Throughput(g, elapsed)
	}
	// Disabled: the production envelope with the zero trace Ctx — what
	// every untraced run pays after this change.
	runDisabled := func() {
		a.Reset()
		runner.TimeCPU(g, cfg, opt) //nolint:errcheck // benchmark body
	}

	tr := trace.New(trace.Config{Sink: trace.NewJSONLSink(io.Discard)})
	defer tr.Close()
	runLive := func() {
		a.Reset()
		lopt := opt
		lopt.Trace = tr.NewTrace("bench.run")
		runner.TimeCPU(g, cfg, lopt) //nolint:errcheck // benchmark body
		lopt.Trace.End()
		tr.Flush()
	}

	for w := 0; w < 200; w++ { // warm the pool, caches, and branch state
		runBaseline()
		runDisabled()
		runLive()
	}
	baseline, disabled, live := math.Inf(1), math.Inf(1), math.Inf(1)
	disabledRatios := make([]float64, 0, trials)
	liveRatios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		var tb, td, tl time.Duration
		var n int
		for tb+td < 2*bt {
			n++
			s := time.Now()
			runBaseline()
			tb += time.Since(s)
			s = time.Now()
			runDisabled()
			td += time.Since(s)
			s = time.Now()
			runLive()
			tl += time.Since(s)
		}
		b := float64(tb.Nanoseconds()) / float64(n)
		d := float64(td.Nanoseconds()) / float64(n)
		l := float64(tl.Nanoseconds()) / float64(n)
		baseline = math.Min(baseline, b)
		disabled = math.Min(disabled, d)
		live = math.Min(live, l)
		disabledRatios = append(disabledRatios, d/b)
		liveRatios = append(liveRatios, l/d)
	}
	return TraceReport{
		GoVersion:           runtime.Version(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Quick:               quick,
		Benchmark:           fmt.Sprintf("bfs-road/t%d", threads),
		Trials:              trials,
		BaselineNs:          baseline,
		DisabledNs:          disabled,
		LiveNs:              live,
		DisabledOverheadPct: (medianOf(disabledRatios) - 1) * 100,
		LiveOverheadPct:     (medianOf(liveRatios) - 1) * 100,
		BarPct:              traceOverheadBarPct,
	}
}

// medianOf sorts xs and returns its median (mean of the middle pair on
// even lengths).
func medianOf(xs []float64) float64 {
	sort.Float64s(xs)
	m := xs[len(xs)/2]
	if len(xs)%2 == 0 {
		m = (m + xs[len(xs)/2-1]) / 2
	}
	return m
}
