package main

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"indigo/internal/gen"
	"indigo/internal/graph"
)

// ingestThreads is the worker count the parallel side runs at; the
// committed BENCH_ingest.json is the t=4 measurement the issue asks for.
const ingestThreads = 4

// ingestAllocCeiling is the -alloccheck pin for the parallel edge-list
// read: allocations must stay O(chunks + output arrays), never O(lines).
// The parse itself is zero-alloc per line ([]byte fields, no Scanner
// line copies, no strings.Fields slices), so the steady state is a
// couple hundred allocations regardless of input size — a per-line
// allocation on the social input would blow past this by three orders
// of magnitude.
const ingestAllocCeiling = 512

// IngestReport is the document emitted by -ingest (BENCH_ingest.json).
// Comparisons reuse the pool-vs-spawn record: "pool" is the chunked
// parallel ingest path, "spawn" the serial scanner reference.
type IngestReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Threads    int    `json:"threads"`
	// Input shape: the social-network generator's output serialized to
	// both text formats.
	Vertices      int32   `json:"vertices"`
	DirectedEdges int64   `json:"directed_edges"`
	EdgeListMB    float64 `json:"edgelist_mb"`
	DIMACSMB      float64 `json:"dimacs_mb"`
	// ParallelParseMBps is the chunked edge-list parse throughput
	// (input megabytes over the parallel read's ns/op).
	ParallelParseMBps float64      `json:"parallel_parse_mb_per_s"`
	Comparisons       []Comparison `json:"comparisons"`
}

// ingestBench measures the parallel ingest pipeline against the serial
// reference on a social-shaped input (the paper's hardest degree
// distribution: power-law hubs make per-vertex work skewed). Stages are
// measured separately and end-to-end; end-to-end is parse + CSR build +
// stats, the full cost of turning uploaded bytes into an advisable graph.
func ingestBench(bt time.Duration, quick bool) IngestReport {
	// gen.Social's second argument is attachments per new vertex, so the
	// graph lands near n*attach undirected edges (~1.2M directed at the
	// full size — big enough that parse and build dominate timer noise).
	n, attach := int32(120_000), 5
	if quick {
		n = 20_000
	}
	g := gen.Social(n, attach, 7)

	var elBuf, grBuf bytes.Buffer
	if err := graph.WriteEdgeList(&elBuf, g); err != nil {
		fmt.Fprintln(os.Stderr, "bench: write edgelist:", err)
		os.Exit(1)
	}
	if err := graph.WriteDIMACS(&grBuf, g); err != nil {
		fmt.Fprintln(os.Stderr, "bench: write dimacs:", err)
		os.Exit(1)
	}
	el, gr := elBuf.Bytes(), grBuf.Bytes()

	rep := IngestReport{
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         quick,
		Threads:       ingestThreads,
		Vertices:      g.N,
		DirectedEdges: g.M(),
		EdgeListMB:    float64(len(el)) / (1 << 20),
		DIMACSMB:      float64(len(gr)) / (1 << 20),
	}

	parOpts := graph.ReadOptions{Threads: ingestThreads}
	serOpts := graph.ReadOptions{Serial: true}

	// Each side is measured several times and the fastest trial kept:
	// on a timeshared container a single benchmark sample (often N=1 at
	// these op sizes) can absorb a scheduler window or a GC of the other
	// side's garbage, and min-of-trials is the standard noise floor.
	trials := 3
	if quick {
		trials = 2
	}
	best := func(body func(b *testing.B)) metrics {
		m := measure(bt, body)
		for i := 1; i < trials; i++ {
			if mi := measure(bt, body); mi.ns < m.ns {
				m = mi
			}
		}
		return m
	}

	// Warm both paths once before measuring: the first parse on a cold
	// heap pays page faults and heap growth for the whole process, which
	// otherwise lands entirely on whichever comparison runs first.
	if _, err := graph.ReadEdgeListBytes(el, "bench", parOpts); err != nil {
		fmt.Fprintln(os.Stderr, "bench: warm-up read:", err)
		os.Exit(1)
	}
	if _, err := graph.ReadEdgeListBytes(el, "bench", serOpts); err != nil {
		fmt.Fprintln(os.Stderr, "bench: warm-up read:", err)
		os.Exit(1)
	}

	readEL := compare("ingest-read-edgelist-social",
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadEdgeListBytes(el, "bench", parOpts); err != nil {
					b.Fatal(err)
				}
			}
		}),
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadEdgeListBytes(el, "bench", serOpts); err != nil {
					b.Fatal(err)
				}
			}
		}))
	rep.ParallelParseMBps = float64(len(el)) / (1 << 20) / (readEL.PoolNs / 1e9)

	readGR := compare("ingest-read-dimacs-social",
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadDIMACSBytes(gr, "bench", parOpts); err != nil {
					b.Fatal(err)
				}
			}
		}),
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadDIMACSBytes(gr, "bench", serOpts); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// CSR build alone, from pre-parsed COO edges (the builder is
	// reusable: BuildOpts does not consume the edge arrays).
	bld := graph.NewBuilder("bench", g.N)
	for i := int64(0); i < g.M(); i++ {
		if g.Src[i] < g.Dst[i] { // one direction; the builder re-symmetrizes
			bld.AddEdge(g.Src[i], g.Dst[i], g.Weights[i])
		}
	}
	build := compare("ingest-build-social",
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bld.BuildOpts(graph.BuildOptions{Threads: ingestThreads})
			}
		}),
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bld.BuildOpts(graph.BuildOptions{Serial: true})
			}
		}))

	stats := compare("ingest-stats-social",
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph.ComputeStatsOpts(g, graph.StatsOptions{Threads: ingestThreads})
			}
		}),
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph.ComputeStatsOpts(g, graph.StatsOptions{Serial: true})
			}
		}))

	// End-to-end: bytes in, advisable shape out — the path a large
	// inline upload takes through the advisor service.
	endToEnd := compare("ingest-end-to-end-social",
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gg, err := graph.ReadEdgeListBytes(el, "bench", parOpts)
				if err != nil {
					b.Fatal(err)
				}
				graph.ComputeStatsOpts(gg, graph.StatsOptions{Threads: ingestThreads})
			}
		}),
		best(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gg, err := graph.ReadEdgeListBytes(el, "bench", serOpts)
				if err != nil {
					b.Fatal(err)
				}
				graph.ComputeStatsOpts(gg, graph.StatsOptions{Serial: true})
			}
		}))

	rep.Comparisons = append(rep.Comparisons, readEL, readGR, build, stats, endToEnd)
	return rep
}

// ingestAllocCheck pins the parallel read's allocation shape: the
// chunked parse of the quick social input must stay under the fixed
// ceiling, proving no per-line allocations crept back in. Returns the
// measured allocs/op for the error message.
func ingestAllocCheck() (int64, bool) {
	g := gen.Social(20_000, 5, 7)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		fmt.Fprintln(os.Stderr, "bench: write edgelist:", err)
		os.Exit(1)
	}
	el := buf.Bytes()
	opts := graph.ReadOptions{Threads: ingestThreads}
	m := measure(100*time.Millisecond, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadEdgeListBytes(el, "bench", opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	return m.allocs, m.allocs <= ingestAllocCeiling
}
