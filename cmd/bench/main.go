// Command bench measures the worker-pool runtime against the legacy
// spawn-per-region path and the scratch-arena runs against the
// allocate-per-run path, and emits the results as JSON. It is the source
// of the committed BENCH_pool.json, BENCH_scratch.json, and (with
// -guard / -ingest) BENCH_guard.json and BENCH_ingest.json: dispatch
// latency at small region sizes (where road-network frontiers live),
// worklist push styles, an end-to-end road-graph BFS, and a
// multi-variant road-graph sweep with and without arenas.
//
// Usage:
//
//	bench                  # full measurement, prints JSON to stdout
//	bench -quick           # short benchtime for CI smoke runs
//	bench -out pool.json   # write the JSON to a file
//	bench -alloccheck      # also assert the warmed-arena steady state
//	                       # allocates zero times per run (exit 1 if not)
//	bench -guard           # measure guard-checkpoint overhead on road BFS
//	                       # instead (source of BENCH_guard.json)
//	bench -ingest          # measure parallel vs serial graph ingest
//	                       # instead (source of BENCH_ingest.json); with
//	                       # -alloccheck also pins the parallel read's
//	                       # allocation ceiling
//	bench -tune            # race the autotuner against an exhaustive
//	                       # per-cell sweep (source of BENCH_tune.json);
//	                       # exits 1 past the regret/spend bars
//	bench -traceoverhead   # measure live-tracing overhead on road BFS
//	                       # (source of BENCH_trace.json); exits 1 at
//	                       # or past the 1% bar
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/runner"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Comparison is one measurement pair: the optimized path ("pool": the
// persistent pool and/or warmed arena) against the legacy path ("spawn":
// spawn-per-region and/or allocate-per-run).
type Comparison struct {
	Name    string  `json:"name"`
	PoolNs  float64 `json:"pool_ns_per_op"`
	SpawnNs float64 `json:"spawn_ns_per_op"`
	// Speedup is SpawnNs / PoolNs: >1 means the optimized path wins.
	Speedup float64 `json:"speedup"`
	// Allocation profile of each side, from the benchmark driver's
	// MemStats accounting; GC pause is the total stop-the-world pause
	// accumulated over the whole measurement loop (not per op).
	PoolAllocs     int64 `json:"pool_allocs_per_op"`
	SpawnAllocs    int64 `json:"spawn_allocs_per_op"`
	PoolBytes      int64 `json:"pool_bytes_per_op"`
	SpawnBytes     int64 `json:"spawn_bytes_per_op"`
	PoolGCPauseNs  int64 `json:"pool_gc_pause_total_ns"`
	SpawnGCPauseNs int64 `json:"spawn_gc_pause_total_ns"`
}

// Report is the emitted document.
type Report struct {
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Comparisons []Comparison `json:"comparisons"`
}

func main() {
	quick := flag.Bool("quick", false, "short benchtime (CI smoke runs)")
	out := flag.String("out", "", "output file (default stdout)")
	alloccheck := flag.Bool("alloccheck", false,
		"fail (exit 1) if a warmed-arena run allocates; pins the zero-alloc budget")
	guardBench := flag.Bool("guard", false,
		"measure guard-checkpoint overhead on the road BFS and emit that report instead")
	ingest := flag.Bool("ingest", false,
		"measure the chunked parallel graph ingest against the serial readers and emit that report instead (source of BENCH_ingest.json)")
	gpusimFlag := flag.Bool("gpusim", false,
		"measure the sharded GPU cost model against the shared-atomic baseline and emit that report instead (source of BENCH_gpusim.json); with -alloccheck also pins the warmed Launch at zero allocations")
	tuneFlag := flag.Bool("tune", false,
		"race the autotuner against an exhaustive sweep per cell and emit that report instead (source of BENCH_tune.json); exits 1 if any cell misses the regret or spend bar")
	traceFlag := flag.Bool("traceoverhead", false,
		"measure live-tracing overhead on the road BFS and emit that report instead (source of BENCH_trace.json); exits 1 past the bar")
	flag.Parse()

	bt := 500 * time.Millisecond
	if *quick {
		bt = 20 * time.Millisecond
	}

	if *guardBench {
		trials := 9
		if *quick {
			trials = 2
		}
		emit(guardOverhead(bt, 4, trials, *quick), *out)
		return
	}

	if *traceFlag {
		trials := 9
		if *quick {
			trials = 2
		}
		rep := traceOverhead(bt, 4, trials, *quick)
		emit(rep, *out)
		if rep.DisabledOverheadPct >= traceOverheadBarPct {
			fmt.Fprintf(os.Stderr, "bench: disabled-tracing overhead %.2f%% on %s, bar is %.0f%%\n",
				rep.DisabledOverheadPct, rep.Benchmark, traceOverheadBarPct)
			os.Exit(1)
		}
		return
	}

	if *ingest {
		if *alloccheck {
			if allocs, ok := ingestAllocCheck(); !ok {
				fmt.Fprintf(os.Stderr, "bench: parallel ingest allocation budget exceeded: %d allocs per read, want <= %d\n", allocs, ingestAllocCeiling)
				os.Exit(1)
			}
		}
		emit(ingestBench(bt, *quick), *out)
		return
	}

	if *tuneFlag {
		rep := tuneBench(*quick)
		emit(rep, *out)
		if rep.MaxRegretPct > tuneRegretBarPct || rep.MaxSpendPct > tuneSpendBarPct {
			fmt.Fprintf(os.Stderr, "bench: tuner misses the bar: regret %.2f%% (max %.0f%%), spend %.2f%% (max %.0f%%)\n",
				rep.MaxRegretPct, tuneRegretBarPct, rep.MaxSpendPct, tuneSpendBarPct)
			os.Exit(1)
		}
		return
	}

	if *gpusimFlag {
		if *alloccheck {
			if avg, ok := gpusimAllocCheck(); !ok {
				fmt.Fprintf(os.Stderr, "bench: warmed gpusim Launch allocation budget exceeded: %.1f allocs per launch pair, want 0\n", avg)
				os.Exit(1)
			}
		}
		emit(gpusimBench(bt, *quick), *out)
		return
	}

	if *alloccheck {
		if n := steadyStateAllocs(); n != 0 {
			fmt.Fprintf(os.Stderr, "bench: steady-state allocation budget exceeded: %.1f allocs per warmed-arena run, want 0\n", n)
			os.Exit(1)
		}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	rep.Comparisons = append(rep.Comparisons,
		dispatch(bt, 4, 8),
		dispatch(bt, 4, 64),
		dispatch(bt, 8, 8),
		worklist(bt, 4),
		roadBFS(bt, 4),
		scratchSweep(bt, 4),
	)

	emit(rep, *out)
}

// emit marshals doc to out (stdout when empty).
func emit(doc any, out string) {
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func init() {
	// testing.Benchmark honors the -test.benchtime flag; register the
	// testing flags so measure can set it programmatically.
	testing.Init()
}

// metrics is one side's measurement.
type metrics struct {
	ns        float64
	allocs    int64
	bytes     int64
	gcPauseNs int64
}

// measure runs body under the testing benchmark driver at benchtime bt
// and returns time and allocation per operation plus the total GC pause
// accumulated while the loop ran.
func measure(bt time.Duration, body func(b *testing.B)) metrics {
	if err := flag.Set("test.benchtime", bt.String()); err != nil {
		fmt.Fprintln(os.Stderr, "bench: set benchtime:", err)
		os.Exit(1)
	}
	var before, after debug.GCStats
	debug.ReadGCStats(&before)
	r := testing.Benchmark(body)
	debug.ReadGCStats(&after)
	return metrics{
		ns:        float64(r.T.Nanoseconds()) / float64(r.N),
		allocs:    r.AllocsPerOp(),
		bytes:     r.AllocedBytesPerOp(),
		gcPauseNs: int64(after.PauseTotal - before.PauseTotal),
	}
}

// compare assembles the JSON record from the two sides.
func compare(name string, pool, spawn metrics) Comparison {
	return Comparison{
		Name:           name,
		PoolNs:         pool.ns,
		SpawnNs:        spawn.ns,
		Speedup:        spawn.ns / pool.ns,
		PoolAllocs:     pool.allocs,
		SpawnAllocs:    spawn.allocs,
		PoolBytes:      pool.bytes,
		SpawnBytes:     spawn.bytes,
		PoolGCPauseNs:  pool.gcPauseNs,
		SpawnGCPauseNs: spawn.gcPauseNs,
	}
}

// dispatch measures per-region fork/join cost at t workers and n
// iterations with an empty body: pure runtime overhead.
func dispatch(bt time.Duration, t int, n int64) Comparison {
	pool := measure(bt, func(b *testing.B) {
		p := par.NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.For(n, par.Static, func(int64) {})
		}
	})
	spawn := measure(bt, func(b *testing.B) {
		defer par.SetPooling(true)
		par.SetPooling(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			par.For(t, n, par.Static, func(int64) {})
		}
	})
	return compare(fmt.Sprintf("dispatch/t%d/n%d", t, n), pool, spawn)
}

// worklist measures a full region of pushes: the shared size counter
// against the per-worker reservation buffers.
func worklist(bt time.Duration, t int) Comparison {
	const n = 1 << 16
	spawn := measure(bt, func(b *testing.B) {
		w := par.NewWorklist(n + 64)
		p := par.NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			p.ForTID(n, par.Static, func(tid int, j int64) { w.Push(int32(j)) })
		}
	})
	pool := measure(bt, func(b *testing.B) {
		w := par.NewWorklistTID(n+64, t)
		p := par.NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			p.ForTID(n, par.Static, func(tid int, j int64) { w.PushTID(tid, int32(j)) })
			w.Flush()
		}
	})
	return compare(fmt.Sprintf("worklist-push/t%d/n%d", t, n), pool, spawn)
}

// roadBFS measures an end-to-end data-driven BFS on the road input:
// hundreds of small-frontier rounds, the case the pool runtime targets.
func roadBFS(bt time.Duration, threads int) Comparison {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	pool := measure(bt, func(b *testing.B) {
		p := par.NewPool(threads)
		defer p.Close()
		opt := algo.Options{Threads: threads, Pool: p}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
		}
	})
	spawn := measure(bt, func(b *testing.B) {
		defer par.SetPooling(true)
		par.SetPooling(false)
		opt := algo.Options{Threads: threads}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
		}
	})
	return compare(fmt.Sprintf("bfs-road/t%d", threads), pool, spawn)
}

// sweepVariants is the multi-variant road sweep measured by scratchSweep
// and asserted by -alloccheck: one representative per family covering
// every scratch checkout path (stamped and plain worklists, double
// buffering, OMP criticals, clause and atomic reductions).
func sweepVariants() []styles.Config {
	return []styles.Config{
		{Algo: styles.BFS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
			Flow: styles.Push, Update: styles.ReadModifyWrite},
		{Algo: styles.SSSP, Model: styles.CPP, Drive: styles.DataDrivenDup,
			Flow: styles.Push, Update: styles.ReadModifyWrite},
		{Algo: styles.CC, Model: styles.CPP, Drive: styles.TopologyDriven,
			Flow: styles.Pull, Update: styles.ReadModifyWrite, Det: styles.Deterministic},
		{Algo: styles.MIS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
			Flow: styles.Push, Update: styles.ReadModifyWrite},
		{Algo: styles.PR, Model: styles.OMP, Flow: styles.Pull,
			Det: styles.Deterministic, CPURed: styles.ClauseRed},
		{Algo: styles.TC, Model: styles.CPP, Update: styles.ReadModifyWrite,
			Det: styles.Deterministic, CPURed: styles.AtomicRed},
	}
}

// scratchSweep measures the arena's end-to-end effect: one op is a
// six-variant sweep over the road input on a pinned pool, with the
// "pool" side reusing one warmed arena (the sweep supervisor's steady
// state) and the "spawn" side allocating per run. The tiny scale keeps
// ops short enough for a stable iteration count and is the regime where
// per-run fixed costs matter most; at larger scales the allocation
// share of a run shrinks toward the noise floor (DESIGN.md §9).
func scratchSweep(bt time.Duration, threads int) Comparison {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfgs := sweepVariants()
	pool := measure(bt, func(b *testing.B) {
		p := par.NewPool(threads)
		defer p.Close()
		a := scratch.New()
		opt := algo.Options{Threads: threads, Pool: p, Scratch: a}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				a.Reset()
				runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
			}
		}
	})
	spawn := measure(bt, func(b *testing.B) {
		p := par.NewPool(threads)
		defer p.Close()
		opt := algo.Options{Threads: threads, Pool: p}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
			}
		}
	})
	return compare(fmt.Sprintf("sweep-scratch/t%d", threads), pool, spawn)
}

// steadyStateAllocs warms an arena over the sweep variants and returns
// the average allocation count of one further full sweep — the pinned
// budget is zero.
func steadyStateAllocs() float64 {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfgs := sweepVariants()
	const threads = 4
	p := par.NewPool(threads)
	defer p.Close()
	a := scratch.New()
	opt := algo.Options{Threads: threads, Pool: p, Scratch: a}
	sweep := func() {
		for _, cfg := range cfgs {
			a.Reset()
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // checked by verify tests
		}
	}
	for i := 0; i < 3; i++ {
		sweep()
	}
	return testing.AllocsPerRun(5, sweep)
}

// GuardReport is the -guard measurement: what arming a live guard token
// costs an end-to-end pooled road BFS — the paper-relevant hot path
// with the most dispatches per second, hence the worst case for
// checkpoint overhead. The budgeted contract is < 2% (DESIGN.md §11).
type GuardReport struct {
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Quick       bool    `json:"quick"`
	Benchmark   string  `json:"benchmark"`
	Trials      int     `json:"trials"`
	UnguardedNs float64 `json:"unguarded_ns_per_op"`
	GuardedNs   float64 `json:"guarded_ns_per_op"`
	// OverheadPct is the median over trials of the per-trial ratio
	// (guarded/unguarded - 1) * 100. Within a trial the two sides
	// alternate run by run, so scheduler windows, GC cycles, and load
	// ramps land on both sides of the ratio and cancel; the median over
	// trials then discards the ones where interference still landed
	// asymmetrically. (Measuring each side in its own multi-second window
	// instead reads several percent of pure window-to-window drift on a
	// busy host.) The ns fields are min-of-N, reported for scale only.
	OverheadPct float64 `json:"overhead_pct"`
}

// guardOverhead measures the pooled road BFS with and without a live
// (armed, never tripping) guard token, interleaving trials so machine
// drift hits both sides equally.
func guardOverhead(bt time.Duration, threads, trials int, quick bool) GuardReport {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	p := par.NewPool(threads)
	defer p.Close()
	gd := guard.New().WithTimeout(time.Hour) // armed and live, never trips
	defer gd.Release()

	optU := algo.Options{Threads: threads, Pool: p}
	optG := algo.Options{Threads: threads, Pool: p, Guard: gd}
	for w := 0; w < 200; w++ { // warm the pool, caches, and branch state
		runner.RunCPU(g, cfg, optU) //nolint:errcheck // benchmark body
		runner.RunCPU(g, cfg, optG) //nolint:errcheck // benchmark body
	}
	unguarded, guarded := math.Inf(1), math.Inf(1)
	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		var tu, tg time.Duration
		var n int
		for tu+tg < 2*bt {
			n++
			s := time.Now()
			runner.RunCPU(g, cfg, optU) //nolint:errcheck // benchmark body
			tu += time.Since(s)
			s = time.Now()
			runner.RunCPU(g, cfg, optG) //nolint:errcheck // benchmark body
			tg += time.Since(s)
		}
		u := float64(tu.Nanoseconds()) / float64(n)
		m := float64(tg.Nanoseconds()) / float64(n)
		unguarded = math.Min(unguarded, u)
		guarded = math.Min(guarded, m)
		ratios = append(ratios, m/u)
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (median + ratios[len(ratios)/2-1]) / 2
	}
	return GuardReport{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       quick,
		Benchmark:   fmt.Sprintf("bfs-road/t%d", threads),
		Trials:      trials,
		UnguardedNs: unguarded,
		GuardedNs:   guarded,
		OverheadPct: (median - 1) * 100,
	}
}
