// Command bench measures the worker-pool runtime against the legacy
// spawn-per-region path and emits the results as JSON. It is the source
// of the committed BENCH_pool.json: dispatch latency at small region
// sizes (where road-network frontiers live), worklist push styles, and
// an end-to-end road-graph BFS.
//
// Usage:
//
//	bench                  # full measurement, prints JSON to stdout
//	bench -quick           # short benchtime for CI smoke runs
//	bench -out pool.json   # write the JSON to a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/par"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

// Comparison is one pooled-vs-spawn measurement pair.
type Comparison struct {
	Name    string  `json:"name"`
	PoolNs  float64 `json:"pool_ns_per_op"`
	SpawnNs float64 `json:"spawn_ns_per_op"`
	// Speedup is SpawnNs / PoolNs: >1 means the pool runtime wins.
	Speedup float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Comparisons []Comparison `json:"comparisons"`
}

func main() {
	quick := flag.Bool("quick", false, "short benchtime (CI smoke runs)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	bt := 500 * time.Millisecond
	if *quick {
		bt = 20 * time.Millisecond
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	rep.Comparisons = append(rep.Comparisons,
		dispatch(bt, 4, 8),
		dispatch(bt, 4, 64),
		dispatch(bt, 8, 8),
		worklist(bt, 4),
		roadBFS(bt, 4),
	)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func init() {
	// testing.Benchmark honors the -test.benchtime flag; register the
	// testing flags so measure can set it programmatically.
	testing.Init()
}

// measure runs body under the testing benchmark driver at benchtime bt
// and returns nanoseconds per operation.
func measure(bt time.Duration, body func(b *testing.B)) float64 {
	if err := flag.Set("test.benchtime", bt.String()); err != nil {
		fmt.Fprintln(os.Stderr, "bench: set benchtime:", err)
		os.Exit(1)
	}
	r := testing.Benchmark(body)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// dispatch measures per-region fork/join cost at t workers and n
// iterations with an empty body: pure runtime overhead.
func dispatch(bt time.Duration, t int, n int64) Comparison {
	poolNs := measure(bt, func(b *testing.B) {
		p := par.NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.For(n, par.Static, func(int64) {})
		}
	})
	spawnNs := measure(bt, func(b *testing.B) {
		defer par.SetPooling(true)
		par.SetPooling(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			par.For(t, n, par.Static, func(int64) {})
		}
	})
	return Comparison{
		Name:    fmt.Sprintf("dispatch/t%d/n%d", t, n),
		PoolNs:  poolNs,
		SpawnNs: spawnNs,
		Speedup: spawnNs / poolNs,
	}
}

// worklist measures a full region of pushes: the shared size counter
// against the per-worker reservation buffers.
func worklist(bt time.Duration, t int) Comparison {
	const n = 1 << 16
	spawnNs := measure(bt, func(b *testing.B) {
		w := par.NewWorklist(n + 64)
		p := par.NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			p.ForTID(n, par.Static, func(tid int, j int64) { w.Push(int32(j)) })
		}
	})
	poolNs := measure(bt, func(b *testing.B) {
		w := par.NewWorklistTID(n+64, t)
		p := par.NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			p.ForTID(n, par.Static, func(tid int, j int64) { w.PushTID(tid, int32(j)) })
			w.Flush()
		}
	})
	return Comparison{
		Name:    fmt.Sprintf("worklist-push/t%d/n%d", t, n),
		PoolNs:  poolNs,
		SpawnNs: spawnNs,
		Speedup: spawnNs / poolNs,
	}
}

// roadBFS measures an end-to-end data-driven BFS on the road input:
// hundreds of small-frontier rounds, the case the pool runtime targets.
func roadBFS(bt time.Duration, threads int) Comparison {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	poolNs := measure(bt, func(b *testing.B) {
		p := par.NewPool(threads)
		defer p.Close()
		opt := algo.Options{Threads: threads, Pool: p}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
		}
	})
	spawnNs := measure(bt, func(b *testing.B) {
		defer par.SetPooling(true)
		par.SetPooling(false)
		opt := algo.Options{Threads: threads}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
		}
	})
	return Comparison{
		Name:    fmt.Sprintf("bfs-road/t%d", threads),
		PoolNs:  poolNs,
		SpawnNs: spawnNs,
		Speedup: spawnNs / poolNs,
	}
}
