// Command indigo2 lists, runs, and verifies individual style variants
// of the suite.
//
// Usage:
//
//	indigo2 list [-algo bfs] [-model cuda]
//	indigo2 run -variant <name> [-input road] [-scale small] [-device rtx-sim] [-source 0]
//	            [-timeout 2m] [-journal runs.jsonl [-resume]] [-store results.store]
//	            [-trace spans.jsonl]
//	indigo2 verify [-algo bfs] [-model omp] [-scale tiny]
//	indigo2 tune -algo bfs -model cuda [-input rmat -scale tiny | -graph g.el] [-device rtx-sim]
//	            [-budget 0] [-seed 1] [-journal tune.jsonl [-resume]] [-store results.store]
//	            [-trace spans.jsonl]
//	indigo2 serve [-addr :8080] [-store results.store] [-import runs.jsonl -scale small]
//	            [-trace] [-pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"indigo/internal/algo"
	"indigo/internal/emit"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/scratch"
	"indigo/internal/store"
	"indigo/internal/styles"
	"indigo/internal/sweep"
	"indigo/internal/trace"
	"indigo/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "emit":
		err = cmdEmit(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "indigo2:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: indigo2 <list|run|verify|emit|tune|serve> [flags]")
}

// cmdEmit writes the standalone Go source of a CPU SSSP variant, the
// code-generation view of the suite (§4.1).
func cmdEmit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	variant := fs.String("variant", "", "CPU sssp variant name from `indigo2 list -algo sssp`")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *variant == "" {
		return fmt.Errorf("missing -variant")
	}
	cfg, err := findVariant(*variant)
	if err != nil {
		return err
	}
	src, err := emit.Program(cfg)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(src)
		return nil
	}
	return os.WriteFile(*out, []byte(src), 0o644)
}

// parseFilters resolves optional -algo / -model flags.
func parseFilters(algoName, modelName string) ([]styles.Algorithm, []styles.Model, error) {
	var algos []styles.Algorithm
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		if algoName == "" || a.String() == algoName {
			algos = append(algos, a)
		}
	}
	if len(algos) == 0 {
		return nil, nil, fmt.Errorf("unknown algorithm %q", algoName)
	}
	var models []styles.Model
	for m := styles.Model(0); m < styles.NumModels; m++ {
		if modelName == "" || m.String() == modelName {
			models = append(models, m)
		}
	}
	if len(models) == 0 {
		return nil, nil, fmt.Errorf("unknown model %q", modelName)
	}
	return algos, models, nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	algoName := fs.String("algo", "", "restrict to one algorithm (bfs, sssp, cc, mis, pr, tc)")
	modelName := fs.String("model", "", "restrict to one model (cuda, omp, cpp)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	algos, models, err := parseFilters(*algoName, *modelName)
	if err != nil {
		return err
	}
	total := 0
	for _, m := range models {
		for _, a := range algos {
			for _, cfg := range styles.Enumerate(a, m) {
				fmt.Println(cfg.Name())
				total++
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%d variants\n", total)
	return nil
}

// findVariant resolves a variant name produced by `indigo2 list`.
func findVariant(name string) (styles.Config, error) {
	for _, cfg := range styles.EnumerateAll() {
		if cfg.Name() == name {
			return cfg, nil
		}
	}
	return styles.Config{}, fmt.Errorf("unknown variant %q (see `indigo2 list`)", name)
}

func loadInput(inputName string, scaleName string) (*graph.Graph, error) {
	g, _, err := loadInputIndexed(inputName, scaleName)
	return g, err
}

// loadInputIndexed also returns the gen.Input index, which the sweep
// supervisor needs for its journal identity.
func loadInputIndexed(inputName string, scaleName string) (*graph.Graph, gen.Input, error) {
	scale, ok := gen.ParseScale(scaleName)
	if !ok {
		return nil, 0, fmt.Errorf("unknown scale %q", scaleName)
	}
	for in := gen.Input(0); in < gen.NumInputs; in++ {
		if in.String() == inputName {
			return gen.Generate(in, scale), in, nil
		}
	}
	return nil, 0, fmt.Errorf("unknown input %q (grid2d, copaper, rmat, social, road)", inputName)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	variant := fs.String("variant", "", "variant name from `indigo2 list`")
	input := fs.String("input", "road", "study input to run on")
	scale := fs.String("scale", "small", "input scale (tiny, small, medium, large)")
	device := fs.String("device", "rtx-sim", "GPU profile for cuda variants (rtx-sim, titan-sim)")
	source := fs.Int("source", 0, "source vertex for bfs/sssp")
	threads := fs.Int("threads", 0, "CPU worker count (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "per-run deadline (0 = scale-aware default)")
	budget := fs.Int64("budget", 0, "per-run scratch memory budget in bytes (0 = unlimited)")
	journal := fs.String("journal", "", "JSONL measurement journal to append to")
	resume := fs.Bool("resume", false, "skip the run if the journal already records it")
	storePath := fs.String("store", "", "results store file to append the measurement to")
	useScratch := fs.Bool("scratch", true, "reuse scratch arenas across runs (-scratch=false allocates per run)")
	parIngest := fs.Bool("ingest", true, "chunked parallel graph ingest (-ingest=false uses the serial readers/build)")
	tracePath := fs.String("trace", "", "JSONL trace journal to write (spans of the run's phases)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scratch.SetEnabled(*useScratch)
	graph.SetSerialIngest(!*parIngest)
	if *variant == "" {
		return fmt.Errorf("missing -variant")
	}
	tracer, err := trace.OpenJournal(*tracePath)
	if err != nil {
		return err
	}
	defer tracer.Close()
	cfg, err := findVariant(*variant)
	if err != nil {
		return err
	}
	g, in, err := loadInputIndexed(*input, *scale)
	if err != nil {
		return err
	}
	dev := sweep.DeviceCPU
	if cfg.Model == styles.CUDA {
		prof, err := profileByName(*device)
		if err != nil {
			return err
		}
		dev = prof.Name
	}
	if *timeout == 0 {
		sc, _ := gen.ParseScale(*scale)
		*timeout = sweep.DefaultTimeout(sc)
	}
	root := tracer.Root("cli.run")
	defer root.End()
	opts := sweep.Options{
		Timeout:   *timeout,
		MemBudget: *budget,
		Verify:    true,
		Journal:   *journal,
		Resume:    *resume,
		Trace:     root,
	}
	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			return err
		}
		defer st.Close()
		gstats := g.Stats()
		opts.Observer = func(o sweep.Outcome) {
			if o.Kind != sweep.OK {
				return
			}
			cell := store.Cell{
				Cfg:       o.Cfg,
				Input:     o.Input.String(),
				Device:    o.Device,
				Graph:     gstats,
				Tput:      o.Tput,
				Attempts:  o.Attempts,
				ElapsedMS: float64(o.Elapsed) / float64(time.Millisecond),
			}
			if err := st.Append(cell); err != nil {
				fmt.Fprintf(os.Stderr, "indigo2: store append failed: %v\n", err)
			}
		}
	}
	sup, err := sweep.New(opts)
	if err != nil {
		return err
	}
	defer sup.Close()
	graphs := make([]*graph.Graph, gen.NumInputs)
	graphs[in] = g
	opt := algo.Options{Threads: *threads, Source: int32(*source)}
	o := sup.Run(graphs, opt, []sweep.Task{{Cfg: cfg, Input: in, Device: dev}})[0]
	fmt.Printf("variant:    %s\n", cfg.Name())
	fmt.Printf("input:      %s (n=%d, m=%d)\n", g.Name, g.N, g.M())
	if o.Resumed {
		fmt.Println("resumed:    from journal (not re-run)")
	}
	if o.Kind != sweep.OK {
		return fmt.Errorf("run FAILED (%s): %s", o.Kind, o.Err)
	}
	fmt.Printf("throughput: %.4f GE/s\n", o.Tput)
	fmt.Println("verified:   ok (matches serial reference)")
	return nil
}

func profileByName(name string) (gpusim.Profile, error) {
	for _, p := range gpusim.Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range gpusim.Profiles() {
		names = append(names, p.Name)
	}
	return gpusim.Profile{}, fmt.Errorf("unknown device %q (%s)", name, strings.Join(names, ", "))
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	algoName := fs.String("algo", "", "restrict to one algorithm")
	modelName := fs.String("model", "", "restrict to one model")
	scale := fs.String("scale", "tiny", "input scale")
	threads := fs.Int("threads", 0, "CPU worker count (0 = all cores)")
	useScratch := fs.Bool("scratch", true, "reuse scratch arenas across runs (-scratch=false allocates per run)")
	parIngest := fs.Bool("ingest", true, "chunked parallel graph ingest (-ingest=false uses the serial readers/build)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scratch.SetEnabled(*useScratch)
	graph.SetSerialIngest(!*parIngest)
	algos, models, err := parseFilters(*algoName, *modelName)
	if err != nil {
		return err
	}
	sc, ok := gen.ParseScale(*scale)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	opt := algo.Options{Threads: *threads}
	failures := 0
	total := 0
	for _, g := range gen.Suite(sc) {
		ref := verify.NewReference(g, opt)
		for _, m := range models {
			for _, a := range algos {
				for _, cfg := range styles.Enumerate(a, m) {
					total++
					var res algo.Result
					var err error
					if m == styles.CUDA {
						res, _, err = runner.RunGPU(gpusim.New(gpusim.RTXSim()), g, cfg, opt)
					} else {
						res, err = runner.RunCPU(g, cfg, opt)
					}
					if err == nil {
						err = ref.Check(cfg, res)
					}
					if err != nil {
						failures++
						fmt.Printf("FAIL %s on %s: %v\n", cfg.Name(), g.Name, err)
					}
				}
			}
		}
	}
	fmt.Printf("%d runs, %d failures\n", total, failures)
	if failures > 0 {
		return fmt.Errorf("%d verification failures", failures)
	}
	return nil
}
