package main

import (
	"testing"

	"indigo/internal/styles"
)

func TestParseFilters(t *testing.T) {
	algos, models, err := parseFilters("", "")
	if err != nil || len(algos) != int(styles.NumAlgorithms) || len(models) != int(styles.NumModels) {
		t.Fatalf("unfiltered: %d algos, %d models, err=%v", len(algos), len(models), err)
	}
	algos, models, err = parseFilters("sssp", "omp")
	if err != nil || len(algos) != 1 || algos[0] != styles.SSSP || len(models) != 1 || models[0] != styles.OMP {
		t.Fatalf("filtered: %v %v err=%v", algos, models, err)
	}
	if _, _, err := parseFilters("bogus", ""); err == nil {
		t.Error("bad algorithm accepted")
	}
	if _, _, err := parseFilters("", "bogus"); err == nil {
		t.Error("bad model accepted")
	}
}

func TestFindVariant(t *testing.T) {
	want := styles.Enumerate(styles.BFS, styles.CPP)[0]
	got, err := findVariant(want.Name())
	if err != nil || got != want {
		t.Fatalf("findVariant(%q) = %v, %v", want.Name(), got, err)
	}
	if _, err := findVariant("nope/nope"); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestLoadInput(t *testing.T) {
	g, err := loadInput("road", "tiny")
	if err != nil || g == nil || g.N == 0 {
		t.Fatalf("loadInput(road, tiny): %v, %v", g, err)
	}
	if _, err := loadInput("nope", "tiny"); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := loadInput("road", "nope"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestProfileByName(t *testing.T) {
	p, err := profileByName("rtx-sim")
	if err != nil || p.Name != "rtx-sim" {
		t.Fatalf("profileByName: %v, %v", p, err)
	}
	if _, err := profileByName("gtx-1080"); err == nil {
		t.Error("unknown profile accepted")
	}
}
