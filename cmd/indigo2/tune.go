package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/store"
	"indigo/internal/styles"
	"indigo/internal/sweep"
	"indigo/internal/trace"
	"indigo/internal/tune"
)

// cmdTune races style variants on one graph to a near-best config
// under a measurement budget — the empirical middle ground between
// `indigo2 run` (one variant) and a full sweep (all of them).
func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	algoName := fs.String("algo", "bfs", "algorithm to tune (bfs, sssp, cc, mis, pr, tc)")
	modelName := fs.String("model", "cuda", "programming model (cuda, omp, cpp)")
	input := fs.String("input", "rmat", "study input to tune on (ignored with -graph)")
	scale := fs.String("scale", "tiny", "input scale (tiny, small, medium, large)")
	graphPath := fs.String("graph", "", "graph file to tune on instead of a generated input (.gr = DIMACS, else edge list)")
	device := fs.String("device", "", "measurement device: cpu, rtx-sim, titan-sim (default: cpu for CPU models, rtx-sim for cuda)")
	seed := fs.Int64("seed", 1, "RNG seed; same seed + same graph = identical session")
	budget := fs.Int("budget", 0, "measurement budget (0 = a quarter of the variant space)")
	timeout := fs.Duration("timeout", 0, "whole-session deadline (0 = none)")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-trial deadline (0 = scale-aware default)")
	source := fs.Int("source", 0, "source vertex for bfs/sssp")
	threads := fs.Int("threads", 0, "CPU worker count (0 = all cores)")
	journal := fs.String("journal", "", "JSONL tune journal to write")
	resume := fs.Bool("resume", false, "replay trials already in -journal instead of re-running them")
	storePath := fs.String("store", "", "results store: warm-starts the cohort and reports regret vs the measured census")
	quiet := fs.Bool("q", false, "suppress rung-by-rung progress")
	tracePath := fs.String("trace", "", "JSONL trace journal to write (session, rungs, trials, attempts)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, m, err := parseCell(*algoName, *modelName)
	if err != nil {
		return err
	}
	tracer, err := trace.OpenJournal(*tracePath)
	if err != nil {
		return err
	}
	defer tracer.Close()
	root := tracer.Root("cli.tune")
	defer root.End()

	var g *graph.Graph
	inputName := ""
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(*graphPath), filepath.Ext(*graphPath))
		if filepath.Ext(*graphPath) == ".gr" {
			g, err = graph.ReadDIMACS(f, name)
		} else {
			g, err = graph.ReadEdgeList(f, name)
		}
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var in gen.Input
		if g, in, err = loadInputIndexed(*input, *scale); err != nil {
			return err
		}
		inputName = in.String()
	}

	dev := *device
	if dev == "" {
		dev = sweep.DeviceCPU
		if m == styles.CUDA {
			dev = "rtx-sim"
		}
	}
	if m == styles.CUDA {
		if _, err := profileByName(dev); err != nil {
			return err
		}
	} else if dev != sweep.DeviceCPU {
		return fmt.Errorf("device %q: %s variants run on the cpu", dev, m)
	}
	if *trialTimeout == 0 {
		sc, _ := gen.ParseScale(*scale)
		*trialTimeout = sweep.DefaultTimeout(sc)
	}

	var st *store.Store
	if *storePath != "" {
		if st, err = store.Open(*storePath); err != nil {
			return err
		}
		defer st.Close()
	}

	var gd *guard.Token
	if *timeout > 0 {
		gd = guard.New().WithTimeout(*timeout)
		defer gd.Release()
	}

	pr := tune.NewProbeRunner(g, dev, algo.Options{Threads: *threads, Source: int32(*source)},
		sweep.Options{Timeout: *trialTimeout, Verify: true, Outer: gd})
	defer pr.Close()

	var obs *tune.Observer
	if !*quiet {
		obs = &tune.Observer{
			Plan: func(space, budget, cohort int) {
				fmt.Fprintf(os.Stderr, "tune: %s/%s on %s (%s): %d variants, budget %d, cohort %d\n",
					a, m, g.Name, dev, space, budget, cohort)
			},
			RungStart: func(rung, alive, reps int) {
				fmt.Fprintf(os.Stderr, "tune: rung %d: %d alive, %d rep(s) each\n", rung, alive, reps)
			},
			Eliminated: func(rung int, name string, score, median float64) {
				fmt.Fprintf(os.Stderr, "tune:   cut %s (%.4f vs median %.4f)\n", name, score, median)
			},
			Improved: func(name, dim string, tput float64) {
				fmt.Fprintf(os.Stderr, "tune: refine(%s) -> %s (%.4f)\n", dim, name, tput)
			},
		}
	}

	res, err := tune.Run(tune.Options{
		Algo:            a,
		Model:           m,
		Device:          dev,
		Shape:           g.Stats(),
		Input:           inputName,
		Seed:            *seed,
		MaxMeasurements: *budget,
		Guard:           gd,
		Store:           st,
		Journal:         *journal,
		Resume:          *resume,
		Observer:        obs,
		Runner:          pr,
		Trace:           root,
	})
	if err != nil {
		return err
	}

	fmt.Printf("winner:       %s\n", res.Best.Name())
	fmt.Printf("throughput:   %.4f GE/s\n", res.Tput)
	fmt.Printf("measurements: %d fresh", res.Measurements)
	if res.Replayed > 0 {
		fmt.Printf(" + %d replayed", res.Replayed)
	}
	fmt.Printf(" of %d-variant space (%d rung(s))\n", res.Space, res.Rungs)
	for _, line := range res.Rationale {
		fmt.Printf("  - %s\n", line)
	}
	if res.Partial {
		fmt.Printf("partial:      %s\n", res.PartialReason)
	}
	if res.CensusBest > 0 {
		fmt.Printf("census best:  %.4f GE/s (regret %.2f%%)\n", res.CensusBest, 100*res.Regret)
	}
	return nil
}

// parseCell resolves required -algo and -model flags to a single cell.
func parseCell(algoName, modelName string) (styles.Algorithm, styles.Model, error) {
	algos, models, err := parseFilters(algoName, modelName)
	if err != nil {
		return 0, 0, err
	}
	if algoName == "" || len(algos) != 1 {
		return 0, 0, fmt.Errorf("tune needs exactly one -algo")
	}
	if modelName == "" || len(models) != 1 {
		return 0, 0, fmt.Errorf("tune needs exactly one -model")
	}
	return algos[0], models[0], nil
}
