package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/serve"
	"indigo/internal/store"
	"indigo/internal/trace"
)

// cmdServe runs the advisor/query HTTP service over a results store.
//
//	indigo2 serve -addr :8080 -store results.store
//	indigo2 serve -addr :8080 -store results.store -import sweep.jsonl -scale small
//
// With -import, the named sweep journal is merged into the store before
// serving (successful runs only; input shapes are resolved by
// regenerating the suite at -scale). SIGINT/SIGTERM drain gracefully:
// the listener closes immediately, in-flight requests finish.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	storePath := fs.String("store", "", "results store file (empty = in-memory, advisor-only)")
	importPath := fs.String("import", "", "sweep JSONL journal to merge into the store before serving")
	scaleName := fs.String("scale", "tiny", "suite scale for resolving -import input shapes")
	maxInflight := fs.Int("max-inflight", 64, "max concurrently served requests; excess sheds with 429")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	budget := fs.Int64("budget", 0, "per-request compute memory budget in bytes (0 = unlimited)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	cacheEntries := fs.Int("cache", 256, "response cache entries (negative disables caching)")
	parIngest := fs.Bool("ingest", true, "chunked parallel parse of uploaded graphs (-ingest=false uses the serial readers)")
	traceOn := fs.Bool("trace", false, "per-request tracing: X-Trace-Id on every /v1 response, spans via GET /v1/trace/{id}")
	traceRetain := fs.Int("trace-retain", 256, "traces kept in memory for /v1/trace lookups (with -trace)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (refused while draining)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	graph.SetSerialIngest(!*parIngest)

	var st *store.Store
	if *storePath == "" {
		st = store.NewMem()
	} else {
		var err error
		if st, err = store.Open(*storePath); err != nil {
			return err
		}
		defer st.Close()
	}

	if *importPath != "" {
		scale, ok := gen.ParseScale(*scaleName)
		if !ok {
			return fmt.Errorf("unknown scale %q", *scaleName)
		}
		n, err := store.ImportJournal(st, *importPath, store.ScaleResolver(scale))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "indigo2 serve: imported %d cells from %s\n", n, *importPath)
	}

	opt := serve.Options{
		Store:          st,
		MaxInflight:    *maxInflight,
		RequestTimeout: *timeout,
		RequestBudget:  *budget,
		DrainTimeout:   *drain,
		CacheEntries:   *cacheEntries,
		EnablePprof:    *pprofOn,
	}
	if *traceOn {
		ms := trace.NewMemSink(*traceRetain, 4096)
		tr := trace.New(trace.Config{Sink: ms})
		defer tr.Close()
		opt.Tracer = tr
		opt.TraceStore = ms
	}
	srv := serve.New(opt)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "indigo2 serve: listening on %s (%d cells)\n", *addr, st.Len())
	return srv.ListenAndServe(ctx, *addr)
}
