// Command tracecheck validates JSONL trace journals written by the
// -trace flags of indigo2 run/tune and the experiments driver.
//
// Usage:
//
//	tracecheck spans.jsonl [more.jsonl ...]
//	indigo2 run -variant ... -trace /dev/stdout | tracecheck -
//
// A journal is well-formed when every line parses, every span's end
// closes the innermost matching open span, no span reopens, and
// nothing is left open at EOF — the invariants the tracer's
// whole-span recording guarantees even under ring overflow. Exit
// status 1 on any malformed journal.
package main

import (
	"fmt"
	"io"
	"os"

	"indigo/internal/trace"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <journal.jsonl ...|->")
		os.Exit(2)
	}
	failed := false
	for _, path := range args {
		var r io.Reader
		name := path
		if path == "-" {
			r, name = os.Stdin, "stdin"
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
				failed = true
				continue
			}
			defer f.Close()
			r = f
		}
		stats, err := trace.CheckJournal(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok: %d lines, %d spans, %d points, %d traces\n",
			name, stats.Lines, stats.Spans, stats.Points, stats.Traces)
	}
	if failed {
		os.Exit(1)
	}
}
