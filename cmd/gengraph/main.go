// Command gengraph generates the study's synthetic inputs and either
// writes them to a file or prints their Table 4/5 shape signature.
//
// Usage:
//
//	gengraph -input road -scale small -format stats
//	gengraph -input rmat -scale medium -format dimacs -o rmat.gr
//	gengraph -input social -format edgelist -o social.el
package main

import (
	"flag"
	"fmt"
	"os"

	"indigo/internal/gen"
	"indigo/internal/graph"
)

func main() {
	input := flag.String("input", "road", "input to generate (grid2d, copaper, rmat, social, road, all)")
	scale := flag.String("scale", "small", "scale (tiny, small, medium, large)")
	format := flag.String("format", "stats", "output format (stats, dimacs, edgelist)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*input, *scale, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(input, scaleName, format, out string) error {
	scale, ok := gen.ParseScale(scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	var graphs []*graph.Graph
	if input == "all" {
		graphs = gen.Suite(scale)
	} else {
		found := false
		for in := gen.Input(0); in < gen.NumInputs; in++ {
			if in.String() == input {
				graphs = append(graphs, gen.Generate(in, scale))
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown input %q", input)
		}
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch format {
	case "stats":
		fmt.Fprintln(w, "name\tvertices\tedges\tMB\tdavg\tdmax\td>=32%\td>=512%\tdiameter")
		for _, g := range graphs {
			s := graph.ComputeStats(g)
			fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\t%d\t%.1f%%\t%.3f%%\t%d\n",
				s.Name, s.Vertices, s.Edges, s.SizeMB, s.AvgDegree, s.MaxDegree,
				s.PctDeg32, s.PctDeg512, s.Diameter)
		}
	case "dimacs":
		for _, g := range graphs {
			if err := graph.WriteDIMACS(w, g); err != nil {
				return err
			}
		}
	case "edgelist":
		for _, g := range graphs {
			if err := graph.WriteEdgeList(w, g); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
