// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -scale tiny -exp all
//	experiments -exp fig1,fig5,table3
//
// Experiment ids: table2 table3 table4 fig1..fig16 correlation all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indigo/internal/gen"
	"indigo/internal/harness"
)

func main() {
	scaleName := flag.String("scale", "tiny", "input scale (tiny, small, medium, large)")
	exp := flag.String("exp", "all", "comma-separated experiment ids (table2, table3, table4, fig1..fig16, correlation, all)")
	threads := flag.Int("threads", 0, "CPU worker count (0 = all cores)")
	verbose := flag.Bool("v", false, "print collection progress")
	flag.Parse()

	scale, ok := gen.ParseScale(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	s := harness.NewSession(scale, *threads)
	s.Verbose = *verbose

	drivers := map[string]func() *harness.Report{
		"table2": s.Table2, "table3": s.Table3, "table4": s.Table45,
		"fig1": s.Fig1, "fig2": s.Fig2, "fig3": s.Fig3, "fig4": s.Fig4,
		"fig5": s.Fig5, "fig6": s.Fig6, "fig7": s.Fig7, "fig8": s.Fig8,
		"fig9": s.Fig9, "fig10": s.Fig10, "fig11": s.Fig11, "fig12": s.Fig12,
		"fig13": s.Fig13, "fig14": s.Fig14, "fig15": s.Fig15, "fig16": s.Fig16,
		"correlation": s.Correlation, "spread": s.Spread, "ablation": s.Ablation,
	}

	if *exp == "all" {
		for _, r := range s.All() {
			fmt.Println(r)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		d, ok := drivers[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Println(d())
	}
}
