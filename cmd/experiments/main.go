// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -scale tiny -exp all
//	experiments -exp fig1,fig5,table3
//	experiments -scale small -journal sweep.jsonl        # journaled sweep
//	experiments -scale small -journal sweep.jsonl -resume # continue it
//	experiments -scale small -store results.store         # persistent results store
//
// Experiment ids: table2 table3 table4 fig1..fig16 correlation all.
//
// Collection runs through the sweep supervisor: every variant run has a
// deadline (-timeout, scale-aware default), panics and wrong answers
// are recorded as failures instead of aborting, and with -journal each
// measurement is appended to a JSONL file so -resume re-runs only the
// variants the journal is missing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/harness"
	"indigo/internal/scratch"
	"indigo/internal/store"
	"indigo/internal/sweep"
	"indigo/internal/trace"
)

func main() {
	scaleName := flag.String("scale", "tiny", "input scale (tiny, small, medium, large)")
	exp := flag.String("exp", "all", "comma-separated experiment ids (table2, table3, table4, fig1..fig16, correlation, all)")
	threads := flag.Int("threads", 0, "CPU worker count (0 = all cores)")
	verbose := flag.Bool("v", false, "print collection progress")
	timeout := flag.Duration("timeout", 0, "per-variant deadline (0 = scale-aware default)")
	journal := flag.String("journal", "", "JSONL measurement journal to append to")
	resume := flag.Bool("resume", false, "skip variants already recorded in -journal")
	storePath := flag.String("store", "", "results store file: completed runs are appended, existing cells seed the session")
	useScratch := flag.Bool("scratch", true, "reuse scratch arenas across runs (-scratch=false allocates per run)")
	parIngest := flag.Bool("ingest", true, "chunked parallel graph ingest (-ingest=false uses the serial readers/build)")
	tracePath := flag.String("trace", "", "JSONL trace journal to write (one sweep.task span per run)")
	flag.Parse()
	scratch.SetEnabled(*useScratch)
	graph.SetSerialIngest(!*parIngest)

	tracer, err := trace.OpenJournal(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer tracer.Close()
	root := tracer.Root("cli.experiments")
	defer root.End()

	scale, ok := gen.ParseScale(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	s := harness.NewSession(scale, *threads)
	s.Verbose = *verbose
	if *timeout > 0 {
		s.Sweep.Timeout = *timeout
	}
	s.Sweep.Journal = *journal
	s.Sweep.Resume = *resume
	s.Sweep.Progress = progress(*verbose)
	s.Sweep.Trace = root
	if *storePath != "" {
		st, err := store.Open(*storePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		// Cells already in the store seed the session (those pairs are
		// not re-run); everything newly measured is appended back.
		if n := s.LoadStore(st); n > 0 && *verbose {
			fmt.Fprintf(os.Stderr, "experiments: loaded %d cells from %s\n", n, *storePath)
		}
		s.AttachStore(st)
	}
	if err := s.InitSweep(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer s.CloseSweep()

	drivers := map[string]func() *harness.Report{
		"table2": s.Table2, "table3": s.Table3, "table4": s.Table45,
		"fig1": s.Fig1, "fig2": s.Fig2, "fig3": s.Fig3, "fig4": s.Fig4,
		"fig5": s.Fig5, "fig6": s.Fig6, "fig7": s.Fig7, "fig8": s.Fig8,
		"fig9": s.Fig9, "fig10": s.Fig10, "fig11": s.Fig11, "fig12": s.Fig12,
		"fig13": s.Fig13, "fig14": s.Fig14, "fig15": s.Fig15, "fig16": s.Fig16,
		"correlation": s.Correlation, "spread": s.Spread, "ablation": s.Ablation,
	}

	if *exp == "all" {
		for _, r := range s.All() {
			fmt.Println(r)
		}
		summarize(s)
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		d, ok := drivers[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Println(d())
	}
	summarize(s)
}

// progress reports supervised-sweep progress on stderr: failures always,
// plus a heartbeat every 200 tasks when verbose.
func progress(verbose bool) func(done, total int, o sweep.Outcome) {
	return func(done, total int, o sweep.Outcome) {
		if o.Kind != sweep.OK && o.Kind != sweep.Quarantined {
			fmt.Fprintf(os.Stderr, "  FAIL %s [%d/%d]: %s on %s (%s): %s\n",
				o.Kind, done, total, o.Cfg.Name(), o.Input, o.Device, o.Err)
			return
		}
		if verbose && (done%200 == 0 || done == total) {
			fmt.Fprintf(os.Stderr, "  progress: %d/%d runs\n", done, total)
		}
	}
}

// summarize prints the failure tally of the whole session, if any.
func summarize(s *harness.Session) {
	fails := s.Failures()
	if len(fails) == 0 {
		return
	}
	counts := make(map[sweep.Kind]int)
	for _, f := range fails {
		counts[f.Kind]++
	}
	fmt.Fprintf(os.Stderr, "experiments: %d runs failed:", len(fails))
	for k := sweep.Timeout; k <= sweep.Quarantined; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(os.Stderr, " %d %s", counts[k], k)
		}
	}
	fmt.Fprintln(os.Stderr)
}
