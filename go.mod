module indigo

go 1.24
