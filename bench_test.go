// Package indigo_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§4-§5). Each benchmark
// recomputes one table/figure from the shared measurement session and
// reports the paper-comparable headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports (shapes, not absolute
// numbers — see EXPERIMENTS.md).
package indigo_test

import (
	"sync"
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/harness"
	"indigo/internal/par"
	"indigo/internal/runner"
	"indigo/internal/stats"
	"indigo/internal/styles"
)

var (
	sessOnce sync.Once
	sess     *harness.Session
)

// session lazily builds one shared measurement session at the tiny
// scale (collection covers 850 variants x 5 inputs, CUDA on 2 devices).
func session() *harness.Session {
	sessOnce.Do(func() {
		sess = harness.NewSession(gen.Tiny, 0)
	})
	return sess
}

// reportMedian attaches per-algorithm median ratios as bench metrics.
func reportMedian(b *testing.B, prefix string, ratios map[styles.Algorithm][]float64) {
	b.Helper()
	for a, xs := range ratios {
		if len(xs) > 0 {
			b.ReportMetric(stats.Median(xs), prefix+"-"+a.String()+"-medratio")
		}
	}
}

func BenchmarkTable2StyleMatrix(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Table2()
	}
	b.Logf("\n%s", r)
}

func BenchmarkTable3VariantCounts(b *testing.B) {
	s := session()
	var r *harness.Report
	total := 0
	for i := 0; i < b.N; i++ {
		r = s.Table3()
		total = len(styles.EnumerateAll())
	}
	b.ReportMetric(float64(total), "variants")
	b.Logf("\n%s", r)
}

func BenchmarkTable4GraphStats(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Table45()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig01AtomicVsCudaAtomic(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig1()
	}
	for _, dev := range []string{"rtx-sim", "titan-sim"} {
		ratios := s.RatiosByAlgo("atomics", int(styles.ClassicAtomic), int(styles.CudaAtomic),
			func(m harness.Meas) bool { return m.Device == dev && m.Cfg.Algo == styles.SSSP })
		reportMedian(b, dev, ratios)
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig02VertexVsEdge(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig2()
	}
	ratios := s.RatiosByAlgo("iterate", int(styles.VertexBased), int(styles.EdgeBased),
		func(m harness.Meas) bool {
			return m.Cfg.Model == styles.CUDA && m.Cfg.Atomics == styles.ClassicAtomic
		})
	reportMedian(b, "cuda", ratios)
	b.Logf("\n%s", r)
}

func BenchmarkFig03TopoVsDataDup(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig3()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig04TopoVsDataNoDup(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig4()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig05PushVsPull(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig5()
	}
	ratios := s.RatiosByAlgo("flow", int(styles.Push), int(styles.Pull),
		func(m harness.Meas) bool {
			return m.Cfg.Model == styles.CUDA && m.Cfg.Atomics == styles.ClassicAtomic
		})
	reportMedian(b, "cuda", ratios)
	b.Logf("\n%s", r)
}

func BenchmarkFig06RWvsRMW(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig6()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig07DetVsNonDet(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig7()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig08Persistence(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig8()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig09Granularity(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig9()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig10GPUReductions(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig10()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig11CPUReductions(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig11()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig12OMPScheduling(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig12()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig13CPPScheduling(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig13()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig14BestStyleCensus(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig14()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig15CombinationMatrix(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig15()
	}
	b.Logf("\n%s", r)
}

func BenchmarkFig16Baselines(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Fig16()
	}
	b.Logf("\n%s", r)
}

func BenchmarkCorrelation(b *testing.B) {
	s := session()
	var r *harness.Report
	for i := 0; i < b.N; i++ {
		r = s.Correlation()
	}
	b.Logf("\n%s", r)
}

// --- Substrate microbenchmarks: the building blocks' raw costs. ---

func benchGraph() *graph.Graph {
	return gen.Generate(gen.InputSocial, gen.Small)
}

func BenchmarkSubstrateParForStatic(b *testing.B) {
	var sink par.Sync = par.CAS{}
	xs := make([]int32, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.For(0, int64(len(xs)), par.Static, func(j int64) {
			sink.Store(&xs[j], int32(j))
		})
	}
}

func BenchmarkSubstrateParForDynamic(b *testing.B) {
	var sink par.Sync = par.CAS{}
	xs := make([]int32, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.For(0, int64(len(xs)), par.Dynamic, func(j int64) {
			sink.Store(&xs[j], int32(j))
		})
	}
}

func BenchmarkSubstrateGPULaunch(b *testing.B) {
	d := gpusim.New(gpusim.RTXSim())
	a := d.AllocI32(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch(gpusim.LaunchCfg{Blocks: gpusim.GridSize(a.Len(), 256)}, func(w *gpusim.Warp) {
			base := w.Gidx(0)
			if base < a.Len() {
				cnt := 32
				if rem := a.Len() - base; rem < 32 {
					cnt = int(rem)
				}
				w.CoalLdI32(a, base, cnt)
			}
		})
	}
}

func BenchmarkVariantSSSPDataDrivenCPP(b *testing.B) {
	g := benchGraph()
	cfg := styles.Config{
		Algo: styles.SSSP, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	opt := algo.Options{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
	}
}

// BenchmarkVariantBFSRoadPoolVsSpawn is the end-to-end case the pool
// runtime targets: a road network's BFS runs hundreds of rounds with
// small frontiers, so per-region dispatch overhead dominates. "pooled"
// pins one persistent pool for the whole run; "spawn" forces the legacy
// spawn-per-region path. cmd/bench records the ratio in BENCH_pool.json.
func BenchmarkVariantBFSRoadPoolVsSpawn(b *testing.B) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	const threads = 4
	b.Run("pooled", func(b *testing.B) {
		p := par.NewPool(threads)
		defer p.Close()
		opt := algo.Options{Threads: threads, Pool: p}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
		}
	})
	b.Run("spawn", func(b *testing.B) {
		defer par.SetPooling(true)
		par.SetPooling(false)
		opt := algo.Options{Threads: threads}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runner.RunCPU(g, cfg, opt) //nolint:errcheck // benchmark body
		}
	})
}

func BenchmarkVariantBFSWarpGPU(b *testing.B) {
	g := benchGraph()
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.CUDA, Flow: styles.Push,
		Det: styles.NonDeterministic, Update: styles.ReadModifyWrite,
		Gran: styles.WarpGran,
	}
	opt := algo.Options{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.RunGPU(gpusim.New(gpusim.RTXSim()), g, cfg, opt) //nolint:errcheck // benchmark body
	}
}
