package gen

import "indigo/internal/graph"

// Scale selects how large the five study inputs are. The paper's inputs
// have 0.26M-4.8M vertices; the scaled-down suite preserves the Table 5
// degree/diameter signatures at laptop-friendly sizes.
type Scale int

const (
	// Tiny is for unit tests: a few hundred vertices per input.
	Tiny Scale = iota
	// Small is the default experiment scale: a few thousand vertices,
	// small enough that all figures regenerate in minutes.
	Small
	// Medium is for longer benchmark runs: tens of thousands of vertices.
	Medium
	// Large approaches the paper's smallest input sizes.
	Large
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// ParseScale converts a string flag value to a Scale.
func ParseScale(s string) (Scale, bool) {
	switch s {
	case "tiny":
		return Tiny, true
	case "small":
		return Small, true
	case "medium":
		return Medium, true
	case "large":
		return Large, true
	}
	return Small, false
}

// Input identifies one of the five study inputs.
type Input int

const (
	InputGrid    Input = iota // 2d-2e20.sym stand-in
	InputCoPaper              // coPapersDBLP stand-in
	InputRMAT                 // rmat22.sym stand-in
	InputSocial               // soc-LiveJournal1 stand-in
	InputRoad                 // USA-road-d.NY stand-in
	NumInputs
)

func (in Input) String() string {
	switch in {
	case InputGrid:
		return "grid2d"
	case InputCoPaper:
		return "copaper"
	case InputRMAT:
		return "rmat"
	case InputSocial:
		return "social"
	case InputRoad:
		return "road"
	}
	return "unknown"
}

// PaperName returns the name of the dataset this input stands in for.
func (in Input) PaperName() string {
	switch in {
	case InputGrid:
		return "2d-2e20.sym"
	case InputCoPaper:
		return "coPapersDBLP"
	case InputRMAT:
		return "rmat22.sym"
	case InputSocial:
		return "soc-LiveJournal1"
	case InputRoad:
		return "USA-road-d.NY"
	}
	return "unknown"
}

// suiteSeed fixes the generator seed so the whole study is reproducible.
const suiteSeed = 23

// Generate builds the given input at the given scale.
func Generate(in Input, s Scale) *graph.Graph {
	switch in {
	case InputGrid:
		side := []int32{20, 64, 192, 512}[s]
		return Grid2D(side, side, suiteSeed)
	case InputCoPaper:
		n := []int32{300, 2000, 12000, 64000}[s]
		// ~2.3 papers per author keeps avg directed degree near 56.
		return CoPaper(n, int(n)*23/10, suiteSeed+1)
	case InputRMAT:
		scale := []uint{8, 12, 15, 18}[s]
		return RMAT(scale, 8, suiteSeed+2)
	case InputSocial:
		n := []int32{400, 4000, 32000, 256000}[s]
		return Social(n, 9, suiteSeed+3)
	case InputRoad:
		w := []int32{24, 80, 224, 640}[s]
		return Road(w, w/2, suiteSeed+4)
	}
	panic("gen.Generate: unknown input")
}

// Suite generates all five study inputs at the given scale, in the
// fixed order of the Input constants.
func Suite(s Scale) []*graph.Graph {
	gs := make([]*graph.Graph, NumInputs)
	for in := Input(0); in < NumInputs; in++ {
		gs[in] = Generate(in, s)
	}
	return gs
}
