package gen

import (
	"testing"

	"indigo/internal/graph"
)

func TestGrid2DShape(t *testing.T) {
	g := Grid2D(8, 5, 1)
	if g.N != 40 {
		t.Fatalf("N = %d, want 40", g.N)
	}
	// Undirected edges: 7*5 horizontal + 8*4 vertical = 67 -> 134 directed.
	if g.M() != 134 {
		t.Fatalf("M = %d, want 134", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.MaxDegree != 4 {
		t.Errorf("MaxDegree = %d, want 4", s.MaxDegree)
	}
	if s.Diameter != 8+5-2 {
		t.Errorf("Diameter = %d, want %d", s.Diameter, 8+5-2)
	}
}

func TestRoadSignature(t *testing.T) {
	g := Road(40, 20, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// USA-road-d.NY signature: avg degree ~2.8, max <= 8, no vertex with
	// degree >= 32, large diameter.
	if s.AvgDegree < 2.0 || s.AvgDegree > 3.6 {
		t.Errorf("AvgDegree = %v, want ~2.8", s.AvgDegree)
	}
	if s.MaxDegree > 8 {
		t.Errorf("MaxDegree = %d, want <= 8", s.MaxDegree)
	}
	if s.PctDeg32 != 0 {
		t.Errorf("PctDeg32 = %v, want 0", s.PctDeg32)
	}
	if s.Diameter < 30 {
		t.Errorf("Diameter = %d, want high (>= 30)", s.Diameter)
	}
}

func TestRMATSignature(t *testing.T) {
	g := RMAT(10, 8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Fatalf("N = %d, want 1024", g.N)
	}
	s := graph.ComputeStats(g)
	// Skewed degrees: some vertices well above average, small diameter.
	if s.MaxDegree < 4*int64(s.AvgDegree) {
		t.Errorf("MaxDegree = %d not skewed vs avg %v", s.MaxDegree, s.AvgDegree)
	}
	if s.Diameter > 20 {
		t.Errorf("Diameter = %d, want small", s.Diameter)
	}
}

func TestSocialSignature(t *testing.T) {
	g := Social(2000, 9, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// Power law: very high max degree, avg near 2*m = 18, tiny diameter.
	if s.AvgDegree < 14 || s.AvgDegree > 22 {
		t.Errorf("AvgDegree = %v, want ~18", s.AvgDegree)
	}
	if s.MaxDegree < 100 {
		t.Errorf("MaxDegree = %d, want power-law hub (>= 100)", s.MaxDegree)
	}
	if s.Diameter > 10 {
		t.Errorf("Diameter = %d, want small", s.Diameter)
	}
}

func TestCoPaperSignature(t *testing.T) {
	g := CoPaper(1000, 2300, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// coPapersDBLP signature: high avg degree, majority of vertices with
	// degree >= 32, small diameter.
	if s.AvgDegree < 30 {
		t.Errorf("AvgDegree = %v, want high (>= 30)", s.AvgDegree)
	}
	if s.PctDeg32 < 40 {
		t.Errorf("PctDeg32 = %v, want >= 40", s.PctDeg32)
	}
	if s.Diameter > 15 {
		t.Errorf("Diameter = %d, want small", s.Diameter)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Social(500, 5, 11)
	b := Social(500, 5, 11)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for i := int64(0); i < a.M(); i++ {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] || a.Weights[i] != b.Weights[i] {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
	c := Social(500, 5, 12)
	same := a.M() == c.M()
	if same {
		for i := int64(0); i < a.M(); i++ {
			if a.Src[i] != c.Src[i] || a.Dst[i] != c.Dst[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSuiteTiny(t *testing.T) {
	gs := Suite(Tiny)
	if len(gs) != int(NumInputs) {
		t.Fatalf("suite has %d graphs, want %d", len(gs), NumInputs)
	}
	for i, g := range gs {
		if err := g.Validate(); err != nil {
			t.Errorf("input %s: %v", Input(i), err)
		}
		if g.N == 0 || g.M() == 0 {
			t.Errorf("input %s: empty graph", Input(i))
		}
		// Every input should be connected (diameter reachable everywhere)
		// enough for traversal algorithms to do real work.
		if d := graph.EstimateDiameter(g); d < 2 {
			t.Errorf("input %s: diameter %d too small", Input(i), d)
		}
	}
}

func TestInputNames(t *testing.T) {
	for in := Input(0); in < NumInputs; in++ {
		if in.String() == "unknown" || in.PaperName() == "unknown" {
			t.Errorf("input %d has no name", in)
		}
	}
	if _, ok := ParseScale("small"); !ok {
		t.Error("ParseScale(small) failed")
	}
	if _, ok := ParseScale("bogus"); ok {
		t.Error("ParseScale(bogus) succeeded")
	}
	for _, s := range []Scale{Tiny, Small, Medium, Large} {
		got, ok := ParseScale(s.String())
		if !ok || got != s {
			t.Errorf("ParseScale(%q) = %v,%v", s.String(), got, ok)
		}
	}
}
