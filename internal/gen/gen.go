// Package gen produces the study's five input graphs as deterministic
// synthetic stand-ins for the downloaded datasets of paper Table 4
// (2d-2e20.sym, USA-road-d.NY, rmat22.sym, soc-LiveJournal1,
// coPapersDBLP). Each generator is shaped to match the Table 5 signature
// of its counterpart — average/maximum degree, the fraction of vertices
// with degree >= 32 and >= 512, and the diameter class — because those
// are the properties the paper ties performance behavior to (§5.13).
//
// All generators are deterministic for a given seed and scale, so every
// experiment and benchmark is reproducible. Generators accumulate edges
// through graph.Builder and finish with Build(), so past the small-input
// cutoff they get the parallel counting-sort CSR construction
// (DESIGN.md §12) — identical output, O(m) instead of a global
// comparison sort — with no generator-side changes.
package gen

import (
	"fmt"
	"math/rand"

	"indigo/internal/graph"
)

// maxWeight bounds the random edge weights (inclusive lower bound is 1).
const maxWeight = 255

// Grid2D generates a width x height 2D grid with 4-neighbor connectivity,
// the stand-in for 2d-2e20.sym: uniform degree 4 (interior), no
// high-degree vertices, and a very large diameter (width+height-2).
func Grid2D(width, height int32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := width * height
	b := graph.NewBuilder(fmt.Sprintf("grid2d-%dx%d", width, height), n)
	id := func(x, y int32) int32 { return y*width + x }
	for y := int32(0); y < height; y++ {
		for x := int32(0); x < width; x++ {
			if x+1 < width {
				b.AddEdge(id(x, y), id(x+1, y), weight(rng))
			}
			if y+1 < height {
				b.AddEdge(id(x, y), id(x, y+1), weight(rng))
			}
		}
	}
	return b.Build()
}

// Road generates a road-network-like graph, the stand-in for
// USA-road-d.NY: average degree ~2.8, maximum degree <= 8, and a high
// diameter. It starts from a 2D grid, deletes a fraction of grid edges,
// and keeps the graph connected with a random spanning tree laid over the
// grid coordinates, mimicking the sparse, high-diameter structure of
// urban road maps.
func Road(width, height int32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := width * height
	b := graph.NewBuilder(fmt.Sprintf("road-%dx%d", width, height), n)
	id := func(x, y int32) int32 { return y*width + x }
	// Spanning structure: serpentine path guarantees connectivity while
	// keeping the diameter on the order of the grid dimensions.
	for y := int32(0); y < height; y++ {
		for x := int32(0); x+1 < width; x++ {
			b.AddEdge(id(x, y), id(x+1, y), weight(rng))
		}
		if y+1 < height {
			x := int32(0)
			if y%2 == 1 {
				x = width - 1
			}
			b.AddEdge(id(x, y), id(x, y+1), weight(rng))
		}
	}
	// Sparse vertical connectors: roughly 40% of vertical grid edges,
	// which brings the average degree to ~2.8 like the NY road map.
	for y := int32(0); y+1 < height; y++ {
		for x := int32(0); x < width; x++ {
			if rng.Float64() < 0.40 {
				b.AddEdge(id(x, y), id(x, y+1), weight(rng))
			}
		}
	}
	return b.Build()
}

// RMAT generates a recursive-matrix graph with the canonical Graph500
// partition probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), the
// stand-in for rmat22.sym: skewed degrees with a moderate maximum and a
// small diameter. n must be a power of two; edgeFactor is the ratio of
// undirected edges to vertices (the paper's rmat22 has ~15.7 directed
// edges per vertex, i.e. edgeFactor ~8).
func RMAT(scale uint, edgeFactor int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := int32(1) << scale
	b := graph.NewBuilder(fmt.Sprintf("rmat-s%d", scale), n)
	edges := int(n) * edgeFactor
	for i := 0; i < edges; i++ {
		u, v := rmatEdge(rng, scale)
		b.AddEdge(u, v, weight(rng))
	}
	return b.Build()
}

func rmatEdge(rng *rand.Rand, scale uint) (int32, int32) {
	var u, v int32
	for bit := uint(0); bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < 0.57: // a: top-left
		case r < 0.76: // b: top-right
			v |= 1 << bit
		case r < 0.95: // c: bottom-left
			u |= 1 << bit
		default: // d: bottom-right
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

// Social generates a preferential-attachment (Barabási–Albert) graph,
// the stand-in for soc-LiveJournal1: a power-law degree distribution
// with a very high maximum degree, average degree ~2*m, and a small
// diameter. Each new vertex attaches to m existing vertices chosen
// proportionally to degree.
func Social(n int32, m int, seed int64) *graph.Graph {
	if int32(m)+1 > n {
		panic(fmt.Sprintf("gen.Social: m=%d too large for n=%d", m, n))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(fmt.Sprintf("social-%d", n), n)
	// Attachment targets are sampled from a list containing one entry per
	// edge endpoint, which realizes degree-proportional sampling.
	endpoints := make([]int32, 0, 2*int(n)*m)
	// Seed clique over the first m+1 vertices.
	for u := int32(0); u <= int32(m); u++ {
		for v := u + 1; v <= int32(m); v++ {
			b.AddEdge(u, v, weight(rng))
			endpoints = append(endpoints, u, v)
		}
	}
	chosen := make(map[int32]bool, m)
	targets := make([]int32, 0, m)
	for v := int32(m) + 1; v < n; v++ {
		clear(chosen)
		targets = targets[:0]
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != v && !chosen[t] {
				chosen[t] = true
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(v, t, weight(rng))
			endpoints = append(endpoints, v, t)
		}
	}
	return b.Build()
}

// CoPaper generates a co-authorship-style graph, the stand-in for
// coPapersDBLP: a union of author cliques (one clique per "paper") that
// yields a high average degree (~56 directed) and a majority of vertices
// with degree >= 32, with a small diameter. papers controls the number
// of cliques; authors are drawn with locality so that collaboration
// groups overlap.
func CoPaper(n int32, papers int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(fmt.Sprintf("copaper-%d", n), n)
	for p := 0; p < papers; p++ {
		// Clique size 3..12, biased small (like real author lists).
		size := 3 + rng.Intn(10)
		// Authors cluster around a random community center.
		center := rng.Int31n(n)
		members := make([]int32, 0, size)
		for len(members) < size {
			// Offset within a community of ~200 authors.
			a := center + rng.Int31n(200) - 100
			if a < 0 {
				a += n
			}
			if a >= n {
				a -= n
			}
			members = append(members, a)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if members[i] != members[j] {
					b.AddEdge(members[i], members[j], weight(rng))
				}
			}
		}
	}
	// Connect stragglers: a sparse ring keeps the graph connected so
	// diameter estimation and traversal cover all vertices.
	for v := int32(0); v < n; v++ {
		b.AddEdge(v, (v+1)%n, weight(rng))
	}
	return b.Build()
}

func weight(rng *rand.Rand) int32 { return rng.Int31n(maxWeight) + 1 }
