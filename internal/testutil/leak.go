// Package testutil holds cross-package test helpers. Its centerpiece is
// the goroutine-leak checker the cancellation work is judged by: serve,
// sweep, and par tests snapshot the goroutine set before the scenario
// and assert afterwards that nothing the scenario started is still
// running — a pool worker surviving a timeout, a coalescing waiter stuck
// on a dead flight, a BindContext watcher nobody detached.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"time"
)

// defaultIgnores are stack substrings that mark goroutines the checker
// never counts as leaks: the runtime's own helpers and the testing
// framework's machinery, which come and go outside the test's control.
var defaultIgnores = []string{
	"testing.(*T).Run",          // parent test goroutines
	"testing.tRunner",           // the test itself and parallel siblings
	"testing.runTests",          // the framework's driver
	"runtime.goexit0",           // exiting, not leaked
	"runtime.gc",                // background collector
	"runtime.bgsweep",           // background sweeper
	"runtime.bgscavenge",        // background scavenger
	"runtime/trace",             // execution tracer
	"runtime.ReadTrace",         // execution tracer reader
	"runtime.ensureSigM",        // signal mask goroutine
	"os/signal.signal_recv",     // signal delivery
	"os/signal.loop",            // signal delivery loop
	"net/http.(*Server).Serve",  // listeners owned by still-open servers
	"created by runtime.gc",     // GC helper spawns
	"runtime.MutexProfile",      // profiler
	"runtime/pprof",             // profiler writers
}

// Leaks is the goroutine-leak checker. Take a snapshot with Snapshot
// before the scenario, run it, then call Check (usually via defer):
//
//	defer testutil.Snapshot(t, "par.(*Pool).work").Check(t)
//
// Extra arguments to Snapshot are additional stack substrings to ignore
// (e.g. goroutines an outer fixture legitimately keeps alive).
type Leaks struct {
	before  map[string]bool
	ignores []string
}

// errorer is the slice of testing.TB the checker needs; it keeps the
// package importable from non-test code (cmd/bench's alloc checks).
type errorer interface {
	Helper()
	Errorf(format string, args ...any)
}

// Snapshot records the currently running goroutines. tb may be nil.
func Snapshot(tb errorer, ignore ...string) *Leaks {
	if tb != nil {
		tb.Helper()
	}
	l := &Leaks{ignores: append(append([]string{}, defaultIgnores...), ignore...)}
	l.before = map[string]bool{}
	for _, g := range stacks() {
		l.before[goid(g)] = true
	}
	return l
}

// Check asserts that every goroutine running now either existed at
// Snapshot time or matches an ignore pattern. Goroutines need time to
// unwind after a cancel or Close, so Check retries with backoff for up
// to ~2s before declaring a leak; on failure it reports each leaked
// goroutine's full stack.
func (l *Leaks) Check(tb errorer) {
	tb.Helper()
	var leaked []string
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaked = leaked[:0]
		for _, g := range stacks() {
			if l.before[goid(g)] || l.ignored(g) {
				continue
			}
			leaked = append(leaked, g)
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	sort.Strings(leaked)
	tb.Errorf("testutil: %d leaked goroutine(s):\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
}

func (l *Leaks) ignored(stack string) bool {
	for _, pat := range l.ignores {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// stacks returns one stack dump per live goroutine, excluding the caller's.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	all := strings.Split(string(buf), "\n\n")
	out := all[:0]
	for _, g := range all {
		if strings.HasPrefix(g, "goroutine ") && !strings.Contains(g, "testutil.stacks") {
			out = append(out, g)
		}
	}
	return out
}

// goid extracts the "goroutine N" identity line from a stack dump. IDs
// are never reused within a process, so membership in the before-set is
// a stable identity test.
func goid(stack string) string {
	if i := strings.IndexByte(stack, '['); i > 0 {
		return strings.TrimSpace(stack[:i])
	}
	if i := strings.IndexByte(stack, '\n'); i > 0 {
		return stack[:i]
	}
	return stack
}
