package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"indigo/internal/trace"
)

// parseExposition parses Prometheus text exposition into sample ->
// value, failing the test on any line that is neither a comment nor a
// well-formed sample. The full sample string (name plus label set) is
// the key.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (-?[0-9.+eE]+|[+-]Inf|NaN)$`)
	out := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("exposition line %d does not parse: %q", i+1, line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("exposition line %d value %q: %v", i+1, m[2], err)
		}
		if _, dup := out[m[1]]; dup {
			t.Fatalf("exposition line %d repeats sample %q", i+1, m[1])
		}
		out[m[1]] = v
	}
	return out
}

// bucketSample renders the histogram sample key for one route/le pair.
func bucketSample(route, le string) string {
	return fmt.Sprintf("indigo_http_request_duration_ms_bucket{route=%q,le=%q}", route, le)
}

// checkBucketsCumulative asserts the route's exported buckets are
// monotone non-decreasing in le and that +Inf equals _count.
func checkBucketsCumulative(t *testing.T, samples map[string]float64, route string) {
	t.Helper()
	prev := -1.0
	for _, ub := range latencyBucketsMS {
		key := bucketSample(route, fmt.Sprintf("%g", ub))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket sample %s", key)
		}
		if v < prev {
			t.Errorf("bucket %s = %g < previous %g: not cumulative", key, v, prev)
		}
		prev = v
	}
	inf, ok := samples[bucketSample(route, "+Inf")]
	if !ok {
		t.Fatalf("missing +Inf bucket for route %s", route)
	}
	if inf < prev {
		t.Errorf("+Inf bucket %g < last finite bucket %g for route %s", inf, prev, route)
	}
	count, ok := samples[fmt.Sprintf("indigo_http_request_duration_ms_count{route=%q}", route)]
	if !ok {
		t.Fatalf("missing _count for route %s", route)
	}
	if inf != count {
		t.Errorf("+Inf bucket %g != _count %g for route %s", inf, count, route)
	}
}

// TestHistogramBucketsCumulative is the regression test for the le_*
// export bug: observations spread across bins must export as monotone
// cumulative less-or-equal counts, not raw per-bin counts.
func TestHistogramBucketsCumulative(t *testing.T) {
	var m metrics
	// One observation per bin, including +Inf, so a per-bin (broken)
	// export would be flat 1s — visibly non-cumulative is impossible,
	// but the cumulative sum must strictly grow.
	for _, ms := range []float64{0.1, 0.4, 0.9, 2, 4, 9, 20, 40, 90, 200, 400, 900, 5000} {
		m.observe(routeAdvise, 200, time.Duration(ms*float64(time.Millisecond)))
	}
	samples := parseExposition(t, string(m.prometheus(0, 0, traceStats{})))
	checkBucketsCumulative(t, samples, "/v1/advise")
	// With one observation per bin the cumulative counts are 1..13.
	for i, ub := range latencyBucketsMS {
		key := bucketSample("/v1/advise", fmt.Sprintf("%g", ub))
		if got := samples[key]; got != float64(i+1) {
			t.Errorf("%s = %g, want %d", key, got, i+1)
		}
	}
	if got := samples[bucketSample("/v1/advise", "+Inf")]; got != 13 {
		t.Errorf("+Inf = %g, want 13", got)
	}

	// The JSON form's latency_ms must be cumulative too.
	var doc struct {
		LatencyMS map[string]int64 `json:"latency_ms"`
	}
	if err := json.Unmarshal(m.snapshot(0, 0, traceStats{}), &doc); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(doc.LatencyMS))
	for k := range doc.LatencyMS {
		keys = append(keys, k)
	}
	// Order keys by bucket bound (le_inf last).
	sort.Slice(keys, func(i, j int) bool {
		bound := func(k string) float64 {
			if k == "le_inf" {
				return 1e18
			}
			f, _ := strconv.ParseFloat(strings.TrimPrefix(k, "le_"), 64)
			return f
		}
		return bound(keys[i]) < bound(keys[j])
	})
	var prev int64 = -1
	for _, k := range keys {
		if doc.LatencyMS[k] < prev {
			t.Errorf("json latency %s = %d < previous %d: not cumulative", k, doc.LatencyMS[k], prev)
		}
		prev = doc.LatencyMS[k]
	}
	if doc.LatencyMS["le_inf"] != 13 {
		t.Errorf("json le_inf = %d, want 13", doc.LatencyMS["le_inf"])
	}
}

// TestSnapshotEmitsZeroSeries is the regression test for the series-
// dropping bug: a fresh server's scrape must carry every route and
// every status class at zero, in both representations, so dashboards
// never see a series blink in and out of existence.
func TestSnapshotEmitsZeroSeries(t *testing.T) {
	var m metrics
	var doc struct {
		Requests  map[string]int64 `json:"requests"`
		Responses map[string]int64 `json:"responses"`
	}
	if err := json.Unmarshal(m.snapshot(0, 0, traceStats{}), &doc); err != nil {
		t.Fatal(err)
	}
	for rt := route(0); rt < numRoutes; rt++ {
		if v, ok := doc.Requests[rt.String()]; !ok || v != 0 {
			t.Errorf("json requests[%s] = %d, present=%v; want 0, present", rt, v, ok)
		}
	}
	for i := 0; i < 6; i++ {
		if v, ok := doc.Responses[statusClass(i)]; !ok || v != 0 {
			t.Errorf("json responses[%s] = %d, present=%v; want 0, present", statusClass(i), v, ok)
		}
	}

	samples := parseExposition(t, string(m.prometheus(0, 0, traceStats{})))
	for rt := route(0); rt < numRoutes; rt++ {
		key := fmt.Sprintf("indigo_http_requests_total{route=%q}", rt.String())
		if v, ok := samples[key]; !ok || v != 0 {
			t.Errorf("%s = %g, present=%v; want 0, present", key, v, ok)
		}
	}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("indigo_http_responses_total{class=%q}", statusClass(i))
		if v, ok := samples[key]; !ok || v != 0 {
			t.Errorf("%s = %g, present=%v; want 0, present", key, v, ok)
		}
	}
}

// TestStoreGenerationUnsigned is the regression test for the
// int64(storeGen) cast: a generation past the int64 midpoint must
// render as a large positive number, not a negative one.
func TestStoreGenerationUnsigned(t *testing.T) {
	var m metrics
	gen := uint64(1)<<63 + 42
	body := m.snapshot(3, gen, traceStats{})
	var doc struct {
		Store struct {
			Cells      int64  `json:"cells"`
			Generation uint64 `json:"generation"`
		} `json:"store"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Store.Generation != gen {
		t.Errorf("generation = %d, want %d", doc.Store.Generation, gen)
	}
	if strings.Contains(string(body), "-") {
		// The whole document is counters; nothing should be negative.
		t.Errorf("snapshot contains a negative number:\n%s", body)
	}
	want := strconv.FormatUint(gen, 10)
	text := string(m.prometheus(3, gen, traceStats{}))
	if !strings.Contains(text, "indigo_store_generation "+want) {
		t.Errorf("exposition missing indigo_store_generation %s", want)
	}
}

// TestRetryAfterFromPressure is the regression test for the hardcoded
// Retry-After "1": light shedding still says 1, sustained shedding in
// one second pushes clients out further, and the suggestion caps at 30.
func TestRetryAfterFromPressure(t *testing.T) {
	s := New(Options{Store: seedStore(t), MaxInflight: 4})
	now := time.Unix(1000, 0)
	if got := s.noteShed(now); got != 1 {
		t.Errorf("first shed: Retry-After %d, want 1", got)
	}
	var last int
	for i := 0; i < 40; i++ {
		last = s.noteShed(now)
	}
	if last <= 1 {
		t.Errorf("after 41 sheds in one second at capacity 4: Retry-After %d, want > 1", last)
	}
	for i := 0; i < 10000; i++ {
		last = s.noteShed(now)
	}
	if last != 30 {
		t.Errorf("under extreme shedding: Retry-After %d, want capped at 30", last)
	}
	// A fresh second resets the pressure window.
	if got := s.noteShed(now.Add(time.Second)); got != 1 {
		t.Errorf("next second: Retry-After %d, want 1", got)
	}
}

// TestRetryAfterHeader drives the real shed path and asserts the header
// is a positive integer (and 1 for an isolated shed).
func TestRetryAfterHeader(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxInflight: 1})
	release := make(chan struct{})
	held := make(chan struct{})
	s.testHold = func() {
		held <- struct{}{}
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, ts.URL+"/v1/census")
	}()
	<-held
	s.testHold = nil
	resp, err := http.Get(ts.URL + "/v1/census")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	<-done
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After = %q, want integer in [1,30]", resp.Header.Get("Retry-After"))
	}
}

// TestConcurrentObserveScrape hammers observe from many goroutines
// while scraping both representations, then reconciles: per route, the
// +Inf bucket equals requests_total, and the exposition stays parseable
// throughout. Run with -race, this is also the data-race test for the
// metrics hot path.
func TestConcurrentObserveScrape(t *testing.T) {
	var m metrics
	const (
		workers = 8
		perW    = 2000
	)
	routes := []route{routeAdvise, routeCells, routeTune, routeHealthz}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				rt := routes[(w+i)%len(routes)]
				m.observe(rt, 200+i%4*100, time.Duration(i%1500)*time.Microsecond)
			}
		}(w)
	}
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			parseExposition(t, string(m.prometheus(0, 0, traceStats{})))
			var doc map[string]any
			if err := json.Unmarshal(m.snapshot(0, 0, traceStats{}), &doc); err != nil {
				t.Errorf("snapshot mid-hammer is not JSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	samples := parseExposition(t, string(m.prometheus(0, 0, traceStats{})))
	var total float64
	for _, rt := range routes {
		name := rt.String()
		checkBucketsCumulative(t, samples, name)
		inf := samples[bucketSample(name, "+Inf")]
		reqs := samples[fmt.Sprintf("indigo_http_requests_total{route=%q}", name)]
		if inf != reqs {
			t.Errorf("route %s: sum of buckets %g != requests_total %g", name, inf, reqs)
		}
		total += reqs
	}
	if want := float64(workers * perW); total != want {
		t.Errorf("total requests %g, want %g", total, want)
	}
	var classes float64
	for i := 0; i < 6; i++ {
		classes += samples[fmt.Sprintf("indigo_http_responses_total{class=%q}", statusClass(i))]
	}
	if classes != float64(workers*perW) {
		t.Errorf("status classes sum to %g, want %d", classes, workers*perW)
	}
}

// TestTraceEndpoint wires a tracer + retention store into the server,
// makes a traced request, and reads its spans back via /v1/trace/{id}.
func TestTraceEndpoint(t *testing.T) {
	ms := trace.NewMemSink(16, 256)
	tr := trace.New(trace.Config{Sink: ms})
	defer tr.Close()
	s, ts := newTestServer(t, Options{Tracer: tr, TraceStore: ms})
	_ = s

	resp, err := http.Get(ts.URL + "/v1/census")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("traced request has no X-Trace-Id header")
	}

	code, body := get(t, ts.URL+"/v1/trace/"+id)
	if code != http.StatusOK {
		t.Fatalf("trace lookup: %d %q", code, body)
	}
	var doc struct {
		Trace  string `json:"trace"`
		Events []struct {
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace body is not JSON: %v\n%s", err, body)
	}
	if doc.Trace != id {
		t.Errorf("trace id %q, want %q", doc.Trace, id)
	}
	found := false
	for _, ev := range doc.Events {
		if ev.Name == "http.request" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s has no http.request root span: %s", id, body)
	}

	if code, _ := get(t, ts.URL+"/v1/trace/zzzz"); code != http.StatusBadRequest {
		t.Errorf("bad id: %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/trace/00000000deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", code)
	}

	// Without a retention store the endpoint is a 404, not a panic.
	_, ts2 := newTestServer(t, Options{Tracer: tr})
	if code, _ := get(t, ts2.URL+"/v1/trace/"+id); code != http.StatusNotFound {
		t.Errorf("no store: %d, want 404", code)
	}
}

// TestMetricsContentNegotiation asserts the default scrape is
// Prometheus text and Accept: application/json selects the snapshot.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type %q, want text/plain exposition", ct)
	}
	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("Accept: application/json gave %d %q", code, body[:min(len(body), 80)])
	}
}

// TestPprofGate asserts pprof is absent by default, present with
// EnablePprof, and refused once the server is draining.
func TestPprofGate(t *testing.T) {
	_, tsOff := newTestServer(t, Options{})
	if code, _ := get(t, tsOff.URL+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("pprof off: %d, want 404", code)
	}

	s := New(Options{Store: seedStore(t), EnablePprof: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof on: %d, want 200", code)
	}
	s.draining.Store(true)
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusServiceUnavailable {
		t.Errorf("pprof while draining: %d, want 503", code)
	}
}
