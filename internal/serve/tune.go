package serve

import (
	"encoding/json"
	"net/http"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/styles"
	"indigo/internal/sweep"
	"indigo/internal/tune"
)

// bestResponse is the /v1/best wire form.
type bestResponse struct {
	Variant string      `json:"variant"`
	Tput    float64     `json:"tput"`
	Input   string      `json:"input"`
	Device  string      `json:"device"`
	Graph   graph.Stats `json:"graph"`
}

// handleBest answers GET /v1/best?algo=&model=&input=&device= with the
// store's measured best cell for that group — the tuner's warm-start
// query exposed standalone.
func (s *Server) handleBest(r *http.Request) (*response, error) {
	if r.Method != http.MethodGet {
		return nil, errf(http.StatusMethodNotAllowed, "use GET")
	}
	q := r.URL.Query()
	a, aerr := parseAlgo(q.Get("algo"))
	if aerr != nil {
		return nil, aerr
	}
	m, merr := parseModel(q.Get("model"))
	if merr != nil {
		return nil, merr
	}
	input, device := q.Get("input"), q.Get("device")
	if input == "" || device == "" {
		return nil, errf(http.StatusBadRequest, "input and device are required")
	}
	key := "best?" + canonicalQuery(q)
	return s.cached(key, func() (*response, error) {
		c, ok := s.opt.Store.Best(a, m, input, device)
		if !ok {
			return nil, errf(http.StatusNotFound, "no cell for %s/%s on %s/%s", a, m, input, device)
		}
		body, err := json.MarshalIndent(bestResponse{
			Variant: c.Cfg.Name(), Tput: c.Tput,
			Input: c.Input, Device: c.Device, Graph: c.Graph,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		return &response{status: http.StatusOK, contentType: "application/json", body: append(body, '\n')}, nil
	})
}

// tuneRequest is the /v1/tune request body. The graph to tune on is
// either a generated suite input ("input" + optional "scale", tiny or
// small) or an inline upload ("graph" + "format"); exactly one.
type tuneRequest struct {
	Algo   string `json:"algo"`
	Model  string `json:"model"`
	Device string `json:"device"`
	Input  string `json:"input,omitempty"`
	Scale  string `json:"scale,omitempty"`
	Graph  string `json:"graph,omitempty"`
	Format string `json:"format,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Budget caps the session's measurements; 0 means the tuner's
	// default (a quarter of the space), and the server clamps to
	// Options.TuneMaxMeasurements either way.
	Budget int `json:"budget,omitempty"`
}

// tuneResponse is the tuning outcome: the winner, how it was found,
// and — when the store knows the cell — the regret against the
// measured census best.
type tuneResponse struct {
	Variant       string      `json:"variant"`
	Tput          float64     `json:"tput"`
	Rationale     []string    `json:"rationale"`
	Space         int         `json:"space"`
	Measurements  int         `json:"measurements"`
	Rungs         int         `json:"rungs"`
	Partial       bool        `json:"partial,omitempty"`
	PartialReason string      `json:"partial_reason,omitempty"`
	CensusBest    float64     `json:"census_best,omitempty"`
	Regret        float64     `json:"regret,omitempty"`
	Stats         graph.Stats `json:"stats"`
}

// validDevice reports whether name is a measurement target this server
// can run: the CPU or one of the simulated GPU profiles.
func validDevice(name string) bool {
	if name == sweep.DeviceCPU {
		return true
	}
	for _, p := range gpusim.Profiles() {
		if p.Name == name {
			return true
		}
	}
	return false
}

// handleTune runs a budget-capped tuning session for the request's
// cell on a server-side graph. It shares the limited pipeline's
// semantics with /v1/advise: the request guard token is the session
// token (a client disconnect or the request deadline stops the trial
// in flight through sweep's cooperative cancellation), the response
// caches on the body hash and store generation, and guard sentinels
// map to 413/503/499.
func (s *Server) handleTune(r *http.Request) (*response, error) {
	if r.Method != http.MethodPost {
		return nil, errf(http.StatusMethodNotAllowed, "use POST")
	}
	body, herr := readBody(r, s.opt.MaxUploadBytes)
	if herr != nil {
		return nil, herr
	}
	var req tuneRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	a, aerr := parseAlgo(req.Algo)
	if aerr != nil {
		return nil, aerr
	}
	m, merr := parseModel(req.Model)
	if merr != nil {
		return nil, merr
	}
	if !validDevice(req.Device) {
		return nil, errf(http.StatusBadRequest, "unknown device %q (cpu or a gpusim profile)", req.Device)
	}
	if (req.Input == "") == (req.Graph == "") {
		return nil, errf(http.StatusBadRequest, "provide exactly one of input or graph")
	}
	budget := req.Budget
	if budget <= 0 || budget > s.opt.TuneMaxMeasurements {
		budget = min(s.opt.TuneMaxMeasurements, max(1, len(styles.Enumerate(a, m))/4))
	}

	gd := tokenFrom(r.Context())
	tc := traceFrom(r.Context())
	return s.cached(bodyCacheKey("tune", body), func() (resp *response, err error) {
		defer guard.Recover(&err)
		var g *graph.Graph
		var input string
		if req.Input != "" {
			in, scale, herr := parseSuiteInput(req.Input, req.Scale)
			if herr != nil {
				return nil, herr
			}
			g = gen.Generate(in, scale)
			input = in.String()
		} else {
			gd.Charge(int64(len(req.Graph)))
			var herr *httpError
			g, herr = parseInlineGraph(req.Graph, req.Format, gd, tc)
			if herr != nil {
				return nil, herr
			}
		}
		st := g.StatsGuarded(gd)

		pr := tune.NewProbeRunner(g, req.Device, algo.Options{Threads: 2}, sweep.Options{
			Timeout: s.opt.TuneTrialTimeout,
			Verify:  true,
			Outer:   gd,
		})
		defer pr.Close()
		res, err := tune.Run(tune.Options{
			Algo:            a,
			Model:           m,
			Device:          req.Device,
			Shape:           st,
			Input:           input,
			Seed:            req.Seed,
			MaxMeasurements: budget,
			Guard:           gd,
			Store:           s.opt.Store,
			Runner:          pr,
			Trace:           tc,
		})
		if err != nil {
			// A guard sentinel in the reason means the request itself
			// stopped; surface it for the limited pipeline's mapping.
			if gerr := gd.Err(); gerr != nil {
				return nil, gerr
			}
			return nil, errf(http.StatusUnprocessableEntity, "tune: %v", err)
		}
		out, jerr := json.MarshalIndent(tuneResponse{
			Variant:       res.Best.Name(),
			Tput:          res.Tput,
			Rationale:     res.Rationale,
			Space:         res.Space,
			Measurements:  res.Measurements,
			Rungs:         res.Rungs,
			Partial:       res.Partial,
			PartialReason: res.PartialReason,
			CensusBest:    res.CensusBest,
			Regret:        res.Regret,
			Stats:         st,
		}, "", "  ")
		if jerr != nil {
			return nil, jerr
		}
		return &response{status: http.StatusOK, contentType: "application/json", body: append(out, '\n')}, nil
	})
}

// parseSuiteInput resolves a generated-suite input name and scale.
// Tuning is interactive, so only the tiny and small scales are served;
// medium and large belong to offline sweeps.
func parseSuiteInput(name, scale string) (gen.Input, gen.Scale, *httpError) {
	var in gen.Input
	found := false
	for i := gen.Input(0); i < gen.NumInputs; i++ {
		if i.String() == name {
			in, found = i, true
			break
		}
	}
	if !found {
		return 0, 0, errf(http.StatusBadRequest, "unknown input %q (grid2d, copaper, rmat, social, road)", name)
	}
	sc := gen.Tiny
	if scale != "" {
		parsed, ok := gen.ParseScale(scale)
		if !ok || parsed > gen.Small {
			return 0, 0, errf(http.StatusBadRequest, "scale %q not served (tiny, small)", scale)
		}
		sc = parsed
	}
	return in, sc, nil
}
