package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/harness"
	"indigo/internal/stats"
	"indigo/internal/store"
	"indigo/internal/styles"
)

// TestGoldenRoundTrip is the pipeline acceptance test: a real sweep
// writes a journal, the store imports it, and the HTTP aggregates are
// byte-identical to what the harness computes directly from its own
// in-memory measurements. Any drift between the two aggregation paths
// (pairing keys, tie-breaks, rendering) fails here.
func TestGoldenRoundTrip(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	sess := harness.NewSession(gen.Tiny, 2)
	sess.Sweep.Journal = journal
	if err := sess.InitSweep(); err != nil {
		t.Fatal(err)
	}
	sess.Collect([]styles.Algorithm{styles.BFS}, []styles.Model{styles.OMP})
	if err := sess.CloseSweep(); err != nil {
		t.Fatal(err)
	}
	ms := sess.Select(func(m harness.Meas) bool {
		return m.Cfg.Atomics == styles.ClassicAtomic
	})
	if len(ms) == 0 {
		t.Fatal("sweep produced no measurements")
	}

	st := store.NewMem()
	n, err := store.ImportJournal(st, journal, store.ScaleResolver(gen.Tiny))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ms) {
		t.Fatalf("imported %d cells, session holds %d measurements", n, len(ms))
	}

	ts := httptest.NewServer(New(Options{Store: st}).Handler())
	defer ts.Close()

	t.Run("ratios", func(t *testing.T) {
		dim := styles.DimByKey("flow")
		want := "flow: push over pull\n"
		ratios := harness.Ratios(ms, dim, int(styles.Push), int(styles.Pull))
		for _, a := range []styles.Algorithm{styles.CC, styles.MIS, styles.PR,
			styles.TC, styles.BFS, styles.SSSP} {
			if xs := ratios[a]; len(xs) > 0 {
				want += fmt.Sprintf("  %-4s %s\n", a.String(), stats.NewBoxen(xs).String())
			}
		}
		code, got := get(t, ts.URL+"/v1/ratios?dim=flow")
		if code != http.StatusOK {
			t.Fatalf("ratios: %d %q", code, got)
		}
		if got != want {
			t.Fatalf("/v1/ratios differs from the harness computation:\n got %q\nwant %q", got, want)
		}
	})

	t.Run("census", func(t *testing.T) {
		want := store.CensusHeader + "\n" + harnessCensusLine(ms, styles.OMP) + "\n"
		code, got := get(t, ts.URL+"/v1/census?model=omp")
		if code != http.StatusOK {
			t.Fatalf("census: %d %q", code, got)
		}
		if got != want {
			t.Fatalf("/v1/census differs from the harness computation:\n got %q\nwant %q", got, want)
		}
	})
}

// harnessCensusLine computes the Fig. 14 census row directly from
// harness measurements, with the formula and rendering of
// Session.Fig14 — the oracle the store-backed endpoint must match.
func harnessCensusLine(ms []harness.Meas, model styles.Model) string {
	type key struct {
		a   styles.Algorithm
		in  gen.Input
		dev string
	}
	best := make(map[key]harness.Meas)
	for _, m := range ms {
		if m.Cfg.Model != model {
			continue
		}
		k := key{m.Cfg.Algo, m.Input, m.Device}
		if cur, ok := best[k]; !ok || m.Tput > cur.Tput ||
			(m.Tput == cur.Tput && m.Cfg.Name() < cur.Cfg.Name()) {
			best[k] = m
		}
	}
	var vertex, topo, dup, push, rw, nondet, data int
	for _, m := range best {
		cfg := m.Cfg
		if cfg.Iterate == styles.VertexBased {
			vertex++
		}
		if cfg.Drive == styles.TopologyDriven {
			topo++
		} else {
			data++
			if cfg.Drive == styles.DataDrivenDup {
				dup++
			}
		}
		if cfg.Flow == styles.Push {
			push++
		}
		if cfg.Update == styles.ReadWrite {
			rw++
		}
		if cfg.Det == styles.NonDeterministic {
			nondet++
		}
	}
	n := len(best)
	pct := func(x, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(x) / float64(of)
	}
	return fmt.Sprintf("%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f", model,
		pct(vertex, n), pct(topo, n), pct(dup, data), pct(push, n), pct(rw, n), pct(nondet, n))
}

// TestAdviseRoadNetwork is the §5.16 acceptance case: uploading a road
// network (high diameter relative to its size, low degree) for OMP SSSP
// must come back data-driven/push with the paper's rationale intact.
func TestAdviseRoadNetwork(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	var el bytes.Buffer
	if err := graph.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]string{
		"algo": "sssp", "model": "omp",
		"graph": el.String(), "format": "edgelist",
	})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{})
	code, resp := post(t, ts.URL+"/v1/advise", string(body))
	if code != http.StatusOK {
		t.Fatalf("advise: %d %q", code, resp)
	}
	var rec struct {
		Variant   string      `json:"variant"`
		Rationale []string    `json:"rationale"`
		Stats     graph.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(resp), &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Variant, "/data-nodup/") || !strings.Contains(rec.Variant, "/push/") {
		t.Fatalf("variant %q, want data-driven (no dup) push", rec.Variant)
	}
	all := strings.Join(rec.Rationale, "\n")
	for _, want := range []string{
		"data-driven (no dup)",
		"§5.3",
		"push: preferred data flow for CC, MIS, BFS, SSSP (§5.4)",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("rationale %q missing %q", all, want)
		}
	}
	if rec.Stats.Vertices != g.N {
		t.Errorf("stats echo %d vertices, want %d", rec.Stats.Vertices, g.N)
	}
}
