package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indigo/internal/gen"
	"indigo/internal/store"
)

// TestFixtureJournal guards the CI smoke fixture against rot: the
// checked-in journal must import cleanly (valid variant names, current
// schema version) and feed a census — if a styles or journal change
// invalidates it, this fails locally before the smoke job does.
func TestFixtureJournal(t *testing.T) {
	st := store.NewMem()
	n, err := store.ImportJournal(st, "testdata/fixture.jsonl", store.ScaleResolver(gen.Tiny))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("fixture journal imported no cells")
	}
	ts := httptest.NewServer(New(Options{Store: st}).Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/v1/census?model=omp")
	if code != http.StatusOK || !strings.Contains(body, "omp\t") {
		t.Fatalf("census over fixture: %d %q", code, body)
	}
}
