package serve

import (
	"container/list"
	"sync"
)

// response is a fully materialized reply, the unit the cache stores and
// coalesced requests share.
type response struct {
	status      int
	contentType string
	body        []byte
}

// respCache is an LRU response cache with request coalescing. Entries
// are tagged with the store generation they were computed against; a
// store append bumps the generation, which invalidates every older
// entry on its next lookup (lazy invalidation — no sweep needed, stale
// entries age out of the LRU like any other). Coalescing collapses
// concurrent misses on the same key into one computation: the first
// request computes, the rest wait and share the result, so a thundering
// herd on an expensive aggregate costs one scan.
type respCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
}

type cacheEntry struct {
	key  string
	gen  uint64
	resp *response
}

// flight is one in-progress computation awaited by coalesced requests.
type flight struct {
	done chan struct{}
	resp *response
	err  error
}

func newRespCache(capacity int) *respCache {
	return &respCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// outcome classifies how do() produced its response, for metrics.
type outcome int

const (
	outcomeHit outcome = iota
	outcomeMiss
	outcomeCoalesced
)

// do returns the cached response for key at generation gen, computing
// it via compute on a miss. Concurrent misses on the same key coalesce.
// Errors are never cached.
func (c *respCache) do(key string, gen uint64, compute func() (*response, error)) (*response, outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.gen == gen {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			return e.resp, outcomeHit, nil
		}
		// Stale: the store advanced since this was computed.
		c.ll.Remove(el)
		delete(c.items, key)
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.resp, outcomeCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.resp, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, gen, f.resp)
	}
	c.mu.Unlock()
	return f.resp, outcomeMiss, f.err
}

// insert adds an entry, evicting from the LRU tail past capacity.
// Caller holds mu.
func (c *respCache) insert(key string, gen uint64, resp *response) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).gen = gen
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, resp: resp})
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries (tests only).
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
