package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"indigo/internal/trace"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of
// the request-latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// metrics holds the service counters exposed on /metrics: plain atomics
// rendered as Prometheus text exposition (default) or a JSON snapshot
// (Accept: application/json), no external dependencies. All methods are
// safe for concurrent use.
//
// Histogram storage is per-bin — observe does exactly one atomic add per
// observation — and the cumulative less-or-equal counts Prometheus
// expects are computed at render time by summing bins left to right,
// which makes the exported buckets monotone by construction. (The
// previous encoding exported the raw per-bin counts under `le_*` names,
// so consumers computing quantiles from less-or-equal semantics got
// wrong answers.)
type metrics struct {
	requests  atomic.Int64 // every request that reached the handler tree
	inflight  atomic.Int64 // currently inside the limited section
	shed      atomic.Int64 // rejected with 429 by the concurrency limiter
	cacheHit  atomic.Int64
	cacheMiss atomic.Int64
	coalesced atomic.Int64 // waited on another request's in-flight compute

	canceled         atomic.Int64 // stopped because the client disconnected
	deadlineExceeded atomic.Int64 // stopped (or discarded) at the request deadline
	budgetRejected   atomic.Int64 // rejected for overdrawing the compute budget

	byRoute  [numRoutes]atomic.Int64
	byStatus [6]atomic.Int64 // index = status / 100

	// latency[rt] is the route's histogram (per-bin; last bin is +Inf)
	// and latencySumNS[rt] the route's total observed latency.
	latency      [numRoutes][len(latencyBucketsMS) + 1]atomic.Int64
	latencySumNS [numRoutes]atomic.Int64
}

// route indexes the per-endpoint request counters.
type route int

const (
	routeHealthz route = iota
	routeMetrics
	routeAdvise
	routeCells
	routeCensus
	routeRatios
	routeBest
	routeTune
	routeTrace
	routeOther
	numRoutes
)

func (r route) String() string {
	switch r {
	case routeHealthz:
		return "/healthz"
	case routeMetrics:
		return "/metrics"
	case routeAdvise:
		return "/v1/advise"
	case routeCells:
		return "/v1/cells"
	case routeCensus:
		return "/v1/census"
	case routeRatios:
		return "/v1/ratios"
	case routeBest:
		return "/v1/best"
	case routeTune:
		return "/v1/tune"
	case routeTrace:
		return "/v1/trace"
	}
	return "other"
}

func (m *metrics) observe(rt route, status int, elapsed time.Duration) {
	m.requests.Add(1)
	m.byRoute[rt].Add(1)
	if i := status / 100; i >= 0 && i < len(m.byStatus) {
		m.byStatus[i].Add(1)
	}
	if elapsed < 0 {
		elapsed = 0
	}
	m.latencySumNS[rt].Add(int64(elapsed))
	ms := float64(elapsed) / float64(time.Millisecond)
	bin := len(latencyBucketsMS) // +Inf
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			bin = i
			break
		}
	}
	m.latency[rt][bin].Add(1)
}

// traceStats carries the tracer's live accounting into a scrape;
// zero-valued when tracing is disabled (the series still render, so
// dashboards see stable zeros rather than gaps).
type traceStats struct {
	trace.Counters
	Retained int // traces held by the in-memory store
}

// statusClass renders byStatus index i ("0xx".."5xx").
func statusClass(i int) string { return fmt.Sprintf("%dxx", i) }

// cumLatency returns the route's cumulative bucket counts: cum[i] is
// the number of observations <= latencyBucketsMS[i], and the final
// entry (the +Inf bucket) the route's observation count. Monotone
// non-decreasing by construction.
func (m *metrics) cumLatency(rt route) [len(latencyBucketsMS) + 1]int64 {
	var cum [len(latencyBucketsMS) + 1]int64
	var run int64
	for i := range m.latency[rt] {
		run += m.latency[rt][i].Load()
		cum[i] = run
	}
	return cum
}

// snapshot renders the counters as the legacy JSON document (served
// under Accept: application/json). Every route, status class, and
// bucket is always present — series never vanish between scrapes — and
// the latency buckets are cumulative across all routes.
func (m *metrics) snapshot(storeCells int, storeGen uint64, ts traceStats) []byte {
	type storeDoc struct {
		Cells      int64  `json:"cells"`
		Generation uint64 `json:"generation"`
	}
	type doc struct {
		RequestsTotal int64            `json:"requests_total"`
		Requests      map[string]int64 `json:"requests"`
		Responses     map[string]int64 `json:"responses"`
		Inflight      int64            `json:"inflight"`
		ShedTotal     int64            `json:"shed_total"`
		Canceled      int64            `json:"canceled_total"`
		Deadline      int64            `json:"deadline_exceeded_total"`
		BudgetReject  int64            `json:"budget_rejected_total"`
		Cache         map[string]int64 `json:"cache"`
		LatencyMS     map[string]int64 `json:"latency_ms"`
		Trace         map[string]int64 `json:"trace"`
		Store         storeDoc         `json:"store"`
	}
	d := doc{
		RequestsTotal: m.requests.Load(),
		Requests:      map[string]int64{},
		Responses:     map[string]int64{},
		Inflight:      m.inflight.Load(),
		ShedTotal:     m.shed.Load(),
		Canceled:      m.canceled.Load(),
		Deadline:      m.deadlineExceeded.Load(),
		BudgetReject:  m.budgetRejected.Load(),
		Cache: map[string]int64{
			"hits":      m.cacheHit.Load(),
			"misses":    m.cacheMiss.Load(),
			"coalesced": m.coalesced.Load(),
		},
		LatencyMS: map[string]int64{},
		Trace: map[string]int64{
			"spans_started":  ts.Started,
			"spans_finished": ts.Finished,
			"points":         ts.Points,
			"dropped":        ts.Dropped,
			"retained":       int64(ts.Retained),
		},
		Store: storeDoc{Cells: int64(storeCells), Generation: storeGen},
	}
	for rt := route(0); rt < numRoutes; rt++ {
		d.Requests[rt.String()] = m.byRoute[rt].Load()
	}
	for i := range m.byStatus {
		d.Responses[statusClass(i)] = m.byStatus[i].Load()
	}
	var cum int64
	for i, ub := range latencyBucketsMS {
		for rt := route(0); rt < numRoutes; rt++ {
			cum += m.latency[rt][i].Load()
		}
		d.LatencyMS[fmt.Sprintf("le_%g", ub)] = cum
	}
	for rt := route(0); rt < numRoutes; rt++ {
		cum += m.latency[rt][len(latencyBucketsMS)].Load()
	}
	d.LatencyMS["le_inf"] = cum
	out, _ := json.MarshalIndent(d, "", "  ")
	return append(out, '\n')
}

// prometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4): `_total` counters, a cumulative `le`-bucketed
// histogram per route, and every series present on every scrape so
// rate() never sees a gap.
func (m *metrics) prometheus(storeCells int, storeGen uint64, ts traceStats) []byte {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP indigo_http_requests_total Requests reaching the handler tree, by route.\n")
	w("# TYPE indigo_http_requests_total counter\n")
	for rt := route(0); rt < numRoutes; rt++ {
		w("indigo_http_requests_total{route=%q} %d\n", rt.String(), m.byRoute[rt].Load())
	}

	w("# HELP indigo_http_responses_total Responses by status class.\n")
	w("# TYPE indigo_http_responses_total counter\n")
	for i := range m.byStatus {
		w("indigo_http_responses_total{class=%q} %d\n", statusClass(i), m.byStatus[i].Load())
	}

	w("# HELP indigo_http_inflight Requests currently inside the limited section.\n")
	w("# TYPE indigo_http_inflight gauge\n")
	w("indigo_http_inflight %d\n", m.inflight.Load())

	counters := []struct {
		name, help string
		v          int64
	}{
		{"indigo_http_shed_total", "Requests shed with 429 by the concurrency limiter.", m.shed.Load()},
		{"indigo_http_canceled_total", "Requests stopped because the client disconnected.", m.canceled.Load()},
		{"indigo_http_deadline_exceeded_total", "Requests stopped or discarded at the request deadline.", m.deadlineExceeded.Load()},
		{"indigo_http_budget_rejected_total", "Requests rejected for overdrawing the compute budget.", m.budgetRejected.Load()},
		{"indigo_cache_hits_total", "Response cache hits.", m.cacheHit.Load()},
		{"indigo_cache_misses_total", "Response cache misses.", m.cacheMiss.Load()},
		{"indigo_cache_coalesced_total", "Requests that waited on another request's in-flight compute.", m.coalesced.Load()},
		{"indigo_trace_spans_started_total", "Trace spans opened.", ts.Started},
		{"indigo_trace_spans_finished_total", "Trace spans closed.", ts.Finished},
		{"indigo_trace_points_total", "Trace instant events recorded.", ts.Points},
		{"indigo_trace_dropped_total", "Trace events dropped at full rings.", ts.Dropped},
	}
	for _, c := range counters {
		w("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}

	w("# HELP indigo_trace_open_spans Spans currently open (started minus finished).\n")
	w("# TYPE indigo_trace_open_spans gauge\n")
	w("indigo_trace_open_spans %d\n", ts.Started-ts.Finished)
	w("# HELP indigo_trace_retained Traces retained for GET /v1/trace/{id}.\n")
	w("# TYPE indigo_trace_retained gauge\n")
	w("indigo_trace_retained %d\n", ts.Retained)

	w("# HELP indigo_http_request_duration_ms Request latency by route, milliseconds.\n")
	w("# TYPE indigo_http_request_duration_ms histogram\n")
	for rt := route(0); rt < numRoutes; rt++ {
		name := rt.String()
		cum := m.cumLatency(rt)
		for i, ub := range latencyBucketsMS {
			w("indigo_http_request_duration_ms_bucket{route=%q,le=%q} %d\n", name, fmt.Sprintf("%g", ub), cum[i])
		}
		count := cum[len(latencyBucketsMS)]
		w("indigo_http_request_duration_ms_bucket{route=%q,le=\"+Inf\"} %d\n", name, count)
		w("indigo_http_request_duration_ms_sum{route=%q} %g\n", name,
			float64(m.latencySumNS[rt].Load())/float64(time.Millisecond))
		w("indigo_http_request_duration_ms_count{route=%q} %d\n", name, count)
	}

	w("# HELP indigo_store_cells Measurement cells in the backing store.\n")
	w("# TYPE indigo_store_cells gauge\n")
	w("indigo_store_cells %d\n", storeCells)
	w("# HELP indigo_store_generation Store append generation.\n")
	w("# TYPE indigo_store_generation counter\n")
	w("indigo_store_generation %d\n", storeGen)

	return []byte(b.String())
}
