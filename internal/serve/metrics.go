package serve

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of
// the request-latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}

// metrics holds the service counters exposed on /metrics, expvar-style:
// plain atomics snapshotted into JSON, no external dependencies. All
// methods are safe for concurrent use.
type metrics struct {
	requests  atomic.Int64 // every request that reached the handler tree
	inflight  atomic.Int64 // currently inside the limited section
	shed      atomic.Int64 // rejected with 429 by the concurrency limiter
	cacheHit  atomic.Int64
	cacheMiss atomic.Int64
	coalesced atomic.Int64 // waited on another request's in-flight compute

	canceled         atomic.Int64 // stopped because the client disconnected
	deadlineExceeded atomic.Int64 // stopped (or discarded) at the request deadline
	budgetRejected   atomic.Int64 // rejected for overdrawing the compute budget

	byRoute  [numRoutes]atomic.Int64
	byStatus [6]atomic.Int64 // index = status / 100

	latency [len(latencyBucketsMS) + 1]atomic.Int64
}

// route indexes the per-endpoint request counters.
type route int

const (
	routeHealthz route = iota
	routeMetrics
	routeAdvise
	routeCells
	routeCensus
	routeRatios
	routeBest
	routeTune
	routeOther
	numRoutes
)

func (r route) String() string {
	switch r {
	case routeHealthz:
		return "/healthz"
	case routeMetrics:
		return "/metrics"
	case routeAdvise:
		return "/v1/advise"
	case routeCells:
		return "/v1/cells"
	case routeCensus:
		return "/v1/census"
	case routeRatios:
		return "/v1/ratios"
	case routeBest:
		return "/v1/best"
	case routeTune:
		return "/v1/tune"
	}
	return "other"
}

func (m *metrics) observe(rt route, status int, elapsed time.Duration) {
	m.requests.Add(1)
	m.byRoute[rt].Add(1)
	if i := status / 100; i >= 0 && i < len(m.byStatus) {
		m.byStatus[i].Add(1)
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			m.latency[i].Add(1)
			return
		}
	}
	m.latency[len(latencyBucketsMS)].Add(1)
}

// snapshot renders the counters as a JSON document. storeCells and
// storeGen describe the backing store at snapshot time.
func (m *metrics) snapshot(storeCells int, storeGen uint64) []byte {
	type doc struct {
		RequestsTotal int64            `json:"requests_total"`
		Requests      map[string]int64 `json:"requests"`
		Responses     map[string]int64 `json:"responses"`
		Inflight      int64            `json:"inflight"`
		ShedTotal     int64            `json:"shed_total"`
		Canceled      int64            `json:"canceled_total"`
		Deadline      int64            `json:"deadline_exceeded_total"`
		BudgetReject  int64            `json:"budget_rejected_total"`
		Cache         map[string]int64 `json:"cache"`
		LatencyMS     map[string]int64 `json:"latency_ms"`
		Store         map[string]int64 `json:"store"`
	}
	d := doc{
		RequestsTotal: m.requests.Load(),
		Requests:      map[string]int64{},
		Responses:     map[string]int64{},
		Inflight:      m.inflight.Load(),
		ShedTotal:     m.shed.Load(),
		Canceled:      m.canceled.Load(),
		Deadline:      m.deadlineExceeded.Load(),
		BudgetReject:  m.budgetRejected.Load(),
		Cache: map[string]int64{
			"hits":      m.cacheHit.Load(),
			"misses":    m.cacheMiss.Load(),
			"coalesced": m.coalesced.Load(),
		},
		LatencyMS: map[string]int64{},
		Store: map[string]int64{
			"cells":      int64(storeCells),
			"generation": int64(storeGen),
		},
	}
	for rt := route(0); rt < numRoutes; rt++ {
		if n := m.byRoute[rt].Load(); n > 0 {
			d.Requests[rt.String()] = n
		}
	}
	for i := range m.byStatus {
		if v := m.byStatus[i].Load(); v > 0 {
			d.Responses[fmt.Sprintf("%dxx", i)] = v
		}
	}
	for i, ub := range latencyBucketsMS {
		d.LatencyMS[fmt.Sprintf("le_%g", ub)] = m.latency[i].Load()
	}
	d.LatencyMS["le_inf"] = m.latency[len(latencyBucketsMS)].Load()
	out, _ := json.MarshalIndent(d, "", "  ")
	return append(out, '\n')
}
