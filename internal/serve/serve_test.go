package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indigo/internal/graph"
	"indigo/internal/store"
	"indigo/internal/styles"
)

// seedStore builds a store with a push/pull pair of BFS/OMP cells on
// two inputs, enough to exercise every query endpoint.
func seedStore(t *testing.T) *store.Store {
	t.Helper()
	cell := func(drive styles.Drive, flow styles.Flow, input string, tput float64) store.Cell {
		cfg := styles.Config{
			Algo: styles.BFS, Model: styles.OMP,
			Drive: drive, Flow: flow, Update: styles.ReadModifyWrite,
		}
		if !styles.Valid(cfg) {
			t.Fatalf("seed config %q invalid", cfg.Name())
		}
		return store.Cell{
			Cfg: cfg, Input: input, Device: "cpu",
			Graph: graph.Stats{Name: input, Vertices: 64, Edges: 128},
			Tput:  tput, Attempts: 1, ElapsedMS: 5,
		}
	}
	st := store.NewMem()
	if err := st.Append(
		cell(styles.TopologyDriven, styles.Push, "road", 4),
		cell(styles.TopologyDriven, styles.Pull, "road", 2),
		cell(styles.TopologyDriven, styles.Push, "grid2d", 9),
		cell(styles.TopologyDriven, styles.Pull, "grid2d", 3),
	); err != nil {
		t.Fatal(err)
	}
	return st
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Store == nil {
		opt.Store = seedStore(t)
	}
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// getJSON fetches url asking for the JSON representation — /metrics
// defaults to Prometheus text and needs the Accept header to negotiate.
func getJSON(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/v1/census")
	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %q", code, body)
	}
	var doc struct {
		RequestsTotal int64            `json:"requests_total"`
		Requests      map[string]int64 `json:"requests"`
		Responses     map[string]int64 `json:"responses"`
		Store         map[string]int64 `json:"store"`
		LatencyMS     map[string]int64 `json:"latency_ms"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	if doc.RequestsTotal < 2 {
		t.Errorf("requests_total = %d, want >= 2", doc.RequestsTotal)
	}
	if doc.Requests["/v1/census"] != 1 {
		t.Errorf("census count = %d, want 1", doc.Requests["/v1/census"])
	}
	if doc.Responses["2xx"] < 2 {
		t.Errorf("2xx = %d, want >= 2", doc.Responses["2xx"])
	}
	if doc.Store["cells"] != 4 {
		t.Errorf("store cells = %d, want 4", doc.Store["cells"])
	}
	var hist int64
	for _, v := range doc.LatencyMS {
		hist += v
	}
	if hist < 2 {
		t.Errorf("latency histogram sums to %d, want >= 2", hist)
	}
}

func TestCells(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/v1/cells")
	if code != http.StatusOK {
		t.Fatalf("cells: %d %q", code, body)
	}
	var doc struct {
		Count int `json:"count"`
		Cells []struct {
			Variant string  `json:"variant"`
			Input   string  `json:"input"`
			Tput    float64 `json:"tput"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 4 || len(doc.Cells) != 4 {
		t.Fatalf("count = %d (%d cells), want 4", doc.Count, len(doc.Cells))
	}
	// Filters and limit compose.
	code, body = get(t, ts.URL+"/v1/cells?input=road&limit=1")
	if err := json.Unmarshal([]byte(body), &doc); err != nil || code != http.StatusOK {
		t.Fatalf("filtered cells: %d %v", code, err)
	}
	if doc.Count != 1 || doc.Cells[0].Input != "road" {
		t.Fatalf("filtered cells = %+v, want one road cell", doc)
	}
	// Bad params are client errors.
	if code, _ := get(t, ts.URL+"/v1/cells?algo=nope"); code != http.StatusBadRequest {
		t.Errorf("bad algo: %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/cells?limit=-2"); code != http.StatusBadRequest {
		t.Errorf("bad limit: %d, want 400", code)
	}
}

func TestCensus(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/v1/census?model=omp")
	if code != http.StatusOK {
		t.Fatalf("census: %d %q", code, body)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if lines[0] != store.CensusHeader {
		t.Fatalf("census header %q, want %q", lines[0], store.CensusHeader)
	}
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "omp\t") {
		t.Fatalf("census body %q, want one omp row", body)
	}
	if code, _ := get(t, ts.URL+"/v1/census?model=fortran"); code != http.StatusBadRequest {
		t.Errorf("bad model: %d, want 400", code)
	}
}

func TestRatios(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/v1/ratios?dim=flow")
	if code != http.StatusOK {
		t.Fatalf("ratios: %d %q", code, body)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if lines[0] != "flow: push over pull" {
		t.Fatalf("ratios header %q", lines[0])
	}
	if len(lines) != 2 || !strings.Contains(lines[1], "bfs") {
		t.Fatalf("ratios body %q, want one bfs line", body)
	}
	if code, _ := get(t, ts.URL+"/v1/ratios"); code != http.StatusBadRequest {
		t.Errorf("missing dim: %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/ratios?dim=flow&a=9"); code != http.StatusBadRequest {
		t.Errorf("out-of-range value index: %d, want 400", code)
	}
}

func TestAdviseStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"algo":"sssp","model":"omp","stats":{"Name":"road","Vertices":1000,"Edges":3000,"AvgDegree":3,"Diameter":100}}`
	code, body := post(t, ts.URL+"/v1/advise", req)
	if code != http.StatusOK {
		t.Fatalf("advise: %d %q", code, body)
	}
	var rec struct {
		Variant   string   `json:"variant"`
		Rationale []string `json:"rationale"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rec.Variant, "sssp/omp/") {
		t.Fatalf("variant %q, want sssp/omp/...", rec.Variant)
	}
	if len(rec.Rationale) == 0 {
		t.Fatal("empty rationale")
	}

	cases := []struct {
		name, req string
		want      int
	}{
		{"bad json", `{"algo":`, http.StatusBadRequest},
		{"unknown algo", `{"algo":"dijkstra","model":"omp","stats":{}}`, http.StatusBadRequest},
		{"unknown model", `{"algo":"bfs","model":"tbb","stats":{}}`, http.StatusBadRequest},
		{"neither stats nor graph", `{"algo":"bfs","model":"omp"}`, http.StatusBadRequest},
		{"both stats and graph", `{"algo":"bfs","model":"omp","stats":{},"graph":"0 1\n"}`, http.StatusBadRequest},
		{"malformed inline graph", `{"algo":"bfs","model":"omp","graph":"-1 2\n"}`, http.StatusBadRequest},
		{"unknown format", `{"algo":"bfs","model":"omp","graph":"0 1\n","format":"gml"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := post(t, ts.URL+"/v1/advise", tc.req); code != tc.want {
			t.Errorf("%s: %d %q, want %d", tc.name, code, body, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET advise: %d, want 405", resp.StatusCode)
	}
}

func TestAdviseInlineGraph(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"algo":"bfs","model":"omp","graph":"0 1\n1 2\n2 3\n","format":"edgelist"}`
	code, body := post(t, ts.URL+"/v1/advise", req)
	if code != http.StatusOK {
		t.Fatalf("advise inline: %d %q", code, body)
	}
	var rec struct {
		Stats graph.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Stats.Vertices != 4 || rec.Stats.Edges != 6 {
		t.Fatalf("computed stats %+v, want 4 vertices / 6 directed edges", rec.Stats)
	}
}

func TestAdviseBodyCap(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxUploadBytes: 64})
	big := `{"algo":"bfs","model":"omp","graph":"` + strings.Repeat("0 1\\n", 64) + `"}`
	code, _ := post(t, ts.URL+"/v1/advise", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", code)
	}
}

// TestCacheInvalidation pins the cache contract: repeated queries hit,
// a store append invalidates, and the metrics expose the difference.
func TestCacheInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	_, first := get(t, ts.URL+"/v1/census?model=omp")
	_, second := get(t, ts.URL+"/v1/census?model=omp")
	if first != second {
		t.Fatal("identical queries returned different bodies")
	}
	if hits := s.metrics.cacheHit.Load(); hits != 1 {
		t.Fatalf("cache hits = %d after repeat query, want 1", hits)
	}

	// Appending a better cell must invalidate: the census changes.
	cfg := styles.Config{
		Algo: styles.BFS, Model: styles.OMP,
		Drive: styles.TopologyDriven, Flow: styles.Pull, Update: styles.ReadModifyWrite,
	}
	if err := s.opt.Store.Append(store.Cell{
		Cfg: cfg, Input: "road", Device: "cpu", Tput: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	_, third := get(t, ts.URL+"/v1/census?model=omp")
	if third == second {
		t.Fatal("census unchanged after store append (stale cache served)")
	}
	if hits := s.metrics.cacheHit.Load(); hits != 1 {
		t.Fatalf("cache hits = %d after invalidating append, want still 1", hits)
	}
}

func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{CacheEntries: -1})
	get(t, ts.URL+"/v1/census")
	get(t, ts.URL+"/v1/census")
	if hits := s.metrics.cacheHit.Load(); hits != 0 {
		t.Fatalf("cache hits = %d with caching disabled, want 0", hits)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("cache holds %d entries with caching disabled", n)
	}
}

func TestNewRequiresStore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without a store did not panic")
		}
	}()
	New(Options{})
}
