// Package serve exposes the results store and the §5.16 advisor as an
// HTTP service — the paper's distilled knowledge behind a network API
// instead of a one-shot report run. The service is built for sustained
// traffic: a concurrency limiter that sheds overload with 429s instead
// of queuing into collapse, an LRU response cache (invalidated when the
// store appends) with request coalescing, per-request timeouts, a
// Prometheus-compatible /metrics endpoint, optional per-request
// tracing, and graceful drain on shutdown.
//
// Endpoints:
//
//	GET  /healthz        liveness (never limited, never cached)
//	GET  /metrics        Prometheus text exposition (JSON with Accept: application/json)
//	POST /v1/advise      graph stats or an inline graph -> recommended variant + rationale
//	GET  /v1/cells       stored measurement cells (filterable)
//	GET  /v1/census      best-style census per model (paper Fig. 14)
//	GET  /v1/ratios      per-dimension throughput-ratio distributions (paper Figs. 1-13)
//	GET  /v1/best        measured best config for one (algo, model, input, device) cell
//	POST /v1/tune        race variants on a suite input or inline graph -> winning variant
//	GET  /v1/trace/{id}  spans of a recently traced request (Options.Tracer + TraceStore)
//	GET  /debug/pprof/*  runtime profiles (Options.EnablePprof; refused while draining)
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/store"
	"indigo/internal/styles"
	"indigo/internal/trace"
)

// Options configures a Server. Zero values select the defaults noted on
// each field.
type Options struct {
	// Store is the results store queries read from. Required (use
	// store.NewMem() for an advisor-only service).
	Store *store.Store
	// MaxInflight caps concurrently served requests; excess load is
	// shed with 429 + Retry-After. Default 64.
	MaxInflight int
	// RequestTimeout bounds one request's handling; requests that
	// exceed it get 503. Default 10s.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is canceled. Default 15s.
	DrainTimeout time.Duration
	// CacheEntries sizes the LRU response cache. 0 means 256; negative
	// disables caching.
	CacheEntries int
	// MaxUploadBytes caps /v1/advise request bodies (inline graphs from
	// untrusted clients). Default 8 MiB.
	MaxUploadBytes int64
	// RequestBudget, when positive, caps the bytes one request's
	// computation may charge against its guard token (today: inline
	// /v1/advise graphs and their stats traversals); an overdraw is
	// rejected with 413 instead of growing without bound. 0 disables
	// the budget.
	RequestBudget int64
	// TuneMaxMeasurements caps the measurement budget one /v1/tune
	// request may spend; a request asking for more is clamped, not
	// rejected (the tuner degrades gracefully under a smaller budget).
	// Default 64.
	TuneMaxMeasurements int
	// TuneTrialTimeout bounds each of a tune session's timed runs;
	// the session's own ceiling is the request deadline, which stops
	// the trial in flight through the request guard. Default 2s.
	TuneTrialTimeout time.Duration
	// Tracer, when non-nil, gives every limited request its own trace:
	// an http.request root span (route, method, status) with the
	// request's ingest/tune/sweep spans beneath it, flushed to the
	// tracer's sink as the request finishes. The trace id is echoed in
	// the X-Trace-Id response header. Nil disables per-request tracing
	// at zero cost.
	Tracer *trace.Tracer
	// TraceStore, when non-nil, is the in-memory sink backing
	// GET /v1/trace/{id}. It must be (one of) the Tracer's sink(s), or
	// lookups will always miss. Nil turns the endpoint into a 404.
	TraceStore *trace.MemSink
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Profile
	// endpoints are refused with 503 once the server starts draining, so
	// a 30-second CPU profile cannot hold up shutdown. Off by default:
	// profiles expose internals and cost real CPU.
	EnablePprof bool
}

func (o *Options) defaults() {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 8 << 20
	}
	if o.TuneMaxMeasurements <= 0 {
		o.TuneMaxMeasurements = 64
	}
	if o.TuneTrialTimeout <= 0 {
		o.TuneTrialTimeout = 2 * time.Second
	}
}

// Server is the advisor/query HTTP service over a results store.
type Server struct {
	opt     Options
	metrics metrics
	cache   *respCache
	sem     chan struct{} // concurrency limiter; len == in-flight

	// draining flips once Serve begins graceful shutdown; pprof
	// endpoints check it and refuse new profiles.
	draining atomic.Bool

	// shedWinSec/shedWinCount are a one-second shed-rate window backing
	// the Retry-After computation: the heavier the shedding this second,
	// the longer clients are told to back off.
	shedWinSec   atomic.Int64
	shedWinCount atomic.Int64

	// testHold, when set (tests only), runs inside the limited section
	// of every /v1 request, so tests can pin requests in flight and
	// drive the limiter and drain paths deterministically.
	testHold func()
}

// New creates a Server. It panics if opt.Store is nil — the service is
// meaningless without one, and the nil would otherwise surface on the
// first query.
func New(opt Options) *Server {
	if opt.Store == nil {
		panic("serve.New: Options.Store is required")
	}
	opt.defaults()
	return &Server{
		opt:   opt,
		cache: newRespCache(opt.CacheEntries),
		sem:   make(chan struct{}, opt.MaxInflight),
	}
}

// httpError is a handler failure with a status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// Handler returns the service's HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument(routeHealthz, s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument(routeMetrics, s.handleMetrics))
	mux.HandleFunc("/v1/advise", s.limited(routeAdvise, s.handleAdvise))
	mux.HandleFunc("/v1/cells", s.limited(routeCells, s.handleCells))
	mux.HandleFunc("/v1/census", s.limited(routeCensus, s.handleCensus))
	mux.HandleFunc("/v1/ratios", s.limited(routeRatios, s.handleRatios))
	mux.HandleFunc("/v1/best", s.limited(routeBest, s.handleBest))
	mux.HandleFunc("/v1/tune", s.limited(routeTune, s.handleTune))
	mux.HandleFunc("GET /v1/trace/{id}", s.limited(routeTrace, s.handleTrace))
	if s.opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", s.pprofGate(pprof.Index))
		mux.HandleFunc("/debug/pprof/cmdline", s.pprofGate(pprof.Cmdline))
		mux.HandleFunc("/debug/pprof/profile", s.pprofGate(pprof.Profile))
		mux.HandleFunc("/debug/pprof/symbol", s.pprofGate(pprof.Symbol))
		mux.HandleFunc("/debug/pprof/trace", s.pprofGate(pprof.Trace))
	}
	return mux
}

// pprofGate wraps a pprof handler so profiling stops mattering to
// shutdown: once the server is draining, new profile requests get an
// immediate 503 instead of a long-running collection that Shutdown
// would then wait out.
func (s *Server) pprofGate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// instrument wraps unlimited endpoints (health, metrics): these must
// answer even when the service is saturated, or the load balancer would
// kill a healthy-but-busy instance.
func (s *Server) instrument(rt route, h func(*http.Request) (*response, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		resp, err := h(r)
		status := s.write(w, resp, err)
		s.metrics.observe(rt, status, time.Since(start))
	}
}

// statusClientClosedRequest is nginx's conventional status for requests
// abandoned by their client before the response was written; the code
// never reaches the (gone) client, but it keeps the access metrics
// honest about why the work stopped.
const statusClientClosedRequest = 499

// tokenKey carries the request's guard token through its context.
type tokenKey struct{}

func withToken(ctx context.Context, gd *guard.Token) context.Context {
	return context.WithValue(ctx, tokenKey{}, gd)
}

// tokenFrom returns the request's guard token, or nil outside the
// limited pipeline (nil is valid everywhere guard is used).
func tokenFrom(ctx context.Context) *guard.Token {
	gd, _ := ctx.Value(tokenKey{}).(*guard.Token)
	return gd
}

// traceKey carries the request's root span through its context, the
// same way tokenKey carries the guard token.
type traceKey struct{}

func withTrace(ctx context.Context, tc trace.Ctx) context.Context {
	return context.WithValue(ctx, traceKey{}, tc)
}

// traceFrom returns the request's root span, or the inert zero Ctx
// outside the limited pipeline or when tracing is disabled.
func traceFrom(ctx context.Context) trace.Ctx {
	tc, _ := ctx.Value(traceKey{}).(trace.Ctx)
	return tc
}

// limited wraps /v1 endpoints with the full pipeline: concurrency
// limiting with load shedding, a per-request deadline and budget
// enforced through a guard token bound to the request context (so a
// client disconnect or deadline stops in-flight computation at its
// next checkpoint instead of merely discarding the finished result),
// and metrics.
func (s *Server) limited(rt route, h func(*http.Request) (*response, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		select {
		case s.sem <- struct{}{}:
		default:
			// Saturated: shed immediately. A bounded queue would only
			// trade 429s for timeout 503s once arrival exceeds service
			// rate; telling the client when to retry is cheaper for both
			// sides.
			s.metrics.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.noteShed(time.Now())))
			s.write(w, nil, errf(http.StatusTooManyRequests, "server at capacity (%d in flight)", s.opt.MaxInflight))
			s.metrics.observe(rt, http.StatusTooManyRequests, time.Since(start))
			return
		}
		s.metrics.inflight.Add(1)
		defer func() {
			s.metrics.inflight.Add(-1)
			<-s.sem
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
		defer cancel()
		// The token is how the deadline (and a client disconnect) reaches
		// into the request's computation: guarded traversals poll it and
		// abort mid-flight rather than running to completion for nobody.
		gd := guard.New().WithBudget(s.opt.RequestBudget)
		unbind := gd.BindContext(ctx)
		defer func() {
			unbind()
			gd.Release()
		}()
		if s.testHold != nil {
			s.testHold()
		}
		var tc trace.Ctx
		if s.opt.Tracer != nil {
			tc = s.opt.Tracer.NewTrace("http.request").
				Attr("route", rt.String()).Attr("method", r.Method)
			w.Header().Set("X-Trace-Id", fmt.Sprintf("%016x", tc.TraceID()))
		}
		resp, err := h(r.WithContext(withToken(withTrace(ctx, tc), gd)))
		switch {
		case errors.Is(err, guard.ErrBudgetExceeded):
			s.metrics.budgetRejected.Add(1)
			err = errf(http.StatusRequestEntityTooLarge,
				"request exceeds the %d-byte compute budget", s.opt.RequestBudget)
		case errors.Is(err, guard.ErrDeadlineExceeded):
			s.metrics.deadlineExceeded.Add(1)
			err = errf(http.StatusServiceUnavailable, "request deadline exceeded")
		case errors.Is(err, guard.ErrCanceled):
			s.metrics.canceled.Add(1)
			err = errf(statusClientClosedRequest, "client closed request")
		case err == nil && ctx.Err() != nil:
			// The handler finished but nobody is waiting for the answer.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.metrics.deadlineExceeded.Add(1)
				err = errf(http.StatusServiceUnavailable, "request deadline exceeded")
			} else {
				s.metrics.canceled.Add(1)
				err = errf(statusClientClosedRequest, "client closed request")
			}
		}
		status := s.write(w, resp, err)
		s.metrics.observe(rt, status, time.Since(start))
		if tc.Live() {
			tc.Attr("status", strconv.Itoa(status)).End()
			tc.Flush()
		}
	}
}

// noteShed records one shed at now and returns the Retry-After delay
// (seconds) to suggest: 1 when shedding is incidental, growing with the
// number of sheds this second relative to capacity — the heavier the
// overload, the further clients are pushed out — capped at 30 so a
// burst never banishes clients for minutes. (The previous handler
// hardcoded "1", which under sustained overload synchronized every
// rejected client into a retry stampede one second later.)
func (s *Server) noteShed(now time.Time) int {
	sec := now.Unix()
	if win := s.shedWinSec.Load(); win != sec && s.shedWinSec.CompareAndSwap(win, sec) {
		s.shedWinCount.Store(0)
	}
	n := s.shedWinCount.Add(1)
	after := 1 + int(n)/s.opt.MaxInflight
	if after > 30 {
		after = 30
	}
	return after
}

// write renders a handler result. Errors become JSON error bodies.
func (s *Server) write(w http.ResponseWriter, resp *response, err error) int {
	if err != nil {
		status := http.StatusInternalServerError
		var he *httpError
		if errors.As(err, &he) {
			status = he.status
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		body, _ := json.Marshal(map[string]string{"error": err.Error()})
		w.Write(append(body, '\n'))
		return status
	}
	w.Header().Set("Content-Type", resp.contentType)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
	return resp.status
}

// cached runs compute through the response cache + coalescer, keyed on
// the request identity and the store generation.
func (s *Server) cached(key string, compute func() (*response, error)) (*response, error) {
	if s.opt.CacheEntries < 0 {
		return compute()
	}
	resp, oc, err := s.cache.do(key, s.opt.Store.Generation(), compute)
	if oc == outcomeCoalesced && errors.Is(err, guard.ErrCanceled) {
		// The request whose compute we coalesced onto was canceled (its
		// client hung up); that cancellation is not ours. Retry once with
		// our own compute closure — and our own token.
		resp, oc, err = s.cache.do(key, s.opt.Store.Generation(), compute)
	}
	switch oc {
	case outcomeHit:
		s.metrics.cacheHit.Add(1)
	case outcomeCoalesced:
		s.metrics.coalesced.Add(1)
	default:
		s.metrics.cacheMiss.Add(1)
	}
	return resp, err
}

func (s *Server) handleHealthz(r *http.Request) (*response, error) {
	return &response{status: http.StatusOK, contentType: "text/plain; charset=utf-8", body: []byte("ok\n")}, nil
}

// traceStats gathers the tracer's counters for a scrape; all zeros
// when tracing is off, so the series still render.
func (s *Server) traceStats() traceStats {
	var ts traceStats
	if s.opt.Tracer != nil {
		ts.Counters = s.opt.Tracer.Counters()
	}
	if s.opt.TraceStore != nil {
		ts.Retained = s.opt.TraceStore.Len()
	}
	return ts
}

// handleMetrics content-negotiates: Prometheus text exposition by
// default, the legacy JSON snapshot when the client asks for
// application/json.
func (s *Server) handleMetrics(r *http.Request) (*response, error) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		return &response{
			status:      http.StatusOK,
			contentType: "application/json",
			body:        s.metrics.snapshot(s.opt.Store.Len(), s.opt.Store.Generation(), s.traceStats()),
		}, nil
	}
	return &response{
		status:      http.StatusOK,
		contentType: "text/plain; version=0.0.4; charset=utf-8",
		body:        s.metrics.prometheus(s.opt.Store.Len(), s.opt.Store.Generation(), s.traceStats()),
	}, nil
}

// handleTrace serves the retained spans of one trace by id (hex, as
// echoed in X-Trace-Id). 404s when tracing or retention is off, or the
// trace has been evicted.
func (s *Server) handleTrace(r *http.Request) (*response, error) {
	if s.opt.TraceStore == nil {
		return nil, errf(http.StatusNotFound, "tracing is not enabled on this server")
	}
	idStr := r.PathValue("id")
	id, err := strconv.ParseUint(idStr, 16, 64)
	if err != nil || id == 0 {
		return nil, errf(http.StatusBadRequest, "bad trace id %q (want the hex id from X-Trace-Id)", idStr)
	}
	events, truncated, ok := s.opt.TraceStore.Trace(id)
	if !ok {
		return nil, errf(http.StatusNotFound, "trace %016x not retained (evicted, unflushed, or never existed)", id)
	}
	body, merr := json.MarshalIndent(struct {
		Trace     string        `json:"trace"`
		Events    []trace.Event `json:"events"`
		Truncated int           `json:"truncated,omitempty"`
	}{fmt.Sprintf("%016x", id), events, truncated}, "", "  ")
	if merr != nil {
		return nil, merr
	}
	return &response{status: http.StatusOK, contentType: "application/json", body: append(body, '\n')}, nil
}

// cellJSON is the /v1/cells wire form of one store cell.
type cellJSON struct {
	Variant   string      `json:"variant"`
	Input     string      `json:"input"`
	Device    string      `json:"device"`
	Graph     graph.Stats `json:"graph"`
	Tput      float64     `json:"tput"`
	Attempts  int         `json:"attempts"`
	ElapsedMS float64     `json:"elapsed_ms"`
	// Simulated cost counters, present on GPU cells measured since the
	// store's codec v2 (deterministic, exact for the cell's triple).
	SimCycles       int64 `json:"sim_cycles,omitempty"`
	SimInstructions int64 `json:"sim_instructions,omitempty"`
	SimTransactions int64 `json:"sim_transactions,omitempty"`
}

func (s *Server) handleCells(r *http.Request) (*response, error) {
	if r.Method != http.MethodGet {
		return nil, errf(http.StatusMethodNotAllowed, "use GET")
	}
	q := r.URL.Query()
	var filters []store.Filter
	if v := q.Get("algo"); v != "" {
		a, err := parseAlgo(v)
		if err != nil {
			return nil, err
		}
		filters = append(filters, store.ByAlgo(a))
	}
	if v := q.Get("model"); v != "" {
		m, err := parseModel(v)
		if err != nil {
			return nil, err
		}
		filters = append(filters, store.ByModel(m))
	}
	if v := q.Get("input"); v != "" {
		filters = append(filters, func(c store.Cell) bool { return c.Input == v })
	}
	if v := q.Get("device"); v != "" {
		filters = append(filters, func(c store.Cell) bool { return c.Device == v })
	}
	limit := -1
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, errf(http.StatusBadRequest, "bad limit %q", v)
		}
		limit = n
	}
	key := "cells?" + canonicalQuery(q)
	return s.cached(key, func() (*response, error) {
		f := store.And(filters...)
		cells := s.opt.Store.Cells()
		// Deterministic order regardless of append history.
		sort.Slice(cells, func(i, j int) bool { return cells[i].Key() < cells[j].Key() })
		out := make([]cellJSON, 0, len(cells))
		for _, c := range cells {
			if !f(c) {
				continue
			}
			out = append(out, cellJSON{
				Variant:   c.Cfg.Name(),
				Input:     c.Input,
				Device:    c.Device,
				Graph:     c.Graph,
				Tput:      c.Tput,
				Attempts:  c.Attempts,
				ElapsedMS: c.ElapsedMS,

				SimCycles:       c.SimCycles,
				SimInstructions: c.SimInstructions,
				SimTransactions: c.SimTransactions,
			})
			if limit >= 0 && len(out) >= limit {
				break
			}
		}
		body, err := json.MarshalIndent(struct {
			Count int        `json:"count"`
			Cells []cellJSON `json:"cells"`
		}{len(out), out}, "", "  ")
		if err != nil {
			return nil, err
		}
		return &response{status: http.StatusOK, contentType: "application/json", body: append(body, '\n')}, nil
	})
}

func (s *Server) handleCensus(r *http.Request) (*response, error) {
	if r.Method != http.MethodGet {
		return nil, errf(http.StatusMethodNotAllowed, "use GET")
	}
	q := r.URL.Query()
	models := []styles.Model{styles.CUDA, styles.OMP, styles.CPP}
	if v := q.Get("model"); v != "" {
		m, err := parseModel(v)
		if err != nil {
			return nil, err
		}
		models = []styles.Model{m}
	}
	key := "census?" + canonicalQuery(q)
	return s.cached(key, func() (*response, error) {
		lines := []string{store.CensusHeader}
		for _, m := range models {
			if row, ok := s.opt.Store.Census(m); ok {
				lines = append(lines, row.Line())
			}
		}
		return textResponse(lines), nil
	})
}

func (s *Server) handleRatios(r *http.Request) (*response, error) {
	if r.Method != http.MethodGet {
		return nil, errf(http.StatusMethodNotAllowed, "use GET")
	}
	q := r.URL.Query()
	dim := styles.DimByKey(q.Get("dim"))
	if dim == nil {
		return nil, errf(http.StatusBadRequest, "unknown dim %q (%s)", q.Get("dim"), dimKeys())
	}
	aIdx, bIdx := 0, 1
	var err error
	if v := q.Get("a"); v != "" {
		if aIdx, err = strconv.Atoi(v); err != nil {
			return nil, errf(http.StatusBadRequest, "bad a %q", v)
		}
	}
	if v := q.Get("b"); v != "" {
		if bIdx, err = strconv.Atoi(v); err != nil {
			return nil, errf(http.StatusBadRequest, "bad b %q", v)
		}
	}
	if aIdx < 0 || aIdx >= dim.NumValues || bIdx < 0 || bIdx >= dim.NumValues {
		return nil, errf(http.StatusBadRequest, "value index out of range for dim %s (0..%d)", dim.Key, dim.NumValues-1)
	}
	filters := []store.Filter{}
	if q.Get("all") == "" {
		// Like the paper after §5.1, exclude the CudaAtomic stragglers
		// unless the client asks for everything.
		filters = append(filters, store.ClassicOnly)
	}
	if v := q.Get("model"); v != "" {
		m, err := parseModel(v)
		if err != nil {
			return nil, err
		}
		filters = append(filters, store.ByModel(m))
	}
	if v := q.Get("algo"); v != "" {
		a, err := parseAlgo(v)
		if err != nil {
			return nil, err
		}
		filters = append(filters, store.ByAlgo(a))
	}
	key := "ratios?" + canonicalQuery(q)
	return s.cached(key, func() (*response, error) {
		ratios := s.opt.Store.Ratios(dim, aIdx, bIdx, store.And(filters...))
		lines := []string{fmt.Sprintf("%s: %s over %s", dim.Key,
			dim.Value(dim.Set(styles.Config{}, aIdx)), dim.Value(dim.Set(styles.Config{}, bIdx)))}
		lines = append(lines, store.RatioLines(ratios)...)
		return textResponse(lines), nil
	})
}

func textResponse(lines []string) *response {
	return &response{
		status:      http.StatusOK,
		contentType: "text/plain; charset=utf-8",
		body:        []byte(strings.Join(lines, "\n") + "\n"),
	}
}

// canonicalQuery renders query params in sorted order so equivalent
// URLs share a cache entry.
func canonicalQuery(q map[string][]string) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		for _, v := range q[k] {
			fmt.Fprintf(&sb, "%s=%s&", k, v)
		}
	}
	return sb.String()
}

func bodyCacheKey(path string, body []byte) string {
	sum := sha256.Sum256(body)
	return path + "#" + hex.EncodeToString(sum[:])
}

func parseAlgo(s string) (styles.Algorithm, *httpError) {
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, errf(http.StatusBadRequest, "unknown algorithm %q (bfs, sssp, cc, mis, pr, tc)", s)
}

func parseModel(s string) (styles.Model, *httpError) {
	for m := styles.Model(0); m < styles.NumModels; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, errf(http.StatusBadRequest, "unknown model %q (cuda, omp, cpp)", s)
}

func dimKeys() string {
	var keys []string
	for _, d := range styles.Dims {
		keys = append(keys, d.Key)
	}
	return strings.Join(keys, ", ")
}

// Serve runs the service on ln until ctx is canceled, then drains
// gracefully: the listener closes immediately (load balancers see
// connection refused and fail over), while in-flight requests get up to
// DrainTimeout to finish. Returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.draining.Store(true) // pprof starts refusing before the drain begins
		drainCtx, cancel := context.WithTimeout(context.Background(), s.opt.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		<-errc // reap the Serve goroutine (returns ErrServerClosed)
		return nil
	}
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// readBody drains a capped request body.
func readBody(r *http.Request, max int64) ([]byte, *httpError) {
	body, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		return nil, errf(http.StatusBadRequest, "read body: %v", err)
	}
	if int64(len(body)) > max {
		return nil, errf(http.StatusRequestEntityTooLarge, "body exceeds %d bytes", max)
	}
	return body, nil
}
