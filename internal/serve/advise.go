package serve

import (
	"encoding/json"
	"net/http"

	"indigo/internal/advisor"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/trace"
)

// adviseRequest is the /v1/advise request body. The client supplies the
// input's shape either directly ("stats") or as an inline graph to
// parse ("graph" + "format"); exactly one of the two.
type adviseRequest struct {
	Algo  string `json:"algo"`
	Model string `json:"model"`
	// Stats is the precomputed Table 4/5 shape signature.
	Stats *graph.Stats `json:"stats,omitempty"`
	// Graph is an inline graph in the given Format ("edgelist" or
	// "dimacs"); the service computes its stats. Bodies are capped by
	// Options.MaxUploadBytes and parsed through the hardened readers.
	Graph  string `json:"graph,omitempty"`
	Format string `json:"format,omitempty"`
}

// adviseResponse is the recommendation: the variant to build, the
// per-choice §5.16 rationale, and the shape the advice keyed on.
type adviseResponse struct {
	Variant   string      `json:"variant"`
	Rationale []string    `json:"rationale"`
	Stats     graph.Stats `json:"stats"`
}

func (s *Server) handleAdvise(r *http.Request) (*response, error) {
	if r.Method != http.MethodPost {
		return nil, errf(http.StatusMethodNotAllowed, "use POST")
	}
	body, herr := readBody(r, s.opt.MaxUploadBytes)
	if herr != nil {
		return nil, herr
	}
	var req adviseRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	a, aerr := parseAlgo(req.Algo)
	if aerr != nil {
		return nil, aerr
	}
	m, merr := parseModel(req.Model)
	if merr != nil {
		return nil, merr
	}
	if (req.Stats == nil) == (req.Graph == "") {
		return nil, errf(http.StatusBadRequest, "provide exactly one of stats or graph")
	}

	// Advice is deterministic in the request, so it caches on the body
	// hash; coalescing also folds concurrent identical uploads (the
	// expensive case: stats of a big inline graph) into one parse.
	// The compute runs under the request's guard token: the inline
	// graph's bytes are charged against the budget, the stats traversals
	// poll for cancellation, and the deferred Recover turns a mid-parse
	// abort back into the sentinel error the limited pipeline maps to a
	// status code.
	gd := tokenFrom(r.Context())
	tc := traceFrom(r.Context())
	return s.cached(bodyCacheKey("advise", body), func() (resp *response, err error) {
		defer guard.Recover(&err)
		var st graph.Stats
		if req.Stats != nil {
			st = *req.Stats
		} else {
			gd.Charge(int64(len(req.Graph))) // parsing materializes the upload
			g, herr := parseInlineGraph(req.Graph, req.Format, gd, tc)
			if herr != nil {
				return nil, herr
			}
			st = g.StatsGuarded(gd)
		}
		rec := advisor.Recommend(a, m, st)
		out, jerr := json.MarshalIndent(adviseResponse{
			Variant:   rec.Config.Name(),
			Rationale: rec.Rationale,
			Stats:     st,
		}, "", "  ")
		if jerr != nil {
			return nil, jerr
		}
		return &response{status: http.StatusOK, contentType: "application/json", body: append(out, '\n')}, nil
	})
}

// parseInlineGraph parses an uploaded graph through the hardened
// readers. Malformed input is a client error, never a crash: the
// readers reject negative/overflowing ids, truncated records, and
// absurd header counts (see internal/graph/io.go). The request's
// guard rides into the chunked parallel parse and CSR build, so a
// deadline or budget abort stops a large upload mid-chunk (the
// guard panic unwinds to handleAdvise's Recover). The request trace
// rides in the same way: the parse, build, and stats phases show up as
// ingest.* child spans of the request's root span.
func parseInlineGraph(text, format string, gd *guard.Token, tc trace.Ctx) (*graph.Graph, *httpError) {
	opts := graph.ReadOptions{Guard: gd, Trace: tc}
	switch format {
	case "edgelist", "":
		g, err := graph.ReadEdgeListBytes([]byte(text), "upload", opts)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "parse edgelist: %v", err)
		}
		return g, nil
	case "dimacs":
		g, err := graph.ReadDIMACSBytes([]byte(text), "upload", opts)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "parse dimacs: %v", err)
		}
		return g, nil
	}
	return nil, errf(http.StatusBadRequest, "unknown format %q (edgelist, dimacs)", format)
}
