package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond up to two seconds; the chaos tests use it instead
// of sleeps so they stay fast when things go right and loud when not.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLimiterShedsOverload is the chaos acceptance test: at 2x the
// concurrency cap, every request is answered with either 200 or 429
// (+Retry-After), the limiter never admits more than the cap, and no
// goroutines leak once the flood drains.
func TestLimiterShedsOverload(t *testing.T) {
	const cap = 4
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	s := New(Options{Store: seedStore(t), MaxInflight: cap})
	s.testHold = func() { <-release }
	ts := httptest.NewServer(s.Handler())

	type result struct {
		status     int
		retryAfter string
	}
	results := make(chan result, 2*cap)
	var wg sync.WaitGroup
	for i := 0; i < 2*cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/census")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}

	// The first cap requests fill the limiter and block on the hold; the
	// rest must shed without queueing.
	waitFor(t, "limiter to fill", func() bool { return s.metrics.inflight.Load() == cap })
	waitFor(t, "overload to shed", func() bool { return s.metrics.shed.Load() == cap })
	// Health stays answerable at saturation — that is the point of
	// keeping it outside the limiter.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz at saturation: %d, want 200", code)
	}
	close(release)
	wg.Wait()
	close(results)

	var ok, shed int
	for r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d under overload", r.status)
		}
	}
	if ok != cap || shed != cap {
		t.Fatalf("got %d oks and %d sheds, want %d and %d", ok, shed, cap, cap)
	}

	// No goroutine leak: everything spawned for the flood winds down.
	ts.Close()
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestGracefulDrain cancels a serving context while a request is held
// in flight: the listener closes at once, the in-flight request still
// completes with 200, and Serve returns a clean nil.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s := New(Options{Store: seedStore(t), DrainTimeout: 5 * time.Second})
	s.testHold = func() {
		close(entered)
		<-release
	}

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	got := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/v1/census")
		if err != nil {
			got <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- resp.StatusCode
	}()

	<-entered // the request is inside the handler
	cancel()  // begin shutdown while it is still there

	// The listener must refuse new work promptly even though a request
	// is draining.
	waitFor(t, "listener to close", func() bool {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 50*time.Millisecond)
		if err == nil {
			conn.Close()
			return false
		}
		return true
	})

	select {
	case err := <-served:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	default:
	}

	close(release)
	if code := <-got; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
}

// TestCoalescing pins the thundering-herd contract: concurrent identical
// misses collapse into one computation.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	computes := 0
	c := newRespCache(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.do("k", 1, func() (*response, error) {
				computes++ // only the single winner runs this
				<-release
				return &response{status: 200}, nil
			})
		}()
	}
	waitFor(t, "flight to register", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times for 8 concurrent requests, want 1", computes)
	}
}
