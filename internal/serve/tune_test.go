package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indigo/internal/styles"
	"indigo/internal/testutil"
)

func TestBestEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/v1/best?algo=bfs&model=omp&input=road&device=cpu")
	if code != http.StatusOK {
		t.Fatalf("best: %d %q", code, body)
	}
	var out bestResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Tput != 4 || !strings.Contains(out.Variant, "push") {
		t.Fatalf("best cell = %+v, want the 4.0 push cell", out)
	}

	if code, _ := get(t, ts.URL+"/v1/best?algo=bfs&model=omp&input=road&device=rtx-sim"); code != http.StatusNotFound {
		t.Fatalf("missing cell: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/best?algo=nope&model=omp&input=road&device=cpu"); code != http.StatusBadRequest {
		t.Fatalf("bad algo: %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/best?algo=bfs&model=omp"); code != http.StatusBadRequest {
		t.Fatalf("missing input/device: %d, want 400", code)
	}
}

// TestTuneEndpoint runs a real budget-capped tuning session on a tiny
// generated input against the simulated GPU, end to end through the
// limited pipeline.
func TestTuneEndpoint(t *testing.T) {
	leaks := testutil.Snapshot(t)
	s := New(Options{Store: seedStore(t), TuneMaxMeasurements: 40})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		http.DefaultClient.CloseIdleConnections()
		leaks.Check(t)
	}()
	code, body := post(t, ts.URL+"/v1/tune",
		`{"algo":"bfs","model":"cuda","device":"rtx-sim","input":"rmat","seed":1}`)
	if code != http.StatusOK {
		t.Fatalf("tune: %d %q", code, body)
	}
	var out tuneResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Partial {
		t.Fatalf("partial tune: %s", out.PartialReason)
	}
	if out.Tput <= 0 || out.Variant == "" {
		t.Fatalf("no winner: %+v", out)
	}
	space := len(styles.Enumerate(styles.BFS, styles.CUDA))
	if out.Space != space {
		t.Fatalf("space = %d, want %d", out.Space, space)
	}
	if out.Measurements > 40 || out.Measurements*4 > space {
		t.Fatalf("spent %d measurements (space %d, cap 40)", out.Measurements, space)
	}
	if len(out.Rationale) == 0 {
		t.Fatal("no rationale")
	}
	if out.Stats.Vertices == 0 {
		t.Fatal("no stats echoed")
	}

	// Same body again: deterministic and cacheable — identical answer.
	code2, body2 := post(t, ts.URL+"/v1/tune",
		`{"algo":"bfs","model":"cuda","device":"rtx-sim","input":"rmat","seed":1}`)
	if code2 != http.StatusOK || body2 != body {
		t.Fatalf("repeat tune differs: %d (bodies equal: %v)", code2, body2 == body)
	}
}

// TestTuneEndpointBudgetClamp: a request asking for more than the
// server cap is clamped, and the session still completes (partial if
// the clamp bites mid-race).
func TestTuneEndpointBudgetClamp(t *testing.T) {
	_, ts := newTestServer(t, Options{TuneMaxMeasurements: 6})
	code, body := post(t, ts.URL+"/v1/tune",
		`{"algo":"bfs","model":"cuda","device":"rtx-sim","input":"rmat","seed":1,"budget":1000}`)
	if code != http.StatusOK {
		t.Fatalf("tune: %d %q", code, body)
	}
	var out tuneResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Measurements > 6 {
		t.Fatalf("spent %d measurements past the server cap of 6", out.Measurements)
	}
}

func TestTuneEndpointRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad algo", `{"algo":"nope","model":"cuda","device":"rtx-sim","input":"rmat"}`, http.StatusBadRequest},
		{"bad device", `{"algo":"bfs","model":"cuda","device":"a100","input":"rmat"}`, http.StatusBadRequest},
		{"both sources", `{"algo":"bfs","model":"cuda","device":"rtx-sim","input":"rmat","graph":"0 1"}`, http.StatusBadRequest},
		{"neither source", `{"algo":"bfs","model":"cuda","device":"rtx-sim"}`, http.StatusBadRequest},
		{"bad input", `{"algo":"bfs","model":"cuda","device":"rtx-sim","input":"orkut"}`, http.StatusBadRequest},
		{"oversized scale", `{"algo":"bfs","model":"cuda","device":"rtx-sim","input":"rmat","scale":"large"}`, http.StatusBadRequest},
		{"not json", `{"algo":`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := post(t, ts.URL+"/v1/tune", tc.body); code != tc.want {
			t.Errorf("%s: %d %q, want %d", tc.name, code, body, tc.want)
		}
	}
}

// TestTuneEndpointInlineGraph tunes on an uploaded edge list rather
// than a suite input.
func TestTuneEndpointInlineGraph(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var edges strings.Builder
	for v := 0; v < 63; v++ {
		fmt.Fprintf(&edges, "%d %d 1\n", v, v+1)
	}
	req, _ := json.Marshal(map[string]any{
		"algo": "bfs", "model": "omp", "device": "cpu",
		"graph": edges.String(), "format": "edgelist", "seed": 3,
	})
	code, body := post(t, ts.URL+"/v1/tune", string(req))
	if code != http.StatusOK {
		t.Fatalf("inline tune: %d %q", code, body)
	}
	var out tuneResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Tput <= 0 || !strings.HasPrefix(out.Variant, "bfs/omp/") {
		t.Fatalf("winner = %+v", out)
	}
}
