package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indigo/internal/testutil"
)

// inlineAdvise is a small but real /v1/advise body with an inline graph,
// so the compute path goes through the guarded charge + stats traversal.
const inlineAdvise = `{"algo":"bfs","model":"omp","graph":"0 1\n1 2\n2 3\n3 4\n"}`

func serveAdvise(s *Server, body string, mutate func(*http.Request) *http.Request) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/advise", strings.NewReader(body))
	if mutate != nil {
		req = mutate(req)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestAdviseBudgetRejected: an inline graph larger than the request
// budget is rejected with a clean 413 that names the budget — the
// compute aborts at the charge, it does not OOM or 500.
func TestAdviseBudgetRejected(t *testing.T) {
	s := New(Options{Store: seedStore(t), RequestBudget: 4})
	w := serveAdvise(s, inlineAdvise, nil)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget advise: %d %q, want 413", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "budget") {
		t.Errorf("413 body %q does not mention the budget", w.Body.String())
	}
	if n := s.metrics.budgetRejected.Load(); n != 1 {
		t.Errorf("budget_rejected counter = %d, want 1", n)
	}
}

// TestAdviseDeadlineCancels: a request that is still computing when its
// deadline passes is stopped through its token and answered 503.
func TestAdviseDeadlineCancels(t *testing.T) {
	s := New(Options{Store: seedStore(t), RequestTimeout: 20 * time.Millisecond})
	// Hold the request (inside the limited section, after the deadline is
	// armed) until the deadline has passed and the context watcher has
	// certainly tripped the token.
	s.testHold = func() { time.Sleep(120 * time.Millisecond) }
	w := serveAdvise(s, inlineAdvise, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired advise: %d %q, want 503", w.Code, w.Body.String())
	}
	if n := s.metrics.deadlineExceeded.Load(); n != 1 {
		t.Errorf("deadline_exceeded counter = %d, want 1", n)
	}
}

// TestAdviseClientDisconnectCancels: when the client goes away
// mid-request, the bound token trips and the in-flight compute stops at
// its next checkpoint instead of finishing for nobody.
func TestAdviseClientDisconnectCancels(t *testing.T) {
	s := New(Options{Store: seedStore(t)})
	var cancel context.CancelFunc
	s.testHold = func() {
		cancel() // the client hangs up while the request is in flight
		time.Sleep(120 * time.Millisecond)
	}
	w := serveAdvise(s, inlineAdvise, func(req *http.Request) *http.Request {
		var ctx context.Context
		ctx, cancel = context.WithCancel(req.Context())
		return req.WithContext(ctx)
	})
	if w.Code != statusClientClosedRequest {
		t.Fatalf("disconnected advise: %d %q, want %d", w.Code, w.Body.String(), statusClientClosedRequest)
	}
	if n := s.metrics.canceled.Load(); n != 1 {
		t.Errorf("canceled counter = %d, want 1", n)
	}
}

// TestMetricsFullCounterSet drives every counter family at least once
// and asserts the /metrics document carries the complete set, including
// the guard counters — so a dashboard built on these names never finds
// one missing.
func TestMetricsFullCounterSet(t *testing.T) {
	s := New(Options{Store: seedStore(t), RequestBudget: 4, MaxInflight: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/v1/census")                // cache miss
	get(t, ts.URL+"/v1/census")                // cache hit
	post(t, ts.URL+"/v1/advise", inlineAdvise) // budget rejection (413)

	// Deadline and disconnect paths, via direct dispatch with test holds.
	s.opt.RequestTimeout = 20 * time.Millisecond
	s.testHold = func() { time.Sleep(120 * time.Millisecond) }
	serveAdvise(s, inlineAdvise, nil)
	var cancel context.CancelFunc
	s.testHold = func() {
		cancel()
		time.Sleep(120 * time.Millisecond)
	}
	s.opt.RequestTimeout = 10 * time.Second
	serveAdvise(s, inlineAdvise, func(req *http.Request) *http.Request {
		var ctx context.Context
		ctx, cancel = context.WithCancel(req.Context())
		return req.WithContext(ctx)
	})
	s.testHold = nil

	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %q", code, body)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{
		"requests_total", "requests", "responses", "inflight", "shed_total",
		"canceled_total", "deadline_exceeded_total", "budget_rejected_total",
		"cache", "latency_ms", "store", "trace",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics document is missing %q:\n%s", key, body)
		}
	}
	for key, want := range map[string]int64{
		"canceled_total":          1,
		"deadline_exceeded_total": 1,
		"budget_rejected_total":   1,
	} {
		if got := int64(doc[key].(float64)); got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
}

// TestSustainedOverload holds the service at twice its capacity for a
// sustained stretch: every answer is a 200 or a 429-with-Retry-After,
// the goroutine count stays bounded the whole time (overload sheds, it
// does not queue), and nothing leaks once the flood stops.
func TestSustainedOverload(t *testing.T) {
	leaks := testutil.Snapshot(t)
	const cap = 4
	s := New(Options{Store: seedStore(t), MaxInflight: cap, CacheEntries: -1})
	s.testHold = func() { time.Sleep(2 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())

	baseline := runtime.NumGoroutine()
	deadline := time.Now().Add(1500 * time.Millisecond)
	var ok, shed, bad, maxGoroutines atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2*cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := http.Get(ts.URL + "/v1/census")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					shed.Add(1)
				default:
					bad.Add(1)
				}
				if g := int64(runtime.NumGoroutine()); g > maxGoroutines.Load() {
					maxGoroutines.Store(g)
				}
			}
		}()
	}
	wg.Wait()

	if bad.Load() != 0 {
		t.Errorf("%d responses were neither 200 nor 429 under overload", bad.Load())
	}
	if ok.Load() == 0 || shed.Load() == 0 {
		t.Errorf("sustained overload served %d oks and %d sheds; want both nonzero", ok.Load(), shed.Load())
	}
	// Bounded: client goroutines + per-connection server goroutines +
	// slack. What this guards against is unbounded queue growth, where
	// the count would track total request volume (thousands here).
	if limit := int64(baseline + 16*cap); maxGoroutines.Load() > limit {
		t.Errorf("goroutines peaked at %d (baseline %d); overload must shed, not queue",
			maxGoroutines.Load(), baseline)
	}

	ts.Close()
	leaks.Check(t)
}
