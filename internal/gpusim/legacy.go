package gpusim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"indigo/internal/par"
)

// legacyState is the pre-sharding shared-atomic cost model: one global
// atomic tag store and one global atomic pressure table, raced by every
// concurrently executing block. It is kept as an executable baseline so
// cmd/bench -gpusim can measure the sharded model against the very
// implementation it replaced (the same pattern internal/par uses for
// its spawn-per-region baseline). Stats on this path are not
// deterministic — host interleaving perturbs the hit rates.
type legacyState struct {
	l2        []atomic.Uint64 // direct-mapped segment tags; tag 0 = empty
	l2Mask    uint64
	atomTable []atomic.Int64
}

// SetSharedBaseline switches the device between the sharded model
// (default) and the shared-atomic baseline. Bench-only.
func (d *Device) SetSharedBaseline(on bool) {
	if !on {
		d.legacy = nil
		return
	}
	segs := uint64(d.Prof.L2Bytes) / segBytes
	for segs&(segs-1) != 0 {
		segs &= segs - 1
	}
	if segs == 0 {
		segs = 1
	}
	d.legacy = &legacyState{
		l2:        make([]atomic.Uint64, segs),
		l2Mask:    segs - 1,
		atomTable: make([]atomic.Int64, atomSlots),
	}
}

func (lt *legacyState) access(addr uint64, d *Device) int64 {
	seg := addr / segBytes
	slot := &lt.l2[seg&lt.l2Mask]
	if slot.Load() == seg {
		return d.Prof.L2HitCost
	}
	slot.Store(seg)
	return d.Prof.DRAMCost
}

func (lt *legacyState) atomHit(addr uint64, weight int64) {
	h := addr * 0x9e3779b97f4a7c15 >> 52
	lt.atomTable[h].Add(weight)
}

// drain scans the whole table (the cost the sharded model's
// touched-slot tracking eliminates).
func (lt *legacyState) drain() int64 {
	var max int64
	for i := range lt.atomTable {
		if c := lt.atomTable[i].Load(); c != 0 {
			if c > max {
				max = c
			}
			lt.atomTable[i].Store(0)
		}
	}
	if max > 0 {
		max--
	}
	return max
}

func (lt *legacyState) flush() {
	for i := range lt.l2 {
		lt.l2[i].Store(0)
	}
}

// launchLegacy is the old Launch: dynamic block claiming, per-launch
// and per-block allocations, mutex-order stats merge.
func (d *Device) launchLegacy(cfg LaunchCfg, k Kernel) Stats {
	warpsPerBlock := cfg.ThreadsPerBlock / WarpSize
	smCycles := make([]int64, d.Prof.SMs)
	var smMu sync.Mutex
	var total Stats
	var nextBlock atomic.Int64
	var panicked panicSlot
	workers := runtime.GOMAXPROCS(0)
	if int64(workers) > cfg.Blocks {
		workers = int(cfg.Blocks)
	}
	par.ForTID(workers, int64(workers), par.Static, func(_ int, _ int64) {
		defer func() {
			if r := recover(); r != nil {
				panicked.record(r)
				nextBlock.Store(cfg.Blocks)
			}
		}()
		var local Stats
		localSM := make([]int64, d.Prof.SMs)
		for {
			bi := nextBlock.Add(1) - 1
			if bi >= cfg.Blocks {
				break
			}
			blockCycles := d.runBlockLegacy(cfg, k, bi, warpsPerBlock, &local)
			localSM[bi%int64(d.Prof.SMs)] += blockCycles + d.Prof.BlockOverhead
		}
		smMu.Lock()
		total.Add(local)
		for i, c := range localSM {
			smCycles[i] += c
		}
		smMu.Unlock()
	})
	panicked.rethrow()

	var maxSM int64
	for _, c := range smCycles {
		if c > maxSM {
			maxSM = c
		}
	}
	serial := d.legacy.drain() * d.Prof.AtomicSerialCost
	total.AtomicSerial = serial
	total.Cycles = maxSM + serial + d.Prof.LaunchOverhead
	return total
}

func (d *Device) runBlockLegacy(cfg LaunchCfg, k Kernel, blockIdx int64, warpsPerBlock int, agg *Stats) int64 {
	blk := &block{d: d, sharedGen: 1}
	warps := make([]*Warp, warpsPerBlock)
	for wi := range warps {
		warps[wi] = &Warp{
			d:           d,
			blk:         blk,
			lt:          d.legacy,
			WarpInBlock: wi,
			BlockIdx:    blockIdx,
			BlockDim:    cfg.ThreadsPerBlock,
			GridDim:     cfg.Blocks,
		}
	}
	if !cfg.NeedsBarrier {
		var maxCycles int64
		for _, w := range warps {
			k(w)
			agg.Add(w.stats)
			if w.cycles > maxCycles {
				maxCycles = w.cycles
			}
		}
		return maxCycles + blk.sharedSerial(d)
	}
	blk.legacyBar = newCondBarrier(warpsPerBlock)
	var mu sync.Mutex
	var maxCycles int64
	var panicked panicSlot
	par.ForConcurrent(warpsPerBlock, func(tid int) {
		w := warps[tid]
		defer func() {
			if r := recover(); r != nil {
				panicked.record(r)
				blk.legacyBar.abort()
			}
		}()
		k(w)
		mu.Lock()
		agg.Add(w.stats)
		if w.cycles > maxCycles {
			maxCycles = w.cycles
		}
		mu.Unlock()
	})
	panicked.rethrow()
	return maxCycles + blk.sharedSerial(d)
}

// condBarrier is the old park-on-a-cond-var block barrier, kept for the
// baseline path.
type condBarrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    int
	maxCyc int64
	broken bool
}

func newCondBarrier(n int) *condBarrier {
	b := &condBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *condBarrier) wait(cycles int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic(barrierAborted)
	}
	if cycles > b.maxCyc {
		b.maxCyc = cycles
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.maxCyc
	}
	gen := b.gen
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic(barrierAborted)
	}
	return b.maxCyc
}

func (b *condBarrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
