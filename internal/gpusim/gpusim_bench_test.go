package gpusim

import "testing"

func BenchmarkCoalescedLoadKernel(b *testing.B) {
	d := New(RTXSim())
	n := int64(1 << 18)
	a := d.AllocI32(n)
	cfg := LaunchCfg{Blocks: GridSize(n, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch(cfg, func(w *Warp) {
			base := w.Gidx(0)
			if base >= n {
				return
			}
			cnt := int(min64(32, n-base))
			w.CoalLdI32(a, base, cnt)
		})
	}
}

func BenchmarkScatteredAtomicKernel(b *testing.B) {
	d := New(RTXSim())
	n := int64(1 << 16)
	a := d.AllocI32(n)
	cfg := LaunchCfg{Blocks: GridSize(n, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch(cfg, func(w *Warp) {
			for l := 0; l < WarpSize; l++ {
				if idx := w.Gidx(l); idx < n {
					w.AtomicMinI32(a, (idx*2654435761)%n, int32(idx))
				}
			}
		})
	}
}

func BenchmarkBarrierKernel(b *testing.B) {
	d := New(RTXSim())
	n := int64(1 << 16)
	out := d.AllocI64(1)
	cfg := LaunchCfg{Blocks: GridSize(n, 256), NeedsBarrier: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Launch(cfg, func(w *Warp) {
			s := w.SharedI64(0, 1)
			w.BlockAtomicAddI64(s, 0, 1)
			w.Sync()
			if w.WarpInBlock == 0 {
				w.AtomicAddI64(out, 0, w.SharedLdI64(s, 0))
			}
		})
	}
}
