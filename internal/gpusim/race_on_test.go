//go:build race

package gpusim

// raceEnabled reports whether this test binary was built with the race
// detector; allocation-count assertions gate on it because the detector
// instruments allocations of its own.
const raceEnabled = true
