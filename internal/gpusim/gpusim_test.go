package gpusim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testDevice() *Device { return New(RTXSim()) }

func TestLaunchCoversAllThreads(t *testing.T) {
	d := testDevice()
	n := int64(10_000)
	hits := d.AllocI32(n)
	st := d.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.AtomicAddI32(hits, i, 1)
			}
		}
	})
	for i, v := range hits.Host() {
		if v != 1 {
			t.Fatalf("thread %d ran %d times", i, v)
		}
	}
	if st.Cycles <= d.Prof.LaunchOverhead {
		t.Errorf("Cycles = %d, want > launch overhead %d", st.Cycles, d.Prof.LaunchOverhead)
	}
	if st.Atomics != n {
		t.Errorf("Atomics = %d, want %d", st.Atomics, n)
	}
}

func TestPersistentGridStrideCoversAll(t *testing.T) {
	d := testDevice()
	n := int64(100_000)
	hits := d.AllocI32(n)
	d.Launch(LaunchCfg{Blocks: d.PersistentGrid()}, func(w *Warp) {
		stride := w.TotalThreads()
		for base := w.Gidx(0); base < n; base += stride {
			for l := 0; l < WarpSize; l++ {
				if i := base + int64(l); i < n {
					w.AtomicAddI32(hits, i, 1)
				}
			}
		}
	})
	for i, v := range hits.Host() {
		if v != 1 {
			t.Fatalf("item %d processed %d times", i, v)
		}
	}
}

func TestGidxLayout(t *testing.T) {
	d := testDevice()
	var got [256]int64
	d.Launch(LaunchCfg{Blocks: 2, ThreadsPerBlock: 128}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			idx := w.BlockIdx*128 + int64(w.WarpInBlock*WarpSize+l)
			got[idx] = w.Gidx(l)
		}
	})
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("gidx[%d] = %d", i, v)
		}
	}
}

func TestWarpAndBlockIndexing(t *testing.T) {
	d := testDevice()
	seen := d.AllocI32(8) // 4 blocks x 2 warps
	d.Launch(LaunchCfg{Blocks: 4, ThreadsPerBlock: 64}, func(w *Warp) {
		if w.TotalWarps() != 8 || w.TotalThreads() != 256 || w.GridDim != 4 {
			t.Errorf("warp sees totals %d/%d/%d", w.TotalWarps(), w.TotalThreads(), w.GridDim)
		}
		w.AtomicAddI32(seen, w.GlobalWarp(), 1)
	})
	for i, v := range seen.Host() {
		if v != 1 {
			t.Fatalf("global warp %d ran %d times", i, v)
		}
	}
}

func TestCoalescedCheaperThanScattered(t *testing.T) {
	d := testDevice()
	n := int64(1 << 16)
	a := d.AllocI32(n)
	// Coalesced: each warp reads 32 contiguous elements.
	coal := d.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		base := w.Gidx(0)
		if base < n {
			cnt := int(min64(int64(WarpSize), n-base))
			w.CoalLdI32(a, base, cnt)
		}
	})
	d.FlushL2()
	// Scattered: each lane reads a strided element (one transaction per
	// lane).
	scat := d.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.LdI32(a, (i*137)%n)
			}
		}
	})
	if coal.Transactions*4 > scat.Transactions {
		t.Errorf("coalesced %d transactions vs scattered %d: want >= 4x fewer",
			coal.Transactions, scat.Transactions)
	}
	if coal.Cycles >= scat.Cycles {
		t.Errorf("coalesced %d cycles vs scattered %d: want cheaper", coal.Cycles, scat.Cycles)
	}
}

func TestL2CapturesReuse(t *testing.T) {
	d := testDevice()
	a := d.AllocI32(64)
	st := d.Launch(LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *Warp) {
		for rep := 0; rep < 10; rep++ {
			w.LdI32(a, 0)
		}
	})
	if st.L2Hits < 9 {
		t.Errorf("L2Hits = %d, want >= 9 (repeated access to one line)", st.L2Hits)
	}
}

func TestCudaAtomicCostlierThanClassic(t *testing.T) {
	d := testDevice()
	n := int64(10_000)
	a := d.AllocI32(n)
	classic := d.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.AtomicMinI32(a, i, int32(i))
			}
		}
	})
	d.FlushL2()
	cuda := d.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.CudaAtomicMinI32(a, i, int32(i))
			}
		}
	})
	ratio := float64(cuda.Cycles) / float64(classic.Cycles)
	// Per-op the gap is diluted by DRAM transaction cost; whole-kernel
	// ratios (where loads/stores also pay the fence) are checked by the
	// harness's Fig. 1 test.
	if ratio < 2 {
		t.Errorf("cudaAtomic/classic cycle ratio = %.2f, want >= 2", ratio)
	}
	// The Titan-like profile's penalty is an order of magnitude worse.
	dt := New(TitanSim())
	b := dt.AllocI32(n)
	tc := dt.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.AtomicMinI32(b, i, int32(i))
			}
		}
	})
	dt.FlushL2()
	tcu := dt.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.CudaAtomicMinI32(b, i, int32(i))
			}
		}
	})
	titanRatio := float64(tcu.Cycles) / float64(tc.Cycles)
	if titanRatio < 2*ratio {
		t.Errorf("titan ratio %.1f not much worse than rtx ratio %.1f", titanRatio, ratio)
	}
}

func TestAtomicsFunctional(t *testing.T) {
	d := testDevice()
	a := d.AllocI32(4)
	a.Host()[0] = 100
	a.Host()[1] = -5
	cnt := d.AllocI64(1)
	f := d.AllocF32(1)
	d.Launch(LaunchCfg{Blocks: 8, ThreadsPerBlock: 32}, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			g := w.Gidx(l)
			w.AtomicMinI32(a, 0, int32(g))
			w.AtomicMaxI32(a, 1, int32(g))
			w.AtomicAddI32(a, 2, 1)
			w.CudaAtomicAddI32(a, 3, 2)
			w.AtomicAddI64(cnt, 0, 3)
			w.AtomicAddF32(f, 0, 0.25)
		}
	})
	total := int32(8 * 32)
	if got := a.Host()[0]; got != 0 {
		t.Errorf("min = %d, want 0", got)
	}
	if got := a.Host()[1]; got != total-1 {
		t.Errorf("max = %d, want %d", got, total-1)
	}
	if got := a.Host()[2]; got != total {
		t.Errorf("add = %d, want %d", got, total)
	}
	if got := a.Host()[3]; got != 2*total {
		t.Errorf("cuda add = %d, want %d", got, 2*total)
	}
	if got := cnt.Host()[0]; got != int64(3*total) {
		t.Errorf("add64 = %d, want %d", got, 3*total)
	}
	if got := f.HostGet(0); got != float32(total)/4 {
		t.Errorf("addf = %v, want %v", got, float32(total)/4)
	}
}

func TestBarrierAndBlockReduction(t *testing.T) {
	d := testDevice()
	n := int64(4096)
	out := d.AllocI64(1)
	// Listing 10b: block-local sum in shared memory, one global add.
	st := d.Launch(LaunchCfg{Blocks: GridSize(n, 256), NeedsBarrier: true}, func(w *Warp) {
		blockCtr := w.SharedI64(0, 1)
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.BlockAtomicAddI64(blockCtr, 0, int64(i))
			}
		}
		w.Sync()
		if w.WarpInBlock == 0 {
			w.AtomicAddI64(out, 0, w.SharedLdI64(blockCtr, 0))
		}
	})
	want := n * (n - 1) / 2
	if got := out.Host()[0]; got != want {
		t.Errorf("block-add sum = %d, want %d", got, want)
	}
	if st.Atomics >= n {
		t.Errorf("block-add made %d global atomics, want far fewer than %d", st.Atomics, n)
	}
}

func TestWarpReduce(t *testing.T) {
	d := testDevice()
	out := d.AllocI64(2)
	fo := d.AllocF32(1)
	d.Launch(LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *Warp) {
		var vals [WarpSize]int64
		var fvals [WarpSize]float32
		for l := range vals {
			vals[l] = int64(l)
			fvals[l] = 0.5
		}
		w.StI64(out, 0, w.WarpReduceAddI64(&vals))
		w.StI64(out, 1, w.WarpReduceMinI64(&vals))
		w.StF32(fo, 0, w.WarpReduceAddF32(&fvals))
	})
	if got := out.Host()[0]; got != 31*32/2 {
		t.Errorf("reduce add = %d", got)
	}
	if got := out.Host()[1]; got != 0 {
		t.Errorf("reduce min = %d", got)
	}
	if got := fo.HostGet(0); got != 16 {
		t.Errorf("reduce addf = %v", got)
	}
}

func TestDivergentRangesCostsMaxLen(t *testing.T) {
	d := testDevice()
	var beg, end [WarpSize]int64
	for l := range beg {
		beg[l] = 0
		end[l] = int64(l) // lane l iterates l elements; max 31
	}
	var visits atomic.Int64
	var balanced, imbalanced int64
	d.Launch(LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *Warp) {
		before := w.Cycles()
		w.DivergentRanges(WarpSize, &beg, &end, 1, func(lane int, e int64) {
			visits.Add(1)
		})
		imbalanced = w.Cycles() - before
	})
	wantVisits := int64(31 * 32 / 2)
	if visits.Load() != wantVisits {
		t.Errorf("visits = %d, want %d", visits.Load(), wantVisits)
	}
	// Balanced ranges with the same total work cost fewer lockstep steps.
	for l := range beg {
		beg[l], end[l] = 0, wantVisits/WarpSize
	}
	d.Launch(LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *Warp) {
		before := w.Cycles()
		w.DivergentRanges(WarpSize, &beg, &end, 1, func(lane int, e int64) {})
		balanced = w.Cycles() - before
	})
	if balanced >= imbalanced {
		t.Errorf("balanced cost %d >= imbalanced cost %d", balanced, imbalanced)
	}
}

func TestSyncWithoutBarrierPanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Fatal("Sync without NeedsBarrier did not panic")
		}
	}()
	d.Launch(LaunchCfg{Blocks: 1, ThreadsPerBlock: 64}, func(w *Warp) {
		w.Sync()
	})
}

func TestLaunchValidation(t *testing.T) {
	d := testDevice()
	for _, cfg := range []LaunchCfg{
		{Blocks: 0},
		{Blocks: 1, ThreadsPerBlock: 100},
		{Blocks: 1, ThreadsPerBlock: 2048},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Launch(%+v) did not panic", cfg)
				}
			}()
			d.Launch(cfg, func(w *Warp) {})
		}()
	}
}

func TestGridSize(t *testing.T) {
	cases := []struct{ n, per, want int64 }{
		{0, 256, 1}, {1, 256, 1}, {256, 256, 1}, {257, 256, 2}, {1000, 8, 125},
	}
	for _, c := range cases {
		if got := GridSize(c.n, c.per); got != c.want {
			t.Errorf("GridSize(%d,%d) = %d, want %d", c.n, c.per, got, c.want)
		}
	}
}

func TestQuickCASHelpers(t *testing.T) {
	f := func(vals []int32) bool {
		var lo, hi int32 = 1<<31 - 1, -(1 << 31)
		var alo, ahi int32 = lo, hi
		for _, v := range vals {
			casMinI32(&alo, v)
			casMaxI32(&ahi, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return alo == lo && ahi == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameAddressAtomicsSerialize(t *testing.T) {
	d := testDevice()
	n := int64(1 << 14)
	hot := d.AllocI32(1)
	spread := d.AllocI32(n)
	cfg := LaunchCfg{Blocks: GridSize(n, 256)}
	hotSt := d.Launch(cfg, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if w.Gidx(l) < n {
				w.AtomicAddI32(hot, 0, 1)
			}
		}
	})
	scatSt := d.Launch(cfg, func(w *Warp) {
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.AtomicAddI32(spread, i, 1)
			}
		}
	})
	if hotSt.AtomicSerial < (n-1)*d.Prof.AtomicSerialCost {
		t.Errorf("hot-address serialization = %d cycles, want >= %d",
			hotSt.AtomicSerial, (n-1)*d.Prof.AtomicSerialCost)
	}
	if scatSt.AtomicSerial*4 > hotSt.AtomicSerial {
		t.Errorf("scattered serialization %d not well below hot %d",
			scatSt.AtomicSerial, hotSt.AtomicSerial)
	}
	if hotSt.Cycles <= scatSt.Cycles {
		t.Errorf("hot-address kernel %d cycles not above scattered %d", hotSt.Cycles, scatSt.Cycles)
	}
}

func TestStatsSecondsAndAdd(t *testing.T) {
	p := RTXSim()
	s := Stats{Cycles: int64(p.ClockGHz * 1e9)}
	if got := s.Seconds(p); got < 0.999 || got > 1.001 {
		t.Errorf("Seconds = %v, want ~1", got)
	}
	a := Stats{Cycles: 1, Instructions: 2, Transactions: 3, L2Hits: 4, L2Misses: 5, Atomics: 6}
	b := a
	a.Add(b)
	if a.Cycles != 2 || a.Instructions != 4 || a.Atomics != 12 {
		t.Errorf("Add result %+v wrong", a)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
