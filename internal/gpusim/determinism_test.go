// Determinism regression suite for the sharded cost model: simulated
// Stats must be a pure function of (kernel, graph, profile) —
// bit-identical across host parallelism levels, repeated runs on a
// reused device, and host scheduling (the -race chaos job runs this
// file to stress the sharded merge).
package gpusim_test

import (
	"runtime"
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

// deterministicCases returns two CUDA variants per algorithm family:
// the first enumerated one and, when the family has one, the first
// reduction-add variant (reduction kernels are the barrier-heavy path,
// where warps of a block run concurrently on the host).
func deterministicCases(t *testing.T) []styles.Config {
	t.Helper()
	var cases []styles.Config
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		cfgs := styles.Enumerate(a, styles.CUDA)
		if len(cfgs) == 0 {
			t.Fatalf("no CUDA variants for algorithm %v", a)
		}
		cases = append(cases, cfgs[0])
		for _, cfg := range cfgs {
			if cfg.GPURed == styles.ReductionAdd {
				cases = append(cases, cfg)
				break
			}
		}
	}
	return cases
}

func gpuStats(t *testing.T, d *gpusim.Device, cfg styles.Config) gpusim.Stats {
	t.Helper()
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	_, st, err := runner.RunGPU(d, g, cfg, algo.Options{})
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name(), err)
	}
	return st
}

// TestDeterministicStatsAcrossGOMAXPROCS pins the headline contract of
// the sharded cost model: the host worker count (and therefore how
// shards are claimed and interleaved) must not change a single counter.
func TestDeterministicStatsAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, cfg := range deterministicCases(t) {
		t.Run(cfg.Name(), func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			want := gpuStats(t, gpusim.New(gpusim.RTXSim()), cfg)
			for _, procs := range []int{4, 8} {
				runtime.GOMAXPROCS(procs)
				if got := gpuStats(t, gpusim.New(gpusim.RTXSim()), cfg); got != want {
					t.Errorf("GOMAXPROCS=%d:\n got %+v\nwant %+v", procs, got, want)
				}
			}
		})
	}
}

// TestDeterministicStatsAcrossDeviceReuse pins the sweep's device-reuse
// contract: a Reset device must reproduce a fresh device bit-for-bit,
// run after run.
func TestDeterministicStatsAcrossDeviceReuse(t *testing.T) {
	for _, cfg := range deterministicCases(t) {
		d := gpusim.New(gpusim.RTXSim())
		want := gpuStats(t, d, cfg)
		for run := 0; run < 2; run++ {
			d.Reset()
			if got := gpuStats(t, d, cfg); got != want {
				t.Errorf("%s: reused-device run %d:\n got %+v\nwant %+v", cfg.Name(), run+1, got, want)
			}
		}
		if got := gpuStats(t, gpusim.New(gpusim.RTXSim()), cfg); got != want {
			t.Errorf("%s: fresh device differs from first run:\n got %+v\nwant %+v", cfg.Name(), got, want)
		}
	}
}

// TestShardedMergeStress hammers the concurrent paths — many host
// workers claiming shards, barrier blocks folding private views and
// atomic-pressure entries back — and checks every repetition lands on
// the same Stats. The chaos CI job runs it under -race.
func TestShardedMergeStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	stress := []styles.Config{
		// Barrier-heavy: PR with block reduction.
		pickGPU(t, styles.PR, func(c styles.Config) bool { return c.GPURed == styles.ReductionAdd }),
		// Atomic-heavy, non-barrier: data-driven push BFS.
		pickGPU(t, styles.BFS, func(c styles.Config) bool {
			return c.Drive.IsDataDriven() && c.Flow == styles.Push
		}),
	}
	for _, cfg := range stress {
		d := gpusim.New(gpusim.RTXSim())
		want := gpuStats(t, d, cfg)
		for i := 0; i < 4; i++ {
			d.Reset()
			if got := gpuStats(t, d, cfg); got != want {
				t.Fatalf("%s: stress run %d diverged:\n got %+v\nwant %+v", cfg.Name(), i+1, got, want)
			}
		}
	}
}

func pickGPU(t *testing.T, a styles.Algorithm, want func(styles.Config) bool) styles.Config {
	t.Helper()
	for _, cfg := range styles.Enumerate(a, styles.CUDA) {
		if want(cfg) {
			return cfg
		}
	}
	t.Fatalf("no CUDA %v variant matches the predicate", a)
	return styles.Config{}
}
