package gpusim

import (
	"fmt"
	"iter"
	"strconv"
	"sync"
	"sync/atomic"

	"indigo/internal/guard"
)

// Kernel is a device kernel, written per warp: the function is invoked
// once for every warp of the grid and iterates its lanes explicitly.
type Kernel func(w *Warp)

// LaunchCfg shapes one kernel launch.
type LaunchCfg struct {
	// Blocks is the grid size.
	Blocks int64
	// ThreadsPerBlock must be a multiple of 32; 0 means 256.
	ThreadsPerBlock int
	// NeedsBarrier must be set when the kernel calls Warp.Sync. Barrier
	// kernels run their block's warps as coroutines (interleaved at
	// Sync points, one at a time); others run them straight through
	// sequentially (cheaper to simulate).
	NeedsBarrier bool
}

// Stats reports one launch's simulated cost and event counts.
type Stats struct {
	// Cycles is the kernel's duration: the busiest SM's cycle count
	// plus launch overhead.
	Cycles int64
	// Instructions counts issued warp instructions.
	Instructions int64
	// Transactions counts global-memory transactions.
	Transactions int64
	// L2Hits / L2Misses classify the transactions.
	L2Hits   int64
	L2Misses int64
	// Atomics counts atomic operations (classic and CudaAtomic).
	Atomics int64
	// AtomicSerial is the cycles added to the critical path by
	// same-address atomic serialization.
	AtomicSerial int64
}

// Add accumulates other into s (for multi-launch algorithms).
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.Instructions += other.Instructions
	s.Transactions += other.Transactions
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.Atomics += other.Atomics
	s.AtomicSerial += other.AtomicSerial
}

// Seconds converts the simulated cycles to seconds on profile p.
func (s Stats) Seconds(p Profile) float64 {
	return float64(s.Cycles) / (p.ClockGHz * 1e9)
}

// launchScratch is the per-Device reusable launch state: a warmed-up
// device's Launch allocates nothing.
type launchScratch struct {
	cfg           LaunchCfg
	kern          Kernel
	warpsPerBlock int
	// nextShard hands whole shards to the launch worker; a recorded
	// panic overshoots it past the shard count to stop the claim loop.
	nextShard atomic.Int64
	panicked  panicSlot
}

// Launch executes the kernel over the grid and returns its simulated
// cost. Execution is functional: all global-memory operations use host
// atomics, so results are exact. The cost model is sharded per SM with
// the deterministic block→SM mapping bi % SMs and merged in fixed shard
// order at launch end, so Stats are bit-identical across GOMAXPROCS
// settings and repeated runs.
func (d *Device) Launch(cfg LaunchCfg, k Kernel) Stats {
	// One poll per launch checkpoints every outer round of the
	// multi-launch algorithms; warps poll again inside the kernel every
	// guardPollCycles (see Warp.Op).
	d.gd.Poll()
	if cfg.ThreadsPerBlock == 0 {
		cfg.ThreadsPerBlock = 256
	}
	if cfg.ThreadsPerBlock%WarpSize != 0 || cfg.ThreadsPerBlock <= 0 || cfg.ThreadsPerBlock > 1024 {
		panic(fmt.Sprintf("gpusim.Launch: bad ThreadsPerBlock %d", cfg.ThreadsPerBlock))
	}
	if cfg.Blocks <= 0 {
		panic(fmt.Sprintf("gpusim.Launch: bad grid size %d", cfg.Blocks))
	}
	if d.legacy != nil {
		return d.launchLegacy(cfg, k)
	}
	sp := d.tc.Start("gpu.launch")
	defer func() { sp.End() }()
	ls := &d.ls
	ls.cfg = cfg
	ls.kern = k
	ls.warpsPerBlock = cfg.ThreadsPerBlock / WarpSize
	ls.nextShard.Store(0)
	ls.panicked.reset()

	// Shards execute inline on the launching goroutine, in fixed shard
	// order. Blocks of different shards must NOT run concurrently: the
	// functional side of the simulation is shared (kernels of the
	// nondeterministic styles intentionally race on global memory), so
	// concurrent blocks would make results — and therefore iteration and
	// instruction counts — depend on host scheduling. The fast path's
	// speed comes from the contention-free cost model (plain increments,
	// O(footprint) merges, zero warmed-launch allocations), not from
	// host fan-out; the legacy baseline keeps the old multi-worker
	// behavior for comparison.
	d.launchWorker()
	ls.kern = nil

	// Collect in fixed shard order — and always, even when a worker
	// panicked, so an aborted launch leaves no stale cost state behind.
	var total Stats
	var maxSM int64
	for i := range d.shards {
		sh := &d.shards[i]
		total.Add(sh.stats)
		sh.stats = Stats{}
		if sh.smCycles > maxSM {
			maxSM = sh.smCycles
		}
		sh.smCycles = 0
	}
	// Same-address atomics serialize at the L2 atomic unit: the busiest
	// address's queue is a lower bound on the kernel's duration no
	// matter how many SMs are working.
	serial := d.drainAtomics() * d.Prof.AtomicSerialCost
	ls.panicked.rethrow()
	total.AtomicSerial = serial
	total.Cycles = maxSM + serial + d.Prof.LaunchOverhead
	if sp.Live() {
		sp = sp.Attr("blocks", strconv.FormatInt(cfg.Blocks, 10)).
			Attr("cycles", strconv.FormatInt(total.Cycles, 10))
	}
	return total
}

// launchWorker claims shards until none remain. Kernel panics surface
// on the launching goroutine, like a CUDA error on the host thread.
func (d *Device) launchWorker() {
	ls := &d.ls
	sms := int64(d.Prof.SMs)
	defer func() {
		if r := recover(); r != nil {
			ls.panicked.record(r)
			ls.nextShard.Store(sms + 1) // stop other workers
		}
	}()
	for {
		s := ls.nextShard.Add(1) - 1
		if s >= sms {
			return
		}
		d.runShard(int(s))
	}
}

// runShard simulates every block of one SM, in ascending block order.
func (d *Device) runShard(si int) {
	ls := &d.ls
	sh := &d.shards[si]
	sms := int64(d.Prof.SMs)
	for bi := int64(si); bi < ls.cfg.Blocks; bi += sms {
		if ls.nextShard.Load() > sms { // a sibling worker panicked
			return
		}
		sh.smCycles += d.runBlock(sh, bi) + d.Prof.BlockOverhead
	}
}

// runBlock executes one block's warps and returns the block's cycle
// count (the slowest warp).
func (d *Device) runBlock(sh *shard, blockIdx int64) int64 {
	ls := &d.ls
	bc := &sh.bc
	bc.begin(d, sh, ls.warpsPerBlock, ls.cfg)
	W := ls.warpsPerBlock
	if !ls.cfg.NeedsBarrier {
		// Sequential fast path: one warp at a time against the shard's
		// own view, all cost-model state plain.
		var maxCycles int64
		for wi := 0; wi < W; wi++ {
			w := bc.warps[wi]
			w.reset(blockIdx, &sh.view)
			ls.kern(w)
			sh.stats.Add(w.stats)
			if w.cycles > maxCycles {
				maxCycles = w.cycles
			}
		}
		return maxCycles + bc.sharedSerial(d)
	}
	// Barrier kernels run the block's warps as coroutines (iter.Pull)
	// that hand control to each other directly at Sync points: a warp
	// arriving at a barrier resumes the next sibling that has not
	// arrived yet, and whichever warp completes the rendezvous aligns
	// the cycle counters and continues straight into the next phase.
	// Exactly one warp executes at any moment and the hand-off order is
	// a pure function of the arrival bookkeeping, so every piece of
	// cost-model and functional state stays plain and the simulation is
	// deterministic by construction. Each suspension is one coroutine
	// switch on this same goroutine — no scheduler round-trip, channel,
	// futex, or pool dispatch anywhere in a barrier block.
	bc.teamN = W
	for wi := 0; wi < W; wi++ {
		bc.warps[wi].reset(blockIdx, &sh.view)
	}
	if W == 1 {
		// One warp rendezvouses with itself; skip the machinery.
		w := bc.warps[0]
		ls.kern(w)
		sh.stats.Add(w.stats)
		return w.cycles + bc.sharedSerial(d)
	}
	d.ensureCoros(W)
	d.teamBlock = bc
	bc.teamLive = W
	bc.arrivedN = 0
	bc.syncSeq = 0
	bc.syncMax = 0
	bc.aborted = false
	bc.panicked.reset()
	if d.runTeam(bc) {
		d.clearCoros(bc)
		bc.panicked.rethrow()
	}
	var maxCycles int64
	for wi := 0; wi < W; wi++ {
		w := bc.warps[wi]
		sh.stats.Add(w.stats)
		if w.cycles > maxCycles {
			maxCycles = w.cycles
		}
	}
	return maxCycles + bc.sharedSerial(d)
}

// warpCoro is one persistent warp coroutine: a pull iterator whose
// body executes the current block's warp of its slot, suspending at
// every Sync it waits out and once more between blocks. detached means
// the coroutine is suspended at a yield and may be resumed with next;
// the warps currently holding or forwarding control are not (they are
// blocked inside their own next calls and resume when their target
// suspends). A zero warpCoro means the slot needs (re)creation — after
// an aborted block, or before the slot's first barrier block.
type warpCoro struct {
	next     func() (struct{}, bool)
	stop     func()
	detached bool
}

// ensureCoros makes slots [0, n) runnable.
func (d *Device) ensureCoros(n int) {
	for len(d.coros) < n {
		d.coros = append(d.coros, warpCoro{})
	}
	for wi := 0; wi < n; wi++ {
		if d.coros[wi].next == nil {
			d.coros[wi] = d.makeCoro(wi)
		}
	}
}

func (d *Device) makeCoro(wi int) warpCoro {
	next, stop := iter.Pull(func(yield func(struct{}) bool) {
		for {
			d.coros[wi].detached = false
			b := d.teamBlock
			w := b.warps[wi]
			w.yield = yield
			d.ls.kern(w)
			w.done = true
			b.teamLive--
			if b.arrivedN > 0 && !b.aborted {
				// Siblings are parked at a barrier this warp will never
				// reach: real hardware would hang.
				b.panicked.record("gpusim: Sync divergence: a sibling warp retired without reaching the barrier")
				b.aborted = true
			}
			// Block boundary: suspend until the next barrier block (or
			// exit when stopped).
			d.coros[wi].detached = true
			if !yield(struct{}{}) {
				return
			}
		}
	})
	return warpCoro{next: next, stop: stop, detached: true}
}

// runTeam drives the block until every warp retires. Control moves
// between the warps themselves at Sync points; the manager only injects
// it, and regains it when the whole control chain has suspended — at
// which point every unfinished warp is detached, so resuming the first
// one is always legal. Returns true when the block aborted (a kernel
// panic, a guard abort, or barrier divergence, recorded in
// bc.panicked); surviving coroutines are then still suspended
// mid-kernel and must be killed with clearCoros. Panics inside a warp
// propagate through the chain of pending next calls (killing each
// forwarding coroutine) and surface here — like a CUDA error reported
// on the host thread.
func (d *Device) runTeam(bc *block) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			bc.panicked.record(r)
			aborted = true
		}
	}()
	for {
		live := -1
		for wi := 0; wi < bc.teamN; wi++ {
			if !bc.warps[wi].done {
				live = wi
				break
			}
		}
		if live < 0 {
			return false
		}
		if bc.aborted {
			return true
		}
		d.coros[live].next()
	}
}

// clearCoros kills every team coroutine of an aborted block and empties
// the slots (ensureCoros recreates them for the next barrier block).
// Dead coroutines (the ones a panic unwound) make stop a no-op; live
// detached ones see their pending yield return false, so Sync panics
// barrierAborted inside the coroutine and the panic surfaces here —
// recorded, not rethrown, so the original cause (a guard abort in
// particular) keeps priority in panicked.rethrow.
func (d *Device) clearCoros(bc *block) {
	for wi := 0; wi < bc.teamN; wi++ {
		c := d.coros[wi]
		if c.stop != nil {
			func() {
				defer func() {
					if r := recover(); r != nil {
						bc.panicked.record(r)
					}
				}()
				c.stop()
			}()
		}
		d.coros[wi] = warpCoro{}
	}
}

// completeSync finishes one rendezvous: the barrier releases when the
// slowest warp arrives, so every live warp resumes at that warp's cycle
// count.
func (b *block) completeSync() {
	for wi := 0; wi < b.teamN; wi++ {
		if w := b.warps[wi]; !w.done {
			w.cycles = b.syncMax
			w.arrived = false
		}
	}
	b.syncMax = 0
	b.arrivedN = 0
	b.syncSeq++
}

// nextPending returns the next warp (cyclically after self) that still
// has to arrive at the pending rendezvous and can be resumed, or -1
// when every such warp is busy forwarding control (the caller then
// parks and lets the chain unwind).
func (b *block) nextPending(self int) int {
	for i := 1; i < b.teamN; i++ {
		wi := (self + i) % b.teamN
		if b.d.coros[wi].detached && !b.warps[wi].done && !b.warps[wi].arrived {
			return wi
		}
	}
	return -1
}

// panicSlot collects concurrent worker panics and rethrows one, with
// guard aborts preferred: when a canceled warp's abort breaks the block
// barrier, its sibling warps panic too ("barrier aborted"), and whichever
// lands first would otherwise decide whether the run is filed as a
// cancellation or a crash.
type panicSlot struct {
	mu           sync.Mutex
	abort, other any
}

func (s *panicSlot) record(r any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := guard.AbortError(r); ok {
		if s.abort == nil {
			s.abort = r
		}
	} else if s.other == nil {
		s.other = r
	}
}

func (s *panicSlot) rethrow() {
	s.mu.Lock()
	abort, other := s.abort, s.other
	s.mu.Unlock()
	if abort != nil {
		panic(abort)
	}
	if other != nil {
		panic(other)
	}
}

// reset clears the slot for reuse. Call only from the owning goroutine
// at a point ordered after any recording workers have joined.
func (s *panicSlot) reset() { s.abort, s.other = nil, nil }

// sharedSerial is the block-critical-path cost of its shared atomics.
func (b *block) sharedSerial(d *Device) int64 {
	n := b.sharedAtomicsN
	if n <= 1 {
		return 0
	}
	return (n - 1) * d.Prof.SharedSerialCost
}

// sharedSlab is one reusable shared-memory array, re-registered (and
// re-zeroed) per block via the generation counter.
type sharedSlab struct {
	gen  uint64
	live byte // 0 none, 'i' int64, 'u' uint32
	i64  []int64
	u32  []uint32
}

// block is the reusable per-block state: the warps, shared memory, and
// the barrier-team bookkeeping. One lives in each shard and is recycled
// for every block the shard runs. All fields are plain: exactly one
// warp executes at any time on the sharded path.
type block struct {
	d  *Device
	sh *shard

	mu        sync.Mutex
	shared    []sharedSlab
	sharedGen uint64
	// sharedAtomicsN counts the block's shared-memory atomic operations;
	// they serialize on the block's critical path (SharedSerialCost).
	sharedAtomicsN int64

	warps    []*Warp
	panicked panicSlot

	// teamN is the warp count of a barrier block, 0 outside one (Sync
	// uses it to reject launches missing NeedsBarrier). teamLive counts
	// the warps that have not retired. arrivedN, syncMax, and syncSeq
	// are the pending rendezvous: how many live warps have arrived, the
	// cycle maximum so far, and how many rendezvous have completed (a
	// warp arriving at rendezvous syncSeq+1 waits until syncSeq passes
	// it). aborted stops the block after a divergence.
	teamN    int
	teamLive int
	arrivedN int
	syncMax  int64
	syncSeq  int64
	aborted  bool

	// legacyBar is set only on the shared-atomic baseline path, which
	// allocates a fresh block (and cond-based barrier) per block.
	legacyBar *condBarrier
}

// begin recycles the block context for the next block: shared slabs
// age out via the generation bump and the warp ring grows to the block
// shape on first use.
func (b *block) begin(d *Device, sh *shard, warpsPerBlock int, cfg LaunchCfg) {
	if b.d == nil {
		b.d, b.sh = d, sh
	}
	for len(b.warps) < warpsPerBlock {
		b.warps = append(b.warps, &Warp{d: d, blk: b, sh: sh, WarpInBlock: len(b.warps)})
	}
	for wi := 0; wi < warpsPerBlock; wi++ {
		b.warps[wi].BlockDim = cfg.ThreadsPerBlock
		b.warps[wi].GridDim = cfg.Blocks
	}
	b.sharedGen++
	b.sharedAtomicsN = 0
	b.teamN = 0
}

const barrierAborted = "gpusim: barrier aborted by a panicking warp"

// GridSize returns the block count needed for n items with the given
// items-per-block coverage: itemsPerBlock is ThreadsPerBlock for
// thread-granularity kernels, warps-per-block for warp granularity, and
// 1 for block granularity.
func GridSize(n int64, itemsPerBlock int64) int64 {
	if n <= 0 {
		return 1
	}
	return (n + itemsPerBlock - 1) / itemsPerBlock
}

// PersistentGrid returns the grid size of the persistent style: enough
// blocks to fill every SM at the profile's residency (§2.7).
func (d *Device) PersistentGrid() int64 {
	return int64(d.Prof.SMs * d.Prof.ResidentBlocks)
}
