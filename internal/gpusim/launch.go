package gpusim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"indigo/internal/guard"
	"indigo/internal/par"
)

// Kernel is a device kernel, written per warp: the function is invoked
// once for every warp of the grid and iterates its lanes explicitly.
type Kernel func(w *Warp)

// LaunchCfg shapes one kernel launch.
type LaunchCfg struct {
	// Blocks is the grid size.
	Blocks int64
	// ThreadsPerBlock must be a multiple of 32; 0 means 256.
	ThreadsPerBlock int
	// NeedsBarrier must be set when the kernel calls Warp.Sync. Barrier
	// kernels run their block's warps concurrently; others run them
	// sequentially (cheaper to simulate).
	NeedsBarrier bool
}

// Stats reports one launch's simulated cost and event counts.
type Stats struct {
	// Cycles is the kernel's duration: the busiest SM's cycle count
	// plus launch overhead.
	Cycles int64
	// Instructions counts issued warp instructions.
	Instructions int64
	// Transactions counts global-memory transactions.
	Transactions int64
	// L2Hits / L2Misses classify the transactions.
	L2Hits   int64
	L2Misses int64
	// Atomics counts atomic operations (classic and CudaAtomic).
	Atomics int64
	// AtomicSerial is the cycles added to the critical path by
	// same-address atomic serialization.
	AtomicSerial int64
}

// Add accumulates other into s (for multi-launch algorithms).
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.Instructions += other.Instructions
	s.Transactions += other.Transactions
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.Atomics += other.Atomics
	s.AtomicSerial += other.AtomicSerial
}

// Seconds converts the simulated cycles to seconds on profile p.
func (s Stats) Seconds(p Profile) float64 {
	return float64(s.Cycles) / (p.ClockGHz * 1e9)
}

// Launch executes the kernel over the grid and returns its simulated
// cost. Execution is functional: all global-memory operations use host
// atomics, so results are exact; host parallelism only affects wall
// time, not simulated time beyond cache-model perturbation.
func (d *Device) Launch(cfg LaunchCfg, k Kernel) Stats {
	// One poll per launch checkpoints every outer round of the
	// multi-launch algorithms; warps poll again inside the kernel every
	// guardPollCycles (see Warp.Op).
	d.gd.Poll()
	if cfg.ThreadsPerBlock == 0 {
		cfg.ThreadsPerBlock = 256
	}
	if cfg.ThreadsPerBlock%WarpSize != 0 || cfg.ThreadsPerBlock <= 0 || cfg.ThreadsPerBlock > 1024 {
		panic(fmt.Sprintf("gpusim.Launch: bad ThreadsPerBlock %d", cfg.ThreadsPerBlock))
	}
	if cfg.Blocks <= 0 {
		panic(fmt.Sprintf("gpusim.Launch: bad grid size %d", cfg.Blocks))
	}
	warpsPerBlock := cfg.ThreadsPerBlock / WarpSize

	smCycles := make([]int64, d.Prof.SMs)
	var smMu sync.Mutex
	var total Stats

	var nextBlock atomic.Int64
	var panicked panicSlot
	workers := runtime.GOMAXPROCS(0)
	if int64(workers) > cfg.Blocks {
		workers = int(cfg.Blocks)
	}
	// One Static iteration per host worker: the fan-out rides the par
	// worker-pool runtime instead of spawning goroutines per launch.
	par.ForTID(workers, int64(workers), par.Static, func(_ int, _ int64) {
		// Kernel panics surface on the launching goroutine, like a
		// CUDA error on the host thread.
		defer func() {
			if r := recover(); r != nil {
				panicked.record(r)
				nextBlock.Store(cfg.Blocks) // stop other workers
			}
		}()
		var local Stats
		localSM := make([]int64, d.Prof.SMs)
		for {
			bi := nextBlock.Add(1) - 1
			if bi >= cfg.Blocks {
				break
			}
			blockCycles := d.runBlock(cfg, k, bi, warpsPerBlock, &local)
			localSM[bi%int64(d.Prof.SMs)] += blockCycles + d.Prof.BlockOverhead
		}
		smMu.Lock()
		total.Add(local)
		for i, c := range localSM {
			smCycles[i] += c
		}
		smMu.Unlock()
	})
	panicked.rethrow()

	var maxSM int64
	for _, c := range smCycles {
		if c > maxSM {
			maxSM = c
		}
	}
	// Same-address atomics serialize at the L2 atomic unit: the busiest
	// address's queue is a lower bound on the kernel's duration no
	// matter how many SMs are working.
	serial := d.drainAtomics() * d.Prof.AtomicSerialCost
	total.AtomicSerial = serial
	total.Cycles = maxSM + serial + d.Prof.LaunchOverhead
	return total
}

// runBlock executes one block's warps and returns the block's cycle
// count (the slowest warp).
func (d *Device) runBlock(cfg LaunchCfg, k Kernel, blockIdx int64, warpsPerBlock int, agg *Stats) int64 {
	blk := &block{shared: make(map[int]any)}
	warps := make([]*Warp, warpsPerBlock)
	for wi := range warps {
		warps[wi] = &Warp{
			d:           d,
			blk:         blk,
			WarpInBlock: wi,
			BlockIdx:    blockIdx,
			BlockDim:    cfg.ThreadsPerBlock,
			GridDim:     cfg.Blocks,
		}
	}
	if !cfg.NeedsBarrier {
		var maxCycles int64
		for _, w := range warps {
			k(w)
			agg.Add(w.stats)
			if w.cycles > maxCycles {
				maxCycles = w.cycles
			}
		}
		return maxCycles + blk.sharedSerial(d)
	}
	// Barrier kernels: warps run concurrently and rendezvous in Sync, so
	// each needs its own concurrently scheduled worker — ForConcurrent
	// guarantees that; an elastic For could run two warps on one
	// goroutine and deadlock at the barrier.
	blk.barrier = newBarrier(warpsPerBlock)
	var mu sync.Mutex
	var maxCycles int64
	var panicked panicSlot
	// The fan-out itself stays unguarded on purpose: cancellation must
	// reach barrier kernels through the in-body Op polls below, whose
	// recover breaks the block barrier. A region-entry abort would skip a
	// warp's body without waking its rendezvoused siblings.
	par.ForConcurrent(warpsPerBlock, func(tid int) {
		w := warps[tid]
		defer func() {
			if r := recover(); r != nil {
				panicked.record(r)
				blk.barrier.abort()
			}
		}()
		k(w)
		mu.Lock()
		agg.Add(w.stats)
		if w.cycles > maxCycles {
			maxCycles = w.cycles
		}
		mu.Unlock()
	})
	panicked.rethrow()
	return maxCycles + blk.sharedSerial(d)
}

// panicSlot collects concurrent worker panics and rethrows one, with
// guard aborts preferred: when a canceled warp's abort breaks the block
// barrier, its sibling warps panic too ("barrier aborted"), and whichever
// lands first would otherwise decide whether the run is filed as a
// cancellation or a crash.
type panicSlot struct{ abort, other atomic.Value }

func (s *panicSlot) record(r any) {
	if _, ok := guard.AbortError(r); ok {
		s.abort.CompareAndSwap(nil, r)
	} else {
		s.other.CompareAndSwap(nil, r)
	}
}

func (s *panicSlot) rethrow() {
	if r := s.abort.Load(); r != nil {
		panic(r)
	}
	if r := s.other.Load(); r != nil {
		panic(r)
	}
}

// sharedSerial is the block-critical-path cost of its shared atomics.
func (b *block) sharedSerial(d *Device) int64 {
	n := b.sharedAtomics.Load()
	if n <= 1 {
		return 0
	}
	return (n - 1) * d.Prof.SharedSerialCost
}

// block is the per-block state: shared memory and the barrier.
type block struct {
	mu      sync.Mutex
	shared  map[int]any
	barrier *barrier
	// sharedAtomics counts the block's shared-memory atomic operations;
	// they serialize on the block's critical path (SharedSerialCost).
	sharedAtomics atomic.Int64
}

// barrier synchronizes a block's warps and aligns their cycle counters
// to the slowest participant, like __syncthreads.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    int
	maxCyc int64
	broken bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants arrive and returns the maximum
// cycle count among them.
func (b *barrier) wait(cycles int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic("gpusim: barrier aborted by a panicking warp")
	}
	if cycles > b.maxCyc {
		b.maxCyc = cycles
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.maxCyc
	}
	gen := b.gen
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic("gpusim: barrier aborted by a panicking warp")
	}
	return b.maxCyc
}

// abort releases all waiters after a warp panicked, so the block does
// not deadlock; released waiters panic in turn.
func (b *barrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// GridSize returns the block count needed for n items with the given
// items-per-block coverage: itemsPerBlock is ThreadsPerBlock for
// thread-granularity kernels, warps-per-block for warp granularity, and
// 1 for block granularity.
func GridSize(n int64, itemsPerBlock int64) int64 {
	if n <= 0 {
		return 1
	}
	return (n + itemsPerBlock - 1) / itemsPerBlock
}

// PersistentGrid returns the grid size of the persistent style: enough
// blocks to fill every SM at the profile's residency (§2.7).
func (d *Device) PersistentGrid() int64 {
	return int64(d.Prof.SMs * d.Prof.ResidentBlocks)
}
