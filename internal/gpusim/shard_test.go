package gpusim

import "testing"

// TestTransactionsEmptyRange pins the hi <= lo guard: the old
// (hi-1)/segBytes bound underflowed for hi == 0 and produced a huge
// transaction count for an empty access.
func TestTransactionsEmptyRange(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		want   int64
	}{
		{0, 0, 0},
		{5, 5, 0},
		{8, 4, 0},
		{segBytes, 0, 0},
		{0, 1, 1},
		{0, segBytes, 1},
		{0, segBytes + 1, 2},
		{segBytes - 1, segBytes + 1, 2},
	}
	for _, tc := range cases {
		if got := transactions(tc.lo, tc.hi); got != tc.want {
			t.Errorf("transactions(%d, %d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

// TestFlushL2SkipsEmptyShards: flushing a device whose tag shards hold
// nothing must not burn epochs; flushing after a launch bumps exactly
// the shards that cached something, and a second flush is again free.
func TestFlushL2SkipsEmptyShards(t *testing.T) {
	d := testDevice()
	epochs := func() []uint64 {
		out := make([]uint64, len(d.shards))
		for i := range d.shards {
			out[i] = d.shards[i].view.epoch
		}
		return out
	}
	before := epochs()
	d.FlushL2()
	for i, e := range epochs() {
		if e != before[i] {
			t.Fatalf("shard %d: flush of an empty device bumped epoch %d -> %d", i, before[i], e)
		}
	}

	n := int64(1 << 14)
	a := d.AllocI32(n)
	d.Launch(LaunchCfg{Blocks: GridSize(n, 256)}, func(w *Warp) {
		base := w.Gidx(0)
		if base < n {
			w.CoalLdI32(a, base, int(min64(WarpSize, n-base)))
		}
	})
	dirtyBefore := 0
	for i := range d.shards {
		if d.shards[i].view.dirty {
			dirtyBefore++
		}
	}
	if dirtyBefore == 0 {
		t.Fatal("launch left no dirty tag shards; test is vacuous")
	}
	before = epochs()
	d.FlushL2()
	bumped := 0
	for i, e := range epochs() {
		if e != before[i] {
			bumped++
		} else if d.shards[i].view.dirty {
			t.Fatalf("shard %d: still dirty after flush", i)
		}
	}
	if bumped != dirtyBefore {
		t.Fatalf("flush bumped %d shard epochs, want %d (the dirty ones)", bumped, dirtyBefore)
	}
	before = epochs()
	d.FlushL2()
	for i, e := range epochs() {
		if e != before[i] {
			t.Fatalf("shard %d: second flush bumped epoch again", i)
		}
	}
}

// TestWarmedLaunchNoAlloc is the perf tentpole's allocation half: once
// a device has run a kernel shape, repeating the launch must not touch
// the heap — neither on the sequential path nor on the barrier path
// (warps, shared slabs and the block context are all reused).
func TestWarmedLaunchNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector allocates per instrumented access")
	}
	d := testDevice()
	n := int64(1 << 14)
	a := d.AllocI32(n)
	out := d.AllocI64(1)

	// The kernel closures are built once, mirroring how the algorithm
	// implementations hoist theirs out of the launch loop; a fresh
	// closure literal per call would charge its own allocation to the
	// caller, not to Launch.
	seqKern := func(w *Warp) {
		base := w.Gidx(0)
		if base < n {
			w.CoalLdI32(a, base, int(min64(WarpSize, n-base)))
		}
	}
	barKern := func(w *Warp) {
		ctr := w.SharedI64(0, 1)
		for l := 0; l < WarpSize; l++ {
			if i := w.Gidx(l); i < n {
				w.BlockAtomicAddI64(ctr, 0, 1)
			}
		}
		w.Sync()
		if w.WarpInBlock == 0 {
			w.AtomicAddI64(out, 0, w.SharedLdI64(ctr, 0))
		}
	}
	seqCfg := LaunchCfg{Blocks: GridSize(n, 256)}
	barCfg := LaunchCfg{Blocks: GridSize(n, 256), NeedsBarrier: true}
	seq := func() { d.Launch(seqCfg, seqKern) }
	bar := func() { d.Launch(barCfg, barKern) }
	for i := 0; i < 3; i++ {
		seq()
		bar()
	}
	if avg := testing.AllocsPerRun(5, seq); avg != 0 {
		t.Errorf("sequential path: %.1f allocs per warmed launch, want 0", avg)
	}
	if avg := testing.AllocsPerRun(5, bar); avg != 0 {
		t.Errorf("barrier path: %.1f allocs per warmed launch, want 0", avg)
	}
}
