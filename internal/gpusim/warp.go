package gpusim

import (
	"math"
	"sync/atomic"
)

// Warp is the execution context handed to kernels: one 32-lane warp,
// with its position in the block and grid, its cycle counter, and the
// device operation set. All global-memory operations are performed with
// host atomics, so the functional results are exact even for kernels
// that intentionally race.
//
// Cost accounting is contention-free: warps execute one at a time (the
// sequential block path runs them straight through; barrier blocks
// interleave them at Sync points as coroutines), so every charge is
// a plain operation against the owning shard and simulated Stats never
// depend on host interleaving.
type Warp struct {
	d           *Device
	blk         *block
	sh          *shard
	WarpInBlock int
	BlockIdx    int64
	BlockDim    int
	GridDim     int64

	cycles int64
	stats  Stats
	// nextPoll is the cycle count at which Op next polls the device's
	// guard token. Every simulated operation funnels through Op, so this
	// bounds how much simulated work a canceled kernel can still do
	// without adding a branch to each memory-op helper.
	nextPoll int64
	// yield suspends this warp's coroutine (set per block in barrier
	// launches; see launch.go). done marks the warp retired from the
	// current block's kernel; arrived marks it waiting at the pending
	// rendezvous.
	yield   func(struct{}) bool
	done    bool
	arrived bool

	// view is the L2 tag view this warp charges (its shard's).
	view *tagView
	// lt routes cost accounting through the shared-atomic baseline
	// (bench comparisons only; see legacy.go).
	lt *legacyState
}

// reset recycles the warp for the next block.
func (w *Warp) reset(blockIdx int64, view *tagView) {
	w.BlockIdx = blockIdx
	w.cycles = 0
	w.stats = Stats{}
	w.nextPoll = 0
	w.done = false
	w.arrived = false
	w.view = view
}

// Gidx returns the global thread index of the given lane, the paper's
// "gidx" (threadIdx.x + blockIdx.x * blockDim.x).
func (w *Warp) Gidx(lane int) int64 {
	return w.BlockIdx*int64(w.BlockDim) + int64(w.WarpInBlock*WarpSize+lane)
}

// GlobalWarp returns this warp's index within the grid.
func (w *Warp) GlobalWarp() int64 {
	return w.BlockIdx*int64(w.BlockDim/WarpSize) + int64(w.WarpInBlock)
}

// TotalThreads returns the grid's thread count (for grid-stride loops).
func (w *Warp) TotalThreads() int64 { return w.GridDim * int64(w.BlockDim) }

// TotalWarps returns the grid's warp count.
func (w *Warp) TotalWarps() int64 { return w.GridDim * int64(w.BlockDim/WarpSize) }

// Cycles returns the warp's current cycle count (for tests).
func (w *Warp) Cycles() int64 { return w.cycles }

// guardPollCycles is how many simulated cycles a warp runs between guard
// polls: frequent enough that a canceled multi-second kernel stops in
// microseconds of host time, rare enough to vanish in simulation cost.
// Polling is hoisted to these cycle-stride boundaries the same way
// internal/par amortizes its region polls.
const guardPollCycles = 1 << 16

// Op charges n warp instructions of plain ALU work.
func (w *Warp) Op(n int64) {
	w.cycles += n * w.d.Prof.Issue
	w.stats.Instructions += n
	if w.cycles >= w.nextPoll {
		w.nextPoll = w.cycles + guardPollCycles
		w.d.gd.Poll()
	}
}

// access charges one global-memory transaction for the segment holding
// addr against the warp's tag view.
func (w *Warp) access(addr uint64) {
	w.stats.Transactions++
	if w.lt != nil {
		w.chargeLegacy(w.lt.access(addr, w.d))
		return
	}
	if w.view.probe(addr / segBytes) {
		w.cycles += w.d.Prof.L2HitCost
		w.stats.L2Hits++
	} else {
		w.cycles += w.d.Prof.DRAMCost
		w.stats.L2Misses++
	}
}

// chargeLegacy classifies a baseline access cost (legacy path only).
func (w *Warp) chargeLegacy(cost int64) {
	w.cycles += cost
	if cost >= w.d.Prof.DRAMCost {
		w.stats.L2Misses++
	} else {
		w.stats.L2Hits++
	}
}

// --- Scalar (single-lane, uncoalesced) global memory operations. ---
//
// The sharded path is completely serialized (shards run in order on the
// launching goroutine, and a barrier block's warps take turns as
// coroutines), so functional reads-modify-writes and stores are plain —
// a locked CAS loop per simulated atomicAdd was the single largest cost
// in the reduction-style kernels. The legacy baseline really does run
// warps and blocks concurrently and keeps the host-atomic versions
// (selected by w.lt, which is only set on that path).

// LdI32 loads a[i] as one lane's uncoalesced access: a full transaction.
func (w *Warp) LdI32(a *I32, i int64) int32 {
	w.Op(1)
	w.access(a.addr(i))
	return atomic.LoadInt32(&a.data[i])
}

// StI32 stores a[i] = v as one lane's uncoalesced access.
func (w *Warp) StI32(a *I32, i int64, v int32) {
	w.Op(1)
	w.access(a.addr(i))
	if w.lt != nil {
		atomic.StoreInt32(&a.data[i], v)
		return
	}
	a.data[i] = v
}

// LdI64 loads a[i] (uncoalesced).
func (w *Warp) LdI64(a *I64, i int64) int64 {
	w.Op(1)
	w.access(a.addr(i))
	return atomic.LoadInt64(&a.data[i])
}

// StI64 stores a[i] = v (uncoalesced).
func (w *Warp) StI64(a *I64, i int64, v int64) {
	w.Op(1)
	w.access(a.addr(i))
	if w.lt != nil {
		atomic.StoreInt64(&a.data[i], v)
		return
	}
	a.data[i] = v
}

// LdF32 loads a[i] (uncoalesced).
func (w *Warp) LdF32(a *F32, i int64) float32 {
	w.Op(1)
	w.access(a.addr(i))
	return math.Float32frombits(atomic.LoadUint32(&a.data[i]))
}

// StF32 stores a[i] = v (uncoalesced).
func (w *Warp) StF32(a *F32, i int64, v float32) {
	w.Op(1)
	w.access(a.addr(i))
	if w.lt != nil {
		atomic.StoreUint32(&a.data[i], math.Float32bits(v))
		return
	}
	a.data[i] = math.Float32bits(v)
}

// --- Coalesced vector operations: the warp's lanes access the
// contiguous range [base, base+count), which coalesces into
// ceil(count*elemsize/128) transactions. ---

// coalCharge charges the transactions of a contiguous byte range in one
// batched segment-range walk: the tags still update per segment, but
// the cycle and stat accounting lands once for the whole range.
func (w *Warp) coalCharge(lo, hi uint64) {
	w.Op(1)
	n := transactions(lo, hi)
	if n == 0 {
		return
	}
	if w.lt != nil {
		// Baseline: per-segment shared-atomic accesses, as before.
		for seg := lo / segBytes; seg <= (hi-1)/segBytes; seg++ {
			w.stats.Transactions++
			w.chargeLegacy(w.lt.access(seg*segBytes, w.d))
		}
		return
	}
	var hits int64
	segHi := (hi - 1) / segBytes
	for seg := lo / segBytes; seg <= segHi; seg++ {
		if w.view.probe(seg) {
			hits++
		}
	}
	misses := n - hits
	w.cycles += hits*w.d.Prof.L2HitCost + misses*w.d.Prof.DRAMCost
	w.stats.Transactions += n
	w.stats.L2Hits += hits
	w.stats.L2Misses += misses
}

// CoalLdI32 loads a[base+lane] for lanes [0, count) in one coalesced
// access.
func (w *Warp) CoalLdI32(a *I32, base int64, count int) [WarpSize]int32 {
	var out [WarpSize]int32
	if count <= 0 {
		return out
	}
	w.coalCharge(a.addr(base), a.addr(base+int64(count)))
	for l := 0; l < count; l++ {
		out[l] = atomic.LoadInt32(&a.data[base+int64(l)])
	}
	return out
}

// CoalStI32 stores a[base+lane] = vals[lane] for lanes [0, count).
func (w *Warp) CoalStI32(a *I32, base int64, count int, vals *[WarpSize]int32) {
	if count <= 0 {
		return
	}
	w.coalCharge(a.addr(base), a.addr(base+int64(count)))
	if w.lt != nil {
		for l := 0; l < count; l++ {
			atomic.StoreInt32(&a.data[base+int64(l)], vals[l])
		}
		return
	}
	copy(a.data[base:base+int64(count)], vals[:count])
}

// CoalLdI64 loads a[base+lane] for lanes [0, count) in one coalesced
// access (two transactions per 32 lanes at 8 bytes each).
func (w *Warp) CoalLdI64(a *I64, base int64, count int) [WarpSize]int64 {
	var out [WarpSize]int64
	if count <= 0 {
		return out
	}
	w.coalCharge(a.addr(base), a.addr(base+int64(count)))
	for l := 0; l < count; l++ {
		out[l] = atomic.LoadInt64(&a.data[base+int64(l)])
	}
	return out
}

// CoalLdF32 loads a[base+lane] for lanes [0, count).
func (w *Warp) CoalLdF32(a *F32, base int64, count int) [WarpSize]float32 {
	var out [WarpSize]float32
	if count <= 0 {
		return out
	}
	w.coalCharge(a.addr(base), a.addr(base+int64(count)))
	for l := 0; l < count; l++ {
		out[l] = math.Float32frombits(atomic.LoadUint32(&a.data[base+int64(l)]))
	}
	return out
}

// CoalStF32 stores a[base+lane] = vals[lane] for lanes [0, count).
func (w *Warp) CoalStF32(a *F32, base int64, count int, vals *[WarpSize]float32) {
	if count <= 0 {
		return
	}
	w.coalCharge(a.addr(base), a.addr(base+int64(count)))
	if w.lt != nil {
		for l := 0; l < count; l++ {
			atomic.StoreUint32(&a.data[base+int64(l)], math.Float32bits(vals[l]))
		}
		return
	}
	for l := 0; l < count; l++ {
		a.data[base+int64(l)] = math.Float32bits(vals[l])
	}
}

// --- Classic atomics: device scope, relaxed ordering (§2.9). ---

// rmwMinI32 / rmwMaxI32 / rmwAddI32 / rmwAddI64 / rmwAddF32 apply the
// simulated RMW with the path-appropriate host memory order: plain on
// the serialized sharded path, locked on the concurrent legacy one.

func (w *Warp) rmwMinI32(p *int32, v int32) int32 {
	if w.lt != nil {
		return casMinI32(p, v)
	}
	old := *p
	if v < old {
		*p = v
	}
	return old
}

func (w *Warp) rmwMaxI32(p *int32, v int32) int32 {
	if w.lt != nil {
		return casMaxI32(p, v)
	}
	old := *p
	if v > old {
		*p = v
	}
	return old
}

func (w *Warp) rmwAddI32(p *int32, v int32) int32 {
	if w.lt != nil {
		return atomic.AddInt32(p, v) - v
	}
	old := *p
	*p = old + v
	return old
}

func (w *Warp) rmwAddI64(p *int64, v int64) int64 {
	if w.lt != nil {
		return atomic.AddInt64(p, v) - v
	}
	old := *p
	*p = old + v
	return old
}

func (w *Warp) rmwAddF32(p *uint32, v float32) {
	if w.lt != nil {
		casAddF32(p, v)
		return
	}
	*p = math.Float32bits(math.Float32frombits(*p) + v)
}

func (w *Warp) atomCharge(addr uint64) {
	w.Op(1)
	w.cycles += w.d.Prof.AtomicCost
	w.stats.Atomics++
	w.atomHit(addr, 1)
}

// AtomicMinI32 atomically lowers a[i] to v and returns the old value.
func (w *Warp) AtomicMinI32(a *I32, i int64, v int32) int32 {
	w.atomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwMinI32(&a.data[i], v)
}

// AtomicMaxI32 atomically raises a[i] to v and returns the old value.
func (w *Warp) AtomicMaxI32(a *I32, i int64, v int32) int32 {
	w.atomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwMaxI32(&a.data[i], v)
}

// AtomicAddI32 atomically adds v to a[i] and returns the old value.
func (w *Warp) AtomicAddI32(a *I32, i int64, v int32) int32 {
	w.atomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwAddI32(&a.data[i], v)
}

// AtomicAddI64 atomically adds v to a[i] and returns the old value.
func (w *Warp) AtomicAddI64(a *I64, i int64, v int64) int64 {
	w.atomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwAddI64(&a.data[i], v)
}

// AtomicAddF32 atomically adds v to a[i].
func (w *Warp) AtomicAddF32(a *F32, i int64, v float32) {
	w.atomCharge(a.addr(i))
	w.access(a.addr(i))
	w.rmwAddF32(&a.data[i], v)
}

// --- Default libcu++ CudaAtomics: system scope, seq_cst (§2.9). The
// factor-scaled cost applies to the RMW operations and to load()/
// store(), which is why codes that read and write shared data through
// cuda::atomic slow down so much more than ones that only atomicAdd. ---

func (w *Warp) cudaAtomCharge(addr uint64) {
	w.Op(1)
	w.cycles += w.d.Prof.AtomicCost * w.d.Prof.CudaAtomicFactor
	w.stats.Atomics++
	w.atomHit(addr, w.d.Prof.CudaAtomicFactor)
}

// CudaAtomicMinI32 is AtomicMinI32 through a default cuda::atomic.
func (w *Warp) CudaAtomicMinI32(a *I32, i int64, v int32) int32 {
	w.cudaAtomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwMinI32(&a.data[i], v)
}

// CudaAtomicMaxI32 is AtomicMaxI32 through a default cuda::atomic.
func (w *Warp) CudaAtomicMaxI32(a *I32, i int64, v int32) int32 {
	w.cudaAtomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwMaxI32(&a.data[i], v)
}

// CudaAtomicAddI32 is AtomicAddI32 through a default cuda::atomic.
func (w *Warp) CudaAtomicAddI32(a *I32, i int64, v int32) int32 {
	w.cudaAtomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwAddI32(&a.data[i], v)
}

// CudaAtomicAddI64 is AtomicAddI64 through a default cuda::atomic.
func (w *Warp) CudaAtomicAddI64(a *I64, i int64, v int64) int64 {
	w.cudaAtomCharge(a.addr(i))
	w.access(a.addr(i))
	return w.rmwAddI64(&a.data[i], v)
}

// CudaLdI32 is a cuda::atomic load() with default (seq_cst) ordering.
func (w *Warp) CudaLdI32(a *I32, i int64) int32 {
	w.cudaAtomCharge(a.addr(i))
	w.access(a.addr(i))
	return atomic.LoadInt32(&a.data[i])
}

// CudaStI32 is a cuda::atomic store() with default (seq_cst) ordering.
func (w *Warp) CudaStI32(a *I32, i int64, v int32) {
	w.cudaAtomCharge(a.addr(i))
	w.access(a.addr(i))
	atomic.StoreInt32(&a.data[i], v)
}

// --- Warp primitives. ---

// shuffleSteps is the log2(WarpSize) butterfly depth of a warp
// reduction.
const shuffleSteps = 5

// WarpReduceAddI64 sums the lanes' values with shuffle operations.
func (w *Warp) WarpReduceAddI64(vals *[WarpSize]int64) int64 {
	w.Op(shuffleSteps)
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// WarpReduceAddF32 sums the lanes' values with shuffle operations.
func (w *Warp) WarpReduceAddF32(vals *[WarpSize]float32) float32 {
	w.Op(shuffleSteps)
	var sum float32
	for _, v := range vals {
		sum += v
	}
	return sum
}

// WarpReduceMinI64 returns the lanes' minimum with shuffle operations.
func (w *Warp) WarpReduceMinI64(vals *[WarpSize]int64) int64 {
	w.Op(shuffleSteps)
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// DivergentRanges charges the lockstep cost of the thread-granularity
// inner loop: lanes own ranges [beg[l], end[l]) and the warp executes
// max-length steps (§2.8), then runs body per lane and element. Memory
// operations inside body charge themselves.
func (w *Warp) DivergentRanges(count int, beg, end *[WarpSize]int64, opsPerStep int64, body func(lane int, e int64)) {
	var maxLen int64
	for l := 0; l < count; l++ {
		if n := end[l] - beg[l]; n > maxLen {
			maxLen = n
		}
	}
	w.Op(maxLen * opsPerStep)
	for l := 0; l < count; l++ {
		for e := beg[l]; e < end[l]; e++ {
			body(l, e)
		}
	}
}

// --- Shared memory and block-scope operations. ---

// SharedI64 returns the block's shared int64 array registered under
// tag, allocating it on first use (and recycling the slab, zeroed, on
// every later block). Access costs are charged per call site by the
// block atomic helpers.
func (w *Warp) SharedI64(tag int, n int) []int64 {
	b := w.blk
	if w.lt != nil { // only the legacy baseline runs warps concurrently
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	for len(b.shared) <= tag {
		b.shared = append(b.shared, sharedSlab{})
	}
	s := &b.shared[tag]
	if s.gen == b.sharedGen {
		if s.live != 'i' {
			panic("gpusim: shared tag registered with a different element type")
		}
		return s.i64
	}
	s.gen = b.sharedGen
	s.live = 'i'
	if cap(s.i64) < n {
		s.i64 = make([]int64, n)
	} else {
		s.i64 = s.i64[:n]
		clear(s.i64)
	}
	return s.i64
}

// SharedU32 returns the block's shared uint32 array (float bits or
// plain words) registered under tag.
func (w *Warp) SharedU32(tag int, n int) []uint32 {
	b := w.blk
	if w.lt != nil { // only the legacy baseline runs warps concurrently
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	for len(b.shared) <= tag {
		b.shared = append(b.shared, sharedSlab{})
	}
	s := &b.shared[tag]
	if s.gen == b.sharedGen {
		if s.live != 'u' {
			panic("gpusim: shared tag registered with a different element type")
		}
		return s.u32
	}
	s.gen = b.sharedGen
	s.live = 'u'
	if cap(s.u32) < n {
		s.u32 = make([]uint32, n)
	} else {
		s.u32 = s.u32[:n]
		clear(s.u32)
	}
	return s.u32
}

// addSharedAtomic counts one shared-memory atomic on the block. Only
// the legacy baseline runs warps concurrently; the sharded paths are
// serialized, so the count is plain there.
func (w *Warp) addSharedAtomic() {
	if w.lt != nil {
		atomic.AddInt64(&w.blk.sharedAtomicsN, 1)
	} else {
		w.blk.sharedAtomicsN++
	}
}

// BlockAtomicAddI64 is an atomicAdd_block on shared memory: block
// scope, but an arbitrated RMW rather than a plain access (§2.10.1,
// Listing 10b).
func (w *Warp) BlockAtomicAddI64(s []int64, i int, v int64) int64 {
	w.Op(1)
	w.cycles += w.d.Prof.SharedAtomicCost
	w.addSharedAtomic()
	if w.lt != nil {
		return atomic.AddInt64(&s[i], v) - v
	}
	old := s[i]
	s[i] = old + v
	return old
}

// BlockAtomicAddF32 is an atomicAdd_block on shared float32 bits.
func (w *Warp) BlockAtomicAddF32(s []uint32, i int, v float32) {
	w.Op(1)
	w.cycles += w.d.Prof.SharedAtomicCost
	w.addSharedAtomic()
	if w.lt != nil {
		casAddF32(&s[i], v)
		return
	}
	s[i] = math.Float32bits(math.Float32frombits(s[i]) + v)
}

// SharedLdI64 reads shared memory (cheap, on-chip).
func (w *Warp) SharedLdI64(s []int64, i int) int64 {
	w.Op(1)
	w.cycles += w.d.Prof.SharedCost
	if w.lt != nil {
		return atomic.LoadInt64(&s[i])
	}
	return s[i]
}

// SharedLdF32 reads shared float32 bits.
func (w *Warp) SharedLdF32(s []uint32, i int) float32 {
	w.Op(1)
	w.cycles += w.d.Prof.SharedCost
	if w.lt != nil {
		return math.Float32frombits(atomic.LoadUint32(&s[i]))
	}
	return math.Float32frombits(s[i])
}

// StSharedF32 writes shared float32 bits.
func (w *Warp) StSharedF32(s []uint32, i int, v float32) {
	w.Op(1)
	w.cycles += w.d.Prof.SharedCost
	if w.lt != nil {
		atomic.StoreUint32(&s[i], math.Float32bits(v))
		return
	}
	s[i] = math.Float32bits(v)
}

// StSharedI64 writes shared memory.
func (w *Warp) StSharedI64(s []int64, i int, v int64) {
	w.Op(1)
	w.cycles += w.d.Prof.SharedCost
	if w.lt != nil {
		atomic.StoreInt64(&s[i], v)
		return
	}
	s[i] = v
}

// Sync is __syncthreads(): all warps of the block rendezvous and their
// cycle counters align to the slowest. The launch must set NeedsBarrier.
//
// On the coroutine team the rendezvous is a direct hand-off: the
// arriving warp resumes the next sibling that still has to arrive (or
// parks and lets the control chain unwind to one), and whichever warp
// arrives last completes the rendezvous and continues straight into the
// next phase. One coroutine switch per suspension, no manager
// round-trip.
func (w *Warp) Sync() {
	b := w.blk
	if b.legacyBar != nil {
		w.cycles += w.d.Prof.SyncCost
		w.cycles = b.legacyBar.wait(w.cycles)
		return
	}
	if b.teamN == 0 {
		panic("gpusim: Sync called in a launch without NeedsBarrier")
	}
	w.cycles += w.d.Prof.SyncCost
	if b.teamN == 1 {
		return
	}
	if w.cycles > b.syncMax {
		b.syncMax = w.cycles
	}
	w.arrived = true
	b.arrivedN++
	if b.arrivedN == b.teamLive {
		b.completeSync()
		return
	}
	seq := b.syncSeq + 1 // the rendezvous this warp is waiting out
	for b.syncSeq < seq {
		if b.aborted {
			panic(barrierAborted)
		}
		if v := b.nextPending(w.WarpInBlock); v >= 0 {
			w.d.coros[v].next()
		} else {
			w.park()
		}
	}
}

// park suspends the warp's coroutine until a sibling (or the manager)
// resumes it. A false yield means the block was stopped underneath us.
func (w *Warp) park() {
	d := w.d
	d.coros[w.WarpInBlock].detached = true
	ok := w.yield(struct{}{})
	d.coros[w.WarpInBlock].detached = false
	if !ok {
		panic(barrierAborted)
	}
}

// --- CAS helpers over the raw storage. ---

func casMinI32(p *int32, v int32) int32 {
	for {
		old := atomic.LoadInt32(p)
		if old <= v || atomic.CompareAndSwapInt32(p, old, v) {
			return old
		}
	}
}

func casMaxI32(p *int32, v int32) int32 {
	for {
		old := atomic.LoadInt32(p)
		if old >= v || atomic.CompareAndSwapInt32(p, old, v) {
			return old
		}
	}
}

func casAddF32(p *uint32, v float32) {
	for {
		old := atomic.LoadUint32(p)
		nv := math.Float32bits(math.Float32frombits(old) + v)
		if atomic.CompareAndSwapUint32(p, old, nv) {
			return
		}
	}
}
