// Package gpusim is the CUDA substitute of the reproduction: a
// functional SIMT GPU simulator. Kernels execute for real (results are
// bit-accurate and verified against the serial references) while the
// simulator accounts cycles for the mechanisms the paper's GPU findings
// hinge on:
//
//   - warps of 32 lanes with lockstep divergence cost (§2.8),
//   - global-memory coalescing (128-byte transactions per warp access),
//   - an L2 cache model,
//   - software-managed shared memory per block (§2.8/§2.10.1),
//   - atomics, with the default libcu++ CudaAtomic paying system-scope
//     seq_cst costs (§2.9) — including its load()/store() operations,
//   - block barriers and warp reduction primitives (§2.10.1),
//   - per-kernel launch overhead and block scheduling over SMs (§2.7).
//
// Two device profiles mirror the paper's RTX 3090 / Titan V pairing.
package gpusim

// WarpSize is the number of lanes per warp, as in CUDA.
const WarpSize = 32

// segBytes is the global-memory transaction (and L2 line) size.
const segBytes = 128

// Profile describes one simulated device: its shape and cycle costs.
// Costs are in core cycles; they encode relative magnitudes (ALU vs L2
// vs DRAM vs atomic RMW vs fenced system atomics), not any particular
// silicon's latencies.
type Profile struct {
	Name string
	// SMs is the number of streaming multiprocessors; blocks are
	// assigned round-robin and SMs run their blocks sequentially.
	SMs int
	// ResidentBlocks is how many blocks per SM the persistent style
	// launches (§2.7).
	ResidentBlocks int
	// ClockGHz converts cycles to seconds for throughput reporting.
	ClockGHz float64
	// L2Bytes is the capacity of the direct-mapped L2 cache model.
	L2Bytes int64

	// Issue is the cost of issuing one warp instruction.
	Issue int64
	// SharedCost is a shared-memory access (fast, on-chip).
	SharedCost int64
	// SharedAtomicCost is an atomicAdd_block on shared memory: pricier
	// than a plain shared access (bank arbitration + RMW), which is why
	// the block-add style cannot offset the global adds it saves
	// (§5.9's finding that block-add tends to be slowest).
	SharedAtomicCost int64
	// SharedSerialCost extends a block's critical path per shared-memory
	// atomic beyond the first: same-slot shared atomics from the block's
	// warps serialize at the bank, no matter how many warps run.
	SharedSerialCost int64
	// L2HitCost / DRAMCost are per-transaction global memory costs.
	L2HitCost int64
	DRAMCost  int64
	// AtomicCost is a classic device-scope relaxed atomic RMW.
	AtomicCost int64
	// AtomicSerialCost models L2 atomic-unit serialization: concurrent
	// atomics to the same address cannot overlap, so the kernel's
	// critical path grows by this many cycles per same-address atomic
	// beyond the first (the mechanism that separates global-add from
	// the block-add and reduction-add styles, §2.10.1).
	AtomicSerialCost int64
	// CudaAtomicFactor scales AtomicCost (and fenced load/store costs)
	// for default libcu++ atomics: seq_cst ordering at system scope.
	// The paper measured this gap at ~10x on the RTX 3090 and ~100x on
	// the Titan V (Fig. 1), which is exactly what these factors encode.
	CudaAtomicFactor int64
	// SyncCost is a __syncthreads() block barrier.
	SyncCost int64
	// BlockOverhead is charged per block for scheduling it onto an SM.
	BlockOverhead int64
	// LaunchOverhead is charged once per kernel launch (plus host-side
	// readback of the termination flag between iterations).
	LaunchOverhead int64
}

// RTXSim mirrors the RTX 3090 (System 2): more SMs, a faster clock, a
// bigger L2, and a modest CudaAtomic penalty.
func RTXSim() Profile {
	return Profile{
		Name:             "rtx-sim",
		SMs:              82,
		ResidentBlocks:   6,
		ClockGHz:         1.74,
		L2Bytes:          6 << 20,
		Issue:            4,
		SharedCost:       8,
		SharedAtomicCost: 28,
		SharedSerialCost: 16,
		L2HitCost:        40,
		DRAMCost:         220,
		AtomicCost:       60,
		AtomicSerialCost: 8,
		CudaAtomicFactor: 10,
		SyncCost:         30,
		BlockOverhead:    300,
		LaunchOverhead:   9000,
	}
}

// TitanSim mirrors the Titan V (System 1): slightly fewer SMs, a slower
// clock, a smaller L2, and the order-of-magnitude-worse default
// CudaAtomic behavior the paper observed on that part.
func TitanSim() Profile {
	return Profile{
		Name:             "titan-sim",
		SMs:              80,
		ResidentBlocks:   6,
		ClockGHz:         1.2,
		L2Bytes:          9 << 19, // 4.5 MB
		Issue:            4,
		SharedCost:       8,
		SharedAtomicCost: 30,
		SharedSerialCost: 18,
		L2HitCost:        44,
		DRAMCost:         260,
		AtomicCost:       66,
		AtomicSerialCost: 10,
		CudaAtomicFactor: 100,
		SyncCost:         30,
		BlockOverhead:    300,
		LaunchOverhead:   8000,
	}
}

// Profiles returns the two study devices in report order.
func Profiles() []Profile { return []Profile{RTXSim(), TitanSim()} }
