package gpusim

import (
	"fmt"
	"math"
	"sync/atomic"

	"indigo/internal/guard"
)

// Device is one simulated GPU: a profile, a fake global address space
// for coalescing/caching, and the L2 tag store. A Device may run many
// kernels; allocate arrays once and launch repeatedly.
type Device struct {
	Prof Profile

	nextAddr uint64
	l2       []atomic.Uint64 // direct-mapped segment tags; tag 0 = empty
	l2Mask   uint64
	// atomTable counts same-address atomic pressure per launch (hashed,
	// collisions merge conservatively); the busiest address's count
	// extends the kernel's critical path by AtomicSerialCost each.
	atomTable []atomic.Int64
	// gd, when non-nil, makes kernels cooperatively cancelable: Launch
	// polls it per launch (which checkpoints every outer round of the
	// multi-launch algorithms) and each warp polls it every
	// guardPollCycles simulated cycles inside a kernel.
	gd *guard.Token
}

// SetGuard installs (or, with nil, removes) the guard token subsequent
// launches run under. Call it from the launching goroutine before
// Launch; the launch's fan-out orders the write for the warp runners.
func (d *Device) SetGuard(gd *guard.Token) { d.gd = gd }

// New creates a device with the given profile.
func New(p Profile) *Device {
	segs := uint64(p.L2Bytes) / segBytes
	// Round down to a power of two for cheap indexing.
	for segs&(segs-1) != 0 {
		segs &= segs - 1
	}
	if segs == 0 {
		segs = 1
	}
	d := &Device{Prof: p, nextAddr: segBytes}
	d.l2 = make([]atomic.Uint64, segs)
	d.l2Mask = segs - 1
	d.atomTable = make([]atomic.Int64, 1<<12)
	return d
}

// atomHit records weight units of atomic pressure on addr (CudaAtomics
// weigh CudaAtomicFactor because their seq_cst system-scope RMWs hold
// the L2 atomic unit far longer).
func (d *Device) atomHit(addr uint64, weight int64) {
	h := addr * 0x9e3779b97f4a7c15 >> 52 // top 12 bits
	d.atomTable[h].Add(weight)
}

// drainAtomics returns the launch's maximum same-address atomic
// pressure and resets the table.
func (d *Device) drainAtomics() int64 {
	var max int64
	for i := range d.atomTable {
		if c := d.atomTable[i].Load(); c != 0 {
			if c > max {
				max = c
			}
			d.atomTable[i].Store(0)
		}
	}
	if max > 0 {
		max-- // the first atomic is already charged in-line
	}
	return max
}

// FlushL2 invalidates the cache model (used between independent runs so
// timings do not leak across experiments).
func (d *Device) FlushL2() {
	for i := range d.l2 {
		d.l2[i].Store(0)
	}
}

// access charges one global-memory transaction for the segment holding
// addr and returns its cycle cost. The tag store is updated with atomic
// operations; cross-block races just perturb hit rates, as on hardware.
func (d *Device) access(addr uint64) int64 {
	seg := addr / segBytes
	slot := &d.l2[seg&d.l2Mask]
	if slot.Load() == seg {
		return d.Prof.L2HitCost
	}
	slot.Store(seg)
	return d.Prof.DRAMCost
}

// transactions charges one transaction per distinct segment among the
// given addresses (the coalescing rule) and returns the total cost.
// Addresses of one warp access are contiguous in our vector ops, so a
// tiny fixed-size scan suffices.
func (d *Device) transactions(lo, hi uint64) int64 {
	var cost int64
	for seg := lo / segBytes; seg <= (hi-1)/segBytes; seg++ {
		cost += d.access(seg * segBytes)
	}
	return cost
}

func (d *Device) alloc(bytes int64) uint64 {
	base := d.nextAddr
	d.nextAddr += uint64((bytes + segBytes - 1) / segBytes * segBytes)
	return base
}

// I32 is a device array of int32.
type I32 struct {
	base uint64
	data []int32
}

// AllocI32 allocates a zeroed device int32 array.
func (d *Device) AllocI32(n int64) *I32 {
	return &I32{base: d.alloc(n * 4), data: make([]int32, n)}
}

// Len returns the element count.
func (a *I32) Len() int64 { return int64(len(a.data)) }

// Host returns the backing storage for host-side initialization and
// result readback (the cudaMemcpy analog). Host access during a running
// kernel is undefined, as on hardware.
func (a *I32) Host() []int32 { return a.data }

func (a *I32) addr(i int64) uint64 { return a.base + uint64(i)*4 }

// SwapI32 exchanges two device arrays (the host-side pointer swap used
// by double-buffered kernels).
func SwapI32(a, b *I32) {
	a.base, b.base = b.base, a.base
	a.data, b.data = b.data, a.data
}

// UploadI32 allocates a device array holding a copy of src.
func (d *Device) UploadI32(src []int32) *I32 {
	a := d.AllocI32(int64(len(src)))
	copy(a.data, src)
	return a
}

// I64 is a device array of int64 (used for CSR row offsets and count
// accumulators).
type I64 struct {
	base uint64
	data []int64
}

// AllocI64 allocates a zeroed device int64 array.
func (d *Device) AllocI64(n int64) *I64 {
	return &I64{base: d.alloc(n * 8), data: make([]int64, n)}
}

// Len returns the element count.
func (a *I64) Len() int64 { return int64(len(a.data)) }

// Host returns the backing storage (see I32.Host).
func (a *I64) Host() []int64 { return a.data }

func (a *I64) addr(i int64) uint64 { return a.base + uint64(i)*8 }

// UploadI64 allocates a device array holding a copy of src.
func (d *Device) UploadI64(src []int64) *I64 {
	a := d.AllocI64(int64(len(src)))
	copy(a.data, src)
	return a
}

// F32 is a device array of float32, stored as bits so all accesses can
// be atomic.
type F32 struct {
	base uint64
	data []uint32
}

// AllocF32 allocates a zeroed device float32 array.
func (d *Device) AllocF32(n int64) *F32 {
	return &F32{base: d.alloc(n * 4), data: make([]uint32, n)}
}

// Len returns the element count.
func (a *F32) Len() int64 { return int64(len(a.data)) }

// HostGet / HostSet access one element from the host.
func (a *F32) HostGet(i int64) float32    { return math.Float32frombits(a.data[i]) }
func (a *F32) HostSet(i int64, v float32) { a.data[i] = math.Float32bits(v) }

// HostSlice copies the array to a new host slice.
func (a *F32) HostSlice() []float32 {
	out := make([]float32, len(a.data))
	for i := range a.data {
		out[i] = math.Float32frombits(a.data[i])
	}
	return out
}

func (a *F32) addr(i int64) uint64 { return a.base + uint64(i)*4 }

// String identifies the device in reports.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%d SMs, %.2f GHz)", d.Prof.Name, d.Prof.SMs, d.Prof.ClockGHz)
}
