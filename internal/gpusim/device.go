package gpusim

import (
	"fmt"
	"math"

	"indigo/internal/guard"
	"indigo/internal/trace"
)

// atomSlots is the size of the hashed same-address atomic-pressure
// table (collisions merge conservatively, as before).
const atomSlots = 1 << 12

// Tag entries pack (epoch << epochShift) | segment so a whole tag view
// invalidates with one epoch bump: entries written under an older epoch
// simply stop matching. 24 epoch bits leave 40 segment bits — 128 TiB
// of simulated address space — and the epoch wraps by falling back to a
// real clear, so a false hit is impossible.
const (
	epochBits  = 24
	epochShift = 64 - epochBits
	segMask    = 1<<epochShift - 1
	epochMax   = 1<<epochBits - 1
)

// tagView is one private direct-mapped L2 tag array: the deterministic
// slice of the L2 owned by one SM, persisting across blocks and
// launches. Exactly one warp executes against a view at any time (the
// sequential block path and the coroutine barrier path both serialize
// warps), so probes are plain loads and stores.
type tagView struct {
	tags  []uint64
	mask  uint64
	epoch uint64
	// dirty means at least one tag was written in the current epoch,
	// so FlushL2 can skip views that are already empty.
	dirty bool
}

func (v *tagView) init(slots uint64) {
	v.tags = make([]uint64, slots)
	v.mask = slots - 1
	v.epoch = 1
}

// probe looks up seg, installs it on a miss, and reports the hit.
func (v *tagView) probe(seg uint64) bool {
	slot := seg & v.mask
	want := v.epoch<<epochShift | seg&segMask
	if v.tags[slot] == want {
		return true
	}
	v.tags[slot] = want
	v.dirty = true
	return false
}

// invalidate empties the view in O(1) by starting a fresh epoch.
func (v *tagView) invalidate() {
	if v.epoch == epochMax {
		clear(v.tags)
		v.epoch = 0
	}
	v.epoch++
	v.dirty = false
}

// shard is the cost-model state of one SM. The deterministic block→SM
// mapping (block bi runs on SM bi % SMs) makes each shard's inputs a
// pure function of the launch, so shards need no synchronization: one
// host worker owns a shard at a time and processes its blocks in
// ascending order.
type shard struct {
	// view is the SM's slice of the L2 tag model.
	view tagView
	// stats and smCycles accumulate over the launch and are collected
	// (and cleared) single-threaded at launch end, in shard order.
	stats    Stats
	smCycles int64
	// bc is the shard's reusable block context (warps, barrier, shared
	// memory slabs): a multi-launch algorithm's hundreds of launches
	// allocate nothing here after warm-up.
	bc block
}

// Device is one simulated GPU: a profile, a fake global address space
// for coalescing/caching, and the sharded cost model. A Device may run
// many kernels; allocate arrays once and launch repeatedly. Simulated
// Stats are deterministic: a pure function of (kernel, graph, profile),
// independent of GOMAXPROCS and host scheduling.
type Device struct {
	Prof Profile

	nextAddr   uint64
	shardSlots uint64
	shards     []shard
	// atom counts same-address atomic pressure, with plain increments
	// (execution on the sharded path is fully serial, so one global
	// table serves every SM and stays hot in cache). atomTouched and
	// atomCursor index the nonzero slots so the launch-end drain is
	// O(footprint), not a 4096-slot scan.
	atom        []int64
	atomTouched []int32
	atomCursor  int32
	ls          launchScratch
	// coros are the persistent warp coroutines for barrier blocks, one
	// per warp slot, reused across blocks and launches (see launch.go).
	// teamBlock is the block they are currently executing.
	coros     []warpCoro
	teamBlock *block
	// gd, when non-nil, makes kernels cooperatively cancelable: Launch
	// polls it per launch (which checkpoints every outer round of the
	// multi-launch algorithms) and each warp polls it every
	// guardPollCycles simulated cycles inside a kernel.
	gd *guard.Token
	// tc, when live, is the parent span Launch records per-launch child
	// spans under (kernel name, blocks, cycles). Installed alongside the
	// guard by runner.RunGPU; the zero value disables launch tracing.
	tc trace.Ctx
	// legacy, when non-nil, routes launches through the shared-atomic
	// baseline (cmd/bench -gpusim measures the sharded model against it).
	legacy *legacyState
}

// SetGuard installs (or, with nil, removes) the guard token subsequent
// launches run under. Call it from the launching goroutine before
// Launch.
func (d *Device) SetGuard(gd *guard.Token) { d.gd = gd }

// SetTrace installs (or, with the zero Ctx, removes) the trace span
// subsequent launches record under. Call it from the launching
// goroutine before Launch, like SetGuard.
func (d *Device) SetTrace(tc trace.Ctx) { d.tc = tc }

// New creates a device with the given profile.
func New(p Profile) *Device {
	segs := uint64(p.L2Bytes) / segBytes / uint64(p.SMs)
	// Round down to a power of two for cheap indexing.
	for segs&(segs-1) != 0 {
		segs &= segs - 1
	}
	if segs == 0 {
		segs = 1
	}
	d := &Device{Prof: p, nextAddr: segBytes, shardSlots: segs}
	d.shards = make([]shard, p.SMs)
	for i := range d.shards {
		d.shards[i].view.init(segs)
	}
	d.atom = make([]int64, atomSlots)
	d.atomTouched = make([]int32, atomSlots)
	return d
}

// atomHit records weight units of atomic pressure on addr (CudaAtomics
// weigh CudaAtomicFactor because their seq_cst system-scope RMWs hold
// the L2 atomic unit far longer).
func (w *Warp) atomHit(addr uint64, weight int64) {
	if w.lt != nil {
		w.lt.atomHit(addr, weight)
		return
	}
	h := addr * 0x9e3779b97f4a7c15 >> 52 // top 12 bits
	d := w.d
	if d.atom[h] == 0 {
		d.atomTouched[d.atomCursor] = int32(h)
		d.atomCursor++
	}
	d.atom[h] += weight
}

// drainAtomics returns the launch's maximum same-address pressure and
// resets the table. Runs single-threaded at launch end; only touched
// slots are visited.
func (d *Device) drainAtomics() int64 {
	var max int64
	for _, h := range d.atomTouched[:d.atomCursor] {
		if c := d.atom[h]; c > max {
			max = c
		}
		d.atom[h] = 0
	}
	d.atomCursor = 0
	if max > 0 {
		max-- // the first atomic is already charged in-line
	}
	return max
}

// FlushL2 invalidates the cache model (used between independent runs so
// timings do not leak across experiments). Tag shards that are already
// empty are skipped.
func (d *Device) FlushL2() {
	if d.legacy != nil {
		d.legacy.flush()
		return
	}
	for i := range d.shards {
		if v := &d.shards[i].view; v.dirty {
			v.invalidate()
		}
	}
}

// Reset returns the device to its post-New state so it can be reused
// across independent runs with bit-identical Stats: the fake address
// space restarts (any arrays from earlier runs are dead), the L2 model
// flushes, and cost-model state left by an aborted launch is cleared.
func (d *Device) Reset() {
	d.nextAddr = segBytes
	d.FlushL2()
	d.drainAtomics()
	for i := range d.shards {
		sh := &d.shards[i]
		sh.stats = Stats{}
		sh.smCycles = 0
	}
}

// transactions returns the coalesced transaction count of the byte
// range [lo, hi): one per 128-byte segment touched. The empty range
// returns 0 (hi == 0 previously underflowed in the (hi-1)/segBytes
// bound).
func transactions(lo, hi uint64) int64 {
	if hi <= lo {
		return 0
	}
	return int64((hi-1)/segBytes - lo/segBytes + 1)
}

func (d *Device) alloc(bytes int64) uint64 {
	base := d.nextAddr
	d.nextAddr += uint64((bytes + segBytes - 1) / segBytes * segBytes)
	return base
}

// I32 is a device array of int32.
type I32 struct {
	base uint64
	data []int32
}

// AllocI32 allocates a zeroed device int32 array.
func (d *Device) AllocI32(n int64) *I32 {
	return &I32{base: d.alloc(n * 4), data: make([]int32, n)}
}

// Len returns the element count.
func (a *I32) Len() int64 { return int64(len(a.data)) }

// Host returns the backing storage for host-side initialization and
// result readback (the cudaMemcpy analog). Host access during a running
// kernel is undefined, as on hardware.
func (a *I32) Host() []int32 { return a.data }

func (a *I32) addr(i int64) uint64 { return a.base + uint64(i)*4 }

// SwapI32 exchanges two device arrays (the host-side pointer swap used
// by double-buffered kernels).
func SwapI32(a, b *I32) {
	a.base, b.base = b.base, a.base
	a.data, b.data = b.data, a.data
}

// UploadI32 allocates a device array holding a copy of src.
func (d *Device) UploadI32(src []int32) *I32 {
	a := d.AllocI32(int64(len(src)))
	copy(a.data, src)
	return a
}

// I64 is a device array of int64 (used for CSR row offsets and count
// accumulators).
type I64 struct {
	base uint64
	data []int64
}

// AllocI64 allocates a zeroed device int64 array.
func (d *Device) AllocI64(n int64) *I64 {
	return &I64{base: d.alloc(n * 8), data: make([]int64, n)}
}

// Len returns the element count.
func (a *I64) Len() int64 { return int64(len(a.data)) }

// Host returns the backing storage (see I32.Host).
func (a *I64) Host() []int64 { return a.data }

func (a *I64) addr(i int64) uint64 { return a.base + uint64(i)*8 }

// UploadI64 allocates a device array holding a copy of src.
func (d *Device) UploadI64(src []int64) *I64 {
	a := d.AllocI64(int64(len(src)))
	copy(a.data, src)
	return a
}

// F32 is a device array of float32, stored as bits so all accesses can
// be atomic.
type F32 struct {
	base uint64
	data []uint32
}

// AllocF32 allocates a zeroed device float32 array.
func (d *Device) AllocF32(n int64) *F32 {
	return &F32{base: d.alloc(n * 4), data: make([]uint32, n)}
}

// Len returns the element count.
func (a *F32) Len() int64 { return int64(len(a.data)) }

// HostGet / HostSet access one element from the host.
func (a *F32) HostGet(i int64) float32    { return math.Float32frombits(a.data[i]) }
func (a *F32) HostSet(i int64, v float32) { a.data[i] = math.Float32bits(v) }

// HostSlice copies the array to a new host slice.
func (a *F32) HostSlice() []float32 {
	out := make([]float32, len(a.data))
	for i := range a.data {
		out[i] = math.Float32frombits(a.data[i])
	}
	return out
}

func (a *F32) addr(i int64) uint64 { return a.base + uint64(i)*4 }

// String identifies the device in reports.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%d SMs, %.2f GHz)", d.Prof.Name, d.Prof.SMs, d.Prof.ClockGHz)
}
