package store

import (
	"reflect"
	"testing"

	"indigo/internal/graph"
	"indigo/internal/styles"
)

// queryCell builds a BFS/OMP cell with the given drive/flow settings
// and throughput, anchored on a fixed otherwise-default config.
func queryCell(t *testing.T, drive styles.Drive, flow styles.Flow, input string, tput float64) Cell {
	t.Helper()
	cfg := styles.Config{
		Algo:   styles.BFS,
		Model:  styles.OMP,
		Drive:  drive,
		Flow:   flow,
		Update: styles.ReadModifyWrite, // legal with every drive
	}
	if !styles.Valid(cfg) {
		t.Fatalf("test config %q is not valid", cfg.Name())
	}
	return Cell{
		Cfg:    cfg,
		Input:  input,
		Device: "cpu",
		Graph:  graph.Stats{Name: input},
		Tput:   tput,
	}
}

func TestRatiosPairsByInput(t *testing.T) {
	s := NewMem()
	// Two inputs, push vs pull on each: ratios 2.0 and 4.0. A third
	// cell on a different drive must not pair with either.
	if err := s.Append(
		queryCell(t, styles.TopologyDriven, styles.Push, "road", 2.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "road", 1.0),
		queryCell(t, styles.TopologyDriven, styles.Push, "grid2d", 8.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "grid2d", 2.0),
		queryCell(t, styles.DataDrivenDup, styles.Push, "road", 100.0),
	); err != nil {
		t.Fatal(err)
	}
	dim := styles.DimByKey("flow")
	got := s.Ratios(dim, int(styles.Push), int(styles.Pull), nil)
	want := map[styles.Algorithm][]float64{styles.BFS: {2.0, 4.0}}
	// Map iteration order is random; sort-insensitive compare.
	if len(got) != 1 || len(got[styles.BFS]) != 2 {
		t.Fatalf("Ratios = %v, want two BFS ratios", got)
	}
	sum := got[styles.BFS][0] + got[styles.BFS][1]
	if sum != want[styles.BFS][0]+want[styles.BFS][1] {
		t.Fatalf("Ratios = %v, want %v (any order)", got, want)
	}
}

func TestCensusDeterministicTieBreak(t *testing.T) {
	// Two variants tie on throughput; the census must pick the
	// lexicographically smaller variant name no matter the append order.
	a := queryCell(t, styles.TopologyDriven, styles.Push, "road", 5.0)
	b := queryCell(t, styles.DataDrivenDup, styles.Pull, "road", 5.0)

	census := func(cells ...Cell) CensusRow {
		s := NewMem()
		if err := s.Append(cells...); err != nil {
			t.Fatal(err)
		}
		row, ok := s.Census(styles.OMP)
		if !ok {
			t.Fatal("Census returned no data")
		}
		return row
	}
	r1 := census(a, b)
	r2 := census(b, a)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("census depends on append order:\n %+v\nvs %+v", r1, r2)
	}
	if r1.N != 1 {
		t.Fatalf("census N = %d, want 1 best cell", r1.N)
	}
}

func TestCensusEmptyModel(t *testing.T) {
	s := NewMem()
	if _, ok := s.Census(styles.CUDA); ok {
		t.Fatal("Census over empty store reported data")
	}
}

func TestBestComboCounts(t *testing.T) {
	s := NewMem()
	if err := s.Append(
		queryCell(t, styles.TopologyDriven, styles.Push, "road", 5.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "road", 1.0),
		queryCell(t, styles.TopologyDriven, styles.Push, "grid2d", 5.0),
	); err != nil {
		t.Fatal(err)
	}
	got := s.BestComboCounts(styles.OMP)
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("BestComboCounts = %+v, want one variant winning both inputs", got)
	}
}
