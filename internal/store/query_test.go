package store

import (
	"reflect"
	"testing"

	"indigo/internal/graph"
	"indigo/internal/styles"
)

// queryCell builds a BFS/OMP cell with the given drive/flow settings
// and throughput, anchored on a fixed otherwise-default config.
func queryCell(t *testing.T, drive styles.Drive, flow styles.Flow, input string, tput float64) Cell {
	t.Helper()
	cfg := styles.Config{
		Algo:   styles.BFS,
		Model:  styles.OMP,
		Drive:  drive,
		Flow:   flow,
		Update: styles.ReadModifyWrite, // legal with every drive
	}
	if !styles.Valid(cfg) {
		t.Fatalf("test config %q is not valid", cfg.Name())
	}
	return Cell{
		Cfg:    cfg,
		Input:  input,
		Device: "cpu",
		Graph:  graph.Stats{Name: input},
		Tput:   tput,
	}
}

func TestRatiosPairsByInput(t *testing.T) {
	s := NewMem()
	// Two inputs, push vs pull on each: ratios 2.0 and 4.0. A third
	// cell on a different drive must not pair with either.
	if err := s.Append(
		queryCell(t, styles.TopologyDriven, styles.Push, "road", 2.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "road", 1.0),
		queryCell(t, styles.TopologyDriven, styles.Push, "grid2d", 8.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "grid2d", 2.0),
		queryCell(t, styles.DataDrivenDup, styles.Push, "road", 100.0),
	); err != nil {
		t.Fatal(err)
	}
	dim := styles.DimByKey("flow")
	got := s.Ratios(dim, int(styles.Push), int(styles.Pull), nil)
	want := map[styles.Algorithm][]float64{styles.BFS: {2.0, 4.0}}
	// Map iteration order is random; sort-insensitive compare.
	if len(got) != 1 || len(got[styles.BFS]) != 2 {
		t.Fatalf("Ratios = %v, want two BFS ratios", got)
	}
	sum := got[styles.BFS][0] + got[styles.BFS][1]
	if sum != want[styles.BFS][0]+want[styles.BFS][1] {
		t.Fatalf("Ratios = %v, want %v (any order)", got, want)
	}
}

func TestCensusDeterministicTieBreak(t *testing.T) {
	// Two variants tie on throughput; the census must pick the
	// lexicographically smaller variant name no matter the append order.
	a := queryCell(t, styles.TopologyDriven, styles.Push, "road", 5.0)
	b := queryCell(t, styles.DataDrivenDup, styles.Pull, "road", 5.0)

	census := func(cells ...Cell) CensusRow {
		s := NewMem()
		if err := s.Append(cells...); err != nil {
			t.Fatal(err)
		}
		row, ok := s.Census(styles.OMP)
		if !ok {
			t.Fatal("Census returned no data")
		}
		return row
	}
	r1 := census(a, b)
	r2 := census(b, a)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("census depends on append order:\n %+v\nvs %+v", r1, r2)
	}
	if r1.N != 1 {
		t.Fatalf("census N = %d, want 1 best cell", r1.N)
	}
}

func TestCensusEmptyModel(t *testing.T) {
	s := NewMem()
	if _, ok := s.Census(styles.CUDA); ok {
		t.Fatal("Census over empty store reported data")
	}
}

func TestBestComboCounts(t *testing.T) {
	s := NewMem()
	if err := s.Append(
		queryCell(t, styles.TopologyDriven, styles.Push, "road", 5.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "road", 1.0),
		queryCell(t, styles.TopologyDriven, styles.Push, "grid2d", 5.0),
	); err != nil {
		t.Fatal(err)
	}
	got := s.BestComboCounts(styles.OMP)
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("BestComboCounts = %+v, want one variant winning both inputs", got)
	}
}

// shapedCell builds a cell with a given config, input, and graph shape.
func shapedCell(cfg styles.Config, input, device string, tput float64, shape graph.Stats) Cell {
	shape.Name = input
	return Cell{Cfg: cfg, Input: input, Device: device, Graph: shape, Tput: tput}
}

func TestBestPicksHighestThroughput(t *testing.T) {
	s := NewMem()
	if err := s.Append(
		queryCell(t, styles.TopologyDriven, styles.Push, "road", 2.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "road", 5.0),
		queryCell(t, styles.DataDrivenDup, styles.Push, "road", 3.0),
		queryCell(t, styles.TopologyDriven, styles.Pull, "grid2d", 9.0), // other input
	); err != nil {
		t.Fatal(err)
	}
	c, ok := s.Best(styles.BFS, styles.OMP, "road", "cpu")
	if !ok {
		t.Fatal("Best found nothing")
	}
	if c.Tput != 5.0 || c.Cfg.Flow != styles.Pull {
		t.Fatalf("Best = %s (%.1f), want the 5.0 pull cell", c.Cfg.Name(), c.Tput)
	}
	if _, ok := s.Best(styles.BFS, styles.OMP, "road", "rtx-sim"); ok {
		t.Fatal("Best found a cell for a device the store has never seen")
	}
	if _, ok := s.Best(styles.PR, styles.OMP, "road", "cpu"); ok {
		t.Fatal("Best found a cell for an algorithm the store has never seen")
	}
}

func TestBestBreaksTiesByName(t *testing.T) {
	s := NewMem()
	a := queryCell(t, styles.TopologyDriven, styles.Push, "road", 4.0)
	b := queryCell(t, styles.TopologyDriven, styles.Pull, "road", 4.0)
	if err := s.Append(a, b); err != nil {
		t.Fatal(err)
	}
	want := a.Cfg.Name()
	if b.Cfg.Name() < want {
		want = b.Cfg.Name()
	}
	c, ok := s.Best(styles.BFS, styles.OMP, "road", "cpu")
	if !ok || c.Cfg.Name() != want {
		t.Fatalf("tie broke to %s, want %s", c.Cfg.Name(), want)
	}
}

func TestBestForShapeOrdersByShapeSimilarity(t *testing.T) {
	s := NewMem()
	road := graph.Stats{Vertices: 1000, AvgDegree: 2.5, MaxDegree: 4, Diameter: 120}
	social := graph.Stats{Vertices: 1000, AvgDegree: 30, MaxDegree: 5000, Diameter: 6}
	grid := graph.Stats{Vertices: 900, AvgDegree: 4, MaxDegree: 4, Diameter: 60}
	pull := queryCell(t, styles.TopologyDriven, styles.Pull, "", 0).Cfg
	push := queryCell(t, styles.TopologyDriven, styles.Push, "", 0).Cfg
	if err := s.Append(
		shapedCell(pull, "road", "cpu", 3.0, road),
		shapedCell(push, "road", "cpu", 1.0, road),
		shapedCell(push, "social", "cpu", 8.0, social),
		shapedCell(pull, "grid2d", "cpu", 2.0, grid),
	); err != nil {
		t.Fatal(err)
	}
	// Query with a road-like shape: road's best first, grid next,
	// social last.
	query := graph.Stats{Vertices: 2000, AvgDegree: 2.7, MaxDegree: 5, Diameter: 200}
	got := s.BestForShape(styles.BFS, styles.OMP, "cpu", query, -1)
	if len(got) != 3 {
		t.Fatalf("got %d cells, want 3 (one per input)", len(got))
	}
	if got[0].Input != "road" || got[0].Tput != 3.0 {
		t.Fatalf("nearest = %s (%.1f), want road's 3.0 best", got[0].Input, got[0].Tput)
	}
	if got[1].Input != "grid2d" || got[2].Input != "social" {
		t.Fatalf("order = %s, %s; want grid2d then social", got[1].Input, got[2].Input)
	}
	// k truncates.
	if got := s.BestForShape(styles.BFS, styles.OMP, "cpu", query, 1); len(got) != 1 || got[0].Input != "road" {
		t.Fatalf("k=1 returned %v", got)
	}
}
