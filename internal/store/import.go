package store

import (
	"fmt"
	"sort"
	"time"

	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/sweep"
)

// ImportJournal merges the successful runs of a sweep JSONL journal
// into the store. The journal records only the input's name, not its
// shape, so the caller supplies a resolver from input name to the
// graph.Stats signature (see ScaleResolver for the generated suite).
// Cells whose input the resolver does not know are skipped, mirroring
// the journal reader's tolerance of unknown inputs. Returns how many
// cells were merged.
//
// The journal is read through sweep.ReadJournal, so its schema-version
// gate applies: a journal written by a newer schema is rejected rather
// than half-imported.
func ImportJournal(s *Store, path string, resolve func(input string) (graph.Stats, bool)) (int, error) {
	outcomes, err := sweep.ReadJournal(path)
	if err != nil {
		return 0, fmt.Errorf("store: import %s: %w", path, err)
	}
	// The journal map iterates in random order; sort by key so imports
	// are deterministic (rows, and therefore aggregate tie-breaks, must
	// not depend on map order).
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var cells []Cell
	for _, k := range keys {
		o := outcomes[k]
		if o.Kind != sweep.OK {
			continue
		}
		st, ok := resolve(o.Input.String())
		if !ok {
			continue
		}
		cells = append(cells, Cell{
			Cfg:       o.Cfg,
			Input:     o.Input.String(),
			Device:    o.Device,
			Graph:     st,
			Tput:      o.Tput,
			Attempts:  o.Attempts,
			ElapsedMS: float64(o.Elapsed) / float64(time.Millisecond),

			SimCycles:       o.SimCycles,
			SimInstructions: o.SimInstructions,
			SimTransactions: o.SimTransactions,
		})
	}
	if err := s.Append(cells...); err != nil {
		return 0, err
	}
	return len(cells), nil
}

// ScaleResolver resolves the generated study inputs at the given scale,
// computing each input's shape signature at most once. It is the
// resolver to use for journals written by sweeps over gen.Suite.
func ScaleResolver(scale gen.Scale) func(input string) (graph.Stats, bool) {
	cache := make(map[string]graph.Stats, int(gen.NumInputs))
	return func(input string) (graph.Stats, bool) {
		if st, ok := cache[input]; ok {
			return st, true
		}
		for in := gen.Input(0); in < gen.NumInputs; in++ {
			if in.String() == input {
				st := gen.Generate(in, scale).Stats()
				cache[input] = st
				return st, true
			}
		}
		return graph.Stats{}, false
	}
}
