// Package store is the persistent, queryable measurement corpus of the
// reproduction: an append-only columnar results store for sweep cells.
// The paper's end product is not the 1106 programs but the distilled
// knowledge — throughput-ratio distributions, best-style censuses, the
// §5.16 guidelines — and this package turns the one-shot JSONL journals
// of internal/sweep into a durable knowledge base those aggregates can
// be queried from repeatedly (and served over HTTP by internal/serve).
//
// Layout: cells are columnar in memory (struct-of-arrays, so aggregate
// scans touch only the columns they need) and row-framed on disk (each
// cell is one length-prefixed, checksummed frame, so appends are cheap
// and a torn final frame from a killed process costs one cell, exactly
// like the sweep journal's torn-line tolerance). The on-disk codec is
// versioned independently of the journal schema: either side can evolve
// without breaking the other's readers.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"indigo/internal/graph"
	"indigo/internal/styles"
)

// Codec versioning. Version is bumped whenever the frame payload layout
// changes; readers reject files whose version they do not know instead
// of misparsing them. Version history:
//
//	1 — the original cell layout
//	2 — appends the simulator's deterministic cost counters (cycles,
//	    instructions, transactions) to GPU cells; zero for CPU cells
//
// Open migrates a version-1 file to the current version in place (the
// old payloads decode losslessly; the new counters backfill as zero,
// meaning "not recorded"), and still rejects versions it does not know.
const (
	// magic identifies a store file. The trailing byte is free for a
	// future format-level (not payload-level) revision.
	magic = "indigo2\x00"
	// Version is the current payload codec version.
	Version = 2
	// oldestVersion is the oldest payload codec Open can still decode
	// (and will migrate forward on open).
	oldestVersion = 1
)

// Config bitfield layout (21 bits used). The bitfield is the store's
// compact identity of a style combination; PackConfig/UnpackConfig
// round-trip every config of the enumerated suite (tested exhaustively).
const (
	algoBits    = 3
	modelBits   = 2
	iterateBits = 1
	driveBits   = 2
	flowBits    = 1
	updateBits  = 1
	detBits     = 1
	granBits    = 2
	persistBits = 1
	atomicsBits = 1
	gpuredBits  = 2
	cpuredBits  = 2
	ompBits     = 1
	cppBits     = 1
)

// PackConfig encodes a style configuration as a 32-bit bitfield, the
// store's columnar representation of the variant identity.
func PackConfig(c styles.Config) uint32 {
	var bits uint32
	put := func(v uint32, width uint) {
		bits = bits<<width | v
	}
	put(uint32(c.Algo), algoBits)
	put(uint32(c.Model), modelBits)
	put(uint32(c.Iterate), iterateBits)
	put(uint32(c.Drive), driveBits)
	put(uint32(c.Flow), flowBits)
	put(uint32(c.Update), updateBits)
	put(uint32(c.Det), detBits)
	put(uint32(c.Gran), granBits)
	put(uint32(c.Persist), persistBits)
	put(uint32(c.Atomics), atomicsBits)
	put(uint32(c.GPURed), gpuredBits)
	put(uint32(c.CPURed), cpuredBits)
	put(uint32(c.OMPSched), ompBits)
	put(uint32(c.CPPSched), cppBits)
	return bits
}

// UnpackConfig decodes a bitfield produced by PackConfig. It errors on
// out-of-range enum values (a corrupt or future-version field) but does
// not re-validate the style combination: stored cells were validated
// when measured, and rejecting a combination a future suite revision
// legalizes would make old stores unreadable.
func UnpackConfig(bits uint32) (styles.Config, error) {
	// Fields come back out in reverse order of PackConfig's puts.
	take := func(width uint) uint32 {
		v := bits & (1<<width - 1)
		bits >>= width
		return v
	}
	var c styles.Config
	c.CPPSched = styles.CPPSched(take(cppBits))
	c.OMPSched = styles.OMPSched(take(ompBits))
	c.CPURed = styles.CPURed(take(cpuredBits))
	c.GPURed = styles.GPURed(take(gpuredBits))
	c.Atomics = styles.Atomics(take(atomicsBits))
	c.Persist = styles.Persist(take(persistBits))
	c.Gran = styles.Gran(take(granBits))
	c.Det = styles.Det(take(detBits))
	c.Update = styles.Update(take(updateBits))
	c.Flow = styles.Flow(take(flowBits))
	c.Drive = styles.Drive(take(driveBits))
	c.Iterate = styles.Iterate(take(iterateBits))
	c.Model = styles.Model(take(modelBits))
	c.Algo = styles.Algorithm(take(algoBits))
	if bits != 0 {
		return styles.Config{}, fmt.Errorf("store: config bitfield has excess bits %#x", bits)
	}
	if c.Algo >= styles.NumAlgorithms {
		return styles.Config{}, fmt.Errorf("store: config bitfield names unknown algorithm %d", c.Algo)
	}
	if c.Model >= styles.NumModels {
		return styles.Config{}, fmt.Errorf("store: config bitfield names unknown model %d", c.Model)
	}
	if c.Drive > styles.DataDrivenNoDup {
		return styles.Config{}, fmt.Errorf("store: config bitfield names unknown drive %d", c.Drive)
	}
	if c.Gran > styles.BlockGran {
		return styles.Config{}, fmt.Errorf("store: config bitfield names unknown granularity %d", c.Gran)
	}
	if c.GPURed > styles.ReductionAdd {
		return styles.Config{}, fmt.Errorf("store: config bitfield names unknown gpu reduction %d", c.GPURed)
	}
	if c.CPURed > styles.ClauseRed {
		return styles.Config{}, fmt.Errorf("store: config bitfield names unknown cpu reduction %d", c.CPURed)
	}
	return c, nil
}

// appendCell serializes one cell as a current-version frame payload.
func appendCell(buf []byte, c Cell) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, PackConfig(c.Cfg))
	buf = appendString(buf, c.Input)
	buf = appendString(buf, c.Device)
	buf = appendString(buf, c.Graph.Name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Graph.Vertices))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Graph.Edges))
	buf = appendFloat(buf, c.Graph.SizeMB)
	buf = appendFloat(buf, c.Graph.AvgDegree)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Graph.MaxDegree))
	buf = appendFloat(buf, c.Graph.PctDeg32)
	buf = appendFloat(buf, c.Graph.PctDeg512)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Graph.Diameter))
	buf = appendFloat(buf, c.Tput)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Attempts))
	buf = appendFloat(buf, c.ElapsedMS)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.SimCycles))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.SimInstructions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.SimTransactions))
	return buf
}

// decodeCell parses a frame payload written at codec version ver. The
// version-1 layout is the version-2 layout minus the trailing simulated
// cost counters, which backfill as zero ("not recorded").
func decodeCell(p []byte, ver uint16) (Cell, error) {
	d := decoder{p: p}
	var c Cell
	bits := d.u32()
	c.Input = d.str()
	c.Device = d.str()
	c.Graph.Name = d.str()
	c.Graph.Vertices = int32(d.u32())
	c.Graph.Edges = int64(d.u64())
	c.Graph.SizeMB = d.f64()
	c.Graph.AvgDegree = d.f64()
	c.Graph.MaxDegree = int64(d.u64())
	c.Graph.PctDeg32 = d.f64()
	c.Graph.PctDeg512 = d.f64()
	c.Graph.Diameter = int32(d.u32())
	c.Tput = d.f64()
	c.Attempts = int(d.u16())
	c.ElapsedMS = d.f64()
	if ver >= 2 {
		c.SimCycles = int64(d.u64())
		c.SimInstructions = int64(d.u64())
		c.SimTransactions = int64(d.u64())
	}
	if d.err != nil {
		return Cell{}, d.err
	}
	if len(d.p) != 0 {
		return Cell{}, fmt.Errorf("store: cell frame has %d trailing bytes", len(d.p))
	}
	cfg, err := UnpackConfig(bits)
	if err != nil {
		return Cell{}, err
	}
	c.Cfg = cfg
	return c, nil
}

func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// decoder cursors over a frame payload, latching the first error so
// call sites stay linear.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.p) < n {
		d.err = fmt.Errorf("store: truncated cell frame (want %d bytes, have %d)", n, len(d.p))
		return nil
	}
	b := d.p[:n]
	d.p = d.p[n:]
	return b
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Signature is the graph-shape part of a cell: the Table 4/5 stats
// signature the advisor keys on, stored alongside every measurement so
// aggregates can be cut by input shape without the input itself.
type Signature = graph.Stats
