package store

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"indigo/internal/graph"
	"indigo/internal/styles"
	"indigo/internal/sweep"
)

// TestPackConfigRoundTrip packs and unpacks every enumerated style
// combination; the bitfield must be a lossless identity.
func TestPackConfigRoundTrip(t *testing.T) {
	all := styles.EnumerateAll()
	if len(all) == 0 {
		t.Fatal("EnumerateAll returned nothing")
	}
	seen := make(map[uint32]string, len(all))
	for _, cfg := range all {
		bits := PackConfig(cfg)
		if prev, ok := seen[bits]; ok && prev != cfg.Name() {
			t.Fatalf("bitfield collision: %q and %q both pack to %#x", prev, cfg.Name(), bits)
		}
		seen[bits] = cfg.Name()
		got, err := UnpackConfig(bits)
		if err != nil {
			t.Fatalf("UnpackConfig(%#x) for %q: %v", bits, cfg.Name(), err)
		}
		if got != cfg {
			t.Fatalf("round trip of %q: got %q", cfg.Name(), got.Name())
		}
	}
}

func TestUnpackConfigRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		bits uint32
	}{
		{"excess bits", 1 << 21},
		{"all ones", ^uint32(0)},
		{"bad algorithm", uint32(styles.NumAlgorithms) << 18},
	}
	for _, tc := range cases {
		if _, err := UnpackConfig(tc.bits); err == nil {
			t.Errorf("%s (%#x): want error, got none", tc.name, tc.bits)
		}
	}
}

func testCells(t *testing.T) []Cell {
	t.Helper()
	all := styles.EnumerateAll()
	st := graph.Stats{
		Name: "road", Vertices: 1024, Edges: 3000, SizeMB: 0.5,
		AvgDegree: 2.9, MaxDegree: 4, PctDeg32: 0, PctDeg512: 0, Diameter: 63,
	}
	cells := make([]Cell, 0, 4)
	for i := 0; i < 4; i++ {
		cells = append(cells, Cell{
			Cfg:       all[i*7],
			Input:     "road",
			Device:    "cpu",
			Graph:     st,
			Tput:      0.25 * float64(i+1),
			Attempts:  i + 1,
			ElapsedMS: 12.5 * float64(i+1),

			SimCycles:       int64(1000 * (i + 1)),
			SimInstructions: int64(400 * (i + 1)),
			SimTransactions: int64(90 * (i + 1)),
		})
	}
	return cells
}

func TestCellCodecRoundTrip(t *testing.T) {
	for _, c := range testCells(t) {
		payload := appendCell(nil, c)
		got, err := decodeCell(payload, Version)
		if err != nil {
			t.Fatalf("decodeCell(%q): %v", c.Key(), err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("round trip of %q:\n got %+v\nwant %+v", c.Key(), got, c)
		}
		// Every truncation of a valid payload must error, never panic
		// or misparse into a valid cell.
		for n := 0; n < len(payload); n++ {
			if _, err := decodeCell(payload[:n], Version); err == nil {
				t.Fatalf("decodeCell of %d/%d-byte prefix: want error", n, len(payload))
			}
		}
		if _, err := decodeCell(append(payload, 0), Version); err == nil {
			t.Fatal("decodeCell with trailing byte: want error")
		}
	}
}

func TestAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	cells := testCells(t)

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(cells...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Cells(); !reflect.DeepEqual(got, cells) {
		t.Fatalf("reopen:\n got %+v\nwant %+v", got, cells)
	}
}

func TestOverwriteLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := testCells(t)[0]
	if err := s.Append(c); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	c.Tput = 99
	c.Attempts = 3
	if err := s.Append(c); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == g1 {
		t.Fatal("generation did not advance on append")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same key overwrites)", s.Len())
	}
	if got := s.At(0); got.Tput != 99 || got.Attempts != 3 {
		t.Fatalf("At(0) = %+v, want the second write", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The file keeps history; reload replays it and the last write
	// still wins.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 || r.At(0).Tput != 99 {
		t.Fatalf("reopened: Len=%d At(0)=%+v, want one cell with Tput 99", r.Len(), r.At(0))
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	cells := testCells(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(cells...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final frame mid-payload, as a kill -9 during Append would.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if r.Len() != len(cells)-1 {
		t.Fatalf("Len = %d after torn tail, want %d", r.Len(), len(cells)-1)
	}
	// The torn bytes must be gone so new appends land on a frame
	// boundary and survive another reopen.
	if err := r.Append(cells[len(cells)-1]); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Cells(); !reflect.DeepEqual(got, cells) {
		t.Fatalf("after repair:\n got %+v\nwant %+v", got, cells)
	}
}

func TestCorruptFrameStopsLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	cells := testCells(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(cells...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the final frame: the checksum must catch
	// it and loading stops at the last good cell.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-1] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("open with corrupt frame: %v", err)
	}
	defer r.Close()
	if r.Len() != len(cells)-1 {
		t.Fatalf("Len = %d after corrupt frame, want %d", r.Len(), len(cells)-1)
	}
}

func TestOpenRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.store")
	hdr := append([]byte(magic), 0, 0)
	binary.LittleEndian.PutUint16(hdr[len(magic):], Version+1)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("want error for future codec version")
	}
}

func TestOpenMigratesV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.store")
	cells := testCells(t)

	// Write a version-1 file by hand: the v1 payload is the current one
	// minus the trailing three simulated cost counters (24 bytes).
	buf := append([]byte(magic), 0, 0)
	binary.LittleEndian.PutUint16(buf[len(magic):], 1)
	for _, c := range cells {
		payload := appendCell(nil, c)
		payload = payload[:len(payload)-24]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
		buf = append(buf, payload...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("open v1 store: %v", err)
	}
	if s.Len() != len(cells) {
		t.Fatalf("Len = %d after migration, want %d", s.Len(), len(cells))
	}
	for i, c := range s.Cells() {
		if c.SimCycles != 0 || c.SimInstructions != 0 || c.SimTransactions != 0 {
			t.Fatalf("cell %d: migrated v1 cell has nonzero sim counters: %+v", i, c)
		}
	}
	// Appends after migration must land on a clean v2 boundary.
	extra := cells[0]
	extra.Input = "grid2d"
	extra.SimCycles, extra.SimInstructions, extra.SimTransactions = 7, 8, 9
	if err := s.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	hdr, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint16(hdr[len(magic):]); got != Version {
		t.Fatalf("migrated file has codec version %d, want %d", got, Version)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("reopen migrated store: %v", err)
	}
	defer r.Close()
	if r.Len() != len(cells)+1 {
		t.Fatalf("Len = %d after reopen, want %d", r.Len(), len(cells)+1)
	}
	got := r.At(r.Len() - 1)
	if !reflect.DeepEqual(got, extra) {
		t.Fatalf("post-migration append:\n got %+v\nwant %+v", got, extra)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notastore")
	if err := os.WriteFile(path, []byte("definitely not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("want error for bad magic")
	}
}

// writeJournal writes a JSONL sweep journal of the given records.
func writeJournal(t *testing.T, recs []sweep.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestImportJournal(t *testing.T) {
	all := styles.EnumerateAll()
	recs := []sweep.Record{
		{V: sweep.JournalVersion, Variant: all[0].Name(), Input: "road", Device: "cpu",
			Kind: sweep.OK.String(), Tput: 1.5, Attempts: 1, ElapsedMS: 10},
		{V: sweep.JournalVersion, Variant: all[1].Name(), Input: "road", Device: "cpu",
			Kind: sweep.Timeout.String(), Attempts: 2, ElapsedMS: 500}, // failures stay out
		{V: sweep.JournalVersion, Variant: all[2].Name(), Input: "grid2d", Device: "cpu",
			Kind: sweep.OK.String(), Tput: 2.5, Attempts: 1, ElapsedMS: 20}, // resolver misses
	}
	path := writeJournal(t, recs)

	roadStats := graph.Stats{Name: "road", Vertices: 100, Edges: 300, Diameter: 40}
	resolve := func(input string) (graph.Stats, bool) {
		if input == "road" {
			return roadStats, true
		}
		return graph.Stats{}, false
	}
	s := NewMem()
	n, err := ImportJournal(s, path, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Len() != 1 {
		t.Fatalf("imported %d cells (store %d), want 1", n, s.Len())
	}
	got := s.At(0)
	want := Cell{Cfg: all[0], Input: "road", Device: "cpu", Graph: roadStats,
		Tput: 1.5, Attempts: 1, ElapsedMS: 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imported cell:\n got %+v\nwant %+v", got, want)
	}
}

func TestImportJournalRejectsFutureSchema(t *testing.T) {
	all := styles.EnumerateAll()
	path := writeJournal(t, []sweep.Record{
		{V: sweep.JournalVersion + 1, Variant: all[0].Name(), Input: "road", Device: "cpu",
			Kind: sweep.OK.String(), Tput: 1, Attempts: 1},
	})
	if _, err := ImportJournal(NewMem(), path, func(string) (graph.Stats, bool) {
		return graph.Stats{}, true
	}); err == nil {
		t.Fatal("want error importing a future-schema journal")
	}
}
