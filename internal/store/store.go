package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"indigo/internal/graph"
	"indigo/internal/styles"
)

// Cell is one stored measurement: a style variant measured on one input
// on one device, with the input's shape signature and run metadata.
// Only successful (verified) runs become cells; failures stay in the
// sweep journal, which remains the run log of record.
type Cell struct {
	Cfg    styles.Config
	Input  string // gen input name, e.g. "road"
	Device string // "cpu" or a gpusim profile name
	Graph  graph.Stats
	Tput   float64 // giga-edges per second
	// Run metadata carried over from the supervisor.
	Attempts  int
	ElapsedMS float64
	// Simulated cost counters (codec v2), recorded for GPU cells. They
	// are deterministic — a pure function of (kernel, graph, profile) —
	// so a stored GPU cell is exact ground truth, not a sample. Zero for
	// CPU cells and for cells imported from pre-v3 journals.
	SimCycles       int64
	SimInstructions int64
	SimTransactions int64
}

// Key is the cell's merge identity: one measurement per (variant,
// input, device) survives, matching the sweep journal's resume keying.
func (c Cell) Key() string {
	return c.Cfg.Name() + "|" + c.Input + "|" + c.Device
}

// Store is an append-only results store. In memory the cells live as
// parallel columns; on disk each append is one checksummed frame. A
// re-appended key overwrites its row in place (last write wins, like
// the journal's resume map) while the file keeps the full history.
//
// Store is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	f    *os.File // nil for an in-memory store
	path string

	// Columns, indexed by row.
	cfg      []styles.Config
	cfgBits  []uint32
	input    []string
	device   []string
	gstats   []graph.Stats
	tput     []float64
	attempts []uint16
	elapsed  []float64
	simCyc   []int64
	simIns   []int64
	simTrn   []int64

	index map[string]int // Key -> row
	gen   uint64         // bumped per mutation; response caches key on it
}

// NewMem creates an empty in-memory store (no backing file).
func NewMem() *Store {
	return &Store{index: map[string]int{}}
}

// Open opens (or creates) a store file and loads its cells. A torn
// final frame — the mark of a process killed mid-append — is dropped
// and truncated away so subsequent appends start on a clean boundary.
// A file written at an older codec version this build still decodes is
// migrated to the current version in place; a file with an unknown
// (future or pre-history) codec version is rejected, not skimmed.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := NewMem()
	s.f = f
	s.path = path
	good, ver, err := s.load(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if ver < Version {
		// Older codec: the cells are already decoded in memory, so
		// migrate by rewriting the whole file at the current version.
		if err := s.rewrite(f); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	}
	// Drop any torn tail and position for appends.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek: %w", err)
	}
	return s, nil
}

// rewrite replaces the backing file's contents with a current-version
// header and one frame per in-memory cell, in row order. Used to
// migrate a file opened at an older codec version.
func (s *Store) rewrite(f *os.File) error {
	buf := append([]byte(magic), 0, 0)
	binary.LittleEndian.PutUint16(buf[len(magic):], Version)
	for i := range s.cfg {
		payload := appendCell(nil, s.cellAt(i))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
		buf = append(buf, payload...)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("store: migrate to codec v%d: %w", Version, err)
	}
	if err := f.Truncate(int64(len(buf))); err != nil {
		return fmt.Errorf("store: migrate to codec v%d: %w", Version, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: migrate to codec v%d: %w", Version, err)
	}
	return nil
}

// load reads the header and every intact frame, returning the byte
// offset of the last intact frame's end and the file's codec version.
func (s *Store) load(f *os.File) (good int64, ver uint16, err error) {
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("store: stat: %w", err)
	}
	if st.Size() == 0 {
		// Fresh file: write the header.
		hdr := append([]byte(magic), 0, 0)
		binary.LittleEndian.PutUint16(hdr[len(magic):], Version)
		if _, err := f.Write(hdr); err != nil {
			return 0, 0, fmt.Errorf("store: write header: %w", err)
		}
		return int64(len(hdr)), Version, nil
	}
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, fmt.Errorf("store: %s: short header (not a store file?)", s.path)
	}
	if string(hdr[:len(magic)]) != magic {
		return 0, 0, fmt.Errorf("store: %s: bad magic (not a store file)", s.path)
	}
	ver = binary.LittleEndian.Uint16(hdr[len(magic):])
	if ver < oldestVersion || ver > Version {
		return 0, 0, fmt.Errorf("store: %s: codec version %d, this build reads %d through %d",
			s.path, ver, oldestVersion, Version)
	}
	good = int64(len(hdr))
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			return good, ver, nil // clean EOF or torn length word
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if n > maxFrame {
			return good, ver, nil // garbage length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return good, ver, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, ver, nil // corrupt frame: stop at last good cell
		}
		cell, err := decodeCell(payload, ver)
		if err != nil {
			return 0, 0, fmt.Errorf("store: %s: %w", s.path, err)
		}
		s.put(cell)
		good += int64(8 + int(n))
	}
}

// maxFrame bounds a single cell frame; real cells are ~150 bytes, so
// anything near this is a corrupt length word.
const maxFrame = 1 << 20

// Append merges cells into the store: new keys append rows, existing
// keys overwrite their row (last write wins). Backed stores also append
// one frame per cell to the file before updating memory, so a crash
// never loses an acknowledged cell.
func (s *Store) Append(cells ...Cell) error {
	if len(cells) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		var buf []byte
		for _, c := range cells {
			payload := appendCell(nil, c)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
			buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
			buf = append(buf, payload...)
		}
		if _, err := s.f.Write(buf); err != nil {
			return fmt.Errorf("store: append: %w", err)
		}
	}
	for _, c := range cells {
		s.put(c)
	}
	s.gen++
	return nil
}

// put inserts or overwrites one cell in the columns. Caller holds mu
// (or owns the store exclusively during load).
func (s *Store) put(c Cell) {
	key := c.Key()
	if row, ok := s.index[key]; ok {
		s.cfg[row] = c.Cfg
		s.cfgBits[row] = PackConfig(c.Cfg)
		s.input[row] = c.Input
		s.device[row] = c.Device
		s.gstats[row] = c.Graph
		s.tput[row] = c.Tput
		s.attempts[row] = uint16(c.Attempts)
		s.elapsed[row] = c.ElapsedMS
		s.simCyc[row] = c.SimCycles
		s.simIns[row] = c.SimInstructions
		s.simTrn[row] = c.SimTransactions
		return
	}
	s.index[key] = len(s.cfg)
	s.cfg = append(s.cfg, c.Cfg)
	s.cfgBits = append(s.cfgBits, PackConfig(c.Cfg))
	s.input = append(s.input, c.Input)
	s.device = append(s.device, c.Device)
	s.gstats = append(s.gstats, c.Graph)
	s.tput = append(s.tput, c.Tput)
	s.attempts = append(s.attempts, uint16(c.Attempts))
	s.elapsed = append(s.elapsed, c.ElapsedMS)
	s.simCyc = append(s.simCyc, c.SimCycles)
	s.simIns = append(s.simIns, c.SimInstructions)
	s.simTrn = append(s.simTrn, c.SimTransactions)
}

// Len returns the number of distinct cells.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cfg)
}

// Generation returns a counter that changes on every mutation; response
// caches tag entries with it and treat a mismatch as invalidated.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// At returns cell i (0 <= i < Len()) by row.
func (s *Store) At(i int) Cell {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cellAt(i)
}

func (s *Store) cellAt(i int) Cell {
	return Cell{
		Cfg:       s.cfg[i],
		Input:     s.input[i],
		Device:    s.device[i],
		Graph:     s.gstats[i],
		Tput:      s.tput[i],
		Attempts:  int(s.attempts[i]),
		ElapsedMS: s.elapsed[i],

		SimCycles:       s.simCyc[i],
		SimInstructions: s.simIns[i],
		SimTransactions: s.simTrn[i],
	}
}

// Cells returns a copy of every cell in row order.
func (s *Store) Cells() []Cell {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Cell, len(s.cfg))
	for i := range out {
		out[i] = s.cellAt(i)
	}
	return out
}

// Close syncs and closes the backing file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
