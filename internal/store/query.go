package store

import (
	"fmt"
	"math"
	"sort"

	"indigo/internal/graph"
	"indigo/internal/stats"
	"indigo/internal/styles"
)

// This file is the query side of the store: the paper's figures as
// aggregations over stored cells instead of one-shot report passes.
// The pairing and census methodologies mirror internal/harness exactly
// (same grouping keys, same tie-breaks, same rendering), which the
// round-trip golden test in internal/serve pins down byte-for-byte.

// paperOrder lists the six algorithms in the paper's presentation
// order, matching harness.AllAlgorithms.
var paperOrder = []styles.Algorithm{
	styles.CC, styles.MIS, styles.PR, styles.TC, styles.BFS, styles.SSSP,
}

// Filter selects cells for a query; nil selects everything.
type Filter func(Cell) bool

// And combines filters.
func And(fs ...Filter) Filter {
	return func(c Cell) bool {
		for _, f := range fs {
			if f != nil && !f(c) {
				return false
			}
		}
		return true
	}
}

// ByModel selects cells of one programming model.
func ByModel(m styles.Model) Filter {
	return func(c Cell) bool { return c.Cfg.Model == m }
}

// ByAlgo selects cells of one algorithm.
func ByAlgo(a styles.Algorithm) Filter {
	return func(c Cell) bool { return c.Cfg.Algo == a }
}

// ClassicOnly excludes default-CudaAtomic cells, as the paper does for
// every result after §5.1.
func ClassicOnly(c Cell) bool { return c.Cfg.Atomics == styles.ClassicAtomic }

// valueIndex returns which alternative of dim the config holds.
func valueIndex(dim *styles.Dim, cfg styles.Config) int {
	for i := 0; i < dim.NumValues; i++ {
		if dim.Set(cfg, i) == cfg {
			return i
		}
	}
	return -1
}

// Ratios pairs cells that differ only in the given dimension and
// returns tput[aIdx]/tput[bIdx] per algorithm — the paper's §5 ratio
// methodology over the stored corpus. Pairing is per input and device,
// exactly like harness.Ratios.
func (s *Store) Ratios(dim *styles.Dim, aIdx, bIdx int, f Filter) map[styles.Algorithm][]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type pairKey struct {
		key    string
		input  string
		device string
	}
	groups := make(map[pairKey]map[int]float64)
	algoOf := make(map[pairKey]styles.Algorithm)
	for i := range s.cfg {
		c := s.cellAt(i)
		if f != nil && !f(c) {
			continue
		}
		if !dim.Applies(c.Cfg) {
			continue
		}
		pk := pairKey{c.Cfg.KeyWithout(dim), c.Input, c.Device}
		g := groups[pk]
		if g == nil {
			g = make(map[int]float64)
			groups[pk] = g
			algoOf[pk] = c.Cfg.Algo
		}
		g[valueIndex(dim, c.Cfg)] = c.Tput
	}
	out := make(map[styles.Algorithm][]float64)
	for pk, g := range groups {
		a, okA := g[aIdx]
		b, okB := g[bIdx]
		if okA && okB && a > 0 && b > 0 {
			out[algoOf[pk]] = append(out[algoOf[pk]], a/b)
		}
	}
	return out
}

// RatioLines renders per-algorithm ratio distributions as boxen lines
// in the harness report format ("  algo n=... med=...").
func RatioLines(ratios map[styles.Algorithm][]float64) []string {
	var lines []string
	for _, a := range paperOrder {
		if xs := ratios[a]; len(xs) > 0 {
			lines = append(lines, fmt.Sprintf("  %-4s %s", a.String(), stats.NewBoxen(xs).String()))
		}
	}
	return lines
}

// CensusRow is the Fig. 14 census of one model: the percentage of each
// style among the best-performing cells.
type CensusRow struct {
	Model  styles.Model
	N      int // best-performing cells counted
	Vertex float64
	Topo   float64
	Dup    float64 // among data-driven best performers
	Push   float64
	RW     float64
	NonDet float64
}

// bestCells returns the highest-throughput cell per (algorithm, input,
// device) among classic-atomics cells of the model. Ties break to the
// lexicographically smaller variant name so the census is independent
// of row order.
func (s *Store) bestCells(model styles.Model) []Cell {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type key struct {
		a      styles.Algorithm
		input  string
		device string
	}
	best := make(map[key]Cell)
	for i := range s.cfg {
		c := s.cellAt(i)
		if c.Cfg.Model != model || !ClassicOnly(c) {
			continue
		}
		k := key{c.Cfg.Algo, c.Input, c.Device}
		cur, ok := best[k]
		if !ok || c.Tput > cur.Tput ||
			(c.Tput == cur.Tput && c.Cfg.Name() < cur.Cfg.Name()) {
			best[k] = c
		}
	}
	out := make([]Cell, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Census computes the Fig. 14 best-style census for one model over the
// stored corpus. ok is false when the store holds no cells for it.
func (s *Store) Census(model styles.Model) (CensusRow, bool) {
	best := s.bestCells(model)
	if len(best) == 0 {
		return CensusRow{Model: model}, false
	}
	var vertex, topo, dup, push, rw, nondet, data int
	for _, c := range best {
		cfg := c.Cfg
		if cfg.Iterate == styles.VertexBased {
			vertex++
		}
		if cfg.Drive == styles.TopologyDriven {
			topo++
		} else {
			data++
			if cfg.Drive == styles.DataDrivenDup {
				dup++
			}
		}
		if cfg.Flow == styles.Push {
			push++
		}
		if cfg.Update == styles.ReadWrite {
			rw++
		}
		if cfg.Det == styles.NonDeterministic {
			nondet++
		}
	}
	n := len(best)
	pct := func(x, of int) float64 {
		if of == 0 {
			return 0
		}
		return 100 * float64(x) / float64(of)
	}
	return CensusRow{
		Model:  model,
		N:      n,
		Vertex: pct(vertex, n),
		Topo:   pct(topo, n),
		Dup:    pct(dup, data),
		Push:   pct(push, n),
		RW:     pct(rw, n),
		NonDet: pct(nondet, n),
	}, true
}

// CensusHeader is the census table header line, shared with Fig. 14.
const CensusHeader = "model\tvertex%\ttopo%\tdup%\tpush%\trw%\tnondet%"

// Line renders the row in the Fig. 14 report format.
func (r CensusRow) Line() string {
	return fmt.Sprintf("%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f",
		r.Model, r.Vertex, r.Topo, r.Dup, r.Push, r.RW, r.NonDet)
}

// Best returns the highest-throughput stored cell for one (algorithm,
// model, input, device) group — the measured best config for that cell,
// the tuner's warm-start source and the /v1/best answer. Ties break to
// the lexicographically smaller variant name, like the census. ok is
// false when the store holds no cell for the group.
func (s *Store) Best(a styles.Algorithm, m styles.Model, input, device string) (Cell, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best Cell
	found := false
	for i := range s.cfg {
		c := s.cellAt(i)
		if c.Cfg.Algo != a || c.Cfg.Model != m || c.Input != input || c.Device != device {
			continue
		}
		if !found || c.Tput > best.Tput ||
			(c.Tput == best.Tput && c.Cfg.Name() < best.Cfg.Name()) {
			best = c
			found = true
		}
	}
	return best, found
}

// shapeDistance scores how alike two input shapes are on the properties
// the paper ties style performance to (§5.13): average degree, maximum
// degree, diameter, and size. Each term compares log-scale — a road
// graph at two scales is "nearer" than a road and a social graph of
// equal vertex count.
func shapeDistance(a, b graph.Stats) float64 {
	ld := func(x, y float64) float64 {
		if x < 1 {
			x = 1
		}
		if y < 1 {
			y = 1
		}
		d := math.Log2(x) - math.Log2(y)
		return d * d
	}
	return ld(a.AvgDegree, b.AvgDegree) +
		ld(float64(a.MaxDegree), float64(b.MaxDegree)) +
		ld(float64(a.Diameter), float64(b.Diameter)) +
		0.25*ld(float64(a.Vertices), float64(b.Vertices))
}

// BestForShape returns the measured best cells of (algorithm, model,
// device) groups whose input shape is nearest to shape, nearest first,
// at most k of them — the store-census warm start for tuning on an
// input the store has never seen. Groups are one per distinct input.
func (s *Store) BestForShape(a styles.Algorithm, m styles.Model, device string, shape graph.Stats, k int) []Cell {
	s.mu.RLock()
	inputs := map[string]bool{}
	for i := range s.cfg {
		if s.cfg[i].Algo == a && s.cfg[i].Model == m && s.device[i] == device {
			inputs[s.input[i]] = true
		}
	}
	s.mu.RUnlock()
	names := make([]string, 0, len(inputs))
	for in := range inputs {
		names = append(names, in)
	}
	sort.Strings(names)
	var best []Cell
	for _, in := range names {
		if c, ok := s.Best(a, m, in, device); ok {
			best = append(best, c)
		}
	}
	sort.SliceStable(best, func(i, j int) bool {
		di, dj := shapeDistance(best[i].Graph, shape), shapeDistance(best[j].Graph, shape)
		if di != dj {
			return di < dj
		}
		return best[i].Input < best[j].Input
	})
	if k >= 0 && len(best) > k {
		best = best[:k]
	}
	return best
}

// ComboCount pairs a variant name with how many (algorithm, input,
// device) groups it wins.
type ComboCount struct {
	Variant string
	Count   int
}

// BestComboCounts counts, per full style combination, how often it is
// the best performer for the model — the store's view of "which exact
// combinations win", beyond the per-dimension census. Sorted by count
// descending, then name.
func (s *Store) BestComboCounts(model styles.Model) []ComboCount {
	counts := make(map[string]int)
	for _, c := range s.bestCells(model) {
		counts[c.Cfg.Name()]++
	}
	out := make([]ComboCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, ComboCount{Variant: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}
