package harness

import (
	"sort"

	"indigo/internal/gen"
	"indigo/internal/stats"
	"indigo/internal/styles"
)

// classicOnly excludes the default-CudaAtomic variants, as the paper
// does for every result after §5.1 ("As the CudaAtomic codes are so
// slow, we exclude them from the following subsections").
func classicOnly(m Meas) bool { return m.Cfg.Atomics == styles.ClassicAtomic }

// and combines filters.
func and(fs ...func(Meas) bool) func(Meas) bool {
	return func(m Meas) bool {
		for _, f := range fs {
			if f != nil && !f(m) {
				return false
			}
		}
		return true
	}
}

func byModel(model styles.Model) func(Meas) bool {
	return func(m Meas) bool { return m.Cfg.Model == model }
}

func byAlgos(algos ...styles.Algorithm) func(Meas) bool {
	return func(m Meas) bool {
		for _, a := range algos {
			if m.Cfg.Algo == a {
				return true
			}
		}
		return false
	}
}

func byDevice(name string) func(Meas) bool {
	return func(m Meas) bool { return m.Device == name }
}

// ratioSection appends one "algo: boxen" line per algorithm with data.
func ratioSection(r *Report, label string, ratios map[styles.Algorithm][]float64) {
	r.Add("%s:", label)
	for _, a := range AllAlgorithms() {
		if xs, ok := ratios[a]; ok && len(xs) > 0 {
			r.Add("  %-4s %s", a.String(), stats.NewBoxen(xs).String())
		}
	}
}

// RatiosByAlgo is the figure primitive: pairwise ratios of dimension
// dim (value aIdx over bIdx) over the session's measurements matching
// the filter.
func (s *Session) RatiosByAlgo(dimKey string, aIdx, bIdx int, f func(Meas) bool) map[styles.Algorithm][]float64 {
	return Ratios(s.Select(f), styles.DimByKey(dimKey), aIdx, bIdx)
}

// Fig1 regenerates Figure 1: throughput ratios of Atomic over
// CudaAtomic per GPU. PR is absent (no float CudaAtomic).
func (s *Session) Fig1() *Report {
	algos := []styles.Algorithm{styles.CC, styles.MIS, styles.TC, styles.BFS, styles.SSSP}
	s.Collect(algos, []styles.Model{styles.CUDA})
	r := &Report{ID: "fig1", Title: "Atomic over CudaAtomic throughput ratios (per GPU)"}
	for _, dev := range []string{"rtx-sim", "titan-sim"} {
		ratios := s.RatiosByAlgo("atomics", int(styles.ClassicAtomic), int(styles.CudaAtomic),
			and(byModel(styles.CUDA), byDevice(dev), byAlgos(algos...)))
		ratioSection(r, dev, ratios)
	}
	return s.annotate(r)
}

// Fig2 regenerates Figure 2: vertex- over edge-based ratios for (a)
// CUDA, (b) the CPU models, and (c) the thread-granularity TC subset.
func (s *Session) Fig2() *Report {
	algos := AllAlgorithms()
	s.Collect(algos, []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "fig2", Title: "vertex-based over edge-based throughput ratios"}
	ratioSection(r, "CUDA", s.RatiosByAlgo("iterate", int(styles.VertexBased), int(styles.EdgeBased),
		and(classicOnly, byModel(styles.CUDA))))
	cpu := func(m Meas) bool { return m.Cfg.Model != styles.CUDA }
	ratioSection(r, "OpenMP+C++", s.RatiosByAlgo("iterate", int(styles.VertexBased), int(styles.EdgeBased), cpu))
	threadTC := func(m Meas) bool {
		return m.Cfg.Model == styles.CUDA && m.Cfg.Algo == styles.TC &&
			m.Cfg.Gran == styles.ThreadGran && classicOnly(m)
	}
	ratioSection(r, "thread-gran TC (CUDA)", s.RatiosByAlgo("iterate", int(styles.VertexBased), int(styles.EdgeBased), threadTC))
	return s.annotate(r)
}

// driveFig is the shared driver of Figures 3 and 4: topology-driven
// over data-driven (with or without duplicates), per model.
func (s *Session) driveFig(id, title string, dataIdx int, algos []styles.Algorithm) *Report {
	s.Collect(algos, []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: id, Title: title}
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		ratios := s.RatiosByAlgo("drive", int(styles.TopologyDriven), dataIdx,
			and(classicOnly, byModel(model), byAlgos(algos...)))
		ratioSection(r, model.String(), ratios)
	}
	return s.annotate(r)
}

// Fig3 regenerates Figure 3: topology-driven over data-driven with
// duplicates (CC, BFS, SSSP).
func (s *Session) Fig3() *Report {
	return s.driveFig("fig3", "topology-driven over data-driven (dup worklist)",
		int(styles.DataDrivenDup), []styles.Algorithm{styles.CC, styles.BFS, styles.SSSP})
}

// Fig4 regenerates Figure 4: topology-driven over data-driven without
// duplicates (CC, MIS, BFS, SSSP).
func (s *Session) Fig4() *Report {
	return s.driveFig("fig4", "topology-driven over data-driven (no-dup worklist)",
		int(styles.DataDrivenNoDup), []styles.Algorithm{styles.CC, styles.MIS, styles.BFS, styles.SSSP})
}

// Fig5 regenerates Figure 5: push over pull (CC, MIS, PR, BFS, SSSP).
func (s *Session) Fig5() *Report {
	algos := []styles.Algorithm{styles.CC, styles.MIS, styles.PR, styles.BFS, styles.SSSP}
	s.Collect(algos, []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "fig5", Title: "push over pull throughput ratios"}
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		ratios := s.RatiosByAlgo("flow", int(styles.Push), int(styles.Pull),
			and(classicOnly, byModel(model), byAlgos(algos...)))
		ratioSection(r, model.String(), ratios)
	}
	return s.annotate(r)
}

// Fig6 regenerates Figure 6: read-write over read-modify-write (CC,
// BFS, SSSP).
func (s *Session) Fig6() *Report {
	algos := []styles.Algorithm{styles.CC, styles.BFS, styles.SSSP}
	s.Collect(algos, []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "fig6", Title: "read-write over read-modify-write throughput ratios"}
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		ratios := s.RatiosByAlgo("update", int(styles.ReadWrite), int(styles.ReadModifyWrite),
			and(classicOnly, byModel(model), byAlgos(algos...)))
		ratioSection(r, model.String(), ratios)
	}
	return s.annotate(r)
}

// Fig7 regenerates Figure 7: deterministic over non-deterministic (CC,
// MIS, PR, BFS, SSSP).
func (s *Session) Fig7() *Report {
	algos := []styles.Algorithm{styles.CC, styles.MIS, styles.PR, styles.BFS, styles.SSSP}
	s.Collect(algos, []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "fig7", Title: "deterministic over non-deterministic throughput ratios"}
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		ratios := s.RatiosByAlgo("det", int(styles.Deterministic), int(styles.NonDeterministic),
			and(classicOnly, byModel(model), byAlgos(algos...)))
		ratioSection(r, model.String(), ratios)
	}
	return s.annotate(r)
}

// Fig8 regenerates Figure 8: persistent over non-persistent (CUDA).
func (s *Session) Fig8() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA})
	r := &Report{ID: "fig8", Title: "persistent over non-persistent throughput ratios (CUDA)"}
	ratios := s.RatiosByAlgo("persist", int(styles.Persistent), int(styles.NonPersistent),
		and(classicOnly, byModel(styles.CUDA)))
	ratioSection(r, "CUDA", ratios)
	return s.annotate(r)
}

// Fig12 regenerates Figure 12: default over dynamic scheduling (OMP).
func (s *Session) Fig12() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.OMP})
	r := &Report{ID: "fig12", Title: "default over dynamic scheduling throughput ratios (OpenMP)"}
	ratios := s.RatiosByAlgo("ompsched", int(styles.DefaultSched), int(styles.DynamicSched), byModel(styles.OMP))
	ratioSection(r, "OMP", ratios)
	return s.annotate(r)
}

// Fig13 regenerates Figure 13: blocked over cyclic scheduling (C++).
func (s *Session) Fig13() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CPP})
	r := &Report{ID: "fig13", Title: "blocked over cyclic scheduling throughput ratios (C++)"}
	ratios := s.RatiosByAlgo("cppsched", int(styles.BlockedSched), int(styles.CyclicSched), byModel(styles.CPP))
	ratioSection(r, "CPP", ratios)
	return s.annotate(r)
}

// tputSection renders a three-way style's throughput medians per
// algorithm.
func tputSection(r *Report, label string, dim *styles.Dim, byAlgo map[styles.Algorithm]map[int][]float64, cfgFor func(int) string) {
	r.Add("%s:", label)
	algos := make([]styles.Algorithm, 0, len(byAlgo))
	for a := range byAlgo {
		algos = append(algos, a)
	}
	sort.Slice(algos, func(i, j int) bool { return algos[i] < algos[j] })
	for _, a := range algos {
		for i := 0; i < dim.NumValues; i++ {
			if xs := byAlgo[a][i]; len(xs) > 0 {
				r.Add("  %-4s %-14s %s", a.String(), cfgFor(i), stats.NewBoxen(xs).String())
			}
		}
	}
}

// Fig9 regenerates Figure 9: thread/warp/block throughputs (GE/s) on
// the road map and social network inputs (RTX profile).
func (s *Session) Fig9() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA})
	r := &Report{ID: "fig9", Title: "thread/warp/block throughputs on road and social inputs (rtx-sim)"}
	dim := styles.DimByKey("gran")
	for _, in := range []gen.Input{gen.InputRoad, gen.InputSocial} {
		ms := s.Select(and(classicOnly, byModel(styles.CUDA), byDevice("rtx-sim"),
			func(m Meas) bool { return m.Input == in }))
		tputSection(r, in.String(), dim, Throughputs(ms, dim), func(i int) string { return styles.Gran(i).String() })
	}
	return s.annotate(r)
}

// Fig10 regenerates Figure 10: global-add/block-add/reduction-add
// throughputs on the GPUs (TC and PR), plus the pairwise ratios the
// pooled dots imply.
func (s *Session) Fig10() *Report {
	algos := []styles.Algorithm{styles.TC, styles.PR}
	s.Collect(algos, []styles.Model{styles.CUDA})
	r := &Report{ID: "fig10", Title: "GPU reduction-style throughputs (TC, PR)"}
	dim := styles.DimByKey("gpured")
	ms := s.Select(and(classicOnly, byModel(styles.CUDA), byAlgos(algos...)))
	tputSection(r, "CUDA (both GPUs)", dim, Throughputs(ms, dim), func(i int) string { return styles.GPURed(i).String() })
	ratioSection(r, "reduction-add over global-add (pairwise)",
		Ratios(ms, dim, int(styles.ReductionAdd), int(styles.GlobalAdd)))
	ratioSection(r, "reduction-add over block-add (pairwise)",
		Ratios(ms, dim, int(styles.ReductionAdd), int(styles.BlockAdd)))
	return s.annotate(r)
}

// Fig11 regenerates Figure 11: atomic/critical/clause reduction
// throughputs on the CPUs (TC and PR), plus pairwise ratios.
func (s *Session) Fig11() *Report {
	algos := []styles.Algorithm{styles.TC, styles.PR}
	s.Collect(algos, []styles.Model{styles.OMP, styles.CPP})
	r := &Report{ID: "fig11", Title: "CPU reduction-style throughputs (TC, PR)"}
	dim := styles.DimByKey("cpured")
	ms := s.Select(byAlgos(algos...))
	tputSection(r, "OMP+CPP", dim, Throughputs(ms, dim), func(i int) string { return styles.CPURed(i).String() })
	ratioSection(r, "clause-red over critical-red (pairwise)",
		Ratios(ms, dim, int(styles.ClauseRed), int(styles.CriticalRed)))
	ratioSection(r, "atomic-red over critical-red (pairwise)",
		Ratios(ms, dim, int(styles.AtomicRed), int(styles.CriticalRed)))
	return s.annotate(r)
}
