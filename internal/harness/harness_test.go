package harness

import (
	"strings"
	"testing"

	"indigo/internal/gen"
	"indigo/internal/stats"
	"indigo/internal/styles"
)

// TestRatiosPairing checks the pairing arithmetic on synthetic
// measurements: ratios must match only configs differing in the single
// dimension, per input and device.
func TestRatiosPairing(t *testing.T) {
	dim := styles.DimByKey("flow")
	push := styles.Config{Algo: styles.SSSP, Model: styles.CPP, Flow: styles.Push}
	pull := push
	pull.Flow = styles.Pull
	other := push
	other.Det = styles.Deterministic
	other.Update = styles.ReadModifyWrite
	ms := []Meas{
		{Cfg: push, Input: gen.InputRoad, Device: "cpu", Tput: 10},
		{Cfg: pull, Input: gen.InputRoad, Device: "cpu", Tput: 2},
		{Cfg: push, Input: gen.InputSocial, Device: "cpu", Tput: 8},
		{Cfg: pull, Input: gen.InputSocial, Device: "cpu", Tput: 4},
		{Cfg: other, Input: gen.InputRoad, Device: "cpu", Tput: 100}, // unpaired
	}
	got := Ratios(ms, dim, int(styles.Push), int(styles.Pull))
	rs := got[styles.SSSP]
	if len(rs) != 2 {
		t.Fatalf("got %d ratios, want 2: %v", len(rs), rs)
	}
	sum := rs[0] + rs[1]
	if sum != 7 { // 5 + 2
		t.Errorf("ratios %v, want {5, 2}", rs)
	}
}

func TestRatiosSeparatesDevices(t *testing.T) {
	dim := styles.DimByKey("atomics")
	a := styles.Config{Algo: styles.CC, Model: styles.CUDA}
	b := a
	b.Atomics = styles.CudaAtomic
	ms := []Meas{
		{Cfg: a, Input: 0, Device: "rtx-sim", Tput: 10},
		{Cfg: b, Input: 0, Device: "titan-sim", Tput: 1}, // different device: no pair
	}
	if got := Ratios(ms, dim, 0, 1); len(got[styles.CC]) != 0 {
		t.Fatalf("cross-device pairing happened: %v", got)
	}
}

func TestThroughputsGrouping(t *testing.T) {
	dim := styles.DimByKey("gran")
	mk := func(g styles.Gran, tput float64) Meas {
		return Meas{Cfg: styles.Config{Algo: styles.BFS, Model: styles.CUDA, Gran: g}, Tput: tput}
	}
	ms := []Meas{mk(styles.ThreadGran, 1), mk(styles.WarpGran, 2), mk(styles.WarpGran, 3)}
	got := Throughputs(ms, dim)
	if len(got[styles.BFS][int(styles.ThreadGran)]) != 1 || len(got[styles.BFS][int(styles.WarpGran)]) != 2 {
		t.Fatalf("grouping wrong: %v", got)
	}
}

// session is shared across the figure tests to avoid recollecting.
var shared *Session

func getSession(t *testing.T) *Session {
	t.Helper()
	if testing.Short() {
		t.Skip("figure regeneration skipped in -short mode")
	}
	if shared == nil {
		shared = NewSession(gen.Tiny, 8)
	}
	return shared
}

func TestFig1AtomicBeatsCudaAtomic(t *testing.T) {
	s := getSession(t)
	r := s.Fig1()
	if len(r.Lines) == 0 {
		t.Fatal("empty fig1")
	}
	// The paper's headline: Atomic is ~10x faster on the RTX-like GPU
	// and ~100x on the Titan-like GPU. Check the medians' direction and
	// the inter-device ordering on SSSP.
	ratios := s.RatiosByAlgo("atomics", int(styles.ClassicAtomic), int(styles.CudaAtomic),
		and(byModel(styles.CUDA), byDevice("rtx-sim"), byAlgos(styles.SSSP)))
	rtxMed := stats.Median(ratios[styles.SSSP])
	ratiosT := s.RatiosByAlgo("atomics", int(styles.ClassicAtomic), int(styles.CudaAtomic),
		and(byModel(styles.CUDA), byDevice("titan-sim"), byAlgos(styles.SSSP)))
	titanMed := stats.Median(ratiosT[styles.SSSP])
	if rtxMed < 2 {
		t.Errorf("rtx SSSP atomic/cudaatomic median = %v, want > 2", rtxMed)
	}
	if titanMed < 2*rtxMed {
		t.Errorf("titan median %v not well above rtx median %v", titanMed, rtxMed)
	}
	// TC's ratio should be the smallest (only one atomic add, §5.1).
	tcR := s.RatiosByAlgo("atomics", int(styles.ClassicAtomic), int(styles.CudaAtomic),
		and(byModel(styles.CUDA), byDevice("titan-sim"), byAlgos(styles.TC)))
	if tcMed := stats.Median(tcR[styles.TC]); !(tcMed < titanMed) {
		t.Errorf("TC median %v should be below SSSP median %v", tcMed, titanMed)
	}
}

func TestFig8PersistentNearOne(t *testing.T) {
	s := getSession(t)
	_ = s.Fig8()
	ratios := s.RatiosByAlgo("persist", int(styles.Persistent), int(styles.NonPersistent),
		and(classicOnly, byModel(styles.CUDA)))
	for a, xs := range ratios {
		med := stats.Median(xs)
		if med < 0.05 || med > 20 {
			t.Errorf("%s persistent/non-persistent median = %v, want near 1 (§5.7)", a, med)
		}
	}
}

func TestFig10ReductionAddFastest(t *testing.T) {
	s := getSession(t)
	_ = s.Fig10()
	dim := styles.DimByKey("gpured")
	ms := s.Select(and(classicOnly, byModel(styles.CUDA), byAlgos(styles.PR, styles.TC)))
	// Pairwise (other styles fixed): reduction-add beats global-add on
	// the median (§5.9); the magnitude is smaller than the paper's (see
	// EXPERIMENTS.md on the bandwidth-centric cost model).
	rg := Ratios(ms, dim, int(styles.ReductionAdd), int(styles.GlobalAdd))
	for _, a := range []styles.Algorithm{styles.PR, styles.TC} {
		if med := stats.Median(rg[a]); !(med > 1.0) {
			t.Errorf("%s reduction-add/global-add median = %v, want > 1 (§5.9)", a, med)
		}
	}
}

func TestFig11CriticalSlowest(t *testing.T) {
	s := getSession(t)
	_ = s.Fig11()
	dim := styles.DimByKey("cpured")
	ms := s.Select(byAlgos(styles.PR, styles.TC))
	// Pairwise: the clause reduction beats the critical section (§5.10).
	cc := Ratios(ms, dim, int(styles.ClauseRed), int(styles.CriticalRed))
	for _, a := range []styles.Algorithm{styles.PR, styles.TC} {
		if med := stats.Median(cc[a]); !(med > 1.0) {
			t.Errorf("%s clause/critical median = %v, want > 1 (§5.10)", a, med)
		}
	}
}

func TestTables(t *testing.T) {
	s := NewSession(gen.Tiny, 4)
	t2 := s.Table2()
	if len(t2.Lines) < 14 {
		t.Errorf("table2 has %d lines", len(t2.Lines))
	}
	// PR has no edge-based or data-driven variants (Table 2 row checks).
	if line := t2.Find("vertex-based"); !strings.Contains(line, "+,-") {
		t.Errorf("table2 vertex/edge row lacks a '+,-' cell: %q", line)
	}
	t3 := s.Table3()
	if line := t3.Find("grand total"); !strings.Contains(line, "850") {
		t.Errorf("table3 total wrong: %q", line)
	}
	t45 := s.Table45()
	if len(t45.Lines) != int(gen.NumInputs)+1 {
		t.Errorf("table45 has %d lines", len(t45.Lines))
	}
	if line := t45.Find("road"); !strings.Contains(line, "USA-road-d.NY") {
		t.Errorf("road row missing paper name: %q", line)
	}
}

func TestFig14And15Structure(t *testing.T) {
	s := getSession(t)
	f14 := s.Fig14()
	if len(f14.Lines) != 4 { // header + 3 models
		t.Fatalf("fig14 has %d lines: %v", len(f14.Lines), f14.Lines)
	}
	f15 := s.Fig15()
	if len(f15.Lines) != 18 { // header + 17 styles
		t.Fatalf("fig15 has %d lines", len(f15.Lines))
	}
	// Every style row must pair with its own opposite as "-" never with
	// itself (with-x-without-x is empty on the diagonal complement).
	if !strings.HasPrefix(f15.Lines[1], "vertex") {
		t.Errorf("fig15 first style row = %q", f15.Lines[1])
	}
}

func TestFig16Baselines(t *testing.T) {
	s := getSession(t)
	r := s.Fig16()
	if line := r.Find("N/A"); !strings.Contains(line, "mis") {
		t.Errorf("fig16 missing CUDA MIS N/A row: %q", line)
	}
	found := 0
	for _, l := range r.Lines {
		if strings.Contains(l, "geomean of geomeans") {
			found++
		}
	}
	if found != 3 {
		t.Errorf("fig16 has %d model geomean rows, want 3", found)
	}
}

func TestCorrelationReport(t *testing.T) {
	s := getSession(t)
	r := s.Correlation()
	if len(r.Lines) != 7 {
		t.Fatalf("correlation has %d lines", len(r.Lines))
	}
	for _, l := range r.Lines[:6] {
		if strings.Contains(l, "nan") {
			t.Errorf("correlation line has NaN: %q", l)
		}
	}
}

func TestSpreadShowsWrongStyleCost(t *testing.T) {
	s := getSession(t)
	r := s.Spread()
	if len(r.Lines) < 10 {
		t.Fatalf("spread has %d lines", len(r.Lines))
	}
	// The headline: even at tiny scale the wrong style costs well over
	// an order of magnitude somewhere.
	line := r.Find("overall worst-case spread")
	if line == "" {
		t.Fatal("no overall spread line")
	}
	// CUDA SSSP spreads must exceed 10x (CudaAtomic + bad styles).
	sssp := ""
	for _, l := range r.Lines {
		if strings.HasPrefix(l, "cuda\tsssp") {
			sssp = l
		}
	}
	if sssp == "" {
		t.Fatal("no cuda sssp spread line")
	}
}

func TestAblationMonotone(t *testing.T) {
	s := getSession(t)
	r := s.Ablation()
	if len(r.Lines) != 5 {
		t.Fatalf("ablation has %d lines", len(r.Lines))
	}
	// The factor=100 median must exceed the factor=1 median: the knob
	// drives the effect.
	first, last := r.Lines[0], r.Lines[len(r.Lines)-1]
	if !strings.Contains(first, "factor=1 ") || !strings.Contains(last, "factor=100") {
		t.Fatalf("unexpected ablation lines: %q %q", first, last)
	}
}

func TestAllReportsNonEmpty(t *testing.T) {
	s := getSession(t)
	for _, r := range s.All() {
		if len(r.Lines) == 0 {
			t.Errorf("report %s is empty", r.ID)
		}
		if r.ID == "" || r.Title == "" {
			t.Errorf("report missing identity: %+v", r)
		}
	}
}
