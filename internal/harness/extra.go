package harness

import (
	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/runner"
	"indigo/internal/stats"
	"indigo/internal/styles"
)

// Spread regenerates the paper's headline claim (§1, §6): the cost of
// choosing the wrong style — the best/worst throughput ratio per
// algorithm and model over all inputs, and the overall worst case
// ("the worst combinations of styles can cost 6 orders of magnitude").
func (s *Session) Spread() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "spread", Title: "best/worst style spread per algorithm and model (§1)"}
	r.Add("model\talgo\tmax spread (best tput / worst tput, worst input case)")
	overall := 1.0
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		for _, a := range AllAlgorithms() {
			type key struct {
				in  gen.Input
				dev string
			}
			best := make(map[key]float64)
			worst := make(map[key]float64)
			for _, m := range s.Select(and(byModel(model), byAlgos(a))) {
				k := key{m.Input, m.Device}
				// The negated form also drops NaN (a filtered non-measurement),
				// which would otherwise pass a <= comparison.
				if !(m.Tput > 0) {
					continue
				}
				if b, ok := best[k]; !ok || m.Tput > b {
					best[k] = m.Tput
				}
				if w, ok := worst[k]; !ok || m.Tput < w {
					worst[k] = m.Tput
				}
			}
			maxSpread := 0.0
			for k, b := range best {
				if w := worst[k]; w > 0 && b/w > maxSpread {
					maxSpread = b / w
				}
			}
			if maxSpread == 0 {
				continue
			}
			if maxSpread > overall {
				overall = maxSpread
			}
			r.Add("%s\t%s\t%s", model, a, ftoa(maxSpread))
		}
	}
	r.Add("overall worst-case spread\t\t%s", ftoa(overall))
	return s.annotate(r)
}

// Ablation sweeps the simulator's CudaAtomicFactor knob and reports the
// resulting Fig. 1 median (SSSP, one input), demonstrating that the
// simulated Atomic-vs-CudaAtomic gap is driven by the modeled seq_cst
// system-scope penalty and scales with it — the design choice DESIGN.md
// calls out for the two device profiles.
func (s *Session) Ablation() *Report {
	r := &Report{ID: "ablation", Title: "cost-model ablation: Fig.1 median vs CudaAtomicFactor (SSSP on rmat)"}
	g := s.Graphs[gen.InputRMAT]
	dim := styles.DimByKey("atomics")
	for _, factor := range []int64{1, 3, 10, 30, 100} {
		prof := gpusim.RTXSim()
		prof.CudaAtomicFactor = factor
		var ms []Meas
		for _, cfg := range styles.Enumerate(styles.SSSP, styles.CUDA) {
			d := gpusim.New(prof)
			_, tput, err := runner.TimeGPU(d, g, cfg, algo.Options{Threads: s.Opt.Threads})
			if err != nil {
				continue
			}
			ms = append(ms, Meas{cfg, gen.InputRMAT, prof.Name, tput})
		}
		ratios := Ratios(ms, dim, int(styles.ClassicAtomic), int(styles.CudaAtomic))
		r.Add("factor=%-4d median atomic/cudaatomic = %s (n=%d)",
			factor, ftoa(stats.Median(ratios[styles.SSSP])), len(ratios[styles.SSSP]))
	}
	return s.annotate(r)
}
