// Package harness drives the paper's evaluation (§4, §5): it runs the
// variant suite over the five study inputs on the two simulated GPUs
// and the CPU execution models, computes the pairwise throughput ratios
// "keeping the other styles fixed", and regenerates every table and
// figure of the paper as a text report.
//
// Collection goes through the internal/sweep supervisor: every run has
// a deadline, panics are recovered, results are verified against the
// serial references, and failures are recorded instead of aborting the
// sweep. Reports built over partial data carry a missing-cells footnote
// (see annotate) rather than silently computing ratios as if the sweep
// were complete.
package harness

import (
	"fmt"
	"os"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
	"indigo/internal/sweep"
)

// Meas is one measurement: a variant run on one input (and, for CUDA
// variants, one device), with its throughput in giga-edges per second.
type Meas struct {
	Cfg    styles.Config
	Input  gen.Input
	Device string // profile name for CUDA; "cpu" for OMP/CPP
	Tput   float64
}

// Session holds the generated inputs and the measurements collected so
// far; figure drivers collect lazily so a single session can serve any
// subset of the experiments without redundant runs.
type Session struct {
	Scale  gen.Scale
	Opt    algo.Options
	Graphs []*graph.Graph
	GStats []graph.Stats

	// Sweep configures the supervised execution layer. NewSession fills
	// scale-aware defaults (deadline, verification); override fields
	// before the first Collect — or call InitSweep to surface journal
	// errors eagerly.
	Sweep sweep.Options

	meas      []Meas
	failures  []sweep.Failure
	super     *sweep.Supervisor
	collected map[collKey]bool
	baseCache map[baseKey]float64
	// Verbose, when set, prints progress during collection.
	Verbose bool
}

type collKey struct {
	a styles.Algorithm
	m styles.Model
}

// NewSession generates the five study inputs at the given scale.
// threads <= 0 selects the machine's parallelism.
func NewSession(scale gen.Scale, threads int) *Session {
	s := &Session{
		Scale: scale,
		Opt:   algo.Options{Threads: threads},
		Sweep: sweep.Options{
			Timeout: sweep.DefaultTimeout(scale),
			Verify:  true,
		},
		Graphs:    gen.Suite(scale),
		collected: make(map[collKey]bool),
	}
	// Suite stats warm each graph's cached signature up front; past the
	// small-input cutoff this takes the parallel scan + level-synchronous
	// BFS path (DESIGN.md §12), and the cache makes every later
	// g.Stats() — report tables, store cell signatures — free.
	for _, g := range s.Graphs {
		s.GStats = append(s.GStats, graph.ComputeStats(g))
	}
	return s
}

// InitSweep creates the supervisor from s.Sweep. Callers configuring a
// journal should call it before the first Collect so open/parse errors
// surface as errors; otherwise Collect initializes it on demand.
func (s *Session) InitSweep() error {
	if s.super != nil {
		return fmt.Errorf("harness: sweep already initialized")
	}
	sup, err := sweep.New(s.Sweep)
	if err != nil {
		return err
	}
	s.super = sup
	return nil
}

// CloseSweep flushes and closes the supervisor's journal, if any.
func (s *Session) CloseSweep() error {
	if s.super == nil {
		return nil
	}
	return s.super.Close()
}

// supervisor returns the lazily initialized supervisor. Without a
// journal, sweep.New cannot fail; with one, use InitSweep first to
// handle errors instead of panicking here.
func (s *Session) supervisor() *sweep.Supervisor {
	if s.super == nil {
		if err := s.InitSweep(); err != nil {
			panic(fmt.Sprintf("harness: sweep init: %v (call InitSweep to handle this)", err))
		}
	}
	return s.super
}

// Collect ensures measurements exist for every (algorithm, model) pair
// requested: each variant runs once per input, and CUDA variants run on
// both device profiles (§4.3). Runs go through the sweep supervisor;
// failed runs contribute a Failure record instead of a measurement and
// never abort the collection.
func (s *Session) Collect(algos []styles.Algorithm, models []styles.Model) {
	var tasks []sweep.Task
	for _, m := range models {
		for _, a := range algos {
			key := collKey{a, m}
			if s.collected[key] {
				continue
			}
			s.collected[key] = true
			cfgs := styles.Enumerate(a, m)
			if s.Verbose {
				fmt.Printf("collecting %s/%s: %d variants x %d inputs\n", a, m, len(cfgs), len(s.Graphs))
			}
			for in := gen.Input(0); in < gen.NumInputs; in++ {
				if m == styles.CUDA {
					for _, prof := range gpusim.Profiles() {
						for _, cfg := range cfgs {
							tasks = append(tasks, sweep.Task{Cfg: cfg, Input: in, Device: prof.Name})
						}
					}
				} else {
					for _, cfg := range cfgs {
						tasks = append(tasks, sweep.Task{Cfg: cfg, Input: in, Device: sweep.DeviceCPU})
					}
				}
			}
		}
	}
	if len(tasks) == 0 {
		return
	}
	for _, o := range s.supervisor().Run(s.Graphs, s.Opt, tasks) {
		if o.Kind == sweep.OK {
			s.meas = append(s.meas, Meas{o.Cfg, o.Input, o.Device, o.Tput})
		} else {
			s.failures = append(s.failures, o.Failure())
			if s.Verbose {
				fmt.Fprintf(os.Stderr, "  FAIL %s: %s on %s (%s): %s\n",
					o.Kind, o.Cfg.Name(), o.Input, o.Device, o.Err)
			}
		}
	}
}

// Failures returns the classified failures of every collection so far.
func (s *Session) Failures() []sweep.Failure {
	return s.failures
}

// annotate appends a missing-cells footnote when any supervised run
// failed, so no report presents ratios over partial data as complete.
// Every figure/table driver returns through it.
func (s *Session) annotate(r *Report) *Report {
	if len(s.failures) == 0 {
		return r
	}
	counts := make(map[sweep.Kind]int)
	for _, f := range s.failures {
		counts[f.Kind]++
	}
	r.Add("missing cells: %d runs failed (%d timeout, %d panic, %d wrong-answer, %d error, %d quarantined)",
		len(s.failures), counts[sweep.Timeout], counts[sweep.Panic],
		counts[sweep.WrongAnswer], counts[sweep.Error], counts[sweep.Quarantined])
	return r
}

// Select returns the collected measurements matching the filter.
func (s *Session) Select(f func(Meas) bool) []Meas {
	var out []Meas
	for _, m := range s.meas {
		if f == nil || f(m) {
			out = append(out, m)
		}
	}
	return out
}

// AllAlgorithms lists the six problems in paper order.
func AllAlgorithms() []styles.Algorithm {
	return []styles.Algorithm{styles.CC, styles.MIS, styles.PR, styles.TC, styles.BFS, styles.SSSP}
}

// valueIndex returns which alternative of dim the config holds.
func valueIndex(dim *styles.Dim, cfg styles.Config) int {
	for i := 0; i < dim.NumValues; i++ {
		if dim.Set(cfg, i) == cfg {
			return i
		}
	}
	return -1
}

// Ratios pairs measurements that differ only in the given dimension and
// returns tput[aIdx]/tput[bIdx] per algorithm — the paper's ratio
// methodology (§5: "while keeping the other styles fixed"). Pairs with
// a missing or non-positive side (failed or filtered runs) drop out.
func Ratios(ms []Meas, dim *styles.Dim, aIdx, bIdx int) map[styles.Algorithm][]float64 {
	type pairKey struct {
		key    string
		input  gen.Input
		device string
	}
	groups := make(map[pairKey]map[int]float64)
	algoOf := make(map[pairKey]styles.Algorithm)
	for _, m := range ms {
		if !dim.Applies(m.Cfg) {
			continue
		}
		pk := pairKey{m.Cfg.KeyWithout(dim), m.Input, m.Device}
		g := groups[pk]
		if g == nil {
			g = make(map[int]float64)
			groups[pk] = g
			algoOf[pk] = m.Cfg.Algo
		}
		g[valueIndex(dim, m.Cfg)] = m.Tput
	}
	out := make(map[styles.Algorithm][]float64)
	for pk, g := range groups {
		a, okA := g[aIdx]
		b, okB := g[bIdx]
		if okA && okB && a > 0 && b > 0 {
			out[algoOf[pk]] = append(out[algoOf[pk]], a/b)
		}
	}
	return out
}

// Throughputs groups measured throughputs by the value of dim, per
// algorithm: used by the figures that plot raw throughputs of
// three-way styles (Figs. 9-11). Non-finite throughputs are filtered.
func Throughputs(ms []Meas, dim *styles.Dim) map[styles.Algorithm]map[int][]float64 {
	out := make(map[styles.Algorithm]map[int][]float64)
	for _, m := range ms {
		if !dim.Applies(m.Cfg) || !(m.Tput > 0) {
			continue
		}
		byVal := out[m.Cfg.Algo]
		if byVal == nil {
			byVal = make(map[int][]float64)
			out[m.Cfg.Algo] = byVal
		}
		i := valueIndex(dim, m.Cfg)
		byVal[i] = append(byVal[i], m.Tput)
	}
	return out
}
