// Package harness drives the paper's evaluation (§4, §5): it runs the
// variant suite over the five study inputs on the two simulated GPUs
// and the CPU execution models, computes the pairwise throughput ratios
// "keeping the other styles fixed", and regenerates every table and
// figure of the paper as a text report.
package harness

import (
	"fmt"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

// Meas is one measurement: a variant run on one input (and, for CUDA
// variants, one device), with its throughput in giga-edges per second.
type Meas struct {
	Cfg    styles.Config
	Input  gen.Input
	Device string // profile name for CUDA; "cpu" for OMP/CPP
	Tput   float64
}

// Session holds the generated inputs and the measurements collected so
// far; figure drivers collect lazily so a single session can serve any
// subset of the experiments without redundant runs.
type Session struct {
	Scale  gen.Scale
	Opt    algo.Options
	Graphs []*graph.Graph
	GStats []graph.Stats

	meas      []Meas
	collected map[collKey]bool
	baseCache map[baseKey]float64
	// Verbose, when set, prints progress during collection.
	Verbose bool
}

type collKey struct {
	a styles.Algorithm
	m styles.Model
}

// NewSession generates the five study inputs at the given scale.
// threads <= 0 selects the machine's parallelism.
func NewSession(scale gen.Scale, threads int) *Session {
	s := &Session{
		Scale:     scale,
		Opt:       algo.Options{Threads: threads},
		Graphs:    gen.Suite(scale),
		collected: make(map[collKey]bool),
	}
	for _, g := range s.Graphs {
		s.GStats = append(s.GStats, graph.ComputeStats(g))
	}
	return s
}

// Collect ensures measurements exist for every (algorithm, model) pair
// requested: each variant runs once per input, and CUDA variants run on
// both device profiles (§4.3).
func (s *Session) Collect(algos []styles.Algorithm, models []styles.Model) {
	for _, m := range models {
		for _, a := range algos {
			key := collKey{a, m}
			if s.collected[key] {
				continue
			}
			s.collected[key] = true
			cfgs := styles.Enumerate(a, m)
			if s.Verbose {
				fmt.Printf("collecting %s/%s: %d variants x %d inputs\n", a, m, len(cfgs), len(s.Graphs))
			}
			for in := gen.Input(0); in < gen.NumInputs; in++ {
				g := s.Graphs[in]
				if m == styles.CUDA {
					for _, prof := range gpusim.Profiles() {
						for _, cfg := range cfgs {
							d := gpusim.New(prof)
							_, tput := runner.TimeGPU(d, g, cfg, s.Opt)
							s.meas = append(s.meas, Meas{cfg, in, prof.Name, tput})
						}
					}
				} else {
					for _, cfg := range cfgs {
						_, tput := runner.TimeCPU(g, cfg, s.Opt)
						s.meas = append(s.meas, Meas{cfg, in, "cpu", tput})
					}
				}
			}
		}
	}
}

// Select returns the collected measurements matching the filter.
func (s *Session) Select(f func(Meas) bool) []Meas {
	var out []Meas
	for _, m := range s.meas {
		if f == nil || f(m) {
			out = append(out, m)
		}
	}
	return out
}

// AllAlgorithms lists the six problems in paper order.
func AllAlgorithms() []styles.Algorithm {
	return []styles.Algorithm{styles.CC, styles.MIS, styles.PR, styles.TC, styles.BFS, styles.SSSP}
}

// valueIndex returns which alternative of dim the config holds.
func valueIndex(dim *styles.Dim, cfg styles.Config) int {
	for i := 0; i < dim.NumValues; i++ {
		if dim.Set(cfg, i) == cfg {
			return i
		}
	}
	return -1
}

// Ratios pairs measurements that differ only in the given dimension and
// returns tput[aIdx]/tput[bIdx] per algorithm — the paper's ratio
// methodology (§5: "while keeping the other styles fixed").
func Ratios(ms []Meas, dim *styles.Dim, aIdx, bIdx int) map[styles.Algorithm][]float64 {
	type pairKey struct {
		key    string
		input  gen.Input
		device string
	}
	groups := make(map[pairKey]map[int]float64)
	algoOf := make(map[pairKey]styles.Algorithm)
	for _, m := range ms {
		if !dim.Applies(m.Cfg) {
			continue
		}
		pk := pairKey{m.Cfg.KeyWithout(dim), m.Input, m.Device}
		g := groups[pk]
		if g == nil {
			g = make(map[int]float64)
			groups[pk] = g
			algoOf[pk] = m.Cfg.Algo
		}
		g[valueIndex(dim, m.Cfg)] = m.Tput
	}
	out := make(map[styles.Algorithm][]float64)
	for pk, g := range groups {
		a, okA := g[aIdx]
		b, okB := g[bIdx]
		if okA && okB && a > 0 && b > 0 {
			out[algoOf[pk]] = append(out[algoOf[pk]], a/b)
		}
	}
	return out
}

// Throughputs groups measured throughputs by the value of dim, per
// algorithm: used by the figures that plot raw throughputs of
// three-way styles (Figs. 9-11).
func Throughputs(ms []Meas, dim *styles.Dim) map[styles.Algorithm]map[int][]float64 {
	out := make(map[styles.Algorithm]map[int][]float64)
	for _, m := range ms {
		if !dim.Applies(m.Cfg) {
			continue
		}
		byVal := out[m.Cfg.Algo]
		if byVal == nil {
			byVal = make(map[int][]float64)
			out[m.Cfg.Algo] = byVal
		}
		i := valueIndex(dim, m.Cfg)
		byVal[i] = append(byVal[i], m.Tput)
	}
	return out
}
