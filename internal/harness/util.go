package harness

import (
	"fmt"
	"strconv"
	"time"

	"indigo/internal/baseline"
	"indigo/internal/graph"
	"indigo/internal/runner"
	"indigo/internal/styles"
)

// graphStats aliases the stats record used by the correlation report.
type graphStats = graph.Stats

func itoa(x int) string { return strconv.Itoa(x) }

func ftoa(x float64) string {
	if x >= 100 || x < 0.01 {
		return fmt.Sprintf("%.1e", x)
	}
	return fmt.Sprintf("%.2f", x)
}

// timeCPUBaseline runs the Lonestar-style CPU baseline once and returns
// its throughput in giga-edges per second.
func timeCPUBaseline(a styles.Algorithm, g *graph.Graph, threads int) float64 {
	start := time.Now()
	switch a {
	case styles.BFS:
		baseline.BFSDirOpt(g, 0, threads, nil)
	case styles.SSSP:
		baseline.SSSPDelta(g, 0, threads, 0, nil)
	case styles.CC:
		baseline.CCJump(g, threads, nil)
	case styles.MIS:
		baseline.MISLuby(g, threads, 42, nil)
	case styles.PR:
		baseline.PROpt(g, threads, 0.85, 1e-4, g.N+8, nil)
	case styles.TC:
		baseline.TCOrient(g, threads, nil)
	default:
		return 0
	}
	return runner.Throughput(g, time.Since(start).Seconds())
}
