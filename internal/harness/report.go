package harness

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure as text.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// Add appends a formatted line.
func (r *Report) Add(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Find returns the first line containing substr, or "".
func (r *Report) Find(substr string) string {
	for _, l := range r.Lines {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}
