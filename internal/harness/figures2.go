package harness

import (
	"math"
	"strings"

	"indigo/internal/baseline"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/runner"
	"indigo/internal/stats"
	"indigo/internal/styles"
)

// Table2 regenerates Table 2: the style applicability matrix, derived
// from the enumeration itself (a style is included for an algorithm if
// any valid variant uses it).
func (s *Session) Table2() *Report {
	r := &Report{ID: "table2", Title: "included implementation styles (derived from the variant space)"}
	type row struct {
		name string
		dim  string
		vals []int
	}
	rows := []row{
		{"vertex-based, edge-based", "iterate", []int{0, 1}},
		{"topology-driven, data-driven", "drive", []int{0, 1}},
		{"dup in WL, no dup in WL", "drive", []int{1, 2}},
		{"push, pull", "flow", []int{0, 1}},
		{"read-write, read-modify-write", "update", []int{0, 1}},
		{"non-deterministic, deterministic", "det", []int{0, 1}},
		{"persistent, non-persistent", "persist", []int{1, 0}},
		{"thread, warp, block", "gran", []int{0, 1, 2}},
		{"atomic, cudaAtomic", "atomics", []int{0, 1}},
		{"global-, block-, reduction-add", "gpured", []int{0, 1, 2}},
		{"atomic-, critical-, clause-red", "cpured", []int{0, 1, 2}},
		{"default, dynamic sched", "ompsched", []int{0, 1}},
		{"blocked, cyclic", "cppsched", []int{0, 1}},
	}
	header := "style"
	for _, a := range AllAlgorithms() {
		header += "\t" + a.String()
	}
	r.Add("%s", header)
	for _, row := range rows {
		dim := styles.DimByKey(row.dim)
		line := row.name
		for _, a := range AllAlgorithms() {
			marks := make([]string, 0, len(row.vals))
			for _, v := range row.vals {
				found := false
				for _, m := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
					for _, cfg := range styles.Enumerate(a, m) {
						if dim.Applies(cfg) && valueIndex(dim, cfg) == v {
							found = true
							break
						}
					}
					if found {
						break
					}
				}
				if found {
					marks = append(marks, "+")
				} else {
					marks = append(marks, "-")
				}
			}
			line += "\t" + strings.Join(marks, ",")
		}
		r.Add("%s", line)
	}
	return s.annotate(r)
}

// Table3 regenerates Table 3: variant counts per model and algorithm.
func (s *Session) Table3() *Report {
	r := &Report{ID: "table3", Title: "number of code versions (32-bit data type)"}
	t := styles.CountTable()
	header := "model"
	for _, a := range AllAlgorithms() {
		header += "\t" + a.String()
	}
	r.Add("%s\ttotal", header)
	grand := 0
	for m := styles.Model(0); m < styles.NumModels; m++ {
		line := m.String()
		total := 0
		for _, a := range AllAlgorithms() {
			line += "\t" + itoa(t[m][a])
			total += t[m][a]
		}
		r.Add("%s\t%d", line, total)
		grand += total
	}
	r.Add("grand total\t%d (paper: 1106; see DESIGN.md divergences)", grand)
	return s.annotate(r)
}

// Table45 regenerates Tables 4 and 5: the generated inputs' shape
// signatures next to their paper counterparts.
func (s *Session) Table45() *Report {
	r := &Report{ID: "table4", Title: "graph and degree information (generated stand-ins)"}
	r.Add("name\tstands for\tvertices\tedges\tMB\tdavg\tdmax\td>=32%%\td>=512%%\tdiameter")
	for in := gen.Input(0); in < gen.NumInputs; in++ {
		st := s.GStats[in]
		r.Add("%s\t%s\t%d\t%d\t%.1f\t%.1f\t%d\t%.1f\t%.3f\t%d",
			st.Name, in.PaperName(), st.Vertices, st.Edges, st.SizeMB,
			st.AvgDegree, st.MaxDegree, st.PctDeg32, st.PctDeg512, st.Diameter)
	}
	return s.annotate(r)
}

// Correlation regenerates §5.13: Pearson correlation of throughput with
// the input graph properties, over every collected measurement.
func (s *Session) Correlation() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "correlation", Title: "throughput vs graph-property correlation (§5.13)"}
	props := []struct {
		name string
		val  func(st stats0) float64
	}{
		{"size-mb", func(st stats0) float64 { return st.SizeMB }},
		{"avg-degree", func(st stats0) float64 { return st.AvgDegree }},
		{"max-degree", func(st stats0) float64 { return float64(st.MaxDegree) }},
		{"pct-deg>=32", func(st stats0) float64 { return st.PctDeg32 }},
		{"pct-deg>=512", func(st stats0) float64 { return st.PctDeg512 }},
		{"diameter", func(st stats0) float64 { return float64(st.Diameter) }},
	}
	ms := s.Select(classicOnly)
	for _, p := range props {
		var xs, ys []float64
		for _, m := range ms {
			xs = append(xs, p.val(s.GStats[m.Input]))
			ys = append(ys, m.Tput)
		}
		r.Add("all codes vs %-13s r=%+.2f", p.name, stats.Pearson(xs, ys))
	}
	// The paper's strongest signal: warp-granularity throughput
	// correlates with average degree.
	var xs, ys []float64
	for _, m := range ms {
		if m.Cfg.Model == styles.CUDA && m.Cfg.Gran == styles.WarpGran {
			xs = append(xs, s.GStats[m.Input].AvgDegree)
			ys = append(ys, m.Tput)
		}
	}
	r.Add("warp-granularity vs avg-degree r=%+.2f", stats.Pearson(xs, ys))
	return s.annotate(r)
}

type stats0 = graphStats

// Fig14 regenerates Figure 14: the percentage of each style among the
// best-performing code versions, per programming model.
func (s *Session) Fig14() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "fig14", Title: "percentage of each style in best-performing codes"}
	r.Add("model\tvertex%%\ttopo%%\tdup%%\tpush%%\trw%%\tnondet%%")
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		best := s.bestConfigs(model)
		var vertex, topo, dup, push, rw, nondet, data int
		for _, cfg := range best {
			if cfg.Iterate == styles.VertexBased {
				vertex++
			}
			if cfg.Drive == styles.TopologyDriven {
				topo++
			} else {
				data++
				if cfg.Drive == styles.DataDrivenDup {
					dup++
				}
			}
			if cfg.Flow == styles.Push {
				push++
			}
			if cfg.Update == styles.ReadWrite {
				rw++
			}
			if cfg.Det == styles.NonDeterministic {
				nondet++
			}
		}
		n := len(best)
		if n == 0 {
			continue
		}
		pct := func(x, of int) float64 {
			if of == 0 {
				return 0
			}
			return 100 * float64(x) / float64(of)
		}
		r.Add("%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f", model,
			pct(vertex, n), pct(topo, n), pct(dup, data), pct(push, n), pct(rw, n), pct(nondet, n))
	}
	return s.annotate(r)
}

// bestConfigs returns the highest-throughput config per (algorithm,
// input, device) for the model.
func (s *Session) bestConfigs(model styles.Model) []styles.Config {
	type key struct {
		a   styles.Algorithm
		in  gen.Input
		dev string
	}
	best := make(map[key]Meas)
	for _, m := range s.Select(and(byModel(model), classicOnly)) {
		k := key{m.Cfg.Algo, m.Input, m.Device}
		// Ties break to the smaller variant name so the census does not
		// depend on measurement order (the store census matches).
		if cur, ok := best[k]; !ok || m.Tput > cur.Tput ||
			(m.Tput == cur.Tput && m.Cfg.Name() < cur.Cfg.Name()) {
			best[k] = m
		}
	}
	out := make([]styles.Config, 0, len(best))
	for _, m := range best {
		out = append(out, m.Cfg)
	}
	return out
}

// Fig15 regenerates Figure 15: the CUDA style-combination matrix — the
// ratio of median throughputs of codes having style x with style y over
// codes having x without y.
func (s *Session) Fig15() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA})
	r := &Report{ID: "fig15", Title: "CUDA style-combination median-ratio matrix (x=row with/without y=col)"}
	type tag struct {
		label   string
		has     func(styles.Config) bool
		applies func(styles.Config) bool
	}
	always := func(styles.Config) bool { return true }
	tags := []tag{
		{"vertex", func(c styles.Config) bool { return c.Iterate == styles.VertexBased }, always},
		{"edge", func(c styles.Config) bool { return c.Iterate == styles.EdgeBased }, always},
		{"topo", func(c styles.Config) bool { return c.Drive == styles.TopologyDriven }, always},
		{"data", func(c styles.Config) bool { return c.Drive.IsDataDriven() }, always},
		{"dup", func(c styles.Config) bool { return c.Drive == styles.DataDrivenDup }, func(c styles.Config) bool { return c.Drive.IsDataDriven() }},
		{"nodup", func(c styles.Config) bool { return c.Drive == styles.DataDrivenNoDup }, func(c styles.Config) bool { return c.Drive.IsDataDriven() }},
		{"push", func(c styles.Config) bool { return c.Flow == styles.Push }, always},
		{"pull", func(c styles.Config) bool { return c.Flow == styles.Pull }, always},
		{"rw", func(c styles.Config) bool { return c.Update == styles.ReadWrite }, always},
		{"rmw", func(c styles.Config) bool { return c.Update == styles.ReadModifyWrite }, always},
		{"nondet", func(c styles.Config) bool { return c.Det == styles.NonDeterministic }, always},
		{"det", func(c styles.Config) bool { return c.Det == styles.Deterministic }, always},
		{"thread", func(c styles.Config) bool { return c.Gran == styles.ThreadGran }, always},
		{"warp", func(c styles.Config) bool { return c.Gran == styles.WarpGran }, always},
		{"block", func(c styles.Config) bool { return c.Gran == styles.BlockGran }, always},
		{"npers", func(c styles.Config) bool { return c.Persist == styles.NonPersistent }, always},
		{"pers", func(c styles.Config) bool { return c.Persist == styles.Persistent }, always},
	}
	ms := s.Select(and(byModel(styles.CUDA), classicOnly))
	header := "x\\y"
	for _, t := range tags {
		header += "\t" + t.label
	}
	r.Add("%s", header)
	for _, x := range tags {
		line := x.label
		for _, y := range tags {
			var with, without []float64
			for _, m := range ms {
				if !x.has(m.Cfg) || !x.applies(m.Cfg) || !y.applies(m.Cfg) {
					continue
				}
				if y.has(m.Cfg) {
					with = append(with, m.Tput)
				} else {
					without = append(without, m.Tput)
				}
			}
			if len(with) == 0 || len(without) == 0 {
				line += "\t-"
			} else {
				line += "\t" + ftoa(stats.Median(with)/stats.Median(without))
			}
		}
		r.Add("%s", line)
	}
	return s.annotate(r)
}

// Fig16 regenerates Figure 16 and Table 6: speedups of the
// best-performing style over the optimized baseline codes, per model
// and algorithm, with per-algorithm geomeans.
func (s *Session) Fig16() *Report {
	s.Collect(AllAlgorithms(), []styles.Model{styles.CUDA, styles.OMP, styles.CPP})
	r := &Report{ID: "fig16", Title: "speedup of best-performing styles over optimized baselines (Table 6)"}
	r.Add("model\talgo\tspeedups per input\tgeomean")
	for _, model := range []styles.Model{styles.CUDA, styles.OMP, styles.CPP} {
		var modelGeos []float64
		for _, a := range AllAlgorithms() {
			if model == styles.CUDA && a == styles.MIS {
				r.Add("%s\t%s\tN/A (MIS not in Gardenia)", model, a)
				continue
			}
			cfg, ok := s.bestAverageConfig(a, model)
			if !ok {
				continue
			}
			var speeds []float64
			var cells []string
			for in := gen.Input(0); in < gen.NumInputs; in++ {
				ours := s.tputOf(cfg, in, model)
				base := s.baselineTput(a, model, in)
				if ours <= 0 || base <= 0 {
					continue
				}
				sp := ours / base
				speeds = append(speeds, sp)
				cells = append(cells, in.String()+"="+ftoa(sp))
			}
			if len(speeds) == 0 {
				continue
			}
			geo := stats.Geomean(speeds)
			modelGeos = append(modelGeos, geo)
			r.Add("%s\t%s\t%s\t%s", model, a, strings.Join(cells, " "), ftoa(geo))
		}
		if len(modelGeos) > 0 {
			r.Add("%s\tALL\tgeomean of geomeans\t%s", model, ftoa(stats.Geomean(modelGeos)))
		}
	}
	return s.annotate(r)
}

// bestAverageConfig returns the config with the highest geomean
// throughput across inputs for the (algorithm, model), the paper's
// "best-performing style" selection for §5.17.
func (s *Session) bestAverageConfig(a styles.Algorithm, model styles.Model) (styles.Config, bool) {
	sums := make(map[styles.Config][]float64)
	for _, m := range s.Select(and(byModel(model), classicOnly, byAlgos(a))) {
		sums[m.Cfg] = append(sums[m.Cfg], m.Tput)
	}
	var best styles.Config
	bestGeo := math.Inf(-1)
	found := false
	for cfg, ts := range sums {
		if g := stats.Geomean(ts); !math.IsNaN(g) && g > bestGeo {
			best, bestGeo, found = cfg, g, true
		}
	}
	return best, found
}

// tputOf averages the measured throughput of cfg on the input (over
// devices for CUDA).
func (s *Session) tputOf(cfg styles.Config, in gen.Input, model styles.Model) float64 {
	var ts []float64
	for _, m := range s.Select(func(m Meas) bool { return m.Cfg == cfg && m.Input == in }) {
		ts = append(ts, m.Tput)
	}
	if len(ts) == 0 {
		return 0
	}
	return stats.Geomean(ts)
}

// baselineTput measures the optimized baseline for (algorithm, model)
// on the input, caching per session.
func (s *Session) baselineTput(a styles.Algorithm, model styles.Model, in gen.Input) float64 {
	if s.baseCache == nil {
		s.baseCache = make(map[baseKey]float64)
	}
	onGPU := model == styles.CUDA
	k := baseKey{a, onGPU, in}
	if t, ok := s.baseCache[k]; ok {
		return t
	}
	g := s.Graphs[in]
	threads := s.Opt.Defaults(g.N).Threads
	var tput float64
	if onGPU {
		// Geomean over both device profiles, like the variant side.
		var ts []float64
		for _, prof := range gpusim.Profiles() {
			d := gpusim.New(prof)
			var st gpusim.Stats
			switch a {
			case styles.BFS:
				_, st = baseline.GPUBFS(d, g, 0)
			case styles.SSSP:
				_, st = baseline.GPUSSSP(d, g, 0)
			case styles.CC:
				_, st = baseline.GPUCC(d, g)
			case styles.PR:
				_, _, st = baseline.GPUPR(d, g, 0.85, 1e-4, g.N+8)
			case styles.TC:
				_, st = baseline.GPUTC(d, g)
			default:
				s.baseCache[k] = 0
				return 0
			}
			ts = append(ts, runner.Throughput(g, st.Seconds(prof)))
		}
		tput = stats.Geomean(ts)
	} else {
		tput = timeCPUBaseline(a, g, threads)
	}
	s.baseCache[k] = tput
	return tput
}

type baseKey struct {
	a     styles.Algorithm
	onGPU bool
	in    gen.Input
}

// All regenerates every table and figure in paper order, plus the
// spread headline and the cost-model ablation.
func (s *Session) All() []*Report {
	return []*Report{
		s.Table2(), s.Table3(), s.Table45(),
		s.Fig1(), s.Fig2(), s.Fig3(), s.Fig4(), s.Fig5(), s.Fig6(), s.Fig7(),
		s.Fig8(), s.Fig9(), s.Fig10(), s.Fig11(), s.Fig12(), s.Fig13(),
		s.Correlation(), s.Fig14(), s.Fig15(), s.Fig16(),
		s.Spread(), s.Ablation(),
	}
}
