package harness

import (
	"reflect"
	"testing"

	"indigo/internal/gen"
	"indigo/internal/store"
	"indigo/internal/styles"
)

// TestAttachStoreCollectsCells runs a real collection with a store
// attached and checks every successful measurement became a cell
// carrying the input's shape signature.
func TestAttachStoreCollectsCells(t *testing.T) {
	s := NewSession(gen.Tiny, 2)
	st := store.NewMem()
	s.AttachStore(st)
	s.Collect([]styles.Algorithm{styles.BFS}, []styles.Model{styles.CPP})

	ms := s.Select(func(Meas) bool { return true })
	if len(ms) == 0 {
		t.Fatal("collection produced no measurements")
	}
	if st.Len() != len(ms) {
		t.Fatalf("store holds %d cells, session holds %d measurements", st.Len(), len(ms))
	}
	for _, c := range st.Cells() {
		if c.Tput <= 0 {
			t.Errorf("cell %s has non-positive throughput %v", c.Key(), c.Tput)
		}
		want := s.GStats[gen.InputRoad]
		if c.Input == "road" && !reflect.DeepEqual(c.Graph, want) {
			t.Errorf("cell %s signature %+v, want %+v", c.Key(), c.Graph, want)
		}
	}
}

// TestLoadStoreSeedsSession checks a second session can rebuild its
// measurements from the store without re-running anything, and that the
// two sessions agree on the aggregates.
func TestLoadStoreSeedsSession(t *testing.T) {
	s1 := NewSession(gen.Tiny, 2)
	st := store.NewMem()
	s1.AttachStore(st)
	s1.Collect([]styles.Algorithm{styles.BFS}, []styles.Model{styles.CPP})
	ms1 := s1.Select(func(Meas) bool { return true })

	s2 := NewSession(gen.Tiny, 2)
	n := s2.LoadStore(st)
	if n != st.Len() {
		t.Fatalf("LoadStore loaded %d, store holds %d", n, st.Len())
	}
	// The pair is marked collected: a Collect for it must not add runs.
	s2.Collect([]styles.Algorithm{styles.BFS}, []styles.Model{styles.CPP})
	ms2 := s2.Select(func(Meas) bool { return true })
	if len(ms2) != n {
		t.Fatalf("Collect after LoadStore re-ran: %d measurements, want %d", len(ms2), n)
	}

	dim := styles.DimByKey("flow")
	r1 := Ratios(ms1, dim, int(styles.Push), int(styles.Pull))
	r2 := Ratios(ms2, dim, int(styles.Push), int(styles.Pull))
	for a, xs := range r1 {
		if len(xs) != len(r2[a]) {
			t.Fatalf("ratio counts differ for %s: %d vs %d", a, len(xs), len(r2[a]))
		}
	}
}

// TestLoadStoreSkipsUnknownInputs pins the tolerance contract: cells
// naming inputs outside the generated suite are skipped, not mangled.
func TestLoadStoreSkipsUnknownInputs(t *testing.T) {
	st := store.NewMem()
	cfg := styles.Enumerate(styles.BFS, styles.CPP)[0]
	if err := st.Append(
		store.Cell{Cfg: cfg, Input: "road", Device: "cpu", Tput: 1},
		store.Cell{Cfg: cfg, Input: "not-a-suite-input", Device: "cpu", Tput: 2},
	); err != nil {
		t.Fatal(err)
	}
	s := NewSession(gen.Tiny, 2)
	if n := s.LoadStore(st); n != 1 {
		t.Fatalf("LoadStore loaded %d cells, want 1 (unknown input skipped)", n)
	}
}
