package harness

import (
	"strings"
	"testing"
	"time"

	"indigo/internal/gen"
	"indigo/internal/par"
	"indigo/internal/styles"
	"indigo/internal/sweep"
)

// TestCollectDegradesGracefully stalls every worker so each supervised
// run times out, and checks the session's graceful degradation: Collect
// survives with zero measurements, failures are recorded, and reports
// carry the missing-cells footnote instead of presenting partial data
// as complete.
func TestCollectDegradesGracefully(t *testing.T) {
	defer par.SetChaos(nil)
	s := NewSession(gen.Tiny, 2)
	s.Sweep.Timeout = 25 * time.Millisecond
	s.Sweep.QuarantineAfter = 1

	stall := make(chan struct{})
	defer close(stall) // release the abandoned runs' workers
	par.SetChaos(&par.Chaos{Stall: stall})
	s.Collect([]styles.Algorithm{styles.BFS}, []styles.Model{styles.CPP})
	par.SetChaos(nil)

	if got := s.Select(nil); len(got) != 0 {
		t.Errorf("stalled collection produced %d measurements, want 0", len(got))
	}
	fails := s.Failures()
	if len(fails) == 0 {
		t.Fatal("stalled collection recorded no failures")
	}
	kinds := make(map[sweep.Kind]int)
	for _, f := range fails {
		kinds[f.Kind]++
	}
	if kinds[sweep.Timeout] == 0 {
		t.Errorf("no timeouts among %d failures: %v", len(fails), kinds)
	}
	// QuarantineAfter=1 quarantines each variant after its first timed-out
	// input, so the remaining inputs must be skipped, not run.
	if kinds[sweep.Quarantined] == 0 {
		t.Errorf("no quarantined runs among %d failures: %v", len(fails), kinds)
	}

	// Every report driver returns through annotate; Table2 computes its
	// body from the enumeration alone, so the footnote is the only part
	// that depends on the failed collection.
	r := s.Table2()
	if !strings.Contains(r.String(), "missing cells") {
		t.Errorf("report over partial data lacks the missing-cells footnote:\n%s", r)
	}
}

// TestAnnotateCleanSessionAddsNothing: the footnote must not appear when
// every run succeeded (the seed's report tests depend on byte-for-byte
// stable output).
func TestAnnotateCleanSessionAddsNothing(t *testing.T) {
	s := NewSession(gen.Tiny, 2)
	r := s.Table3()
	if strings.Contains(r.String(), "missing cells") {
		t.Errorf("clean session annotated a report:\n%s", r)
	}
}
