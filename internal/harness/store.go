package harness

import (
	"fmt"
	"os"
	"time"

	"indigo/internal/gen"
	"indigo/internal/store"
	"indigo/internal/sweep"
)

// AttachStore subscribes st to this session's sweeps: every successful
// supervised run (including journal replays on resume) is appended as a
// store cell carrying the input's shape signature. The store dedups by
// (variant, input, device), so replays are idempotent. Call before the
// first Collect; any previously set sweep observer keeps firing.
func (s *Session) AttachStore(st *store.Store) {
	prev := s.Sweep.Observer
	s.Sweep.Observer = func(o sweep.Outcome) {
		if prev != nil {
			prev(o)
		}
		if o.Kind != sweep.OK {
			return
		}
		err := st.Append(store.Cell{
			Cfg:       o.Cfg,
			Input:     o.Input.String(),
			Device:    o.Device,
			Graph:     s.GStats[o.Input],
			Tput:      o.Tput,
			Attempts:  o.Attempts,
			ElapsedMS: float64(o.Elapsed) / float64(time.Millisecond),

			SimCycles:       o.SimCycles,
			SimInstructions: o.SimInstructions,
			SimTransactions: o.SimTransactions,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "harness: store append failed: %v\n", err)
		}
	}
}

// LoadStore seeds the session's measurements from a results store, so
// reports build from the persistent corpus instead of fresh runs. Every
// (algorithm, model) pair the store covers is marked collected: the
// store is trusted as the measurement source for those pairs, and cells
// it lacks surface as missing data in reports rather than triggering
// re-runs. Cells naming inputs outside the generated suite are skipped.
// Call on a fresh session, before any Collect. Returns the number of
// measurements loaded.
func (s *Session) LoadStore(st *store.Store) int {
	byName := make(map[string]gen.Input, int(gen.NumInputs))
	for in := gen.Input(0); in < gen.NumInputs; in++ {
		byName[in.String()] = in
	}
	n := 0
	for _, c := range st.Cells() {
		in, ok := byName[c.Input]
		if !ok {
			continue
		}
		s.meas = append(s.meas, Meas{Cfg: c.Cfg, Input: in, Device: c.Device, Tput: c.Tput})
		s.collected[collKey{c.Cfg.Algo, c.Cfg.Model}] = true
		n++
	}
	return n
}
