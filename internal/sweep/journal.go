package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"indigo/internal/gen"
	"indigo/internal/styles"
)

// JournalVersion is the journal record schema version. Version history:
//
//	0 — the unversioned original (no "v" field)
//	1 — identical fields plus the explicit "v" marker
//	2 — adds "reclaim" ("cancel" | "abandon") and "cancel_ns" to timeout
//	    records, distinguishing cooperatively canceled cells (safe to
//	    replay on resume) from abandoned ones (poisoned runtime; re-run)
//	3 — adds "sim_cycles", "sim_instructions" and "sim_transactions" to
//	    successful GPU records: the simulator's deterministic cost-model
//	    outputs, exact for a given (kernel, graph, profile) triple
//
// Readers accept every version they know (0–3 parse identically; the
// newer fields are simply absent from older records) and reject records
// from the future, so the journal schema and the store's binary codec
// can evolve independently without a new writer silently feeding
// garbage to an old resume or import.
const JournalVersion = 3

// Record is the JSONL journal form of one supervised run. Throughput is
// recorded only for successful runs (failed runs have no measurement,
// and NaN is not representable in JSON).
type Record struct {
	V         int     `json:"v"`
	Variant   string  `json:"variant"`
	Input     string  `json:"input"`
	Device    string  `json:"device"`
	Kind      string  `json:"kind"`
	Tput      float64 `json:"tput,omitempty"`
	Err       string  `json:"err,omitempty"`
	Attempts  int     `json:"attempts"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Reclaim and CancelNS qualify timeout records (schema v2): how the
	// run's resources were recovered (ReclaimCancel/ReclaimAbandon) and,
	// for cancels, the deadline-to-return latency in nanoseconds.
	Reclaim  string `json:"reclaim,omitempty"`
	CancelNS int64  `json:"cancel_ns,omitempty"`
	// Simulated cost counters (schema v3), recorded for successful GPU
	// cells only. Deterministic: identical across re-runs of the cell.
	SimCycles       int64 `json:"sim_cycles,omitempty"`
	SimInstructions int64 `json:"sim_instructions,omitempty"`
	SimTransactions int64 `json:"sim_transactions,omitempty"`
}

// journal appends one Record per completed run to a JSONL file. Appends
// are line-atomic from the supervisor's point of view (guarded by mu),
// so a sweep killed mid-write corrupts at most the final line — which
// ReadJournal tolerates.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	// A sweep killed mid-write leaves a torn final line. Appending right
	// after it would corrupt the next record too, so terminate the torn
	// line first: it then costs one skipped line on read, nothing more.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("sweep: open journal: %w", err)
			}
		}
	}
	return &journal{f: f}, nil
}

func (j *journal) append(o Outcome) error {
	rec := Record{
		V:         JournalVersion,
		Variant:   o.Cfg.Name(),
		Input:     o.Input.String(),
		Device:    o.Device,
		Kind:      o.Kind.String(),
		Err:       o.Err,
		Attempts:  o.Attempts,
		ElapsedMS: float64(o.Elapsed) / float64(time.Millisecond),
		Reclaim:   o.Reclaim,
		CancelNS:  o.CancelNS,
	}
	if o.Kind == OK {
		rec.Tput = o.Tput
		rec.SimCycles = o.SimCycles
		rec.SimInstructions = o.SimInstructions
		rec.SimTransactions = o.SimTransactions
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(append(line, '\n'))
	return err
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads the outcomes recorded in a JSONL journal, keyed for
// resume. Malformed lines (e.g. the torn final line of a killed sweep)
// and records naming unknown variants or inputs are skipped rather than
// failing the whole resume. A missing file is an empty journal.
func ReadJournal(path string) (map[string]Outcome, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]Outcome{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: read journal: %w", err)
	}
	defer f.Close()

	byName := make(map[string]styles.Config)
	for _, cfg := range styles.EnumerateAll() {
		byName[cfg.Name()] = cfg
	}
	inputs := make(map[string]gen.Input)
	for in := gen.Input(0); in < gen.NumInputs; in++ {
		inputs[in.String()] = in
	}

	out := make(map[string]Outcome)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		var rec Record
		if json.Unmarshal(sc.Bytes(), &rec) != nil {
			continue
		}
		if rec.V > JournalVersion {
			// A future writer produced this journal. Its fields may mean
			// something else now; refusing beats resuming over garbage.
			return nil, fmt.Errorf("sweep: read journal: line %d has schema version %d, this build reads <= %d",
				line, rec.V, JournalVersion)
		}
		cfg, okV := byName[rec.Variant]
		in, okI := inputs[rec.Input]
		kind, okK := parseKind(rec.Kind)
		if !okV || !okI || !okK {
			continue
		}
		o := Outcome{
			Task:     Task{Cfg: cfg, Input: in, Device: rec.Device},
			Kind:     kind,
			Tput:     rec.Tput,
			Err:      rec.Err,
			Attempts: rec.Attempts,
			Elapsed:  time.Duration(rec.ElapsedMS * float64(time.Millisecond)),
			Reclaim:  rec.Reclaim,
			CancelNS: rec.CancelNS,

			SimCycles:       rec.SimCycles,
			SimInstructions: rec.SimInstructions,
			SimTransactions: rec.SimTransactions,
		}
		if kind == Timeout && o.Reclaim == "" {
			// Pre-v2 timeouts were always abandonments (cancellation did
			// not exist yet), so resume treats them as poisoned and re-runs.
			o.Reclaim = ReclaimAbandon
		}
		out[o.Key()] = o
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: read journal: %w", err)
	}
	return out, nil
}
