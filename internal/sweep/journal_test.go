package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"indigo/internal/algo"
	"indigo/internal/styles"
)

// writeJournalLines writes raw lines as a JSONL journal file.
func writeJournalLines(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadJournalSchemaVersions(t *testing.T) {
	variant := styles.Enumerate(styles.BFS, styles.CPP)[0].Name()
	record := func(v int) string {
		return fmt.Sprintf(`{"v":%d,"variant":%q,"input":"grid2d","device":"cpu","kind":"ok","tput":1.5,"attempts":1,"elapsed_ms":10}`,
			v, variant)
	}
	legacy := fmt.Sprintf(`{"variant":%q,"input":"grid2d","device":"cpu","kind":"ok","tput":1.5,"attempts":1,"elapsed_ms":10}`,
		variant)

	t.Run("current and legacy accepted", func(t *testing.T) {
		path := writeJournalLines(t, record(JournalVersion), legacy)
		out, err := ReadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 { // same key, last write wins
			t.Fatalf("got %d outcomes, want 1", len(out))
		}
	})

	t.Run("future version rejected", func(t *testing.T) {
		path := writeJournalLines(t, record(JournalVersion), record(JournalVersion+1))
		_, err := ReadJournal(path)
		if err == nil {
			t.Fatal("want error for future schema version")
		}
		if !strings.Contains(err.Error(), "line 2") ||
			!strings.Contains(err.Error(), fmt.Sprint(JournalVersion+1)) {
			t.Fatalf("error %q does not name the line and version", err)
		}
	})
}

// TestJournalWritesCurrentVersion pins that the writer stamps every
// record with JournalVersion, so a mixed-build journal is detectable.
func TestJournalWritesCurrentVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	gs := testGraphs()
	cfg := styles.Enumerate(styles.BFS, styles.CPP)[0]

	sup, err := New(Options{Journal: path, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run(gs, algo.Options{Threads: 2}, []Task{{Cfg: cfg, Input: 0, Device: DeviceCPU}})
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf(`"v":%d`, JournalVersion); !strings.Contains(string(data), want) {
		t.Fatalf("journal %q does not carry %s", data, want)
	}
}

// TestObserver pins the Options.Observer contract: every completed
// outcome is delivered (including journaled failures), concurrently
// with other workers, after the outcome is final.
func TestObserver(t *testing.T) {
	gs := testGraphs()
	cfgs := styles.Enumerate(styles.BFS, styles.CPP)
	tasks := []Task{
		{Cfg: cfgs[0], Input: 0, Device: DeviceCPU},
		{Cfg: cfgs[1], Input: 0, Device: "no-such-device"}, // fails
	}

	var mu sync.Mutex
	seen := make(map[string]Kind)
	sup, err := New(Options{Verify: true, Observer: func(o Outcome) {
		mu.Lock()
		defer mu.Unlock()
		seen[o.Key()] = o.Kind
	}})
	if err != nil {
		t.Fatal(err)
	}
	sup.Run(gs, algo.Options{Threads: 2}, tasks)
	if err := sup.Close(); err != nil {
		t.Fatal(err)
	}

	if len(seen) != 2 {
		t.Fatalf("observer saw %d outcomes, want 2: %v", len(seen), seen)
	}
	if seen[tasks[0].Key()] != OK {
		t.Errorf("task 0 observed as %s, want ok", seen[tasks[0].Key()])
	}
	if seen[tasks[1].Key()] != Error {
		t.Errorf("task 1 observed as %s, want error", seen[tasks[1].Key()])
	}
}
