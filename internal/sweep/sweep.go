// Package sweep is the fault-tolerant supervisor for large variant
// sweeps. The paper's methodology stands on running every meaningful
// style combination to completion and verifying each result against a
// serial reference (§4.1, §4.5) — which makes a 1106-variant study only
// as robust as its most broken variant family. The supervisor wraps the
// runner behind a worker pool with per-run deadlines, panic isolation,
// bounded retry with backoff, quarantine of repeat offenders, result
// verification, and a JSONL journal that lets an interrupted sweep
// resume where it left off instead of starting over.
//
// Failure taxonomy (see DESIGN.md): a run either produces a verified
// measurement (OK) or a structured Failure classified as Timeout (no
// result within the deadline), Panic (the variant crashed and was
// recovered), WrongAnswer (the result disagrees with the serial
// reference), Error (the runner returned a dispatch error), or
// Quarantined (skipped because the variant already failed repeatedly).
package sweep

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/runner"
	"indigo/internal/scratch"
	"indigo/internal/styles"
	"indigo/internal/trace"
	"indigo/internal/verify"
)

// DeviceCPU is the Task.Device value for OMP/CPP variants; CUDA tasks
// name a gpusim profile instead.
const DeviceCPU = "cpu"

// Kind classifies how a supervised run ended.
type Kind int

const (
	// OK: the run completed (and verified, when enabled) in time.
	OK Kind = iota
	// Timeout: the run missed its per-run deadline. Almost always the
	// guard token stopped it cooperatively and the worker pool was
	// reclaimed intact (Outcome.Reclaim == ReclaimCancel); a run that
	// never reached a checkpoint within the grace window was abandoned
	// and its pool replaced (ReclaimAbandon).
	Timeout
	// Panic: the variant panicked and the supervisor recovered it.
	Panic
	// WrongAnswer: the result failed the serial-reference check.
	WrongAnswer
	// Error: the runner returned an error (e.g. a dispatch mismatch).
	Error
	// Quarantined: skipped without running because the variant already
	// exhausted its failure budget on earlier tasks.
	Quarantined
)

func (k Kind) String() string {
	switch k {
	case OK:
		return "ok"
	case Timeout:
		return "timeout"
	case Panic:
		return "panic"
	case WrongAnswer:
		return "wrong-answer"
	case Error:
		return "error"
	case Quarantined:
		return "quarantined"
	}
	return "unknown"
}

func parseKind(s string) (Kind, bool) {
	for k := OK; k <= Quarantined; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return OK, false
}

// Task identifies one supervised run: a variant on one input, on one
// device ("cpu" or a gpusim profile name).
type Task struct {
	Cfg    styles.Config
	Input  gen.Input
	Device string
}

// Key is the task's stable journal identity.
func (t Task) Key() string {
	return t.Cfg.Name() + "|" + t.Input.String() + "|" + t.Device
}

// How a timed-out run's resources were recovered (Outcome.Reclaim).
const (
	// ReclaimCancel: the run observed its tripped guard token at a
	// checkpoint and returned cooperatively; the worker pool and arena
	// were reclaimed intact. The cell's partial work is simply lost —
	// nothing is poisoned, and resume may re-run it safely.
	ReclaimCancel = "cancel"
	// ReclaimAbandon: the run never reached a checkpoint within the
	// grace window (a wedged worker, a stall in foreign code); its pool
	// was closed and replaced and its arena retired. The runtime that
	// produced this record was poisoned, so resume re-runs the cell
	// rather than trusting the replay.
	ReclaimAbandon = "abandon"
)

// Outcome is the supervisor's record of one task: either a measurement
// (Kind == OK) or a classified failure.
type Outcome struct {
	Task
	Kind     Kind
	Tput     float64 // giga-edges per second; valid only when Kind == OK
	Err      string
	Attempts int
	Elapsed  time.Duration
	// Reclaim records how a Timeout's resources were recovered:
	// ReclaimCancel or ReclaimAbandon. Empty for every other kind.
	Reclaim string
	// CancelNS is the reclaim latency of a cooperative cancel: the time
	// from the deadline tripping the token to the run returning,
	// nanoseconds. Zero for abandons (there is no return to measure).
	CancelNS int64
	// Resumed marks outcomes replayed from the journal rather than run.
	Resumed bool
	// SimCycles, SimInstructions, and SimTransactions are the simulated
	// device counters of a successful GPU cell (zero for CPU cells and
	// failures). The simulator's sharded cost model makes them
	// deterministic — a pure function of (kernel, graph, profile) — so
	// they are exact, cacheable ground truth.
	SimCycles       int64
	SimInstructions int64
	SimTransactions int64
}

// Failure is the failure view of an outcome, the record figure drivers
// aggregate when annotating reports built over partial data.
type Failure struct {
	Cfg    styles.Config
	Input  gen.Input
	Device string
	Kind   Kind
	Err    string
}

// Failure converts a non-OK outcome.
func (o Outcome) Failure() Failure {
	return Failure{Cfg: o.Cfg, Input: o.Input, Device: o.Device, Kind: o.Kind, Err: o.Err}
}

// Options configures a Supervisor.
type Options struct {
	// Timeout is the per-run deadline; 0 disables deadlines. Use
	// DefaultTimeout for a scale-aware default. A run that misses it is
	// stopped cooperatively through its guard token; see ReclaimGrace.
	Timeout time.Duration
	// ReclaimGrace is how long after the deadline the supervisor waits
	// for the canceled run to observe its token and return before giving
	// up and abandoning it (closing its pool, retiring its arena).
	// 0 means one second.
	ReclaimGrace time.Duration
	// MemBudget, when positive, caps the bytes each attempt's scratch
	// arena may freshly allocate; an overdraw fails the run with
	// guard.ErrBudgetExceeded (a deterministic Error, never retried)
	// instead of OOMing the sweep.
	MemBudget int64
	// Outer, when non-nil, couples every attempt's per-run guard token
	// to this session-level token: when Outer trips (a tune-session
	// deadline or budget, an HTTP request cancel), the in-flight attempt
	// is canceled cooperatively at its next checkpoint instead of
	// running on to its own per-run deadline. The attempt then surfaces
	// as a Timeout (outer deadline) or Error (outer cancel); callers
	// that armed Outer inspect it to tell a session stop from a variant
	// failure.
	Outer *guard.Token
	// Workers sizes the pool. The default (<= 1) runs tasks one at a
	// time: variants are internally parallel, and concurrent runs
	// perturb each other's timing. Raise it for verification sweeps
	// where only correctness matters.
	Workers int
	// Retries is how many times a transiently failed run (timeout,
	// panic, wrong answer) is re-attempted before its failure is
	// recorded. Dispatch errors are deterministic and never retried.
	Retries int
	// Backoff is the pause before the first retry; it doubles per
	// subsequent attempt.
	Backoff time.Duration
	// QuarantineAfter quarantines a variant once this many of its tasks
	// have failed (post-retry): later tasks for that variant are skipped
	// as Quarantined instead of run. 0 means 2; negative disables.
	QuarantineAfter int
	// Verify checks every result against the cached serial reference
	// and classifies disagreements as WrongAnswer (§4.1).
	Verify bool
	// Journal is a JSONL path appended to after every completed task;
	// empty disables journaling.
	Journal string
	// Resume replays tasks already recorded in Journal instead of
	// re-running them, so an interrupted sweep continues where it died.
	Resume bool
	// Progress, when set, is called after every task (including resumed
	// and quarantined ones) with the running completion count.
	Progress func(done, total int, o Outcome)
	// Observer, when set, receives every completed outcome (including
	// resumed replays) right after it is journaled. It is how the
	// results store subscribes to a sweep without the supervisor
	// depending on internal/store: the wiring layer (harness, cmd)
	// passes an observer that appends OK outcomes as store cells.
	// Called from worker goroutines; must be safe for concurrent use.
	Observer func(Outcome)
	// Trace, when live, is the span the sweep records under: one
	// sweep.task span per executed task (with sweep.attempt children and
	// retry/quarantine/reclaim points), flushed to the tracer's sink as
	// each task finishes. The zero value disables tracing for free.
	Trace trace.Ctx
}

// DefaultTimeout is the scale-aware per-run deadline: generous enough
// that no healthy variant at that scale comes near it, tight enough
// that a hung sweep fails in minutes rather than silently forever.
func DefaultTimeout(s gen.Scale) time.Duration {
	switch s {
	case gen.Tiny:
		return 30 * time.Second
	case gen.Small:
		return 2 * time.Minute
	case gen.Medium:
		return 10 * time.Minute
	}
	return 30 * time.Minute
}

// Supervisor executes tasks under the configured failure policy. It is
// safe for use from one Run call at a time; the worker pool inside a
// Run call is concurrent.
type Supervisor struct {
	opt   Options
	jrnl  *journal
	prior map[string]Outcome // journaled outcomes, for resume

	mu          sync.Mutex
	failCount   map[string]int // exhausted-task failures per variant name
	quarantined map[string]bool
	done        int

	refMu sync.Mutex
	refs  map[*graph.Graph]*refEntry
}

type refEntry struct {
	mu  sync.Mutex
	ref *verify.Reference
}

// New creates a Supervisor, opening the journal (and loading it, when
// resuming) if one is configured.
func New(opt Options) (*Supervisor, error) {
	if opt.QuarantineAfter == 0 {
		opt.QuarantineAfter = 2
	}
	s := &Supervisor{
		opt:         opt,
		prior:       map[string]Outcome{},
		failCount:   map[string]int{},
		quarantined: map[string]bool{},
		refs:        map[*graph.Graph]*refEntry{},
	}
	if opt.Journal != "" {
		if opt.Resume {
			prior, err := ReadJournal(opt.Journal)
			if err != nil {
				return nil, err
			}
			s.prior = prior
		}
		j, err := openJournal(opt.Journal)
		if err != nil {
			return nil, err
		}
		s.jrnl = j
	}
	return s, nil
}

// Close flushes and closes the journal, if any.
func (s *Supervisor) Close() error {
	if s.jrnl == nil {
		return nil
	}
	return s.jrnl.close()
}

// Failures filters the non-OK outcomes.
func Failures(outcomes []Outcome) []Failure {
	var fs []Failure
	for _, o := range outcomes {
		if o.Kind != OK {
			fs = append(fs, o.Failure())
		}
	}
	return fs
}

// Run executes every task and returns an outcome per task, in task
// order. graphs must be indexed by gen.Input (entries for inputs no
// task names may be nil). The sweep never aborts: failures are
// classified, journaled, and returned alongside the measurements.
func (s *Supervisor) Run(graphs []*graph.Graph, ropt algo.Options, tasks []Task) []Outcome {
	out := make([]Outcome, len(tasks))
	workers := s.opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each sweep worker owns one persistent par pool, reused
			// across every variant it runs (the tentpole's cross-variant
			// amortization); a timed-out run wedges the pool, so it is
			// replaced before the next attempt touches it.
			h := newPoolHolder(ropt)
			defer h.close()
			for i := range idx {
				out[i] = s.runTask(graphs, ropt, tasks[i], h)
				s.finish(out[i], len(tasks))
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// finish journals the outcome, notifies the observer, and reports
// progress.
func (s *Supervisor) finish(o Outcome, total int) {
	if s.jrnl != nil && !o.Resumed {
		if err := s.jrnl.append(o); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: journal append failed: %v\n", err)
		}
	}
	if s.opt.Observer != nil {
		s.opt.Observer(o)
	}
	s.mu.Lock()
	s.done++
	done := s.done
	s.mu.Unlock()
	if s.opt.Progress != nil {
		s.opt.Progress(done, total, o)
	}
	// Task end is a run boundary: push the task's completed spans to the
	// journal before the next task starts.
	s.opt.Trace.Flush()
}

// poolHolder owns one sweep worker's persistent par pool and scratch
// arena so consecutive variants reuse the same worker goroutines and the
// same slab memory instead of paying pool construction and per-run
// allocation per run.
type poolHolder struct {
	width int
	pool  *par.Pool
	arena *scratch.Arena
	// devs holds one simulated device per GPU profile, reused across the
	// worker's attempts (Reset between runs restores the post-New state,
	// so reuse cannot perturb the deterministic Stats) instead of paying
	// device construction — a few MB of cost-model tables — per attempt.
	devs map[string]*gpusim.Device
}

func newPoolHolder(ropt algo.Options) *poolHolder {
	w := ropt.Threads
	if w <= 0 {
		w = par.Threads()
	}
	return &poolHolder{width: w, pool: par.NewPool(w), arena: scratch.Acquire(),
		devs: make(map[string]*gpusim.Device)}
}

// device returns the worker's reusable device for prof, reset to its
// post-New state. Call from the supervisor goroutine before handing the
// device to an attempt.
func (h *poolHolder) device(prof gpusim.Profile) *gpusim.Device {
	d := h.devs[prof.Name]
	if d == nil {
		d = gpusim.New(prof)
		h.devs[prof.Name] = d
	} else {
		d.Reset()
	}
	return d
}

// replace retires the current pool and arena and builds fresh ones. It
// must be called after a timed-out attempt is abandoned: the abandoned
// run may still occupy the old pool's workers (e.g. a stalled region)
// and may still be scribbling on the old arena's slabs, so the pool is
// closed (late dispatches fall back to spawn-per-region) and the arena
// is retired (a late checkout or Reset panics inside the abandoned
// goroutine, where the attempt's recover contains it) while replacements
// serve subsequent attempts with clean state.
func (h *poolHolder) replace() {
	h.pool.Close()
	h.pool = par.NewPool(h.width)
	h.arena.Retire()
	h.arena = scratch.Acquire()
	// The abandoned run may still be scribbling on its device's arrays
	// and cost shards; abandon the devices with it.
	h.devs = make(map[string]*gpusim.Device)
}

func (h *poolHolder) close() {
	h.pool.Close()
	scratch.Release(h.arena)
}

// runTask resolves resume and quarantine, then drives the retry loop.
func (s *Supervisor) runTask(graphs []*graph.Graph, ropt algo.Options, t Task, h *poolHolder) Outcome {
	if prior, ok := s.prior[t.Key()]; ok {
		// Abandoned timeouts are not replayed: the runtime that produced
		// them was poisoned (wedged pool, retired arena), so the record
		// describes the old process's distress, not the cell. Re-run it.
		// Cooperatively canceled timeouts replay fine — the cell really is
		// too slow for the deadline.
		if !(prior.Kind == Timeout && prior.Reclaim == ReclaimAbandon) {
			prior.Resumed = true
			s.opt.Trace.PointAttr("sweep.resume", "task", t.Key())
			return prior
		}
	}
	name := t.Cfg.Name()
	s.mu.Lock()
	skip := s.quarantined[name]
	s.mu.Unlock()
	if skip {
		s.opt.Trace.PointAttr("sweep.quarantine", "variant", name)
		return Outcome{Task: t, Kind: Quarantined,
			Err: "variant quarantined after repeated failures"}
	}

	if int(t.Input) < 0 || int(t.Input) >= len(graphs) || graphs[t.Input] == nil {
		return Outcome{Task: t, Kind: Error,
			Err: fmt.Sprintf("no graph for input %q", t.Input)}
	}
	g := graphs[t.Input]

	sp := s.opt.Trace.Start("sweep.task")
	if sp.Live() {
		sp = sp.Attr("variant", name).Attr("input", t.Input.String()).Attr("device", t.Device)
	}
	defer sp.End()
	ropt.Trace = sp

	start := time.Now()
	var o Outcome
	for attempt := 1; ; attempt++ {
		kind, tput, sim, msg, reclaim, cancelNS := s.attempt(g, ropt, t.Cfg, t.Device, h)
		o = Outcome{Task: t, Kind: kind, Tput: tput, Err: msg, Attempts: attempt,
			Reclaim: reclaim, CancelNS: cancelNS,
			SimCycles: sim.Cycles, SimInstructions: sim.Instructions,
			SimTransactions: sim.Transactions}
		if kind == OK || kind == Error || attempt > s.opt.Retries {
			break
		}
		sp.PointAttr("sweep.retry", "kind", kind.String())
		if s.opt.Backoff > 0 {
			time.Sleep(s.opt.Backoff << (attempt - 1))
		}
	}
	o.Elapsed = time.Since(start)
	if o.Kind != OK && s.opt.QuarantineAfter > 0 {
		s.mu.Lock()
		s.failCount[name]++
		if s.failCount[name] >= s.opt.QuarantineAfter {
			s.quarantined[name] = true
		}
		s.mu.Unlock()
	}
	return o
}

// reply carries one attempt's result out of the run goroutine.
type reply struct {
	res      algo.Result
	tput     float64
	sim      gpusim.Stats
	err      error
	panicked any
}

// attempt executes one run of cfg on g under deadline, budget, and panic
// isolation. The deadline is enforced cooperatively: the attempt's guard
// token is armed with the timeout and threaded through the run (pool
// regions, kernel rounds, arena charges), so a timed-out run normally
// cancels itself and hands the worker pool back intact. Only a run that
// never reaches a checkpoint within the reclaim grace window is
// abandoned the old way — pool closed and replaced, arena retired — and
// parks harmlessly on the buffered channel if it ever finishes.
//
// attempt is the shared core of the supervisor's retry loop and the
// exported Prober (the tuner's measurement primitive): it takes the
// graph directly rather than a gen.Input, so callers may probe graphs
// that are not part of the generated suite (e.g. a file-loaded input).
func (s *Supervisor) attempt(g *graph.Graph, ropt algo.Options, cfg styles.Config, device string, h *poolHolder) (kind Kind, tput float64, sim gpusim.Stats, msg, reclaim string, cancelNS int64) {
	asp := ropt.Trace.Start("sweep.attempt")
	if asp.Live() {
		asp = asp.Attr("variant", cfg.Name()).Attr("device", device)
	}
	defer asp.End()
	ropt.Trace = asp
	// Resolve the reusable device here, before the run goroutine starts,
	// so holder state is only ever touched from the supervisor goroutine.
	var dev *gpusim.Device
	if device != DeviceCPU {
		if prof, ok := profileByName(device); ok {
			dev = h.device(prof)
		}
	}
	ropt.Pool = h.pool // pin CPU regions to this worker's persistent pool
	if h.arena != nil {
		// Reuse the worker's warmed arena. The previous attempt's result
		// has been fully consumed (verified or discarded) by now, so its
		// aliased slabs are free to recycle.
		h.arena.Reset()
		ropt.Scratch = h.arena
	}

	gd := guard.New().WithTimeout(s.opt.Timeout).WithBudget(s.opt.MemBudget)
	defer gd.Release()
	stopProp := guard.Propagate(s.opt.Outer, gd)
	defer stopProp()
	ropt.Guard = gd
	// Charge the arena's fresh growth against this attempt's budget. The
	// goroutine start below orders the write for the run; the reply
	// receive orders the clearing write after it.
	h.arena.SetGuard(gd)

	grace := s.opt.ReclaimGrace
	if grace <= 0 {
		grace = time.Second
	}
	var graceC <-chan time.Time
	if s.opt.Timeout > 0 {
		timer := time.NewTimer(s.opt.Timeout + grace)
		defer timer.Stop()
		graceC = timer.C
	}
	armed := time.Now()

	ch := make(chan reply, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				if err, ok := guard.AbortError(p); ok {
					// A cooperative abort that escaped the runner boundary
					// (e.g. an arena charge outside RunCPU) is a
					// cancellation, not a crash.
					ch <- reply{err: err}
				} else {
					ch <- reply{panicked: p}
				}
			}
		}()
		var r reply
		if device == DeviceCPU {
			r.res, r.tput, r.err = runner.TimeCPU(g, cfg, ropt)
		} else if dev != nil {
			r.res, r.tput, r.sim, r.err = runner.MeasureGPU(dev, g, cfg, ropt)
		} else {
			r.err = fmt.Errorf("unknown device %q", device)
		}
		ch <- r
	}()

	select {
	case <-graceC:
		// The run blew through deadline AND grace without reaching a
		// checkpoint — it is wedged somewhere the token cannot see. Fall
		// back to abandonment: close the pool (late dispatches degrade to
		// spawn-per-region), retire the arena (late checkouts panic inside
		// the attempt's recover), and give later attempts clean state.
		h.replace()
		asp.PointAttr("sweep.reclaim", "mode", ReclaimAbandon)
		return Timeout, math.NaN(), gpusim.Stats{},
			fmt.Sprintf("no result within %v and no checkpoint within the %v grace window",
				s.opt.Timeout, grace), ReclaimAbandon, 0
	case r := <-ch:
		h.arena.SetGuard(nil)
		switch {
		case errors.Is(r.err, guard.ErrDeadlineExceeded):
			// The canceled run returned on its own: the pool and arena are
			// intact and will serve the next attempt as-is. Record how long
			// the cancel took to land.
			lat := time.Since(armed) - s.opt.Timeout
			if lat < 0 {
				lat = 0
			}
			asp.PointAttr("sweep.reclaim", "mode", ReclaimCancel)
			return Timeout, math.NaN(), gpusim.Stats{},
				fmt.Sprintf("canceled after %v deadline", s.opt.Timeout),
				ReclaimCancel, int64(lat)
		case errors.Is(r.err, guard.ErrBudgetExceeded):
			// Deterministic — the variant needs more memory than the budget
			// allows — so Error, which the retry loop never re-attempts.
			return Error, math.NaN(), gpusim.Stats{},
				fmt.Sprintf("memory budget of %d bytes exceeded", s.opt.MemBudget), "", 0
		case r.panicked != nil:
			return Panic, math.NaN(), gpusim.Stats{}, fmt.Sprint(r.panicked), "", 0
		case r.err != nil:
			return Error, math.NaN(), gpusim.Stats{}, r.err.Error(), "", 0
		case !(r.tput > 0): // catches NaN from zero/negative elapsed
			return Error, math.NaN(), gpusim.Stats{}, fmt.Sprintf("invalid throughput %v (non-positive elapsed time)", r.tput), "", 0
		}
		if s.opt.Verify {
			vsp := asp.Start("sweep.verify")
			err := s.check(g, ropt, cfg, r.res)
			vsp.End()
			if err != nil {
				return WrongAnswer, math.NaN(), gpusim.Stats{}, err.Error(), "", 0
			}
		}
		return OK, r.tput, r.sim, "", "", 0
	}
}

// check verifies res against the per-graph serial reference. References
// compute their serial solutions lazily and are not safe for concurrent
// use, so each is guarded by its own mutex.
func (s *Supervisor) check(g *graph.Graph, ropt algo.Options, cfg styles.Config, res algo.Result) error {
	s.refMu.Lock()
	e := s.refs[g]
	if e == nil {
		e = &refEntry{ref: verify.NewReference(g, ropt)}
		s.refs[g] = e
	}
	s.refMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ref.Check(cfg, res)
}

func profileByName(name string) (gpusim.Profile, bool) {
	for _, p := range gpusim.Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return gpusim.Profile{}, false
}
