package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/styles"
)

// testGraph is a small ring with a tail: connected, diameter well under
// the MaxIter default, cheap enough to sweep in microseconds.
func testGraph() *graph.Graph {
	b := graph.NewBuilder("ring", 24)
	for v := int32(0); v < 16; v++ {
		b.AddEdge(v, (v+1)%16, 1)
	}
	for v := int32(16); v < 24; v++ {
		b.AddEdge(v-1, v, 1)
	}
	return b.Build()
}

func testGraphs() []*graph.Graph {
	gs := make([]*graph.Graph, gen.NumInputs)
	gs[0] = testGraph()
	return gs
}

// pickVariant finds a BFS/CPP variant satisfying pred; enumerated
// configs are always valid style combinations.
func pickVariant(t *testing.T, pred func(styles.Config) bool) styles.Config {
	t.Helper()
	for _, cfg := range styles.Enumerate(styles.BFS, styles.CPP) {
		if pred(cfg) {
			return cfg
		}
	}
	t.Fatal("no bfs/cpp variant matches the predicate")
	return styles.Config{}
}

// rmwVariant is a topology-driven read-modify-write variant: its min
// updates go through par.Sync, so chaos DropUpdates corrupts its result.
func rmwVariant(t *testing.T) styles.Config {
	return pickVariant(t, func(c styles.Config) bool {
		return c.Drive == styles.TopologyDriven &&
			c.Update == styles.ReadModifyWrite &&
			c.Det == styles.NonDeterministic
	})
}

// TestSupervisorFaultInjection is the acceptance test for the failure
// taxonomy: one supervisor sees a hang (classified Timeout), a panic
// (recovered, classified Panic), a corrupted result (classified
// WrongAnswer by verification), quarantines the offending variant, and
// still completes a healthy run — the sweep never aborts.
func TestSupervisorFaultInjection(t *testing.T) {
	defer par.SetChaos(nil)
	gs := testGraphs()
	opt := algo.Options{Threads: 2}
	cfg := rmwVariant(t)
	task := Task{Cfg: cfg, Input: 0, Device: DeviceCPU}

	sup, err := New(Options{Timeout: 50 * time.Millisecond, QuarantineAfter: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var all []Outcome

	// 1. Hung workers: no result within the deadline.
	stall := make(chan struct{})
	defer close(stall) // release the abandoned run's workers
	par.SetChaos(&par.Chaos{Stall: stall})
	o := sup.Run(gs, opt, []Task{task})[0]
	all = append(all, o)
	if o.Kind != Timeout {
		t.Fatalf("stalled run classified %s (%s), want timeout", o.Kind, o.Err)
	}
	if !strings.Contains(o.Err, "within") {
		t.Errorf("timeout error %q does not mention the deadline", o.Err)
	}

	// 2. A panicking worker: recovered and classified, not a crash.
	par.SetChaos(&par.Chaos{PanicMsg: "injected fault"})
	o = sup.Run(gs, opt, []Task{task})[0]
	all = append(all, o)
	if o.Kind != Panic {
		t.Fatalf("panicking run classified %s (%s), want panic", o.Kind, o.Err)
	}
	if !strings.Contains(o.Err, "injected fault") {
		t.Errorf("panic error %q does not carry the panic value", o.Err)
	}

	// 3. Dropped updates: the run completes but the result is wrong, and
	// verification catches it.
	par.SetChaos(&par.Chaos{DropUpdates: true})
	o = sup.Run(gs, opt, []Task{task})[0]
	all = append(all, o)
	if o.Kind != WrongAnswer {
		t.Fatalf("corrupted run classified %s (%s), want wrong-answer", o.Kind, o.Err)
	}
	if !strings.Contains(o.Err, "level") {
		t.Errorf("wrong-answer error %q does not describe the disagreement", o.Err)
	}

	// 4. Three failures hit QuarantineAfter: the variant is now skipped,
	// while a healthy variant still runs and verifies.
	par.SetChaos(nil)
	healthy := pickVariant(t, func(c styles.Config) bool { return c.Name() != cfg.Name() })
	out := sup.Run(gs, opt, []Task{task, {Cfg: healthy, Input: 0, Device: DeviceCPU}})
	all = append(all, out...)
	if out[0].Kind != Quarantined {
		t.Errorf("4th run of failing variant classified %s, want quarantined", out[0].Kind)
	}
	if out[1].Kind != OK || !(out[1].Tput > 0) {
		t.Errorf("healthy run after faults: kind %s tput %v err %q, want ok",
			out[1].Kind, out[1].Tput, out[1].Err)
	}

	fails := Failures(all)
	if len(fails) != 4 {
		t.Errorf("Failures() = %d records, want 4 (timeout, panic, wrong-answer, quarantined)", len(fails))
	}
}

// TestVerifyOffMissesCorruption is the control for the WrongAnswer
// classification: without verification the corrupted run passes as OK,
// which is exactly why the supervisor verifies by default.
func TestVerifyOffMissesCorruption(t *testing.T) {
	defer par.SetChaos(nil)
	sup, err := New(Options{Verify: false})
	if err != nil {
		t.Fatal(err)
	}
	par.SetChaos(&par.Chaos{DropUpdates: true})
	o := sup.Run(testGraphs(), algo.Options{Threads: 2},
		[]Task{{Cfg: rmwVariant(t), Input: 0, Device: DeviceCPU}})[0]
	if o.Kind != OK {
		t.Fatalf("unverified corrupted run classified %s (%s)", o.Kind, o.Err)
	}
}

// TestRetryPolicy: transient failures are re-attempted Retries times;
// deterministic dispatch errors are not retried at all.
func TestRetryPolicy(t *testing.T) {
	defer par.SetChaos(nil)
	gs := testGraphs()
	opt := algo.Options{Threads: 2}

	sup, err := New(Options{Retries: 2, Backoff: time.Millisecond, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	par.SetChaos(&par.Chaos{PanicMsg: "still broken"})
	o := sup.Run(gs, opt, []Task{{Cfg: rmwVariant(t), Input: 0, Device: DeviceCPU}})[0]
	if o.Kind != Panic || o.Attempts != 3 {
		t.Errorf("panicking run: kind %s after %d attempts, want panic after 3", o.Kind, o.Attempts)
	}

	par.SetChaos(nil)
	o = sup.Run(gs, opt, []Task{{Cfg: rmwVariant(t), Input: 0, Device: "no-such-device"}})[0]
	if o.Kind != Error || o.Attempts != 1 {
		t.Errorf("dispatch error: kind %s after %d attempts, want error after 1", o.Kind, o.Attempts)
	}
	if !strings.Contains(o.Err, "no-such-device") {
		t.Errorf("dispatch error %q does not name the device", o.Err)
	}
}

// TestMissingGraphIsError: a task naming an input with no graph is a
// classified failure, not a crash.
func TestMissingGraphIsError(t *testing.T) {
	sup, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := sup.Run(testGraphs(), algo.Options{},
		[]Task{{Cfg: rmwVariant(t), Input: gen.NumInputs - 1, Device: DeviceCPU}})[0]
	if o.Kind != Error || !strings.Contains(o.Err, "no graph") {
		t.Errorf("missing-graph task: kind %s err %q", o.Kind, o.Err)
	}
}

// TestJournalResume kills a sweep after two of three tasks (simulated by
// closing the supervisor, plus a torn final line as left by a real
// kill), then resumes: the two recorded tasks — including the failed
// one — are replayed from the journal, and only the missing task runs.
func TestJournalResume(t *testing.T) {
	gs := testGraphs()
	opt := algo.Options{Threads: 2}
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	cfgs := styles.Enumerate(styles.BFS, styles.CPP)
	if len(cfgs) < 3 {
		t.Fatal("need at least 3 variants")
	}
	tasks := []Task{
		{Cfg: cfgs[0], Input: 0, Device: DeviceCPU},
		{Cfg: cfgs[1], Input: 0, Device: "no-such-device"}, // journaled failure
		{Cfg: cfgs[2], Input: 0, Device: DeviceCPU},
	}

	sup1, err := New(Options{Journal: path, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	first := sup1.Run(gs, opt, tasks[:2])
	if first[0].Kind != OK || first[1].Kind != Error {
		t.Fatalf("first sweep: kinds %s, %s", first[0].Kind, first[1].Kind)
	}
	if err := sup1.Close(); err != nil {
		t.Fatal(err)
	}

	// A sweep killed mid-write leaves a torn final line; resume must
	// tolerate it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"variant":"torn-mid-wri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reran := 0
	sup2, err := New(Options{Journal: path, Resume: true, Verify: true,
		Progress: func(done, total int, o Outcome) {
			if !o.Resumed {
				reran++
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	out := sup2.Run(gs, opt, tasks)
	if err := sup2.Close(); err != nil {
		t.Fatal(err)
	}

	if !out[0].Resumed || out[0].Kind != OK || !(out[0].Tput > 0) {
		t.Errorf("task 0: resumed=%v kind=%s tput=%v, want replayed ok measurement",
			out[0].Resumed, out[0].Kind, out[0].Tput)
	}
	if !out[1].Resumed || out[1].Kind != Error {
		t.Errorf("task 1: resumed=%v kind=%s, want replayed failure", out[1].Resumed, out[1].Kind)
	}
	if out[2].Resumed || out[2].Kind != OK {
		t.Errorf("task 2: resumed=%v kind=%s, want fresh ok run", out[2].Resumed, out[2].Kind)
	}
	if reran != 1 {
		t.Errorf("resume re-ran %d tasks, want exactly the 1 missing one", reran)
	}

	// The resumed sweep journaled its fresh run: all three now recorded.
	prior, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 3 {
		t.Errorf("journal records %d outcomes after resume, want 3", len(prior))
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	prior, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || len(prior) != 0 {
		t.Errorf("missing journal: %v, %d entries; want empty, no error", err, len(prior))
	}
}

func TestDefaultTimeoutGrowsWithScale(t *testing.T) {
	prev := time.Duration(0)
	for _, sc := range []gen.Scale{gen.Tiny, gen.Small, gen.Medium, gen.Large} {
		d := DefaultTimeout(sc)
		if d <= prev {
			t.Errorf("DefaultTimeout(%v) = %v, not above %v", sc, d, prev)
		}
		prev = d
	}
}

func TestKindStringsRoundTrip(t *testing.T) {
	for k := OK; k <= Quarantined; k++ {
		got, ok := parseKind(k.String())
		if !ok || got != k {
			t.Errorf("parseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := parseKind("nonsense"); ok {
		t.Error("parseKind accepted nonsense")
	}
}
