package sweep

import (
	"strings"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/styles"
	"indigo/internal/testutil"
)

// TestProbeMeasuresAndReuses: probes return classified outcomes with a
// throughput, the pool and arena survive across probes, and Close
// releases everything (leak-checked).
func TestProbeMeasuresAndReuses(t *testing.T) {
	defer testutil.Snapshot(t).Check(t)
	g := testGraph()
	p := NewProber(algo.Options{Threads: 2}, Options{Timeout: 5 * time.Second, Verify: true})
	defer p.Close()
	for i := 0; i < 3; i++ {
		o := p.Probe(g, rmwVariant(t), DeviceCPU)
		if o.Kind != OK || !(o.Tput > 0) {
			t.Fatalf("probe %d: kind %s tput %v err %q, want ok", i, o.Kind, o.Tput, o.Err)
		}
		if o.Attempts != 1 {
			t.Fatalf("probe %d: %d attempts, want exactly 1 (the caller owns the retry policy)", i, o.Attempts)
		}
	}
}

// TestProbeGPU: a CUDA variant probes on the simulated device and
// reports the deterministic throughput twice.
func TestProbeGPU(t *testing.T) {
	defer testutil.Snapshot(t).Check(t)
	g := testGraph()
	cfg := styles.Enumerate(styles.BFS, styles.CUDA)[0]
	p := NewProber(algo.Options{Threads: 2}, Options{Timeout: 5 * time.Second, Verify: true})
	defer p.Close()
	a := p.Probe(g, cfg, "rtx-sim")
	b := p.Probe(g, cfg, "rtx-sim")
	if a.Kind != OK || b.Kind != OK {
		t.Fatalf("gpu probes: %s (%s), %s (%s)", a.Kind, a.Err, b.Kind, b.Err)
	}
	if a.Tput != b.Tput {
		t.Fatalf("simulated device is not deterministic across probes: %v vs %v", a.Tput, b.Tput)
	}
	if a.SimCycles <= 0 {
		t.Fatal("gpu probe carries no simulated cost counters")
	}
}

// TestProbeClassifiesFailures: the prober inherits the supervisor's
// failure taxonomy — a panic is recovered and classified, a corrupted
// result is caught by verification — and, unlike a supervised sweep,
// never quarantines: the same variant probes clean again once the
// fault is gone.
func TestProbeClassifiesFailures(t *testing.T) {
	defer par.SetChaos(nil)
	g := testGraph()
	cfg := rmwVariant(t)
	p := NewProber(algo.Options{Threads: 2}, Options{Timeout: 5 * time.Second, Verify: true, QuarantineAfter: 1})
	defer p.Close()

	par.SetChaos(&par.Chaos{PanicMsg: "injected fault"})
	if o := p.Probe(g, cfg, DeviceCPU); o.Kind != Panic || !strings.Contains(o.Err, "injected fault") {
		t.Fatalf("panicking probe classified %s (%s), want panic", o.Kind, o.Err)
	}

	par.SetChaos(&par.Chaos{DropUpdates: true})
	if o := p.Probe(g, cfg, DeviceCPU); o.Kind != WrongAnswer {
		t.Fatalf("corrupted probe classified %s (%s), want wrong-answer", o.Kind, o.Err)
	}

	par.SetChaos(nil)
	if o := p.Probe(g, cfg, DeviceCPU); o.Kind != OK {
		t.Fatalf("healthy probe after faults classified %s (%s), want ok — probes must not quarantine", o.Kind, o.Err)
	}
}

// TestProbeHonorsOuterGuard: tripping Options.Outer stops the probe in
// flight through the propagated per-run token.
func TestProbeHonorsOuterGuard(t *testing.T) {
	defer par.SetChaos(nil)
	g := testGraph()
	outer := guard.New()
	defer outer.Release()
	p := NewProber(algo.Options{Threads: 2}, Options{Timeout: 5 * time.Second, Outer: outer})
	defer p.Close()

	// Slow every region entry so the run comfortably outlasts the
	// 2ms propagation tick, then trip the session before probing.
	par.SetChaos(&par.Chaos{Delay: 5 * time.Millisecond})
	outer.Cancel()
	o := p.Probe(g, rmwVariant(t), DeviceCPU)
	if o.Kind == OK {
		t.Fatalf("probe survived an outer cancel: %s tput %v", o.Kind, o.Tput)
	}
	if !strings.Contains(o.Err, "canceled") {
		t.Fatalf("canceled probe error %q does not say canceled", o.Err)
	}
}
