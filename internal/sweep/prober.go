package sweep

import (
	"time"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/styles"
	"indigo/internal/trace"
)

// Prober gives non-sweep clients — chiefly the internal/tune racing
// autotuner — single supervised runs built on the same attempt machinery
// the Supervisor uses: a persistent worker pool and warmed scratch arena
// reused across probes, reusable simulated devices, a per-probe deadline
// enforced through a guard token with the abandon-and-replace fallback
// for wedged runs, panic isolation, and optional verification against
// the cached serial reference.
//
// Unlike Supervisor.Run, a Prober runs exactly one attempt per Probe
// call (no retries, no quarantine, no journal): the caller owns the
// failure policy, which for the tuner is "a failing variant is
// eliminated, not re-tried". A Prober is not safe for concurrent use —
// probes share one pool and one arena by design, because concurrent
// timed runs would perturb each other's measurements.
type Prober struct {
	s    *Supervisor
	h    *poolHolder
	ropt algo.Options
}

// NewProber creates a Prober. Options fields beyond Timeout,
// ReclaimGrace, MemBudget, and Verify are ignored (there is no retry
// loop, journal, or worker fan-out to configure). ropt carries the
// thread count, source vertex, and the rest of the per-run options;
// its Pool/Scratch/Guard fields are overwritten per probe.
func NewProber(ropt algo.Options, opt Options) *Prober {
	s := &Supervisor{
		opt:         opt,
		prior:       map[string]Outcome{},
		failCount:   map[string]int{},
		quarantined: map[string]bool{},
		refs:        map[*graph.Graph]*refEntry{},
	}
	return &Prober{s: s, h: newPoolHolder(ropt), ropt: ropt}
}

// SetTrace installs the parent span subsequent probes record their
// sweep.attempt spans under (the tuner points each trial's span here).
// The zero Ctx detaches tracing.
func (p *Prober) SetTrace(tc trace.Ctx) { p.ropt.Trace = tc }

// Probe runs cfg on g once on the given device ("cpu" or a gpusim
// profile name) and classifies the result exactly like a supervised
// sweep task: OK with a throughput, or Timeout/Panic/WrongAnswer/Error
// with a message. The outcome's Input field is zero — probes are not
// tied to the generated suite.
func (p *Prober) Probe(g *graph.Graph, cfg styles.Config, device string) Outcome {
	start := time.Now()
	kind, tput, sim, msg, reclaim, cancelNS := p.s.attempt(g, p.ropt, cfg, device, p.h)
	return Outcome{
		Task: Task{Cfg: cfg, Device: device},
		Kind: kind, Tput: tput, Err: msg, Attempts: 1,
		Elapsed: time.Since(start), Reclaim: reclaim, CancelNS: cancelNS,
		SimCycles: sim.Cycles, SimInstructions: sim.Instructions,
		SimTransactions: sim.Transactions,
	}
}

// Close releases the prober's pool, arena, and devices.
func (p *Prober) Close() { p.h.close() }
