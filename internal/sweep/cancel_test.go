package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
	"indigo/internal/testutil"
)

// TestCooperativeCancelReclaimsPool is the acceptance test for the
// guard-based timeout path: a slow (chaos-delayed) run misses its
// deadline, observes the tripped token at a checkpoint, and returns on
// its own — so the supervisor keeps the worker pool and arena instead
// of abandoning them, and the very next attempt reuses both.
func TestCooperativeCancelReclaimsPool(t *testing.T) {
	defer par.SetChaos(nil)
	leaks := testutil.Snapshot(t)
	gs := testGraphs()
	ropt := algo.Options{Threads: 2}
	task := Task{Cfg: rmwVariant(t), Input: 0, Device: DeviceCPU}

	sup, err := New(Options{Timeout: 25 * time.Millisecond, ReclaimGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := newPoolHolder(ropt)
	pool, arena := h.pool, h.arena

	// Delay each worker a little at every region entry: the tiny graph's
	// many rounds now sum past the deadline, but every worker still
	// reaches its next checkpoint promptly, so the cancel lands well
	// inside the grace window.
	par.SetChaos(&par.Chaos{Delay: 5 * time.Millisecond})
	kind, _, _, msg, reclaim, cancelNS := sup.attempt(gs[task.Input], ropt, task.Cfg, task.Device, h)
	par.SetChaos(nil)

	if kind != Timeout {
		t.Fatalf("slow run classified %s (%s), want timeout", kind, msg)
	}
	if reclaim != ReclaimCancel {
		t.Fatalf("slow run reclaimed by %q (%s), want %q", reclaim, msg, ReclaimCancel)
	}
	if cancelNS < 0 {
		t.Errorf("cancel latency %d ns, want >= 0", cancelNS)
	}
	if !strings.Contains(msg, "canceled") {
		t.Errorf("cancel message %q does not say the run was canceled", msg)
	}
	if h.pool != pool {
		t.Error("cooperative cancel replaced the worker pool; it must be reclaimed intact")
	}
	if h.arena != arena {
		t.Error("cooperative cancel replaced the arena; it must be reclaimed intact")
	}

	// The reclaimed pool and arena serve the next attempt as-is.
	kind, tput, _, msg, _, _ := sup.attempt(gs[task.Input], ropt, task.Cfg, task.Device, h)
	if kind != OK || !(tput > 0) {
		t.Errorf("healthy run after cancel: kind %s tput %v err %q, want ok", kind, tput, msg)
	}

	h.close()
	leaks.Check(t)
}

// TestStallFallsBackToAbandonment covers the other reclaim path: a run
// wedged where the token cannot see it (workers stalled before their
// first checkpoint) never cancels, so after the grace window the
// supervisor abandons it — pool closed and replaced, arena retired.
func TestStallFallsBackToAbandonment(t *testing.T) {
	defer par.SetChaos(nil)
	leaks := testutil.Snapshot(t)
	gs := testGraphs()
	ropt := algo.Options{Threads: 2}
	task := Task{Cfg: rmwVariant(t), Input: 0, Device: DeviceCPU}

	sup, err := New(Options{Timeout: 20 * time.Millisecond, ReclaimGrace: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := newPoolHolder(ropt)
	pool := h.pool

	stall := make(chan struct{})
	par.SetChaos(&par.Chaos{Stall: stall})
	kind, _, _, msg, reclaim, cancelNS := sup.attempt(gs[task.Input], ropt, task.Cfg, task.Device, h)
	par.SetChaos(nil)
	// Release the wedged workers: they observe the tripped token (or the
	// retired arena) and unwind, which is what the leak check asserts.
	close(stall)

	if kind != Timeout {
		t.Fatalf("stalled run classified %s (%s), want timeout", kind, msg)
	}
	if reclaim != ReclaimAbandon {
		t.Fatalf("stalled run reclaimed by %q (%s), want %q", reclaim, msg, ReclaimAbandon)
	}
	if cancelNS != 0 {
		t.Errorf("abandoned run recorded cancel latency %d ns, want 0", cancelNS)
	}
	if !strings.Contains(msg, "grace") || !strings.Contains(msg, "50ms") {
		t.Errorf("abandon message %q does not name the effective grace window", msg)
	}
	if h.pool == pool {
		t.Error("abandonment kept the wedged pool; it must be replaced")
	}

	// The replacement pool serves a healthy attempt.
	kind, tput, _, msg, _, _ := sup.attempt(gs[task.Input], ropt, task.Cfg, task.Device, h)
	if kind != OK || !(tput > 0) {
		t.Errorf("healthy run after abandonment: kind %s tput %v err %q, want ok", kind, tput, msg)
	}

	h.close()
	leaks.Check(t)
}

// TestMemBudgetFailsCleanly: an attempt whose arena would outgrow the
// memory budget fails with a clean, deterministic Error — classified on
// the first attempt, never retried, pool intact.
func TestMemBudgetFailsCleanly(t *testing.T) {
	gs := testGraphs()
	ropt := algo.Options{Threads: 2}
	task := Task{Cfg: rmwVariant(t), Input: 0, Device: DeviceCPU}

	sup, err := New(Options{MemBudget: 1, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := newPoolHolder(ropt)
	defer h.close()
	// A warmed arena from the process-wide cache may already own every
	// slab the variant needs and charge nothing; a fresh arena must grow,
	// so its first checkout overdraws the 1-byte budget deterministically.
	scratch.Release(h.arena)
	h.arena = scratch.New()
	pool := h.pool

	o := sup.runTask(gs, ropt, task, h)
	if o.Kind != Error {
		t.Fatalf("over-budget run classified %s (%s), want error", o.Kind, o.Err)
	}
	if !strings.Contains(o.Err, "budget") {
		t.Errorf("budget error %q does not mention the budget", o.Err)
	}
	if o.Attempts != 1 {
		t.Errorf("deterministic budget overdraw took %d attempts, want 1 (never retried)", o.Attempts)
	}
	if h.pool != pool {
		t.Error("budget overdraw replaced the worker pool; it must survive")
	}
}

// TestJournalRecordsReclaim: the v2 reclaim fields survive the journal
// round trip.
func TestJournalRecordsReclaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	task := Task{Cfg: rmwVariant(t), Input: 0, Device: DeviceCPU}

	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(Outcome{Task: task, Kind: Timeout, Err: "canceled after 1ms deadline",
		Attempts: 1, Reclaim: ReclaimCancel, CancelNS: 12345}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	prior, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := prior[task.Key()]
	if !ok {
		t.Fatal("journaled outcome missing after read")
	}
	if o.Reclaim != ReclaimCancel || o.CancelNS != 12345 {
		t.Errorf("reclaim fields read back as (%q, %d), want (%q, 12345)",
			o.Reclaim, o.CancelNS, ReclaimCancel)
	}
}

// TestReadJournalBackfillsPreV2Timeouts: timeout records written before
// schema v2 carry no reclaim field; the reader must treat them as
// abandonments (cancellation did not exist yet) so resume re-runs them.
func TestReadJournalBackfillsPreV2Timeouts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	cfg := rmwVariant(t)
	rec := Record{V: 1, Variant: cfg.Name(), Input: gen.Input(0).String(),
		Device: DeviceCPU, Kind: "timeout", Err: "no result within 1ms",
		Attempts: 1, ElapsedMS: 1}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	prior, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	o, ok := prior[Task{Cfg: cfg, Input: 0, Device: DeviceCPU}.Key()]
	if !ok {
		t.Fatal("pre-v2 timeout record missing after read")
	}
	if o.Reclaim != ReclaimAbandon {
		t.Errorf("pre-v2 timeout backfilled as %q, want %q", o.Reclaim, ReclaimAbandon)
	}
}

// TestResumeReplaysCancelRerunsAbandon is the resume-semantics contract:
// a cooperatively canceled timeout describes the cell (too slow for the
// deadline) and replays; an abandoned timeout describes a poisoned
// runtime and must re-run.
func TestResumeReplaysCancelRerunsAbandon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	cfgCancel := rmwVariant(t)
	cfgAbandon := pickVariant(t, func(c styles.Config) bool { return c.Name() != cfgCancel.Name() })
	tCancel := Task{Cfg: cfgCancel, Input: 0, Device: DeviceCPU}
	tAbandon := Task{Cfg: cfgAbandon, Input: 0, Device: DeviceCPU}

	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(Outcome{Task: tCancel, Kind: Timeout,
		Err: "canceled after 1ns deadline", Attempts: 1, Reclaim: ReclaimCancel}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(Outcome{Task: tAbandon, Kind: Timeout,
		Err: "no result within 1ns and no checkpoint within the 1ms grace window",
		Attempts: 1, Reclaim: ReclaimAbandon}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	sup, err := New(Options{Journal: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	out := sup.Run(testGraphs(), algo.Options{Threads: 2}, []Task{tCancel, tAbandon})

	if !out[0].Resumed || out[0].Kind != Timeout || out[0].Reclaim != ReclaimCancel {
		t.Errorf("canceled cell resumed as %+v, want a replayed timeout", out[0])
	}
	if out[1].Resumed {
		t.Error("abandoned cell was replayed; poisoned records must re-run")
	}
	if out[1].Kind != OK || !(out[1].Tput > 0) {
		t.Errorf("re-run of abandoned cell: kind %s tput %v err %q, want ok",
			out[1].Kind, out[1].Tput, out[1].Err)
	}
}
