package styles

import (
	"strings"
	"testing"
)

func TestEnumerateCountsMatchPaperScale(t *testing.T) {
	// Our enumeration realizes 850 variants vs. the paper's 1106
	// (Table 3); PR and TC counts match the paper exactly, and the
	// others land in the same range (see DESIGN.md "Divergences").
	want := map[Model]map[Algorithm]int{
		CUDA: {CC: 132, MIS: 80, PR: 54, TC: 72, BFS: 132, SSSP: 132},
		OMP:  {CC: 26, MIS: 16, PR: 18, TC: 12, BFS: 26, SSSP: 26},
		CPP:  {CC: 26, MIS: 16, PR: 18, TC: 12, BFS: 26, SSSP: 26},
	}
	table := CountTable()
	total := 0
	for m, algos := range want {
		for a, n := range algos {
			if got := table[m][a]; got != n {
				t.Errorf("%v/%v: %d variants, want %d", a, m, got, n)
			}
			total += table[m][a]
		}
	}
	if total != 850 {
		t.Errorf("total variants = %d, want 850", total)
	}
	// Paper-exact anchors.
	if table[CUDA][PR] != 54 || table[CUDA][TC] != 72 {
		t.Error("PR/TC CUDA counts should match the paper exactly (54, 72)")
	}
	if table[OMP][PR] != 18 || table[OMP][TC] != 12 {
		t.Error("PR/TC OMP counts should match the paper exactly (18, 12)")
	}
}

func TestEnumerateAllValidAndUnique(t *testing.T) {
	all := EnumerateAll()
	seen := make(map[string]bool, len(all))
	for _, c := range all {
		if !Valid(c) {
			t.Fatalf("enumerated config %s is not Valid", c.Name())
		}
		name := c.Name()
		if seen[name] {
			t.Fatalf("duplicate variant name %s", name)
		}
		seen[name] = true
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	a := EnumerateAll()
	b := EnumerateAll()
	if len(a) != len(b) {
		t.Fatal("non-deterministic enumeration length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enumeration differs at %d", i)
		}
	}
}

func TestValidRejectsTable2Violations(t *testing.T) {
	base := func(a Algorithm, m Model) Config {
		c := Config{Algo: a, Model: m, Det: Deterministic, Update: ReadModifyWrite}
		if a == TC {
			// TC canonical: push, topo, det, rmw.
			return c
		}
		return c
	}
	cases := []struct {
		name string
		c    Config
	}{
		{"PR edge-based", func() Config { c := base(PR, OMP); c.Iterate = EdgeBased; return c }()},
		{"PR data-driven", func() Config { c := base(PR, OMP); c.Drive = DataDrivenNoDup; c.Det = NonDeterministic; return c }()},
		{"TC pull", func() Config { c := base(TC, OMP); c.Flow = Pull; return c }()},
		{"TC non-deterministic", func() Config { c := base(TC, OMP); c.Det = NonDeterministic; return c }()},
		{"MIS read-write", func() Config { c := base(MIS, CPP); c.Update = ReadWrite; return c }()},
		{"MIS dup worklist", func() Config {
			c := base(MIS, CPP)
			c.Drive = DataDrivenDup
			c.Det = NonDeterministic
			return c
		}()},
		{"PR CudaAtomic", func() Config { c := base(PR, CUDA); c.Atomics = CudaAtomic; return c }()},
		{"CudaAtomic on CPU", func() Config { c := base(CC, OMP); c.Atomics = CudaAtomic; return c }()},
		{"edge-based pull", func() Config { c := base(CC, OMP); c.Iterate = EdgeBased; c.Flow = Pull; return c }()},
		{"edge-based data-driven", func() Config {
			c := base(CC, OMP)
			c.Iterate = EdgeBased
			c.Drive = DataDrivenDup
			c.Det = NonDeterministic
			return c
		}()},
		{"deterministic data-driven", func() Config { c := base(SSSP, CPP); c.Drive = DataDrivenDup; return c }()},
		{"deterministic read-write", func() Config { c := base(SSSP, CPP); c.Update = ReadWrite; return c }()},
		{"PR push non-deterministic", func() Config {
			c := base(PR, OMP)
			c.Flow = Push
			c.Det = NonDeterministic
			return c
		}()},
		{"edge warp non-TC", func() Config { c := base(SSSP, CUDA); c.Iterate = EdgeBased; c.Gran = WarpGran; return c }()},
		{"OMP sched on CPP", func() Config { c := base(CC, CPP); c.OMPSched = DynamicSched; return c }()},
		{"CPP sched on OMP", func() Config { c := base(CC, OMP); c.CPPSched = CyclicSched; return c }()},
		{"gran on CPU", func() Config { c := base(CC, OMP); c.Gran = WarpGran; return c }()},
		{"GPU reduction on CC", func() Config { c := base(CC, CUDA); c.GPURed = BlockAdd; return c }()},
		{"CPU reduction on BFS", func() Config { c := base(BFS, OMP); c.CPURed = ClauseRed; return c }()},
	}
	for _, tc := range cases {
		if Valid(tc.c) {
			t.Errorf("%s: Valid(%s) = true, want false", tc.name, tc.c.Name())
		}
	}
}

func TestValidAcceptsCanonicalConfigs(t *testing.T) {
	cases := []Config{
		{Algo: SSSP, Model: CUDA, Gran: WarpGran, Persist: Persistent, Atomics: CudaAtomic},
		{Algo: BFS, Model: OMP, Drive: DataDrivenNoDup, Update: ReadModifyWrite, OMPSched: DynamicSched},
		{Algo: TC, Model: CPP, Iterate: EdgeBased, Det: Deterministic, Update: ReadModifyWrite, CPURed: ClauseRed, CPPSched: CyclicSched},
		{Algo: PR, Model: CUDA, Flow: Pull, Update: ReadModifyWrite, GPURed: ReductionAdd},
		{Algo: MIS, Model: CPP, Update: ReadModifyWrite, Det: Deterministic},
		{Algo: TC, Model: CUDA, Iterate: EdgeBased, Gran: BlockGran, Det: Deterministic, Update: ReadModifyWrite, GPURed: ReductionAdd},
	}
	for _, c := range cases {
		if !Valid(c) {
			t.Errorf("Valid(%s) = false, want true", c.Name())
		}
	}
}

func TestNameContainsOnlyApplicableDims(t *testing.T) {
	c := Config{Algo: CC, Model: OMP}
	name := c.Name()
	for _, frag := range []string{"thread", "npers", "atomic-red", "global-add", "blocked"} {
		if strings.Contains(name, frag) {
			t.Errorf("CPU CC name %q contains inapplicable dim %q", name, frag)
		}
	}
	if !strings.Contains(name, "default") {
		t.Errorf("OMP name %q missing schedule", name)
	}
	g := Config{Algo: TC, Model: CUDA, Det: Deterministic, Update: ReadModifyWrite}
	gname := g.Name()
	for _, frag := range []string{"thread", "npers", "global-add", "atomic"} {
		if !strings.Contains(gname, frag) {
			t.Errorf("CUDA TC name %q missing %q", gname, frag)
		}
	}
}

func TestKeyWithoutGroupsPairs(t *testing.T) {
	flow := DimByKey("flow")
	if flow == nil {
		t.Fatal("no flow dim")
	}
	push := Config{Algo: SSSP, Model: CPP, Flow: Push, Det: NonDeterministic}
	pull := push
	pull.Flow = Pull
	if push.KeyWithout(flow) != pull.KeyWithout(flow) {
		t.Errorf("push/pull pair keys differ:\n%s\n%s",
			push.KeyWithout(flow), pull.KeyWithout(flow))
	}
	other := push
	other.Det = Deterministic
	other.Update = ReadModifyWrite
	if push.KeyWithout(flow) == other.KeyWithout(flow) {
		t.Error("configs differing in det share a pair key")
	}
}

func TestDimSetRoundTrip(t *testing.T) {
	for _, d := range Dims {
		c := Config{Algo: SSSP, Model: CUDA}
		for i := 0; i < d.NumValues; i++ {
			got := d.Set(c, i)
			// Setting and reading back must be consistent: set twice is
			// idempotent.
			if d.Set(got, i) != got {
				t.Errorf("dim %s: Set not idempotent at %d", d.Key, i)
			}
		}
	}
	if DimByKey("nope") != nil {
		t.Error("DimByKey(nope) != nil")
	}
}

func TestStringersTotal(t *testing.T) {
	for a := Algorithm(0); a < NumAlgorithms; a++ {
		if a.String() == "unknown" {
			t.Errorf("algorithm %d has no name", a)
		}
	}
	for m := Model(0); m < NumModels; m++ {
		if m.String() == "unknown" {
			t.Errorf("model %d has no name", m)
		}
	}
	for _, s := range []string{
		VertexBased.String(), EdgeBased.String(),
		TopologyDriven.String(), DataDrivenDup.String(), DataDrivenNoDup.String(),
		Push.String(), Pull.String(), ReadWrite.String(), ReadModifyWrite.String(),
		NonDeterministic.String(), Deterministic.String(),
		NonPersistent.String(), Persistent.String(),
		ThreadGran.String(), WarpGran.String(), BlockGran.String(),
		ClassicAtomic.String(), CudaAtomic.String(),
		GlobalAdd.String(), BlockAdd.String(), ReductionAdd.String(),
		AtomicRed.String(), CriticalRed.String(), ClauseRed.String(),
		DefaultSched.String(), DynamicSched.String(),
		BlockedSched.String(), CyclicSched.String(),
	} {
		if s == "unknown" || s == "" {
			t.Errorf("a style value has no name")
		}
	}
}
