package styles

// Dim describes one style dimension generically, so the harness can name
// variants, group paired configurations, and sweep alternatives without
// knowing each dimension's concrete type.
type Dim struct {
	// Key is the dimension's short name (used in reports).
	Key string
	// Applies reports whether the dimension is free (has more than one
	// legal value) for the given config's algorithm and model.
	Applies func(Config) bool
	// Value renders the config's setting of this dimension.
	Value func(Config) string
	// Set returns a copy of the config with this dimension set to
	// alternative i (0-based); NumValues gives the alternative count.
	Set func(Config, int) Config
	// NumValues is the number of alternatives of this dimension.
	NumValues int
}

// Dims lists every style dimension in presentation order (§2.1–§2.12).
// The Drive and Duplicates dimensions of the paper are folded into the
// single three-valued Drive dimension; DimDup below re-exposes the pair
// views the paper's Figures 3 and 4 need.
var Dims = []*Dim{
	{
		Key:       "iterate",
		Applies:   func(c Config) bool { return true },
		Value:     func(c Config) string { return c.Iterate.String() },
		Set:       func(c Config, i int) Config { c.Iterate = Iterate(i); return c },
		NumValues: 2,
	},
	{
		Key:       "drive",
		Applies:   func(c Config) bool { return true },
		Value:     func(c Config) string { return c.Drive.String() },
		Set:       func(c Config, i int) Config { c.Drive = Drive(i); return c },
		NumValues: 3,
	},
	{
		Key:       "flow",
		Applies:   func(c Config) bool { return true },
		Value:     func(c Config) string { return c.Flow.String() },
		Set:       func(c Config, i int) Config { c.Flow = Flow(i); return c },
		NumValues: 2,
	},
	{
		Key:       "update",
		Applies:   func(c Config) bool { return true },
		Value:     func(c Config) string { return c.Update.String() },
		Set:       func(c Config, i int) Config { c.Update = Update(i); return c },
		NumValues: 2,
	},
	{
		Key:       "det",
		Applies:   func(c Config) bool { return true },
		Value:     func(c Config) string { return c.Det.String() },
		Set:       func(c Config, i int) Config { c.Det = Det(i); return c },
		NumValues: 2,
	},
	{
		Key:       "gran",
		Applies:   func(c Config) bool { return c.Model == CUDA },
		Value:     func(c Config) string { return c.Gran.String() },
		Set:       func(c Config, i int) Config { c.Gran = Gran(i); return c },
		NumValues: 3,
	},
	{
		Key:       "persist",
		Applies:   func(c Config) bool { return c.Model == CUDA },
		Value:     func(c Config) string { return c.Persist.String() },
		Set:       func(c Config, i int) Config { c.Persist = Persist(i); return c },
		NumValues: 2,
	},
	{
		Key:       "atomics",
		Applies:   func(c Config) bool { return c.Model == CUDA },
		Value:     func(c Config) string { return c.Atomics.String() },
		Set:       func(c Config, i int) Config { c.Atomics = Atomics(i); return c },
		NumValues: 2,
	},
	{
		Key:       "gpured",
		Applies:   func(c Config) bool { return c.Model == CUDA && hasReduction(c.Algo) },
		Value:     func(c Config) string { return c.GPURed.String() },
		Set:       func(c Config, i int) Config { c.GPURed = GPURed(i); return c },
		NumValues: 3,
	},
	{
		Key:       "cpured",
		Applies:   func(c Config) bool { return c.Model != CUDA && hasReduction(c.Algo) },
		Value:     func(c Config) string { return c.CPURed.String() },
		Set:       func(c Config, i int) Config { c.CPURed = CPURed(i); return c },
		NumValues: 3,
	},
	{
		Key:       "ompsched",
		Applies:   func(c Config) bool { return c.Model == OMP },
		Value:     func(c Config) string { return c.OMPSched.String() },
		Set:       func(c Config, i int) Config { c.OMPSched = OMPSched(i); return c },
		NumValues: 2,
	},
	{
		Key:       "cppsched",
		Applies:   func(c Config) bool { return c.Model == CPP },
		Value:     func(c Config) string { return c.CPPSched.String() },
		Set:       func(c Config, i int) Config { c.CPPSched = CPPSched(i); return c },
		NumValues: 2,
	},
}

// DimByKey returns the dimension with the given key, or nil.
func DimByKey(key string) *Dim {
	for _, d := range Dims {
		if d.Key == key {
			return d
		}
	}
	return nil
}

// KeyWithout renders the config's name with the given dimension's value
// masked out. Two configs share a KeyWithout exactly when they differ
// only in that dimension — the pairing the paper's ratio figures use
// ("keeping the other styles fixed", §5).
func (c Config) KeyWithout(d *Dim) string {
	name := c.Algo.String() + "/" + c.Model.String()
	for _, dim := range Dims {
		if !dim.Applies(c) {
			continue
		}
		if dim == d {
			name += "/*"
		} else {
			name += "/" + dim.Value(c)
		}
	}
	return name
}
