package styles

// caps encodes paper Table 2: which styles are included per algorithm.
// A false field means the dimension is pinned to its canonical value for
// that algorithm (the "+" column of the pair in Table 2).
type caps struct {
	edgeBased   bool // vertex-based is always available
	dataDriven  bool // topology-driven is always available
	dupWorklist bool // duplicates-in-worklist (requires dataDriven)
	pull        bool // push is always available (except PR, see pinnedFlow)
	readWrite   bool // read-modify-write is always available
	nonDet      bool // deterministic is always available
	cudaAtomic  bool // classic atomics are always available
	reduction   bool // has the sum-reduction style dimensions (TC, PR)
}

// capsOf mirrors paper Table 2 row-by-row.
var capsOf = map[Algorithm]caps{
	CC:   {edgeBased: true, dataDriven: true, dupWorklist: true, pull: true, readWrite: true, nonDet: true, cudaAtomic: true},
	MIS:  {edgeBased: true, dataDriven: true, dupWorklist: false, pull: true, readWrite: false, nonDet: true, cudaAtomic: true},
	PR:   {edgeBased: false, dataDriven: false, dupWorklist: false, pull: true, readWrite: false, nonDet: true, cudaAtomic: false, reduction: true},
	TC:   {edgeBased: true, dataDriven: false, dupWorklist: false, pull: false, readWrite: false, nonDet: false, cudaAtomic: true, reduction: true},
	BFS:  {edgeBased: true, dataDriven: true, dupWorklist: true, pull: true, readWrite: true, nonDet: true, cudaAtomic: true},
	SSSP: {edgeBased: true, dataDriven: true, dupWorklist: true, pull: true, readWrite: true, nonDet: true, cudaAtomic: true},
}

func hasReduction(a Algorithm) bool { return capsOf[a].reduction }

// Valid reports whether c is a meaningful style combination: the
// algorithm supports every selected style (Table 2) and the combination
// pruning rules below hold. The rules and their rationale:
//
//  1. Edge-based codes are push-only: both directions of every edge are
//     stored (§4.2), so an edge-based pull sweep is the mirror image of
//     the push sweep over the reversed COO entries.
//  2. Edge-based codes are topology-driven: the worklists hold vertices.
//  3. Data-driven codes are vertex-based (rule 2's contrapositive) and
//     internally non-deterministic: the worklist exists to consume
//     same-iteration updates.
//  4. Deterministic codes use read-modify-write: the read-write trick
//     only differs from RMW for racy in-place updates (§2.5/§2.6).
//  5. PR push-style codes are deterministic-only (§5.4, §5.6).
//  6. TC is a single topology-driven deterministic push sweep; only its
//     iteration order and reduction style vary (Table 2).
//  7. Warp/block granularity requires a per-item inner loop: vertex-based
//     codes always have one (the neighbor loop); among edge-based codes
//     only TC does (the adjacency intersection), so other edge-based
//     codes are thread-granularity only.
//  8. PR's CudaAtomic variant does not exist (no float support, §5.1).
//  9. Model-specific dimensions must be zero for other models.
func Valid(c Config) bool {
	cp, ok := capsOf[c.Algo]
	if !ok {
		return false
	}
	// Table 2 applicability.
	if c.Iterate == EdgeBased && !cp.edgeBased {
		return false
	}
	if c.Drive.IsDataDriven() && !cp.dataDriven {
		return false
	}
	if c.Drive == DataDrivenDup && !cp.dupWorklist {
		return false
	}
	if c.Flow == Pull && !cp.pull {
		return false
	}
	if c.Update == ReadWrite && !cp.readWrite {
		return false
	}
	if c.Det == NonDeterministic && !cp.nonDet {
		return false
	}
	if c.Atomics == CudaAtomic && (!cp.cudaAtomic || c.Model != CUDA) {
		return false
	}
	// Rule 1, 2: edge-based is push-only and topology-driven.
	if c.Iterate == EdgeBased && (c.Flow == Pull || c.Drive.IsDataDriven()) {
		return false
	}
	// Rule 3: data-driven is non-deterministic.
	if c.Drive.IsDataDriven() && c.Det == Deterministic {
		return false
	}
	// Rule 4: deterministic implies read-modify-write.
	if c.Det == Deterministic && c.Update == ReadWrite {
		return false
	}
	// Rule 4b: read-write requires topology-driven. The racy
	// load-then-store can lose a concurrent smaller update; a
	// topology-driven full sweep re-relaxes every edge next iteration
	// and self-heals (the "resilient to temporary priority inversions"
	// condition of §2.5), but a data-driven worklist never re-relaxes
	// the losing edge, so the final result would be wrong.
	if c.Update == ReadWrite && c.Drive.IsDataDriven() {
		return false
	}
	// Rule 5: PR push is deterministic-only.
	if c.Algo == PR && c.Flow == Push && c.Det == NonDeterministic {
		return false
	}
	// Rule 7: warp/block granularity needs an inner loop.
	if c.Model == CUDA && c.Gran != ThreadGran && c.Iterate == EdgeBased && c.Algo != TC {
		return false
	}
	// Rule 9: dimensions of other models must be unset.
	if c.Model != CUDA && (c.Persist != NonPersistent || c.Gran != ThreadGran ||
		c.Atomics != ClassicAtomic || c.GPURed != GlobalAdd) {
		return false
	}
	if (c.Model == CUDA || !cp.reduction) && c.CPURed != AtomicRed {
		return false
	}
	if c.Model == CUDA && cp.reduction {
		// fine: GPURed free
	} else if c.GPURed != GlobalAdd {
		return false
	}
	if c.Model != OMP && c.OMPSched != DefaultSched {
		return false
	}
	if c.Model != CPP && c.CPPSched != BlockedSched {
		return false
	}
	return true
}

// Enumerate returns every valid style combination for the given
// algorithm and model, in a deterministic order. The result is the
// Go analog of the generated program set behind paper Table 3.
func Enumerate(a Algorithm, m Model) []Config {
	var out []Config
	base := Config{Algo: a, Model: m}
	grans := 1
	persists := 1
	atomics := 1
	gpureds := 1
	cpureds := 1
	ompscheds := 1
	cppscheds := 1
	switch m {
	case CUDA:
		grans, persists, atomics = 3, 2, 2
		if hasReduction(a) {
			gpureds = 3
		}
	case OMP:
		ompscheds = 2
		if hasReduction(a) {
			cpureds = 3
		}
	case CPP:
		cppscheds = 2
		if hasReduction(a) {
			cpureds = 3
		}
	}
	for it := 0; it < 2; it++ {
		for dr := 0; dr < 3; dr++ {
			for fl := 0; fl < 2; fl++ {
				for up := 0; up < 2; up++ {
					for de := 0; de < 2; de++ {
						for gr := 0; gr < grans; gr++ {
							for pe := 0; pe < persists; pe++ {
								for at := 0; at < atomics; at++ {
									for gre := 0; gre < gpureds; gre++ {
										for cre := 0; cre < cpureds; cre++ {
											for os := 0; os < ompscheds; os++ {
												for cs := 0; cs < cppscheds; cs++ {
													c := base
													c.Iterate = Iterate(it)
													c.Drive = Drive(dr)
													c.Flow = Flow(fl)
													c.Update = Update(up)
													c.Det = Det(de)
													c.Gran = Gran(gr)
													c.Persist = Persist(pe)
													c.Atomics = Atomics(at)
													c.GPURed = GPURed(gre)
													c.CPURed = CPURed(cre)
													c.OMPSched = OMPSched(os)
													c.CPPSched = CPPSched(cs)
													if Valid(c) {
														out = append(out, c)
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// EnumerateAll returns the full suite: every valid config of every
// algorithm under every model.
func EnumerateAll() []Config {
	var out []Config
	for m := Model(0); m < NumModels; m++ {
		for a := Algorithm(0); a < NumAlgorithms; a++ {
			out = append(out, Enumerate(a, m)...)
		}
	}
	return out
}

// CountTable returns the Table 3 analog: per-model, per-algorithm
// variant counts, indexed [model][algorithm].
func CountTable() [NumModels][NumAlgorithms]int {
	var t [NumModels][NumAlgorithms]int
	for m := Model(0); m < NumModels; m++ {
		for a := Algorithm(0); a < NumAlgorithms; a++ {
			t[m][a] = len(Enumerate(a, m))
		}
	}
	return t
}
