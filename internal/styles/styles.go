// Package styles is the heart of the reproduction: it models the paper's
// 13 parallelization and implementation style dimensions (§2), the
// per-algorithm applicability matrix (Table 2), and the enumeration of
// meaningful style combinations that defines the program suite (Table 3).
//
// A Config value identifies one program variant, the analog of one
// generated source file in the Indigo2 suite. Algorithm packages
// dispatch on Config fields to realize the variant.
package styles

import "strings"

// Algorithm enumerates the six graph problems of paper Table 1.
type Algorithm int

const (
	BFS Algorithm = iota
	SSSP
	CC
	MIS
	PR
	TC
	NumAlgorithms
)

func (a Algorithm) String() string {
	switch a {
	case BFS:
		return "bfs"
	case SSSP:
		return "sssp"
	case CC:
		return "cc"
	case MIS:
		return "mis"
	case PR:
		return "pr"
	case TC:
		return "tc"
	}
	return "unknown"
}

// Model enumerates the three programming models (§2): CUDA runs on the
// gpusim substrate, OMP and CPP on the par substrate.
type Model int

const (
	CUDA Model = iota
	OMP
	CPP
	NumModels
)

func (m Model) String() string {
	switch m {
	case CUDA:
		return "cuda"
	case OMP:
		return "omp"
	case CPP:
		return "cpp"
	}
	return "unknown"
}

// Iterate: vertex-based vs edge-based (§2.1).
type Iterate int

const (
	VertexBased Iterate = iota
	EdgeBased
)

func (v Iterate) String() string {
	if v == VertexBased {
		return "vertex"
	}
	return "edge"
}

// Drive: topology-driven vs data-driven, the latter split by the
// duplicates-in-worklist style (§2.2, §2.3).
type Drive int

const (
	TopologyDriven Drive = iota
	DataDrivenDup
	DataDrivenNoDup
)

func (d Drive) String() string {
	switch d {
	case TopologyDriven:
		return "topo"
	case DataDrivenDup:
		return "data-dup"
	case DataDrivenNoDup:
		return "data-nodup"
	}
	return "unknown"
}

// IsDataDriven reports whether d uses a worklist.
func (d Drive) IsDataDriven() bool { return d != TopologyDriven }

// Flow: push vs pull data flow (§2.4).
type Flow int

const (
	Push Flow = iota
	Pull
)

func (f Flow) String() string {
	if f == Push {
		return "push"
	}
	return "pull"
}

// Update: read-write vs read-modify-write (§2.5).
type Update int

const (
	ReadWrite Update = iota
	ReadModifyWrite
)

func (u Update) String() string {
	if u == ReadWrite {
		return "rw"
	}
	return "rmw"
}

// Det: internally deterministic vs non-deterministic (§2.6).
type Det int

const (
	NonDeterministic Det = iota
	Deterministic
)

func (d Det) String() string {
	if d == NonDeterministic {
		return "nondet"
	}
	return "det"
}

// Persist: persistent vs non-persistent GPU threads (§2.7).
type Persist int

const (
	NonPersistent Persist = iota
	Persistent
)

func (p Persist) String() string {
	if p == NonPersistent {
		return "npers"
	}
	return "pers"
}

// Gran: thread vs warp vs block work granularity on the GPU (§2.8).
type Gran int

const (
	ThreadGran Gran = iota
	WarpGran
	BlockGran
)

func (g Gran) String() string {
	switch g {
	case ThreadGran:
		return "thread"
	case WarpGran:
		return "warp"
	case BlockGran:
		return "block"
	}
	return "unknown"
}

// Atomics: classic CUDA atomics vs default libcu++ CudaAtomics (§2.9).
type Atomics int

const (
	ClassicAtomic Atomics = iota
	CudaAtomic
)

func (a Atomics) String() string {
	if a == ClassicAtomic {
		return "atomic"
	}
	return "cudaatomic"
}

// GPURed: GPU sum-reduction style (§2.10.1), TC and PR only.
type GPURed int

const (
	GlobalAdd GPURed = iota
	BlockAdd
	ReductionAdd
)

func (r GPURed) String() string {
	switch r {
	case GlobalAdd:
		return "global-add"
	case BlockAdd:
		return "block-add"
	case ReductionAdd:
		return "reduction-add"
	}
	return "unknown"
}

// CPURed: CPU sum-reduction style (§2.10.2), TC and PR only.
type CPURed int

const (
	AtomicRed CPURed = iota
	CriticalRed
	ClauseRed
)

func (r CPURed) String() string {
	switch r {
	case AtomicRed:
		return "atomic-red"
	case CriticalRed:
		return "critical-red"
	case ClauseRed:
		return "clause-red"
	}
	return "unknown"
}

// OMPSched: default vs dynamic loop scheduling in the OMP model (§2.11).
type OMPSched int

const (
	DefaultSched OMPSched = iota
	DynamicSched
)

func (s OMPSched) String() string {
	if s == DefaultSched {
		return "default"
	}
	return "dynamic"
}

// CPPSched: blocked vs cyclic scheduling in the CPP model (§2.12).
type CPPSched int

const (
	BlockedSched CPPSched = iota
	CyclicSched
)

func (s CPPSched) String() string {
	if s == BlockedSched {
		return "blocked"
	}
	return "cyclic"
}

// Config identifies one program variant: an algorithm, a programming
// model, and a value for every style dimension that applies. Dimensions
// that do not apply to the algorithm/model hold their zero value and are
// omitted from Name.
type Config struct {
	Algo  Algorithm
	Model Model

	Iterate Iterate
	Drive   Drive
	Flow    Flow
	Update  Update
	Det     Det

	// GPU-only dimensions.
	Persist Persist
	Gran    Gran
	Atomics Atomics
	GPURed  GPURed

	// CPU-only dimensions.
	CPURed   CPURed
	OMPSched OMPSched
	CPPSched CPPSched
}

// Name returns the canonical variant name, e.g.
// "sssp/cuda/vertex/topo/push/rmw/nondet/thread/npers/atomic".
// Only applicable dimensions appear.
func (c Config) Name() string {
	parts := []string{c.Algo.String(), c.Model.String()}
	for _, d := range Dims {
		if d.Applies(c) {
			parts = append(parts, d.Value(c))
		}
	}
	return strings.Join(parts, "/")
}
