package runner

import (
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/styles"
	"indigo/internal/verify"
)

// TestEveryGPUVariantVerifies runs all 518 CUDA-model variants on the
// tiny study inputs and checks every result against the serial
// references, mirroring §4.1 for the simulated GPUs.
func TestEveryGPUVariantVerifies(t *testing.T) {
	graphs := testGraphs(t)
	opt := algo.Options{Threads: 4}
	for _, g := range graphs {
		ref := verify.NewReference(g, opt)
		d := gpusim.New(gpusim.RTXSim())
		for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
			for _, cfg := range styles.Enumerate(a, styles.CUDA) {
				res, st, err := RunGPU(d, g, cfg, opt)
				if err == nil {
					err = ref.Check(cfg, res)
				}
				if err != nil {
					t.Errorf("graph %s: %v", g.Name, err)
				}
				if st.Cycles <= 0 {
					t.Errorf("graph %s: %s reported %d cycles", g.Name, cfg.Name(), st.Cycles)
				}
			}
		}
	}
}

// TestGPUVariantsOnTitanProfile spot-checks the second device profile.
func TestGPUVariantsOnTitanProfile(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	opt := algo.Options{}
	ref := verify.NewReference(g, opt)
	d := gpusim.New(gpusim.TitanSim())
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		cfgs := styles.Enumerate(a, styles.CUDA)
		for _, cfg := range cfgs[:min(6, len(cfgs))] {
			res, _, err := RunGPU(d, g, cfg, opt)
			if err == nil {
				err = ref.Check(cfg, res)
			}
			if err != nil {
				t.Error(err)
			}
		}
	}
}

func TestTimeGPUPositiveThroughput(t *testing.T) {
	g := gen.Generate(gen.InputSocial, gen.Tiny)
	d := gpusim.New(gpusim.RTXSim())
	cfg := styles.Enumerate(styles.BFS, styles.CUDA)[0]
	res, tput, err := TimeGPU(d, g, cfg, algo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Errorf("throughput = %v", tput)
	}
	if err := verify.NewReference(g, algo.Options{}).Check(cfg, res); err != nil {
		t.Error(err)
	}
}

func TestRunDispatch(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	d := gpusim.New(gpusim.RTXSim())
	opt := algo.Options{}
	ref := verify.NewReference(g, opt)
	gpuCfg := styles.Enumerate(styles.CC, styles.CUDA)[0]
	cpuCfg := styles.Enumerate(styles.CC, styles.OMP)[0]
	gres, err := Run(d, g, gpuCfg, opt)
	if err == nil {
		err = ref.Check(gpuCfg, gres)
	}
	if err != nil {
		t.Error(err)
	}
	cres, err := Run(nil, g, cpuCfg, opt)
	if err == nil {
		err = ref.Check(cpuCfg, cres)
	}
	if err != nil {
		t.Error(err)
	}
	if _, tput, err := Time(d, g, gpuCfg, opt); err != nil || tput <= 0 {
		t.Errorf("Time GPU dispatch: tput=%v err=%v", tput, err)
	}
	if _, tput, err := Time(nil, g, cpuCfg, opt); err != nil || tput <= 0 {
		t.Errorf("Time CPU dispatch: tput=%v err=%v", tput, err)
	}
}

// TestRunGPURejectsCPUConfig: dispatch mismatches and a nil device are
// recoverable caller errors, not panics.
func TestRunGPURejectsCPUConfig(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	ompCfg := styles.Config{Algo: styles.BFS, Model: styles.OMP}
	if _, _, err := RunGPU(gpusim.New(gpusim.RTXSim()), g, ompCfg, algo.Options{}); err == nil {
		t.Fatal("RunGPU with OMP config did not return an error")
	}
	cudaCfg := styles.Config{Algo: styles.BFS, Model: styles.CUDA}
	if _, _, err := RunGPU(nil, g, cudaCfg, algo.Options{}); err == nil {
		t.Fatal("RunGPU with nil device did not return an error")
	}
}
