package runner

import (
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/styles"
	"indigo/internal/verify"
)

// TestEveryGPUVariantVerifies runs all 518 CUDA-model variants on the
// tiny study inputs and checks every result against the serial
// references, mirroring §4.1 for the simulated GPUs.
func TestEveryGPUVariantVerifies(t *testing.T) {
	graphs := testGraphs(t)
	opt := algo.Options{Threads: 4}
	for _, g := range graphs {
		ref := verify.NewReference(g, opt)
		d := gpusim.New(gpusim.RTXSim())
		for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
			for _, cfg := range styles.Enumerate(a, styles.CUDA) {
				res, st := RunGPU(d, g, cfg, opt)
				if err := ref.Check(cfg, res); err != nil {
					t.Errorf("graph %s: %v", g.Name, err)
				}
				if st.Cycles <= 0 {
					t.Errorf("graph %s: %s reported %d cycles", g.Name, cfg.Name(), st.Cycles)
				}
			}
		}
	}
}

// TestGPUVariantsOnTitanProfile spot-checks the second device profile.
func TestGPUVariantsOnTitanProfile(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	opt := algo.Options{}
	ref := verify.NewReference(g, opt)
	d := gpusim.New(gpusim.TitanSim())
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		cfgs := styles.Enumerate(a, styles.CUDA)
		for _, cfg := range cfgs[:min(6, len(cfgs))] {
			res, _ := RunGPU(d, g, cfg, opt)
			if err := ref.Check(cfg, res); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestTimeGPUPositiveThroughput(t *testing.T) {
	g := gen.Generate(gen.InputSocial, gen.Tiny)
	d := gpusim.New(gpusim.RTXSim())
	cfg := styles.Enumerate(styles.BFS, styles.CUDA)[0]
	res, tput := TimeGPU(d, g, cfg, algo.Options{})
	if tput <= 0 {
		t.Errorf("throughput = %v", tput)
	}
	if err := verify.NewReference(g, algo.Options{}).Check(cfg, res); err != nil {
		t.Error(err)
	}
}

func TestRunDispatch(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	d := gpusim.New(gpusim.RTXSim())
	opt := algo.Options{}
	ref := verify.NewReference(g, opt)
	gpuCfg := styles.Enumerate(styles.CC, styles.CUDA)[0]
	cpuCfg := styles.Enumerate(styles.CC, styles.OMP)[0]
	if err := ref.Check(gpuCfg, Run(d, g, gpuCfg, opt)); err != nil {
		t.Error(err)
	}
	if err := ref.Check(cpuCfg, Run(nil, g, cpuCfg, opt)); err != nil {
		t.Error(err)
	}
	if _, tput := Time(d, g, gpuCfg, opt); tput <= 0 {
		t.Error("Time GPU dispatch returned 0 throughput")
	}
	if _, tput := Time(nil, g, cpuCfg, opt); tput <= 0 {
		t.Error("Time CPU dispatch returned 0 throughput")
	}
}

func TestRunGPURejectsCPUConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunGPU with OMP config did not panic")
		}
	}()
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	RunGPU(gpusim.New(gpusim.RTXSim()), g, styles.Config{Algo: styles.BFS, Model: styles.OMP}, algo.Options{})
}
