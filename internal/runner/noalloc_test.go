package runner

import (
	"math"
	"reflect"
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// pickCfg returns the first enumerated variant of algorithm a under
// model that satisfies want; the enumeration is deterministic, so the
// choice is stable across runs.
func pickCfg(t *testing.T, a styles.Algorithm, model styles.Model, want func(styles.Config) bool) styles.Config {
	t.Helper()
	for _, cfg := range styles.Enumerate(a, model) {
		if want(cfg) {
			return cfg
		}
	}
	t.Fatalf("no %v/%v variant matches the predicate", a, model)
	return styles.Config{}
}

// noAllocCases is one representative CPU variant per family, chosen to
// cover all the scratch-checkout paths: data-driven worklists with and
// without the stamp, deterministic double buffering, the OMP critical
// singletons, and all three reduction styles.
func noAllocCases(t *testing.T) []styles.Config {
	return []styles.Config{
		pickCfg(t, styles.BFS, styles.CPP, func(c styles.Config) bool {
			return c.Drive == styles.DataDrivenNoDup && c.Flow == styles.Push
		}),
		pickCfg(t, styles.SSSP, styles.OMP, func(c styles.Config) bool {
			return c.Drive == styles.TopologyDriven && c.Flow == styles.Push &&
				c.Det == styles.NonDeterministic
		}),
		pickCfg(t, styles.CC, styles.CPP, func(c styles.Config) bool {
			return c.Drive == styles.TopologyDriven && c.Flow == styles.Pull &&
				c.Det == styles.Deterministic
		}),
		pickCfg(t, styles.MIS, styles.CPP, func(c styles.Config) bool {
			return c.Drive.IsDataDriven()
		}),
		pickCfg(t, styles.PR, styles.OMP, func(c styles.Config) bool {
			return c.Flow == styles.Pull && c.Det == styles.Deterministic &&
				c.CPURed == styles.ClauseRed
		}),
		pickCfg(t, styles.TC, styles.CPP, func(c styles.Config) bool {
			return c.Iterate == styles.VertexBased && c.CPURed == styles.AtomicRed
		}),
	}
}

// TestNoAllocSteadyState is the tentpole acceptance check: once a run's
// scratch arena and pinned pool are warm (slabs sized, kernel contexts
// built, worklists at their high-water capacity), repeating the run must
// perform zero heap allocations.
func TestNoAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector allocates per instrumented access")
	}
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	for _, cfg := range noAllocCases(t) {
		t.Run(cfg.Name(), func(t *testing.T) {
			const threads = 4
			pool := par.NewPool(threads)
			defer pool.Close()
			arena := scratch.New()
			opt := algo.Options{Threads: threads, Pool: pool, Scratch: arena}
			run := func() {
				arena.Reset()
				if _, err := RunCPU(g, cfg, opt); err != nil {
					t.Fatal(err)
				}
			}
			// Three warmup runs: the first populates the arena, and the
			// second can still grow a worklist once if checkout order
			// assigned the round-robin slabs differently than run one.
			for i := 0; i < 3; i++ {
				run()
			}
			if avg := testing.AllocsPerRun(5, run); avg != 0 {
				t.Errorf("%s: %.1f allocs per warmed run, want 0", cfg.Name(), avg)
			}
		})
	}
}

// TestArenaResultsBitIdentical asserts the drop-in contract: running a
// variant with a scratch arena must produce exactly the output of the
// allocate-per-run path, for every family.
func TestArenaResultsBitIdentical(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	for _, cfg := range noAllocCases(t) {
		const threads = 4
		pool := par.NewPool(threads)
		arena := scratch.New()
		base := algo.Options{Threads: threads, Pool: pool, Source: 1}
		withArena := base
		withArena.Scratch = arena
		plain, err := RunCPU(g, cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		// Two arena runs so the comparison also covers slab reuse, not
		// just first-checkout state.
		for i := 0; i < 2; i++ {
			arena.Reset()
			got, err := RunCPU(g, cfg, withArena)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != plain.Iterations || got.Triangles != plain.Triangles ||
				!reflect.DeepEqual(got.Dist, plain.Dist) ||
				!reflect.DeepEqual(got.Label, plain.Label) ||
				!reflect.DeepEqual(got.InSet, plain.InSet) ||
				!equalRanks(got.Rank, plain.Rank) {
				t.Errorf("%s: arena run %d differs from allocate-per-run result", cfg.Name(), i+1)
			}
		}
		pool.Close()
	}
}

// equalRanks compares PageRank outputs bit-for-bit (NaN-safe, unlike
// reflect.DeepEqual on floats treating -0 and 0 as distinct is fine
// here: identical execution must give identical bits).
func equalRanks(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestTimeCPUDetachesAutoArenaResult pins the aliasing contract of the
// auto-acquired arena: TimeCPU releases the arena it acquired back to
// the process free list, so the result it returns must not alias arena
// memory (a later acquire would scribble over it).
func TestTimeCPUDetachesAutoArenaResult(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	cfg := pickCfg(t, styles.BFS, styles.CPP, func(c styles.Config) bool {
		return c.Drive == styles.TopologyDriven && c.Det == styles.NonDeterministic
	})
	res, _, err := TimeCPU(g, cfg, algo.Options{Threads: 2, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), res.Dist...)
	// Thrash the free-listed arena; a result still aliasing it would see
	// its distances cleared by checkout.
	for i := 0; i < 3; i++ {
		a := scratch.Acquire()
		_ = scratch.Slice[int32](a, int(g.N))
		scratch.Release(a)
	}
	if !reflect.DeepEqual(res.Dist, want) {
		t.Error("TimeCPU result was clobbered by arena reuse; Detach missing")
	}
}
