// Package runner dispatches a style configuration to the algorithm
// family that implements it, and times runs for throughput reporting.
package runner

import (
	"fmt"
	"time"

	"indigo/internal/algo"
	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/mis"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// RunCPU executes a CPU (OMP or CPP model) variant.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	if cfg.Model == styles.CUDA {
		panic(fmt.Sprintf("runner.RunCPU: %s is a GPU variant", cfg.Name()))
	}
	switch cfg.Algo {
	case styles.BFS:
		return bfs.RunCPU(g, cfg, opt)
	case styles.SSSP:
		return sssp.RunCPU(g, cfg, opt)
	case styles.CC:
		return cc.RunCPU(g, cfg, opt)
	case styles.MIS:
		return mis.RunCPU(g, cfg, opt)
	case styles.PR:
		return pr.RunCPU(g, cfg, opt)
	case styles.TC:
		return tc.RunCPU(g, cfg, opt)
	}
	panic(fmt.Sprintf("runner.RunCPU: unknown algorithm in %s", cfg.Name()))
}

// TimeCPU runs the variant and returns the result and the throughput in
// giga-edges per second (the paper's metric, §4.5: input edges divided
// by runtime).
func TimeCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64) {
	start := time.Now()
	res := RunCPU(g, cfg, opt)
	elapsed := time.Since(start).Seconds()
	return res, Throughput(g, elapsed)
}

// Throughput converts a runtime in seconds to giga-edges per second.
func Throughput(g *graph.Graph, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(g.M()) / seconds / 1e9
}
