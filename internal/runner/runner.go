// Package runner dispatches a style configuration to the algorithm
// family that implements it, and times runs for throughput reporting.
package runner

import (
	"fmt"
	"math"
	"time"

	"indigo/internal/algo"
	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/mis"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// RunCPU executes a CPU (OMP or CPP model) variant. Dispatching a
// configuration that has no CPU implementation (a CUDA variant) is a
// recoverable caller mistake and returns an error; only enum values
// outside the styles space, which no enumeration can produce, panic.
//
// RunCPU is the guard boundary: when opt.Guard trips mid-run, the
// kernel's cooperative abort unwinds to here and comes back as the
// token's sentinel error (guard.ErrCanceled, ErrDeadlineExceeded, or
// ErrBudgetExceeded) with a zero Result. Real kernel panics keep
// panicking through.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) (res algo.Result, err error) {
	if cfg.Model == styles.CUDA {
		return algo.Result{}, fmt.Errorf("runner.RunCPU: %s is a GPU variant", cfg.Name())
	}
	defer guard.Recover(&err)
	switch cfg.Algo {
	case styles.BFS:
		return bfs.RunCPU(g, cfg, opt), nil
	case styles.SSSP:
		return sssp.RunCPU(g, cfg, opt), nil
	case styles.CC:
		return cc.RunCPU(g, cfg, opt), nil
	case styles.MIS:
		return mis.RunCPU(g, cfg, opt), nil
	case styles.PR:
		return pr.RunCPU(g, cfg, opt), nil
	case styles.TC:
		return tc.RunCPU(g, cfg, opt), nil
	}
	panic(fmt.Sprintf("runner.RunCPU: impossible algorithm enum %d", cfg.Algo))
}

// TimeCPU runs the variant and returns the result and the throughput in
// giga-edges per second (the paper's metric, §4.5: input edges divided
// by runtime). When the caller has not pinned a worker pool, one is
// acquired for the whole run — outside the timed section, so measured
// runs pay only per-region dispatch, never pool construction. Likewise,
// when the caller has not supplied a scratch arena, one is acquired from
// the process-wide free list before the clock starts; since TimeCPU then
// releases the arena, the result is detached (copied) first — also
// outside the timed section. Callers that pass their own arena get the
// aliasing result untouched.
func TimeCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64, error) {
	sp := opt.Trace.Start("runner.time_cpu")
	if sp.Live() {
		sp = sp.Attr("variant", cfg.Name())
	}
	defer sp.End()
	acq := sp.Start("runner.acquire")
	if opt.Pool == nil {
		t := opt.Threads
		if t <= 0 {
			t = par.Threads()
		}
		p := par.AcquirePool(t)
		defer par.ReleasePool(p)
		opt.Pool = p
	}
	var owned *scratch.Arena
	if opt.Scratch == nil {
		owned = scratch.Acquire()
		opt.Scratch = owned
	}
	acq.End()
	kern := sp.Start("runner.kernel")
	opt.Trace = kern
	start := time.Now()
	res, err := RunCPU(g, cfg, opt)
	elapsed := time.Since(start).Seconds()
	kern.End()
	if owned != nil {
		res = res.Detach()
		scratch.Release(owned)
	}
	if err != nil {
		return algo.Result{}, math.NaN(), err
	}
	return res, Throughput(g, elapsed), nil
}

// Throughput converts a runtime in seconds to giga-edges per second.
// A zero or negative elapsed time is not a measurement: it yields NaN
// so collectors filter it instead of treating it as a (worst-case) zero
// throughput.
func Throughput(g *graph.Graph, seconds float64) float64 {
	if seconds <= 0 {
		return math.NaN()
	}
	return float64(g.M()) / seconds / 1e9
}
