package runner

import (
	"math"
	"strings"
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/styles"
	"indigo/internal/verify"
)

// testGraphs builds a small set of structurally diverse inputs: a tiny
// version of each study input plus a path (worst case for iterative
// convergence) and a clique (maximum contention).
func testGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	gs := gen.Suite(gen.Tiny)
	b := graph.NewBuilder("path32", 32)
	for v := int32(0); v+1 < 32; v++ {
		b.AddEdge(v, v+1, int32(v%7)+1)
	}
	gs = append(gs, b.Build())
	k := graph.NewBuilder("k12", 12)
	for u := int32(0); u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			k.AddEdge(u, v, u+2*v+1)
		}
	}
	gs = append(gs, k.Build())
	return gs
}

// TestEveryCPUVariantVerifies is the reproduction of the paper's
// verification methodology (§4.1): every enumerated OMP and CPP variant
// of every algorithm must produce the serial solution on every test
// input.
func TestEveryCPUVariantVerifies(t *testing.T) {
	graphs := testGraphs(t)
	opt := algo.Options{Threads: 8}
	for _, g := range graphs {
		ref := verify.NewReference(g, opt)
		for _, model := range []styles.Model{styles.OMP, styles.CPP} {
			for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
				for _, cfg := range styles.Enumerate(a, model) {
					res, err := RunCPU(g, cfg, opt)
					if err == nil {
						err = ref.Check(cfg, res)
					}
					if err != nil {
						t.Errorf("graph %s: %v", g.Name, err)
					}
				}
			}
		}
	}
}

// TestCPUVariantsSingleThread exercises the degenerate one-worker case
// across a sample of variants.
func TestCPUVariantsSingleThread(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	opt := algo.Options{Threads: 1}
	ref := verify.NewReference(g, opt)
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		cfgs := styles.Enumerate(a, styles.CPP)
		for _, cfg := range cfgs[:min(4, len(cfgs))] {
			res, err := RunCPU(g, cfg, opt)
			if err == nil {
				err = ref.Check(cfg, res)
			}
			if err != nil {
				t.Error(err)
			}
		}
	}
}

// TestCPUVariantsNonDefaultSource verifies BFS/SSSP from a non-zero
// source vertex.
func TestCPUVariantsNonDefaultSource(t *testing.T) {
	g := gen.Generate(gen.InputGrid, gen.Tiny)
	opt := algo.Options{Threads: 4, Source: g.N / 2}
	ref := verify.NewReference(g, opt)
	for _, a := range []styles.Algorithm{styles.BFS, styles.SSSP} {
		for _, cfg := range styles.Enumerate(a, styles.OMP) {
			res, err := RunCPU(g, cfg, opt)
			if err == nil {
				err = ref.Check(cfg, res)
			}
			if err != nil {
				t.Error(err)
			}
		}
	}
}

// TestThroughput is the regression test for the zero-elapsed case: a
// non-measurement must be NaN (filtered by collectors), never a 0 that
// the harness would rank as the worst style (see Session.Spread).
func TestThroughput(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	if got := Throughput(g, 0); !math.IsNaN(got) {
		t.Errorf("Throughput(0s) = %v, want NaN", got)
	}
	if got := Throughput(g, -1); !math.IsNaN(got) {
		t.Errorf("Throughput(-1s) = %v, want NaN", got)
	}
	want := float64(g.M()) / 1e9
	if got := Throughput(g, 1.0); got != want {
		t.Errorf("Throughput(1s) = %v, want %v", got, want)
	}
}

func TestTimeCPUVerifies(t *testing.T) {
	g := gen.Generate(gen.InputSocial, gen.Tiny)
	cfg := styles.Enumerate(styles.BFS, styles.CPP)[0]
	opt := algo.Options{Threads: 4}
	res, tput, err := TimeCPU(g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Errorf("throughput = %v, want > 0", tput)
	}
	if err := verify.NewReference(g, opt).Check(cfg, res); err != nil {
		t.Error(err)
	}
}

// TestRunCPURejectsGPUConfig: model mismatches are recoverable caller
// errors, not panics, so supervised and unsupervised callers alike can
// handle them.
func TestRunCPURejectsGPUConfig(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	_, err := RunCPU(g, styles.Config{Algo: styles.BFS, Model: styles.CUDA}, algo.Options{})
	if err == nil {
		t.Fatal("RunCPU with CUDA config did not return an error")
	}
	if !strings.Contains(err.Error(), "GPU variant") {
		t.Errorf("undescriptive error: %v", err)
	}
	if _, _, err := TimeCPU(g, styles.Config{Algo: styles.BFS, Model: styles.CUDA}, algo.Options{}); err == nil {
		t.Fatal("TimeCPU with CUDA config did not return an error")
	}
}
