//go:build race

package runner

// raceEnabled reports whether this test binary was built with the race
// detector; see race_off_test.go.
const raceEnabled = true
