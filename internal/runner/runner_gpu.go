package runner

import (
	"fmt"
	"math"

	"indigo/internal/algo"
	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/mis"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/styles"
	"indigo/internal/trace"
)

// RunGPU executes a CUDA-model variant on the given simulated device and
// returns the result and the simulated cost. Non-CUDA configurations
// and a nil device are recoverable caller mistakes and return an error.
//
// Like RunCPU, this is the guard boundary: opt.Guard is installed on the
// device for the run (launch-entry and per-cycle warp polls), and a
// cooperative abort surfaces as the token's sentinel error here.
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (res algo.Result, st gpusim.Stats, err error) {
	if cfg.Model != styles.CUDA {
		return algo.Result{}, gpusim.Stats{}, fmt.Errorf("runner.RunGPU: %s is not a CUDA variant", cfg.Name())
	}
	if d == nil {
		return algo.Result{}, gpusim.Stats{}, fmt.Errorf("runner.RunGPU: nil device for %s", cfg.Name())
	}
	sp := opt.Trace.Start("runner.run_gpu")
	if sp.Live() {
		sp = sp.Attr("variant", cfg.Name())
	}
	defer sp.End()
	d.SetGuard(opt.Guard)
	defer d.SetGuard(nil)
	d.SetTrace(sp)
	defer d.SetTrace(trace.Ctx{})
	defer guard.Recover(&err)
	switch cfg.Algo {
	case styles.BFS:
		res, st := bfs.RunGPU(d, g, cfg, opt)
		return res, st, nil
	case styles.SSSP:
		res, st := sssp.RunGPU(d, g, cfg, opt)
		return res, st, nil
	case styles.CC:
		res, st := cc.RunGPU(d, g, cfg, opt)
		return res, st, nil
	case styles.MIS:
		res, st := mis.RunGPU(d, g, cfg, opt)
		return res, st, nil
	case styles.PR:
		res, st := pr.RunGPU(d, g, cfg, opt)
		return res, st, nil
	case styles.TC:
		res, st := tc.RunGPU(d, g, cfg, opt)
		return res, st, nil
	}
	panic(fmt.Sprintf("runner.RunGPU: impossible algorithm enum %d", cfg.Algo))
}

// TimeGPU runs the variant and returns the result and the simulated
// throughput in giga-edges per second.
func TimeGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64, error) {
	res, tput, _, err := MeasureGPU(d, g, cfg, opt)
	return res, tput, err
}

// MeasureGPU is TimeGPU plus the raw simulated stats, for callers that
// persist cycle counts (the sweep supervisor and results store). The
// stats are deterministic — a pure function of (kernel, graph, profile)
// — so a recorded GPU cell is exact ground truth, not a sample.
func MeasureGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64, gpusim.Stats, error) {
	res, st, err := RunGPU(d, g, cfg, opt)
	if err != nil {
		return algo.Result{}, math.NaN(), gpusim.Stats{}, err
	}
	return res, Throughput(g, st.Seconds(d.Prof)), st, nil
}

// Run dispatches to RunCPU or RunGPU by model; d may be nil for CPU
// variants.
func Run(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, error) {
	if cfg.Model == styles.CUDA {
		res, _, err := RunGPU(d, g, cfg, opt)
		return res, err
	}
	return RunCPU(g, cfg, opt)
}

// Time dispatches to TimeCPU or TimeGPU by model; d may be nil for CPU
// variants.
func Time(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64, error) {
	if cfg.Model == styles.CUDA {
		return TimeGPU(d, g, cfg, opt)
	}
	return TimeCPU(g, cfg, opt)
}
