package runner

import (
	"fmt"

	"indigo/internal/algo"
	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/mis"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// RunGPU executes a CUDA-model variant on the given simulated device and
// returns the result and the simulated cost.
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, gpusim.Stats) {
	if cfg.Model != styles.CUDA {
		panic(fmt.Sprintf("runner.RunGPU: %s is not a CUDA variant", cfg.Name()))
	}
	switch cfg.Algo {
	case styles.BFS:
		return bfs.RunGPU(d, g, cfg, opt)
	case styles.SSSP:
		return sssp.RunGPU(d, g, cfg, opt)
	case styles.CC:
		return cc.RunGPU(d, g, cfg, opt)
	case styles.MIS:
		return mis.RunGPU(d, g, cfg, opt)
	case styles.PR:
		return pr.RunGPU(d, g, cfg, opt)
	case styles.TC:
		return tc.RunGPU(d, g, cfg, opt)
	}
	panic(fmt.Sprintf("runner.RunGPU: unknown algorithm in %s", cfg.Name()))
}

// TimeGPU runs the variant and returns the result and the simulated
// throughput in giga-edges per second.
func TimeGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64) {
	res, st := RunGPU(d, g, cfg, opt)
	return res, Throughput(g, st.Seconds(d.Prof))
}

// Run dispatches to RunCPU or RunGPU by model; d may be nil for CPU
// variants.
func Run(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	if cfg.Model == styles.CUDA {
		res, _ := RunGPU(d, g, cfg, opt)
		return res
	}
	return RunCPU(g, cfg, opt)
}

// Time dispatches to TimeCPU or TimeGPU by model; d may be nil for CPU
// variants.
func Time(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, float64) {
	if cfg.Model == styles.CUDA {
		return TimeGPU(d, g, cfg, opt)
	}
	return TimeCPU(g, cfg, opt)
}
