package graph

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestReadEdgeListErrors drives the hardened edge-list reader over
// malformed and hostile inputs: every case must return an error naming
// the offense, never panic or silently misread.
func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"one field", "0\n", "want 2 or 3 fields"},
		{"four fields", "0 1 2 3\n", "want 2 or 3 fields"},
		{"non-numeric id", "a b\n", "bad ids"},
		{"negative source", "-1 2\n", "negative vertex id"},
		{"negative target", "0 -7\n", "negative vertex id"},
		{"id overflows int32", "0 4294967296\n", "bad ids"},
		// An id of exactly MaxInt32 parses, but building a graph of
		// MaxInt32+1 vertices would wrap the int32 count; the cap
		// rejects it long before.
		{"id at int32 max", "0 2147483647\n", "exceeds limit"},
		{"id past cap", fmt.Sprintf("0 %d\n", MaxReadVertices), "exceeds limit"},
		{"bad weight", "0 1 w\n", "bad weight"},
		{"negative weight", "0 1 -5\n", "negative weight"},
		{"weight overflows int32", "0 1 99999999999\n", "bad weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.in), "bad")
			if err == nil {
				t.Fatalf("ReadEdgeList(%q) succeeded, want error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadDIMACSErrorsHardened covers the untrusted-input checks added
// on top of the original format errors (see TestReadDIMACSErrors).
func TestReadDIMACSErrorsHardened(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"negative vertex count", "p sp -3 2\n", "negative vertex count"},
		{"absurd vertex count", fmt.Sprintf("p sp %d 1\n", int64(MaxReadVertices)+1), "exceeds limit"},
		{"overflowing vertex count", "p sp 99999999999999999999 1\n", "bad problem counts"},
		{"negative arc count", "p sp 3 -1\n", "negative arc count"},
		{"duplicate problem line", "p sp 3 2\np sp 3 2\n", "duplicate problem line"},
		{"arc id zero", "p sp 3 1\na 0 2 1\n", "outside 1..3"},
		{"arc id past n", "p sp 3 1\na 1 4 1\n", "outside 1..3"},
		{"negative arc id", "p sp 3 1\na -1 2 1\n", "outside 1..3"},
		{"negative weight", "p sp 3 1\na 1 2 -4\n", "negative weight"},
		{"truncated arcs", "p sp 3 5\na 1 2 1\n", "truncated"},
		{"padded arcs", "p sp 3 1\na 1 2 1\na 2 3 1\n", "more arcs than the declared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDIMACS(strings.NewReader(tc.in), "bad")
			if err == nil {
				t.Fatalf("ReadDIMACS(%q) succeeded, want error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestStatsCached pins the memoization contract: Stats is computed once
// per graph, identical on every call, and safe to request concurrently
// (the diameter estimate inside is two BFS traversals — the expensive
// part the cache exists for).
func TestStatsCached(t *testing.T) {
	g := k4()
	first := g.Stats()
	if first != ComputeStats(g) {
		t.Fatal("ComputeStats and Stats disagree")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := g.Stats(); got != first {
				t.Errorf("concurrent Stats = %+v, want %+v", got, first)
			}
		}()
	}
	wg.Wait()
	if g.cachedStats.Load() == nil {
		t.Fatal("stats were not cached on the graph")
	}
}
