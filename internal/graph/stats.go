package graph

import "indigo/internal/guard"

// statsPollStride is how many vertices (or BFS dequeues) each stats
// traversal processes between guard checkpoints: coarse enough to be
// free, fine enough that a canceled request stops within microseconds.
const statsPollStride = 4096

// Stats summarizes the degree and distance structure of an input graph.
// The fields mirror paper Tables 4 and 5: vertex/edge counts, size,
// average and maximum degree, the fraction of vertices with degree >= 32
// and >= 512, and an estimated diameter.
type Stats struct {
	Name      string
	Vertices  int32
	Edges     int64 // directed edges (2x undirected)
	SizeMB    float64
	AvgDegree float64
	MaxDegree int64
	PctDeg32  float64 // percent of vertices with degree >= 32
	PctDeg512 float64 // percent of vertices with degree >= 512
	Diameter  int32   // lower-bound estimate via double-sweep BFS
}

// Stats returns the Table 4/5 summary of g, computed once and cached
// on the graph: the advisor, store cell signatures, and report tables
// all consume the same signature, and the diameter estimate inside it
// is two full BFS traversals.
func (g *Graph) Stats() Stats { return g.StatsGuarded(nil) }

// StatsGuarded is Stats under cooperative cancellation: gd (nil is
// free) is polled every few thousand vertices through the degree scan
// and both diameter BFS sweeps, so a request deadline or client
// disconnect stops the traversals mid-flight instead of after the
// fact. A completed computation is cached on the graph exactly like
// Stats; an aborted one caches nothing.
func (g *Graph) StatsGuarded(gd *guard.Token) Stats {
	if p := g.cachedStats.Load(); p != nil {
		return *p
	}
	s := computeStats(g, gd)
	g.cachedStats.Store(&s)
	return s
}

// ComputeStats derives the Table 4/5 summary of g. It is the historical
// entry point; it now serves the cached copy (the graph is immutable).
func ComputeStats(g *Graph) Stats {
	return g.Stats()
}

func computeStats(g *Graph, gd *guard.Token) Stats {
	s := Stats{
		Name:     g.Name,
		Vertices: g.N,
		Edges:    g.M(),
		SizeMB:   g.SizeMB(),
	}
	if g.N == 0 {
		return s
	}
	var ge32, ge512 int64
	for v := int32(0); v < g.N; v++ {
		if v%statsPollStride == 0 {
			gd.Poll()
		}
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d >= 32 {
			ge32++
		}
		if d >= 512 {
			ge512++
		}
	}
	s.AvgDegree = float64(g.M()) / float64(g.N)
	s.PctDeg32 = 100 * float64(ge32) / float64(g.N)
	s.PctDeg512 = 100 * float64(ge512) / float64(g.N)
	s.Diameter = estimateDiameter(g, gd)
	return s
}

// EstimateDiameter returns a lower bound on the diameter of the largest
// connected component using the classic double-sweep heuristic: BFS from
// an arbitrary vertex, then BFS again from the farthest vertex found.
// For the paper's graph classes (grids, roads, scale-free) the double
// sweep is within a small factor of the true diameter.
func EstimateDiameter(g *Graph) int32 { return estimateDiameter(g, nil) }

func estimateDiameter(g *Graph, gd *guard.Token) int32 {
	if g.N == 0 {
		return 0
	}
	// Start from the highest-degree vertex so we land in the largest
	// component of disconnected inputs.
	start := int32(0)
	for v := int32(1); v < g.N; v++ {
		if g.Degree(v) > g.Degree(start) {
			start = v
		}
	}
	far, _ := bfsFarthest(g, start, gd)
	_, ecc := bfsFarthest(g, far, gd)
	return ecc
}

// bfsFarthest runs a serial BFS from src and returns the farthest reached
// vertex and its hop distance.
func bfsFarthest(g *Graph, src int32, gd *guard.Token) (far int32, dist int32) {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int32{src}
	far, dist = src, 0
	for seen := 0; len(queue) > 0; seen++ {
		if seen%statsPollStride == 0 {
			gd.Poll()
		}
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				if level[u] > dist {
					far, dist = u, level[u]
				}
				queue = append(queue, u)
			}
		}
	}
	return far, dist
}

// DegreeHistogram returns counts of vertices whose degree falls in
// power-of-two buckets: bucket k counts degrees in [2^k, 2^(k+1)), with
// bucket 0 counting degrees 0 and 1. Used by reports and generator tests.
func DegreeHistogram(g *Graph) []int64 {
	var hist []int64
	for v := int32(0); v < g.N; v++ {
		d := g.Degree(v)
		k := 0
		for d > 1 {
			d >>= 1
			k++
		}
		for len(hist) <= k {
			hist = append(hist, 0)
		}
		hist[k]++
	}
	return hist
}
