package graph

import (
	"sync/atomic"

	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/trace"
)

// statsPollStride is how many vertices (or BFS dequeues) each stats
// traversal processes between guard checkpoints: coarse enough to be
// free, fine enough that a canceled request stops within microseconds.
const statsPollStride = 4096

// statsParCutoff is the work size (n + m) below which the serial stats
// path is used outright; pool dispatch and worklist setup only pay for
// themselves on real graphs.
const statsParCutoff = 1 << 15

// Stats summarizes the degree and distance structure of an input graph.
// The fields mirror paper Tables 4 and 5: vertex/edge counts, size,
// average and maximum degree, the fraction of vertices with degree >= 32
// and >= 512, and an estimated diameter.
type Stats struct {
	Name      string
	Vertices  int32
	Edges     int64 // directed edges (2x undirected)
	SizeMB    float64
	AvgDegree float64
	MaxDegree int64
	PctDeg32  float64 // percent of vertices with degree >= 32
	PctDeg512 float64 // percent of vertices with degree >= 512
	Diameter  int32   // lower-bound estimate via double-sweep BFS
}

// StatsOptions configures ComputeStatsOpts. The zero value means: the
// parallel scan and BFS sweeps for graphs past a size cutoff, the
// serial reference path below it, with par.Threads() workers and no
// guard.
type StatsOptions struct {
	// Serial forces the serial reference path.
	Serial bool
	// Threads is the worker count for the parallel path; <= 0 means
	// par.Threads().
	Threads int
	// Guard is polled through the scan and both BFS sweeps; nil is free.
	Guard *guard.Token
	// Trace, when live, records the computation as an ingest.stats span;
	// the zero value is free.
	Trace trace.Ctx
}

// Stats returns the Table 4/5 summary of g, computed once and cached
// on the graph: the advisor, store cell signatures, and report tables
// all consume the same signature, and the diameter estimate inside it
// is two full BFS traversals.
func (g *Graph) Stats() Stats { return g.StatsGuarded(nil) }

// StatsGuarded is Stats under cooperative cancellation: gd (nil is
// free) is polled every few thousand vertices through the degree scan
// and both diameter BFS sweeps, so a request deadline or client
// disconnect stops the traversals mid-flight instead of after the
// fact. A completed computation is cached on the graph exactly like
// Stats; an aborted one caches nothing.
func (g *Graph) StatsGuarded(gd *guard.Token) Stats {
	if p := g.cachedStats.Load(); p != nil {
		return *p
	}
	s := ComputeStatsOpts(g, StatsOptions{Guard: gd})
	g.cachedStats.Store(&s)
	return s
}

// ComputeStats derives the Table 4/5 summary of g. It is the historical
// entry point; it now serves the cached copy (the graph is immutable).
func ComputeStats(g *Graph) Stats {
	return g.Stats()
}

// ComputeStatsOpts computes the summary with explicit options and
// without touching the graph's cache, so benchmarks and differential
// tests can compare the serial and parallel paths on one graph. Both
// paths produce identical Stats: the level-synchronous parallel BFS
// computes the same level array as the serial queue BFS, and both
// resolve the farthest vertex as the smallest id at the maximum level.
func ComputeStatsOpts(g *Graph, o StatsOptions) Stats {
	sp := startIngest(o.Trace, "ingest.stats", g.Name)
	defer sp.End()
	if o.Serial || serialIngest.Load() || int64(g.N)+g.M() < statsParCutoff {
		return computeStatsSerial(g, o.Guard)
	}
	t := o.Threads
	if t <= 0 {
		t = par.Threads()
	}
	return computeStatsPar(g, t, o.Guard)
}

func statsHeader(g *Graph) Stats {
	return Stats{
		Name:     g.Name,
		Vertices: g.N,
		Edges:    g.M(),
		SizeMB:   g.SizeMB(),
	}
}

func computeStatsSerial(g *Graph, gd *guard.Token) Stats {
	s := statsHeader(g)
	if g.N == 0 {
		return s
	}
	var ge32, ge512 int64
	start := int32(0) // argmax of degree, threaded into the diameter sweep
	for v := int32(0); v < g.N; v++ {
		if v%statsPollStride == 0 {
			gd.Poll()
		}
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
			start = v
		}
		if d >= 32 {
			ge32++
		}
		if d >= 512 {
			ge512++
		}
	}
	s.AvgDegree = float64(g.M()) / float64(g.N)
	s.PctDeg32 = 100 * float64(ge32) / float64(g.N)
	s.PctDeg512 = 100 * float64(ge512) / float64(g.N)
	s.Diameter = estimateDiameterFrom(g, start, nil, gd)
	return s
}

// degPartial is one worker's running (max degree, first argmax) over
// its contiguous Static range, padded off its neighbors' cache lines.
type degPartial struct {
	maxDeg int64
	argmax int32
	_      [52]byte
}

func computeStatsPar(g *Graph, t int, gd *guard.Token) Stats {
	s := statsHeader(g)
	if g.N == 0 {
		return s
	}
	pool := par.AcquirePool(t)
	defer par.ReleasePool(pool)
	ex := pool.Guarded(gd)
	n := int64(g.N)
	idx := g.NbrIdx

	// The >=32 / >=512 counts ride one clause reduction, packed into a
	// single int64 (counts are bounded by MaxReadVertices < 2^31, so the
	// halves cannot carry into each other).
	var red par.Reducer
	packed := red.Int64(ex, n, par.Static, par.RedClause, func(v int64) int64 {
		d := idx[v+1] - idx[v]
		var c int64
		if d >= 32 {
			c++
		}
		if d >= 512 {
			c += 1 << 32
		}
		return c
	})
	ge32 := packed & 0xffffffff
	ge512 := packed >> 32

	// Max degree and its first argmax: per-worker partials over Static's
	// contiguous ascending ranges, combined in tid order — which is
	// exactly the serial scan's first-max tie-break.
	partials := make([]degPartial, t)
	ex.ForTID(n, par.Static, func(tid int, v int64) {
		d := idx[v+1] - idx[v]
		if d > partials[tid].maxDeg {
			partials[tid].maxDeg = d
			partials[tid].argmax = int32(v)
		}
	})
	start := int32(0)
	for tid := range partials {
		if partials[tid].maxDeg > s.MaxDegree {
			s.MaxDegree = partials[tid].maxDeg
			start = partials[tid].argmax
		}
	}

	s.AvgDegree = float64(g.M()) / float64(g.N)
	s.PctDeg32 = 100 * float64(ge32) / float64(g.N)
	s.PctDeg512 = 100 * float64(ge512) / float64(g.N)
	s.Diameter = estimateDiameterFrom(g, start, ex, gd)
	return s
}

// EstimateDiameter returns a lower bound on the diameter of the largest
// connected component using the classic double-sweep heuristic: BFS from
// an arbitrary vertex, then BFS again from the farthest vertex found.
// For the paper's graph classes (grids, roads, scale-free) the double
// sweep is within a small factor of the true diameter.
func EstimateDiameter(g *Graph) int32 { return estimateDiameter(g, nil) }

func estimateDiameter(g *Graph, gd *guard.Token) int32 {
	if g.N == 0 {
		return 0
	}
	// Start from the highest-degree vertex so we land in the largest
	// component of disconnected inputs.
	start := int32(0)
	var maxDeg int64
	for v := int32(0); v < g.N; v++ {
		if v%statsPollStride == 0 {
			gd.Poll()
		}
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
			start = v
		}
	}
	return estimateDiameterFrom(g, start, nil, gd)
}

// estimateDiameterFrom runs the double sweep from the given start
// vertex (the degree argmax its callers have already computed — the
// scan is not repeated here). A nil executor selects the serial BFS.
func estimateDiameterFrom(g *Graph, start int32, ex par.Executor, gd *guard.Token) int32 {
	if g.N == 0 {
		return 0
	}
	level := make([]int32, g.N)
	if ex == nil {
		far, _ := bfsFarthestSerial(g, start, level, gd)
		_, ecc := bfsFarthestSerial(g, far, level, gd)
		return ecc
	}
	gd.Charge(3 * 4 * int64(g.N)) // level array + two frontier worklists
	t := ex.Width()
	cur := par.NewWorklistTID(int64(g.N), t)
	next := par.NewWorklistTID(int64(g.N), t)
	far, _ := bfsFarthestPar(g, start, level, cur, next, ex, gd)
	_, ecc := bfsFarthestPar(g, far, level, cur, next, ex, gd)
	return ecc
}

// bfsFarthestSerial fills level[] by BFS from src (head-index queue —
// no O(n) re-slicing of the front) and returns the farthest vertex.
func bfsFarthestSerial(g *Graph, src int32, level []int32, gd *guard.Token) (far int32, dist int32) {
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := make([]int32, 1, g.N)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		if head%statsPollStride == 0 {
			gd.Poll()
		}
		v := queue[head]
		lv := level[v] + 1
		for _, u := range g.Neighbors(v) {
			if level[u] < 0 {
				level[u] = lv
				queue = append(queue, u)
			}
		}
	}
	return farthestInLevels(level, src, gd)
}

// bfsFarthestPar is the level-synchronous parallel BFS: each round
// expands the current frontier, claiming vertices with a CAS on the
// level array (so every vertex is pushed exactly once) into per-worker
// worklist buffers. Levels are deterministic — identical to the serial
// BFS — because round d can only assign level d.
func bfsFarthestPar(g *Graph, src int32, level []int32, cur, next *par.Worklist, ex par.Executor, gd *guard.Token) (far int32, dist int32) {
	ex.For(int64(len(level)), par.Static, func(i int64) { level[i] = -1 })
	cur.Reset()
	next.Reset()
	level[src] = 0
	cur.Push(src)
	for depth := int32(1); cur.Size() > 0; depth++ {
		d := depth
		ex.ForTID(cur.Size(), par.Static, func(tid int, i int64) {
			v := cur.Get(i)
			for _, u := range g.Neighbors(v) {
				// Plain load before the CAS: only ~n of the ~2m neighbor
				// visits can win a vertex, so the check skips the locked
				// op on the vast majority. A stale -1 read just falls
				// through to the CAS, which decides correctness.
				if atomic.LoadInt32(&level[u]) == -1 &&
					atomic.CompareAndSwapInt32(&level[u], -1, d) {
					next.PushTID(tid, u)
				}
			}
		})
		next.Flush()
		cur.Swap(next)
		next.Reset()
	}
	return farthestInLevels(level, src, gd)
}

// farthestInLevels resolves the double sweep's "farthest vertex":
// the maximum level, tie-broken to the smallest vertex id (the
// ascending strictly-greater scan yields that automatically). Both
// BFS paths share it, so their (far, dist) results are identical.
func farthestInLevels(level []int32, src int32, gd *guard.Token) (far int32, dist int32) {
	far, dist = src, 0
	for v := range level {
		if v%statsPollStride == 0 {
			gd.Poll()
		}
		if level[v] > dist {
			dist = level[v]
			far = int32(v)
		}
	}
	return far, dist
}

// DegreeHistogram returns counts of vertices whose degree falls in
// power-of-two buckets: bucket k counts degrees in [2^k, 2^(k+1)), with
// bucket 0 counting degrees 0 and 1. Used by reports and generator tests.
func DegreeHistogram(g *Graph) []int64 {
	var hist []int64
	for v := int32(0); v < g.N; v++ {
		d := g.Degree(v)
		k := 0
		for d > 1 {
			d >>= 1
			k++
		}
		for len(hist) <= k {
			hist = append(hist, 0)
		}
		hist[k]++
	}
	return hist
}
