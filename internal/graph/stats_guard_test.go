package graph

import (
	"errors"
	"testing"

	"indigo/internal/guard"
)

// TestStatsGuardedCancels: a tripped token aborts the stats traversals
// at a checkpoint, nothing is cached from the aborted attempt, and a
// later unguarded call still computes and caches normally.
func TestStatsGuardedCancels(t *testing.T) {
	const n = 10000
	b := NewBuilder("line", n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1, 1)
	}
	g := b.Build()

	gd := guard.New()
	gd.Cancel()
	err := func() (err error) {
		defer guard.Recover(&err)
		g.StatsGuarded(gd)
		return nil
	}()
	gd.Release()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled stats returned %v, want guard.ErrCanceled", err)
	}
	if g.cachedStats.Load() != nil {
		t.Error("aborted stats computation must not be cached")
	}

	if s := g.Stats(); s.Diameter != n-1 {
		t.Errorf("stats after abort: diameter %d, want %d", s.Diameter, n-1)
	}
}
