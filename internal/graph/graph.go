// Package graph provides the input substrate of the study: compressed
// sparse row (CSR) and coordinate (COO) representations of undirected
// weighted graphs, exactly as used by the paper's vertex-based and
// edge-based code variants (§4.2). Every undirected edge is stored as two
// directed edges in both formats.
package graph

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Graph is an undirected weighted graph stored simultaneously in CSR form
// (for vertex-based variants) and COO form (for edge-based variants).
// Directed edge i is the same edge in both forms: COO Src[i]/Dst[i]
// corresponds to CSR slot i, so Weights is shared.
//
// Vertex ids are int32 and weights are int32, matching the 32-bit data
// type configuration the paper evaluates (§4.1).
type Graph struct {
	// Name identifies the input (e.g. "road-ny-sim") in reports.
	Name string

	// N is the number of vertices.
	N int32

	// CSR: the neighbors of vertex v are NbrList[NbrIdx[v]:NbrIdx[v+1]],
	// sorted ascending, with parallel edge weights in Weights.
	NbrIdx  []int64
	NbrList []int32
	Weights []int32

	// COO: directed edge i is Src[i] -> Dst[i] with weight Weights[i].
	Src []int32
	Dst []int32

	// cachedStats memoizes Stats(): the shape signature (including the
	// double-sweep diameter estimate) is an O(n+m) computation consumed
	// by the advisor, store cell signatures, and reports, and the graph
	// is immutable after Build. Concurrent first calls may both compute;
	// the result is identical, so last-store-wins is harmless.
	cachedStats atomic.Pointer[Stats]
}

// M returns the number of directed edges (twice the undirected edge count).
func (g *Graph) M() int64 { return int64(len(g.NbrList)) }

// Degree returns the out-degree of vertex v.
func (g *Graph) Degree(v int32) int64 { return g.NbrIdx[v+1] - g.NbrIdx[v] }

// Neighbors returns the sorted neighbor slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.NbrList[g.NbrIdx[v]:g.NbrIdx[v+1]]
}

// EdgeWeights returns the weights parallel to Neighbors(v). The slice
// aliases the graph's storage and must not be modified.
func (g *Graph) EdgeWeights(v int32) []int32 {
	return g.Weights[g.NbrIdx[v]:g.NbrIdx[v+1]]
}

// HasEdge reports whether the directed edge u->v exists, by binary search
// over u's sorted neighbor list.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := g.weight(u, v)
	return ok
}

// SizeMB estimates the in-memory footprint of the CSR+COO representation
// in megabytes, mirroring the "Size (MB)" column of paper Table 4.
func (g *Graph) SizeMB() float64 {
	bytes := int64(len(g.NbrIdx))*8 +
		int64(len(g.NbrList)+len(g.Weights)+len(g.Src)+len(g.Dst))*4
	return float64(bytes) / (1024 * 1024)
}

// String summarizes the graph for reports.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d}", g.Name, g.N, g.M())
}

// Validate checks structural invariants of both representations and the
// undirected-symmetry property. It is used by tests and the builder.
func (g *Graph) Validate() error {
	if int64(len(g.NbrIdx)) != int64(g.N)+1 {
		return fmt.Errorf("graph %s: len(NbrIdx)=%d, want %d", g.Name, len(g.NbrIdx), g.N+1)
	}
	m := g.M()
	if g.NbrIdx[0] != 0 || g.NbrIdx[g.N] != m {
		return fmt.Errorf("graph %s: NbrIdx bounds [%d,%d], want [0,%d]", g.Name, g.NbrIdx[0], g.NbrIdx[g.N], m)
	}
	if int64(len(g.Weights)) != m || int64(len(g.Src)) != m || int64(len(g.Dst)) != m {
		return fmt.Errorf("graph %s: parallel array lengths disagree with m=%d", g.Name, m)
	}
	for v := int32(0); v < g.N; v++ {
		beg, end := g.NbrIdx[v], g.NbrIdx[v+1]
		if beg > end {
			return fmt.Errorf("graph %s: NbrIdx not monotone at v=%d", g.Name, v)
		}
		for i := beg; i < end; i++ {
			u := g.NbrList[i]
			if u < 0 || u >= g.N {
				return fmt.Errorf("graph %s: neighbor %d of %d out of range", g.Name, u, v)
			}
			if i > beg && g.NbrList[i-1] >= u {
				return fmt.Errorf("graph %s: neighbors of %d not strictly sorted", g.Name, v)
			}
			if g.Src[i] != v || g.Dst[i] != u {
				return fmt.Errorf("graph %s: COO edge %d is %d->%d, CSR says %d->%d", g.Name, i, g.Src[i], g.Dst[i], v, u)
			}
		}
	}
	// Symmetry: every directed edge has a reverse with the same weight.
	for i := int64(0); i < m; i++ {
		u, v := g.Src[i], g.Dst[i]
		if w, ok := g.weight(v, u); !ok {
			return fmt.Errorf("graph %s: edge %d->%d has no reverse", g.Name, u, v)
		} else if w != g.Weights[i] {
			return fmt.Errorf("graph %s: edge %d->%d weight %d, reverse %d", g.Name, u, v, g.Weights[i], w)
		}
	}
	return nil
}

// weight returns the weight of directed edge u->v if it exists. The
// binary-search midpoint is the overflow-safe lo+(hi-lo)/2: lo and hi
// are CSR edge offsets, and for graphs within 2x of the int64 edge-index
// ceiling the sum lo+hi wraps negative and indexes out of bounds.
func (g *Graph) weight(u, v int32) (int32, bool) {
	lo, hi := g.NbrIdx[u], g.NbrIdx[u+1]
	for lo < hi {
		mid := lo + (hi-lo)/2
		switch {
		case g.NbrList[mid] < v:
			lo = mid + 1
		case g.NbrList[mid] > v:
			hi = mid
		default:
			return g.Weights[mid], true
		}
	}
	return 0, false
}

// Inf is the "unreached" distance value used by BFS and SSSP variants.
// It is far below math.MaxInt32 so that Inf+weight cannot overflow int32
// for any weight the generators produce.
const Inf int32 = math.MaxInt32 / 2
