package graph

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"indigo/internal/guard"
)

// diffChunkSizes puts chunk boundaries everywhere: mid-line, between a
// comment and its newline, right at blank lines. Every input below runs
// against all of them.
var diffChunkSizes = []int{1, 2, 3, 7, 16, 64, 4096}

// edgeListDiffInputs covers the happy paths, every hardening case the
// serial reader's table tests pin, and boundary shapes (torn lines,
// comments/blanks at chunk edges, CRLF, unicode whitespace, missing
// trailing newline).
var edgeListDiffInputs = []string{
	"",
	"\n",
	"\n\n\n",
	"# only a comment\n",
	"0 1\n",
	"0 1", // no trailing newline
	"0 1\n1 2\n2 3\n",
	"0 1 5\n1 2 7\n",
	"0 1 5\n1 2 7", // no trailing newline, weighted
	"0 1\r\n1 2\r\n",
	"  0   1  \n\t1\t2\t\n",
	"# c1\n0 1\n# c2\n1 2\n\n\n2 3\n",
	"5 5\n",                 // self-loop only: n=6, no edges
	"0 1\n3 3\n",            // self-loop among edges
	"0 1 3\n1 0 9\n0 1 4\n", // duplicates, min weight wins
	"0 1\u00a02\n",          // NBSP is unicode space: three fields
	"0\u00851\n",            // NEL separates fields
	"0 1 2 3\n",             // too many fields
	"0\n",                   // too few fields
	"x 1\n",                 // bad ids
	"0 x\n",
	"1 +2\n", // explicit plus sign parses
	"+1 2\n",
	"-1 2\n",                    // negative vertex id
	"0 -2\n",                    // negative vertex id
	"0 99999999999999\n",        // id overflows int32 -> bad ids
	"0 1 99999999999999\n",      // weight overflows int32 -> bad weight
	"0 1 -3\n",                  // negative weight
	"0 134217728\n",             // id == MaxReadVertices -> exceeds limit
	"0 1\nbad line here\n2 3\n", // error after good lines
	"0 1\n# ok\n\nbroken\n",     // error after comment/blank
	"0 1\n2 x\n3 y\n",           // two errors: first wins
	"0 1 07\n",                  // leading zeros parse
	"00 01\n",
	"0 1 2147483647\n",  // INT32 max weight
	"0 1 2147483648\n",  // overflow by one
	"2147483647 0\n",    // id over MaxReadVertices but within int32
	"\uFEFF0 1\n",       // BOM is not whitespace: bad ids
	"0 1 \n",            // trailing space, two fields
	"# torn\ncomment\n", // "comment" is a bad line (1 field)
}

func edgeListDiffCheck(t *testing.T, input string) {
	t.Helper()
	want, wantErr := ReadEdgeListOpts(strings.NewReader(input), "diff", ReadOptions{Serial: true})
	for _, cs := range diffChunkSizes {
		for _, threads := range []int{1, 3, 4} {
			got, gotErr := ReadEdgeListBytes([]byte(input), "diff",
				ReadOptions{Threads: threads, chunkBytes: cs})
			compareIngest(t, input, cs, threads, want, wantErr, got, gotErr)
		}
	}
}

// dimacsDiffInputs: header, arc-region, count, and boundary cases.
var dimacsDiffInputs = []string{
	"",
	"\n\n",
	"c lonely comment\n",
	"p sp 0 0\n",
	"p sp 2 1\na 1 2 5\n",
	"p sp 2 1\na 1 2 5", // no trailing newline
	"c hdr\np sp 4 3\na 1 2 5\na 2 3 6\na 3 4 7\n",
	"p sp 3 2\nc mid comment\na 1 2 5\n\na 2 3 1\n",
	"p sp 3 2\r\na 1 2 5\r\na 2 3 1\r\n",
	"  p sp 2 1 \n  a 1 2 3 \n",
	"p sp 2 2\na 1 2 5\na 2 1 5\n",                  // both directions present
	"p sp 2 2\na 1 2 9\na 1 2 4\n",                  // duplicate arc, min weight
	"p sp 3 1\na 2 2 5\n",                           // self-loop arc counts but adds no edge
	"a 1 2 3\n",                                     // arc before problem line
	"q sp 2 1\n",                                    // unknown record
	"p sp 2 1\nz 1 2 3\n",                           // unknown record after header
	"p sp 2 1\np sp 2 1\n",                          // duplicate problem line
	"p sp 2\n",                                      // bad problem line (3 fields)
	"p xx 2 1\n",                                    // bad problem line (not sp)
	"p sp two 1\n",                                  // bad problem counts
	"p sp 2 -1\n",                                   // negative arc count
	"p sp -2 1\n",                                   // negative vertex count
	"p sp 999999999999 1\n",                         // vertex count over limit
	"p sp 2 1\na 1 2\n",                             // bad arc line (3 fields)
	"p sp 2 1\na 1 2 3 4\n",                         // bad arc line (5 fields)
	"p sp 2 1\na x 2 3\n",                           // bad arc numbers
	"p sp 2 1\na 1 2 z\n",                           // bad arc numbers
	"p sp 2 1\na 0 2 3\n",                           // arc outside range (low)
	"p sp 2 1\na 1 3 4\n",                           // arc outside range (high)
	"p sp 2 1\na 1 2 -5\n",                          // negative weight
	"p sp 2 1\na 1 2 5\na 2 1 5\n",                  // more arcs than declared
	"p sp 2 3\na 1 2 5\na 2 1 5\n",                  // truncated
	"p sp 2 0\na 1 2 5\n",                           // declared zero, arc present
	"p sp 2 9\n",                                    // declared arcs, none present
	"c a\nc b\nc c\np sp 2 1\na 1 2 3\n",            // long comment header
	"p sp 4 4\na 1 2 1\na 2 3 1\nboom\na 3 4 1\n",   // unknown record mid-arcs
	"p sp 4 2\na 1 2 1\na 2 3 1\na 3 4 1\nbroken\n", // overflow before bad line
	"p sp 4 2\na 1 2 1\nbroken\na 2 3 1\na 3 4 1\n", // bad line before overflow
	"ps sp 2 1\na 1 2 3\n",                          // 'p' first byte, odd field 0: still a problem line
	"ab 1 2 3\np sp 2 1\n",                          // 'a' first byte before problem line
}

func dimacsDiffCheck(t *testing.T, input string) {
	t.Helper()
	want, wantErr := ReadDIMACSOpts(strings.NewReader(input), "diff", ReadOptions{Serial: true})
	for _, cs := range diffChunkSizes {
		for _, threads := range []int{1, 3, 4} {
			got, gotErr := ReadDIMACSBytes([]byte(input), "diff",
				ReadOptions{Threads: threads, chunkBytes: cs})
			compareIngest(t, input, cs, threads, want, wantErr, got, gotErr)
		}
	}
}

func compareIngest(t *testing.T, input string, cs, threads int, want *Graph, wantErr error, got *Graph, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("input %q chunk=%d t=%d: serial err %v, parallel err %v", input, cs, threads, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("input %q chunk=%d t=%d:\nserial err   %q\nparallel err %q", input, cs, threads, wantErr, gotErr)
		}
		return
	}
	if err := sameGraph(want, got); err != nil {
		t.Fatalf("input %q chunk=%d t=%d: graphs differ: %v", input, cs, threads, err)
	}
}

// sameGraph compares every array of the CSR+COO representation bit for
// bit (assertSameGraph predates the COO form and skips Src/Dst).
func sameGraph(want, got *Graph) error {
	if got.N != want.N || got.M() != want.M() {
		return fmt.Errorf("shape n=%d m=%d, want n=%d m=%d", got.N, got.M(), want.N, want.M())
	}
	switch {
	case !reflect.DeepEqual(got.NbrIdx, want.NbrIdx):
		return fmt.Errorf("NbrIdx differs")
	case !reflect.DeepEqual(got.NbrList, want.NbrList):
		return fmt.Errorf("NbrList differs")
	case !reflect.DeepEqual(got.Weights, want.Weights):
		return fmt.Errorf("Weights differ")
	case !reflect.DeepEqual(got.Src, want.Src):
		return fmt.Errorf("COO Src differs")
	case !reflect.DeepEqual(got.Dst, want.Dst):
		return fmt.Errorf("COO Dst differs")
	}
	return nil
}

func TestReadEdgeListDifferential(t *testing.T) {
	for _, in := range edgeListDiffInputs {
		edgeListDiffCheck(t, in)
	}
}

func TestReadDIMACSDifferential(t *testing.T) {
	for _, in := range dimacsDiffInputs {
		dimacsDiffCheck(t, in)
	}
}

// TestReadDifferentialRandom: generated inputs with mixed good lines,
// comments, blanks, and (sometimes) one seeded error, exercising many
// random chunk boundary placements.
func TestReadDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		n := rng.Intn(200) + 1
		lines := rng.Intn(120)
		for i := 0; i < lines; i++ {
			switch rng.Intn(10) {
			case 0:
				sb.WriteString("# comment\n")
			case 1:
				sb.WriteString("\n")
			case 2: // self loop
				v := rng.Intn(n)
				writeInts(&sb, v, v, rng.Intn(9)+1)
			default:
				writeInts(&sb, rng.Intn(n), rng.Intn(n), rng.Intn(9)+1)
			}
		}
		if rng.Intn(3) == 0 {
			sb.WriteString("oops\n")
			for i := 0; i < rng.Intn(5); i++ {
				writeInts(&sb, rng.Intn(n), rng.Intn(n), 1)
			}
		}
		edgeListDiffCheck(t, sb.String())
	}
}

func writeInts(sb *strings.Builder, u, v, w int) {
	sb.WriteString(strings.Join([]string{itoa(u), itoa(v), itoa(w)}, " "))
	sb.WriteByte('\n')
}

func itoa(v int) string { return string(appendInt(nil, v)) }

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// TestReadTooLongLine: a line at the scanner's buffer limit fails with
// the exact wrapped bufio.ErrTooLong on both paths, and position
// ordering holds (an earlier parse error beats a later long line).
func TestReadTooLongLine(t *testing.T) {
	long := strings.Repeat("9", 1<<20) // one 1 MiB token
	cases := []string{
		"0 1\n" + long + " 2\n",
		long + "\n0 1\n",
		"0 1\nbad\n" + long + "\n", // parse error before the long line
		"# " + long + "\n0 1\n",    // long comment still errors
	}
	for _, in := range cases {
		want, wantErr := ReadEdgeListOpts(strings.NewReader(in), "long", ReadOptions{Serial: true})
		got, gotErr := ReadEdgeListBytes([]byte(in), "long", ReadOptions{Threads: 4, chunkBytes: 1 << 10})
		compareIngest(t, "<long-line case>", 1<<10, 4, want, wantErr, got, gotErr)
	}
	dIn := "p sp 2 1\nc " + long + "\na 1 2 3\n"
	want, wantErr := ReadDIMACSOpts(strings.NewReader(dIn), "long", ReadOptions{Serial: true})
	got, gotErr := ReadDIMACSBytes([]byte(dIn), "long", ReadOptions{Threads: 4, chunkBytes: 1 << 10})
	compareIngest(t, "<long dimacs comment>", 1<<10, 4, want, wantErr, got, gotErr)
	if wantErr == nil || !errors.Is(wantErr, bufio.ErrTooLong) {
		t.Fatalf("long dimacs comment: err %v, want wrapped bufio.ErrTooLong", wantErr)
	}
}

// TestBuildParallelBitIdentical: the counting-sort build matches the
// comparison-sort reference bit for bit on random multigraphs with
// duplicate edges, duplicate weights, skewed degrees, and both weight
// signs (FromEdges accepts negative weights even though readers don't).
func TestBuildParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := int32(rng.Intn(300) + 1)
		edges := rng.Intn(2000)
		b1 := NewBuilder("serial", n)
		b2 := NewBuilder("serial", n)
		for i := 0; i < edges; i++ {
			u := int32(rng.Intn(int(n)))
			v := u
			if rng.Intn(20) > 0 { // mostly non-loops; AddEdge drops loops
				v = int32(rng.Intn(int(n)))
			}
			var w int32
			switch rng.Intn(3) {
			case 0:
				w = int32(rng.Intn(5)) // many duplicate weights
			case 1:
				w = rng.Int31()
			default:
				w = -rng.Int31() // negative weights sort signed
			}
			b1.AddEdge(u, v, w)
			b2.AddEdge(u, v, w)
		}
		want := b1.buildSerial()
		for _, threads := range []int{1, 2, 4} {
			got := b2.buildParallel(threads, nil)
			assertSameGraph(t, want, got)
			if err := got.Validate(); err != nil {
				t.Fatalf("parallel build invalid: %v", err)
			}
		}
	}
}

// TestBuildParallelHubGraph: a star-heavy graph puts nearly every edge
// in one vertex bucket — the worst case for the per-vertex sort pass.
func TestBuildParallelHubGraph(t *testing.T) {
	const n = 5000
	b1 := NewBuilder("hub", n)
	b2 := NewBuilder("hub", n)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		v := int32(rng.Intn(n-1)) + 1
		w := int32(rng.Intn(3))
		b1.AddEdge(0, v, w)
		b2.AddEdge(0, v, w)
	}
	want := b1.buildSerial()
	got := b2.buildParallel(4, nil)
	assertSameGraph(t, want, got)
}

// TestComputeStatsParallelMatchesSerial: full Stats equality (including
// the double-sweep diameter) across graph shapes on both paths.
func TestComputeStatsParallelMatchesSerial(t *testing.T) {
	graphs := []*Graph{
		path(10),
		path(1),
		k4(),
		randomGraph(3, 500, 4000),
		randomGraph(4, 2000, 1000), // sparse, disconnected
		FromEdges("empty", 0, nil, nil, nil),
		FromEdges("isolated", 5, nil, nil, nil),
		star(64),
		twoComponents(),
	}
	for _, g := range graphs {
		want := ComputeStatsOpts(g, StatsOptions{Serial: true})
		for _, threads := range []int{1, 2, 4} {
			got := computeStatsPar(g, threads, nil)
			if want != got {
				t.Errorf("%s t=%d: parallel stats %+v, want %+v", g.Name, threads, got, want)
			}
		}
	}
}

func star(leaves int32) *Graph {
	b := NewBuilder("star", leaves+1)
	for v := int32(1); v <= leaves; v++ {
		b.AddEdge(0, v, 1)
	}
	return b.Build()
}

func twoComponents() *Graph {
	b := NewBuilder("twocomp", 40)
	for v := int32(0); v+1 < 30; v++ { // long path: the larger component
		b.AddEdge(v, v+1, 1)
	}
	for v := int32(30); v+1 < 40; v++ {
		b.AddEdge(v, v+1, 1)
	}
	return b.Build()
}

// TestReadParallelCancel: a tripped guard aborts the parallel read at a
// chunk checkpoint and surfaces as guard.ErrCanceled through Recover.
func TestReadParallelCancel(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 30000; i++ {
		writeInts(&sb, i, i+1, 1)
	}
	data := []byte(sb.String())
	gd := guard.New()
	gd.Cancel()
	err := func() (err error) {
		defer guard.Recover(&err)
		_, rerr := ReadEdgeListBytes(data, "cancel", ReadOptions{Threads: 4, Guard: gd, chunkBytes: 1 << 12})
		return rerr
	}()
	gd.Release()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled parallel read returned %v, want guard.ErrCanceled", err)
	}
}

// TestReadParallelBudget: the parallel read charges its edge buffers
// against the token budget; an undersized budget aborts with
// guard.ErrBudgetExceeded instead of completing the allocation.
func TestReadParallelBudget(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 30000; i++ {
		writeInts(&sb, i, i+1, 1)
	}
	data := []byte(sb.String())
	gd := guard.New().WithBudget(1 << 10)
	err := func() (err error) {
		defer guard.Recover(&err)
		_, rerr := ReadEdgeListBytes(data, "budget", ReadOptions{Threads: 4, Guard: gd})
		return rerr
	}()
	gd.Release()
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("budgeted parallel read returned %v, want guard.ErrBudgetExceeded", err)
	}
}

// TestReadRoundTripParallel: write -> parallel read -> write again is a
// fixed point for both formats, and matches the serially read graph.
func TestReadRoundTripParallel(t *testing.T) {
	g := randomGraph(21, 400, 3000)
	var el, dm bytes.Buffer
	if err := WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteDIMACS(&dm, g); err != nil {
		t.Fatal(err)
	}
	gotEL, err := ReadEdgeListBytes(el.Bytes(), g.Name, ReadOptions{Threads: 4, chunkBytes: 512})
	if err != nil {
		t.Fatalf("parallel edge-list read: %v", err)
	}
	assertSameGraph(t, g, gotEL)
	gotDM, err := ReadDIMACSBytes(dm.Bytes(), g.Name, ReadOptions{Threads: 4, chunkBytes: 512})
	if err != nil {
		t.Fatalf("parallel dimacs read: %v", err)
	}
	assertSameGraph(t, g, gotDM)
}

// TestParseIntBytes pins the strconv.ParseInt equivalence the parsers
// rely on (sign handling, overflow at both widths, junk rejection).
func TestParseIntBytes(t *testing.T) {
	cases := []struct {
		in      string
		bitSize int
		want    int64
		ok      bool
	}{
		{"0", 32, 0, true},
		{"-0", 32, 0, true},
		{"+7", 32, 7, true},
		{"007", 32, 7, true},
		{"2147483647", 32, 2147483647, true},
		{"2147483648", 32, 0, false},
		{"-2147483648", 32, -2147483648, true},
		{"-2147483649", 32, 0, false},
		{"9223372036854775807", 64, 9223372036854775807, true},
		{"9223372036854775808", 64, 0, false},
		{"-9223372036854775808", 64, -9223372036854775808, true},
		{"-9223372036854775809", 64, 0, false},
		{"99999999999999999999999999", 64, 0, false},
		{"", 32, 0, false},
		{"+", 32, 0, false},
		{"-", 32, 0, false},
		{"1.5", 32, 0, false},
		{"1e3", 32, 0, false},
		{"1_000", 32, 0, false},
		{"0x10", 32, 0, false},
		{" 1", 32, 0, false},
	}
	for _, c := range cases {
		got, ok := parseIntBytes([]byte(c.in), c.bitSize)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseIntBytes(%q, %d) = (%d, %v), want (%d, %v)", c.in, c.bitSize, got, ok, c.want, c.ok)
		}
	}
}
