package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxReadVertices caps the vertex count the text readers accept. The
// readers parse untrusted uploads (the advisor service feeds them
// client bodies), and a forged "p sp 2000000000 ..." header would
// otherwise commit ~16 GB of NbrIdx before a single edge is read. 2^27
// vertices (~1 GiB of NbrIdx) is far beyond the paper's largest input;
// trusted bulk loaders may raise it at startup.
var MaxReadVertices int32 = 1 << 27

// checkVertexCount validates a parsed vertex count against the cap.
func checkVertexCount(who string, line int, n int64) error {
	if n < 0 {
		return fmt.Errorf("%s: line %d: negative vertex count %d", who, line, n)
	}
	if n > int64(MaxReadVertices) {
		return fmt.Errorf("%s: line %d: vertex count %d exceeds limit %d", who, line, n, MaxReadVertices)
	}
	return nil
}

// WriteDIMACS writes g in the DIMACS shortest-path (.gr) text format used
// by the 9th DIMACS challenge inputs the paper draws from: a problem line
// "p sp <n> <m>" followed by one "a <u> <v> <w>" arc line per directed
// edge, with 1-based vertex ids.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c %s\np sp %d %d\n", g.Name, g.N, g.M()); err != nil {
		return err
	}
	// Per-arc lines are strconv.AppendInt into one reused buffer: the
	// fmt.Fprintf path costs an interface-boxing allocation and verb
	// parse per edge, which dominates writing large graphs. The output
	// bytes are identical (the round-trip tests pin the format).
	buf := make([]byte, 0, 48)
	for i := int64(0); i < g.M(); i++ {
		buf = append(buf[:0], 'a', ' ')
		buf = strconv.AppendInt(buf, int64(g.Src[i])+1, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(g.Dst[i])+1, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(g.Weights[i]), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses the DIMACS .gr format written by WriteDIMACS (and by
// the DIMACS challenge tools). Arcs are treated as undirected edges and
// re-symmetrized by the builder, so reading a file that already contains
// both directions yields the same graph.
//
// The reader is hardened for untrusted input: vertex ids outside
// [1, n], negative weights, counts beyond MaxReadVertices, a second
// problem line, and an arc count disagreeing with the declared edge
// count (a truncated or padded file) are all errors, never panics or
// silent misreads.
//
// Large inputs take the chunked parallel path in parse.go, which is
// bit-identical in both graphs and error messages to the serial
// reference below (enforced by differential tests and fuzzing); use
// ReadDIMACSOpts to pick a path, thread count, or guard explicitly.
func ReadDIMACS(r io.Reader, name string) (*Graph, error) {
	return ReadDIMACSOpts(r, name, ReadOptions{})
}

// readDIMACSSerial is the scanner-based reference reader. Its parsing
// and error semantics define the format; the parallel path replicates
// them byte for byte.
func readDIMACSSerial(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	var declaredArcs, arcs int64
	var n int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			if b != nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: duplicate problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad problem line %q", line, text)
			}
			var err1, err2 error
			n, err1 = strconv.ParseInt(fields[2], 10, 64)
			declaredArcs, err2 = strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad problem counts %q", line, text)
			}
			if err := checkVertexCount("graph.ReadDIMACS", line, n); err != nil {
				return nil, err
			}
			if declaredArcs < 0 {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: negative arc count %d", line, declaredArcs)
			}
			b = NewBuilder(name, int32(n))
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: arc before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad arc line %q", line, text)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			w, err3 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad arc numbers %q", line, text)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: arc %d->%d outside 1..%d", line, u, v, n)
			}
			if w < 0 {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: negative weight %d", line, w)
			}
			arcs++
			if arcs > declaredArcs {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: more arcs than the declared %d", line, declaredArcs)
			}
			b.AddEdge(int32(u-1), int32(v-1), int32(w))
		default:
			return nil, fmt.Errorf("graph.ReadDIMACS: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph.ReadDIMACS: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph.ReadDIMACS: no problem line")
	}
	if arcs != declaredArcs {
		return nil, fmt.Errorf("graph.ReadDIMACS: truncated: %d arcs, problem line declares %d", arcs, declaredArcs)
	}
	return b.BuildOpts(BuildOptions{Serial: true}), nil
}

// WriteEdgeList writes g as a plain "u v w" edge list with 0-based ids,
// one directed edge per line (the SNAP-style format).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 40)
	for i := int64(0); i < g.M(); i++ {
		buf = strconv.AppendInt(buf[:0], int64(g.Src[i]), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(g.Dst[i]), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(g.Weights[i]), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a plain edge list with 0-based ids. Lines are
// "u v" (weight defaults to 1) or "u v w"; lines starting with '#' are
// comments. The vertex count is one more than the largest id seen.
//
// The reader is hardened for untrusted input: negative or overflowing
// vertex ids, ids beyond MaxReadVertices, and negative weights are all
// errors (ParseInt's 32-bit bound already rejects values that would
// wrap int32).
//
// Large inputs take the chunked parallel path in parse.go, which is
// bit-identical in both graphs and error messages to the serial
// reference below (enforced by differential tests and fuzzing); use
// ReadEdgeListOpts to pick a path, thread count, or guard explicitly.
func ReadEdgeList(r io.Reader, name string) (*Graph, error) {
	return ReadEdgeListOpts(r, name, ReadOptions{})
}

// readEdgeListSerial is the scanner-based reference reader (see
// readDIMACSSerial).
func readEdgeListSerial(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type edge struct{ u, v, w int32 }
	var edges []edge
	var maxID int32 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph.ReadEdgeList: line %d: want 2 or 3 fields, got %q", line, text)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph.ReadEdgeList: line %d: bad ids %q", line, text)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph.ReadEdgeList: line %d: negative vertex id in %q", line, text)
		}
		if max := max(u, v); max >= int64(MaxReadVertices) {
			return nil, fmt.Errorf("graph.ReadEdgeList: line %d: vertex id %d exceeds limit %d", line, max, MaxReadVertices)
		}
		w := int64(1)
		if len(fields) == 3 {
			var err error
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph.ReadEdgeList: line %d: bad weight %q", line, text)
			}
			if w < 0 {
				return nil, fmt.Errorf("graph.ReadEdgeList: line %d: negative weight %d", line, w)
			}
		}
		edges = append(edges, edge{int32(u), int32(v), int32(w)})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph.ReadEdgeList: %w", err)
	}
	b := NewBuilder(name, maxID+1)
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	return b.BuildOpts(BuildOptions{Serial: true}), nil
}
