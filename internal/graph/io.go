package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes g in the DIMACS shortest-path (.gr) text format used
// by the 9th DIMACS challenge inputs the paper draws from: a problem line
// "p sp <n> <m>" followed by one "a <u> <v> <w>" arc line per directed
// edge, with 1-based vertex ids.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c %s\np sp %d %d\n", g.Name, g.N, g.M()); err != nil {
		return err
	}
	for i := int64(0); i < g.M(); i++ {
		if _, err := fmt.Fprintf(bw, "a %d %d %d\n", g.Src[i]+1, g.Dst[i]+1, g.Weights[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses the DIMACS .gr format written by WriteDIMACS (and by
// the DIMACS challenge tools). Arcs are treated as undirected edges and
// re-symmetrized by the builder, so reading a file that already contains
// both directions yields the same graph.
func ReadDIMACS(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad problem line %q", line, text)
			}
			n, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: %v", line, err)
			}
			b = NewBuilder(name, int32(n))
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: arc before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad arc line %q", line, text)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			w, err3 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad arc numbers %q", line, text)
			}
			b.AddEdge(int32(u-1), int32(v-1), int32(w))
		default:
			return nil, fmt.Errorf("graph.ReadDIMACS: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph.ReadDIMACS: no problem line")
	}
	return b.Build(), nil
}

// WriteEdgeList writes g as a plain "u v w" edge list with 0-based ids,
// one directed edge per line (the SNAP-style format).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for i := int64(0); i < g.M(); i++ {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.Src[i], g.Dst[i], g.Weights[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a plain edge list with 0-based ids. Lines are
// "u v" (weight defaults to 1) or "u v w"; lines starting with '#' are
// comments. The vertex count is one more than the largest id seen.
func ReadEdgeList(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type edge struct{ u, v, w int32 }
	var edges []edge
	var maxID int32 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph.ReadEdgeList: line %d: want 2 or 3 fields, got %q", line, text)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph.ReadEdgeList: line %d: bad ids %q", line, text)
		}
		w := int64(1)
		if len(fields) == 3 {
			var err error
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph.ReadEdgeList: line %d: bad weight %q", line, text)
			}
		}
		edges = append(edges, edge{int32(u), int32(v), int32(w)})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(name, maxID+1)
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	return b.Build(), nil
}
