package graph

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets pin the hardening invariant of the text readers: on
// arbitrary bytes they either return an error or a structurally valid
// graph — never a panic, never a graph that fails Validate. Run with
// `go test -fuzz=FuzzReadEdgeList ./internal/graph/` to explore beyond
// the seed corpus; plain `go test` replays the seeds.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("")
	f.Add("# comment only\n")
	f.Add("0 1\n1 2\n")
	f.Add("0 1 7\n1 2 9\n")
	f.Add("-1 2\n")
	f.Add("0 2147483647\n")
	f.Add("0 1 -5\n")
	f.Add("0\n")
	f.Add("x y z\n")
	f.Add("999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", verr, in)
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("")
	f.Add("c comment\np sp 3 1\na 1 2 5\n")
	f.Add("p sp 3 2\na 1 2 5\na 2 3 1\n")
	f.Add("p sp -3 2\n")
	f.Add("p sp 3 5\na 1 2 1\n")
	f.Add("p sp 3 1\na 0 9 1\n")
	f.Add("p sp 3 1\na 1 2 -4\n")
	f.Add("p sp 2000000000 1\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp 3 1\np sp 3 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", verr, in)
		}
		// An accepted DIMACS graph must also round-trip through the
		// writer and reader to the same structure.
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		if _, err := ReadDIMACS(&buf, "fuzz2"); err != nil {
			t.Fatalf("reread written graph: %v", err)
		}
	})
}

// The differential fuzz targets drive the parallel readers against the
// serial references on arbitrary bytes: same accept/reject decision,
// byte-identical error messages (line numbers included), bit-identical
// graphs. Chunk size and thread count are fuzzed too, so boundaries
// land inside lines, comments, and blank runs. Run with
// `go test -fuzz=FuzzReadEdgeListDiff ./internal/graph/`.

func FuzzReadEdgeListDiff(f *testing.F) {
	f.Add("0 1\n1 2\n", uint8(1))
	f.Add("# c\n0 1 5\n\n1 2 7\n", uint8(3))
	f.Add("0 1\nbad\n2 3\n", uint8(2))
	f.Add("5 5\n0 1\n", uint8(9))
	f.Add("0 1\u00a02\n", uint8(4))
	f.Add("0 99999999999999\n", uint8(5))
	f.Fuzz(func(t *testing.T, in string, chunk uint8) {
		if len(in) > 1<<16 {
			return
		}
		// Clamp the vertex cap: the differential property is about
		// parsing, and a 9-digit id would otherwise build a gigabyte
		// NbrIdx on both paths. Both readers see the same cap, so the
		// "exceeds limit" messages still compare byte-for-byte.
		old := MaxReadVertices
		MaxReadVertices = 1 << 15
		defer func() { MaxReadVertices = old }()
		want, wantErr := ReadEdgeListOpts(strings.NewReader(in), "diff", ReadOptions{Serial: true})
		got, gotErr := ReadEdgeListBytes([]byte(in), "diff",
			ReadOptions{Threads: int(chunk%4) + 1, chunkBytes: int(chunk%64) + 1})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("input %q: serial err %v, parallel err %v", in, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("input %q:\nserial err   %q\nparallel err %q", in, wantErr, gotErr)
			}
			return
		}
		if err := sameGraph(want, got); err != nil {
			t.Fatalf("input %q: graphs differ: %v", in, err)
		}
	})
}

func FuzzReadDIMACSDiff(f *testing.F) {
	f.Add("p sp 3 2\na 1 2 5\na 2 3 1\n", uint8(1))
	f.Add("c h\np sp 2 1\na 1 2 5\n", uint8(3))
	f.Add("p sp 2 1\na 1 2 5\na 2 1 5\n", uint8(2))
	f.Add("p sp 2 3\na 1 2 5\n", uint8(9))
	f.Add("p sp 3 1\na 2 2 5\n", uint8(4))
	f.Add("p sp 2 1\nboom\n", uint8(5))
	f.Fuzz(func(t *testing.T, in string, chunk uint8) {
		if len(in) > 1<<16 {
			return
		}
		// Clamp the vertex cap: the differential property is about
		// parsing, and a 9-digit id would otherwise build a gigabyte
		// NbrIdx on both paths. Both readers see the same cap, so the
		// "exceeds limit" messages still compare byte-for-byte.
		old := MaxReadVertices
		MaxReadVertices = 1 << 15
		defer func() { MaxReadVertices = old }()
		want, wantErr := ReadDIMACSOpts(strings.NewReader(in), "diff", ReadOptions{Serial: true})
		got, gotErr := ReadDIMACSBytes([]byte(in), "diff",
			ReadOptions{Threads: int(chunk%4) + 1, chunkBytes: int(chunk%64) + 1})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("input %q: serial err %v, parallel err %v", in, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("input %q:\nserial err   %q\nparallel err %q", in, wantErr, gotErr)
			}
			return
		}
		if err := sameGraph(want, got); err != nil {
			t.Fatalf("input %q: graphs differ: %v", in, err)
		}
	})
}
