package graph

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets pin the hardening invariant of the text readers: on
// arbitrary bytes they either return an error or a structurally valid
// graph — never a panic, never a graph that fails Validate. Run with
// `go test -fuzz=FuzzReadEdgeList ./internal/graph/` to explore beyond
// the seed corpus; plain `go test` replays the seeds.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("")
	f.Add("# comment only\n")
	f.Add("0 1\n1 2\n")
	f.Add("0 1 7\n1 2 9\n")
	f.Add("-1 2\n")
	f.Add("0 2147483647\n")
	f.Add("0 1 -5\n")
	f.Add("0\n")
	f.Add("x y z\n")
	f.Add("999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", verr, in)
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("")
	f.Add("c comment\np sp 3 1\na 1 2 5\n")
	f.Add("p sp 3 2\na 1 2 5\na 2 3 1\n")
	f.Add("p sp -3 2\n")
	f.Add("p sp 3 5\na 1 2 1\n")
	f.Add("p sp 3 1\na 0 9 1\n")
	f.Add("p sp 3 1\na 1 2 -4\n")
	f.Add("p sp 2000000000 1\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp 3 1\np sp 3 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", verr, in)
		}
		// An accepted DIMACS graph must also round-trip through the
		// writer and reader to the same structure.
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("write accepted graph: %v", err)
		}
		if _, err := ReadDIMACS(&buf, "fuzz2"); err != nil {
			t.Fatalf("reread written graph: %v", err)
		}
	})
}
