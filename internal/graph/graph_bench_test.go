package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	bu := NewBuilder("bench", 1<<14)
	for i := 0; i < 1<<17; i++ {
		bu.AddEdge(rng.Int31n(1<<14), rng.Int31n(1<<14), rng.Int31n(255)+1)
	}
	return bu.Build()
}

func BenchmarkBuilderBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	type e struct{ u, v, w int32 }
	edges := make([]e, 1<<16)
	for i := range edges {
		edges[i] = e{rng.Int31n(1 << 13), rng.Int31n(1 << 13), 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder("b", 1<<13)
		for _, ed := range edges {
			bu.AddEdge(ed.u, ed.v, ed.w)
		}
		bu.Build()
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for v := int32(0); v < g.N; v++ {
			for _, u := range g.Neighbors(v) {
				sink += int64(u)
			}
		}
	}
	_ = sink
}

func BenchmarkEstimateDiameter(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EstimateDiameter(g)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int32(i)%g.N, int32(i*7)%g.N)
	}
}
