package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync/atomic"
	"unicode"
	"unicode/utf8"

	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/trace"
)

// This file is the parallel ingest path: chunked byte-level readers for
// the edge-list and DIMACS formats that split the input on newline
// boundaries, parse fields in place over []byte (no strings.Fields /
// TrimSpace allocations), and fan the chunks out over par.Pool. The
// scanner-based readers in io.go remain the semantic reference: the
// parallel path must produce bit-identical graphs and byte-identical
// error messages (including line numbers), which the differential
// tests and fuzz targets in ingest_test.go / fuzz_test.go enforce.

// ReadOptions configures the text readers. The zero value means: pick
// the parallel path for inputs past a size cutoff, the serial reference
// path below it, with par.Threads() workers and no guard.
type ReadOptions struct {
	// Serial forces the scanner-based reference reader.
	Serial bool
	// Threads is the worker count for the parallel path; <= 0 means
	// par.Threads().
	Threads int
	// Guard is polled at chunk granularity and charged for the edge
	// buffers the parallel path materializes; nil is free.
	Guard *guard.Token
	// Trace, when live, is the parent span the read records under: one
	// ingest.read_* span covering the whole read, with parse and build
	// child spans on the parallel path. The zero value is free.
	Trace trace.Ctx

	// chunkBytes overrides the chunk size target and forces the
	// parallel path regardless of input size. Test hook: tiny chunks
	// put blank lines, comments, and torn lines on chunk boundaries.
	chunkBytes int
}

// serialIngest is the process-wide escape hatch (-ingest=serial on the
// CLIs): when set, Read*, Build, and Stats all take their serial
// reference paths. The parallel paths are bit-identical by test, so
// this is a diagnostic switch, not a correctness one.
var serialIngest atomic.Bool

// SetSerialIngest forces every ingest entry point (readers, builder,
// stats) onto its serial reference path. Used by the CLIs' -ingest
// flag to isolate the parallel pipeline when debugging.
func SetSerialIngest(on bool) { serialIngest.Store(on) }

// SerialIngest reports whether the serial escape hatch is set.
func SerialIngest() bool { return serialIngest.Load() }

const (
	// maxLineBytes mirrors the serial readers' scanner buffer: a line
	// this long or longer is a bufio.ErrTooLong, byte-identical to the
	// scanner's failure.
	maxLineBytes = 1 << 20
	// parallelReadCutoff is the input size below which the serial
	// reader is used outright; chunking overhead only pays for itself
	// on real files.
	parallelReadCutoff = 64 << 10
	// ingestPollStride is how many lines a chunk parser processes
	// between guard checkpoints.
	ingestPollStride = 4096
)

// startIngest opens one ingest phase span tagged with the input name.
func startIngest(tc trace.Ctx, span, name string) trace.Ctx {
	sp := tc.Start(span)
	if sp.Live() {
		sp = sp.Attr("input", name)
	}
	return sp
}

// ReadEdgeListOpts is ReadEdgeList with explicit options.
func ReadEdgeListOpts(r io.Reader, name string, o ReadOptions) (*Graph, error) {
	sp := startIngest(o.Trace, "ingest.read_edgelist", name)
	defer sp.End()
	o.Trace = sp
	if o.Serial || serialIngest.Load() {
		return readEdgeListSerial(r, name)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		// Replay the exact serial semantics for a mid-stream reader
		// failure: the scanner parses the buffered prefix first, so an
		// earlier parse error outranks the I/O error.
		return readEdgeListSerial(replayReader(data, err), name)
	}
	return readEdgeListDispatch(data, name, o)
}

// ReadEdgeListBytes parses an in-memory edge list. It is the
// allocation-light entry point: the reader form must copy the stream
// first, this one parses fields in place.
func ReadEdgeListBytes(data []byte, name string, o ReadOptions) (*Graph, error) {
	sp := startIngest(o.Trace, "ingest.read_edgelist", name)
	defer sp.End()
	o.Trace = sp
	return readEdgeListDispatch(data, name, o)
}

// readEdgeListDispatch picks the serial or parallel edge-list path;
// o.Trace is already the enclosing read span.
func readEdgeListDispatch(data []byte, name string, o ReadOptions) (*Graph, error) {
	if o.Serial || serialIngest.Load() ||
		(o.chunkBytes == 0 && len(data) < parallelReadCutoff) {
		return readEdgeListSerial(bytes.NewReader(data), name)
	}
	return readEdgeListParallel(data, name, o)
}

// ReadDIMACSOpts is ReadDIMACS with explicit options.
func ReadDIMACSOpts(r io.Reader, name string, o ReadOptions) (*Graph, error) {
	sp := startIngest(o.Trace, "ingest.read_dimacs", name)
	defer sp.End()
	o.Trace = sp
	if o.Serial || serialIngest.Load() {
		return readDIMACSSerial(r, name)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return readDIMACSSerial(replayReader(data, err), name)
	}
	return readDIMACSDispatch(data, name, o)
}

// ReadDIMACSBytes parses an in-memory DIMACS .gr file (see
// ReadEdgeListBytes for why the bytes form exists).
func ReadDIMACSBytes(data []byte, name string, o ReadOptions) (*Graph, error) {
	sp := startIngest(o.Trace, "ingest.read_dimacs", name)
	defer sp.End()
	o.Trace = sp
	return readDIMACSDispatch(data, name, o)
}

// readDIMACSDispatch picks the serial or parallel DIMACS path; o.Trace
// is already the enclosing read span.
func readDIMACSDispatch(data []byte, name string, o ReadOptions) (*Graph, error) {
	if o.Serial || serialIngest.Load() ||
		(o.chunkBytes == 0 && len(data) < parallelReadCutoff) {
		return readDIMACSSerial(bytes.NewReader(data), name)
	}
	return readDIMACSParallel(data, name, o)
}

// replayReader reconstructs the stream a failed io.ReadAll consumed:
// the bytes it managed to read, then the error. Feeding that to the
// serial reader reproduces the scanner's parse-before-fail ordering.
func replayReader(data []byte, err error) io.Reader {
	return io.MultiReader(bytes.NewReader(data), &errReader{err: err})
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }

// ---------------------------------------------------------------------
// Byte-level line and field scanning.
//
// The serial readers run strings.TrimSpace + strings.Fields per line;
// both treat whitespace as unicode.IsSpace. The helpers below replicate
// that rune-exactly (ASCII fast path, utf8 decode above RuneSelf) while
// returning subslices of the input — no allocation on the happy path.

// asciiSpace matches the table inside strings.Fields.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// nextField returns the first whitespace-delimited field of s and the
// tail after it, with strings.Fields' exact notion of whitespace.
// A nil field means s has no more fields.
func nextField(s []byte) (field, rest []byte) {
	i := 0
	for i < len(s) {
		if c := s[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 0 {
				break
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(s[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += size
	}
	if i == len(s) {
		return nil, nil
	}
	start := i
	for i < len(s) {
		if c := s[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 1 {
				break
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(s[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += size
	}
	return s[start:i], s[i:]
}

// parseIntBytes mirrors strconv.ParseInt(string(s), 10, bitSize) for
// bitSize 32 or 64: optional sign, decimal digits only, range-checked.
// It reports success instead of building an error — the readers only
// ever quote the offending line, never strconv's message.
func parseIntBytes(s []byte, bitSize int) (int64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		i++
	}
	if i == len(s) {
		return 0, false
	}
	cutoff := uint64(1) << uint(bitSize-1) // |min|; max is cutoff-1
	var un uint64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		// un is bounded by cutoff from the previous iteration, but one
		// more digit can still overflow uint64 arithmetic for 64-bit
		// parses — reject before multiplying.
		if un > (1<<63)/5 { // un*10 >= 2^64 or clearly out of range
			return 0, false
		}
		un = un*10 + uint64(c-'0')
		if neg {
			if un > cutoff {
				return 0, false
			}
		} else if un > cutoff-1 {
			return 0, false
		}
	}
	n := int64(un) // un == 1<<63 converts to MinInt64; negation below is a no-op
	if neg {
		n = -n
	}
	return n, true
}

// lineScanner walks a chunk line by line without allocating. Lines are
// the scanner's: content between newlines, with a trailing unterminated
// line counted at EOF.
type lineScanner struct {
	chunk []byte
	off   int
}

// next returns the raw content of the next line (without the newline)
// and whether one existed.
func (s *lineScanner) next() ([]byte, bool) {
	if s.off >= len(s.chunk) {
		return nil, false
	}
	rest := s.chunk[s.off:]
	if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
		s.off += nl + 1
		return rest[:nl], true
	}
	s.off = len(s.chunk)
	return rest, true
}

// ---------------------------------------------------------------------
// Chunking.

// splitChunks cuts data into pieces of roughly target bytes, each
// ending on a newline boundary (except possibly the last), so every
// line belongs to exactly one chunk.
func splitChunks(data []byte, target int) [][]byte {
	if target < 1 {
		target = 1
	}
	var chunks [][]byte
	for start := 0; start < len(data); {
		end := start + target
		if end >= len(data) {
			end = len(data)
		} else if j := bytes.IndexByte(data[end:], '\n'); j >= 0 {
			end += j + 1
		} else {
			end = len(data)
		}
		chunks = append(chunks, data[start:end])
		start = end
	}
	return chunks
}

// chunkTarget picks the chunk size: a few chunks per worker for load
// balance, but never so small that per-chunk overhead dominates.
func chunkTarget(size, threads, override int) int {
	if override > 0 {
		return override
	}
	target := size / (4 * threads)
	if target < parallelReadCutoff/4 {
		target = parallelReadCutoff / 4
	}
	return target
}

// countLines returns the per-chunk line counts and total. A chunk's
// count is its newline count, plus one for a trailing unterminated
// line (only possible in the final chunk).
func countLines(ex par.Executor, chunks [][]byte) []int {
	lines := make([]int, len(chunks))
	ex.For(int64(len(chunks)), par.Static, func(c int64) {
		ch := chunks[c]
		n := bytes.Count(ch, nlSep)
		if len(ch) > 0 && ch[len(ch)-1] != '\n' {
			n++
		}
		lines[c] = n
	})
	return lines
}

var nlSep = []byte{'\n'}

// ---------------------------------------------------------------------
// Edge list.

// elChunk is one chunk's parse result: edges (self-loops already
// dropped, matching Builder.AddEdge), the largest id seen (including
// self-loop lines, matching the serial reader's maxID), and the first
// error with its position.
type elChunk struct {
	u, v, w []int32
	maxID   int32
	err     error
}

func readEdgeListParallel(data []byte, name string, o ReadOptions) (*Graph, error) {
	t := o.Threads
	if t <= 0 {
		t = par.Threads()
	}
	gd := o.Guard
	chunks := splitChunks(data, chunkTarget(len(data), t, o.chunkBytes))
	if len(chunks) == 0 {
		return NewBuilder(name, 0).Build(), nil
	}
	if t > len(chunks) {
		t = len(chunks)
	}
	pool := par.AcquirePool(t)
	defer par.ReleasePool(pool)
	ex := pool.Guarded(gd)

	parseSpan := o.Trace.Start("ingest.parse")
	lines := countLines(ex, chunks)
	base := make([]int, len(chunks)+1)
	for c, n := range lines {
		base[c+1] = base[c] + n
	}

	res := make([]elChunk, len(chunks))
	ex.For(int64(len(chunks)), par.Static, func(c int64) {
		parseEdgeListChunk(chunks[c], base[c], gd, &res[c])
	})
	parseSpan.End()
	var total int64
	maxID := int32(-1)
	for c := range res {
		if res[c].err != nil {
			return nil, res[c].err
		}
		total += int64(len(res[c].u))
		if res[c].maxID > maxID {
			maxID = res[c].maxID
		}
	}

	gd.Charge(total * 12) // the combined edge arrays
	us := make([]int32, total)
	vs := make([]int32, total)
	ws := make([]int32, total)
	off := make([]int64, len(res)+1)
	for c := range res {
		off[c+1] = off[c] + int64(len(res[c].u))
	}
	ex.For(int64(len(res)), par.Static, func(c int64) {
		copy(us[off[c]:off[c+1]], res[c].u)
		copy(vs[off[c]:off[c+1]], res[c].v)
		copy(ws[off[c]:off[c+1]], res[c].w)
	})
	b := &Builder{name: name, n: maxID + 1, src: us, dst: vs, w: ws}
	return b.BuildOpts(BuildOptions{Threads: t, Guard: gd, Trace: o.Trace}), nil
}

// parseEdgeListChunk parses one chunk; lineBase is the number of lines
// before it, so its first line is lineBase+1. Every error message is
// byte-identical to the serial reader's for the same line.
func parseEdgeListChunk(chunk []byte, lineBase int, gd *guard.Token, res *elChunk) {
	sc := lineScanner{chunk: chunk}
	ln := lineBase
	res.maxID = -1
	cap0 := bytes.Count(chunk, nlSep) + 1
	res.u = make([]int32, 0, cap0)
	res.v = make([]int32, 0, cap0)
	res.w = make([]int32, 0, cap0)
	for {
		raw, ok := sc.next()
		if !ok {
			return
		}
		ln++
		if (ln-lineBase)%ingestPollStride == 1 {
			gd.Poll()
		}
		if len(raw) >= maxLineBytes {
			res.err = fmt.Errorf("graph.ReadEdgeList: %w", bufio.ErrTooLong)
			return
		}
		text := bytes.TrimSpace(raw)
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		f0, rest := nextField(text)
		f1, rest := nextField(rest)
		f2, rest := nextField(rest)
		if extra, _ := nextField(rest); f1 == nil || extra != nil {
			res.err = fmt.Errorf("graph.ReadEdgeList: line %d: want 2 or 3 fields, got %q", ln, text)
			return
		}
		u, ok1 := parseIntBytes(f0, 32)
		v, ok2 := parseIntBytes(f1, 32)
		if !ok1 || !ok2 {
			res.err = fmt.Errorf("graph.ReadEdgeList: line %d: bad ids %q", ln, text)
			return
		}
		if u < 0 || v < 0 {
			res.err = fmt.Errorf("graph.ReadEdgeList: line %d: negative vertex id in %q", ln, text)
			return
		}
		if mx := max(u, v); mx >= int64(MaxReadVertices) {
			res.err = fmt.Errorf("graph.ReadEdgeList: line %d: vertex id %d exceeds limit %d", ln, mx, MaxReadVertices)
			return
		}
		w := int64(1)
		if f2 != nil {
			var okw bool
			w, okw = parseIntBytes(f2, 32)
			if !okw {
				res.err = fmt.Errorf("graph.ReadEdgeList: line %d: bad weight %q", ln, text)
				return
			}
			if w < 0 {
				res.err = fmt.Errorf("graph.ReadEdgeList: line %d: negative weight %d", ln, w)
				return
			}
		}
		if int32(u) > res.maxID {
			res.maxID = int32(u)
		}
		if int32(v) > res.maxID {
			res.maxID = int32(v)
		}
		if u != v { // AddEdge drops self-loops; maxID above still counts them
			res.u = append(res.u, int32(u))
			res.v = append(res.v, int32(v))
			res.w = append(res.w, int32(w))
		}
	}
}

// ---------------------------------------------------------------------
// DIMACS.

// dimacsChunk is one arc-region chunk's result. arcs counts every valid
// arc line before the chunk's first error (self-loops included, exactly
// the serial reader's arcs counter); the edge slices exclude self-loops.
type dimacsChunk struct {
	u, v, w []int32
	arcs    int64
	err     error
}

func readDIMACSParallel(data []byte, name string, o ReadOptions) (*Graph, error) {
	t := o.Threads
	if t <= 0 {
		t = par.Threads()
	}
	gd := o.Guard

	// The header region is stateful (comments, then exactly one problem
	// line, which everything after depends on), so scan it serially; in
	// practice it is the first few lines of the file.
	n, declaredArcs, headLines, rest, err := dimacsHeader(data)
	if err != nil {
		return nil, err
	}

	chunks := splitChunks(rest, chunkTarget(len(rest), t, o.chunkBytes))
	if t > len(chunks) && len(chunks) > 0 {
		t = len(chunks)
	}
	pool := par.AcquirePool(t)
	defer par.ReleasePool(pool)
	ex := pool.Guarded(gd)

	parseSpan := o.Trace.Start("ingest.parse")
	lines := countLines(ex, chunks)
	base := make([]int, len(chunks)+1)
	base[0] = headLines
	for c, ct := range lines {
		base[c+1] = base[c] + ct
	}

	res := make([]dimacsChunk, len(chunks))
	ex.For(int64(len(chunks)), par.Static, func(c int64) {
		parseDIMACSChunk(chunks[c], base[c], n, gd, &res[c], nil)
	})
	parseSpan.End()

	// Error selection must match the serial reader's file-order stop:
	// within a chunk, arcs counts only lines before the chunk's first
	// error, so if the cumulative count overflows the declared total the
	// overflowing arc precedes that error and wins; otherwise the
	// chunk's own error does.
	var total int64
	cum := int64(0)
	for c := range res {
		if cum+res[c].arcs > declaredArcs {
			target := declaredArcs - cum + 1
			line := kthArcLine(chunks[c], base[c], n, target)
			return nil, fmt.Errorf("graph.ReadDIMACS: line %d: more arcs than the declared %d", line, declaredArcs)
		}
		cum += res[c].arcs
		if res[c].err != nil {
			return nil, res[c].err
		}
		total += int64(len(res[c].u))
	}
	if cum != declaredArcs {
		return nil, fmt.Errorf("graph.ReadDIMACS: truncated: %d arcs, problem line declares %d", cum, declaredArcs)
	}

	gd.Charge(total * 12)
	us := make([]int32, total)
	vs := make([]int32, total)
	ws := make([]int32, total)
	off := make([]int64, len(res)+1)
	for c := range res {
		off[c+1] = off[c] + int64(len(res[c].u))
	}
	ex.For(int64(len(res)), par.Static, func(c int64) {
		copy(us[off[c]:off[c+1]], res[c].u)
		copy(vs[off[c]:off[c+1]], res[c].v)
		copy(ws[off[c]:off[c+1]], res[c].w)
	})
	b := &Builder{name: name, n: int32(n), src: us, dst: vs, w: ws}
	return b.BuildOpts(BuildOptions{Threads: t, Guard: gd, Trace: o.Trace}), nil
}

// dimacsHeader serially scans data up to and including the problem
// line. It returns the declared counts, the number of lines consumed,
// and the remainder of the input (the arc region).
func dimacsHeader(data []byte) (n, declaredArcs int64, headLines int, rest []byte, err error) {
	sc := lineScanner{chunk: data}
	ln := 0
	for {
		raw, ok := sc.next()
		if !ok {
			return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: no problem line")
		}
		ln++
		if len(raw) >= maxLineBytes {
			return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: %w", bufio.ErrTooLong)
		}
		text := bytes.TrimSpace(raw)
		if len(text) == 0 {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			// The serial reader checks the field count and fields[1],
			// never fields[0] beyond its first byte; replicate exactly.
			_, r := nextField(text)
			f1, r := nextField(r)
			f2, r := nextField(r)
			f3, r := nextField(r)
			if extra, _ := nextField(r); f3 == nil || extra != nil || !bytes.Equal(f1, []byte("sp")) {
				return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad problem line %q", ln, text)
			}
			nv, ok1 := parseIntBytes(f2, 64)
			na, ok2 := parseIntBytes(f3, 64)
			if !ok1 || !ok2 {
				return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: line %d: bad problem counts %q", ln, text)
			}
			if cerr := checkVertexCount("graph.ReadDIMACS", ln, nv); cerr != nil {
				return 0, 0, 0, nil, cerr
			}
			if na < 0 {
				return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: line %d: negative arc count %d", ln, na)
			}
			return nv, na, ln, data[sc.off:], nil
		case 'a':
			return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: line %d: arc before problem line", ln)
		default:
			return 0, 0, 0, nil, fmt.Errorf("graph.ReadDIMACS: line %d: unknown record %q", ln, text)
		}
	}
}

// parseDIMACSChunk parses one arc-region chunk. When arcLines is
// non-nil it records the global line number of every counted arc (the
// overflow-rescue rescan uses this); the happy path passes nil and
// stays allocation-light.
func parseDIMACSChunk(chunk []byte, lineBase int, n int64, gd *guard.Token, res *dimacsChunk, arcLines *[]int) {
	sc := lineScanner{chunk: chunk}
	ln := lineBase
	cap0 := bytes.Count(chunk, nlSep) + 1
	res.u = make([]int32, 0, cap0)
	res.v = make([]int32, 0, cap0)
	res.w = make([]int32, 0, cap0)
	for {
		raw, ok := sc.next()
		if !ok {
			return
		}
		ln++
		if (ln-lineBase)%ingestPollStride == 1 {
			gd.Poll()
		}
		if len(raw) >= maxLineBytes {
			res.err = fmt.Errorf("graph.ReadDIMACS: %w", bufio.ErrTooLong)
			return
		}
		text := bytes.TrimSpace(raw)
		if len(text) == 0 {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			res.err = fmt.Errorf("graph.ReadDIMACS: line %d: duplicate problem line", ln)
			return
		case 'a':
			_, r := nextField(text)
			f1, r := nextField(r)
			f2, r := nextField(r)
			f3, r := nextField(r)
			if extra, _ := nextField(r); f3 == nil || extra != nil {
				res.err = fmt.Errorf("graph.ReadDIMACS: line %d: bad arc line %q", ln, text)
				return
			}
			u, ok1 := parseIntBytes(f1, 32)
			v, ok2 := parseIntBytes(f2, 32)
			w, ok3 := parseIntBytes(f3, 32)
			if !ok1 || !ok2 || !ok3 {
				res.err = fmt.Errorf("graph.ReadDIMACS: line %d: bad arc numbers %q", ln, text)
				return
			}
			if u < 1 || u > n || v < 1 || v > n {
				res.err = fmt.Errorf("graph.ReadDIMACS: line %d: arc %d->%d outside 1..%d", ln, u, v, n)
				return
			}
			if w < 0 {
				res.err = fmt.Errorf("graph.ReadDIMACS: line %d: negative weight %d", ln, w)
				return
			}
			res.arcs++
			if arcLines != nil {
				*arcLines = append(*arcLines, ln)
			}
			if u != v {
				res.u = append(res.u, int32(u-1))
				res.v = append(res.v, int32(v-1))
				res.w = append(res.w, int32(w))
			}
		default:
			res.err = fmt.Errorf("graph.ReadDIMACS: line %d: unknown record %q", ln, text)
			return
		}
	}
}

// kthArcLine rescans one chunk to find the global line number of its
// k-th valid arc line. Only called on the arc-overflow error path; the
// target arc is known to precede any error in the chunk.
func kthArcLine(chunk []byte, lineBase int, n int64, k int64) int {
	var res dimacsChunk
	var arcLines []int
	parseDIMACSChunk(chunk, lineBase, n, nil, &res, &arcLines)
	return arcLines[k-1]
}
