package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates undirected weighted edges and produces a Graph.
// Duplicate edges are collapsed (keeping the smallest weight) and
// self-loops are dropped, matching the conventions of the paper's input
// preparation: each undirected edge becomes two directed edges.
type Builder struct {
	name string
	n    int32
	src  []int32
	dst  []int32
	w    []int32
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(name string, n int32) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph.NewBuilder: negative vertex count %d", n))
	}
	return &Builder{name: name, n: n}
}

// AddEdge records the undirected edge {u, v} with the given weight.
// Self-loops are ignored. Vertices must be in range.
func (b *Builder) AddEdge(u, v, weight int32) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph.Builder.AddEdge: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	b.w = append(b.w, weight)
}

// NumEdgesAdded returns the number of AddEdge calls retained so far
// (before dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.src) }

// Build produces the CSR+COO graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	type dedge struct {
		u, v, w int32
	}
	// Symmetrize: both directions of every undirected edge.
	edges := make([]dedge, 0, 2*len(b.src))
	for i := range b.src {
		edges = append(edges,
			dedge{b.src[i], b.dst[i], b.w[i]},
			dedge{b.dst[i], b.src[i], b.w[i]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		if edges[i].v != edges[j].v {
			return edges[i].v < edges[j].v
		}
		return edges[i].w < edges[j].w
	})
	// Dedup, keeping the smallest weight per directed edge.
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].u == e.u && out[len(out)-1].v == e.v {
			continue
		}
		out = append(out, e)
	}
	edges = out

	m := int64(len(edges))
	g := &Graph{
		Name:    b.name,
		N:       b.n,
		NbrIdx:  make([]int64, b.n+1),
		NbrList: make([]int32, m),
		Weights: make([]int32, m),
		Src:     make([]int32, m),
		Dst:     make([]int32, m),
	}
	for i, e := range edges {
		g.NbrIdx[e.u+1]++
		g.NbrList[i] = e.v
		g.Weights[i] = e.w
		g.Src[i] = e.u
		g.Dst[i] = e.v
	}
	for v := int32(0); v < b.n; v++ {
		g.NbrIdx[v+1] += g.NbrIdx[v]
	}
	return g
}

// FromEdges is a convenience constructor: it builds a graph from parallel
// u/v/weight slices.
func FromEdges(name string, n int32, u, v, w []int32) *Graph {
	if len(u) != len(v) || len(u) != len(w) {
		panic("graph.FromEdges: slice lengths disagree")
	}
	b := NewBuilder(name, n)
	for i := range u {
		b.AddEdge(u[i], v[i], w[i])
	}
	return b.Build()
}
