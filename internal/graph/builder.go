package graph

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/trace"
)

// Builder accumulates undirected weighted edges and produces a Graph.
// Duplicate edges are collapsed (keeping the smallest weight) and
// self-loops are dropped, matching the conventions of the paper's input
// preparation: each undirected edge becomes two directed edges.
type Builder struct {
	name string
	n    int32
	src  []int32
	dst  []int32
	w    []int32
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(name string, n int32) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph.NewBuilder: negative vertex count %d", n))
	}
	return &Builder{name: name, n: n}
}

// AddEdge records the undirected edge {u, v} with the given weight.
// Self-loops are ignored. Vertices must be in range.
func (b *Builder) AddEdge(u, v, weight int32) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph.Builder.AddEdge: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	b.w = append(b.w, weight)
}

// NumEdgesAdded returns the number of AddEdge calls retained so far
// (before dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.src) }

// BuildOptions configures Build. The zero value means: counting-sort
// construction for inputs past a size cutoff, the serial reference
// build below it, with par.Threads() workers and no guard.
type BuildOptions struct {
	// Serial forces the comparison-sort reference build.
	Serial bool
	// Threads is the worker count for the counting-sort build; <= 0
	// means par.Threads().
	Threads int
	// Guard is polled at region checkpoints and charged for the
	// construction scratch and the graph's arrays; nil is free.
	Guard *guard.Token
	// Trace, when live, records the build as an ingest.build span; the
	// zero value is free.
	Trace trace.Ctx
}

// buildSerialCutoff is the edge count below which the counting-sort
// machinery (histogram, scatter buffer, pool dispatch) costs more than
// the comparison sort it replaces.
const buildSerialCutoff = 1 << 13

// Build produces the CSR+COO graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph { return b.BuildOpts(BuildOptions{}) }

// BuildOpts is Build with explicit options. The counting-sort and
// serial paths produce bit-identical graphs (proven by the differential
// tests in ingest_test.go): scatter order inside a vertex bucket is
// erased by the per-bucket sort on (neighbor, weight) keys, and
// dedup-keep-first after that sort keeps the minimum weight exactly as
// the serial sort+dedup does.
func (b *Builder) BuildOpts(o BuildOptions) *Graph {
	sp := o.Trace.Start("ingest.build")
	defer sp.End()
	if o.Serial || serialIngest.Load() || len(b.src) < buildSerialCutoff {
		return b.buildSerial()
	}
	t := o.Threads
	if t <= 0 {
		t = par.Threads()
	}
	return b.buildParallel(t, o.Guard)
}

// buildSerial is the reference build: symmetrize, comparison-sort,
// dedup. O(m log m) with a closure compare; kept verbatim as the
// semantic baseline the counting-sort path is tested against.
func (b *Builder) buildSerial() *Graph {
	type dedge struct {
		u, v, w int32
	}
	// Symmetrize: both directions of every undirected edge.
	edges := make([]dedge, 0, 2*len(b.src))
	for i := range b.src {
		edges = append(edges,
			dedge{b.src[i], b.dst[i], b.w[i]},
			dedge{b.dst[i], b.src[i], b.w[i]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		if edges[i].v != edges[j].v {
			return edges[i].v < edges[j].v
		}
		return edges[i].w < edges[j].w
	})
	// Dedup, keeping the smallest weight per directed edge.
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].u == e.u && out[len(out)-1].v == e.v {
			continue
		}
		out = append(out, e)
	}
	edges = out

	m := int64(len(edges))
	g := &Graph{
		Name:    b.name,
		N:       b.n,
		NbrIdx:  make([]int64, b.n+1),
		NbrList: make([]int32, m),
		Weights: make([]int32, m),
		Src:     make([]int32, m),
		Dst:     make([]int32, m),
	}
	for i, e := range edges {
		g.NbrIdx[e.u+1]++
		g.NbrList[i] = e.v
		g.Weights[i] = e.w
		g.Src[i] = e.u
		g.Dst[i] = e.v
	}
	for v := int32(0); v < b.n; v++ {
		g.NbrIdx[v+1] += g.NbrIdx[v]
	}
	return g
}

// packNbr packs a directed edge's (neighbor, weight) into one sortable
// key: neighbor ascending in the high half, weight in signed-ascending
// order in the low half (the sign-bit flip makes unsigned key order
// equal signed weight order).
func packNbr(v, w int32) uint64 {
	return uint64(uint32(v))<<32 | uint64(uint32(w)^0x80000000)
}

func unpackW(key uint64) int32 { return int32(uint32(key) ^ 0x80000000) }

// buildParallel is the counting-sort CSR construction: degree histogram
// (atomic adds), prefix sum, key scatter (atomic bucket cursors), then
// a per-vertex sort + dedup and a final parallel fill — O(m) work plus
// per-bucket sorts, no global comparison sort. Builder invariants
// guarantee src/dst contain no self-loops and all ids are in range.
func (b *Builder) buildParallel(t int, gd *guard.Token) *Graph {
	k := int64(len(b.src))
	n := int64(b.n)
	src, dst, ws := b.src, b.dst, b.w

	pool := par.AcquirePool(t)
	defer par.ReleasePool(pool)
	ex := pool.Guarded(gd)

	// Construction scratch: bucket cursors, offsets, and the packed-key
	// scatter buffer (16 bytes per directed edge — less than the serial
	// path's 12-byte dedge with both directions materialized the same way).
	gd.Charge(n*8 + (n+1)*8 + 2*k*8)
	cur := make([]int64, n)
	ex.For(k, par.Static, func(i int64) {
		atomic.AddInt64(&cur[src[i]], 1)
		atomic.AddInt64(&cur[dst[i]], 1)
	})
	off := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		off[v+1] = off[v] + cur[v]
		cur[v] = off[v] // becomes the scatter cursor
	}
	keys := make([]uint64, 2*k)
	ex.For(k, par.Static, func(i int64) {
		u, v, w := src[i], dst[i], ws[i]
		keys[atomic.AddInt64(&cur[u], 1)-1] = packNbr(v, w)
		keys[atomic.AddInt64(&cur[v], 1)-1] = packNbr(u, w)
	})

	// Per-vertex: sort the bucket (erasing scatter order), dedup by
	// neighbor keeping the first = smallest weight. cur[v] becomes the
	// deduped degree.
	ex.For(n, par.Static, func(v int64) {
		bkt := keys[off[v]:off[v+1]]
		slices.Sort(bkt)
		out := 0
		for j := range bkt {
			if out > 0 && bkt[out-1]>>32 == bkt[j]>>32 {
				continue
			}
			bkt[out] = bkt[j]
			out++
		}
		cur[v] = int64(out)
	})

	nbrIdx := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		nbrIdx[v+1] = nbrIdx[v] + cur[v]
	}
	m := nbrIdx[n]
	gd.Charge((n+1)*8 + m*16)
	g := &Graph{
		Name:    b.name,
		N:       b.n,
		NbrIdx:  nbrIdx,
		NbrList: make([]int32, m),
		Weights: make([]int32, m),
		Src:     make([]int32, m),
		Dst:     make([]int32, m),
	}
	ex.For(n, par.Static, func(v int64) {
		bkt := keys[off[v] : off[v]+cur[v]]
		base := nbrIdx[v]
		for j, key := range bkt {
			nbr := int32(key >> 32)
			g.NbrList[base+int64(j)] = nbr
			g.Weights[base+int64(j)] = unpackW(key)
			g.Src[base+int64(j)] = int32(v)
			g.Dst[base+int64(j)] = nbr
		}
	})
	return g
}

// FromEdges is a convenience constructor: it builds a graph from parallel
// u/v/weight slices.
func FromEdges(name string, n int32, u, v, w []int32) *Graph {
	return FromEdgesOpts(name, n, u, v, w, BuildOptions{})
}

// FromEdgesOpts is FromEdges with explicit build options. Edges are
// validated and self-loops dropped exactly as AddEdge does.
func FromEdgesOpts(name string, n int32, u, v, w []int32, o BuildOptions) *Graph {
	if len(u) != len(v) || len(u) != len(w) {
		panic("graph.FromEdges: slice lengths disagree")
	}
	b := NewBuilder(name, n)
	for i := range u {
		b.AddEdge(u[i], v[i], w[i])
	}
	return b.BuildOpts(o)
}
