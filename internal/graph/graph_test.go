package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// path builds the path graph 0-1-2-...-(n-1) with unit weights.
func path(n int32) *Graph {
	b := NewBuilder("path", n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1, 1)
	}
	return b.Build()
}

// k4 builds the complete graph on 4 vertices with weight u+v+1.
func k4() *Graph {
	b := NewBuilder("k4", 4)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v, u+v+1)
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := k4()
	if g.N != 4 {
		t.Fatalf("N = %d, want 4", g.N)
	}
	if g.M() != 12 {
		t.Fatalf("M = %d, want 12 (6 undirected edges doubled)", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 4; v++ {
		if d := g.Degree(v); d != 3 {
			t.Errorf("Degree(%d) = %d, want 3", v, d)
		}
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder("loops", 3)
	b.AddEdge(0, 0, 5)
	b.AddEdge(1, 1, 5)
	b.AddEdge(0, 1, 2)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupKeepsMinWeight(t *testing.T) {
	b := NewBuilder("dup", 2)
	b.AddEdge(0, 1, 7)
	b.AddEdge(1, 0, 3)
	b.AddEdge(0, 1, 9)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if w, ok := g.weight(0, 1); !ok || w != 3 {
		t.Fatalf("weight(0,1) = %d,%v, want 3,true", w, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderEmptyGraph(t *testing.T) {
	g := NewBuilder("empty", 5).Build()
	if g.N != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder("bad", 2).AddEdge(0, 2, 1)
}

func TestHasEdge(t *testing.T) {
	g := path(5)
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, false},
		{3, 4, true}, {4, 3, true}, {0, 4, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestCOOMatchesCSR(t *testing.T) {
	g := k4()
	for v := int32(0); v < g.N; v++ {
		for i := g.NbrIdx[v]; i < g.NbrIdx[v+1]; i++ {
			if g.Src[i] != v || g.Dst[i] != g.NbrList[i] {
				t.Fatalf("COO edge %d mismatch", i)
			}
		}
	}
}

// randomGraph builds a deterministic pseudo-random graph for property tests.
func randomGraph(seed int64, n int32, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand", n)
	for i := 0; i < edges; i++ {
		b.AddEdge(rng.Int31n(n), rng.Int31n(n), rng.Int31n(100)+1)
	}
	return b.Build()
}

func TestQuickBuilderInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8, rawE uint8) bool {
		n := int32(rawN%40) + 2
		g := randomGraph(seed, n, int(rawE))
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSumEqualsM(t *testing.T) {
	f := func(seed int64, rawN uint8, rawE uint8) bool {
		n := int32(rawN%40) + 2
		g := randomGraph(seed, n, int(rawE))
		var sum int64
		for v := int32(0); v < g.N; v++ {
			sum += g.Degree(v)
		}
		return sum == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsPath(t *testing.T) {
	g := path(10)
	s := ComputeStats(g)
	if s.Vertices != 10 || s.Edges != 18 {
		t.Fatalf("got n=%d m=%d, want 10, 18", s.Vertices, s.Edges)
	}
	if s.MaxDegree != 2 {
		t.Errorf("MaxDegree = %d, want 2", s.MaxDegree)
	}
	if s.Diameter != 9 {
		t.Errorf("Diameter = %d, want 9", s.Diameter)
	}
	if s.PctDeg32 != 0 || s.PctDeg512 != 0 {
		t.Errorf("degree percentages nonzero: %v %v", s.PctDeg32, s.PctDeg512)
	}
	wantAvg := 1.8
	if s.AvgDegree != wantAvg {
		t.Errorf("AvgDegree = %v, want %v", s.AvgDegree, wantAvg)
	}
}

func TestEstimateDiameterStar(t *testing.T) {
	// Star graph: diameter 2.
	b := NewBuilder("star", 33)
	for v := int32(1); v < 33; v++ {
		b.AddEdge(0, v, 1)
	}
	g := b.Build()
	if d := EstimateDiameter(g); d != 2 {
		t.Fatalf("diameter = %d, want 2", d)
	}
	s := ComputeStats(g)
	if s.MaxDegree != 32 {
		t.Fatalf("MaxDegree = %d, want 32", s.MaxDegree)
	}
	// Exactly one of 33 vertices has degree >= 32.
	if got, want := s.PctDeg32, 100.0/33.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("PctDeg32 = %v, want %v", got, want)
	}
}

func TestEstimateDiameterDisconnected(t *testing.T) {
	// Two components; the larger one is a path of 6 vertices (diameter 5).
	b := NewBuilder("two", 9)
	for v := int32(0); v < 5; v++ {
		b.AddEdge(v, v+1, 1)
	}
	b.AddEdge(6, 7, 1)
	b.AddEdge(7, 8, 1)
	g := b.Build()
	if d := EstimateDiameter(g); d != 5 {
		t.Fatalf("diameter = %d, want 5", d)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	hist := DegreeHistogram(g)
	want := []int64{2, 2}
	if !reflect.DeepEqual(hist, want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := k4()
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf, "k4")
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, got)
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(42, 20, 50)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, "rand")
	if err != nil {
		t.Fatal(err)
	}
	// The round trip can shrink N if the top vertex ids are isolated, so
	// compare edge structure only when N matches.
	if got.N == g.N {
		assertSameGraph(t, g, got)
	}
}

func TestEdgeListDefaultWeight(t *testing.T) {
	in := "# comment\n0 1\n1 2\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in), "el")
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 4 {
		t.Fatalf("n=%d m=%d, want 3, 4", g.N, g.M())
	}
	for _, w := range g.Weights {
		if w != 1 {
			t.Fatalf("weight = %d, want 1", w)
		}
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",           // arc before problem line
		"p xx 3 2\n",          // wrong problem type
		"p sp 3\n",            // short problem line
		"p sp 3 2\nz 1 2\n",   // unknown record
		"p sp 3 2\na 1 2\n",   // short arc
		"p sp 3 2\na x y z\n", // non-numeric
		"",                    // no problem line
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(bytes.NewBufferString(in), "bad"); err == nil {
			t.Errorf("ReadDIMACS(%q) succeeded, want error", in)
		}
	}
}

func assertSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.N != want.N || got.M() != want.M() {
		t.Fatalf("graph shape n=%d m=%d, want n=%d m=%d", got.N, got.M(), want.N, want.M())
	}
	if !reflect.DeepEqual(got.NbrIdx, want.NbrIdx) ||
		!reflect.DeepEqual(got.NbrList, want.NbrList) ||
		!reflect.DeepEqual(got.Weights, want.Weights) {
		t.Fatal("CSR structures differ after round trip")
	}
}

// TestWeightBinarySearch pins the weight() lookup after its midpoint
// changed to the overflow-safe lo+(hi-lo)/2 form: every present edge
// must resolve to its stored weight (first, middle, and last neighbor
// positions included) and every absent pair must report not-found. The
// old (lo+hi)/2 midpoint is only wrong when the CSR edge offsets are
// within 2x of the int64 ceiling — unbuildable in a test — so the
// regression coverage here is behavioral: the search must stay exact
// over full adjacency lists under the new arithmetic.
func TestWeightBinarySearch(t *testing.T) {
	b := NewBuilder("star+", 8)
	// Vertex 0 is adjacent to everything (neighbors 1..7 exercise the
	// first/middle/last probe positions); 3-5 adds a non-star edge.
	for v := int32(1); v < 8; v++ {
		b.AddEdge(0, v, 10*v)
	}
	b.AddEdge(3, 5, 99)
	g := b.Build()
	for v := int32(1); v < 8; v++ {
		if w, ok := g.weight(0, v); !ok || w != 10*v {
			t.Errorf("weight(0,%d) = %d,%v, want %d,true", v, w, ok, 10*v)
		}
		if w, ok := g.weight(v, 0); !ok || w != 10*v {
			t.Errorf("weight(%d,0) = %d,%v, want %d,true", v, w, ok, 10*v)
		}
	}
	if w, ok := g.weight(3, 5); !ok || w != 99 {
		t.Errorf("weight(3,5) = %d,%v, want 99,true", w, ok)
	}
	for _, pair := range [][2]int32{{1, 2}, {2, 7}, {5, 6}, {0, 0}} {
		if _, ok := g.weight(pair[0], pair[1]); ok {
			t.Errorf("weight(%d,%d) found, want absent", pair[0], pair[1])
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
