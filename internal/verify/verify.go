// Package verify checks variant results against the serial references,
// reproducing the paper's methodology: "each code verifies its computed
// solution by comparing it to the solution of a simple serial
// algorithm" (§4.1).
package verify

import (
	"fmt"
	"math"

	"indigo/internal/algo"
	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/mis"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// Reference lazily computes and caches the serial solutions for one
// graph, so verifying many variants of the same input is cheap.
type Reference struct {
	g   *graph.Graph
	opt algo.Options

	bfsDist   []int32
	ssspDist  []int32
	label     []int32
	inSet     []bool
	rank      []float32
	triangles int64
	tcDone    bool
}

// NewReference creates a reference checker for g with the given options
// (source vertex, PageRank parameters).
func NewReference(g *graph.Graph, opt algo.Options) *Reference {
	return &Reference{g: g, opt: opt.Defaults(g.N)}
}

// Check validates res, produced by the variant cfg, against the serial
// solution of cfg.Algo. It returns nil when the result is correct.
func (r *Reference) Check(cfg styles.Config, res algo.Result) error {
	switch cfg.Algo {
	case styles.BFS:
		if r.bfsDist == nil {
			r.bfsDist = bfs.Serial(r.g, r.opt.Source)
		}
		return checkInt32s(cfg, "level", res.Dist, r.bfsDist)
	case styles.SSSP:
		if r.ssspDist == nil {
			r.ssspDist = sssp.Serial(r.g, r.opt.Source)
		}
		return checkInt32s(cfg, "distance", res.Dist, r.ssspDist)
	case styles.CC:
		if r.label == nil {
			r.label = cc.Serial(r.g)
		}
		return checkInt32s(cfg, "label", res.Label, r.label)
	case styles.MIS:
		if r.inSet == nil {
			r.inSet = mis.Serial(r.g)
		}
		return r.checkMIS(cfg, res.InSet)
	case styles.PR:
		if r.rank == nil {
			r.rank, _ = pr.Serial(r.g, float32(r.opt.PRDamping), r.opt.PRTol, r.opt.MaxIter)
		}
		return r.checkPR(cfg, res.Rank)
	case styles.TC:
		if !r.tcDone {
			r.triangles = tc.Serial(r.g)
			r.tcDone = true
		}
		if res.Triangles != r.triangles {
			return fmt.Errorf("%s: %d triangles, want %d", cfg.Name(), res.Triangles, r.triangles)
		}
		return nil
	}
	return fmt.Errorf("verify: unknown algorithm %v", cfg.Algo)
}

func checkInt32s(cfg styles.Config, what string, got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d %ss, want %d", cfg.Name(), len(got), what, len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			return fmt.Errorf("%s: vertex %d %s = %d, want %d", cfg.Name(), v, what, got[v], want[v])
		}
	}
	return nil
}

// checkMIS verifies both exact agreement with the unique
// greedy-by-priority set and the independence/maximality properties.
func (r *Reference) checkMIS(cfg styles.Config, got []bool) error {
	g := r.g
	if int32(len(got)) != g.N {
		return fmt.Errorf("%s: result has %d vertices, want %d", cfg.Name(), len(got), g.N)
	}
	for v := int32(0); v < g.N; v++ {
		if got[v] != r.inSet[v] {
			return fmt.Errorf("%s: vertex %d membership %v, want %v", cfg.Name(), v, got[v], r.inSet[v])
		}
	}
	for v := int32(0); v < g.N; v++ {
		if got[v] {
			for _, u := range g.Neighbors(v) {
				if got[u] {
					return fmt.Errorf("%s: not independent: %d and %d both in set", cfg.Name(), v, u)
				}
			}
			continue
		}
		covered := false
		for _, u := range g.Neighbors(v) {
			if got[u] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("%s: not maximal: vertex %d has no in-set neighbor", cfg.Name(), v)
		}
	}
	return nil
}

// prTolerance is the per-vertex acceptance band for PageRank: variants
// converge along different trajectories (Jacobi vs in-place) in float32,
// so ranks agree to within a small absolute+relative band rather than
// exactly.
const prTolerance = 0.02

func (r *Reference) checkPR(cfg styles.Config, got []float32) error {
	if int32(len(got)) != r.g.N {
		return fmt.Errorf("%s: result has %d ranks, want %d", cfg.Name(), len(got), r.g.N)
	}
	for v := range got {
		diff := math.Abs(float64(got[v] - r.rank[v]))
		if diff > prTolerance*(1+math.Abs(float64(r.rank[v]))) {
			return fmt.Errorf("%s: vertex %d rank %g, want %g (±%g)", cfg.Name(), v, got[v], r.rank[v], prTolerance)
		}
	}
	return nil
}
