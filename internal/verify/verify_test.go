package verify

import (
	"strings"
	"testing"

	"indigo/internal/algo"
	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/mis"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

func testGraph() *graph.Graph {
	b := graph.NewBuilder("t", 6)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 2)
	b.AddEdge(2, 3, 4)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 3, 1)
	return b.Build()
}

func cfgFor(a styles.Algorithm) styles.Config {
	return styles.Config{Algo: a, Model: styles.CPP}
}

// TestCheckAcceptsCorrectResults feeds the serial solutions back in.
func TestCheckAcceptsCorrectResults(t *testing.T) {
	g := testGraph()
	opt := algo.Options{}
	ref := NewReference(g, opt)
	rank, _ := pr.Serial(g, 0.85, 1e-4, 100)
	oks := []struct {
		cfg styles.Config
		res algo.Result
	}{
		{cfgFor(styles.BFS), algo.Result{Dist: bfs.Serial(g, 0)}},
		{cfgFor(styles.SSSP), algo.Result{Dist: sssp.Serial(g, 0)}},
		{cfgFor(styles.CC), algo.Result{Label: cc.Serial(g)}},
		{cfgFor(styles.MIS), algo.Result{InSet: mis.Serial(g)}},
		{cfgFor(styles.PR), algo.Result{Rank: rank}},
		{cfgFor(styles.TC), algo.Result{Triangles: tc.Serial(g)}},
	}
	for _, c := range oks {
		if err := ref.Check(c.cfg, c.res); err != nil {
			t.Errorf("%v rejected correct result: %v", c.cfg.Algo, err)
		}
	}
}

// TestCheckRejectsWrongResults is the negative side: corrupted outputs
// must be caught, or the suite-wide verification tests prove nothing.
func TestCheckRejectsWrongResults(t *testing.T) {
	g := testGraph()
	opt := algo.Options{}
	ref := NewReference(g, opt)

	dist := bfs.Serial(g, 0)
	dist[3]++
	if err := ref.Check(cfgFor(styles.BFS), algo.Result{Dist: dist}); err == nil {
		t.Error("corrupted BFS accepted")
	}

	sd := sssp.Serial(g, 0)
	sd[5] = 0
	if err := ref.Check(cfgFor(styles.SSSP), algo.Result{Dist: sd}); err == nil {
		t.Error("corrupted SSSP accepted")
	}

	label := cc.Serial(g)
	label[4] = 4
	if err := ref.Check(cfgFor(styles.CC), algo.Result{Label: label}); err == nil {
		t.Error("corrupted CC accepted")
	}

	inSet := mis.Serial(g)
	inSet[0] = !inSet[0]
	if err := ref.Check(cfgFor(styles.MIS), algo.Result{InSet: inSet}); err == nil {
		t.Error("corrupted MIS accepted")
	}

	rank, _ := pr.Serial(g, 0.85, 1e-4, 100)
	rank[2] *= 2
	if err := ref.Check(cfgFor(styles.PR), algo.Result{Rank: rank}); err == nil {
		t.Error("corrupted PR accepted")
	}

	if err := ref.Check(cfgFor(styles.TC), algo.Result{Triangles: tc.Serial(g) + 1}); err == nil {
		t.Error("corrupted TC accepted")
	}
}

func TestCheckRejectsWrongLengths(t *testing.T) {
	g := testGraph()
	ref := NewReference(g, algo.Options{})
	if err := ref.Check(cfgFor(styles.BFS), algo.Result{Dist: []int32{0}}); err == nil {
		t.Error("short BFS result accepted")
	}
	if err := ref.Check(cfgFor(styles.MIS), algo.Result{InSet: []bool{true}}); err == nil {
		t.Error("short MIS result accepted")
	}
	if err := ref.Check(cfgFor(styles.PR), algo.Result{Rank: []float32{1}}); err == nil {
		t.Error("short PR result accepted")
	}
}

// TestCheckMISRejectsNonGreedySet feeds a valid MIS that is not the
// greedy-by-priority set: the checker demands exact agreement because
// the fixed-priority rule has a unique fixed point.
func TestCheckMISRejectsNonGreedySet(t *testing.T) {
	// Path 0-1-2: both {0,2} and {1} are valid MIS; only one is greedy.
	b := graph.NewBuilder("p3", 3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	ref := NewReference(g, algo.Options{})
	want := mis.Serial(g)
	other := []bool{!want[0], !want[1], !want[2]}
	if err := ref.Check(cfgFor(styles.MIS), algo.Result{InSet: other}); err == nil {
		t.Error("non-greedy MIS accepted")
	}
}

// TestCheckErrorsDescribeDefect: verification failures become
// WrongAnswer records in the sweep journal, so the error text is the
// only diagnostic a failed run leaves behind — it must name the variant
// and pinpoint the disagreement for every algorithm.
func TestCheckErrorsDescribeDefect(t *testing.T) {
	g := testGraph()
	ref := NewReference(g, algo.Options{})

	check := func(a styles.Algorithm, res algo.Result, wants ...string) {
		t.Helper()
		err := ref.Check(cfgFor(a), res)
		if err == nil {
			t.Errorf("%v: corrupted result accepted", a)
			return
		}
		msg := err.Error()
		if !strings.Contains(msg, a.String()+"/cpp") {
			t.Errorf("%v error does not name the variant: %q", a, msg)
		}
		for _, w := range wants {
			if !strings.Contains(msg, w) {
				t.Errorf("%v error does not mention %q: %q", a, w, msg)
			}
		}
	}

	// BFS: off-by-one hop count at vertex 3.
	dist := bfs.Serial(g, 0)
	dist[3]++
	check(styles.BFS, algo.Result{Dist: dist}, "vertex 3", "level")

	// SSSP: distance zeroed at vertex 5.
	sd := sssp.Serial(g, 0)
	sd[5] = 0
	check(styles.SSSP, algo.Result{Dist: sd}, "vertex 5", "distance", "= 0")

	// CC: wrong component label.
	label := cc.Serial(g)
	label[4] = 99
	check(styles.CC, algo.Result{Label: label}, "vertex 4", "label", "99")

	// MIS: adjacent vertices both in the set — an independence violation
	// on a set that differs from the greedy fixed point.
	inSet := make([]bool, g.N)
	for v := range inSet {
		inSet[v] = true
	}
	check(styles.MIS, algo.Result{InSet: inSet}, "membership")

	// PR: one rank perturbed beyond the tolerance band.
	rank, _ := pr.Serial(g, 0.85, 1e-4, 100)
	rank[2] *= 3
	check(styles.PR, algo.Result{Rank: rank}, "vertex 2", "rank")

	// TC: wrong global triangle count.
	check(styles.TC, algo.Result{Triangles: tc.Serial(g) + 7}, "triangles", "want")
}

// TestCheckMISIndependenceViolation exercises the structural MIS checks
// on a set that matches lengths but breaks independence/maximality.
func TestCheckMISIndependenceViolation(t *testing.T) {
	// Path 0-1-2-3: greedy set from mis.Serial, then force 0 and 1 both
	// in (not independent) and separately an empty set (not maximal).
	b := graph.NewBuilder("p4", 4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	ref := NewReference(g, algo.Options{})
	if err := ref.Check(cfgFor(styles.MIS), algo.Result{InSet: []bool{true, true, false, true}}); err == nil {
		t.Error("non-independent set accepted")
	}
	if err := ref.Check(cfgFor(styles.MIS), algo.Result{InSet: make([]bool, 4)}); err == nil {
		t.Error("empty (non-maximal) set accepted")
	}
}

func TestCheckUnknownAlgorithmRejected(t *testing.T) {
	ref := NewReference(testGraph(), algo.Options{})
	err := ref.Check(styles.Config{Algo: styles.NumAlgorithms}, algo.Result{})
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("out-of-range algorithm: %v", err)
	}
}

func TestCheckErrorMentionsVariant(t *testing.T) {
	g := testGraph()
	ref := NewReference(g, algo.Options{})
	dist := bfs.Serial(g, 0)
	dist[1] = 42
	err := ref.Check(cfgFor(styles.BFS), algo.Result{Dist: dist})
	if err == nil || !strings.Contains(err.Error(), "bfs/cpp") {
		t.Errorf("error does not identify the variant: %v", err)
	}
}
