package advisor

import (
	"testing"

	"indigo/internal/gen"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

func shapes(t *testing.T) map[gen.Input]graph.Stats {
	t.Helper()
	out := make(map[gen.Input]graph.Stats)
	for in := gen.Input(0); in < gen.NumInputs; in++ {
		out[in] = graph.ComputeStats(gen.Generate(in, gen.Tiny))
	}
	return out
}

// TestRecommendationsAlwaysValid: every (algorithm, model, input)
// combination must yield a valid style configuration with rationale.
func TestRecommendationsAlwaysValid(t *testing.T) {
	ss := shapes(t)
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		for m := styles.Model(0); m < styles.NumModels; m++ {
			for in, shape := range ss {
				rec := Recommend(a, m, shape)
				if !styles.Valid(rec.Config) {
					t.Errorf("%v/%v on %v: invalid config %s", a, m, in, rec.Config.Name())
				}
				if len(rec.Rationale) < 3 {
					t.Errorf("%v/%v on %v: thin rationale %v", a, m, in, rec.Rationale)
				}
				if rec.Config.Algo != a || rec.Config.Model != m {
					t.Errorf("%v/%v: config identity mangled: %s", a, m, rec.Config.Name())
				}
			}
		}
	}
}

func TestGuidelineWarpOnHighDegree(t *testing.T) {
	ss := shapes(t)
	social := Recommend(styles.BFS, styles.CUDA, ss[gen.InputSocial])
	if social.Config.Gran != styles.WarpGran {
		t.Errorf("social BFS gran = %v, want warp (§5.8)", social.Config.Gran)
	}
	road := Recommend(styles.BFS, styles.CUDA, ss[gen.InputRoad])
	if road.Config.Gran != styles.ThreadGran {
		t.Errorf("road BFS gran = %v, want thread (§5.8)", road.Config.Gran)
	}
}

func TestGuidelineDataDrivenOnHighDiameter(t *testing.T) {
	ss := shapes(t)
	// Tiny road/grid diameters are ~34-38; use a synthetic high-diameter
	// shape to trigger the rule decisively.
	shape := ss[gen.InputRoad]
	shape.Diameter = 500
	rec := Recommend(styles.SSSP, styles.CPP, shape)
	if !rec.Config.Drive.IsDataDriven() {
		t.Errorf("high-diameter SSSP drive = %v, want data-driven (§5.3)", rec.Config.Drive)
	}
	// Low diameter + C++ model: topology-driven (§5.16).
	shape.Diameter = 5
	rec = Recommend(styles.SSSP, styles.CPP, shape)
	if rec.Config.Drive != styles.TopologyDriven {
		t.Errorf("low-diameter C++ SSSP drive = %v, want topo (§5.16)", rec.Config.Drive)
	}
}

func TestGuidelineFixedChoices(t *testing.T) {
	ss := shapes(t)
	for in, shape := range ss {
		for m := styles.Model(0); m < styles.NumModels; m++ {
			rec := Recommend(styles.SSSP, m, shape)
			if rec.Config.Det != styles.NonDeterministic {
				t.Errorf("%v/%v: det = %v, want nondet (§5.16)", m, in, rec.Config.Det)
			}
			if rec.Config.Flow != styles.Push {
				t.Errorf("%v/%v: flow = %v, want push (§5.16)", m, in, rec.Config.Flow)
			}
			if m == styles.CUDA {
				if rec.Config.Atomics != styles.ClassicAtomic {
					t.Errorf("%v: CudaAtomic recommended against §5.16", in)
				}
				if rec.Config.Persist != styles.NonPersistent {
					t.Errorf("%v: persistent recommended against §5.16", in)
				}
			}
		}
		pr := Recommend(styles.PR, styles.OMP, shape)
		if pr.Config.Flow != styles.Pull {
			t.Errorf("PR flow = %v, want pull (§5.4)", pr.Config.Flow)
		}
		if pr.Config.CPURed != styles.ClauseRed {
			t.Errorf("PR reduction = %v, want clause (§5.10)", pr.Config.CPURed)
		}
		gtc := Recommend(styles.TC, styles.CUDA, shape)
		if gtc.Config.GPURed != styles.ReductionAdd {
			t.Errorf("TC GPU reduction = %v, want reduction-add (§5.9)", gtc.Config.GPURed)
		}
	}
}
