package advisor

import (
	"sort"
	"testing"
	"time"

	"indigo/internal/algo"
	"indigo/internal/gen"
	"indigo/internal/store"
	"indigo/internal/styles"
	"indigo/internal/sweep"
)

// The audit bars pin the advisor's measured baseline against the
// simulator census so regressions are caught, not to certify the
// guidelines as optimal: §5.16's model-level medians land the
// recommendation mid-pack on a specific (input, device) cell — the
// measured worst is rank 72/132 (bfs on road) with a mean regret of
// ~73% — and closing that gap is the tuner's job, seeded by this very
// recommendation. Calibrated with headroom over the measured census.
const (
	// auditTopFrac: the recommendation must rank within this fraction
	// of its cell's census (measured worst 0.55).
	auditTopFrac = 0.65
	// auditMaxRegretPct caps per-cell throughput regret vs the census
	// best (measured worst 91.5%).
	auditMaxRegretPct = 95.0
	// auditMaxMeanRegretPct caps the mean regret across the audited
	// cells (measured 72.7%).
	auditMaxMeanRegretPct = 85.0
)

// TestAccuracyAudit measures every applicable CUDA variant of several
// (algorithm, input) cells on the deterministic GPU simulator, records
// the census in a store, and audits Recommend against the measured
// ranking: the recommendation must land within the calibrated rank
// fraction of its cell and under the regret caps. The per-cell ranks
// and the mean regret are logged so drift is visible in test output
// before it trips the bars.
func TestAccuracyAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("measures full variant censuses")
	}
	cells := []struct {
		a  styles.Algorithm
		in gen.Input
	}{
		{styles.BFS, gen.InputRMAT},
		{styles.BFS, gen.InputRoad},
		{styles.SSSP, gen.InputRMAT},
		{styles.CC, gen.InputGrid},
		{styles.PR, gen.InputSocial},
	}
	const device = "rtx-sim"
	st := store.NewMem()
	pr := sweep.NewProber(algo.Options{Threads: 2}, sweep.Options{
		Timeout: 10 * time.Second,
		Verify:  true,
	})
	defer pr.Close()

	meanRegret := 0.0
	for _, cell := range cells {
		g := gen.Generate(cell.in, gen.Tiny)
		shape := g.Stats()
		type meas struct {
			name string
			tput float64
		}
		var census []meas
		for _, cfg := range styles.Enumerate(cell.a, styles.CUDA) {
			o := pr.Probe(g, cfg, device)
			if o.Kind != sweep.OK {
				t.Fatalf("%s on %s: %s: %s", cfg.Name(), cell.in, o.Kind, o.Err)
			}
			census = append(census, meas{cfg.Name(), o.Tput})
			if err := st.Append(store.Cell{
				Cfg: cfg, Input: cell.in.String(), Device: device,
				Graph: shape, Tput: o.Tput,
			}); err != nil {
				t.Fatal(err)
			}
		}
		sort.Slice(census, func(i, j int) bool {
			if census[i].tput != census[j].tput {
				return census[i].tput > census[j].tput
			}
			return census[i].name < census[j].name
		})

		rec := Recommend(cell.a, styles.CUDA, shape)
		if !styles.Valid(rec.Config) {
			t.Fatalf("%s/%s on %s: recommendation %s is invalid", cell.a, styles.CUDA, cell.in, rec.Config.Name())
		}
		rank := -1
		var recTput float64
		for i, m := range census {
			if m.name == rec.Config.Name() {
				rank, recTput = i+1, m.tput
				break
			}
		}
		if rank < 0 {
			t.Fatalf("%s/%s on %s: recommendation %s not in the enumerated space", cell.a, styles.CUDA, cell.in, rec.Config.Name())
		}

		// The store's Best must agree with the locally ranked census —
		// it is the warm-start source the tuner trusts.
		bestCell, ok := st.Best(cell.a, styles.CUDA, cell.in.String(), device)
		if !ok || bestCell.Cfg.Name() != census[0].name {
			t.Fatalf("store.Best disagrees with census: got %v, want %s", bestCell.Cfg.Name(), census[0].name)
		}

		regret := 100 * (census[0].tput - recTput) / census[0].tput
		meanRegret += regret / float64(len(cells))
		t.Logf("%s/cuda on %s: recommended %s ranks %d/%d, regret %.1f%%",
			cell.a, cell.in, rec.Config.Name(), rank, len(census), regret)
		if bar := int(auditTopFrac * float64(len(census))); rank > bar {
			t.Errorf("%s/cuda on %s: recommendation ranks %d, past the top-%d bar (%.0f%% of %d)",
				cell.a, cell.in, rank, bar, 100*auditTopFrac, len(census))
		}
		if regret > auditMaxRegretPct {
			t.Errorf("%s/cuda on %s: regret %.1f%% past the %.0f%% cap", cell.a, cell.in, regret, auditMaxRegretPct)
		}
	}
	t.Logf("mean regret across %d cells: %.1f%%", len(cells), meanRegret)
	if meanRegret > auditMaxMeanRegretPct {
		t.Errorf("mean regret %.1f%% past the %.0f%% cap", meanRegret, auditMaxMeanRegretPct)
	}
}
