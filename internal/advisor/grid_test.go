package advisor

import (
	"testing"

	"indigo/internal/graph"
	"indigo/internal/styles"
)

// TestRecommendGrid sweeps the advisor over every algorithm, model, and
// a grid of shape values straddling each guideline threshold (diameter
// 60, average degree 10, %deg>=512 at 0.5, max degree 32). Every
// recommendation must be a valid configuration from the enumerated
// suite that preserves its (algorithm, model) identity and explains
// itself — the §5.16 engine has no shape it is allowed to choke on.
func TestRecommendGrid(t *testing.T) {
	diameters := []int32{0, 10, 59, 60, 61, 1000}
	avgDegrees := []float64{0, 5, 9.99, 10, 50}
	maxDegrees := []int64{0, 16, 31, 32, 1024}
	pct512s := []float64{0, 0.5, 0.6, 5}

	// Membership oracle: the advisor must only ever recommend variants
	// the study actually enumerates and builds.
	inSuite := make(map[string]bool)
	for _, cfg := range styles.EnumerateAll() {
		inSuite[cfg.Name()] = true
	}

	n := 0
	for a := styles.Algorithm(0); a < styles.NumAlgorithms; a++ {
		for m := styles.Model(0); m < styles.NumModels; m++ {
			for _, d := range diameters {
				for _, avg := range avgDegrees {
					for _, mx := range maxDegrees {
						for _, p512 := range pct512s {
							shape := graph.Stats{
								Name:      "grid-case",
								Vertices:  1 << 10,
								Edges:     1 << 12,
								AvgDegree: avg,
								MaxDegree: mx,
								PctDeg512: p512,
								Diameter:  d,
							}
							rec := Recommend(a, m, shape)
							n++
							cfg := rec.Config
							if cfg.Algo != a || cfg.Model != m {
								t.Fatalf("%v/%v d=%d avg=%.2f mx=%d p512=%.1f: identity mangled to %s",
									a, m, d, avg, mx, p512, cfg.Name())
							}
							if !styles.Valid(cfg) {
								t.Fatalf("%v/%v d=%d avg=%.2f mx=%d p512=%.1f: invalid config %s",
									a, m, d, avg, mx, p512, cfg.Name())
							}
							if !inSuite[cfg.Name()] {
								t.Fatalf("%v/%v d=%d avg=%.2f mx=%d p512=%.1f: %s is not in the enumerated suite",
									a, m, d, avg, mx, p512, cfg.Name())
							}
							if len(rec.Rationale) == 0 {
								t.Fatalf("%v/%v: empty rationale", a, m)
							}
						}
					}
				}
			}
		}
	}
	t.Logf("checked %d recommendations", n)
}
