// Package advisor encodes the paper's programming guidelines (§5.16)
// as an executable recommendation engine: given an algorithm, a
// programming model, and the input graph's shape (the Table 5
// signature), it recommends a style configuration and explains each
// choice with the finding that motivates it.
package advisor

import (
	"fmt"

	"indigo/internal/graph"
	"indigo/internal/styles"
)

// Recommendation is a suggested variant plus the per-dimension
// rationale.
type Recommendation struct {
	Config styles.Config
	// Rationale maps dimension keys to the §5.16 guideline applied.
	Rationale []string
}

// highDegreeThreshold is the average (directed) degree above which
// warp granularity is recommended ("high-degree inputs prefer
// warp-based parallelization in CUDA", §5.16; the paper's positive
// correlation is with average degree, §5.13).
const highDegreeThreshold = 10

// highDiameterThreshold marks inputs where topology-driven sweeps waste
// whole-graph work per iteration (§5.3: data-driven is much faster "on
// high-diameter graphs").
const highDiameterThreshold = 60

// Recommend returns the guideline-based style choice for running a on
// model over a graph with the given shape.
func Recommend(a styles.Algorithm, model styles.Model, shape graph.Stats) Recommendation {
	rec := Recommendation{Config: styles.Config{Algo: a, Model: model}}
	note := func(format string, args ...any) {
		rec.Rationale = append(rec.Rationale, fmt.Sprintf(format, args...))
	}
	cfg := &rec.Config

	// Non-deterministic and push for every model (§5.16), except PR,
	// whose pull style wins (§5.4) and whose push variant must be
	// deterministic.
	cfg.Det = styles.NonDeterministic
	cfg.Flow = styles.Push
	note("non-deterministic: deterministic double buffering costs extra memory and synchronization (§5.6)")
	note("push: preferred data flow for CC, MIS, BFS, SSSP (§5.4)")
	if a == styles.PR {
		cfg.Flow = styles.Pull
		note("pull (override): PR's medians favor pull (§5.4)")
	}
	if a == styles.TC {
		cfg.Det = styles.Deterministic // TC's only form
	}

	// Read-modify-write: applies to more algorithms and performs nearly
	// as well (§5.5); read-write only helps topology-driven codes.
	cfg.Update = styles.ReadModifyWrite
	note("read-modify-write: general and typically nearly as fast as read-write (§5.5)")

	// Topology- vs data-driven: graph type should decide (§5.3) — high
	// diameter favors data-driven work efficiency; the C++ model leans
	// topology-driven because its worklist overhead rarely pays off
	// (§5.16).
	caps := capsOf(a)
	switch {
	case !caps.dataDriven:
		cfg.Drive = styles.TopologyDriven
	case model == styles.CPP && shape.Diameter < highDiameterThreshold:
		cfg.Drive = styles.TopologyDriven
		note("topology-driven: C++ worklist overhead often cannot offset work-efficiency gains (§5.16)")
	case shape.Diameter >= highDiameterThreshold:
		cfg.Drive = styles.DataDrivenNoDup
		note("data-driven (no dup): high-diameter input (%d) makes full sweeps wasteful (§5.3); no-dup caps the worklist (§2.3)", shape.Diameter)
	case model == styles.CPP:
		cfg.Drive = styles.TopologyDriven
		note("topology-driven: C++ prefers it (§5.16)")
	default:
		cfg.Drive = styles.DataDrivenNoDup
		note("data-driven (no dup): tends to be the better choice for CUDA and OpenMP (§5.3)")
	}
	if cfg.Drive.IsDataDriven() && a == styles.MIS {
		cfg.Drive = styles.DataDrivenNoDup // MIS only supports no-dup
	}

	// Vertex- vs edge-based depends on the algorithm (§5.16): MIS is
	// always vertex-based (§5.2); thread-granularity TC prefers
	// edge-based on GPUs (§5.2); CPU codes prefer vertex-based (§5.2).
	cfg.Iterate = styles.VertexBased
	if a == styles.TC && model == styles.CUDA && shape.MaxDegree < 32 {
		cfg.Iterate = styles.EdgeBased
		note("edge-based: GPU TC without high-degree vertices runs best edge-based at thread granularity (§5.2)")
	} else {
		note("vertex-based: CPU codes and MIS prefer vertex-based (§5.2)")
	}

	if model == styles.CUDA {
		// Granularity follows the degree distribution (§5.8).
		if shape.AvgDegree >= highDegreeThreshold || shape.PctDeg512 > 0.5 {
			cfg.Gran = styles.WarpGran
			note("warp granularity: average degree %.1f is high; warp-based correlates with degree (§5.8, §5.13)", shape.AvgDegree)
		} else {
			cfg.Gran = styles.ThreadGran
			note("thread granularity: low-degree, uniform inputs do not need intra-vertex parallelism (§5.8)")
		}
		cfg.Persist = styles.NonPersistent
		note("non-persistent: persistent threads rarely help without precomputation to reuse (§5.7)")
		cfg.Atomics = styles.ClassicAtomic
		note("classic atomics: avoid default CudaAtomic (§5.1)")
		if hasReduction(a) {
			cfg.GPURed = styles.ReductionAdd
			note("reduction-add: warp primitives avoid most memory traffic (§5.9)")
		}
	} else {
		if hasReduction(a) {
			cfg.CPURed = styles.ClauseRed
			note("clause reduction: avoid critical sections and even atomics when a clause exists (§5.10)")
		}
		if model == styles.OMP {
			cfg.OMPSched = styles.DefaultSched
			note("default schedule: safe; try dynamic only when load imbalance shows (§5.11, §5.16)")
		} else {
			cfg.CPPSched = styles.BlockedSched
			note("blocked schedule: safe; cyclic may pay off for TC-like loops (§5.12, §5.16)")
		}
	}

	// Edge-based implies push/topology-driven/thread-granularity
	// (structural rules); repair any conflict introduced above.
	if cfg.Iterate == styles.EdgeBased {
		cfg.Drive = styles.TopologyDriven
		cfg.Flow = styles.Push
		if a != styles.TC {
			cfg.Gran = styles.ThreadGran
		}
	}
	if !styles.Valid(rec.Config) {
		// The guidelines can only produce invalid combinations through a
		// programming error; fail loudly.
		panic(fmt.Sprintf("advisor: produced invalid config %s", rec.Config.Name()))
	}
	return rec
}

// capsView mirrors the pieces of the applicability matrix the advisor
// needs without exporting styles internals.
type capsView struct {
	dataDriven bool
}

func capsOf(a styles.Algorithm) capsView {
	// Derived from the enumeration: an algorithm supports data-driven if
	// any valid variant is data-driven.
	for _, cfg := range styles.Enumerate(a, styles.OMP) {
		if cfg.Drive.IsDataDriven() {
			return capsView{dataDriven: true}
		}
	}
	return capsView{}
}

func hasReduction(a styles.Algorithm) bool {
	return a == styles.PR || a == styles.TC
}
