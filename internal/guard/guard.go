// Package guard is the cooperative cancellation and resource-budget
// subsystem threaded through the execution stack. A Token is a
// cache-line-padded atomic stop flag plus an optional deadline and an
// optional memory budget. Kernel hot loops poll it at amortized
// checkpoints (every guard-stride iterations inside a par region, every
// relax round, every N simulated GPU cycles); scratch arenas charge
// slab allocations against its byte budget. The supervisor and the HTTP
// service arm tokens with deadlines and bind them to request contexts,
// which is what turns "abandon the timed-out run and its worker pool"
// into "cancel it and get the workers back".
//
// The contract is cooperative: tripping a token does not preempt
// anything. A running kernel observes the trip at its next checkpoint,
// unwinds via a typed abort panic that rides the par substrate's
// existing panic trap to the region's caller, and surfaces as one of
// this package's sentinel errors from guard.Recover at the runner
// boundary. Code that never polls (a worker blocked in a chaos stall,
// a foreign syscall) is not stopped — that residual case is what the
// sweep supervisor's abandonment fallback still covers.
//
// A nil *Token is valid everywhere and means "unguarded": Poll, Charge,
// and friends are no-ops, so call sites need no nil checks.
package guard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors returned by Err/TryCharge and produced by Recover.
var (
	// ErrCanceled reports an explicit Cancel (e.g. the HTTP client
	// disconnected, or a supervisor revoked the run).
	ErrCanceled = errors.New("guard: canceled")
	// ErrDeadlineExceeded reports that the token's deadline passed.
	ErrDeadlineExceeded = errors.New("guard: deadline exceeded")
	// ErrBudgetExceeded reports that a Charge overdrew the memory budget.
	ErrBudgetExceeded = errors.New("guard: memory budget exceeded")
)

// Reason encodes why a token stopped. The zero value means "running".
type Reason uint32

const (
	running Reason = iota
	// Canceled: Cancel was called.
	Canceled
	// DeadlineExceeded: the armed deadline passed.
	DeadlineExceeded
	// BudgetExceeded: a Charge overdrew the byte budget.
	BudgetExceeded
)

func (r Reason) err() error {
	switch r {
	case Canceled:
		return ErrCanceled
	case DeadlineExceeded:
		return ErrDeadlineExceeded
	case BudgetExceeded:
		return ErrBudgetExceeded
	}
	return nil
}

// abort is the typed panic payload a checkpoint raises when its token
// has stopped. It is unexported on purpose: the only legitimate ways to
// observe one are Recover (converts to the sentinel error) and
// AbortError (classifiers like the sweep supervisor's panic isolation).
type abort struct{ err error }

func (a abort) Error() string { return a.err.Error() + " (cooperative abort)" }

// Token is one run's stop flag, deadline, and memory budget. The hot
// field (state) sits alone on its cache line so checkpoint polls from
// many workers never false-share with the budget counter or each other's
// data. Create with New, arm with WithTimeout/WithBudget, and Release
// when the run is over (stops the deadline timer and context watcher).
//
// All methods are safe for concurrent use, and all are nil-receiver
// safe: a nil token never stops, never charges, and polls for free.
type Token struct {
	_     [64]byte      // pad: keep state off the allocator's neighbors
	state atomic.Uint32 // Reason; 0 = running
	_     [60]byte      // pad: budget traffic must not share state's line

	remaining atomic.Int64 // budget bytes left; meaningful when limited
	limited   atomic.Bool

	mu    sync.Mutex
	timer *time.Timer
	stop  chan struct{} // closed by Release; ends the context watcher
}

// New returns a running token with no deadline and no budget.
func New() *Token {
	return &Token{stop: make(chan struct{})}
}

// WithTimeout arms the token to trip with DeadlineExceeded after d.
// d <= 0 arms nothing. The deadline is enforced by a timer, not by
// clock reads in Poll, so checkpoints stay a single atomic load.
// Returns t for chaining.
func (t *Token) WithTimeout(d time.Duration) *Token {
	if t == nil || d <= 0 {
		return t
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.timer != nil {
		t.timer.Stop()
	}
	t.timer = time.AfterFunc(d, func() { t.trip(DeadlineExceeded) })
	return t
}

// WithBudget sets the memory budget to bytes (<= 0 means unlimited).
// Returns t for chaining.
func (t *Token) WithBudget(bytes int64) *Token {
	if t == nil {
		return nil
	}
	if bytes <= 0 {
		t.limited.Store(false)
		return t
	}
	t.remaining.Store(bytes)
	t.limited.Store(true)
	return t
}

// trip stops the token with reason r. The first trip wins; later trips
// (a deadline firing after a cancel, say) are ignored.
func (t *Token) trip(r Reason) {
	t.state.CompareAndSwap(uint32(running), uint32(r))
}

// Cancel stops the token with ErrCanceled. Idempotent; safe from any
// goroutine, including concurrently with polling workers.
func (t *Token) Cancel() {
	if t != nil {
		t.trip(Canceled)
	}
}

// Stopped reports whether the token has tripped (one atomic load).
func (t *Token) Stopped() bool {
	return t != nil && t.state.Load() != uint32(running)
}

// Err returns nil while running, else the sentinel error for the trip
// reason.
func (t *Token) Err() error {
	if t == nil {
		return nil
	}
	return Reason(t.state.Load()).err()
}

// Poll is the checkpoint: a single atomic load while the token runs,
// and a typed abort panic once it has stopped. The panic unwinds the
// worker's share of the region, is captured by the par substrate's trap,
// re-raised on the region's caller after the join, and converted to the
// sentinel error by a deferred Recover at the runner boundary.
func (t *Token) Poll() {
	if t == nil {
		return
	}
	if s := t.state.Load(); s != uint32(running) {
		panic(abort{Reason(s).err()})
	}
}

// TryCharge debits n bytes from the budget and returns nil, or the trip
// error if the token has stopped or the charge overdraws the budget
// (which trips it with BudgetExceeded). Unlimited tokens only report an
// existing stop. Use Charge in kernel paths that unwind by panic.
func (t *Token) TryCharge(n int64) error {
	if t == nil {
		return nil
	}
	if s := t.state.Load(); s != uint32(running) {
		return Reason(s).err()
	}
	if n <= 0 || !t.limited.Load() {
		return nil
	}
	if t.remaining.Add(-n) < 0 {
		t.trip(BudgetExceeded)
		return ErrBudgetExceeded
	}
	return nil
}

// Charge is TryCharge that aborts (typed panic, like Poll) instead of
// returning an error, for use inside guarded kernels and arenas.
func (t *Token) Charge(n int64) {
	if err := t.TryCharge(n); err != nil {
		panic(abort{err})
	}
}

// Remaining returns the budget bytes left (for tests and metrics);
// unlimited and nil tokens report -1.
func (t *Token) Remaining() int64 {
	if t == nil || !t.limited.Load() {
		return -1
	}
	return t.remaining.Load()
}

// BindContext couples the token to ctx: when ctx is canceled the token
// trips (DeadlineExceeded for a context deadline, Canceled otherwise).
// The returned stop function detaches the watcher goroutine; callers
// must invoke it (or Release the token) when the request is done, or
// the watcher leaks until ctx itself resolves.
func (t *Token) BindContext(ctx context.Context) func() {
	if t == nil || ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				t.trip(DeadlineExceeded)
			} else {
				t.trip(Canceled)
			}
		case <-done:
		case <-t.stop:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Propagate couples inner to outer: when outer trips, inner is canceled
// too (with outer's reason where it maps onto a trip: deadline stays
// DeadlineExceeded, everything else cancels). The coupling is a polling
// watcher, so propagation lands within a few milliseconds — the latency
// that matters for a tuner whose session deadline must stop the trial
// in flight, not after it. The returned stop function detaches the
// watcher; callers must invoke it when the inner run completes, or the
// watcher lingers until one of the tokens resolves it. A nil outer or
// inner is a no-op.
func Propagate(outer, inner *Token) (stop func()) {
	if outer == nil || inner == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if s := Reason(outer.state.Load()); s != running {
					inner.trip(s)
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Release ends the token's background machinery: the deadline timer is
// stopped and every BindContext watcher is detached. The token's state
// is left as-is (a stopped token stays stopped). Idempotent.
func (t *Token) Release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.timer != nil {
		t.timer.Stop()
		t.timer = nil
	}
	if t.stop != nil {
		select {
		case <-t.stop:
		default:
			close(t.stop)
		}
	}
	t.mu.Unlock()
}

// Recover, deferred at a runner boundary, converts an abort panic into
// its sentinel error through errp and re-raises every other panic
// untouched (real kernel panics must keep crashing up to the sweep
// supervisor's classifier).
func Recover(errp *error) {
	p := recover()
	if p == nil {
		return
	}
	if a, ok := p.(abort); ok {
		if errp != nil && *errp == nil {
			*errp = a.err
		}
		return
	}
	panic(p)
}

// AbortError reports whether a recovered panic value is a guard abort,
// and if so which sentinel error it carries. Classifiers that recover
// panics wholesale (the sweep supervisor's isolation goroutine) use it
// to file cooperative aborts under timeout/cancel instead of "panic".
func AbortError(p any) (error, bool) {
	if a, ok := p.(abort); ok {
		return a.err, true
	}
	return nil, false
}
