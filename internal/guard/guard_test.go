package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTokenIsInert(t *testing.T) {
	var tok *Token
	tok.Poll() // must not panic
	tok.Charge(1 << 30)
	if tok.Stopped() {
		t.Fatal("nil token reports stopped")
	}
	if err := tok.Err(); err != nil {
		t.Fatalf("nil token Err = %v", err)
	}
	if err := tok.TryCharge(1 << 40); err != nil {
		t.Fatalf("nil token TryCharge = %v", err)
	}
	tok.Cancel()
	tok.Release()
	tok.WithTimeout(time.Millisecond).WithBudget(1)
	stop := tok.BindContext(context.Background())
	stop()
}

func TestCancelTripsPoll(t *testing.T) {
	tok := New()
	defer tok.Release()
	tok.Poll() // running: no panic
	tok.Cancel()
	if !tok.Stopped() {
		t.Fatal("not stopped after Cancel")
	}
	if !errors.Is(tok.Err(), ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", tok.Err())
	}
	var err error
	func() {
		defer Recover(&err)
		tok.Poll()
		t.Fatal("Poll did not panic on a canceled token")
	}()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Recover produced %v, want ErrCanceled", err)
	}
}

func TestFirstTripWins(t *testing.T) {
	tok := New().WithTimeout(time.Hour)
	defer tok.Release()
	tok.Cancel()
	tok.trip(DeadlineExceeded) // late deadline must not overwrite
	if !errors.Is(tok.Err(), ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled (first trip)", tok.Err())
	}
}

func TestDeadlineTrips(t *testing.T) {
	tok := New().WithTimeout(5 * time.Millisecond)
	defer tok.Release()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("deadline never tripped the token")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tok.Err(), ErrDeadlineExceeded) {
		t.Fatalf("Err = %v, want ErrDeadlineExceeded", tok.Err())
	}
}

func TestReleaseStopsDeadline(t *testing.T) {
	tok := New().WithTimeout(20 * time.Millisecond)
	tok.Release()
	time.Sleep(60 * time.Millisecond)
	if tok.Stopped() {
		t.Fatal("released token tripped anyway")
	}
}

func TestBudget(t *testing.T) {
	tok := New().WithBudget(100)
	defer tok.Release()
	if err := tok.TryCharge(60); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	if err := tok.TryCharge(40); err != nil {
		t.Fatalf("exact-fit charge: %v", err)
	}
	if err := tok.TryCharge(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overdraft = %v, want ErrBudgetExceeded", err)
	}
	if !tok.Stopped() {
		t.Fatal("overdraft did not trip the token")
	}
	var err error
	func() {
		defer Recover(&err)
		tok.Poll()
	}()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("post-overdraft Poll -> %v, want ErrBudgetExceeded", err)
	}
}

func TestChargePanicsAsAbort(t *testing.T) {
	tok := New().WithBudget(10)
	defer tok.Release()
	var err error
	func() {
		defer Recover(&err)
		tok.Charge(11)
	}()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Charge abort = %v, want ErrBudgetExceeded", err)
	}
}

func TestUnlimitedChargeIsFree(t *testing.T) {
	tok := New()
	defer tok.Release()
	tok.Charge(1 << 50)
	if tok.Stopped() {
		t.Fatal("unlimited token tripped on charge")
	}
	if tok.Remaining() != -1 {
		t.Fatalf("Remaining = %d, want -1 (unlimited)", tok.Remaining())
	}
}

func TestRecoverPassesForeignPanics(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("foreign panic = %v, want boom", p)
		}
	}()
	var err error
	defer Recover(&err)
	panic("boom")
}

func TestBindContextCancel(t *testing.T) {
	tok := New()
	defer tok.Release()
	ctx, cancel := context.WithCancel(context.Background())
	stop := tok.BindContext(ctx)
	defer stop()
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("context cancel never tripped the token")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tok.Err(), ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", tok.Err())
	}
}

func TestBindContextDeadline(t *testing.T) {
	tok := New()
	defer tok.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	stop := tok.BindContext(ctx)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for !tok.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("context deadline never tripped the token")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(tok.Err(), ErrDeadlineExceeded) {
		t.Fatalf("Err = %v, want ErrDeadlineExceeded", tok.Err())
	}
}

func TestBindContextStopDetaches(t *testing.T) {
	tok := New()
	defer tok.Release()
	ctx, cancel := context.WithCancel(context.Background())
	stop := tok.BindContext(ctx)
	stop()
	stop() // idempotent
	cancel()
	time.Sleep(20 * time.Millisecond)
	if tok.Stopped() {
		t.Fatal("detached watcher still tripped the token")
	}
}

func TestAbortError(t *testing.T) {
	tok := New()
	defer tok.Release()
	tok.Cancel()
	var got any
	func() {
		defer func() { got = recover() }()
		tok.Poll()
	}()
	err, ok := AbortError(got)
	if !ok || !errors.Is(err, ErrCanceled) {
		t.Fatalf("AbortError = (%v, %v), want (ErrCanceled, true)", err, ok)
	}
	if _, ok := AbortError("unrelated"); ok {
		t.Fatal("AbortError claimed a foreign panic value")
	}
}

func TestConcurrentPollAndCancel(t *testing.T) {
	for i := 0; i < 100; i++ {
		tok := New()
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { recover() }() // abort panic is expected
			for j := 0; j < 1_000_000; j++ {
				tok.Poll()
			}
		}()
		tok.Cancel()
		<-done
		tok.Release()
	}
}

func TestPropagateCancel(t *testing.T) {
	outer, inner := New(), New()
	defer outer.Release()
	defer inner.Release()
	stop := Propagate(outer, inner)
	defer stop()
	outer.Cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !inner.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("outer cancel never propagated to inner")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(inner.Err(), ErrCanceled) {
		t.Fatalf("inner Err = %v, want ErrCanceled", inner.Err())
	}
}

func TestPropagateKeepsDeadlineReason(t *testing.T) {
	outer, inner := New().WithTimeout(2*time.Millisecond), New()
	defer outer.Release()
	defer inner.Release()
	stop := Propagate(outer, inner)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for !inner.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("outer deadline never propagated to inner")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(inner.Err(), ErrDeadlineExceeded) {
		t.Fatalf("inner Err = %v, want ErrDeadlineExceeded (outer's reason)", inner.Err())
	}
}

func TestPropagateStopDetaches(t *testing.T) {
	outer, inner := New(), New()
	defer outer.Release()
	defer inner.Release()
	stop := Propagate(outer, inner)
	stop()
	stop() // idempotent
	outer.Cancel()
	time.Sleep(20 * time.Millisecond)
	if inner.Stopped() {
		t.Fatal("detached watcher still tripped inner")
	}
}

func TestPropagateNilIsInert(t *testing.T) {
	tok := New()
	defer tok.Release()
	Propagate(nil, tok)()
	Propagate(tok, nil)()
	Propagate(nil, nil)()
	if tok.Stopped() {
		t.Fatal("nil propagation tripped a live token")
	}
}

func TestPropagateDoesNotCoupleInnerToOuter(t *testing.T) {
	outer, inner := New(), New()
	defer outer.Release()
	defer inner.Release()
	stop := Propagate(outer, inner)
	defer stop()
	inner.Cancel()
	time.Sleep(20 * time.Millisecond)
	if outer.Stopped() {
		t.Fatal("inner trip leaked upward to outer")
	}
}
