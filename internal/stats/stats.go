// Package stats provides the summary statistics of the paper's result
// presentation (§4.5): letter-value ("boxen") distribution summaries of
// throughput ratios, medians, geometric means, and Pearson correlation
// for the graph-property analysis (§5.13).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Median returns the median of xs (not necessarily sorted); NaN if
// empty.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.5)
}

// Quantile returns the q-quantile (0..1) of xs with linear
// interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Geomean returns the geometric mean of xs; NaN if empty or any value
// is non-positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Pearson returns the correlation coefficient of the paired samples;
// NaN when undefined (fewer than 2 points or zero variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Boxen is a letter-value summary: the median plus successively halved
// tail quantiles (quartiles, eighths, sixteenths, ...), the text analog
// of the paper's boxen plots.
type Boxen struct {
	N      int
	Median float64
	Min    float64
	Max    float64
	// Levels[i] is the (lo, hi) pair of the (1/2^(i+2))-tail letter
	// values: Levels[0] is [q25, q75], Levels[1] is [q12.5, q87.5], ...
	Levels [][2]float64
}

// NewBoxen summarizes xs; levels deepen while each tail still holds at
// least 4 points.
func NewBoxen(xs []float64) Boxen {
	b := Boxen{N: len(xs)}
	if len(xs) == 0 {
		b.Median, b.Min, b.Max = math.NaN(), math.NaN(), math.NaN()
		return b
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b.Median = quantileSorted(s, 0.5)
	b.Min, b.Max = s[0], s[len(s)-1]
	tail := 0.25
	for float64(len(s))*tail >= 4 {
		b.Levels = append(b.Levels, [2]float64{quantileSorted(s, tail), quantileSorted(s, 1-tail)})
		tail /= 2
	}
	return b
}

// String renders the summary on one line, e.g.
// "n=24 med=9.8 [2.1,33] [0.9,81] min=0.4 max=120".
func (b Boxen) String() string {
	if b.N == 0 {
		return "n=0"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d med=%s", b.N, fnum(b.Median))
	for _, lv := range b.Levels {
		fmt.Fprintf(&sb, " [%s,%s]", fnum(lv[0]), fnum(lv[1]))
	}
	fmt.Fprintf(&sb, " min=%s max=%s", fnum(b.Min), fnum(b.Max))
	return sb.String()
}

// fnum formats with 3 significant digits over a wide magnitude range.
func fnum(x float64) string {
	switch {
	case math.IsNaN(x):
		return "nan"
	case x == 0:
		return "0"
	case math.Abs(x) >= 1e5 || math.Abs(x) < 1e-3:
		return fmt.Sprintf("%.2e", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}
