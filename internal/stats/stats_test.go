package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2, 3}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) not NaN")
	}
}

func TestQuantileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 30 {
		t.Errorf("q.5 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 20 {
		t.Errorf("q.25 = %v", got)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Geomean(1,100) = %v, want 10", got)
	}
	if got := Geomean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Geomean(2,2,2) = %v", got)
	}
	if !math.IsNaN(Geomean(nil)) || !math.IsNaN(Geomean([]float64{1, 0})) {
		t.Error("Geomean degenerate cases not NaN")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, up); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect positive = %v", got)
	}
	if got := Pearson(x, down); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect negative = %v", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1, 1})) {
		t.Error("zero variance not NaN")
	}
	if !math.IsNaN(Pearson(x, x[:3])) {
		t.Error("length mismatch not NaN")
	}
}

func TestBoxenStructure(t *testing.T) {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	b := NewBoxen(xs)
	if b.N != 64 || b.Min != 1 || b.Max != 64 {
		t.Fatalf("boxen basics wrong: %+v", b)
	}
	if math.Abs(b.Median-32.5) > 1e-9 {
		t.Errorf("median = %v", b.Median)
	}
	// 64 points: tails 1/4 (16 pts), 1/8 (8), 1/16 (4) are deep enough.
	if len(b.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(b.Levels))
	}
	for i := 1; i < len(b.Levels); i++ {
		if b.Levels[i][0] > b.Levels[i-1][0] || b.Levels[i][1] < b.Levels[i-1][1] {
			t.Errorf("level %d not nested: %v inside %v", i, b.Levels[i-1], b.Levels[i])
		}
	}
	if !strings.Contains(b.String(), "med=") {
		t.Errorf("String() = %q", b.String())
	}
}

func TestBoxenEmpty(t *testing.T) {
	b := NewBoxen(nil)
	if b.N != 0 || !math.IsNaN(b.Median) {
		t.Errorf("empty boxen: %+v", b)
	}
	if b.String() != "n=0" {
		t.Errorf("String() = %q", b.String())
	}
}

func TestQuickBoxenMedianInRange(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := NewBoxen(xs)
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return b.Min == s[0] && b.Max == s[len(s)-1] &&
			b.Median >= b.Min && b.Median <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFnum(t *testing.T) {
	cases := map[float64]string{
		0: "0",
	}
	for in, want := range cases {
		if got := fnum(in); got != want {
			t.Errorf("fnum(%v) = %q, want %q", in, got, want)
		}
	}
	if got := fnum(1234567); !strings.Contains(got, "e") {
		t.Errorf("fnum(large) = %q, want scientific", got)
	}
	if got := fnum(math.NaN()); got != "nan" {
		t.Errorf("fnum(NaN) = %q", got)
	}
}
