package par

import (
	"sync"
	"sync/atomic"
)

// Sync64 is Sync for int64 shared data, backing the suite's 64-bit
// data-type variants (paper §4.1: the 64-bit versions ship with Indigo2
// even though the study evaluates the 32-bit ones).
type Sync64 interface {
	// Name identifies the implementation in reports.
	Name() string
	// Load atomically reads *p.
	Load(p *int64) int64
	// Store atomically writes v to *p.
	Store(p *int64, v int64)
	// Min atomically sets *p = min(*p, v) and returns the previous value.
	Min(p *int64, v int64) int64
	// Max atomically sets *p = max(*p, v) and returns the previous value.
	Max(p *int64, v int64) int64
	// Add atomically adds v to *p and returns the new value.
	Add(p *int64, v int64) int64
}

// CAS64 implements Sync64 with compare-and-swap loops (the C++ model).
type CAS64 struct{}

// Name implements Sync64.
func (CAS64) Name() string { return "cas64" }

// Load implements Sync64.
func (CAS64) Load(p *int64) int64 { return atomic.LoadInt64(p) }

// Store implements Sync64.
func (CAS64) Store(p *int64, v int64) { atomic.StoreInt64(p, v) }

// Min implements Sync64.
func (CAS64) Min(p *int64, v int64) int64 {
	for {
		old := atomic.LoadInt64(p)
		if old <= v || atomic.CompareAndSwapInt64(p, old, v) {
			return old
		}
	}
}

// Max implements Sync64.
func (CAS64) Max(p *int64, v int64) int64 {
	for {
		old := atomic.LoadInt64(p)
		if old >= v || atomic.CompareAndSwapInt64(p, old, v) {
			return old
		}
	}
}

// Add implements Sync64.
func (CAS64) Add(p *int64, v int64) int64 { return atomic.AddInt64(p, v) }

// Critical64 implements Sync64 with a global mutex (the OpenMP model's
// critical section). Must not be copied after first use.
type Critical64 struct {
	mu sync.Mutex
}

// Name implements Sync64.
func (*Critical64) Name() string { return "critical64" }

// Load implements Sync64.
func (*Critical64) Load(p *int64) int64 { return atomic.LoadInt64(p) }

// Store implements Sync64.
func (*Critical64) Store(p *int64, v int64) { atomic.StoreInt64(p, v) }

// Min implements Sync64.
func (c *Critical64) Min(p *int64, v int64) int64 {
	c.mu.Lock()
	old := atomic.LoadInt64(p)
	if v < old {
		atomic.StoreInt64(p, v)
	}
	c.mu.Unlock()
	return old
}

// Max implements Sync64.
func (c *Critical64) Max(p *int64, v int64) int64 {
	c.mu.Lock()
	old := atomic.LoadInt64(p)
	if v > old {
		atomic.StoreInt64(p, v)
	}
	c.mu.Unlock()
	return old
}

// Add implements Sync64.
func (c *Critical64) Add(p *int64, v int64) int64 {
	c.mu.Lock()
	nv := atomic.LoadInt64(p) + v
	atomic.StoreInt64(p, nv)
	c.mu.Unlock()
	return nv
}
