package par

import (
	"math"
	"sync"
	"sync/atomic"
)

// RedStyle selects the CPU reduction style (paper §2.10.2).
type RedStyle int

const (
	// RedAtomic updates the shared accumulator with an atomic operation
	// per contribution (Listing 11a).
	RedAtomic RedStyle = iota
	// RedCritical updates the shared accumulator inside a critical
	// section per contribution (Listing 11b).
	RedCritical
	// RedClause accumulates into per-thread partials combined at loop
	// exit, the OpenMP `reduction(+:sum)` clause analog (Listing 11c).
	RedClause
)

func (r RedStyle) String() string {
	switch r {
	case RedAtomic:
		return "atomic-red"
	case RedCritical:
		return "critical-red"
	case RedClause:
		return "clause-red"
	}
	return "unknown"
}

// pad keeps per-thread partials on distinct cache lines so the clause
// reduction does not suffer false sharing.
type paddedInt64 struct {
	v int64
	_ [56]byte
}

type paddedFloat64 struct {
	v float64
	_ [56]byte
}

// ReduceInt64 runs body(i) for i in [0, n) on t threads with the given
// schedule and sums the returned contributions using the selected
// reduction style.
func ReduceInt64(t int, n int64, s Sched, style RedStyle, body func(i int64) int64) int64 {
	return reduceInt64(Fixed(t), n, s, style, body)
}

// ReduceInt64On is ReduceInt64 running its loops on the given executor
// (e.g. a pinned *Pool).
func ReduceInt64On(ex Executor, n int64, s Sched, style RedStyle, body func(i int64) int64) int64 {
	return reduceInt64(ex, n, s, style, body)
}

func reduceInt64(ex Executor, n int64, s Sched, style RedStyle, body func(i int64) int64) int64 {
	switch style {
	case RedAtomic:
		var sum atomic.Int64
		ex.For(n, s, func(i int64) {
			if v := body(i); v != 0 {
				sum.Add(v)
			}
		})
		return sum.Load()
	case RedCritical:
		var mu sync.Mutex
		var sum int64
		ex.For(n, s, func(i int64) {
			v := body(i)
			mu.Lock()
			sum += v
			mu.Unlock()
		})
		return sum
	case RedClause:
		partials := make([]paddedInt64, ex.Width())
		ex.ForTID(n, s, func(tid int, i int64) {
			partials[tid].v += body(i)
		})
		var sum int64
		for i := range partials {
			sum += partials[i].v
		}
		return sum
	}
	panic("par.ReduceInt64: unknown reduction style")
}

// ReduceFloat64 is ReduceInt64 for float64 contributions (PageRank sums).
func ReduceFloat64(t int, n int64, s Sched, style RedStyle, body func(i int64) float64) float64 {
	return reduceFloat64(Fixed(t), n, s, style, body)
}

// ReduceFloat64On is ReduceFloat64 running its loops on the given
// executor (e.g. a pinned *Pool).
func ReduceFloat64On(ex Executor, n int64, s Sched, style RedStyle, body func(i int64) float64) float64 {
	return reduceFloat64(ex, n, s, style, body)
}

func reduceFloat64(ex Executor, n int64, s Sched, style RedStyle, body func(i int64) float64) float64 {
	switch style {
	case RedAtomic:
		bits := uint64(math.Float64bits(0))
		ex.For(n, s, func(i int64) {
			AddFloat64(&bits, body(i))
		})
		return math.Float64frombits(atomic.LoadUint64(&bits))
	case RedCritical:
		var mu sync.Mutex
		var sum float64
		ex.For(n, s, func(i int64) {
			v := body(i)
			mu.Lock()
			sum += v
			mu.Unlock()
		})
		return sum
	case RedClause:
		partials := make([]paddedFloat64, ex.Width())
		ex.ForTID(n, s, func(tid int, i int64) {
			partials[tid].v += body(i)
		})
		var sum float64
		for i := range partials {
			sum += partials[i].v
		}
		return sum
	}
	panic("par.ReduceFloat64: unknown reduction style")
}

// Reducer is a reusable reduction context: it caches the wrapper
// closures and clause partials that the one-shot Reduce functions build
// per call, so steady-state reductions (PageRank residuals every
// iteration, TC counts every run) are allocation-free. A Reducer serves
// one reduction at a time; kernels embed one per cached context. The
// arithmetic is identical to ReduceInt64/ReduceFloat64 for every style.
type Reducer struct {
	i64 reducerInt64
	f64 reducerFloat64
}

type reducerInt64 struct {
	body     func(i int64) int64
	sum      atomic.Int64
	mu       sync.Mutex
	crit     int64
	partials []paddedInt64
	atomicFn func(i int64)
	critFn   func(i int64)
	clauseFn func(tid int, i int64)
}

// Int64 is ReduceInt64On with cached state; body must not retain the
// Reducer past the call.
func (r *Reducer) Int64(ex Executor, n int64, s Sched, style RedStyle, body func(i int64) int64) int64 {
	q := &r.i64
	q.body = body
	switch style {
	case RedAtomic:
		if q.atomicFn == nil {
			q.atomicFn = func(i int64) {
				if v := q.body(i); v != 0 {
					q.sum.Add(v)
				}
			}
		}
		q.sum.Store(0)
		ex.For(n, s, q.atomicFn)
		q.body = nil
		return q.sum.Load()
	case RedCritical:
		if q.critFn == nil {
			q.critFn = func(i int64) {
				v := q.body(i)
				q.mu.Lock()
				q.crit += v
				q.mu.Unlock()
			}
		}
		q.crit = 0
		ex.For(n, s, q.critFn)
		q.body = nil
		return q.crit
	case RedClause:
		if q.clauseFn == nil {
			q.clauseFn = func(tid int, i int64) {
				q.partials[tid].v += q.body(i)
			}
		}
		t := ex.Width()
		if cap(q.partials) < t {
			q.partials = make([]paddedInt64, t)
		}
		q.partials = q.partials[:t]
		for i := range q.partials {
			q.partials[i].v = 0
		}
		ex.ForTID(n, s, q.clauseFn)
		q.body = nil
		var sum int64
		for i := range q.partials {
			sum += q.partials[i].v
		}
		return sum
	}
	panic("par.Reducer.Int64: unknown reduction style")
}

type reducerFloat64 struct {
	body     func(i int64) float64
	bits     uint64
	mu       sync.Mutex
	crit     float64
	partials []paddedFloat64
	atomicFn func(i int64)
	critFn   func(i int64)
	clauseFn func(tid int, i int64)
}

// Float64 is ReduceFloat64On with cached state; body must not retain the
// Reducer past the call.
func (r *Reducer) Float64(ex Executor, n int64, s Sched, style RedStyle, body func(i int64) float64) float64 {
	q := &r.f64
	q.body = body
	switch style {
	case RedAtomic:
		if q.atomicFn == nil {
			q.atomicFn = func(i int64) {
				AddFloat64(&q.bits, q.body(i))
			}
		}
		atomic.StoreUint64(&q.bits, math.Float64bits(0))
		ex.For(n, s, q.atomicFn)
		q.body = nil
		return math.Float64frombits(atomic.LoadUint64(&q.bits))
	case RedCritical:
		if q.critFn == nil {
			q.critFn = func(i int64) {
				v := q.body(i)
				q.mu.Lock()
				q.crit += v
				q.mu.Unlock()
			}
		}
		q.crit = 0
		ex.For(n, s, q.critFn)
		q.body = nil
		return q.crit
	case RedClause:
		if q.clauseFn == nil {
			q.clauseFn = func(tid int, i int64) {
				q.partials[tid].v += q.body(i)
			}
		}
		t := ex.Width()
		if cap(q.partials) < t {
			q.partials = make([]paddedFloat64, t)
		}
		q.partials = q.partials[:t]
		for i := range q.partials {
			q.partials[i].v = 0
		}
		ex.ForTID(n, s, q.clauseFn)
		q.body = nil
		var sum float64
		for i := range q.partials {
			sum += q.partials[i].v
		}
		return sum
	}
	panic("par.Reducer.Float64: unknown reduction style")
}
