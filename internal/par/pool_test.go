package par

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// spawnAssignment records the iteration→worker assignment of the
// spawn-per-region reference implementation.
func spawnAssignment(t int, n int64, s Sched) []int {
	got := make([]int, n)
	forSpawn(t, n, s, nil, func(tid int, i int64) { got[i] = tid }, nil)
	return got
}

// TestPoolScheduleEquivalence is the tentpole's semantic guarantee: for
// every deterministic schedule, the pool assigns exactly the same
// iterations to exactly the same worker ids as spawning fresh goroutines
// did, across even/uneven splits, single-iteration loops, and loops
// narrower than the pool.
func TestPoolScheduleEquivalence(t *testing.T) {
	cases := []struct {
		t int
		n int64
	}{
		{2, 10}, {3, 7}, {4, 64}, {4, 3}, {5, 5}, {8, 1}, {1, 9}, {7, 100},
	}
	for _, s := range []Sched{Static, Blocked, Cyclic} {
		for _, c := range cases {
			want := spawnAssignment(c.t, c.n, s)
			p := NewPool(c.t)
			got := make([]int, c.n)
			p.ForTID(c.n, s, func(tid int, i int64) { got[i] = tid })
			p.Close()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v t=%d n=%d: iteration %d on worker %d, spawn ran it on %d",
						s, c.t, c.n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPoolDynamicCoversAllIterations: the dynamic schedule's assignment
// is timing-dependent by design (shared counter), so the pool is checked
// for exactly-once coverage with valid tids rather than exact placement.
func TestPoolDynamicCoversAllIterations(t *testing.T) {
	const n = 1000
	p := NewPool(4)
	defer p.Close()
	counts := make([]atomic.Int32, n)
	p.ForTID(n, Dynamic, func(tid int, i int64) {
		if tid < 0 || tid >= 4 {
			t.Errorf("iteration %d got tid %d", i, tid)
		}
		counts[i].Add(1)
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

// TestPoolReuseStress dispatches 1000 back-to-back regions of mixed
// schedules and widths on one pool, checking every region's coverage.
// Under -race this doubles as the pool's reuse soundness test: a stale
// worker from region k touching region k+1 would be a detected race.
func TestPoolReuseStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	scheds := []Sched{Static, Dynamic, Blocked, Cyclic}
	for k := 0; k < 1000; k++ {
		n := int64(1 + k%97) // exercises n < t, n == t, and n >> t
		var sum atomic.Int64
		p.For(n, scheds[k%len(scheds)], func(i int64) { sum.Add(i + 1) })
		if want := n * (n + 1) / 2; sum.Load() != want {
			t.Fatalf("region %d (n=%d): sum %d, want %d", k, n, sum.Load(), want)
		}
	}
}

// TestClosedPoolFallsBackToSpawn: dispatch on a closed pool must still
// run the region correctly (the supervisor closes pools that abandoned
// runs may still be holding).
func TestClosedPoolFallsBackToSpawn(t *testing.T) {
	p := NewPool(3)
	p.Close()
	if !p.Closed() {
		t.Fatal("Closed() false after Close")
	}
	var sum atomic.Int64
	p.For(100, Static, func(i int64) { sum.Add(i) })
	if sum.Load() != 99*100/2 {
		t.Fatalf("closed-pool region computed %d, want %d", sum.Load(), 99*100/2)
	}
	p.Close() // idempotent
}

// TestPoolPanicPropagatesAndPoolSurvives: a body panic surfaces on the
// dispatching goroutine, and the pool stays usable for later regions.
func TestPoolPanicPropagatesAndPoolSurvives(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
				t.Errorf("recovered %v, want the worker panic", r)
			}
		}()
		p.For(64, Static, func(i int64) {
			if i == 17 {
				panic("boom")
			}
		})
	}()
	var sum atomic.Int64
	p.For(64, Cyclic, func(i int64) { sum.Add(1) })
	if sum.Load() != 64 {
		t.Fatalf("post-panic region ran %d iterations, want 64", sum.Load())
	}
}

// TestPoolUnknownSchedulePanics preserves the pre-pool API contract.
func TestPoolUnknownSchedulePanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for _, f := range []func(){
		func() { p.For(4, Sched(99), func(int64) {}) },
		func() { p.ForTID(4, Sched(-1), func(int, int64) {}) },
	} {
		func() {
			defer func() {
				if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "unknown schedule") {
					t.Errorf("recovered %v, want unknown-schedule panic", r)
				}
			}()
			f()
		}()
	}
}

// TestFixedExecutor: the default executor reports its width and runs
// regions; width below 1 clamps to 1.
func TestFixedExecutor(t *testing.T) {
	ex := Fixed(3)
	if ex.Width() != 3 {
		t.Fatalf("Fixed(3).Width() = %d", ex.Width())
	}
	if Fixed(0).Width() != 1 {
		t.Fatalf("Fixed(0).Width() = %d, want 1", Fixed(0).Width())
	}
	seen := make([]atomic.Int32, 30)
	ex.ForTID(30, Blocked, func(tid int, i int64) {
		if tid < 0 || tid >= 3 {
			t.Errorf("tid %d out of range", tid)
		}
		seen[i].Add(1)
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, seen[i].Load())
		}
	}
}

// TestPoolReductions: the pool's reduction entry points agree with the
// package-level ones for every style.
func TestPoolReductions(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, style := range []RedStyle{RedAtomic, RedCritical, RedClause} {
		if got := p.ReduceInt64(100, Static, style, func(i int64) int64 { return i }); got != 99*100/2 {
			t.Errorf("ReduceInt64 style %v = %d, want %d", style, got, 99*100/2)
		}
		if got := p.ReduceFloat64(10, Cyclic, style, func(i int64) float64 { return 0.5 }); got != 5 {
			t.Errorf("ReduceFloat64 style %v = %v, want 5", style, got)
		}
	}
}

// TestAcquireReleaseReuse: the free list hands the same pool back after
// release and drops closed pools instead of recycling them.
func TestAcquireReleaseReuse(t *testing.T) {
	p := AcquirePool(6)
	ReleasePool(p)
	q := AcquirePool(6)
	if q != p {
		// Another goroutine may have raced the free list in -count>1
		// runs; the property that matters is that q works.
		ReleasePool(q)
	}
	var sum atomic.Int64
	q.For(10, Dynamic, func(i int64) { sum.Add(i) })
	if sum.Load() != 45 {
		t.Fatalf("recycled pool computed %d, want 45", sum.Load())
	}
	q.Close()
	ReleasePool(q) // dropped, not recycled
	r := AcquirePool(6)
	if r == q {
		t.Fatal("AcquirePool returned a closed pool")
	}
	r.Close()
}

// TestSpawnFallbackEquivalence: SetPooling(false) routes the package
// front end through spawn-per-region; results must be identical.
func TestSpawnFallbackEquivalence(t *testing.T) {
	defer SetPooling(true)
	for _, on := range []bool{true, false} {
		SetPooling(on)
		var sum atomic.Int64
		For(4, 200, Dynamic, func(i int64) { sum.Add(i) })
		if sum.Load() != 199*200/2 {
			t.Fatalf("pooling=%v: sum %d, want %d", on, sum.Load(), 199*200/2)
		}
	}
}

// TestPoolRegionRecycleStress drives many back-to-back regions of mixed
// entry points through one pool so the two-slot region recycler (see
// takeRegion/adopt) is exercised under the race detector: fast workers
// adopt the next region while slow ones still hold stale pointers to a
// recycled one, and the publish-then-validate protocol must never let a
// worker execute a superseded region's fields.
func TestPoolRegionRecycleStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	tidBody := func(tid int, i int64) { sum.Add(i + 1) }
	for k := 0; k < 2000; k++ {
		n := int64(1 + k%13) // small n keeps regions short-lived: maximum churn
		sum.Store(0)
		switch k % 3 {
		case 0:
			p.For(n, Dynamic, func(i int64) { sum.Add(i + 1) })
		case 1:
			p.ForTID(n, Cyclic, tidBody)
		case 2:
			// Elastic dispatch (the Reduce path) with occasional panics
			// mixed in: a panicking region must still recycle cleanly.
			if k%33 == 2 {
				func() {
					defer func() { recover() }()
					p.For(n, Static, func(i int64) { panic("boom") })
				}()
				sum.Store(n * (n + 1) / 2) // skip the sum check this round
				break
			}
			sum.Store(p.ReduceInt64(n, Static, RedClause, func(i int64) int64 { return i + 1 }))
		}
		if want := n * (n + 1) / 2; sum.Load() != want {
			t.Fatalf("region %d (n=%d): sum %d, want %d", k, n, sum.Load(), want)
		}
	}
}

// TestPoolDispatchSteadyStateNoAlloc pins the recycler's purpose: once
// the pool's solo and rotation regions exist, dispatching a region with
// a cached body must not allocate.
func TestPoolDispatchSteadyStateNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector allocates per instrumented access")
	}
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	body := func(i int64) { sink.Add(i) }
	multi := func() { p.For(64, Static, body) }
	solo := func() { p.For(1, Static, body) }
	for i := 0; i < 3; i++ {
		multi()
		solo()
	}
	if avg := testing.AllocsPerRun(10, multi); avg != 0 {
		t.Errorf("multi-worker dispatch: %.1f allocs per region, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, solo); avg != 0 {
		t.Errorf("solo dispatch: %.1f allocs per region, want 0", avg)
	}
}
