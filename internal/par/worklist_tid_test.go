package par

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestWorklistPushTIDFlush: items pushed through reservation buffers all
// land in the shared array after Flush, regardless of how the pushes
// spread across workers, and Size excludes buffered items until then.
func TestWorklistPushTIDFlush(t *testing.T) {
	const workers, perWorker = 4, 100 // not a multiple of wlBlock: tests the partial drain
	w := NewWorklistTID(workers*perWorker, workers)
	ForTID(workers, workers, Static, func(tid int, _ int64) {
		for k := 0; k < perWorker; k++ {
			w.PushTID(tid, int32(tid*perWorker+k))
		}
	})
	if sz := w.Size(); sz >= workers*perWorker {
		t.Fatalf("Size() = %d before Flush; partial buffers should still be private", sz)
	}
	w.Flush()
	if sz := w.Size(); sz != workers*perWorker {
		t.Fatalf("Size() = %d after Flush, want %d", sz, workers*perWorker)
	}
	got := make([]int, 0, w.Size())
	for i := int64(0); i < w.Size(); i++ {
		got = append(got, int(w.Get(i)))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("after sort, item %d = %d; pushed set was 0..%d exactly once",
				i, v, workers*perWorker-1)
		}
	}
}

// TestWorklistPushTIDMatchesPush: the buffered path pushes exactly the
// same multiset as the shared-counter path.
func TestWorklistPushTIDMatchesPush(t *testing.T) {
	const n = 1000
	plain := NewWorklist(n)
	buffered := NewWorklistTID(n, 3)
	For(3, n, Cyclic, func(i int64) { plain.Push(int32(i % 7)) })
	ForTID(3, n, Cyclic, func(tid int, i int64) { buffered.PushTID(tid, int32(i%7)) })
	buffered.Flush()
	if plain.Size() != buffered.Size() {
		t.Fatalf("sizes differ: %d vs %d", plain.Size(), buffered.Size())
	}
	count := func(w *Worklist) map[int32]int {
		m := map[int32]int{}
		for i := int64(0); i < w.Size(); i++ {
			m[w.Get(i)]++
		}
		return m
	}
	cp, cb := count(plain), count(buffered)
	for k, v := range cp {
		if cb[k] != v {
			t.Fatalf("value %d: Push produced %d, PushTID produced %d", k, v, cb[k])
		}
	}
}

// TestWorklistPushUniqueTID: dedup semantics are the stamp array's, not
// the buffer's — each vertex enters at most once per iteration even when
// different workers race on it.
func TestWorklistPushUniqueTID(t *testing.T) {
	const n = 64
	w := NewWorklistTID(n, 4)
	stamp := make([]int32, n)
	ForTID(4, 4*n, Cyclic, func(tid int, i int64) {
		w.PushUniqueTID(tid, int32(i%n), stamp, 1, CAS{})
	})
	w.Flush()
	if w.Size() != n {
		t.Fatalf("Size() = %d after racing duplicate pushes, want %d", w.Size(), n)
	}
	seen := make([]bool, n)
	for i := int64(0); i < w.Size(); i++ {
		v := w.Get(i)
		if seen[v] {
			t.Fatalf("vertex %d pushed twice", v)
		}
		seen[v] = true
	}
	// A later iteration may push the same vertices again.
	if !w.PushUniqueTID(0, 5, stamp, 2, CAS{}) {
		t.Fatal("iteration 2 push of a vertex stamped in iteration 1 was refused")
	}
}

// TestWorklistResetDiscardsBuffers: Reset empties reservation buffers
// too, so a discarded round cannot leak items into the next one.
func TestWorklistResetDiscardsBuffers(t *testing.T) {
	w := NewWorklistTID(128, 2)
	w.PushTID(0, 1)
	w.PushTID(1, 2)
	w.Reset()
	w.Flush()
	if w.Size() != 0 {
		t.Fatalf("Size() = %d after Reset+Flush, want 0", w.Size())
	}
}

// TestSwapUnflushedPanics: Swap's contract requires flushed buffers;
// misuse fails loudly instead of silently misfiling buffered items.
func TestSwapUnflushedPanics(t *testing.T) {
	w := NewWorklistTID(64, 2)
	o := NewWorklist(64)
	w.PushTID(1, 9)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "unflushed") {
			t.Errorf("recovered %v, want unflushed-buffers panic", r)
		}
	}()
	w.Swap(o)
}

// TestSwapDuringPushIsDataRace pins down the documented Swap contract:
// Swap concurrent with Push is a data race, and the race detector
// rejects it. The racy execution runs in a child process (a detected
// race kills the process), which this test expects to die reporting
// DATA RACE. Without -race the test is skipped — the contract is only
// observable under the detector.
func TestSwapDuringPushIsDataRace(t *testing.T) {
	if os.Getenv("PAR_SWAP_RACE_HELPER") == "1" {
		// Gosched after every operation forces the two goroutines to
		// alternate even on one CPU; without it they can serialize
		// temporally, and the happens-before edges their size-counter
		// atomics then form would hide the header race from the detector.
		w, o := NewWorklist(1<<20), NewWorklist(1<<20)
		var wg sync.WaitGroup
		wg.Add(1)
		start := make(chan struct{})
		go func() {
			defer wg.Done()
			<-start
			for i := int32(0); i < 4096; i++ {
				w.Push(i)
				runtime.Gosched()
			}
		}()
		close(start)
		for k := 0; k < 4096; k++ {
			w.Swap(o) // violates the contract: concurrent with Push
			runtime.Gosched()
		}
		wg.Wait()
		return
	}
	if !raceEnabled {
		t.Skip("requires the race detector (go test -race)")
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestSwapDuringPushIsDataRace$", "-test.v")
	cmd.Env = append(os.Environ(), "PAR_SWAP_RACE_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("concurrent Swap and Push passed under -race; output:\n%s", out)
	}
	if !strings.Contains(string(out), "DATA RACE") {
		t.Fatalf("helper died without reporting a race: %v\noutput:\n%s", err, out)
	}
}
