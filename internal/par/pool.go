package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"indigo/internal/guard"
)

// This file is the persistent worker-pool runtime behind the package's
// fork/join loops. The paper's throughput numbers come from tight
// per-round `parallel for` regions — road-network inputs run hundreds of
// small-frontier rounds per measurement — so spawning t fresh goroutines
// per region makes dispatch overhead, not the style under study,
// dominate exactly the measurements the reproduction exists to compare.
// A Pool keeps t-1 long-lived workers (the region's caller doubles as
// worker 0) and dispatches regions through a spin-then-park barrier:
// publishing a new region pointer is the epoch tick, spinning workers
// pick it up with two atomic loads, and parked workers are woken through
// a per-worker one-token channel, Go's closest analog to a futex wake.
//
// Regions are elastic: the t logical worker shares are tid slots claimed
// from a per-region counter by whichever goroutines arrive first — the
// caller claims remaining slots instead of idling at the join, so on a
// machine with fewer cores than t (the extreme being one core) a small
// region often completes entirely on the caller with zero context
// switches. Bodies that rendezvous across tids (the GPU simulator's
// barrier kernels) need one goroutine per tid and use ForConcurrent,
// which pins slot tid to worker goroutine tid.
//
// What the pool deliberately does NOT change: the iteration→worker
// assignment of every schedule is bit-identical to the spawn-per-region
// implementation (verified by TestPoolScheduleEquivalence), the dynamic
// schedule still takes every chunk from one shared atomic counter at
// dynChunk grain (that contention is the modeled phenomenon of §5.11),
// panics still surface on the region's caller, and the chaos hook still
// runs once per logical worker per region.

// Executor runs parallel regions with a fixed logical thread count. Both
// a *Pool and the package-level spawn-or-pooled front end (Fixed)
// implement it, so algorithm kernels can be handed either.
type Executor interface {
	// Width is the logical thread count t: ForTID passes tids in
	// [0, Width()) and clause reductions size their partials by it.
	Width() int
	// For executes body(i) for every i in [0, n) under schedule s.
	For(n int64, s Sched, body func(i int64))
	// ForTID is For with the worker id passed to the body.
	ForTID(n int64, s Sched, body func(tid int, i int64))
}

// region is one dispatched parallel region: the loop bounds, schedule,
// body, and the join state.
//
// Regions are recycled through a two-slot ring on the Pool (prev/spare)
// so steady-state dispatch allocates nothing. Recycling a region that a
// stale worker might still read would race its reinitialization, so the
// pool uses a publish-then-validate protocol: a worker first publishes
// the region pointer it is about to read (poolWorker.seen), then
// validates that the pool's current-region pointer still equals it
// before touching any field; the dispatcher recycles a spare region only
// if no worker has it published. If validation fails the region was
// superseded, which means its join already resolved without this worker
// (dispatch is serialized, so a new current region implies the old one
// joined) — skipping it is safe. Field writes during reinit are
// therefore always ordered against stale readers: either the dispatcher
// observed seen != region (the worker's prior reads happened before its
// last seen update, which the dispatcher's load synchronizes with), or
// the worker validates and only reads after observing the republished
// pointer, which the dispatcher stores after reinit completes.
type region struct {
	t       int
	n       int64
	sched   Sched
	body    func(i int64)
	bodyTID func(tid int, i int64)
	// elastic regions let any goroutine claim any tid slot; non-elastic
	// regions (ForConcurrent) pin slot tid to worker goroutine tid, which
	// rendezvousing bodies require.
	elastic bool
	// claim is the next unclaimed tid slot of an elastic region. It
	// starts at 1: the caller always runs slot 0.
	claim atomic.Int32
	// next is the dynamic schedule's shared chunk counter. It is shared
	// by design: OpenMP's dynamic runtime cost is one of the styles the
	// study measures (§5.11), so it must stay contended.
	next atomic.Int64
	// pending counts tid slots (including the caller's) not yet finished.
	pending atomic.Int32
	// join is the caller's parking state (cstSpinning/cstParked/cstDone),
	// the Dekker flag that decides whether the region's last finisher owes
	// the caller a wake token on the pool's done channel.
	join atomic.Int32
	tr   trap
	// gd, when non-nil, makes workers poll the token at guardStride-amortized
	// checkpoints. A tripped token aborts the worker's share via a typed
	// panic that rides tr to the region's caller like any other panic.
	gd *guard.Token
}

// reinit prepares a (fresh or recycled) region for dispatch. Atomics are
// reset field by field — a recycled region's previous dispatch has fully
// joined, and the recycle protocol guarantees no stale reader, so plain
// reinitialization is safe.
func (r *region) reinit(t int, n int64, s Sched, body func(i int64), bodyTID func(tid int, i int64), elastic bool, gd *guard.Token) {
	r.t, r.n, r.sched = t, n, s
	r.body, r.bodyTID = body, bodyTID
	r.elastic = elastic
	r.gd = gd
	r.claim.Store(1) // slot 0 is the caller's
	r.next.Store(0)
	r.pending.Store(int32(t))
	r.join.Store(cstSpinning)
	r.tr.reset()
}

// Caller join states.
const (
	cstSpinning int32 = iota // caller is polling pending
	cstParked                // caller committed to blocking on done
	cstDone                  // last worker finished while the caller spun
)

// finish retires one completed tid slot. The goroutine that retires the
// last slot resolves the Dekker handshake with the (possibly parked)
// caller; see Pool.join.
func (r *region) finish(p *Pool) {
	if r.pending.Add(-1) == 0 {
		if !r.join.CompareAndSwap(cstSpinning, cstDone) {
			p.done <- struct{}{} // the caller parked first: it awaits a token
		}
	}
}

// exec runs worker tid's share of the region, trapping panics and
// applying the chaos hook exactly like a spawned worker would. Guarded
// regions take the checkpointed twin instead; unguarded regions keep
// these branch-free loops, so a live token is the only thing that pays
// for guarding.
func (r *region) exec(tid int) {
	if r.gd != nil {
		r.execGuarded(tid)
		return
	}
	defer r.tr.capture()
	chaosEnter(tid)
	t := int64(r.t)
	switch r.sched {
	case Static, Blocked:
		beg := int64(tid) * r.n / t
		end := int64(tid+1) * r.n / t
		if r.body != nil {
			for i := beg; i < end; i++ {
				r.body(i)
			}
		} else {
			for i := beg; i < end; i++ {
				r.bodyTID(tid, i)
			}
		}
	case Cyclic:
		if r.body != nil {
			for i := int64(tid); i < r.n; i += t {
				r.body(i)
			}
		} else {
			for i := int64(tid); i < r.n; i += t {
				r.bodyTID(tid, i)
			}
		}
	case Dynamic:
		for {
			beg := r.next.Add(dynChunk) - dynChunk
			if beg >= r.n {
				return
			}
			end := beg + dynChunk
			if end > r.n {
				end = r.n
			}
			if r.body != nil {
				for i := beg; i < end; i++ {
					r.body(i)
				}
			} else {
				for i := beg; i < end; i++ {
					r.bodyTID(tid, i)
				}
			}
		}
	}
}

// guardStride is how many iterations a guarded worker runs between token
// polls. A poll is one atomic load, so at this stride the checkpoint cost
// is amortized to noise even on trivially cheap bodies, while a worker in
// a million-edge round still observes a cancel within ~2k iterations.
const guardStride = 2048

// execGuarded is exec for guarded regions: the same iteration→worker
// assignment per schedule, with a token poll folded in every guardStride
// iterations. A share that fits inside one stride runs the plain loops
// from exec with no poll in sight — not just skipping the call: keeping
// the (panic-throwing) checkpoint out of the loop body entirely lets the
// compiler emit the same code as the unguarded twin, which is what holds
// guarded overhead at noise level for the small-frontier regions
// road-network rounds are made of. Staleness is still bounded: the
// dispatch-entry poll runs once per region in the submitting goroutine,
// so a canceled run stops between regions even when every worker share
// is sub-stride. Only oversized shares take the chunked (contiguous) or
// credit-counter (strided/dynamic) checkpointed loops.
func (r *region) execGuarded(tid int) {
	defer r.tr.capture()
	chaosEnter(tid)
	gd := r.gd
	t := int64(r.t)
	switch r.sched {
	case Static, Blocked:
		beg := int64(tid) * r.n / t
		end := int64(tid+1) * r.n / t
		if end-beg <= guardStride {
			if r.body != nil {
				for i := beg; i < end; i++ {
					r.body(i)
				}
			} else {
				for i := beg; i < end; i++ {
					r.bodyTID(tid, i)
				}
			}
			return
		}
		for beg < end {
			stop := beg + guardStride
			if stop > end {
				stop = end
			}
			if r.body != nil {
				for i := beg; i < stop; i++ {
					r.body(i)
				}
			} else {
				for i := beg; i < stop; i++ {
					r.bodyTID(tid, i)
				}
			}
			beg = stop
			if beg < end {
				gd.Poll()
			}
		}
	case Cyclic:
		if r.n <= guardStride*t {
			if r.body != nil {
				for i := int64(tid); i < r.n; i += t {
					r.body(i)
				}
			} else {
				for i := int64(tid); i < r.n; i += t {
					r.bodyTID(tid, i)
				}
			}
			return
		}
		credit := int64(guardStride)
		if r.body != nil {
			for i := int64(tid); i < r.n; i += t {
				r.body(i)
				if credit--; credit == 0 {
					credit = guardStride
					gd.Poll()
				}
			}
		} else {
			for i := int64(tid); i < r.n; i += t {
				r.bodyTID(tid, i)
				if credit--; credit == 0 {
					credit = guardStride
					gd.Poll()
				}
			}
		}
	case Dynamic:
		credit := int64(guardStride)
		for {
			beg := r.next.Add(dynChunk) - dynChunk
			if beg >= r.n {
				return
			}
			end := beg + dynChunk
			if end > r.n {
				end = r.n
			}
			if r.body != nil {
				for i := beg; i < end; i++ {
					r.body(i)
				}
			} else {
				for i := beg; i < end; i++ {
					r.bodyTID(tid, i)
				}
			}
			if credit -= end - beg; credit <= 0 {
				credit = guardStride
				gd.Poll()
			}
		}
	}
}

// Worker parking states.
const (
	wActive int32 = iota // running a region or spinning on the epoch
	wParked              // blocked (or about to block) on the wake channel
)

// poolWorker is one long-lived worker's parking slot, padded so that the
// state flags of adjacent workers do not share a cache line.
type poolWorker struct {
	state atomic.Int32
	wake  chan struct{} // buffered(1); CAS on state gates the single token
	// seen is the region this worker last adopted (published before any
	// field read; see the recycle protocol on region). The dispatcher
	// never recycles a region any worker still has published here.
	seen atomic.Pointer[region]
	_    [40]byte
}

// Pool is a persistent fork/join executor: t-1 long-lived worker
// goroutines plus the dispatching caller, which participates as worker 0.
// Regions are serialized — For/ForTID must not be called concurrently on
// one Pool (nested or concurrent regions each take their own Pool).
// Close may be called at any time, including by a supervisor that has
// abandoned a timed-out run still using the Pool: workers drain their
// current region and exit, and any later dispatch on the closed Pool
// transparently falls back to spawn-per-region execution.
type Pool struct {
	t       int
	cur     atomic.Pointer[region]
	done    chan struct{} // buffered(1); the region's last worker signals
	mu      sync.Mutex    // serializes dispatch state against Close
	closed  atomic.Bool
	spin    int
	workers []poolWorker
	// solo is the reused region of the inline t==1 path. It is never
	// published to cur, so no worker can observe it and it needs no
	// recycle protocol.
	solo *region
	// prev is the region of the last completed dispatch (still == cur),
	// spare the one before it. takeRegion recycles spare once no worker
	// has it published; the two-slot lag guarantees spare != cur.
	prev, spare *region
	// gexec is the reused guarded-view executor handed out by Guarded.
	// Reusing it keeps Guarded allocation-free (a fresh view would escape
	// into the Executor interface every run); that is safe under the same
	// discipline that serializes dispatch — one run drives a pool at a
	// time, and the view is only read during dispatch.
	gexec guardedPool
}

// spinRounds is how many epoch checks a worker makes after finishing a
// region before parking. Back-to-back rounds of an algorithm re-dispatch
// within this window, so steady-state regions need no scheduler trip at
// all. The spin is cooperative (Gosched every few checks), so it stays
// productive even on a single-CPU machine — there the yield is what lets
// the dispatcher and the other workers interleave, and the window is
// shortened since every check round-trips through the scheduler.
const spinRounds = 4096

// NewPool creates a pool of t logical workers (t-1 goroutines; the
// caller of For/ForTID is worker 0). t < 1 is treated as 1.
func NewPool(t int) *Pool {
	if t < 1 {
		t = 1
	}
	p := &Pool{
		t:    t,
		done: make(chan struct{}, 1),
		spin: spinRounds,
	}
	if runtime.GOMAXPROCS(0) == 1 {
		p.spin = spinRounds / 8
	}
	if raceEnabled {
		// The detector instruments every spin-loop load; parking through
		// the (cheaper per-event) channels keeps race-mode test time close
		// to the spawn path's. Latency fidelity is irrelevant under -race.
		p.spin = 8
	}
	p.workers = make([]poolWorker, t)
	for tid := 1; tid < t; tid++ {
		p.workers[tid].wake = make(chan struct{}, 1)
		go p.work(tid)
	}
	return p
}

// Width implements Executor.
func (p *Pool) Width() int { return p.t }

// For implements Executor.
func (p *Pool) For(n int64, s Sched, body func(i int64)) {
	if s < Static || s > Cyclic {
		panic("par.For: unknown schedule")
	}
	p.run(n, s, body, nil)
}

// ForTID implements Executor.
func (p *Pool) ForTID(n int64, s Sched, body func(tid int, i int64)) {
	if s < Static || s > Cyclic {
		panic("par.ForTID: unknown schedule")
	}
	p.run(n, s, nil, body)
}

// ForConcurrent runs body(tid) once for every tid in [0, t), with every
// tid guaranteed its own concurrently scheduled worker goroutine. For and
// ForTID do not give that guarantee (elastic regions may run several tid
// slots on one goroutine), so bodies that rendezvous across tids — the
// GPU simulator's barrier kernels — must use this entry point.
func ForConcurrent(t int, body func(tid int)) {
	ForConcurrentGuarded(t, nil, body)
}

// ForConcurrentGuarded is ForConcurrent under a guard token: a tripped
// token aborts before any body runs, and long-running bodies are expected
// to poll gd themselves (one call per tid gives the substrate no
// iteration boundary to amortize over). gd == nil means unguarded.
func ForConcurrentGuarded(t int, gd *guard.Token, body func(tid int)) {
	ForConcurrentTID(t, gd, func(tid int, _ int64) { body(tid) })
}

// ForConcurrentTID is ForConcurrentGuarded for pre-bound bodies: the
// body already has the func(tid, i) dispatch shape (i is always 0), so
// hot callers — the GPU simulator runs one such fan-out per simulated
// barrier block — can cache the closure once and stay allocation-free
// across millions of calls.
func ForConcurrentTID(t int, gd *guard.Token, body func(tid int, i int64)) {
	if t < 1 {
		t = 1
	}
	if !pooling.Load() {
		forSpawn(t, int64(t), Static, nil, body, gd)
		return
	}
	p := AcquirePool(t)
	defer ReleasePool(p)
	p.dispatch(int64(t), Static, nil, body, false, gd)
}

// Guarded returns an Executor that runs p's regions under gd: workers
// poll the token at amortized checkpoints and a trip aborts the region,
// surfacing as a panic on the region's caller (convert with
// guard.Recover at the runner boundary). A nil gd returns p itself, so
// unguarded runs keep the branch-free fast path. The returned view is
// owned by the pool (reused across calls, never allocated); like
// dispatch itself it must not be shared across concurrent runs.
func (p *Pool) Guarded(gd *guard.Token) Executor {
	if gd == nil {
		return p
	}
	p.gexec.p, p.gexec.gd = p, gd
	return &p.gexec
}

// guardedPool binds a Pool to a guard token for one run. It is a view,
// not a wrapper with state: the same Pool can serve guarded and
// unguarded runs back to back.
type guardedPool struct {
	p  *Pool
	gd *guard.Token
}

func (g *guardedPool) Width() int { return g.p.t }

func (g *guardedPool) For(n int64, s Sched, body func(i int64)) {
	if s < Static || s > Cyclic {
		panic("par.For: unknown schedule")
	}
	g.p.dispatch(n, s, body, nil, true, g.gd)
}

func (g *guardedPool) ForTID(n int64, s Sched, body func(tid int, i int64)) {
	if s < Static || s > Cyclic {
		panic("par.ForTID: unknown schedule")
	}
	g.p.dispatch(n, s, nil, body, true, g.gd)
}

// ReduceInt64 runs a pooled reduction (see par.ReduceInt64).
func (p *Pool) ReduceInt64(n int64, s Sched, style RedStyle, body func(i int64) int64) int64 {
	return reduceInt64(p, n, s, style, body)
}

// ReduceFloat64 runs a pooled reduction (see par.ReduceFloat64).
func (p *Pool) ReduceFloat64(n int64, s Sched, style RedStyle, body func(i int64) float64) float64 {
	return reduceFloat64(p, n, s, style, body)
}

// run dispatches one region and joins it.
func (p *Pool) run(n int64, s Sched, body func(i int64), bodyTID func(tid int, i int64)) {
	p.dispatch(n, s, body, bodyTID, true, nil)
}

// dispatch publishes one region, runs the caller's share (plus, for
// elastic regions, any shares the pool workers have not claimed yet),
// and joins. A non-nil gd makes workers poll at guarded checkpoints; the
// dispatch-entry poll stops a canceled run between regions (e.g. between
// relax rounds) even when every region body is trivially short.
func (p *Pool) dispatch(n int64, s Sched, body func(i int64), bodyTID func(tid int, i int64), elastic bool, gd *guard.Token) {
	gd.Poll()
	if n <= 0 {
		return
	}
	t := p.t
	if int64(t) > n {
		t = int(n)
	}
	if t == 1 {
		// Sub-width regions (e.g. a one-vertex frontier) run inline:
		// identical assignment (everything is tid 0), zero dispatch cost.
		// The solo region is reused — it is never published, so only the
		// (serialized) dispatcher ever touches it.
		if p.solo == nil {
			p.solo = &region{}
		}
		r := p.solo
		r.reinit(1, n, s, body, bodyTID, false, gd)
		r.exec(0)
		r.tr.rethrow()
		return
	}
	r := p.takeRegion()
	r.reinit(t, n, s, body, bodyTID, elastic, gd)
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		forSpawn(t, n, s, body, bodyTID, gd)
		return
	}
	// Publishing the region pointer is the epoch tick; the atomic store
	// orders the region's plain fields before any worker's atomic load.
	p.cur.Store(r)
	for tid := 1; tid < t; tid++ {
		w := &p.workers[tid]
		if w.state.CompareAndSwap(wParked, wActive) {
			w.wake <- struct{}{}
		}
	}
	p.mu.Unlock()
	r.exec(0) // the caller is worker 0
	r.finish(p)
	if elastic {
		// Run any slots the workers have not picked up — on a machine
		// with fewer free cores than t this usually means all of them,
		// and the region never pays a context switch.
		for {
			tid := int(r.claim.Add(1)) - 1
			if tid >= t {
				break
			}
			r.exec(tid)
			r.finish(p)
		}
	}
	p.join(r)
	// r has joined; rotate the recycle ring before any rethrow. The
	// two-slot lag means takeRegion never offers the region cur still
	// points at.
	p.spare, p.prev = p.prev, r
	r.tr.rethrow()
}

// takeRegion returns a region for the next dispatch: the spare slot of
// the recycle ring if no worker still has it published (see the protocol
// on region), else a fresh allocation. Stale publications only delay
// recycling until the worker's next adoption — they never cause an
// unbounded leak, since a worker that adopts anything newer clears its
// claim on the spare.
func (p *Pool) takeRegion() *region {
	cand := p.spare
	if cand == nil {
		return &region{}
	}
	for tid := 1; tid < p.t; tid++ {
		if p.workers[tid].seen.Load() == cand {
			return &region{}
		}
	}
	p.spare = nil
	return cand
}

// join waits for the region's pool workers. It spins briefly (back-to-back
// regions usually finish within the window, costing zero channel trips),
// then parks on the done channel. The region's join flag is the Dekker
// handshake: exactly one of {caller sees pending==0, last worker sends a
// token} wins, so the buffered channel can never hold a stale token when
// the next region dispatches.
func (p *Pool) join(r *region) {
	for i := 0; i < p.spin; i++ {
		if r.pending.Load() == 0 {
			return
		}
		if i&7 == 7 {
			runtime.Gosched()
		}
	}
	if r.join.CompareAndSwap(cstSpinning, cstParked) {
		<-p.done // the last worker's CAS failed: it owes exactly one token
	}
}

// work is the long-lived worker loop.
func (p *Pool) work(tid int) {
	w := &p.workers[tid]
	var last *region
	for {
		r := p.await(w, last)
		if r == nil {
			return
		}
		last = r
		if r.elastic {
			for {
				slot := int(r.claim.Add(1)) - 1
				if slot >= r.t {
					break
				}
				r.exec(slot)
				r.finish(p)
			}
		} else if tid < r.t {
			r.exec(tid)
			r.finish(p)
		}
	}
}

// adopt checks for a region newer than last and, before handing it to
// the worker, publishes it in w.seen and validates that it is still the
// pool's current region. A failed validation means the region was
// superseded mid-adoption; since dispatch is serialized, a superseded
// region has already joined without this worker, so returning nil (try
// again) is safe. The publication stays in w.seen either way — it is
// conservative: it only delays that region's recycling until the next
// successful adoption.
func (p *Pool) adopt(w *poolWorker, last *region) *region {
	r := p.cur.Load()
	if r == last {
		return nil
	}
	w.seen.Store(r)
	if p.cur.Load() != r {
		return nil
	}
	return r
}

// await returns the next adopted region, or nil once the pool is closed
// with no newer region to run. It spins briefly on the region pointer
// (catching back-to-back dispatches without a scheduler round trip),
// then parks on the worker's wake channel.
func (p *Pool) await(w *poolWorker, last *region) *region {
	for i := 0; i < p.spin; i++ {
		if r := p.adopt(w, last); r != nil {
			return r
		}
		if p.closed.Load() {
			break
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	for {
		w.state.Store(wParked)
		// Re-check after publishing the parked state: a dispatcher that
		// read the flag as active has already stored the region, and one
		// that read it as parked owes us a token.
		if r := p.adopt(w, last); r != nil {
			if !w.state.CompareAndSwap(wParked, wActive) {
				<-w.wake // consume the in-flight token
			}
			return r
		}
		if p.closed.Load() {
			if !w.state.CompareAndSwap(wParked, wActive) {
				<-w.wake
			}
			// A region dispatched concurrently with Close still runs:
			// its caller is blocked on the join.
			if r := p.adopt(w, last); r != nil {
				return r
			}
			return nil
		}
		<-w.wake
		if r := p.adopt(w, last); r != nil {
			return r
		}
	}
}

// Close marks the pool defunct and wakes every parked worker so it can
// exit. Workers mid-region finish it first (the region's caller is
// waiting on the join), and later dispatches fall back to
// spawn-per-region, so closing a pool that an abandoned run still holds
// is safe. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed.Load() {
		p.closed.Store(true)
		for tid := 1; tid < p.t; tid++ {
			w := &p.workers[tid]
			if w.state.CompareAndSwap(wParked, wActive) {
				w.wake <- struct{}{}
			}
		}
	}
	p.mu.Unlock()
}

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool { return p.closed.Load() }

// poolCache is the process-wide free list behind the package-level
// For/ForTID: pools are keyed by width and reused across regions, so
// call sites keep their fork/join signature while paying pooled dispatch
// cost. A pool held by an abandoned (timed-out) run is simply never
// released — the next acquire builds a fresh one.
var poolCache = struct {
	sync.Mutex
	free map[int][]*Pool
}{free: map[int][]*Pool{}}

// AcquirePool returns an idle pool of width t (t < 1 means 1), creating
// one if the free list has none. Pair with ReleasePool.
func AcquirePool(t int) *Pool {
	if t < 1 {
		t = 1
	}
	poolCache.Lock()
	if list := poolCache.free[t]; len(list) > 0 {
		p := list[len(list)-1]
		poolCache.free[t] = list[:len(list)-1]
		poolCache.Unlock()
		return p
	}
	poolCache.Unlock()
	return NewPool(t)
}

// ReleasePool returns p to the free list. Closed pools are dropped.
func ReleasePool(p *Pool) {
	if p == nil || p.closed.Load() {
		return
	}
	poolCache.Lock()
	poolCache.free[p.t] = append(poolCache.free[p.t], p)
	poolCache.Unlock()
}

// DrainPoolCache closes and discards every idle pool on the free list.
// Goroutine-leak tests call it so that cached pools' workers do not show
// up as leaks; production code never needs it.
func DrainPoolCache() {
	poolCache.Lock()
	free := poolCache.free
	poolCache.free = map[int][]*Pool{}
	poolCache.Unlock()
	for _, list := range free {
		for _, p := range list {
			p.Close()
		}
	}
}

// pooling gates the package-level For/ForTID between the pool runtime
// and the legacy spawn-per-region implementation. It exists for
// benchmarks and equivalence tests; production code leaves it on.
var pooling atomic.Bool

func init() { pooling.Store(true) }

// SetPooling toggles the package-level fork/join front end between the
// persistent pool runtime (true, the default) and spawn-per-region
// execution (false). Only tests and benchmarks should call this.
func SetPooling(on bool) { pooling.Store(on) }

// fixedExec adapts the package-level functions to Executor, optionally
// under a guard token.
type fixedExec struct {
	t  int
	gd *guard.Token
}

func (f fixedExec) Width() int { return f.t }
func (f fixedExec) For(n int64, s Sched, body func(i int64)) {
	if s < Static || s > Cyclic {
		panic("par.For: unknown schedule")
	}
	forAny(f.t, n, s, body, nil, f.gd)
}
func (f fixedExec) ForTID(n int64, s Sched, body func(tid int, i int64)) {
	if s < Static || s > Cyclic {
		panic("par.ForTID: unknown schedule")
	}
	forAny(f.t, n, s, nil, body, f.gd)
}

// Fixed returns the default executor for t logical threads: regions run
// on free-list pools (or spawned goroutines when pooling is disabled).
// t < 1 is treated as 1.
func Fixed(t int) Executor {
	return FixedGuarded(t, nil)
}

// FixedGuarded is Fixed under a guard token: every region the executor
// runs polls gd at amortized checkpoints. gd == nil is plain Fixed.
func FixedGuarded(t int, gd *guard.Token) Executor {
	if t < 1 {
		t = 1
	}
	return fixedExec{t, gd}
}

// forAny is the common pooled-or-spawned region entry behind the
// package-level For/ForTID and the Fixed executors. Schedule validation
// happens at the public call sites so their panic messages keep the
// caller's name.
func forAny(t int, n int64, s Sched, body func(i int64), bodyTID func(tid int, i int64), gd *guard.Token) {
	if n <= 0 {
		gd.Poll()
		return
	}
	if !pooling.Load() {
		forSpawn(t, n, s, body, bodyTID, gd)
		return
	}
	p := AcquirePool(t)
	defer ReleasePool(p)
	p.dispatch(n, s, body, bodyTID, true, gd)
}

// forSpawn is the spawn-per-region reference implementation — the
// pre-pool substrate, kept as the closed-pool fallback, the
// SetPooling(false) path, and the baseline that schedule-equivalence
// tests and dispatch benchmarks compare against. Exactly one of body and
// bodyTID must be non-nil. A non-nil gd is honored with a per-iteration
// poll — this path is off the measured fast path, so simplicity beats
// amortization here.
func forSpawn(t int, n int64, s Sched, body func(i int64), bodyTID func(tid int, i int64), gd *guard.Token) {
	if gd != nil {
		gd.Poll()
		if body != nil {
			inner := body
			body = func(i int64) { gd.Poll(); inner(i) }
		} else {
			inner := bodyTID
			bodyTID = func(tid int, i int64) { gd.Poll(); inner(tid, i) }
		}
	}
	if n <= 0 {
		return
	}
	if t < 1 {
		t = 1
	}
	if int64(t) > n {
		t = int(n)
	}
	var wg sync.WaitGroup
	var tr trap
	wg.Add(t)
	switch s {
	case Static, Blocked:
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				beg := int64(tid) * n / int64(t)
				end := int64(tid+1) * n / int64(t)
				if body != nil {
					for i := beg; i < end; i++ {
						body(i)
					}
				} else {
					for i := beg; i < end; i++ {
						bodyTID(tid, i)
					}
				}
			}(tid)
		}
	case Cyclic:
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				if body != nil {
					for i := int64(tid); i < n; i += int64(t) {
						body(i)
					}
				} else {
					for i := int64(tid); i < n; i += int64(t) {
						bodyTID(tid, i)
					}
				}
			}(tid)
		}
	case Dynamic:
		var next atomic.Int64
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				for {
					beg := next.Add(dynChunk) - dynChunk
					if beg >= n {
						return
					}
					end := beg + dynChunk
					if end > n {
						end = n
					}
					if body != nil {
						for i := beg; i < end; i++ {
							body(i)
						}
					} else {
						for i := beg; i < end; i++ {
							bodyTID(tid, i)
						}
					}
				}
			}(tid)
		}
	default:
		panic(fmt.Sprintf("par: unknown schedule %d", s))
	}
	wg.Wait()
	tr.rethrow()
}
