package par

import (
	"fmt"
	"sync/atomic"
)

// Worklist is the shared vertex worklist of the data-driven style
// (paper §2.2/§2.3): a fixed-capacity array with an atomically bumped
// size, exactly the atomicAdd-indexed array of Listing 3.
//
// Capacity is fixed because the paper's codes pre-allocate: with
// duplicates allowed, one iteration can push at most one item per
// directed edge, so callers size the list at m (or n for no-dup lists).
type Worklist struct {
	items []int32
	size  atomic.Int64
}

// NewWorklist creates an empty worklist with the given capacity.
func NewWorklist(capacity int64) *Worklist {
	return &Worklist{items: make([]int32, capacity)}
}

// Push appends v, allowing duplicates (Listing 3a).
func (w *Worklist) Push(v int32) {
	idx := w.size.Add(1) - 1
	if idx >= int64(len(w.items)) {
		panic(fmt.Sprintf("par.Worklist: overflow (cap %d)", len(w.items)))
	}
	w.items[idx] = v
}

// PushUnique appends v only if v has not been pushed during iteration
// itr, tracked by the caller-owned stamp array via an atomic max
// (Listing 3b). It reports whether the item was pushed. The stamp array
// must start below any iteration number used (e.g. all zero with
// iterations starting at 1).
func (w *Worklist) PushUnique(v int32, stamp []int32, itr int32, s Sync) bool {
	if s.Max(&stamp[v], itr) == itr {
		return false
	}
	w.Push(v)
	return true
}

// Size returns the number of items currently on the list.
func (w *Worklist) Size() int64 { return w.size.Load() }

// Get returns item i. It must only be called with i < Size() and no
// concurrent pushes past i.
func (w *Worklist) Get(i int64) int32 { return w.items[i] }

// Reset empties the list for the next iteration.
func (w *Worklist) Reset() { w.size.Store(0) }

// Swap exchanges the contents of two worklists (the classic in/out
// worklist double buffer) without copying.
func (w *Worklist) Swap(o *Worklist) {
	w.items, o.items = o.items, w.items
	ws, os := w.size.Load(), o.size.Load()
	w.size.Store(os)
	o.size.Store(ws)
}
