package par

import (
	"fmt"
	"sync/atomic"
)

// Worklist is the shared vertex worklist of the data-driven style
// (paper §2.2/§2.3): a fixed-capacity array with an atomically bumped
// size, exactly the atomicAdd-indexed array of Listing 3.
//
// Capacity is fixed because the paper's codes pre-allocate: with
// duplicates allowed, one iteration can push at most one item per
// directed edge, so callers size the list at m (or n for no-dup lists).
//
// Two push paths exist. Push bumps the shared size counter once per
// item — every pusher serializes on one cache line, which is the naive
// Listing-3 realization. PushTID batches items in a per-worker
// reservation buffer and bumps the shared counter once per wlBlock
// items, so data-driven rounds stop serializing on the counter; the set
// of items pushed is identical (only their order in the array differs,
// which the style semantics never observe — concurrent Push order was
// already scheduling-dependent). PushTID requires a worklist built with
// NewWorklistTID and a Flush after each parallel region.
type Worklist struct {
	items []int32
	size  atomic.Int64
	bufs  []wlBuf
}

// wlBlock is the per-worker reservation grain: how many items a worker
// batches locally before taking wlBlock slots from the shared counter
// with one atomic add.
const wlBlock = 64

// wlBuf is one worker's reservation buffer, padded so adjacent workers'
// buffers do not share a cache line.
type wlBuf struct {
	n     int32
	local [wlBlock]int32
	_     [60]byte
}

// NewWorklist creates an empty worklist with the given capacity.
func NewWorklist(capacity int64) *Worklist {
	return &Worklist{items: make([]int32, capacity)}
}

// NewWorklistTID creates an empty worklist with per-worker reservation
// buffers for t workers, enabling PushTID/PushUniqueTID.
func NewWorklistTID(capacity int64, t int) *Worklist {
	if t < 1 {
		t = 1
	}
	w := NewWorklist(capacity)
	w.bufs = make([]wlBuf, t)
	return w
}

// Push appends v, allowing duplicates (Listing 3a). Every call bumps the
// shared size counter; inside hot parallel regions prefer PushTID.
func (w *Worklist) Push(v int32) {
	idx := w.size.Add(1) - 1
	if idx >= int64(len(w.items)) {
		panic(fmt.Sprintf("par.Worklist: overflow (cap %d)", len(w.items)))
	}
	w.items[idx] = v
}

// PushTID appends v through worker tid's reservation buffer, allowing
// duplicates. The item becomes visible in the shared array when the
// buffer fills (a block of wlBlock slots is reserved with one atomic
// add) or at the next Flush.
func (w *Worklist) PushTID(tid int, v int32) {
	b := &w.bufs[tid]
	b.local[b.n] = v
	b.n++
	if int(b.n) == wlBlock {
		w.drain(b)
	}
}

// drain reserves a block of slots for b's items and publishes them.
func (w *Worklist) drain(b *wlBuf) {
	c := int64(b.n)
	base := w.size.Add(c) - c
	if base+c > int64(len(w.items)) {
		panic(fmt.Sprintf("par.Worklist: overflow (cap %d)", len(w.items)))
	}
	copy(w.items[base:base+c], b.local[:c])
	b.n = 0
}

// Flush publishes every worker's buffered items into the shared array.
// The region's coordinator must call it after the parallel region
// completes and before Size/Get/Swap; it must not run concurrently with
// pushes.
func (w *Worklist) Flush() {
	for i := range w.bufs {
		if w.bufs[i].n > 0 {
			w.drain(&w.bufs[i])
		}
	}
}

// PushUnique appends v only if v has not been pushed during iteration
// itr, tracked by the caller-owned stamp array via an atomic max
// (Listing 3b). It reports whether the item was pushed. The stamp array
// must start below any iteration number used (e.g. all zero with
// iterations starting at 1).
func (w *Worklist) PushUnique(v int32, stamp []int32, itr int32, s Sync) bool {
	if s.Max(&stamp[v], itr) == itr {
		return false
	}
	w.Push(v)
	return true
}

// PushUniqueTID is PushUnique through worker tid's reservation buffer.
// The duplicate check is unchanged — the same atomic max on the stamp
// array decides, so no-dup semantics are identical to PushUnique.
func (w *Worklist) PushUniqueTID(tid int, v int32, stamp []int32, itr int32, s Sync) bool {
	if s.Max(&stamp[v], itr) == itr {
		return false
	}
	w.PushTID(tid, v)
	return true
}

// Size returns the number of items currently on the list. Buffered
// PushTID items are not counted until Flush.
func (w *Worklist) Size() int64 { return w.size.Load() }

// Cap returns the list's item capacity.
func (w *Worklist) Cap() int64 { return int64(len(w.items)) }

// Width returns the number of per-worker reservation buffers (0 for a
// worklist built with NewWorklist).
func (w *Worklist) Width() int { return len(w.bufs) }

// EnsureWidth grows the reservation buffers to serve at least t workers,
// keeping the (possibly large) items array. Existing buffered items are
// preserved only when no growth is needed, so call it on empty or
// flushed lists.
func (w *Worklist) EnsureWidth(t int) {
	if t < 1 {
		t = 1
	}
	if len(w.bufs) < t {
		w.bufs = make([]wlBuf, t)
	}
}

// Grow raises the item capacity. It must run at a sequential point on an
// empty, flushed list (between iterations, before seeding the round), so
// growth never races pushes and never copies items. Callers implement
// the high-water-mark policy documented in the relax engine: size the
// out-list once per round from the exact push bound and at least double
// per growth, so steady-state rounds (and repeat runs on reused
// worklists) never reallocate.
func (w *Worklist) Grow(capacity int64) {
	if w.size.Load() > 0 {
		panic("par.Worklist: Grow on a non-empty list")
	}
	w.assertFlushed()
	if capacity > int64(len(w.items)) {
		w.items = make([]int32, capacity)
	}
}

// Get returns item i. It must only be called with i < Size() and no
// concurrent pushes past i.
func (w *Worklist) Get(i int64) int32 { return w.items[i] }

// Reset empties the list for the next iteration, discarding any
// unflushed buffered items.
func (w *Worklist) Reset() {
	w.size.Store(0)
	for i := range w.bufs {
		w.bufs[i].n = 0
	}
}

// Swap exchanges the contents of two worklists (the classic in/out
// worklist double buffer) without copying.
//
// Contract: Swap is not synchronized with pushes. It must only be
// called between parallel regions, by the single coordinating
// goroutine, after both lists' pushers have joined (and after Flush for
// TID worklists) — exactly the double-buffer point of the data-driven
// loop. A Swap concurrent with Push is a data race on the items array
// (the race detector rejects it; see TestSwapDuringPushIsDataRace), and
// the two size counters are read and stored non-atomically as a pair,
// so concurrent sizes could be torn even without the array race.
// Reservation buffers are not exchanged: they belong to the worklist
// value, and both must be empty (flushed) when Swap runs.
func (w *Worklist) Swap(o *Worklist) {
	w.assertFlushed()
	o.assertFlushed()
	w.items, o.items = o.items, w.items
	ws, os := w.size.Load(), o.size.Load()
	w.size.Store(os)
	o.size.Store(ws)
}

// assertFlushed panics if a reservation buffer still holds items —
// swapping or growing item arrays out from under buffered pushes would
// silently misfile them, so misuse fails loudly instead.
func (w *Worklist) assertFlushed() {
	for i := range w.bufs {
		if w.bufs[i].n > 0 {
			panic("par.Worklist: unflushed PushTID buffers (call Flush after the region)")
		}
	}
}
