package par

import (
	"sync"
	"sync/atomic"
	"time"
)

// Chaos injects faults into the par substrate so the sweep supervisor's
// failure handling (internal/sweep) can be exercised deterministically:
// a stalled worker manufactures a hang, a panicking worker exercises
// panic recovery, and dropped updates corrupt results without crashing,
// manufacturing wrong answers. It is a test-only facility — production
// code never installs one, and the only cost while disabled is a nil
// atomic-pointer load at worker start and in the Sync min/max paths.
type Chaos struct {
	// Delay stalls each worker for the duration at loop entry, turning
	// fast variants into slow ones for timeout tuning.
	Delay time.Duration
	// Stall, when non-nil, blocks every worker until the channel is
	// closed: a deterministic non-terminating run.
	Stall <-chan struct{}
	// PanicMsg, when non-empty, makes worker 0 panic at loop entry.
	PanicMsg string
	// DropUpdates makes the Sync min/max operations lose their writes,
	// so relaxation-based variants silently compute wrong answers.
	DropUpdates bool
}

var chaos atomic.Pointer[Chaos]

// SetChaos installs c for subsequent parallel loops; nil restores
// normal operation. Only tests may call this.
func SetChaos(c *Chaos) { chaos.Store(c) }

// chaosEnter applies the installed worker faults. It runs on each
// worker goroutine at loop entry, inside the panic trap, so an injected
// panic propagates to the fork/join caller like any variant panic.
func chaosEnter(tid int) {
	c := chaos.Load()
	if c == nil {
		return
	}
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	if c.Stall != nil {
		<-c.Stall
	}
	if c.PanicMsg != "" && tid == 0 {
		panic(c.PanicMsg)
	}
}

// chaosDropsUpdates reports whether Sync min/max writes should be lost.
func chaosDropsUpdates() bool {
	c := chaos.Load()
	return c != nil && c.DropUpdates
}

// trap collects the first panic raised by any worker goroutine so the
// fork/join caller can re-raise it on its own goroutine. A panic in a
// spawned goroutine cannot be recovered by the caller and would kill
// the whole process; re-raising after the join point makes variant
// panics (worklist overflow, injected faults) recoverable by the sweep
// supervisor, mirroring how gpusim surfaces kernel panics on the
// launching goroutine.
type trap struct {
	mu  sync.Mutex
	val any
	set bool
}

// capture must be deferred directly by each worker goroutine.
func (tr *trap) capture() {
	if p := recover(); p != nil {
		tr.mu.Lock()
		if !tr.set {
			tr.val, tr.set = p, true
		}
		tr.mu.Unlock()
	}
}

// rethrow re-raises the first captured panic, if any, on the caller.
func (tr *trap) rethrow() {
	if tr.set {
		panic(tr.val)
	}
}

// reset clears a trap for reuse (recycled pool regions). The mutex is
// untouched — it is unlocked whenever reset can legally run.
func (tr *trap) reset() {
	tr.val, tr.set = nil, false
}
