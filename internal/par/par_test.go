package par

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var allScheds = []Sched{Static, Dynamic, Blocked, Cyclic}

func TestForCoversAllIterations(t *testing.T) {
	for _, s := range allScheds {
		for _, threads := range []int{1, 2, 7, 16} {
			for _, n := range []int64{0, 1, 3, 100, 1001} {
				hits := make([]atomic.Int32, max64(n, 1))
				For(threads, n, s, func(i int64) {
					hits[i].Add(1)
				})
				for i := int64(0); i < n; i++ {
					if got := hits[i].Load(); got != 1 {
						t.Fatalf("sched %v t=%d n=%d: iteration %d ran %d times", s, threads, n, i, got)
					}
				}
			}
		}
	}
}

func TestForTIDCoversAllIterationsWithValidTIDs(t *testing.T) {
	for _, s := range allScheds {
		threads := 4
		n := int64(257)
		hits := make([]atomic.Int32, n)
		var badTID atomic.Int32
		ForTID(threads, n, s, func(tid int, i int64) {
			if tid < 0 || tid >= threads {
				badTID.Store(1)
			}
			hits[i].Add(1)
		})
		if badTID.Load() != 0 {
			t.Fatalf("sched %v: tid out of range", s)
		}
		for i := int64(0); i < n; i++ {
			if hits[i].Load() != 1 {
				t.Fatalf("sched %v: iteration %d not covered exactly once", s, i)
			}
		}
	}
}

func TestForMoreThreadsThanIterations(t *testing.T) {
	var count atomic.Int64
	For(64, 3, Static, func(i int64) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("ran %d iterations, want 3", count.Load())
	}
}

func TestSyncImplementations(t *testing.T) {
	impls := []Sync{CAS{}, &Critical{}}
	for _, s := range impls {
		t.Run(s.Name(), func(t *testing.T) {
			var x int32 = 10
			if old := s.Min(&x, 5); old != 10 || x != 5 {
				t.Errorf("Min: old=%d x=%d, want 10, 5", old, x)
			}
			if old := s.Min(&x, 7); old != 5 || x != 5 {
				t.Errorf("Min no-op: old=%d x=%d, want 5, 5", old, x)
			}
			if old := s.Max(&x, 9); old != 5 || x != 9 {
				t.Errorf("Max: old=%d x=%d, want 5, 9", old, x)
			}
			if old := s.Max(&x, 2); old != 9 || x != 9 {
				t.Errorf("Max no-op: old=%d x=%d, want 9, 9", old, x)
			}
			if nv := s.Add(&x, 3); nv != 12 || x != 12 {
				t.Errorf("Add: new=%d x=%d, want 12, 12", nv, x)
			}
			if old := s.Or(&x, 16); old != 12 || x != 28 {
				t.Errorf("Or: old=%d x=%d, want 12, 28", old, x)
			}
			s.Store(&x, 42)
			if got := s.Load(&x); got != 42 {
				t.Errorf("Load after Store = %d, want 42", got)
			}
		})
	}
}

func TestSyncMinConcurrent(t *testing.T) {
	impls := []Sync{CAS{}, &Critical{}}
	for _, s := range impls {
		t.Run(s.Name(), func(t *testing.T) {
			var x int32 = 1 << 30
			For(8, 10000, Cyclic, func(i int64) {
				s.Min(&x, int32(10000-i))
			})
			if x != 1 {
				t.Fatalf("concurrent Min result = %d, want 1", x)
			}
		})
	}
}

func TestQuickCASMinMatchesSerial(t *testing.T) {
	f := func(vals []int32) bool {
		var cas CAS
		var x int32 = 1<<31 - 1
		want := x
		for _, v := range vals {
			cas.Min(&x, v)
			if v < want {
				want = v
			}
		}
		return x == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceInt64AllStyles(t *testing.T) {
	n := int64(5000)
	want := n * (n - 1) / 2
	for _, style := range []RedStyle{RedAtomic, RedCritical, RedClause} {
		for _, sched := range allScheds {
			got := ReduceInt64(8, n, sched, style, func(i int64) int64 { return i })
			if got != want {
				t.Errorf("style %v sched %v: sum = %d, want %d", style, sched, got, want)
			}
		}
	}
}

func TestReduceFloat64AllStyles(t *testing.T) {
	n := int64(4096)
	want := float64(n)
	for _, style := range []RedStyle{RedAtomic, RedCritical, RedClause} {
		got := ReduceFloat64(8, n, Static, style, func(i int64) float64 { return 1.0 })
		if got != want {
			t.Errorf("style %v: sum = %v, want %v", style, got, want)
		}
	}
}

func TestAddFloat64Concurrent(t *testing.T) {
	var bits uint64
	For(8, 100000, Cyclic, func(i int64) {
		AddFloat64(&bits, 0.5)
	})
	if sum := math.Float64frombits(bits); sum != 50000 {
		t.Fatalf("sum = %v, want 50000", sum)
	}
}

func TestWorklistPushAndReset(t *testing.T) {
	w := NewWorklist(100)
	For(4, 50, Cyclic, func(i int64) { w.Push(int32(i)) })
	if w.Size() != 50 {
		t.Fatalf("Size = %d, want 50", w.Size())
	}
	seen := make([]bool, 50)
	for i := int64(0); i < w.Size(); i++ {
		v := w.Get(i)
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("item %d = %d invalid or duplicate", i, v)
		}
		seen[v] = true
	}
	w.Reset()
	if w.Size() != 0 {
		t.Fatalf("Size after Reset = %d", w.Size())
	}
}

func TestWorklistOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	w := NewWorklist(1)
	w.Push(0)
	w.Push(1)
}

func TestWorklistPushUnique(t *testing.T) {
	for _, s := range []Sync{CAS{}, &Critical{}} {
		w := NewWorklist(200)
		stamp := make([]int32, 10)
		// 8 threads all try to push the same 10 vertices in iteration 1.
		For(8, 80, Cyclic, func(i int64) {
			w.PushUnique(int32(i%10), stamp, 1, s)
		})
		if w.Size() != 10 {
			t.Fatalf("sync %s: Size = %d, want 10 unique", s.Name(), w.Size())
		}
		// Iteration 2 allows each vertex again, exactly once.
		w.Reset()
		For(8, 80, Cyclic, func(i int64) {
			w.PushUnique(int32(i%10), stamp, 2, s)
		})
		if w.Size() != 10 {
			t.Fatalf("sync %s: iteration 2 Size = %d, want 10", s.Name(), w.Size())
		}
	}
}

func TestWorklistSwap(t *testing.T) {
	a, b := NewWorklist(10), NewWorklist(10)
	a.Push(1)
	a.Push(2)
	b.Push(9)
	a.Swap(b)
	if a.Size() != 1 || a.Get(0) != 9 {
		t.Fatalf("a after swap: size=%d", a.Size())
	}
	if b.Size() != 2 || b.Get(0) != 1 || b.Get(1) != 2 {
		t.Fatalf("b after swap: size=%d", b.Size())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
