package par

import (
	"math"
	"sync"
	"sync/atomic"
)

// Sync abstracts the shared-memory update operations the style variants
// use, so the same algorithm code can run with CAS-based atomics (the
// C++ model) or critical-section read-modify-writes (the OpenMP model,
// which pre-5.1 has no atomic min/max — paper §5.3).
//
// Load and Store are plain atomic accesses in both models: the paper
// assumes scalar loads and stores are atomic (§2.5), and OpenMP's
// `atomic read`/`atomic write` provide them cheaply.
type Sync interface {
	// Name identifies the implementation in reports.
	Name() string
	// Load atomically reads *p.
	Load(p *int32) int32
	// Store atomically writes v to *p.
	Store(p *int32, v int32)
	// Min atomically sets *p = min(*p, v) and returns the previous value.
	Min(p *int32, v int32) int32
	// Max atomically sets *p = max(*p, v) and returns the previous value.
	Max(p *int32, v int32) int32
	// Add atomically adds v to *p and returns the new value.
	Add(p *int32, v int32) int32
	// Or atomically ORs v into *p and returns the previous value.
	Or(p *int32, v int32) int32
}

// CAS implements Sync with compare-and-swap loops, the C++ std::atomic
// realization of read-modify-write operations.
type CAS struct{}

// Name implements Sync.
func (CAS) Name() string { return "cas" }

// Load implements Sync.
func (CAS) Load(p *int32) int32 { return atomic.LoadInt32(p) }

// Store implements Sync.
func (CAS) Store(p *int32, v int32) { atomic.StoreInt32(p, v) }

// Min implements Sync.
func (CAS) Min(p *int32, v int32) int32 {
	if chaosDropsUpdates() {
		return atomic.LoadInt32(p)
	}
	for {
		old := atomic.LoadInt32(p)
		if old <= v || atomic.CompareAndSwapInt32(p, old, v) {
			return old
		}
	}
}

// Max implements Sync.
func (CAS) Max(p *int32, v int32) int32 {
	if chaosDropsUpdates() {
		return atomic.LoadInt32(p)
	}
	for {
		old := atomic.LoadInt32(p)
		if old >= v || atomic.CompareAndSwapInt32(p, old, v) {
			return old
		}
	}
}

// Add implements Sync.
func (CAS) Add(p *int32, v int32) int32 { return atomic.AddInt32(p, v) }

// Or implements Sync.
func (CAS) Or(p *int32, v int32) int32 { return atomic.OrInt32(p, v) }

// Critical implements Sync with a single global mutex guarding every
// read-modify-write, the OpenMP `#pragma omp critical` realization. A
// Critical value must not be copied after first use.
type Critical struct {
	mu sync.Mutex
}

// Name implements Sync.
func (*Critical) Name() string { return "critical" }

// Load implements Sync.
func (*Critical) Load(p *int32) int32 { return atomic.LoadInt32(p) }

// Store implements Sync.
func (*Critical) Store(p *int32, v int32) { atomic.StoreInt32(p, v) }

// Min implements Sync.
func (c *Critical) Min(p *int32, v int32) int32 {
	c.mu.Lock()
	old := atomic.LoadInt32(p)
	if v < old && !chaosDropsUpdates() {
		atomic.StoreInt32(p, v)
	}
	c.mu.Unlock()
	return old
}

// Max implements Sync.
func (c *Critical) Max(p *int32, v int32) int32 {
	c.mu.Lock()
	old := atomic.LoadInt32(p)
	if v > old && !chaosDropsUpdates() {
		atomic.StoreInt32(p, v)
	}
	c.mu.Unlock()
	return old
}

// Add implements Sync.
func (c *Critical) Add(p *int32, v int32) int32 {
	c.mu.Lock()
	nv := atomic.LoadInt32(p) + v
	atomic.StoreInt32(p, nv)
	c.mu.Unlock()
	return nv
}

// Or implements Sync.
func (c *Critical) Or(p *int32, v int32) int32 {
	c.mu.Lock()
	old := atomic.LoadInt32(p)
	atomic.StoreInt32(p, old|v)
	c.mu.Unlock()
	return old
}

// AddFloat64 atomically adds v to *p with a CAS loop over the bit
// pattern. It backs the atomic-reduction style for PageRank sums.
func AddFloat64(p *uint64, v float64) {
	for {
		old := atomic.LoadUint64(p)
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, nv) {
			return
		}
	}
}
