//go:build race

package par

// raceEnabled reports whether this binary was built with the race
// detector; tests that deliberately provoke races in a subprocess (to
// assert the detector rejects a misuse) gate on it.
const raceEnabled = true
