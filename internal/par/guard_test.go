package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"indigo/internal/guard"
	"indigo/internal/testutil"
)

// TestGuardedPoolAborts: cancel mid-region, every schedule. The region
// must return (via the trapped abort panic re-raised on the caller),
// guard.Recover must yield ErrCanceled, and the pool must stay usable.
func TestGuardedPoolAborts(t *testing.T) {
	for _, s := range []Sched{Static, Blocked, Cyclic, Dynamic} {
		t.Run(s.String(), func(t *testing.T) {
			p := NewPool(4)
			defer p.Close()
			gd := guard.New()
			defer gd.Release()
			ex := p.Guarded(gd)

			var seen atomic.Int64
			var err error
			func() {
				defer guard.Recover(&err)
				ex.For(1<<40, s, func(i int64) {
					if seen.Add(1) == 1000 {
						gd.Cancel()
					}
				})
			}()
			if !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("%v: err = %v, want ErrCanceled", s, err)
			}
			// An abort mid-region must leave the pool consistent: the next
			// (unguarded) region on the same pool runs to completion.
			var n atomic.Int64
			p.For(10_000, Static, func(i int64) { n.Add(1) })
			if n.Load() != 10_000 {
				t.Fatalf("%v: pool broken after abort: ran %d/10000", s, n.Load())
			}
		})
	}
}

// TestGuardedDeadlineAborts: a timer-armed token stops a spinning region.
func TestGuardedDeadlineAborts(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	gd := guard.New().WithTimeout(10 * time.Millisecond)
	defer gd.Release()

	var err error
	func() {
		defer guard.Recover(&err)
		p.Guarded(gd).For(1<<40, Dynamic, func(i int64) {})
	}()
	if !errors.Is(err, guard.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// TestGuardedPreTrippedSkipsBody: a token tripped before dispatch aborts
// at the entry poll — zero body iterations run.
func TestGuardedPreTrippedSkipsBody(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	gd := guard.New()
	defer gd.Release()
	gd.Cancel()

	var ran atomic.Int64
	var err error
	func() {
		defer guard.Recover(&err)
		p.Guarded(gd).For(100, Static, func(i int64) { ran.Add(1) })
	}()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-tripped token still ran %d iterations", ran.Load())
	}
}

// TestGuardedNilTokenIsPlainPool: Guarded(nil) must be the pool itself —
// no wrapper, no polling, identical semantics.
func TestGuardedNilTokenIsPlainPool(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if ex := p.Guarded(nil); ex != Executor(p) {
		t.Fatalf("Guarded(nil) = %T, want *Pool itself", ex)
	}
}

// TestGuardedScheduleEquivalence: guarding must not change the
// iteration→worker assignment of any deterministic schedule.
func TestGuardedScheduleEquivalence(t *testing.T) {
	for _, s := range []Sched{Static, Blocked, Cyclic} {
		for _, n := range []int64{1, 7, 100, 5000} {
			p := NewPool(4)
			gd := guard.New()
			want := spawnAssignment(4, n, s)
			got := make([]int, n)
			p.Guarded(gd).ForTID(n, s, func(tid int, i int64) { got[i] = tid })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d: iteration %d ran on tid %d, want %d", s, n, i, got[i], want[i])
				}
			}
			gd.Release()
			p.Close()
		}
	}
}

// TestGuardedForConcurrent: a rendezvousing region under a pre-tripped
// token aborts before any tid's body runs (so no partial rendezvous can
// deadlock), and a live token runs all tids.
func TestGuardedForConcurrent(t *testing.T) {
	gd := guard.New()
	defer gd.Release()
	var ran atomic.Int64
	ForConcurrentGuarded(4, gd, func(tid int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("live token: ran %d/4 tids", ran.Load())
	}

	gd2 := guard.New()
	defer gd2.Release()
	gd2.Cancel()
	var err error
	var ran2 atomic.Int64
	func() {
		defer guard.Recover(&err)
		ForConcurrentGuarded(4, gd2, func(tid int) { ran2.Add(1) })
	}()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran2.Load() != 0 {
		t.Fatalf("canceled token still ran %d tids", ran2.Load())
	}
}

// TestGuardedSpawnFallback: the spawn-per-region path honors the token
// too (it is the closed-pool fallback, so cancellation must survive it).
func TestGuardedSpawnFallback(t *testing.T) {
	SetPooling(false)
	defer SetPooling(true)
	gd := guard.New()
	defer gd.Release()
	var seen atomic.Int64
	var err error
	func() {
		defer guard.Recover(&err)
		FixedGuarded(4, gd).For(1<<40, Static, func(i int64) {
			if seen.Add(1) == 100 {
				gd.Cancel()
			}
		})
	}()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("spawn fallback err = %v, want ErrCanceled", err)
	}
}

// TestGuardCancelLeakFree1000 is the tentpole's leak criterion: 1000
// timeout/cancel cycles on one pool, then zero leaked goroutines. The
// pool is reused across every cycle — cancellation reclaims its workers
// rather than abandoning them — and the final drain-and-diff proves no
// cycle left a worker, timer, or watcher behind.
func TestGuardCancelLeakFree1000(t *testing.T) {
	DrainPoolCache()
	leaks := testutil.Snapshot(t)

	p := NewPool(4)
	for cycle := 0; cycle < 1000; cycle++ {
		gd := guard.New()
		if cycle%2 == 0 {
			// Even cycles: explicit cancel mid-region.
			var seen atomic.Int64
			var err error
			func() {
				defer guard.Recover(&err)
				p.Guarded(gd).For(1<<40, Cyclic, func(i int64) {
					if seen.Add(1) == 500 {
						gd.Cancel()
					}
				})
			}()
			if !errors.Is(err, guard.ErrCanceled) {
				t.Fatalf("cycle %d: err = %v, want ErrCanceled", cycle, err)
			}
		} else {
			// Odd cycles: an already-expired deadline (poll-observed, no
			// timer wait needed — the timer fires immediately).
			gd.WithTimeout(time.Nanosecond)
			var err error
			func() {
				defer guard.Recover(&err)
				p.Guarded(gd).For(1<<40, Static, func(i int64) {})
			}()
			if !errors.Is(err, guard.ErrDeadlineExceeded) {
				t.Fatalf("cycle %d: err = %v, want ErrDeadlineExceeded", cycle, err)
			}
		}
		gd.Release()
	}
	// The same pool must still be fully functional after 1000 aborts.
	var n atomic.Int64
	p.For(10_000, Dynamic, func(i int64) { n.Add(1) })
	if n.Load() != 10_000 {
		t.Fatalf("pool degraded after 1000 cycles: ran %d/10000", n.Load())
	}
	p.Close()
	DrainPoolCache()
	leaks.Check(t)
}
