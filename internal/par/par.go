// Package par is the CPU execution substrate of the study. It reproduces
// the distinguishing features of the paper's two CPU programming models:
//
//   - the OpenMP model ("OMP"): a `parallel for` fork/join loop with
//     default (static) or dynamic scheduling (paper §2.11) and atomic,
//     critical, or clause reductions (§2.10.2). OpenMP (pre-5.1) has no
//     atomic min/max, so the OMP model's read-modify-write operations go
//     through a critical section (a single global mutex), which is the
//     mechanism behind the paper's Fig. 3/5/6 OpenMP-vs-C++ divergences.
//
//   - the C++ std::thread model ("CPP"): explicit per-thread loops with
//     blocked or cyclic iteration assignment (§2.12) and CAS-based
//     atomic min/max.
//
// Both models run on a fixed worker count. Parallel regions execute on
// persistent worker pools (see pool.go) so that per-region dispatch cost
// — goroutine creation and join — is amortized across the hundreds of
// rounds a single measurement runs; the iteration→worker assignment of
// every schedule is identical to spawning fresh goroutines per region.
package par

import (
	"runtime"
)

// Sched selects how loop iterations are assigned to threads.
type Sched int

const (
	// Static is OpenMP's default schedule: each thread receives one
	// contiguous chunk of iterations.
	Static Sched = iota
	// Dynamic assigns chunks of iterations at runtime from a shared
	// counter (OpenMP `schedule(dynamic)`).
	Dynamic
	// Blocked is the C++ model's contiguous-range assignment; it is
	// computationally identical to Static but named separately because
	// the paper treats the two model/schedule pairs as distinct styles.
	Blocked
	// Cyclic assigns iterations round-robin with stride = thread count.
	Cyclic
)

func (s Sched) String() string {
	switch s {
	case Static:
		return "default"
	case Dynamic:
		return "dynamic"
	case Blocked:
		return "blocked"
	case Cyclic:
		return "cyclic"
	}
	return "unknown"
}

// dynChunk is the grain of the dynamic schedule. OpenMP's default dynamic
// chunk is 1; a chunk of 1 reproduces the paper's observation that the
// dynamic schedule's runtime overhead usually outweighs its load-balance
// benefit on these inputs (§5.11).
const dynChunk = 1

// Threads returns the worker count used by default: the machine's
// parallelism, matching the paper's one-thread-per-core setup (§4.3).
func Threads() int { return runtime.GOMAXPROCS(0) }

// For executes body(i) for every i in [0, n) on t logical threads using
// the given schedule, and returns when all iterations are complete. A
// panic in any worker is re-raised on the calling goroutine after the
// join, so callers (and the sweep supervisor above them) can recover it.
//
// Execution runs on a pooled worker set acquired per region from a
// process-wide free list; pass an explicit *Pool (algo.Options.Pool) to
// pin one pool across regions instead.
func For(t int, n int64, s Sched, body func(i int64)) {
	if s < Static || s > Cyclic {
		panic("par.For: unknown schedule")
	}
	forAny(t, n, s, body, nil, nil)
}

// ForTID is like For but also passes the worker id (0..t-1) to the body,
// which clause-style reductions and per-thread scratch buffers need.
// Like For, it re-raises worker panics on the calling goroutine.
func ForTID(t int, n int64, s Sched, body func(tid int, i int64)) {
	if s < Static || s > Cyclic {
		panic("par.ForTID: unknown schedule")
	}
	forAny(t, n, s, nil, body, nil)
}
