// Package par is the CPU execution substrate of the study. It reproduces
// the distinguishing features of the paper's two CPU programming models:
//
//   - the OpenMP model ("OMP"): a `parallel for` fork/join loop with
//     default (static) or dynamic scheduling (paper §2.11) and atomic,
//     critical, or clause reductions (§2.10.2). OpenMP (pre-5.1) has no
//     atomic min/max, so the OMP model's read-modify-write operations go
//     through a critical section (a single global mutex), which is the
//     mechanism behind the paper's Fig. 3/5/6 OpenMP-vs-C++ divergences.
//
//   - the C++ std::thread model ("CPP"): explicit per-thread loops with
//     blocked or cyclic iteration assignment (§2.12) and CAS-based
//     atomic min/max.
//
// Both models run on goroutines pinned to a fixed worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sched selects how loop iterations are assigned to threads.
type Sched int

const (
	// Static is OpenMP's default schedule: each thread receives one
	// contiguous chunk of iterations.
	Static Sched = iota
	// Dynamic assigns chunks of iterations at runtime from a shared
	// counter (OpenMP `schedule(dynamic)`).
	Dynamic
	// Blocked is the C++ model's contiguous-range assignment; it is
	// computationally identical to Static but named separately because
	// the paper treats the two model/schedule pairs as distinct styles.
	Blocked
	// Cyclic assigns iterations round-robin with stride = thread count.
	Cyclic
)

func (s Sched) String() string {
	switch s {
	case Static:
		return "default"
	case Dynamic:
		return "dynamic"
	case Blocked:
		return "blocked"
	case Cyclic:
		return "cyclic"
	}
	return "unknown"
}

// dynChunk is the grain of the dynamic schedule. OpenMP's default dynamic
// chunk is 1; a chunk of 1 reproduces the paper's observation that the
// dynamic schedule's runtime overhead usually outweighs its load-balance
// benefit on these inputs (§5.11).
const dynChunk = 1

// Threads returns the worker count used by default: the machine's
// parallelism, matching the paper's one-thread-per-core setup (§4.3).
func Threads() int { return runtime.GOMAXPROCS(0) }

// For executes body(i) for every i in [0, n) on t goroutines using the
// given schedule, and returns when all iterations are complete. A panic
// in any worker is re-raised on the calling goroutine after the join,
// so callers (and the sweep supervisor above them) can recover it.
func For(t int, n int64, s Sched, body func(i int64)) {
	if n <= 0 {
		return
	}
	if t < 1 {
		t = 1
	}
	if int64(t) > n {
		t = int(n)
	}
	var wg sync.WaitGroup
	var tr trap
	wg.Add(t)
	switch s {
	case Static, Blocked:
		for tid := 0; tid < t; tid++ {
			go func(tid int64) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(int(tid))
				beg := tid * n / int64(t)
				end := (tid + 1) * n / int64(t)
				for i := beg; i < end; i++ {
					body(i)
				}
			}(int64(tid))
		}
	case Cyclic:
		for tid := 0; tid < t; tid++ {
			go func(tid int64) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(int(tid))
				for i := tid; i < n; i += int64(t) {
					body(i)
				}
			}(int64(tid))
		}
	case Dynamic:
		var next atomic.Int64
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				for {
					beg := next.Add(dynChunk) - dynChunk
					if beg >= n {
						return
					}
					end := beg + dynChunk
					if end > n {
						end = n
					}
					for i := beg; i < end; i++ {
						body(i)
					}
				}
			}(tid)
		}
	default:
		panic("par.For: unknown schedule")
	}
	wg.Wait()
	tr.rethrow()
}

// ForTID is like For but also passes the worker id (0..t-1) to the body,
// which clause-style reductions and per-thread scratch buffers need.
// Like For, it re-raises worker panics on the calling goroutine.
func ForTID(t int, n int64, s Sched, body func(tid int, i int64)) {
	if n <= 0 {
		return
	}
	if t < 1 {
		t = 1
	}
	if int64(t) > n {
		t = int(n)
	}
	var wg sync.WaitGroup
	var tr trap
	wg.Add(t)
	switch s {
	case Static, Blocked:
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				beg := int64(tid) * n / int64(t)
				end := int64(tid+1) * n / int64(t)
				for i := beg; i < end; i++ {
					body(tid, i)
				}
			}(tid)
		}
	case Cyclic:
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				for i := int64(tid); i < n; i += int64(t) {
					body(tid, i)
				}
			}(tid)
		}
	case Dynamic:
		var next atomic.Int64
		for tid := 0; tid < t; tid++ {
			go func(tid int) {
				defer wg.Done()
				defer tr.capture()
				chaosEnter(tid)
				for {
					beg := next.Add(dynChunk) - dynChunk
					if beg >= n {
						return
					}
					end := beg + dynChunk
					if end > n {
						end = n
					}
					for i := beg; i < end; i++ {
						body(tid, i)
					}
				}
			}(tid)
		}
	default:
		panic("par.ForTID: unknown schedule")
	}
	wg.Wait()
	tr.rethrow()
}
