package par

import (
	"sync/atomic"
	"testing"
)

const benchN = 1 << 16

func BenchmarkForSchedules(b *testing.B) {
	for _, s := range []Sched{Static, Dynamic, Blocked, Cyclic} {
		b.Run(s.String(), func(b *testing.B) {
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				For(0, benchN, s, func(j int64) {
					if j == benchN-1 {
						sink.Add(1)
					}
				})
			}
		})
	}
}

func BenchmarkSyncMin(b *testing.B) {
	impls := []Sync{CAS{}, &Critical{}}
	for _, s := range impls {
		b.Run(s.Name(), func(b *testing.B) {
			xs := make([]int32, 1024)
			b.RunParallel(func(pb *testing.PB) {
				i := int32(0)
				for pb.Next() {
					s.Min(&xs[i&1023], i)
					i++
				}
			})
		})
	}
}

func BenchmarkReduceStyles(b *testing.B) {
	for _, style := range []RedStyle{RedAtomic, RedCritical, RedClause} {
		b.Run(style.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ReduceInt64(0, benchN, Static, style, func(j int64) int64 { return j & 1 })
			}
		})
	}
}

func BenchmarkWorklistPush(b *testing.B) {
	w := NewWorklist(benchN + 64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if w.Size() >= benchN {
				// Not thread-safe in general, but adequate pressure relief
				// for a benchmark loop.
				w.Reset()
			}
			w.Push(1)
		}
	})
}
