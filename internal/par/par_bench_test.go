package par

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"indigo/internal/guard"
)

const benchN = 1 << 16

func BenchmarkForSchedules(b *testing.B) {
	for _, s := range []Sched{Static, Dynamic, Blocked, Cyclic} {
		b.Run(s.String(), func(b *testing.B) {
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				For(0, benchN, s, func(j int64) {
					if j == benchN-1 {
						sink.Add(1)
					}
				})
			}
		})
	}
}

func BenchmarkSyncMin(b *testing.B) {
	impls := []Sync{CAS{}, &Critical{}}
	for _, s := range impls {
		b.Run(s.Name(), func(b *testing.B) {
			xs := make([]int32, 1024)
			b.RunParallel(func(pb *testing.PB) {
				i := int32(0)
				for pb.Next() {
					s.Min(&xs[i&1023], i)
					i++
				}
			})
		})
	}
}

func BenchmarkReduceStyles(b *testing.B) {
	for _, style := range []RedStyle{RedAtomic, RedCritical, RedClause} {
		b.Run(style.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ReduceInt64(0, benchN, Static, style, func(j int64) int64 { return j & 1 })
			}
		})
	}
}

// BenchmarkDispatch measures per-region fork/join overhead — the cost
// the pool runtime exists to amortize — at small region sizes, where
// road-network frontiers live. "pooled" dispatches on one persistent
// Pool; "spawn" is the legacy spawn-per-region path. cmd/bench turns the
// pooled/spawn ratio into BENCH_pool.json.
func BenchmarkDispatch(b *testing.B) {
	for _, t := range []int{4, 8} {
		for _, n := range []int64{8, 64} {
			b.Run(fmt.Sprintf("pooled/t%d/n%d", t, n), func(b *testing.B) {
				p := NewPool(t)
				defer p.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.For(n, Static, func(int64) {})
				}
			})
			b.Run(fmt.Sprintf("spawn/t%d/n%d", t, n), func(b *testing.B) {
				defer SetPooling(true)
				SetPooling(false)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					For(t, n, Static, func(int64) {})
				}
			})
		}
	}
}

// BenchmarkDispatchGuarded puts a live (armed, never tripping) guard
// token next to the unguarded fast path at the same region size. The
// two sides should read within noise of each other: sub-stride shares
// run the exact unguarded loops, so a region only pays for guarding at
// the one dispatch-entry poll. cmd/bench -guard measures the same
// contrast end to end through a road-BFS run (BENCH_guard.json).
func BenchmarkDispatchGuarded(b *testing.B) {
	const t, n = 4, 64
	b.Run("unguarded", func(b *testing.B) {
		p := NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.For(n, Static, func(int64) {})
		}
	})
	b.Run("guarded", func(b *testing.B) {
		p := NewPool(t)
		defer p.Close()
		gd := guard.New().WithTimeout(time.Hour)
		defer gd.Release()
		ex := p.Guarded(gd)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ex.For(n, Static, func(int64) {})
		}
	})
}

// BenchmarkWorklistPushStyles compares a full region of pushes through
// the shared size counter against the per-worker reservation buffers.
func BenchmarkWorklistPushStyles(b *testing.B) {
	const t, n = 4, benchN
	b.Run("shared-counter", func(b *testing.B) {
		w := NewWorklist(n + 64)
		p := NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			p.ForTID(n, Static, func(tid int, j int64) { w.Push(int32(j)) })
		}
	})
	b.Run("reserved-blocks", func(b *testing.B) {
		w := NewWorklistTID(n+64, t)
		p := NewPool(t)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			p.ForTID(n, Static, func(tid int, j int64) { w.PushTID(tid, int32(j)) })
			w.Flush()
		}
	})
}

func BenchmarkWorklistPush(b *testing.B) {
	w := NewWorklist(benchN + 64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if w.Size() >= benchN {
				// Not thread-safe in general, but adequate pressure relief
				// for a benchmark loop.
				w.Reset()
			}
			w.Push(1)
		}
	})
}
