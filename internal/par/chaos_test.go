package par

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPanicReachesCaller: a panic inside a loop body must surface
// on the goroutine that called For/ForTID — a panic confined to a worker
// goroutine would kill the whole process, which the sweep supervisor
// could never recover from.
func TestWorkerPanicReachesCaller(t *testing.T) {
	for _, s := range []Sched{Static, Dynamic, Blocked, Cyclic} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Errorf("%v: body panic did not reach the caller", s)
					return
				}
				if msg, ok := p.(string); !ok || !strings.Contains(msg, "bad iteration") {
					t.Errorf("%v: panic value %v, want the body's", s, p)
				}
			}()
			For(4, 100, s, func(i int64) {
				if i == 37 {
					panic("bad iteration 37")
				}
			})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: ForTID body panic did not reach the caller", s)
				}
			}()
			ForTID(4, 100, s, func(tid int, i int64) {
				if i == 37 {
					panic("bad iteration 37")
				}
			})
		}()
	}
}

func TestChaosPanicInjection(t *testing.T) {
	defer SetChaos(nil)
	SetChaos(&Chaos{PanicMsg: "chaos strike"})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("injected panic did not reach the caller")
		}
		if msg, ok := p.(string); !ok || msg != "chaos strike" {
			t.Errorf("panic value %v, want the injected message", p)
		}
	}()
	For(4, 100, Static, func(i int64) {})
}

func TestChaosDelay(t *testing.T) {
	defer SetChaos(nil)
	SetChaos(&Chaos{Delay: 20 * time.Millisecond})
	start := time.Now()
	For(2, 10, Static, func(i int64) {})
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("delayed loop finished in %v, want >= 20ms", el)
	}
}

// TestChaosStall: a stalled loop must not complete until the stall
// channel is closed — the deterministic hang the supervisor's timeout
// tests rely on.
func TestChaosStall(t *testing.T) {
	defer SetChaos(nil)
	stall := make(chan struct{})
	SetChaos(&Chaos{Stall: stall})
	done := make(chan struct{})
	go func() {
		For(2, 10, Static, func(i int64) {})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stalled loop completed")
	case <-time.After(20 * time.Millisecond):
	}
	close(stall)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("loop did not complete after the stall was released")
	}
}

// TestChaosDropUpdates: both Sync realizations must lose their min/max
// writes while the fault is installed, and recover when it is removed.
func TestChaosDropUpdates(t *testing.T) {
	defer SetChaos(nil)
	SetChaos(&Chaos{DropUpdates: true})
	var crit Critical
	for _, s := range []Sync{CAS{}, &crit} {
		x := int32(100)
		if old := s.Min(&x, 5); old != 100 || x != 100 {
			t.Errorf("%s.Min under drops: old=%d x=%d, want update lost", s.Name(), old, x)
		}
		if old := s.Max(&x, 500); old != 100 || x != 100 {
			t.Errorf("%s.Max under drops: old=%d x=%d, want update lost", s.Name(), old, x)
		}
	}
	SetChaos(nil)
	x := int32(100)
	if (CAS{}).Min(&x, 5); x != 5 {
		t.Errorf("Min after chaos removed: x=%d, want 5", x)
	}
}

// TestChaosDisabledLoopsRunNormally guards the zero-fault fast path:
// with no chaos installed every iteration still runs exactly once.
func TestChaosDisabledLoopsRunNormally(t *testing.T) {
	SetChaos(nil)
	var n atomic.Int64
	For(4, 1000, Dynamic, func(i int64) { n.Add(1) })
	if n.Load() != 1000 {
		t.Errorf("ran %d iterations, want 1000", n.Load())
	}
}
