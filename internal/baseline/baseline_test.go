package baseline

import (
	"testing"

	"indigo/internal/algo/bfs"
	"indigo/internal/algo/cc"
	"indigo/internal/algo/pr"
	"indigo/internal/algo/sssp"
	"indigo/internal/algo/tc"
	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
)

const threads = 8

func inputs() []*graph.Graph {
	return gen.Suite(gen.Tiny)
}

func TestBFSDirOptMatchesSerial(t *testing.T) {
	for _, g := range inputs() {
		want := bfs.Serial(g, 0)
		got := BFSDirOpt(g, 0, threads, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: vertex %d level %d, want %d", g.Name, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPDeltaMatchesSerial(t *testing.T) {
	for _, g := range inputs() {
		want := sssp.Serial(g, 0)
		for _, delta := range []int32{1, 16, 64, 1024} {
			got := SSSPDelta(g, 0, threads, delta, nil)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s delta=%d: vertex %d dist %d, want %d", g.Name, delta, v, got[v], want[v])
				}
			}
		}
		// Default delta path.
		got := SSSPDelta(g, 0, threads, 0, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s default delta: vertex %d", g.Name, v)
			}
		}
	}
}

func TestCCJumpMatchesSerial(t *testing.T) {
	for _, g := range inputs() {
		want := cc.Serial(g)
		got := CCJump(g, threads, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: vertex %d label %d, want %d", g.Name, v, got[v], want[v])
			}
		}
	}
}

func TestPROptMatchesSerial(t *testing.T) {
	for _, g := range inputs() {
		want, _ := pr.Serial(g, 0.85, 1e-4, 200)
		got, iters := PROpt(g, threads, 0.85, 1e-4, 200, nil)
		if iters <= 0 {
			t.Fatalf("%s: no iterations", g.Name)
		}
		for v := range want {
			diff := float64(got[v] - want[v])
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.02*(1+float64(want[v])) {
				t.Fatalf("%s: vertex %d rank %g, want %g", g.Name, v, got[v], want[v])
			}
		}
	}
}

func TestTCOrientMatchesSerial(t *testing.T) {
	for _, g := range inputs() {
		want := tc.Serial(g)
		if got := TCOrient(g, threads, nil); got != want {
			t.Fatalf("%s: %d triangles, want %d", g.Name, got, want)
		}
	}
}

func TestMISLubyIsValidMIS(t *testing.T) {
	for _, g := range inputs() {
		inSet := MISLuby(g, threads, 42, nil)
		for v := int32(0); v < g.N; v++ {
			if inSet[v] {
				for _, u := range g.Neighbors(v) {
					if inSet[u] {
						t.Fatalf("%s: %d and %d adjacent and both in set", g.Name, v, u)
					}
				}
				continue
			}
			covered := false
			for _, u := range g.Neighbors(v) {
				if inSet[u] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("%s: vertex %d uncovered", g.Name, v)
			}
		}
	}
}

func TestOrientHalvesEdges(t *testing.T) {
	g := gen.Generate(gen.InputSocial, gen.Tiny)
	o := Orient(g)
	if int64(len(o.List)) != g.M()/2 {
		t.Fatalf("oriented list has %d entries, want %d", len(o.List), g.M()/2)
	}
	for v := int32(0); v < g.N; v++ {
		prev := int32(-1)
		for _, u := range o.List[o.Idx[v]:o.Idx[v+1]] {
			if u <= v {
				t.Fatalf("oriented edge %d->%d not ascending", v, u)
			}
			if u <= prev {
				t.Fatalf("oriented list of %d not sorted", v)
			}
			prev = u
		}
	}
}

func TestGPUBaselinesMatchSerial(t *testing.T) {
	for _, g := range inputs() {
		d := gpusim.New(gpusim.RTXSim())
		lv, st := GPUBFS(d, g, 0)
		if st.Cycles <= 0 {
			t.Errorf("%s: GPUBFS zero cycles", g.Name)
		}
		for v, want := range bfs.Serial(g, 0) {
			if lv[v] != want {
				t.Fatalf("%s: GPUBFS vertex %d = %d, want %d", g.Name, v, lv[v], want)
			}
		}
		dist, _ := GPUSSSP(d, g, 0)
		for v, want := range sssp.Serial(g, 0) {
			if dist[v] != want {
				t.Fatalf("%s: GPUSSSP vertex %d = %d, want %d", g.Name, v, dist[v], want)
			}
		}
		label, _ := GPUCC(d, g)
		for v, want := range cc.Serial(g) {
			if label[v] != want {
				t.Fatalf("%s: GPUCC vertex %d = %d, want %d", g.Name, v, label[v], want)
			}
		}
		if got, _ := GPUTC(d, g); got != tc.Serial(g) {
			t.Fatalf("%s: GPUTC = %d, want %d", g.Name, got, tc.Serial(g))
		}
		rank, iters, _ := GPUPR(d, g, 0.85, 1e-4, 200)
		if iters <= 0 {
			t.Fatalf("%s: GPUPR no iterations", g.Name)
		}
		want, _ := pr.Serial(g, 0.85, 1e-4, 200)
		for v := range want {
			diff := float64(rank[v] - want[v])
			if diff < 0 {
				diff = -diff
			}
			if diff > 0.02*(1+float64(want[v])) {
				t.Fatalf("%s: GPUPR vertex %d rank %g, want %g", g.Name, v, rank[v], want[v])
			}
		}
	}
}

func TestGPUTCBeatsNaiveCost(t *testing.T) {
	// Orientation should make the baseline cheaper than our unoptimized
	// edge-based TC on the clique-heavy input (it does half the merges
	// on half-length lists).
	g := gen.Generate(gen.InputCoPaper, gen.Tiny)
	d := gpusim.New(gpusim.RTXSim())
	_, st := GPUTC(d, g)
	if st.Cycles <= 0 {
		t.Fatal("no cost")
	}
}
