// Package baseline implements optimized third-party stand-ins for the
// paper's §5.17 comparison: the Lonestar CPU codes and Gardenia GPU
// codes. Each implementation carries the specific optimization the
// paper credits for the baseline's performance — direction-optimizing
// BFS, delta-stepping SSSP with a priority schedule, pointer-jumping
// CC, PageRank with precomputed contributions, and triangle counting
// with redundant-edge removal (orientation). MIS uses classic Luby
// rounds with fresh random priorities, which the paper found much
// slower than the suite's fixed-priority codes.
package baseline

import (
	"math/rand"
	"sync/atomic"

	"indigo/internal/graph"
	"indigo/internal/guard"
	"indigo/internal/par"
)

// BFSDirOpt is a direction-optimizing BFS (the GAP/Gardenia technique):
// top-down frontier expansion that switches to bottom-up sweeps when
// the frontier grows past a fraction of the graph. gd (which may be
// nil, like everywhere) is polled once per level, so baseline runs
// honor the same deadlines and cancellation as the suite's variants.
func BFSDirOpt(g *graph.Graph, src int32, threads int, gd *guard.Token) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = graph.Inf
	}
	level[src] = 0
	frontier := []int32{src}
	cur := int32(0)
	// Switch to bottom-up when the frontier exceeds n/alpha vertices.
	const alpha = 20
	for len(frontier) > 0 {
		gd.Poll()
		next := par.NewWorklist(int64(g.N) + 1)
		if int64(len(frontier)) > int64(g.N)/alpha {
			// Bottom-up: every unvisited vertex scans its neighbors for
			// a parent on the current level.
			par.For(threads, int64(g.N), par.Static, func(i int64) {
				v := int32(i)
				if atomic.LoadInt32(&level[v]) != graph.Inf {
					return
				}
				for _, u := range g.Neighbors(v) {
					if atomic.LoadInt32(&level[u]) == cur {
						atomic.StoreInt32(&level[v], cur+1)
						next.Push(v)
						return
					}
				}
			})
		} else {
			// Top-down: expand the frontier, claiming vertices with CAS.
			fr := frontier
			par.For(threads, int64(len(fr)), par.Static, func(i int64) {
				v := fr[i]
				for _, u := range g.Neighbors(v) {
					if atomic.CompareAndSwapInt32(&level[u], graph.Inf, cur+1) {
						next.Push(u)
					}
				}
			})
		}
		frontier = frontier[:0]
		for i := int64(0); i < next.Size(); i++ {
			frontier = append(frontier, next.Get(i))
		}
		cur++
	}
	return level
}

// SSSPDelta is delta-stepping SSSP (the Lonestar-style priority
// schedule): vertices are processed in buckets of width delta in
// ascending distance order, which avoids most of Bellman-Ford's wasted
// relaxations. gd is polled once per bucket pass.
func SSSPDelta(g *graph.Graph, src int32, threads int, delta int32, gd *guard.Token) []int32 {
	if delta <= 0 {
		delta = 32
	}
	if threads <= 0 {
		threads = par.Threads()
	}
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	buckets := [][]int32{{src}}
	getBucket := func(b int) *[]int32 {
		for len(buckets) <= b {
			buckets = append(buckets, nil)
		}
		return &buckets[b]
	}
	type pend struct {
		v int32
		b int
	}
	for b := 0; b < len(buckets); b++ {
		for len(buckets[b]) > 0 {
			gd.Poll()
			frontier := buckets[b]
			buckets[b] = nil
			pending := make([][]pend, threads)
			par.ForTID(threads, int64(len(frontier)), par.Static, func(tid int, i int64) {
				v := frontier[i]
				dv := atomic.LoadInt32(&dist[v])
				if int(dv/delta) != b {
					return // stale entry; v was improved into an earlier bucket
				}
				beg, end := g.NbrIdx[v], g.NbrIdx[v+1]
				for e := beg; e < end; e++ {
					u := g.NbrList[e]
					nd := dv + g.Weights[e]
					for {
						old := atomic.LoadInt32(&dist[u])
						if nd >= old {
							break
						}
						if atomic.CompareAndSwapInt32(&dist[u], old, nd) {
							pending[tid] = append(pending[tid], pend{u, int(nd / delta)})
							break
						}
					}
				}
			})
			for _, ps := range pending {
				for _, p := range ps {
					*getBucket(p.b) = append(*getBucket(p.b), p.v)
				}
			}
		}
	}
	return dist
}

// CCJump is min-label propagation accelerated with pointer jumping
// (the Shiloach-Vishkin-style shortcutting of the optimized CC codes):
// labels converge in O(log n) rounds instead of O(diameter). gd is
// polled once per hook round and once per jump round.
func CCJump(g *graph.Graph, threads int, gd *guard.Token) []int32 {
	label := make([]int32, g.N)
	for v := int32(0); v < g.N; v++ {
		label[v] = v
	}
	cas := par.CAS{}
	for {
		gd.Poll()
		var changed atomic.Int32
		// Hook: spread the smaller endpoint label across every edge.
		par.For(threads, g.M(), par.Static, func(e int64) {
			lu := atomic.LoadInt32(&label[g.Src[e]])
			lv := atomic.LoadInt32(&label[g.Dst[e]])
			switch {
			case lu < lv:
				if old := cas.Min(&label[g.Dst[e]], lu); lu < old {
					changed.Store(1)
				}
			case lv < lu:
				if old := cas.Min(&label[g.Src[e]], lv); lv < old {
					changed.Store(1)
				}
			}
		})
		// Jump: shortcut label chains (label[v] <- label[label[v]]).
		for {
			gd.Poll()
			var jumped atomic.Int32
			par.For(threads, int64(g.N), par.Static, func(i int64) {
				l := atomic.LoadInt32(&label[i])
				ll := atomic.LoadInt32(&label[l])
				if ll < l {
					if old := cas.Min(&label[i], ll); ll < old {
						jumped.Store(1)
					}
				}
			})
			if jumped.Load() == 0 {
				break
			}
		}
		if changed.Load() == 0 {
			break
		}
	}
	return label
}

// PROpt is optimized pull PageRank: per-iteration precomputed
// contribution array (one division per vertex instead of one per edge)
// and a clause-style reduction for the residual — the optimizations the
// suite's unoptimized codes deliberately lack. gd is polled once per
// iteration.
func PROpt(g *graph.Graph, threads int, damping float32, tol float64, maxIter int32, gd *guard.Token) ([]float32, int32) {
	n := int64(g.N)
	rank := make([]float32, n)
	next := make([]float32, n)
	contrib := make([]float32, n)
	for i := range rank {
		rank[i] = 1
	}
	base := 1 - damping
	var iters int32
	for iters < maxIter {
		gd.Poll()
		iters++
		par.For(threads, n, par.Static, func(i int64) {
			if d := g.Degree(int32(i)); d > 0 {
				contrib[i] = rank[i] / float32(d)
			}
		})
		residual := par.ReduceFloat64(threads, n, par.Static, par.RedClause, func(i int64) float64 {
			v := int32(i)
			var sum float32
			for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
				sum += contrib[g.NbrList[e]]
			}
			next[i] = base + damping*sum
			d := float64(next[i] - rank[i])
			if d < 0 {
				d = -d
			}
			return d
		})
		rank, next = next, rank
		if residual < tol {
			break
		}
	}
	return rank, iters
}

// Oriented builds the redundant-edge-removed adjacency (each undirected
// edge kept once, oriented toward the higher id), the optimization the
// paper credits for Gardenia's TC advantage.
type Oriented struct {
	Idx  []int64
	List []int32
}

// Orient constructs the oriented adjacency of g.
func Orient(g *graph.Graph) *Oriented {
	o := &Oriented{Idx: make([]int64, g.N+1)}
	for v := int32(0); v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				o.Idx[v+1]++
			}
		}
	}
	for v := int32(0); v < g.N; v++ {
		o.Idx[v+1] += o.Idx[v]
	}
	o.List = make([]int32, o.Idx[g.N])
	fill := append([]int64(nil), o.Idx[:g.N]...)
	for v := int32(0); v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				o.List[fill[v]] = u
				fill[v]++
			}
		}
	}
	return o
}

// TCOrient counts triangles over the oriented adjacency: for each
// oriented edge (v, u) it intersects the two out-lists, touching every
// triangle exactly once with half-length lists. TC has no rounds: gd is
// polled before the orientation build and before the counting pass, the
// two long serial stretches.
func TCOrient(g *graph.Graph, threads int, gd *guard.Token) int64 {
	gd.Poll()
	o := Orient(g)
	gd.Poll()
	return par.ReduceInt64(threads, int64(g.N), par.Static, par.RedClause, func(i int64) int64 {
		v := int32(i)
		var c int64
		for e := o.Idx[v]; e < o.Idx[v+1]; e++ {
			u := o.List[e]
			c += intersectSorted(o.List[o.Idx[v]:o.Idx[v+1]], o.List[o.Idx[u]:o.Idx[u+1]])
		}
		return c
	})
}

func intersectSorted(a, b []int32) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// MISLuby is classic Luby's algorithm with fresh random priorities per
// round, the style of the Lonestar baseline: correct and maximal but
// slower than fixed-priority local-max (it cannot reuse decisions
// across rounds and must re-randomize). gd is polled once per round.
func MISLuby(g *graph.Graph, threads int, seed int64, gd *guard.Token) []bool {
	const (
		undecided int32 = 0
		in        int32 = 1
		out       int32 = 2
	)
	status := make([]int32, g.N)
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) == 0 {
			status[v] = in
		}
	}
	prio := make([]uint32, g.N)
	rng := rand.New(rand.NewSource(seed))
	for {
		gd.Poll()
		// Fresh priorities each round (serial RNG, as in simple ports).
		remaining := false
		for v := int32(0); v < g.N; v++ {
			if status[v] == undecided {
				remaining = true
				prio[v] = rng.Uint32()
			}
		}
		if !remaining {
			break
		}
		par.For(threads, int64(g.N), par.Static, func(i int64) {
			v := int32(i)
			if atomic.LoadInt32(&status[v]) != undecided {
				return
			}
			for _, u := range g.Neighbors(v) {
				su := atomic.LoadInt32(&status[u])
				if su == in {
					// An In neighbor that has not marked v out yet still
					// blocks v.
					atomic.StoreInt32(&status[v], out)
					return
				}
				if su == undecided &&
					(prio[u] > prio[v] || (prio[u] == prio[v] && u > v)) {
					return
				}
			}
			atomic.StoreInt32(&status[v], in)
			for _, u := range g.Neighbors(v) {
				if atomic.LoadInt32(&status[u]) == undecided {
					atomic.StoreInt32(&status[u], out)
				}
			}
		})
	}
	inSet := make([]bool, g.N)
	for v := range status {
		inSet[v] = status[v] == in
	}
	return inSet
}
