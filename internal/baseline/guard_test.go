package baseline

import (
	"errors"
	"testing"

	"indigo/internal/guard"
)

// TestBaselinesHonorGuard: a tripped token aborts every CPU baseline at
// its next round checkpoint, surfacing as the sentinel via Recover —
// the same cooperative-cancellation contract the suite's variants obey.
func TestBaselinesHonorGuard(t *testing.T) {
	g := inputs()[0]
	runs := map[string]func(gd *guard.Token){
		"bfs":  func(gd *guard.Token) { BFSDirOpt(g, 0, threads, gd) },
		"sssp": func(gd *guard.Token) { SSSPDelta(g, 0, threads, 0, gd) },
		"cc":   func(gd *guard.Token) { CCJump(g, threads, gd) },
		"pr":   func(gd *guard.Token) { PROpt(g, threads, 0.85, 1e-4, 200, gd) },
		"tc":   func(gd *guard.Token) { TCOrient(g, threads, gd) },
		"mis":  func(gd *guard.Token) { MISLuby(g, threads, 42, gd) },
	}
	for name, run := range runs {
		gd := guard.New()
		gd.Cancel()
		err := func() (err error) {
			defer guard.Recover(&err)
			run(gd)
			return nil
		}()
		gd.Release()
		if !errors.Is(err, guard.ErrCanceled) {
			t.Errorf("%s: canceled baseline returned %v, want guard.ErrCanceled", name, err)
		}
	}
}
