package baseline

import (
	"indigo/internal/algo/gpu"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
)

// tpb is the baselines' launch width.
const tpb = 256

// GPUBFS is the Gardenia-style worklist-free BFS: two status arrays
// (current/next frontier flags) make the sweep as work-efficient as a
// data-driven code without worklist-maintenance overhead (§5.17).
func GPUBFS(d *gpusim.Device, g *graph.Graph, src int32) ([]int32, gpusim.Stats) {
	dg := gpu.Upload(d, g)
	n := int64(g.N)
	level := d.AllocI32(n)
	for i := int64(0); i < n; i++ {
		level.Host()[i] = graph.Inf
	}
	level.Host()[src] = 0
	cur := d.AllocI32(n)
	next := d.AllocI32(n)
	cur.Host()[src] = 1
	changed := d.AllocI32(1)
	var total gpusim.Stats
	grid := gpusim.GridSize(n, tpb)
	depth := int32(0)
	for {
		depth++
		lvl := depth
		changed.Host()[0] = 0
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
			base := w.Gidx(0)
			if base >= n {
				return
			}
			cnt := int(minI64(int64(gpusim.WarpSize), n-base))
			flags := w.CoalLdI32(cur, base, cnt)
			beg := w.CoalLdI64(dg.NbrIdx, base, cnt)
			end := w.CoalLdI64(dg.NbrIdx, base+1, cnt)
			for l := 0; l < cnt; l++ {
				if flags[l] == 0 {
					end[l] = beg[l]
				}
			}
			w.DivergentRanges(cnt, &beg, &end, 2, func(lane int, e int64) {
				u := w.LdI32(dg.NbrList, e)
				if w.AtomicMinI32(level, int64(u), lvl) > lvl {
					w.StI32(next, int64(u), 1)
					w.StI32(changed, 0, 1)
				}
			})
		}))
		if changed.Host()[0] == 0 {
			break
		}
		gpusim.SwapI32(cur, next)
		total.Add(clearI32(d, next))
	}
	out := make([]int32, n)
	copy(out, level.Host())
	return out, total
}

// GPUSSSP is the Gardenia-style two-array Bellman-Ford: an updated-flag
// array restricts each sweep to vertices whose distance changed,
// matching data-driven efficiency without a worklist (§5.17).
func GPUSSSP(d *gpusim.Device, g *graph.Graph, src int32) ([]int32, gpusim.Stats) {
	dg := gpu.Upload(d, g)
	n := int64(g.N)
	dist := d.AllocI32(n)
	for i := int64(0); i < n; i++ {
		dist.Host()[i] = graph.Inf
	}
	dist.Host()[src] = 0
	cur := d.AllocI32(n)
	next := d.AllocI32(n)
	cur.Host()[src] = 1
	changed := d.AllocI32(1)
	var total gpusim.Stats
	grid := gpusim.GridSize(n, tpb)
	for {
		changed.Host()[0] = 0
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
			base := w.Gidx(0)
			if base >= n {
				return
			}
			cnt := int(minI64(int64(gpusim.WarpSize), n-base))
			flags := w.CoalLdI32(cur, base, cnt)
			dv := w.CoalLdI32(dist, base, cnt)
			beg := w.CoalLdI64(dg.NbrIdx, base, cnt)
			end := w.CoalLdI64(dg.NbrIdx, base+1, cnt)
			for l := 0; l < cnt; l++ {
				if flags[l] == 0 || dv[l] >= graph.Inf {
					end[l] = beg[l]
				}
			}
			w.DivergentRanges(cnt, &beg, &end, 2, func(lane int, e int64) {
				u := w.LdI32(dg.NbrList, e)
				nd := dv[lane] + w.LdI32(dg.Weights, e)
				if w.AtomicMinI32(dist, int64(u), nd) > nd {
					w.StI32(next, int64(u), 1)
					w.StI32(changed, 0, 1)
				}
			})
		}))
		if changed.Host()[0] == 0 {
			break
		}
		gpusim.SwapI32(cur, next)
		total.Add(clearI32(d, next))
	}
	out := make([]int32, n)
	copy(out, dist.Host())
	return out, total
}

// GPUCC is min-label propagation with pointer jumping, converging in
// O(log n) rounds.
func GPUCC(d *gpusim.Device, g *graph.Graph) ([]int32, gpusim.Stats) {
	dg := gpu.Upload(d, g)
	n := int64(g.N)
	label := d.AllocI32(n)
	for v := int64(0); v < n; v++ {
		label.Host()[v] = int32(v)
	}
	changed := d.AllocI32(1)
	var total gpusim.Stats
	edgeGrid := gpusim.GridSize(dg.M, tpb)
	vertGrid := gpusim.GridSize(n, tpb)
	for {
		changed.Host()[0] = 0
		// Hook along edges.
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: edgeGrid, ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
			base := w.Gidx(0)
			if base >= dg.M {
				return
			}
			cnt := int(minI64(int64(gpusim.WarpSize), dg.M-base))
			src := w.CoalLdI32(dg.Src, base, cnt)
			dst := w.CoalLdI32(dg.Dst, base, cnt)
			w.Op(2)
			for l := 0; l < cnt; l++ {
				lu := w.LdI32(label, int64(src[l]))
				lv := w.LdI32(label, int64(dst[l]))
				if lu < lv {
					if w.AtomicMinI32(label, int64(dst[l]), lu) > lu {
						w.StI32(changed, 0, 1)
					}
				}
			}
		}))
		// Pointer jumping until stable.
		for {
			jumpFlag := d.AllocI32(1)
			total.Add(d.Launch(gpusim.LaunchCfg{Blocks: vertGrid, ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
				base := w.Gidx(0)
				if base >= n {
					return
				}
				cnt := int(minI64(int64(gpusim.WarpSize), n-base))
				ls := w.CoalLdI32(label, base, cnt)
				w.Op(1)
				for l := 0; l < cnt; l++ {
					ll := w.LdI32(label, int64(ls[l]))
					if ll < ls[l] {
						if w.AtomicMinI32(label, base+int64(l), ll) > ll {
							w.StI32(jumpFlag, 0, 1)
						}
					}
				}
			}))
			if jumpFlag.Host()[0] == 0 {
				break
			}
		}
		if changed.Host()[0] == 0 {
			break
		}
	}
	out := make([]int32, n)
	copy(out, label.Host())
	return out, total
}

// GPUPR is optimized pull PageRank: a precomputed per-vertex
// contribution array (Gardenia's optimization) plus a warp-reduced
// residual.
func GPUPR(d *gpusim.Device, g *graph.Graph, damping float32, tol float64, maxIter int32) ([]float32, int32, gpusim.Stats) {
	dg := gpu.Upload(d, g)
	n := int64(g.N)
	rank := d.AllocF32(n)
	next := d.AllocF32(n)
	contrib := d.AllocF32(n)
	resid := d.AllocF32(1)
	for v := int64(0); v < n; v++ {
		rank.HostSet(v, 1)
	}
	base := 1 - damping
	grid := gpusim.GridSize(n, tpb)
	var total gpusim.Stats
	var iters int32
	for iters < maxIter {
		iters++
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
			b := w.Gidx(0)
			if b >= n {
				return
			}
			cnt := int(minI64(int64(gpusim.WarpSize), n-b))
			rs := w.CoalLdF32(rank, b, cnt)
			beg := w.CoalLdI64(dg.NbrIdx, b, cnt)
			end := w.CoalLdI64(dg.NbrIdx, b+1, cnt)
			var out [gpusim.WarpSize]float32
			w.Op(2)
			for l := 0; l < cnt; l++ {
				if deg := end[l] - beg[l]; deg > 0 {
					out[l] = rs[l] / float32(deg)
				}
			}
			w.CoalStF32(contrib, b, cnt, &out)
		}))
		resid.HostSet(0, 0)
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: true}, func(w *gpusim.Warp) {
			var local float32
			b := w.Gidx(0)
			if b < n {
				cnt := int(minI64(int64(gpusim.WarpSize), n-b))
				olds := w.CoalLdF32(rank, b, cnt)
				beg := w.CoalLdI64(dg.NbrIdx, b, cnt)
				end := w.CoalLdI64(dg.NbrIdx, b+1, cnt)
				var sums [gpusim.WarpSize]float32
				w.DivergentRanges(cnt, &beg, &end, 2, func(lane int, e int64) {
					sums[lane] += w.LdF32(contrib, int64(w.LdI32(dg.NbrList, e)))
				})
				var news [gpusim.WarpSize]float32
				for l := 0; l < cnt; l++ {
					news[l] = base + damping*sums[l]
					d := news[l] - olds[l]
					if d < 0 {
						d = -d
					}
					local += d
				}
				w.CoalStF32(next, b, cnt, &news)
			}
			// Warp-reduced residual, one shared add per warp, one global
			// add per block.
			shared := w.SharedU32(1, 1)
			w.BlockAtomicAddF32(shared, 0, local)
			w.Sync()
			if w.WarpInBlock == 0 {
				w.AtomicAddF32(resid, 0, w.SharedLdF32(shared, 0))
			}
		}))
		rank, next = next, rank
		if float64(resid.HostGet(0)) < tol {
			break
		}
	}
	return rank.HostSlice(), iters, total
}

// GPUTC counts triangles over the redundant-edge-removed (oriented)
// adjacency with warp-per-vertex work distribution (coalesced list
// loads, fine-grained balance) and a warp-reduced count — Gardenia's
// winning combination (§5.17).
func GPUTC(d *gpusim.Device, g *graph.Graph) (int64, gpusim.Stats) {
	o := Orient(g)
	idx := d.UploadI64(o.Idx)
	list := d.UploadI32(o.List)
	n := int64(g.N)
	count := d.AllocI64(1)
	grid := gpusim.GridSize(n, tpb/gpusim.WarpSize)
	st := d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: true}, func(w *gpusim.Warp) {
		var local int64
		if v := w.GlobalWarp(); v < n {
			beg := w.LdI64(idx, v)
			end := w.LdI64(idx, v+1)
			// Coalesced chunks of v's oriented list; one merge per entry.
			for base := beg; base < end; base += gpusim.WarpSize {
				cnt := int(minI64(int64(gpusim.WarpSize), end-base))
				us := w.CoalLdI32(list, base, cnt)
				w.Op(2)
				for l := 0; l < cnt; l++ {
					local += intersectGPU(w, idx, list, v, int64(us[l]))
				}
			}
		}
		shared := w.SharedI64(1, 1)
		w.BlockAtomicAddI64(shared, 0, local)
		w.Sync()
		if w.WarpInBlock == 0 {
			w.AtomicAddI64(count, 0, w.SharedLdI64(shared, 0))
		}
	})
	return count.Host()[0], st
}

func intersectGPU(w *gpusim.Warp, idx *gpusim.I64, list *gpusim.I32, v, u int64) int64 {
	i, ie := w.LdI64(idx, v), w.LdI64(idx, v+1)
	j, je := w.LdI64(idx, u), w.LdI64(idx, u+1)
	var count int64
	for i < ie && j < je {
		a := w.LdI32(list, i)
		b := w.LdI32(list, j)
		w.Op(2)
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// clearI32 zeroes a device array with a coalesced kernel.
func clearI32(d *gpusim.Device, a *gpusim.I32) gpusim.Stats {
	n := a.Len()
	return d.Launch(gpusim.LaunchCfg{Blocks: gpusim.GridSize(n, tpb), ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
		base := w.Gidx(0)
		if base >= n {
			return
		}
		cnt := int(minI64(int64(gpusim.WarpSize), n-base))
		var zero [gpusim.WarpSize]int32
		w.CoalStI32(a, base, cnt, &zero)
	})
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
