// Package scratch provides reusable per-run working memory for variant
// sweeps. The paper's methodology is a census — many variants × inputs ×
// trials — so sweep wall-clock, not any single kernel, is the binding
// resource, and every run that make()s its full O(N)/O(M) working set
// from scratch puts the Go allocator and GC on the measurement's
// critical path (fresh pages also fault on first touch, which the timed
// region then pays). An Arena checks out cleared, capacity-reused slices
// and worklists from typed slab pools; Reset returns everything for the
// next run.
//
// Ownership discipline (see DESIGN.md §9):
//
//   - An Arena has a single owner at a time: checkouts and Reset are not
//     synchronized. A run may hand checked-out slices to its parallel
//     workers (that is the point), but only one goroutine drives the
//     checkout/Reset lifecycle.
//   - Reset invalidates every outstanding checkout. Results that alias
//     arena memory (e.g. algo.Result.Dist) must be consumed — verified,
//     copied, or dropped — before the owner resets for the next run.
//   - Retire marks the Arena defunct: every later checkout or Reset
//     panics. A supervisor that abandons a timed-out run retires the
//     run's arena and replaces it, so the zombie goroutine fails fast at
//     its next checkout instead of silently scribbling over a reused
//     slab.
//   - Objects from Of persist across Reset by design: they hold cached
//     kernel state (closures) whose run-varying fields are rebound every
//     run.
//
// A nil *Arena is valid everywhere and falls back to plain allocation,
// so the public API stays drop-in; SetEnabled(false) forces that
// fallback globally (the -scratch=off escape hatch).
package scratch

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"indigo/internal/guard"
	"indigo/internal/par"
)

// enabled gates arena use globally. When off, Acquire returns nil and
// every checkout helper allocates as if no arena were present, giving a
// one-flag escape hatch if slab reuse is ever suspected of masking or
// causing a bug.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles arena use process-wide (the -scratch flag).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether arena use is on.
func Enabled() bool { return enabled.Load() }

// sizeClass rounds a requested length up to its slab size class so that
// near-miss requests (n vs n+64) reuse the same slab.
func sizeClass(n int) int {
	const grain = 64
	if n < 0 {
		panic(fmt.Sprintf("scratch: negative length %d", n))
	}
	return (n + grain - 1) / grain * grain
}

// resetter is the type-erased view of a pool that Reset iterates.
type resetter interface{ reset() }

// pool is the per-element-type slab pool: checked-out slices in order,
// and free slabs awaiting reuse.
type pool[T any] struct {
	free [][]T
	used [][]T
}

// take returns a cleared slice of length n backed by the smallest free
// slab that fits (best fit keeps checkout sequences deterministic run to
// run, which is what makes the steady state allocation-free), or a fresh
// slab rounded up to the size class. Fresh slabs — the only point where
// an arena actually grows — are charged against gd's byte budget, so a
// budgeted run fails with guard.ErrBudgetExceeded at the allocation that
// would have overdrawn it instead of OOMing the process. Reused slabs
// are free: they were paid for when first allocated.
func (p *pool[T]) take(n int, gd *guard.Token) []T {
	c := sizeClass(n)
	best := -1
	for i, s := range p.free {
		if cap(s) >= c && (best < 0 || cap(s) < cap(p.free[best])) {
			best = i
		}
	}
	var s []T
	if best >= 0 {
		last := len(p.free) - 1
		s = p.free[best]
		p.free[best] = p.free[last]
		p.free = p.free[:last]
	} else {
		var zero T
		gd.Charge(int64(c) * int64(unsafe.Sizeof(zero)))
		s = make([]T, c)
	}
	s = s[:n]
	clear(s) // same contract as make: checkouts start zeroed
	p.used = append(p.used, s[:cap(s)])
	return s
}

func (p *pool[T]) reset() {
	if poisonEnabled {
		for _, s := range p.used {
			poison(s)
		}
	}
	p.free = append(p.free, p.used...)
	clear(p.used) // drop slab refs so used can shrink-reuse safely
	p.used = p.used[:0]
}

// Arena is one run-at-a-time scratch allocator. The zero value is not
// usable; call New.
type Arena struct {
	retired atomic.Bool
	slabs   map[reflect.Type]any // *pool[T], keyed by (*T)(nil)'s type
	objs    map[reflect.Type]any // *T singletons from Of
	lists   []resetter
	wlFree  []*par.Worklist
	wlUsed  []*par.Worklist
	// gd is the guard token fresh allocations are charged against; nil
	// (and every reused checkout) charges nothing. Set per run by the
	// supervisor via SetGuard.
	gd *guard.Token
}

// SetGuard installs (or, with nil, removes) the guard token the arena
// charges fresh slab and worklist allocations against. Call it from the
// arena's owning goroutine alongside Reset, before handing the arena to
// a run.
func (a *Arena) SetGuard(gd *guard.Token) {
	if a != nil {
		a.gd = gd
	}
}

// New creates an empty Arena.
func New() *Arena {
	return &Arena{
		slabs: map[reflect.Type]any{},
		objs:  map[reflect.Type]any{},
	}
}

func (a *Arena) live(op string) {
	if a.retired.Load() {
		panic("scratch: " + op + " on retired Arena (run was abandoned by its supervisor)")
	}
}

// Slice checks out a cleared []T of length n. A nil arena (or disabled
// package) allocates plainly, preserving allocate-per-run behavior.
func Slice[T any](a *Arena, n int) []T {
	if a == nil || !enabled.Load() {
		return make([]T, n)
	}
	a.live("checkout")
	key := reflect.TypeOf((*T)(nil))
	if v, ok := a.slabs[key]; ok {
		return v.(*pool[T]).take(n, a.gd)
	}
	p := &pool[T]{}
	a.slabs[key] = p
	a.lists = append(a.lists, p)
	return p.take(n, a.gd)
}

// Of returns the arena's singleton *T, created zeroed on first use.
// Unlike Slice checkouts it survives Reset: it is for cached kernel
// contexts (closures and their captured state), which rebind their
// run-varying fields at the start of every run. A nil arena returns a
// fresh zeroed *T, reproducing build-per-run behavior.
func Of[T any](a *Arena) *T {
	if a == nil || !enabled.Load() {
		return new(T)
	}
	a.live("checkout")
	key := reflect.TypeOf((*T)(nil))
	if v, ok := a.objs[key]; ok {
		return v.(*T)
	}
	p := new(T)
	a.objs[key] = p
	return p
}

// Typed checkout conveniences (all nil-arena safe).

// Int32 checks out a cleared []int32 of length n.
func (a *Arena) Int32(n int) []int32 { return Slice[int32](a, n) }

// Int64 checks out a cleared []int64 of length n.
func (a *Arena) Int64(n int) []int64 { return Slice[int64](a, n) }

// Float32 checks out a cleared []float32 of length n.
func (a *Arena) Float32(n int) []float32 { return Slice[float32](a, n) }

// Bool checks out a cleared []bool of length n.
func (a *Arena) Bool(n int) []bool { return Slice[bool](a, n) }

// Worklist checks out an empty worklist with at least the given capacity
// and per-worker reservation buffers for t workers. Reused worklists may
// have grown past the requested capacity in earlier runs (high-water
// marks persist, which is what lets repeat runs skip their growth
// rounds). A nil arena builds a fresh worklist.
func (a *Arena) Worklist(capacity int64, t int) *par.Worklist {
	if a == nil || !enabled.Load() {
		return par.NewWorklistTID(capacity, t)
	}
	a.live("checkout")
	best := -1
	for i, w := range a.wlFree {
		if w.Cap() >= capacity && (best < 0 || w.Cap() < a.wlFree[best].Cap()) {
			best = i
		}
	}
	var w *par.Worklist
	if best >= 0 {
		last := len(a.wlFree) - 1
		w = a.wlFree[best]
		a.wlFree[best] = a.wlFree[last]
		a.wlFree = a.wlFree[:last]
		w.Reset()
		w.EnsureWidth(t)
	} else {
		c := int64(sizeClass(int(capacity)))
		a.gd.Charge(c * 4) // int32 items; reservation buffers are noise
		w = par.NewWorklistTID(c, t)
	}
	a.wlUsed = append(a.wlUsed, w)
	return w
}

// Reset returns every checkout to the free lists for reuse. Outstanding
// slices and worklists from before the Reset are invalidated: the owner
// must be done with them (results consumed) before calling it.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.live("Reset")
	for _, p := range a.lists {
		p.reset()
	}
	a.wlFree = append(a.wlFree, a.wlUsed...)
	clear(a.wlUsed)
	a.wlUsed = a.wlUsed[:0]
}

// Retire marks the arena defunct: every later checkout or Reset panics.
// Supervisors retire (and replace) the arena of an abandoned timed-out
// run so the still-running goroutine fails fast instead of racing a
// reused slab. Retire is idempotent and safe to call concurrently with
// the abandoned owner's checkouts.
func (a *Arena) Retire() {
	if a != nil {
		a.retired.Store(true)
	}
}

// Retired reports whether Retire has been called.
func (a *Arena) Retired() bool { return a != nil && a.retired.Load() }

// arenaCache is the process-wide free list: arenas keep their slabs
// across Acquire/Release, so a released arena is "warm" — the next run
// of the same shape checks out without allocating.
var arenaCache struct {
	sync.Mutex
	free []*Arena
}

// Acquire returns a reset arena from the free list (or a fresh one), or
// nil when arenas are disabled — callers treat nil as "run without".
func Acquire() *Arena {
	if !enabled.Load() {
		return nil
	}
	arenaCache.Lock()
	if n := len(arenaCache.free); n > 0 {
		a := arenaCache.free[n-1]
		arenaCache.free = arenaCache.free[:n-1]
		arenaCache.Unlock()
		return a
	}
	arenaCache.Unlock()
	return New()
}

// Release resets a and returns it to the free list. Results aliasing
// a's memory must be dead by now: the next Acquire hands its slabs to
// an arbitrary other run. Retired and nil arenas are dropped.
func Release(a *Arena) {
	if a == nil || a.Retired() {
		return
	}
	a.Reset()
	arenaCache.Lock()
	arenaCache.free = append(arenaCache.free, a)
	arenaCache.Unlock()
}
