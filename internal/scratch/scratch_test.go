package scratch

import (
	"testing"
)

func TestSliceClearedAndReused(t *testing.T) {
	a := New()
	s := a.Int32(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("fresh checkout not zeroed at %d", i)
		}
		s[i] = int32(i) + 1
	}
	a.Reset()
	s2 := a.Int32(100)
	if !poisonEnabled && &s[0] != &s2[0] {
		t.Fatalf("same-size checkout after Reset did not reuse the slab")
	}
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("reused checkout not cleared at %d (got %d)", i, s2[i])
		}
	}
}

func TestSizeClassReuse(t *testing.T) {
	a := New()
	s := a.Int64(100) // rounds to 128
	a.Reset()
	s2 := a.Int64(120) // same class
	if &s[0] != &s2[0] {
		t.Fatalf("same size class should reuse the slab")
	}
	a.Reset()
	s3 := a.Int64(130) // next class: fresh slab
	if &s[0] == &s3[0] {
		t.Fatalf("larger request must not reuse a too-small slab")
	}
}

func TestBestFitPrefersSmallestSlab(t *testing.T) {
	a := New()
	big := a.Int32(10_000)
	small := a.Int32(64)
	a.Reset()
	got := a.Int32(64)
	if &got[0] != &small[0] {
		t.Fatalf("best fit should hand out the small slab, not cap %d", cap(big))
	}
}

func TestDistinctTypesDistinctPools(t *testing.T) {
	a := New()
	_ = a.Int32(64)
	_ = a.Float32(64)
	_ = a.Bool(64)
	_ = a.Int64(64)
	a.Reset()
	// No interference: each type gets its own slab back.
	if len(a.slabs) != 4 {
		t.Fatalf("expected 4 typed pools, got %d", len(a.slabs))
	}
}

func TestOfPersistsAcrossReset(t *testing.T) {
	type ctx struct{ x int }
	a := New()
	c := Of[ctx](a)
	if c.x != 0 {
		t.Fatalf("Of must start zeroed")
	}
	c.x = 7
	a.Reset()
	c2 := Of[ctx](a)
	if c2 != c || c2.x != 7 {
		t.Fatalf("Of singleton must survive Reset")
	}
}

func TestNilArenaFallsBack(t *testing.T) {
	var a *Arena
	s := a.Int32(10)
	if len(s) != 10 {
		t.Fatalf("nil arena Int32 len = %d", len(s))
	}
	w := a.Worklist(32, 2)
	w.Push(5)
	if w.Size() != 1 {
		t.Fatalf("nil arena worklist broken")
	}
	a.Reset() // must not panic
	type ctx struct{ x int }
	if c := Of[ctx](a); c == nil || c.x != 0 {
		t.Fatalf("nil arena Of must return fresh zeroed object")
	}
}

func TestWorklistCheckoutReusesAndResizes(t *testing.T) {
	a := New()
	w := a.Worklist(100, 2)
	if w.Cap() < 100 || w.Width() < 2 {
		t.Fatalf("cap %d width %d", w.Cap(), w.Width())
	}
	w.Push(1)
	w.Push(2)
	a.Reset()
	w2 := a.Worklist(50, 4)
	if w2 != w {
		t.Fatalf("reusable worklist not reused")
	}
	if w2.Size() != 0 {
		t.Fatalf("reused worklist not reset: size %d", w2.Size())
	}
	if w2.Width() < 4 {
		t.Fatalf("reused worklist width %d, want >= 4", w2.Width())
	}
}

func TestRetiredArenaPanics(t *testing.T) {
	a := New()
	_ = a.Int32(8)
	a.Retire()
	if !a.Retired() {
		t.Fatalf("Retired() false after Retire")
	}
	for name, f := range map[string]func(){
		"slice":    func() { _ = a.Int32(8) },
		"worklist": func() { _ = a.Worklist(8, 1) },
		"reset":    func() { a.Reset() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on retired arena did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAcquireReleaseKeepsSlabsWarm(t *testing.T) {
	a := Acquire()
	if a == nil {
		t.Fatalf("Acquire returned nil with arenas enabled")
	}
	s := a.Int32(256)
	s[0] = 42
	Release(a)
	b := Acquire()
	if b != a {
		// Another test may have raced the free list; don't assert
		// identity strictly, but a reacquired arena must be reset.
		Release(b)
		return
	}
	s2 := b.Int32(256)
	if &s2[0] != &s[0] {
		t.Fatalf("reacquired arena lost its slab")
	}
	if s2[0] != 0 {
		t.Fatalf("reacquired checkout not cleared")
	}
	Release(b)
}

func TestDisabledPackageBypassesArena(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	if Acquire() != nil {
		t.Fatalf("Acquire must return nil when disabled")
	}
	a := New()
	s1 := a.Int32(64)
	a.Reset() // resets nothing checked out through the arena
	s2 := a.Int32(64)
	if &s1[0] == &s2[0] {
		t.Fatalf("disabled package must allocate plainly, not reuse")
	}
}

func TestStableCheckoutSequenceDoesNotAllocate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	a := New()
	run := func() {
		_ = a.Int32(1000)
		_ = a.Int64(500)
		_ = a.Float32(1000)
		_ = a.Bool(1000)
		w := a.Worklist(1064, 4)
		w.Push(3)
		a.Reset()
	}
	run() // warm: populates the slab pools
	run()
	allocs := testing.AllocsPerRun(20, run)
	if allocs != 0 {
		t.Fatalf("steady-state checkout sequence allocates %.1f/run, want 0", allocs)
	}
}
