//go:build scratchpoison

package scratch

import "unsafe"

// poisonEnabled: built with -tags scratchpoison, Reset fills freed slabs
// with 0xA5 bytes so any use-after-Reset read yields conspicuous garbage
// (huge negative distances, out-of-range vertex ids) rather than
// plausible stale values. Checkouts still hand out zeroed memory, so
// correct code behaves identically.
const poisonEnabled = true

func poison[T any](s []T) {
	if len(s) == 0 {
		return
	}
	var zero T
	size := unsafe.Sizeof(zero)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), uintptr(len(s))*size)
	for i := range b {
		b[i] = 0xA5
	}
}
