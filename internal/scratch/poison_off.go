//go:build !scratchpoison

package scratch

// poisonEnabled selects whether Reset scribbles a recognizable pattern
// over freed slabs. Off by default; build with -tags scratchpoison to
// turn use-after-Reset reads into conspicuous garbage (0xA5 bytes)
// instead of plausible stale values.
const poisonEnabled = false

func poison[T any](s []T) {}
