// Package pr implements the PageRank family in the unnormalized
// formulation r[v] = (1-d) + d * sum(r[u]/deg(u)) over neighbors u,
// whose steady-state ranks sum to the vertex count. Ranks are float32
// (the paper's 32-bit data type); PR is vertex-based and
// topology-driven only (Table 2), with push deterministic-only (§5.6)
// and the per-iteration residual computed with the configured reduction
// style (§2.10).
package pr

import (
	"math"
	"sync/atomic"
	"unsafe"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Serial runs Jacobi PageRank iterations until the total residual drops
// below tol; it is the verification reference.
func Serial(g *graph.Graph, damping float32, tol float64, maxIter int32) ([]float32, int32) {
	rank := make([]float32, g.N)
	next := make([]float32, g.N)
	for v := range rank {
		rank[v] = 1
	}
	base := 1 - damping
	var iters int32
	for iters < maxIter {
		iters++
		var residual float64
		for v := int32(0); v < g.N; v++ {
			var sum float32
			for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
				u := g.NbrList[e]
				sum += rank[u] / float32(g.Degree(u))
			}
			next[v] = base + damping*sum
			residual += math.Abs(float64(next[v] - rank[v]))
		}
		rank, next = next, rank
		if residual < tol {
			break
		}
	}
	return rank, iters
}

// cpuCtx holds one PageRank run's working state plus the loop bodies,
// built once and cached on the scratch arena. The bodies capture only
// the context pointer and read the current rank/next slices through it,
// which keeps the per-iteration buffer swap visible to them without
// rebuilding closures.
type cpuCtx struct {
	g             *graph.Graph
	damping, base float32
	rank, next    []float32
	red           par.Reducer

	gsBody    func(i int64) float64
	jacBody   func(i int64) float64
	resBody   func(i int64) float64
	clearBody func(i int64)
	pushBody  func(i int64)
}

func (c *cpuCtx) bind(g *graph.Graph, damping float32, a *scratch.Arena) {
	c.g = g
	c.damping, c.base = damping, 1-damping
	c.rank = scratch.Slice[float32](a, int(g.N))
	c.next = scratch.Slice[float32](a, int(g.N))
	if c.gsBody != nil {
		return
	}
	c.gsBody = func(i int64) float64 {
		g := c.g
		v := int32(i)
		var sum float32
		for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
			u := g.NbrList[e]
			sum += loadFloat32(&c.rank[u]) / float32(g.Degree(u))
		}
		nv := c.base + c.damping*sum
		old := loadFloat32(&c.rank[v])
		storeFloat32(&c.rank[v], nv)
		return math.Abs(float64(nv - old))
	}
	c.jacBody = func(i int64) float64 {
		g := c.g
		v := int32(i)
		var sum float32
		for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
			u := g.NbrList[e]
			sum += c.rank[u] / float32(g.Degree(u))
		}
		c.next[v] = c.base + c.damping*sum
		return math.Abs(float64(c.next[v] - c.rank[v]))
	}
	c.resBody = func(i int64) float64 {
		return math.Abs(float64(c.next[i] - c.rank[i]))
	}
	c.clearBody = func(i int64) { c.next[i] = c.base }
	c.pushBody = func(i int64) {
		g := c.g
		v := int32(i)
		contrib := c.damping * c.rank[v] / float32(g.Degree(v))
		for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
			atomicAddFloat32(&c.next[g.NbrList[e]], contrib)
		}
	}
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	sched := algo.SchedOf(cfg)
	red := algo.RedOf(cfg)
	ex := opt.Exec()
	c := scratch.Of[cpuCtx](opt.Scratch)
	c.bind(g, float32(opt.PRDamping), opt.Scratch)
	for v := range c.rank {
		c.rank[v] = 1
	}

	var iters int32
	switch {
	case cfg.Flow == styles.Pull && cfg.Det == styles.NonDeterministic:
		// In-place (Gauss-Seidel-flavored) pull: same-iteration updates
		// are visible, so convergence is faster but internally timing
		// dependent (§2.6).
		for iters < opt.MaxIter {
			iters++
			residual := c.red.Float64(ex, int64(g.N), sched, red, c.gsBody)
			if residual < opt.PRTol {
				break
			}
		}
	case cfg.Flow == styles.Pull: // deterministic Jacobi
		for iters < opt.MaxIter {
			iters++
			residual := c.red.Float64(ex, int64(g.N), sched, red, c.jacBody)
			c.rank, c.next = c.next, c.rank
			if residual < opt.PRTol {
				break
			}
		}
	default: // push, deterministic only (styles rule 5)
		for iters < opt.MaxIter {
			iters++
			ex.For(int64(g.N), sched, c.clearBody)
			ex.For(int64(g.N), sched, c.pushBody)
			residual := c.red.Float64(ex, int64(g.N), sched, red, c.resBody)
			c.rank, c.next = c.next, c.rank
			if residual < opt.PRTol {
				break
			}
		}
	}
	return algo.Result{Rank: c.rank, Iterations: iters}
}

// loadFloat32 / storeFloat32 are the atomic scalar accesses the paper
// assumes for shared data (§2.5).
func loadFloat32(p *float32) float32 {
	return math.Float32frombits(atomic.LoadUint32((*uint32)(unsafe.Pointer(p))))
}

func storeFloat32(p *float32, v float32) {
	atomic.StoreUint32((*uint32)(unsafe.Pointer(p)), math.Float32bits(v))
}

// atomicAddFloat32 adds v to *p with a CAS loop over the bit pattern.
func atomicAddFloat32(p *float32, v float32) {
	addr := (*uint32)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint32(addr)
		nv := math.Float32bits(math.Float32frombits(old) + v)
		if atomic.CompareAndSwapUint32(addr, old, nv) {
			return
		}
	}
}
