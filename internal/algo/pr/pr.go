// Package pr implements the PageRank family in the unnormalized
// formulation r[v] = (1-d) + d * sum(r[u]/deg(u)) over neighbors u,
// whose steady-state ranks sum to the vertex count. Ranks are float32
// (the paper's 32-bit data type); PR is vertex-based and
// topology-driven only (Table 2), with push deterministic-only (§5.6)
// and the per-iteration residual computed with the configured reduction
// style (§2.10).
package pr

import (
	"math"
	"sync/atomic"
	"unsafe"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/styles"
)

// Serial runs Jacobi PageRank iterations until the total residual drops
// below tol; it is the verification reference.
func Serial(g *graph.Graph, damping float32, tol float64, maxIter int32) ([]float32, int32) {
	rank := make([]float32, g.N)
	next := make([]float32, g.N)
	for v := range rank {
		rank[v] = 1
	}
	base := 1 - damping
	var iters int32
	for iters < maxIter {
		iters++
		var residual float64
		for v := int32(0); v < g.N; v++ {
			var sum float32
			for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
				u := g.NbrList[e]
				sum += rank[u] / float32(g.Degree(u))
			}
			next[v] = base + damping*sum
			residual += math.Abs(float64(next[v] - rank[v]))
		}
		rank, next = next, rank
		if residual < tol {
			break
		}
	}
	return rank, iters
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	damping := float32(opt.PRDamping)
	base := 1 - damping
	sched := algo.SchedOf(cfg)
	red := algo.RedOf(cfg)
	ex := opt.Exec()
	rank := make([]float32, g.N)
	for v := range rank {
		rank[v] = 1
	}

	var iters int32
	switch {
	case cfg.Flow == styles.Pull && cfg.Det == styles.NonDeterministic:
		// In-place (Gauss-Seidel-flavored) pull: same-iteration updates
		// are visible, so convergence is faster but internally timing
		// dependent (§2.6).
		for iters < opt.MaxIter {
			iters++
			residual := par.ReduceFloat64On(ex, int64(g.N), sched, red, func(i int64) float64 {
				v := int32(i)
				var sum float32
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					u := g.NbrList[e]
					sum += loadFloat32(&rank[u]) / float32(g.Degree(u))
				}
				nv := base + damping*sum
				old := loadFloat32(&rank[v])
				storeFloat32(&rank[v], nv)
				return math.Abs(float64(nv - old))
			})
			if residual < opt.PRTol {
				break
			}
		}
	case cfg.Flow == styles.Pull: // deterministic Jacobi
		next := make([]float32, g.N)
		for iters < opt.MaxIter {
			iters++
			residual := par.ReduceFloat64On(ex, int64(g.N), sched, red, func(i int64) float64 {
				v := int32(i)
				var sum float32
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					u := g.NbrList[e]
					sum += rank[u] / float32(g.Degree(u))
				}
				next[v] = base + damping*sum
				return math.Abs(float64(next[v] - rank[v]))
			})
			rank, next = next, rank
			if residual < opt.PRTol {
				break
			}
		}
	default: // push, deterministic only (styles rule 5)
		next := make([]float32, g.N)
		for iters < opt.MaxIter {
			iters++
			ex.For(int64(g.N), sched, func(i int64) {
				next[i] = base
			})
			ex.For(int64(g.N), sched, func(i int64) {
				v := int32(i)
				contrib := damping * rank[v] / float32(g.Degree(v))
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					atomicAddFloat32(&next[g.NbrList[e]], contrib)
				}
			})
			residual := par.ReduceFloat64On(ex, int64(g.N), sched, red, func(i int64) float64 {
				return math.Abs(float64(next[i] - rank[i]))
			})
			rank, next = next, rank
			if residual < opt.PRTol {
				break
			}
		}
	}
	return algo.Result{Rank: rank, Iterations: iters}
}

// loadFloat32 / storeFloat32 are the atomic scalar accesses the paper
// assumes for shared data (§2.5).
func loadFloat32(p *float32) float32 {
	return math.Float32frombits(atomic.LoadUint32((*uint32)(unsafe.Pointer(p))))
}

func storeFloat32(p *float32, v float32) {
	atomic.StoreUint32((*uint32)(unsafe.Pointer(p)), math.Float32bits(v))
}

// atomicAddFloat32 adds v to *p with a CAS loop over the bit pattern.
func atomicAddFloat32(p *float32, v float32) {
	addr := (*uint32)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint32(addr)
		nv := math.Float32bits(math.Float32frombits(old) + v)
		if atomic.CompareAndSwapUint32(addr, old, nv) {
			return
		}
	}
}
