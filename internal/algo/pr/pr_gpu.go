package pr

import (
	"math"

	"indigo/internal/algo"
	"indigo/internal/algo/gpu"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

const tpb = 256

// sharedResidTag identifies the block's shared residual accumulator.
const sharedResidTag = 1

// RunGPU executes the CUDA-model variant selected by cfg on device d and
// returns the result plus the simulated cost. PR's GPU dimensions are
// flow (push is deterministic-only), determinism, granularity,
// persistence, and the GPU reduction style used for the per-iteration
// residual (§2.10.1); CudaAtomic does not apply (no float support).
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, gpusim.Stats) {
	opt = opt.Defaults(g.N)
	dg := gpu.Upload(d, g)
	damping := float32(opt.PRDamping)
	base := 1 - damping
	n := int64(g.N)

	rank := d.AllocF32(n)
	for v := int64(0); v < n; v++ {
		rank.HostSet(v, 1)
	}
	resid := d.AllocF32(1)

	var total gpusim.Stats
	var iters int32
	needsBarrier := cfg.GPURed != styles.GlobalAdd || cfg.Gran == styles.BlockGran

	switch {
	case cfg.Flow == styles.Pull && cfg.Det == styles.NonDeterministic:
		kern := pullKernel(dg, cfg, damping, base, rank, rank, resid)
		grid := gpu.Grid(d, cfg, n, tpb)
		for iters < opt.MaxIter {
			iters++
			resid.HostSet(0, 0)
			total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: needsBarrier}, kern))
			if float64(resid.HostGet(0)) < opt.PRTol {
				break
			}
		}
	case cfg.Flow == styles.Pull: // deterministic Jacobi
		next := d.AllocF32(n)
		grid := gpu.Grid(d, cfg, n, tpb)
		for iters < opt.MaxIter {
			iters++
			resid.HostSet(0, 0)
			kern := pullKernel(dg, cfg, damping, base, rank, next, resid)
			total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: needsBarrier}, kern))
			rank, next = next, rank
			if float64(resid.HostGet(0)) < opt.PRTol {
				break
			}
		}
	default: // push, deterministic only
		next := d.AllocF32(n)
		grid := gpu.Grid(d, cfg, n, tpb)
		residGrid := gpusim.GridSize(n, tpb)
		for iters < opt.MaxIter {
			iters++
			// Pass 1: reset the accumulators to the base rank.
			total.Add(d.Launch(gpusim.LaunchCfg{Blocks: residGrid, ThreadsPerBlock: tpb}, func(w *gpusim.Warp) {
				gpu.ThreadItems(w, n, false, func(b int64, cnt int) {
					var vals [gpusim.WarpSize]float32
					for l := 0; l < cnt; l++ {
						vals[l] = base
					}
					w.CoalStF32(next, b, cnt, &vals)
				})
			}))
			// Pass 2: scatter contributions along edges (Listing 4a
			// shape, with atomic float adds).
			scatter := gpu.ItemKernel(cfg, dg, n, gpu.Identity, func(w *gpusim.Warp, v int64, iter gpu.RangeFn) {
				beg := w.LdI64(dg.NbrIdx, v)
				end := w.LdI64(dg.NbrIdx, v+1)
				deg := end - beg
				if deg == 0 {
					return
				}
				contrib := damping * w.LdF32(rank, v) / float32(deg)
				iter(w, beg, end, func(_ int, _ int64, u int32) bool {
					w.AtomicAddF32(next, int64(u), contrib)
					return true
				})
			})
			total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, scatter))
			// Pass 3: residual reduction in the configured style.
			resid.HostSet(0, 0)
			residKern := residualKernel(cfg, n, rank, next, resid)
			total.Add(d.Launch(gpusim.LaunchCfg{Blocks: residGrid, ThreadsPerBlock: tpb, NeedsBarrier: cfg.GPURed != styles.GlobalAdd}, residKern))
			rank, next = next, rank
			if float64(resid.HostGet(0)) < opt.PRTol {
				break
			}
		}
	}
	return algo.Result{Rank: rank.HostSlice(), Iterations: iters}, total
}

// pullKernel computes nv = base + damping*sum(rank[u]/deg(u)) at the
// configured granularity, reading rd and writing wr, and accumulates the
// residual |nv-old| in the configured reduction style.
func pullKernel(dg *gpu.DevGraph, cfg styles.Config, damping, baseRank float32, rd, wr *gpusim.F32, resid *gpusim.F32) gpusim.Kernel {
	n := int64(dg.N)
	persist := cfg.Persist == styles.Persistent
	// contribution of neighbor u: rank[u] / deg(u).
	contrib := func(w *gpusim.Warp, u int32) float32 {
		ub := w.LdI64(dg.NbrIdx, int64(u))
		ue := w.LdI64(dg.NbrIdx, int64(u)+1)
		return w.LdF32(rd, int64(u)) / float32(ue-ub)
	}
	finishItem := func(w *gpusim.Warp, v int64, sum float32, acc *residAcc) {
		nv := baseRank + damping*sum
		old := w.LdF32(rd, v)
		w.StF32(wr, v, nv)
		acc.add(w, float32(math.Abs(float64(nv-old))))
	}
	switch cfg.Gran {
	case styles.ThreadGran:
		return func(w *gpusim.Warp) {
			acc := newResidAcc(cfg, resid)
			gpu.ThreadItems(w, n, persist, func(b int64, cnt int) {
				beg := w.CoalLdI64(dg.NbrIdx, b, cnt)
				end := w.CoalLdI64(dg.NbrIdx, b+1, cnt)
				var sums [gpusim.WarpSize]float32
				w.DivergentRanges(cnt, &beg, &end, 2, func(lane int, e int64) {
					sums[lane] += contrib(w, w.LdI32(dg.NbrList, e))
				})
				for l := 0; l < cnt; l++ {
					finishItem(w, b+int64(l), sums[l], acc)
				}
			})
			acc.flush(w)
		}
	case styles.WarpGran:
		return func(w *gpusim.Warp) {
			acc := newResidAcc(cfg, resid)
			gpu.WarpItems(w, n, persist, func(v int64) {
				beg := w.LdI64(dg.NbrIdx, v)
				end := w.LdI64(dg.NbrIdx, v+1)
				var partial [gpusim.WarpSize]float32
				gpu.WarpRange(w, dg.NbrList, beg, end, func(lane int, _ int64, u int32) {
					partial[lane] += contrib(w, u)
				})
				finishItem(w, v, w.WarpReduceAddF32(&partial), acc)
			})
			acc.flush(w)
		}
	default: // BlockGran: warps cooperate per vertex via shared memory
		return func(w *gpusim.Warp) {
			acc := newResidAcc(cfg, resid)
			shared := w.SharedU32(2, 1)
			gpu.BlockItems(w, n, persist, func(v int64) {
				if w.WarpInBlock == 0 {
					w.StSharedF32(shared, 0, 0)
				}
				w.Sync()
				beg := w.LdI64(dg.NbrIdx, v)
				end := w.LdI64(dg.NbrIdx, v+1)
				var partial [gpusim.WarpSize]float32
				gpu.BlockRange(w, dg.NbrList, beg, end, func(lane int, _ int64, u int32) {
					partial[lane] += contrib(w, u)
				})
				w.BlockAtomicAddF32(shared, 0, w.WarpReduceAddF32(&partial))
				w.Sync()
				if w.WarpInBlock == 0 {
					finishItem(w, v, w.SharedLdF32(shared, 0), acc)
				}
			})
			acc.flush(w)
		}
	}
}

// residualKernel sums |next-rank| element-wise in the configured
// reduction style (used by the push variants' third pass).
func residualKernel(cfg styles.Config, n int64, rank, next, resid *gpusim.F32) gpusim.Kernel {
	return func(w *gpusim.Warp) {
		acc := newResidAcc(cfg, resid)
		gpu.ThreadItems(w, n, false, func(b int64, cnt int) {
			olds := w.CoalLdF32(rank, b, cnt)
			news := w.CoalLdF32(next, b, cnt)
			w.Op(2)
			for l := 0; l < cnt; l++ {
				acc.add(w, float32(math.Abs(float64(news[l]-olds[l]))))
			}
		})
		acc.flush(w)
	}
}

// residAcc realizes the three GPU sum-reduction styles (Listing 10):
// global atomics per contribution, block-local shared-memory atomics
// with one global add, or register accumulation with warp reduction and
// one global add.
type residAcc struct {
	style  styles.GPURed
	resid  *gpusim.F32
	local  float32 // reduction-add: per-warp register accumulator
	shared []uint32
}

func newResidAcc(cfg styles.Config, resid *gpusim.F32) *residAcc {
	return &residAcc{style: cfg.GPURed, resid: resid}
}

func (a *residAcc) add(w *gpusim.Warp, v float32) {
	switch a.style {
	case styles.GlobalAdd:
		w.AtomicAddF32(a.resid, 0, v)
	case styles.BlockAdd:
		if a.shared == nil {
			a.shared = w.SharedU32(sharedResidTag, 1)
		}
		w.BlockAtomicAddF32(a.shared, 0, v)
	case styles.ReductionAdd:
		w.Op(1)
		a.local += v
	}
}

// flush pushes block/warp-local residual into the global accumulator;
// it must run once per warp after the item loop, and the launch must
// set NeedsBarrier for the non-global styles.
func (a *residAcc) flush(w *gpusim.Warp) {
	switch a.style {
	case styles.BlockAdd:
		if a.shared == nil {
			a.shared = w.SharedU32(sharedResidTag, 1)
		}
		w.Sync()
		if w.WarpInBlock == 0 {
			w.AtomicAddF32(a.resid, 0, w.SharedLdF32(a.shared, 0))
		}
	case styles.ReductionAdd:
		// Warp-level reduction happened in registers; combine the warps
		// of the block in shared memory, then one global add.
		shared := w.SharedU32(sharedResidTag, 1)
		w.BlockAtomicAddF32(shared, 0, a.local)
		w.Sync()
		if w.WarpInBlock == 0 {
			w.AtomicAddF32(a.resid, 0, w.SharedLdF32(shared, 0))
		}
	}
}
