package pr

import (
	"math"
	"testing"

	"indigo/internal/graph"
)

func ring(n int32) *graph.Graph {
	b := graph.NewBuilder("ring", n)
	for v := int32(0); v < n; v++ {
		b.AddEdge(v, (v+1)%n, 1)
	}
	return b.Build()
}

func TestSerialUniformOnRegularGraph(t *testing.T) {
	// On a regular graph, PageRank is uniform: every rank is 1 in the
	// unnormalized formulation.
	rank, iters := Serial(ring(16), 0.85, 1e-7, 500)
	if iters <= 0 {
		t.Fatal("no iterations")
	}
	for v, r := range rank {
		if math.Abs(float64(r-1)) > 1e-4 {
			t.Errorf("rank[%d] = %v, want 1", v, r)
		}
	}
}

func TestSerialSumsToN(t *testing.T) {
	// Steady-state ranks sum to the vertex count (for graphs without
	// isolated vertices, which do not absorb their damping share).
	b := graph.NewBuilder("mix", 5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(0, 3, 1)
	b.AddEdge(3, 4, 1)
	g := b.Build()
	rank, _ := Serial(g, 0.85, 1e-9, 2000)
	var sum float64
	for _, r := range rank {
		sum += float64(r)
	}
	if math.Abs(sum-float64(g.N)) > 1e-2 {
		t.Errorf("rank sum = %v, want %d", sum, g.N)
	}
}

func TestSerialHigherDegreeHigherRank(t *testing.T) {
	// Star: the hub must outrank the leaves.
	b := graph.NewBuilder("star", 6)
	for v := int32(1); v < 6; v++ {
		b.AddEdge(0, v, 1)
	}
	rank, _ := Serial(b.Build(), 0.85, 1e-8, 1000)
	for v := 1; v < 6; v++ {
		if rank[0] <= rank[v] {
			t.Errorf("hub rank %v not above leaf %d rank %v", rank[0], v, rank[v])
		}
	}
}

func TestSerialRespectsMaxIter(t *testing.T) {
	_, iters := Serial(ring(8), 0.85, 0, 3) // tol 0: never converges
	if iters != 3 {
		t.Errorf("iters = %d, want 3", iters)
	}
}

func TestAtomicFloat32Helpers(t *testing.T) {
	var x float32
	storeFloat32(&x, 1.5)
	if got := loadFloat32(&x); got != 1.5 {
		t.Fatalf("load = %v", got)
	}
	atomicAddFloat32(&x, 0.25)
	if x != 1.75 {
		t.Fatalf("x = %v, want 1.75", x)
	}
}
