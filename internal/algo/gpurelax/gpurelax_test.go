package gpurelax

import (
	"testing"

	"indigo/internal/algo"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

func ladder() *graph.Graph {
	b := graph.NewBuilder("ladder", 12)
	for v := int32(0); v+1 < 12; v++ {
		b.AddEdge(v, v+1, 2)
	}
	b.AddEdge(0, 11, 2)
	return b.Build()
}

func hopProblem() Problem {
	return Problem{
		Add: 1,
		Init: func(v int32) int32 {
			if v == 0 {
				return 0
			}
			return graph.Inf
		},
		Seeds: func(g *graph.Graph) []int32 { return []int32{0} },
	}
}

func weightProblem() Problem {
	return Problem{
		UseWeight: true,
		Init: func(v int32) int32 {
			if v == 0 {
				return 0
			}
			return graph.Inf
		},
		Seeds: func(g *graph.Graph) []int32 { return []int32{0} },
	}
}

func TestCand(t *testing.T) {
	p := Problem{UseWeight: true, Add: 0}
	if got := p.cand(5, 3); got != 8 {
		t.Errorf("weighted cand = %d, want 8", got)
	}
	q := Problem{UseWeight: false, Add: 1}
	if got := q.cand(5, 99); got != 6 {
		t.Errorf("hop cand = %d, want 6 (weight ignored)", got)
	}
}

// TestEngineAllCUDAStyles runs every CUDA SSSP config through the
// engine on a graph with a shortcut edge, checking the weighted fixed
// point and that costs accumulate.
func TestEngineAllCUDAStyles(t *testing.T) {
	g := ladder()
	want := []int32{0, 2, 4, 6, 8, 10, 12, 10, 8, 6, 4, 2} // weights all 2
	for _, cfg := range styles.Enumerate(styles.SSSP, styles.CUDA) {
		d := gpusim.New(gpusim.RTXSim())
		val, iters, st := Run(d, g, cfg, algo.Options{}, weightProblem())
		if iters <= 0 || st.Cycles <= 0 {
			t.Errorf("%s: iters=%d cycles=%d", cfg.Name(), iters, st.Cycles)
		}
		for v := range want {
			if val[v] != want[v] {
				t.Errorf("%s: val[%d] = %d, want %d", cfg.Name(), v, val[v], want[v])
				break
			}
		}
	}
}

// TestDeterministicIterationsStable: the double-buffered style must use
// the same iteration count on every run (§2.6).
func TestDeterministicIterationsStable(t *testing.T) {
	g := ladder()
	cfg := styles.Config{
		Algo: styles.SSSP, Model: styles.CUDA,
		Det: styles.Deterministic, Update: styles.ReadModifyWrite,
	}
	var first int32
	for rep := 0; rep < 3; rep++ {
		d := gpusim.New(gpusim.RTXSim())
		_, iters, _ := Run(d, g, cfg, algo.Options{}, hopProblem())
		if rep == 0 {
			first = iters
		} else if iters != first {
			t.Fatalf("deterministic variant used %d then %d iterations", first, iters)
		}
	}
}

// TestCudaAtomicVariantCostsMore compares whole-run cost of one config
// pair differing only in the atomics dimension (the Fig. 1 mechanism).
func TestCudaAtomicVariantCostsMore(t *testing.T) {
	g := ladder()
	classic := styles.Config{Algo: styles.SSSP, Model: styles.CUDA}
	cuda := classic
	cuda.Atomics = styles.CudaAtomic
	d1 := gpusim.New(gpusim.TitanSim())
	_, _, stClassic := Run(d1, g, classic, algo.Options{}, weightProblem())
	d2 := gpusim.New(gpusim.TitanSim())
	_, _, stCuda := Run(d2, g, cuda, algo.Options{}, weightProblem())
	if stCuda.Cycles <= stClassic.Cycles {
		t.Errorf("CudaAtomic run %d cycles not above classic %d", stCuda.Cycles, stClassic.Cycles)
	}
}
