// Package gpurelax is the GPU counterpart of the relax engine: it
// realizes every CUDA-model style combination of the three monotone
// min-relaxation problems (BFS, SSSP, CC) as kernels on the gpusim
// substrate — vertex/edge iteration, topology/data-driven worklists,
// push/pull flow, read-write vs read-modify-write updates, deterministic
// double buffering, thread/warp/block granularity, persistent threads,
// and classic vs default CudaAtomics.
package gpurelax

import (
	"indigo/internal/algo"
	"indigo/internal/algo/gpu"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Problem selects the candidate function: cand = val + weight(e)?·UseWeight + Add.
// BFS is {false, 1}, SSSP is {true, 0}, CC is {false, 0}.
type Problem struct {
	UseWeight bool
	Add       int32
	// Init gives vertex v's initial value.
	Init func(v int32) int32
	// Seeds are the initially changed vertices (data-driven start).
	Seeds func(g *graph.Graph) []int32
}

// tpb is the threads-per-block used by every launch, the paper's common
// 256-thread default.
const tpb = 256

// Run executes the CUDA-model variant cfg of problem p on device d and
// returns the final values, the iteration count, and the accumulated
// simulated cost.
func Run(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem) ([]int32, int32, gpusim.Stats) {
	opt = opt.Defaults(g.N)
	dg := gpu.Upload(d, g)
	o := gpu.OpsOf(cfg)
	// Host staging buffers come from the run's scratch arena when one is
	// set; the simulated device buffers themselves still allocate.
	init := scratch.Slice[int32](opt.Scratch, int(g.N))
	for v := int32(0); v < g.N; v++ {
		init[v] = p.Init(v)
	}
	val := d.UploadI32(init)

	var total gpusim.Stats
	var iters int32
	if cfg.Drive.IsDataDriven() {
		iters = runData(d, dg, cfg, opt, p, o, val, &total)
	} else if cfg.Det == styles.Deterministic {
		iters = runTopoDet(d, dg, cfg, opt, p, o, val, &total)
	} else {
		iters = runTopoNonDet(d, dg, cfg, opt, p, o, val, &total)
	}
	out := scratch.Slice[int32](opt.Scratch, int(g.N))
	copy(out, val.Host())
	return out, iters, total
}

// cand computes the candidate value; weight loading (SSSP only) is the
// caller's job so coalescing is accounted where the load happens.
func (p Problem) cand(val, weight int32) int32 {
	if p.UseWeight {
		return val + weight + p.Add
	}
	return val + p.Add
}

// relaxMin applies the configured update style to valArr[u] (Listing 5)
// and reports improvement via the changed flag.
func relaxMin(w *gpusim.Warp, o gpu.Ops, up styles.Update, valArr *gpusim.I32, u int64, nd int32, changed *gpusim.I32) bool {
	if up == styles.ReadWrite {
		old := o.Ld(w, valArr, u)
		if nd < old {
			o.St(w, valArr, u, nd)
			w.StI32(changed, 0, 1)
			return true
		}
		return false
	}
	old := o.Min(w, valArr, u, nd)
	if nd < old {
		w.StI32(changed, 0, 1)
		return true
	}
	return false
}

// vertexSweep builds the topology-driven vertex kernel: every vertex is
// processed at the configured granularity; src values are read from
// rdArr and updates go to wrArr (identical for the non-deterministic
// in-place variants).
func vertexSweep(dg *gpu.DevGraph, cfg styles.Config, p Problem, o gpu.Ops, rdArr, wrArr *gpusim.I32, changed *gpusim.I32) gpusim.Kernel {
	n := int64(dg.N)
	persist := cfg.Persist == styles.Persistent
	pull := cfg.Flow == styles.Pull

	// processEdge relaxes one CSR slot e of vertex v whose own value is
	// dv (push) or accumulates into v (pull).
	processEdge := func(w *gpusim.Warp, v int64, dv int32, e int64, u int32) {
		var wt int32
		if p.UseWeight {
			wt = w.LdI32(dg.Weights, e)
		}
		if pull {
			du := o.Ld(w, rdArr, int64(u))
			if du < graph.Inf {
				relaxMin(w, o, cfg.Update, wrArr, v, p.cand(du, wt), changed)
			}
		} else {
			relaxMin(w, o, cfg.Update, wrArr, int64(u), p.cand(dv, wt), changed)
		}
	}

	switch cfg.Gran {
	case styles.ThreadGran:
		return func(w *gpusim.Warp) {
			gpu.ThreadItems(w, n, persist, func(base int64, cnt int) {
				beg := w.CoalLdI64(dg.NbrIdx, base, cnt)
				end := w.CoalLdI64(dg.NbrIdx, base+1, cnt)
				var dv [gpusim.WarpSize]int32
				if !pull {
					dv = w.CoalLdI32(rdArr, base, cnt)
				}
				for l := 0; l < cnt; l++ {
					if !pull && dv[l] >= graph.Inf {
						end[l] = beg[l] // inactive lane
					}
				}
				w.DivergentRanges(cnt, &beg, &end, 2, func(lane int, e int64) {
					u := w.LdI32(dg.NbrList, e)
					processEdge(w, base+int64(lane), dv[lane], e, u)
				})
			})
		}
	case styles.WarpGran:
		return func(w *gpusim.Warp) {
			gpu.WarpItems(w, n, persist, func(v int64) {
				beg := w.LdI64(dg.NbrIdx, v)
				end := w.LdI64(dg.NbrIdx, v+1)
				dv := int32(0)
				if !pull {
					dv = o.Ld(w, rdArr, v)
					if dv >= graph.Inf {
						return
					}
				}
				gpu.WarpRange(w, dg.NbrList, beg, end, func(lane int, e int64, u int32) {
					processEdge(w, v, dv, e, u)
				})
			})
		}
	default: // BlockGran
		return func(w *gpusim.Warp) {
			gpu.BlockItems(w, n, persist, func(v int64) {
				beg := w.LdI64(dg.NbrIdx, v)
				end := w.LdI64(dg.NbrIdx, v+1)
				dv := int32(0)
				if !pull {
					dv = o.Ld(w, rdArr, v)
					if dv >= graph.Inf {
						return
					}
				}
				gpu.BlockRange(w, dg.NbrList, beg, end, func(lane int, e int64, u int32) {
					processEdge(w, v, dv, e, u)
				})
			})
		}
	}
}

// edgeSweep builds the topology-driven edge kernel (push-only,
// thread-granularity per styles rules 1 and 7).
func edgeSweep(dg *gpu.DevGraph, cfg styles.Config, p Problem, o gpu.Ops, rdArr, wrArr *gpusim.I32, changed *gpusim.I32) gpusim.Kernel {
	m := dg.M
	persist := cfg.Persist == styles.Persistent
	return func(w *gpusim.Warp) {
		gpu.ThreadItems(w, m, persist, func(base int64, cnt int) {
			src := w.CoalLdI32(dg.Src, base, cnt)
			dst := w.CoalLdI32(dg.Dst, base, cnt)
			var wts [gpusim.WarpSize]int32
			if p.UseWeight {
				wts = w.CoalLdI32(dg.Weights, base, cnt)
			}
			w.Op(2)
			for l := 0; l < cnt; l++ {
				dv := o.Ld(w, rdArr, int64(src[l]))
				if dv >= graph.Inf {
					continue
				}
				relaxMin(w, o, cfg.Update, wrArr, int64(dst[l]), p.cand(dv, wts[l]), changed)
			}
		})
	}
}

// items returns the work-item count of one topology-driven sweep.
func items(dg *gpu.DevGraph, cfg styles.Config) int64 {
	if cfg.Iterate == styles.EdgeBased {
		return dg.M
	}
	return int64(dg.N)
}

func runTopoNonDet(d *gpusim.Device, dg *gpu.DevGraph, cfg styles.Config, opt algo.Options, p Problem, o gpu.Ops, val *gpusim.I32, total *gpusim.Stats) int32 {
	changed := d.AllocI32(1)
	var kern gpusim.Kernel
	if cfg.Iterate == styles.EdgeBased {
		kern = edgeSweep(dg, cfg, p, o, val, val, changed)
	} else {
		kern = vertexSweep(dg, cfg, p, o, val, val, changed)
	}
	grid := gpu.Grid(d, cfg, items(dg, cfg), tpb)
	var iters int32
	for iters < opt.MaxIter {
		iters++
		changed.Host()[0] = 0
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, kern))
		if changed.Host()[0] == 0 {
			break
		}
	}
	return iters
}

func runTopoDet(d *gpusim.Device, dg *gpu.DevGraph, cfg styles.Config, opt algo.Options, p Problem, o gpu.Ops, val *gpusim.I32, total *gpusim.Stats) int32 {
	changed := d.AllocI32(1)
	next := d.AllocI32(int64(dg.N))
	grid := gpu.Grid(d, cfg, items(dg, cfg), tpb)
	var iters int32
	for iters < opt.MaxIter {
		iters++
		total.Add(gpu.CopyI32(d, next, val))
		changed.Host()[0] = 0
		var kern gpusim.Kernel
		if cfg.Iterate == styles.EdgeBased {
			kern = edgeSweep(dg, cfg, p, o, val, next, changed)
		} else {
			kern = vertexSweep(dg, cfg, p, o, val, next, changed)
		}
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, kern))
		gpusim.SwapI32(val, next)
		if changed.Host()[0] == 0 {
			break
		}
	}
	return iters
}

func runData(d *gpusim.Device, dg *gpu.DevGraph, cfg styles.Config, opt algo.Options, p Problem, o gpu.Ops, val *gpusim.I32, total *gpusim.Stats) int32 {
	noDup := cfg.Drive == styles.DataDrivenNoDup
	capacity := int64(dg.N) + 64
	if !noDup {
		capacity = 8*dg.M + int64(dg.N) + 64
	}
	wlIn := gpu.NewWorklist(d, capacity)
	wlOut := gpu.NewWorklist(d, capacity)
	var stamp *gpusim.I32
	if noDup {
		stamp = d.AllocI32(int64(dg.N))
	}
	changed := d.AllocI32(1) // unused flag kept for relaxMin's signature
	pull := cfg.Flow == styles.Pull
	persist := cfg.Persist == styles.Persistent

	// Host-side seeding (a cudaMemcpy before the first launch).
	seeds := p.Seeds(graphOf(dg))
	if pull {
		mark := scratch.Slice[bool](opt.Scratch, int(dg.N))
		for _, v := range seeds {
			for e := dg.NbrIdx.Host()[v]; e < dg.NbrIdx.Host()[v+1]; e++ {
				u := dg.NbrList.Host()[e]
				if !mark[u] {
					mark[u] = true
					wlIn.Items.Host()[wlIn.Size.Host()[0]] = u
					wlIn.Size.Host()[0]++
				}
			}
		}
	} else {
		for i, v := range seeds {
			wlIn.Items.Host()[i] = v
		}
		wlIn.Size.Host()[0] = int32(len(seeds))
	}

	push := func(w *gpusim.Warp, itr int32, u int32) {
		if noDup {
			wlOut.PushUnique(w, o, stamp, itr, u)
		} else {
			wlOut.Push(w, o, u)
		}
	}

	// processItem handles one worklist vertex at any granularity; range
	// iteration is supplied by the caller.
	var iters int32
	kernelFor := func(itr int32, size int64) gpusim.Kernel {
		handle := func(w *gpusim.Warp, v int64, iter func(w *gpusim.Warp, beg, end int64, f func(lane int, e int64, u int32))) {
			beg := w.LdI64(dg.NbrIdx, v)
			end := w.LdI64(dg.NbrIdx, v+1)
			if pull {
				improved := false
				iter(w, beg, end, func(lane int, e int64, u int32) {
					du := o.Ld(w, val, int64(u))
					if du >= graph.Inf {
						return
					}
					var wt int32
					if p.UseWeight {
						wt = w.LdI32(dg.Weights, e)
					}
					if relaxMin(w, o, cfg.Update, val, v, p.cand(du, wt), changed) {
						improved = true
					}
				})
				if improved {
					// Push the full neighborhood: at block granularity
					// the warps hold disjoint slices, and v's improvement
					// must re-enqueue every neighbor, not just this
					// warp's share.
					w.Op(2 * (end - beg))
					for e := beg; e < end; e++ {
						push(w, itr, w.LdI32(dg.NbrList, e))
					}
				}
			} else {
				dv := o.Ld(w, val, v)
				if dv >= graph.Inf {
					return
				}
				iter(w, beg, end, func(lane int, e int64, u int32) {
					var wt int32
					if p.UseWeight {
						wt = w.LdI32(dg.Weights, e)
					}
					if relaxMin(w, o, cfg.Update, val, int64(u), p.cand(dv, wt), changed) {
						push(w, itr, u)
					}
				})
			}
		}
		switch cfg.Gran {
		case styles.ThreadGran:
			return func(w *gpusim.Warp) {
				gpu.ThreadItems(w, size, persist, func(base int64, cnt int) {
					vs := w.CoalLdI32(wlIn.Items, base, cnt)
					for l := 0; l < cnt; l++ {
						handle(w, int64(vs[l]), func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32)) {
							// Lone-lane loop: divergence cost of one
							// lane's full range.
							var b, e [gpusim.WarpSize]int64
							b[0], e[0] = beg, end
							w.DivergentRanges(1, &b, &e, 2, func(_ int, ei int64) {
								f(0, ei, w.LdI32(dg.NbrList, ei))
							})
						})
					}
				})
			}
		case styles.WarpGran:
			return func(w *gpusim.Warp) {
				gpu.WarpItems(w, size, persist, func(i int64) {
					v := w.LdI32(wlIn.Items, i)
					handle(w, int64(v), func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32)) {
						gpu.WarpRange(w, dg.NbrList, beg, end, f)
					})
				})
			}
		default: // BlockGran
			return func(w *gpusim.Warp) {
				gpu.BlockItems(w, size, persist, func(i int64) {
					v := w.LdI32(wlIn.Items, i)
					handle(w, int64(v), func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32)) {
						gpu.BlockRange(w, dg.NbrList, beg, end, f)
					})
				})
			}
		}
	}

	for iters < opt.MaxIter {
		size := int64(wlIn.HostSize())
		if size == 0 {
			break
		}
		iters++
		wlOut.HostReset()
		grid := gpu.Grid(d, cfg, size, tpb)
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb}, kernelFor(iters, size)))
		wlIn, wlOut = wlOut, wlIn
	}
	return iters
}

// graphOf reconstructs a host view for seeding (CSR only).
func graphOf(dg *gpu.DevGraph) *graph.Graph {
	return &graph.Graph{
		N:       dg.N,
		NbrIdx:  dg.NbrIdx.Host(),
		NbrList: dg.NbrList.Host(),
	}
}
