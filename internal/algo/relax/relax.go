// Package relax is the shared CPU engine for the three monotone
// min-relaxation problems of the study — BFS, SSSP, and CC. All three
// repeatedly lower per-vertex values along edges until a fixed point, so
// every style combination (vertex/edge iteration, topology/data-driven
// worklists with and without duplicates, push/pull flow, read-write vs
// read-modify-write updates, deterministic double buffering, and the
// model scheduling dimensions) is realized once here and parameterized
// by the problem's candidate function.
//
// The engine is generic over the value type: the study evaluates the
// 32-bit variants (§4.1), and the 64-bit data-type variants that ship
// with Indigo2 run through the same code with T = int64.
//
// Memory discipline: all per-run O(N)/O(M) state — the value array, the
// deterministic double buffer, the two worklists, stamp and seed-mark
// arrays — is checked out from opt.Scratch when an arena is supplied,
// and the loop-body closures live in an engine context cached on the
// arena (rebound, not rebuilt, per run). With a warmed arena and a
// pinned pool a steady-state run performs zero heap allocations; with a
// nil arena the engine allocates per run exactly as before.
package relax

import (
	"sync/atomic"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Value is the vertex data type of a relaxation problem.
type Value interface {
	~int32 | ~int64
}

// Problem defines one min-relaxation instance over value type T.
type Problem[T Value] struct {
	// Inf is the "unreached" sentinel; vertices at or above it are
	// skipped as relaxation sources.
	Inf T
	// Init gives vertex v's initial value (e.g. Inf, or 0 at the source).
	Init func(v int32) T
	// Cand computes the candidate value for the destination of directed
	// edge e given the current value of its source endpoint. It must be
	// monotone: a smaller input never yields a larger candidate.
	Cand func(val T, e int64) T
	// Seeds are the vertices whose values are "already changed" before
	// the first iteration; the data-driven push variants start from this
	// worklist (BFS/SSSP: the source; CC: every vertex).
	Seeds func(g *graph.Graph) []int32
}

// syncOps abstracts the atomic operations over T so the same engine
// serves both data types and both CPU synchronization models.
type syncOps[T Value] interface {
	Load(p *T) T
	Store(p *T, v T)
	Min(p *T, v T) T
}

type ops32 struct{ s par.Sync }

func (o ops32) Load(p *int32) int32         { return o.s.Load(p) }
func (o ops32) Store(p *int32, v int32)     { o.s.Store(p, v) }
func (o ops32) Min(p *int32, v int32) int32 { return o.s.Min(p, v) }

type ops64 struct{ s par.Sync64 }

func (o ops64) Load(p *int64) int64         { return o.s.Load(p) }
func (o ops64) Store(p *int64, v int64)     { o.s.Store(p, v) }
func (o ops64) Min(p *int64, v int64) int64 { return o.s.Min(p, v) }

// Pre-boxed syncOps singletons: constructing the interface value per run
// would heap-allocate the wrapper struct, so the four (type × model)
// combinations are boxed once here.
var (
	casOps32  syncOps[int32] = ops32{par.CAS{}}
	critOps32 syncOps[int32]
	casOps64  syncOps[int64] = ops64{par.CAS64{}}
	critOps64 syncOps[int64]
)

func init() {
	var cfg styles.Config
	cfg.Model = styles.OMP
	critOps32 = ops32{algo.SyncOf(cfg)}
	critOps64 = ops64{algo.Sync64Of(cfg)}
}

// syncFor selects the model's synchronization for value type T.
func syncFor[T Value](cfg styles.Config) syncOps[T] {
	omp := cfg.Model == styles.OMP
	var zero T
	switch any(zero).(type) {
	case int32:
		if omp {
			return any(critOps32).(syncOps[T])
		}
		return any(casOps32).(syncOps[T])
	default:
		if omp {
			return any(critOps64).(syncOps[T])
		}
		return any(casOps64).(syncOps[T])
	}
}

// Run executes the 32-bit variant selected by cfg on g and returns the
// final values and iteration count. cfg must be a valid CPU
// configuration.
func Run(g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[int32]) ([]int32, int32) {
	if p.Inf == 0 {
		p.Inf = graph.Inf
	}
	return RunT(g, cfg, opt, p)
}

// Inf64 is the 64-bit "unreached" sentinel.
const Inf64 int64 = int64(graph.Inf) << 24

// RunT is Run for any supported value type (the 64-bit data-type
// variants pass Problem[int64]).
func RunT[T Value](g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[T]) ([]T, int32) {
	opt = opt.Defaults(g.N)
	e := scratch.Of[engine[T]](opt.Scratch)
	e.bind(g, cfg, opt, p)
	val := e.val
	for v := int32(0); v < g.N; v++ {
		val[v] = p.Init(v)
	}
	if cfg.Drive.IsDataDriven() {
		return val, e.runData(cfg, opt)
	}
	if cfg.Det == styles.Deterministic {
		return val, e.runTopoDet(cfg, opt)
	}
	return val, e.runTopoNonDet(cfg, opt)
}

// relaxTry lowers *addr to nd using the configured update style and
// reports whether the location improved (Listing 5).
func relaxTry[T Value](s syncOps[T], up styles.Update, addr *T, nd T) bool {
	if up == styles.ReadWrite {
		// Read-write: racy load + conditional store. Safe here because
		// updates are monotone, and only topology-driven variants use it
		// (the full re-sweep self-heals lost updates, §2.5).
		old := s.Load(addr)
		if nd < old {
			s.Store(addr, nd)
			return true
		}
		return false
	}
	return nd < s.Min(addr, nd)
}

// relaxMin is relaxTry plus the topology-driven convergence flag.
func relaxMin[T Value](s syncOps[T], up styles.Update, addr *T, nd T, changed *atomic.Int32) bool {
	if relaxTry(s, up, addr, nd) {
		changed.Store(1)
		return true
	}
	return false
}

// engine is the per-run kernel context. One engine per value type lives
// on each arena (scratch.Of), so its loop-body closures are built once
// and reused across runs and variants: they capture only the engine
// pointer, and everything that varies per run or per configuration — the
// graph, the problem, the sync model, the update style, the worklists —
// is rebound through engine fields. With a nil arena a fresh engine is
// built per run, reproducing the old allocate-per-run behavior.
type engine[T Value] struct {
	g  *graph.Graph
	p  Problem[T]
	s  syncOps[T]
	up styles.Update
	ar *scratch.Arena

	val     []T
	next    []T
	changed atomic.Int32

	// Data-driven state.
	wlIn, wlOut *par.Worklist
	stamp       []int32
	stampSync   par.Sync
	noDup       bool
	itr         int32

	// Cached kernels (topology-driven in-place, deterministic
	// double-buffered, data-driven), chosen per run by cfg.
	topoEdge, topoPush, topoPull func(i int64)
	detEdge, detPush, detPull    func(i int64)
	dataPush, dataPull           func(tid int, i int64)
}

// bind points the engine at this run's inputs and checks out the value
// array. Closures are built on first use and only ever read run state
// through the engine, so rebinding is assignment-only.
func (e *engine[T]) bind(g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[T]) {
	e.g = g
	e.p = p
	e.s = syncFor[T](cfg)
	e.up = cfg.Update
	e.ar = opt.Scratch
	e.val = scratch.Slice[T](opt.Scratch, int(g.N))
	if e.topoEdge != nil {
		return
	}
	e.topoEdge = func(ee int64) {
		g := e.g
		dv := e.s.Load(&e.val[g.Src[ee]])
		if dv >= e.p.Inf {
			return
		}
		relaxMin(e.s, e.up, &e.val[g.Dst[ee]], e.p.Cand(dv, ee), &e.changed)
	}
	e.topoPush = func(i int64) {
		g := e.g
		v := int32(i)
		dv := e.s.Load(&e.val[v])
		if dv >= e.p.Inf {
			return
		}
		for ee := g.NbrIdx[v]; ee < g.NbrIdx[v+1]; ee++ {
			relaxMin(e.s, e.up, &e.val[g.NbrList[ee]], e.p.Cand(dv, ee), &e.changed)
		}
	}
	e.topoPull = func(i int64) {
		g := e.g
		v := int32(i)
		for ee := g.NbrIdx[v]; ee < g.NbrIdx[v+1]; ee++ {
			du := e.s.Load(&e.val[g.NbrList[ee]])
			if du >= e.p.Inf {
				continue
			}
			relaxMin(e.s, e.up, &e.val[v], e.p.Cand(du, ee), &e.changed)
		}
	}
	e.detEdge = func(ee int64) {
		g := e.g
		dv := e.val[g.Src[ee]]
		if dv >= e.p.Inf {
			return
		}
		relaxMin(e.s, e.up, &e.next[g.Dst[ee]], e.p.Cand(dv, ee), &e.changed)
	}
	e.detPush = func(i int64) {
		g := e.g
		v := int32(i)
		dv := e.val[v]
		if dv >= e.p.Inf {
			return
		}
		for ee := g.NbrIdx[v]; ee < g.NbrIdx[v+1]; ee++ {
			relaxMin(e.s, e.up, &e.next[g.NbrList[ee]], e.p.Cand(dv, ee), &e.changed)
		}
	}
	e.detPull = func(i int64) {
		g := e.g
		v := int32(i)
		for ee := g.NbrIdx[v]; ee < g.NbrIdx[v+1]; ee++ {
			du := e.val[g.NbrList[ee]]
			if du >= e.p.Inf {
				continue
			}
			relaxMin(e.s, e.up, &e.next[v], e.p.Cand(du, ee), &e.changed)
		}
	}
	e.dataPush = func(tid int, i int64) {
		g := e.g
		v := e.wlIn.Get(i)
		dv := e.s.Load(&e.val[v])
		if dv >= e.p.Inf {
			return
		}
		for ee := g.NbrIdx[v]; ee < g.NbrIdx[v+1]; ee++ {
			u := g.NbrList[ee]
			if relaxTry(e.s, e.up, &e.val[u], e.p.Cand(dv, ee)) {
				e.push(tid, u)
			}
		}
	}
	e.dataPull = func(tid int, i int64) {
		g := e.g
		v := e.wlIn.Get(i)
		improved := false
		for ee := g.NbrIdx[v]; ee < g.NbrIdx[v+1]; ee++ {
			du := e.s.Load(&e.val[g.NbrList[ee]])
			if du >= e.p.Inf {
				continue
			}
			if relaxTry(e.s, e.up, &e.val[v], e.p.Cand(du, ee)) {
				improved = true
			}
		}
		if improved {
			// v's new value may enable its neighbors to improve.
			for _, u := range g.Neighbors(v) {
				e.push(tid, u)
			}
		}
	}
}

// push appends u to the out-list under the round's duplicate policy.
func (e *engine[T]) push(tid int, u int32) {
	if e.noDup {
		e.wlOut.PushUniqueTID(tid, u, e.stamp, e.itr, e.stampSync)
	} else {
		e.wlOut.PushTID(tid, u)
	}
}

// runTopoNonDet is the topology-driven, in-place family (Listing 2a/6a).
func (e *engine[T]) runTopoNonDet(cfg styles.Config, opt algo.Options) int32 {
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	n, body := int64(e.g.N), e.topoPush
	if cfg.Iterate == styles.EdgeBased {
		n, body = e.g.M(), e.topoEdge
	} else if cfg.Flow == styles.Pull {
		body = e.topoPull
	}
	var iters int32
	for iters < opt.MaxIter {
		iters++
		e.changed.Store(0)
		ex.For(n, sched, body)
		if e.changed.Load() == 0 {
			break
		}
	}
	return iters
}

// runTopoDet is the deterministic double-buffered family (Listing 6b):
// each iteration reads only the previous iteration's values.
func (e *engine[T]) runTopoDet(cfg styles.Config, opt algo.Options) int32 {
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	e.next = scratch.Slice[T](e.ar, int(e.g.N))
	n, body := int64(e.g.N), e.detPush
	if cfg.Iterate == styles.EdgeBased {
		n, body = e.g.M(), e.detEdge
	} else if cfg.Flow == styles.Pull {
		body = e.detPull
	}
	var iters int32
	for iters < opt.MaxIter {
		iters++
		copy(e.next, e.val)
		e.changed.Store(0)
		ex.For(n, sched, body)
		copy(e.val, e.next)
		if e.changed.Load() == 0 {
			break
		}
	}
	return iters
}

// runData is the worklist-driven family (Listing 2b/3), with or without
// duplicates, in push or pull flow. Data-driven variants are vertex-based
// and internally non-deterministic (styles.Valid rules 2 and 3).
//
// Worklist capacity policy (high-water mark): both lists start at n+64,
// which is the exact per-round bound for no-duplicate lists (each vertex
// enters a round's out-list at most once, enforced by the stamps). With
// duplicates allowed, a round pushes at most one entry per edge incident
// to an in-list item, so before each round the out-list is grown — once,
// at the sequential point, never mid-round — to the exact bound
// Σ deg(v) over the in-list, at least doubling per growth so a run
// performs O(log) growths total. Capacities only ratchet up, and reused
// (arena) worklists keep their high-water capacity across runs, so
// steady-state rounds never reallocate. This replaces the former fixed
// 8m+n pre-allocation, which paid the full worst case on every run.
func (e *engine[T]) runData(cfg styles.Config, opt algo.Options) int32 {
	e.stampSync = algo.SyncOf(cfg) // iteration stamps stay 32-bit
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	g := e.g
	e.noDup = cfg.Drive == styles.DataDrivenNoDup
	capacity := int64(g.N) + 64
	// The out-list takes pushes from inside parallel regions, so it gets
	// per-worker reservation buffers; the in-list is only read there
	// (the roles swap each round, so both are built push-capable). A nil
	// arena builds fresh worklists.
	e.wlIn = e.ar.Worklist(capacity, ex.Width())
	e.wlOut = e.ar.Worklist(capacity, ex.Width())
	e.stamp = nil
	if e.noDup {
		e.stamp = scratch.Slice[int32](e.ar, int(g.N))
	}

	// Seed the initial worklist.
	seeds := e.p.Seeds(g)
	if cfg.Flow == styles.Push {
		for _, v := range seeds {
			e.wlIn.Push(v)
		}
	} else {
		// Pull consumers are the vertices that might improve: the
		// neighbors of the seeds, deduplicated.
		mark := scratch.Slice[bool](e.ar, int(g.N))
		for _, v := range seeds {
			for _, u := range g.Neighbors(v) {
				if !mark[u] {
					mark[u] = true
					e.wlIn.Push(u)
				}
			}
		}
	}

	body := e.dataPush
	if cfg.Flow == styles.Pull {
		body = e.dataPull
	}
	var iters int32
	for iters < opt.MaxIter && e.wlIn.Size() > 0 {
		iters++
		e.itr = iters
		if !e.noDup {
			// Grow the out-list to this round's exact push bound (see the
			// capacity policy above).
			bound := int64(64)
			for i, sz := int64(0), e.wlIn.Size(); i < sz; i++ {
				bound += g.Degree(e.wlIn.Get(i))
			}
			if bound > e.wlOut.Cap() {
				if c := 2 * e.wlOut.Cap(); c > bound {
					bound = c
				}
				e.wlOut.Grow(bound)
			}
		}
		ex.ForTID(e.wlIn.Size(), sched, body)
		e.wlOut.Flush()
		e.wlIn.Reset()
		e.wlIn.Swap(e.wlOut)
	}
	return iters
}
