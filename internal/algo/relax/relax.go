// Package relax is the shared CPU engine for the three monotone
// min-relaxation problems of the study — BFS, SSSP, and CC. All three
// repeatedly lower per-vertex values along edges until a fixed point, so
// every style combination (vertex/edge iteration, topology/data-driven
// worklists with and without duplicates, push/pull flow, read-write vs
// read-modify-write updates, deterministic double buffering, and the
// model scheduling dimensions) is realized once here and parameterized
// by the problem's candidate function.
//
// The engine is generic over the value type: the study evaluates the
// 32-bit variants (§4.1), and the 64-bit data-type variants that ship
// with Indigo2 run through the same code with T = int64.
package relax

import (
	"sync/atomic"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/styles"
)

// Value is the vertex data type of a relaxation problem.
type Value interface {
	~int32 | ~int64
}

// Problem defines one min-relaxation instance over value type T.
type Problem[T Value] struct {
	// Inf is the "unreached" sentinel; vertices at or above it are
	// skipped as relaxation sources.
	Inf T
	// Init gives vertex v's initial value (e.g. Inf, or 0 at the source).
	Init func(v int32) T
	// Cand computes the candidate value for the destination of directed
	// edge e given the current value of its source endpoint. It must be
	// monotone: a smaller input never yields a larger candidate.
	Cand func(val T, e int64) T
	// Seeds are the vertices whose values are "already changed" before
	// the first iteration; the data-driven push variants start from this
	// worklist (BFS/SSSP: the source; CC: every vertex).
	Seeds func(g *graph.Graph) []int32
}

// syncOps abstracts the atomic operations over T so the same engine
// serves both data types and both CPU synchronization models.
type syncOps[T Value] interface {
	Load(p *T) T
	Store(p *T, v T)
	Min(p *T, v T) T
}

type ops32 struct{ s par.Sync }

func (o ops32) Load(p *int32) int32         { return o.s.Load(p) }
func (o ops32) Store(p *int32, v int32)     { o.s.Store(p, v) }
func (o ops32) Min(p *int32, v int32) int32 { return o.s.Min(p, v) }

type ops64 struct{ s par.Sync64 }

func (o ops64) Load(p *int64) int64         { return o.s.Load(p) }
func (o ops64) Store(p *int64, v int64)     { o.s.Store(p, v) }
func (o ops64) Min(p *int64, v int64) int64 { return o.s.Min(p, v) }

// syncFor selects the model's synchronization for value type T.
func syncFor[T Value](cfg styles.Config) syncOps[T] {
	var zero T
	switch any(zero).(type) {
	case int32:
		return any(ops32{algo.SyncOf(cfg)}).(syncOps[T])
	default:
		return any(ops64{algo.Sync64Of(cfg)}).(syncOps[T])
	}
}

// Run executes the 32-bit variant selected by cfg on g and returns the
// final values and iteration count. cfg must be a valid CPU
// configuration.
func Run(g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[int32]) ([]int32, int32) {
	if p.Inf == 0 {
		p.Inf = graph.Inf
	}
	return RunT(g, cfg, opt, p)
}

// Inf64 is the 64-bit "unreached" sentinel.
const Inf64 int64 = int64(graph.Inf) << 24

// RunT is Run for any supported value type (the 64-bit data-type
// variants pass Problem[int64]).
func RunT[T Value](g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[T]) ([]T, int32) {
	opt = opt.Defaults(g.N)
	val := make([]T, g.N)
	for v := int32(0); v < g.N; v++ {
		val[v] = p.Init(v)
	}
	if cfg.Drive.IsDataDriven() {
		return val, runData(g, cfg, opt, p, val)
	}
	if cfg.Det == styles.Deterministic {
		return val, runTopoDet(g, cfg, opt, p, val)
	}
	return val, runTopoNonDet(g, cfg, opt, p, val)
}

// relaxMin lowers *addr to nd using the configured update style and
// reports whether the location improved (Listing 5).
func relaxMin[T Value](s syncOps[T], up styles.Update, addr *T, nd T, changed *atomic.Int32) bool {
	if up == styles.ReadWrite {
		// Read-write: racy load + conditional store. Safe here because
		// updates are monotone, and only topology-driven variants use it
		// (the full re-sweep self-heals lost updates, §2.5).
		old := s.Load(addr)
		if nd < old {
			s.Store(addr, nd)
			changed.Store(1)
			return true
		}
		return false
	}
	old := s.Min(addr, nd)
	if nd < old {
		changed.Store(1)
		return true
	}
	return false
}

// runTopoNonDet is the topology-driven, in-place family (Listing 2a/6a).
func runTopoNonDet[T Value](g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[T], val []T) int32 {
	s := syncFor[T](cfg)
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	var iters int32
	for iters < opt.MaxIter {
		iters++
		var changed atomic.Int32
		if cfg.Iterate == styles.EdgeBased {
			ex.For(g.M(), sched, func(e int64) {
				dv := s.Load(&val[g.Src[e]])
				if dv >= p.Inf {
					return
				}
				relaxMin(s, cfg.Update, &val[g.Dst[e]], p.Cand(dv, e), &changed)
			})
		} else if cfg.Flow == styles.Push {
			ex.For(int64(g.N), sched, func(i int64) {
				v := int32(i)
				dv := s.Load(&val[v])
				if dv >= p.Inf {
					return
				}
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					relaxMin(s, cfg.Update, &val[g.NbrList[e]], p.Cand(dv, e), &changed)
				}
			})
		} else { // vertex pull
			ex.For(int64(g.N), sched, func(i int64) {
				v := int32(i)
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					du := s.Load(&val[g.NbrList[e]])
					if du >= p.Inf {
						continue
					}
					relaxMin(s, cfg.Update, &val[v], p.Cand(du, e), &changed)
				}
			})
		}
		if changed.Load() == 0 {
			break
		}
	}
	return iters
}

// runTopoDet is the deterministic double-buffered family (Listing 6b):
// each iteration reads only the previous iteration's values.
func runTopoDet[T Value](g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[T], val []T) int32 {
	s := syncFor[T](cfg)
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	next := make([]T, g.N)
	var iters int32
	for iters < opt.MaxIter {
		iters++
		copy(next, val)
		var changed atomic.Int32
		if cfg.Iterate == styles.EdgeBased {
			ex.For(g.M(), sched, func(e int64) {
				dv := val[g.Src[e]]
				if dv >= p.Inf {
					return
				}
				relaxMin(s, cfg.Update, &next[g.Dst[e]], p.Cand(dv, e), &changed)
			})
		} else if cfg.Flow == styles.Push {
			ex.For(int64(g.N), sched, func(i int64) {
				v := int32(i)
				dv := val[v]
				if dv >= p.Inf {
					return
				}
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					relaxMin(s, cfg.Update, &next[g.NbrList[e]], p.Cand(dv, e), &changed)
				}
			})
		} else {
			ex.For(int64(g.N), sched, func(i int64) {
				v := int32(i)
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					du := val[g.NbrList[e]]
					if du >= p.Inf {
						continue
					}
					relaxMin(s, cfg.Update, &next[v], p.Cand(du, e), &changed)
				}
			})
		}
		copy(val, next)
		if changed.Load() == 0 {
			break
		}
	}
	return iters
}

// runData is the worklist-driven family (Listing 2b/3), with or without
// duplicates, in push or pull flow. Data-driven variants are vertex-based
// and internally non-deterministic (styles.Valid rules 2 and 3).
func runData[T Value](g *graph.Graph, cfg styles.Config, opt algo.Options, p Problem[T], val []T) int32 {
	s := syncFor[T](cfg)
	stampSync := algo.SyncOf(cfg) // iteration stamps stay 32-bit
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	noDup := cfg.Drive == styles.DataDrivenNoDup
	capacity := int64(g.N) + 64
	if !noDup {
		// With duplicates allowed, one processed item can push one entry
		// per incident edge; total improvements are bounded in practice
		// but we size generously.
		capacity = 8*g.M() + int64(g.N) + 64
	}
	// The out-list takes pushes from inside parallel regions, so it gets
	// per-worker reservation buffers; the in-list is only read there.
	wlIn, wlOut := par.NewWorklist(capacity), par.NewWorklistTID(capacity, ex.Width())
	var stamp []int32
	if noDup {
		stamp = make([]int32, g.N)
	}
	push := func(tid int, u int32, itr int32) {
		if noDup {
			wlOut.PushUniqueTID(tid, u, stamp, itr, stampSync)
		} else {
			wlOut.PushTID(tid, u)
		}
	}

	// Seed the initial worklist.
	seeds := p.Seeds(g)
	if cfg.Flow == styles.Push {
		for _, v := range seeds {
			wlIn.Push(v)
		}
	} else {
		// Pull consumers are the vertices that might improve: the
		// neighbors of the seeds, deduplicated.
		mark := make([]bool, g.N)
		for _, v := range seeds {
			for _, u := range g.Neighbors(v) {
				if !mark[u] {
					mark[u] = true
					wlIn.Push(u)
				}
			}
		}
	}

	var iters int32
	for iters < opt.MaxIter && wlIn.Size() > 0 {
		iters++
		itr := iters
		if cfg.Flow == styles.Push {
			ex.ForTID(wlIn.Size(), sched, func(tid int, i int64) {
				v := wlIn.Get(i)
				dv := s.Load(&val[v])
				if dv >= p.Inf {
					return
				}
				var changed atomic.Int32
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					u := g.NbrList[e]
					if relaxMin(s, cfg.Update, &val[u], p.Cand(dv, e), &changed) {
						push(tid, u, itr)
					}
				}
			})
		} else {
			ex.ForTID(wlIn.Size(), sched, func(tid int, i int64) {
				v := wlIn.Get(i)
				improved := false
				var changed atomic.Int32
				for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
					du := s.Load(&val[g.NbrList[e]])
					if du >= p.Inf {
						continue
					}
					if relaxMin(s, cfg.Update, &val[v], p.Cand(du, e), &changed) {
						improved = true
					}
				}
				if improved {
					// v's new value may enable its neighbors to improve.
					for _, u := range g.Neighbors(v) {
						push(tid, u, itr)
					}
				}
			})
		}
		wlOut.Flush()
		wlIn.Reset()
		wlIn.Swap(wlOut)
	}
	return iters
}
