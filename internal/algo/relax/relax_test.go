package relax

import (
	"testing"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// toyProblem is a plain min-propagation: value 0 at vertex 0 spreads
// hop counts (a BFS in disguise), exercising the engine directly.
func toyProblem() Problem[int32] {
	return Problem[int32]{
		Init: func(v int32) int32 {
			if v == 0 {
				return 0
			}
			return graph.Inf
		},
		Cand:  func(val int32, e int64) int32 { return val + 1 },
		Seeds: func(g *graph.Graph) []int32 { return []int32{0} },
	}
}

func ladder() *graph.Graph {
	b := graph.NewBuilder("ladder", 10)
	for v := int32(0); v+1 < 10; v++ {
		b.AddEdge(v, v+1, 1)
	}
	b.AddEdge(0, 9, 1) // shortcut: 9 is 1 hop away
	return b.Build()
}

func wantLadder() []int32 {
	return []int32{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
}

// TestEngineAllCPUStyles drives the engine through every CPU config of
// a relaxation algorithm and checks the fixed point.
func TestEngineAllCPUStyles(t *testing.T) {
	g := ladder()
	want := wantLadder()
	for _, model := range []styles.Model{styles.OMP, styles.CPP} {
		for _, cfg := range styles.Enumerate(styles.SSSP, model) {
			val, iters := Run(g, cfg, algo.Options{Threads: 4}, toyProblem())
			if iters <= 0 {
				t.Errorf("%s: no iterations", cfg.Name())
			}
			for v := range want {
				if val[v] != want[v] {
					t.Errorf("%s: val[%d] = %d, want %d", cfg.Name(), v, val[v], want[v])
				}
			}
		}
	}
}

func TestEngineRespectsMaxIter(t *testing.T) {
	g := ladder()
	cfg := styles.Enumerate(styles.SSSP, styles.CPP)[0]
	_, iters := Run(g, cfg, algo.Options{Threads: 2, MaxIter: 2}, toyProblem())
	if iters != 2 {
		t.Errorf("iters = %d, want capped at 2", iters)
	}
}

func TestEngineEmptySeedsConvergesImmediately(t *testing.T) {
	g := ladder()
	p := toyProblem()
	p.Init = func(v int32) int32 { return graph.Inf } // nothing to spread
	p.Seeds = func(g *graph.Graph) []int32 { return nil }
	cfg := styles.Config{
		Algo: styles.SSSP, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	val, iters := Run(g, cfg, algo.Options{Threads: 2}, p)
	if iters != 0 {
		t.Errorf("iters = %d, want 0 (empty worklist)", iters)
	}
	for v, x := range val {
		if x != graph.Inf {
			t.Errorf("val[%d] = %d, want Inf", v, x)
		}
	}
}
