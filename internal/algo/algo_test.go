package algo

import (
	"testing"

	"indigo/internal/par"
	"indigo/internal/styles"
)

func TestDefaults(t *testing.T) {
	o := Options{}.Defaults(100)
	if o.Threads <= 0 {
		t.Error("Threads not defaulted")
	}
	if o.MaxIter != 108 {
		t.Errorf("MaxIter = %d, want 108", o.MaxIter)
	}
	if o.PRTol != 1e-4 || o.PRDamping != 0.85 {
		t.Errorf("PR defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Threads: 3, MaxIter: 7, PRTol: 0.5, PRDamping: 0.9}.Defaults(100)
	if o2.Threads != 3 || o2.MaxIter != 7 || o2.PRTol != 0.5 || o2.PRDamping != 0.9 {
		t.Errorf("explicit options clobbered: %+v", o2)
	}
}

func TestSchedOf(t *testing.T) {
	cases := []struct {
		cfg  styles.Config
		want par.Sched
	}{
		{styles.Config{Model: styles.OMP}, par.Static},
		{styles.Config{Model: styles.OMP, OMPSched: styles.DynamicSched}, par.Dynamic},
		{styles.Config{Model: styles.CPP}, par.Blocked},
		{styles.Config{Model: styles.CPP, CPPSched: styles.CyclicSched}, par.Cyclic},
	}
	for _, c := range cases {
		if got := SchedOf(c.cfg); got != c.want {
			t.Errorf("SchedOf(%v) = %v, want %v", c.cfg.Model, got, c.want)
		}
	}
}

func TestSchedOfPanicsOnCUDA(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SchedOf(styles.Config{Model: styles.CUDA})
}

func TestSyncOfModels(t *testing.T) {
	// The OMP model's read-modify-writes go through critical sections,
	// the C++ model's through CAS atomics (§5.3's mechanism).
	if got := SyncOf(styles.Config{Model: styles.OMP}).Name(); got != "critical" {
		t.Errorf("OMP sync = %s, want critical", got)
	}
	if got := SyncOf(styles.Config{Model: styles.CPP}).Name(); got != "cas" {
		t.Errorf("CPP sync = %s, want cas", got)
	}
}

func TestRedOf(t *testing.T) {
	cases := map[styles.CPURed]par.RedStyle{
		styles.AtomicRed:   par.RedAtomic,
		styles.CriticalRed: par.RedCritical,
		styles.ClauseRed:   par.RedClause,
	}
	for in, want := range cases {
		if got := RedOf(styles.Config{CPURed: in}); got != want {
			t.Errorf("RedOf(%v) = %v, want %v", in, got, want)
		}
	}
}
