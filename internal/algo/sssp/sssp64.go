package sssp

import (
	"container/heap"

	"indigo/internal/algo"
	"indigo/internal/algo/relax"
	"indigo/internal/graph"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// This file is the 64-bit data-type variant family (paper §4.1: the
// study evaluates the 32-bit programs, but the 64-bit versions ship
// with Indigo2). Distances are int64 — required when total path weights
// can overflow 32 bits — and run through the same generic engine, so
// every CPU style combination is available at both widths.

// Serial64 computes 64-bit shortest path lengths from src with
// Dijkstra's algorithm; it is the 64-bit verification reference.
func Serial64(g *graph.Graph, src int32) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = relax.Inf64
	}
	dist[src] = 0
	pq := &dist64Heap{{src, 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(dist64Item)
		if item.d > dist[item.v] {
			continue
		}
		for e := g.NbrIdx[item.v]; e < g.NbrIdx[item.v+1]; e++ {
			u := g.NbrList[e]
			nd := item.d + int64(g.Weights[e])
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, dist64Item{u, nd})
			}
		}
	}
	return dist
}

type dist64Item struct {
	v int32
	d int64
}

type dist64Heap []dist64Item

func (h dist64Heap) Len() int            { return len(h) }
func (h dist64Heap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h dist64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dist64Heap) Push(x interface{}) { *h = append(*h, x.(dist64Item)) }
func (h *dist64Heap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// cpuCtx64 is cpuCtx for the 64-bit engine, cached the same way.
type cpuCtx64 struct {
	g    *graph.Graph
	src  int32
	seed [1]int32
	prob relax.Problem[int64]
}

func (c *cpuCtx64) problem() relax.Problem[int64] {
	if c.prob.Cand == nil {
		c.prob = relax.Problem[int64]{
			Inf: relax.Inf64,
			Init: func(v int32) int64 {
				if v == c.src {
					return 0
				}
				return relax.Inf64
			},
			Cand: func(val int64, e int64) int64 { return val + int64(c.g.Weights[e]) },
			Seeds: func(g *graph.Graph) []int32 {
				c.seed[0] = c.src
				return c.seed[:]
			},
		}
	}
	return c.prob
}

// RunCPU64 executes the 64-bit CPU variant selected by cfg.
func RunCPU64(g *graph.Graph, cfg styles.Config, opt algo.Options) ([]int64, int32) {
	opt = opt.Defaults(g.N)
	c := scratch.Of[cpuCtx64](opt.Scratch)
	c.g, c.src = g, opt.Source
	return relax.RunT(g, cfg, opt, c.problem())
}
