// Package sssp implements the Bellman-Ford single-source-shortest-path
// family (§2), the paper's running example, in every applicable style
// combination.
package sssp

import (
	"container/heap"

	"indigo/internal/algo"
	"indigo/internal/algo/relax"
	"indigo/internal/graph"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Serial computes shortest path lengths from src with Dijkstra's
// algorithm; it is the verification reference (§4.1).
func Serial(g *graph.Graph, src int32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue
		}
		beg, end := g.NbrIdx[item.v], g.NbrIdx[item.v+1]
		for e := beg; e < end; e++ {
			u := g.NbrList[e]
			nd := item.d + g.Weights[e]
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{u, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int32
	d int32
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// cpuCtx adapts SSSP to the shared min-relaxation engine: the candidate
// distance of edge e's destination is the source's distance plus the
// edge weight (Listing 4). The context is cached on the run's scratch
// arena so the problem closures are built once and reused across runs;
// the graph and source are read through the context pointer.
type cpuCtx struct {
	g    *graph.Graph
	src  int32
	seed [1]int32
	prob relax.Problem[int32]
}

func (c *cpuCtx) problem() relax.Problem[int32] {
	if c.prob.Cand == nil {
		c.prob = relax.Problem[int32]{
			Init: func(v int32) int32 {
				if v == c.src {
					return 0
				}
				return graph.Inf
			},
			Cand: func(val int32, e int64) int32 { return val + c.g.Weights[e] },
			Seeds: func(g *graph.Graph) []int32 {
				c.seed[0] = c.src
				return c.seed[:]
			},
		}
	}
	return c.prob
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	c := scratch.Of[cpuCtx](opt.Scratch)
	c.g, c.src = g, opt.Source
	dist, iters := relax.Run(g, cfg, opt, c.problem())
	return algo.Result{Dist: dist, Iterations: iters}
}
