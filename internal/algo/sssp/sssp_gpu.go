package sssp

import (
	"indigo/internal/algo"
	"indigo/internal/algo/gpurelax"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// RunGPU executes the CUDA-model variant selected by cfg on device d and
// returns the result plus the simulated cost.
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, gpusim.Stats) {
	opt = opt.Defaults(g.N)
	src := opt.Source
	p := gpurelax.Problem{
		UseWeight: true,
		Init: func(v int32) int32 {
			if v == src {
				return 0
			}
			return graph.Inf
		},
		Seeds: func(g *graph.Graph) []int32 { return []int32{src} },
	}
	dist, iters, st := gpurelax.Run(d, g, cfg, opt, p)
	return algo.Result{Dist: dist, Iterations: iters}, st
}
