package sssp

import (
	"container/heap"
	"testing"
	"testing/quick"

	"indigo/internal/graph"
)

func TestSerialKnownGraph(t *testing.T) {
	// Diamond: 0-1 (3), 0-2 (1), 1-3 (1), 2-3 (5).
	b := graph.NewBuilder("diamond", 4)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 5)
	dist := Serial(b.Build(), 0)
	want := []int32{0, 3, 1, 4}
	for v, w := range want {
		if dist[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
}

func TestSerialUnreachable(t *testing.T) {
	b := graph.NewBuilder("two", 3)
	b.AddEdge(0, 1, 2)
	dist := Serial(b.Build(), 0)
	if dist[2] != graph.Inf {
		t.Errorf("dist[2] = %d, want Inf", dist[2])
	}
}

// TestQuickSerialMatchesBellmanFord cross-checks Dijkstra against a
// naive Bellman-Ford on random weighted graphs.
func TestQuickSerialMatchesBellmanFord(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int32(rawN%20) + 2
		b := graph.NewBuilder("r", n)
		s := seed
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%3 == 0 {
					b.AddEdge(u, v, int32(uint32(s>>33)%50)+1)
				}
			}
		}
		g := b.Build()
		got := Serial(g, 0)
		// Bellman-Ford.
		bf := make([]int32, n)
		for i := range bf {
			bf[i] = graph.Inf
		}
		bf[0] = 0
		for round := int32(0); round < n; round++ {
			for e := int64(0); e < g.M(); e++ {
				if bf[g.Src[e]] < graph.Inf {
					if nd := bf[g.Src[e]] + g.Weights[e]; nd < bf[g.Dst[e]] {
						bf[g.Dst[e]] = nd
					}
				}
			}
		}
		for v := int32(0); v < n; v++ {
			if got[v] != bf[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDistHeapOrdering(t *testing.T) {
	h := &distHeap{}
	for _, d := range []int32{5, 1, 9, 3, 7} {
		heap.Push(h, distItem{v: d, d: d})
	}
	prev := int32(-1)
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d < prev {
			t.Fatalf("heap pop out of order: %d after %d", it.d, prev)
		}
		prev = it.d
	}
}
