package sssp

import (
	"testing"

	"indigo/internal/algo"
	"indigo/internal/algo/relax"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

func diamond64() *graph.Graph {
	b := graph.NewBuilder("diamond", 4)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 5)
	return b.Build()
}

func TestSerial64MatchesSerial32(t *testing.T) {
	g := diamond64()
	d32 := Serial(g, 0)
	d64 := Serial64(g, 0)
	for v := range d32 {
		if int64(d32[v]) != d64[v] {
			t.Errorf("vertex %d: 32-bit %d vs 64-bit %d", v, d32[v], d64[v])
		}
	}
}

func TestSerial64Unreachable(t *testing.T) {
	b := graph.NewBuilder("two", 3)
	b.AddEdge(0, 1, 9)
	d := Serial64(b.Build(), 0)
	if d[2] != relax.Inf64 {
		t.Errorf("dist[2] = %d, want Inf64", d[2])
	}
}

// TestEveryCPUVariant64Verifies runs every OMP and CPP style
// combination through the 64-bit engine and checks against Dijkstra —
// the 64-bit counterpart of the suite-wide 32-bit verification.
func TestEveryCPUVariant64Verifies(t *testing.T) {
	g := diamond64()
	big := graph.NewBuilder("chain", 40)
	for v := int32(0); v+1 < 40; v++ {
		big.AddEdge(v, v+1, (v%9)+1)
	}
	big.AddEdge(0, 39, 200)
	graphs := []*graph.Graph{g, big.Build()}
	for _, gr := range graphs {
		want := Serial64(gr, 0)
		for _, model := range []styles.Model{styles.OMP, styles.CPP} {
			for _, cfg := range styles.Enumerate(styles.SSSP, model) {
				got, iters := RunCPU64(gr, cfg, algo.Options{Threads: 4})
				if iters <= 0 {
					t.Errorf("%s: no iterations", cfg.Name())
				}
				for v := range want {
					if got[v] != want[v] {
						t.Errorf("%s on %s: dist64[%d] = %d, want %d",
							cfg.Name(), gr.Name, v, got[v], want[v])
						break
					}
				}
			}
		}
	}
}

// TestRunCPU64SurvivesWideDistances uses weights that overflow int32
// when summed along a long path — the reason the 64-bit variants exist.
func TestRunCPU64SurvivesWideDistances(t *testing.T) {
	const n = 64
	b := graph.NewBuilder("wide", n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1, 1<<30-1) // near max int32 weight per hop
	}
	g := b.Build()
	want := Serial64(g, 0)
	if want[n-1] <= int64(1)<<31 {
		t.Fatalf("test graph does not exceed 32-bit range: %d", want[n-1])
	}
	cfg := styles.Config{
		Algo: styles.SSSP, Model: styles.CPP, Drive: styles.DataDrivenNoDup,
		Flow: styles.Push, Update: styles.ReadModifyWrite,
	}
	got, _ := RunCPU64(g, cfg, algo.Options{Threads: 4})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist64[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
