// Package tc implements the triangle-counting family: each triangle
// {v, u, w} with v < u < w is counted exactly once by intersecting the
// sorted adjacency lists of the two smaller endpoints. TC varies only in
// iteration space (vertex vs edge), reduction style, and the model
// scheduling dimensions (Table 2).
package tc

import (
	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Serial counts triangles single-threaded; it is the verification
// reference.
func Serial(g *graph.Graph) int64 {
	var count int64
	for v := int32(0); v < g.N; v++ {
		for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
			u := g.NbrList[e]
			if u > v {
				count += CommonAbove(g, v, u)
			}
		}
	}
	return count
}

// CommonAbove counts the common neighbors w of v and u with w > u, by
// merging the two sorted adjacency lists. With v < u < w each triangle
// is counted exactly once across the edge set.
func CommonAbove(g *graph.Graph, v, u int32) int64 {
	a := g.Neighbors(v)
	b := g.Neighbors(u)
	// Skip to the first entries above u.
	i, j := lowerBound(a, u+1), lowerBound(b, u+1)
	var count int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// lowerBound returns the first index whose value is >= x in the sorted
// slice s. The midpoint uses the overflow-safe form, not (lo+hi)/2 —
// adjacency lists never approach the lengths where the sum wraps, but
// the safe form costs nothing and matches graph.(*Graph).weight.
func lowerBound(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// cpuCtx caches the two reduction bodies plus the reusable reduction
// state on the scratch arena, so warmed-arena runs execute without heap
// allocation.
type cpuCtx struct {
	g     *graph.Graph
	red   par.Reducer
	vBody func(i int64) int64
	eBody func(e int64) int64
}

func (c *cpuCtx) bind(g *graph.Graph) {
	c.g = g
	if c.vBody != nil {
		return
	}
	c.vBody = func(i int64) int64 {
		g := c.g
		v := int32(i)
		var n int64
		for e := g.NbrIdx[v]; e < g.NbrIdx[v+1]; e++ {
			if u := g.NbrList[e]; u > v {
				n += CommonAbove(g, v, u)
			}
		}
		return n
	}
	c.eBody = func(e int64) int64 {
		g := c.g
		v, u := g.Src[e], g.Dst[e]
		if u <= v {
			return 0
		}
		return CommonAbove(g, v, u)
	}
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	sched := algo.SchedOf(cfg)
	red := algo.RedOf(cfg)
	ex := opt.Exec()
	c := scratch.Of[cpuCtx](opt.Scratch)
	c.bind(g)
	var count int64
	if cfg.Iterate == styles.EdgeBased {
		count = c.red.Int64(ex, g.M(), sched, red, c.eBody)
	} else {
		count = c.red.Int64(ex, int64(g.N), sched, red, c.vBody)
	}
	return algo.Result{Triangles: count, Iterations: 1}
}
