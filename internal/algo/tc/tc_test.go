package tc

import (
	"testing"
	"testing/quick"

	"indigo/internal/graph"
)

func k(n int32) *graph.Graph {
	b := graph.NewBuilder("k", n)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

func TestSerialKnownCounts(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int64
	}{
		{k(3), 1},
		{k(4), 4},
		{k(5), 10},
		{k(6), 20},
	}
	for _, c := range cases {
		if got := Serial(c.g); got != c.want {
			t.Errorf("%s(n=%d): %d triangles, want %d", c.g.Name, c.g.N, got, c.want)
		}
	}
	// A path has no triangles.
	b := graph.NewBuilder("path", 10)
	for v := int32(0); v+1 < 10; v++ {
		b.AddEdge(v, v+1, 1)
	}
	if got := Serial(b.Build()); got != 0 {
		t.Errorf("path has %d triangles", got)
	}
	// A 4-cycle has none; adding one diagonal creates two.
	c4 := graph.NewBuilder("c4", 4)
	c4.AddEdge(0, 1, 1)
	c4.AddEdge(1, 2, 1)
	c4.AddEdge(2, 3, 1)
	c4.AddEdge(3, 0, 1)
	g := c4.Build()
	if got := Serial(g); got != 0 {
		t.Errorf("C4 has %d triangles", got)
	}
	c4.AddEdge(0, 2, 1)
	if got := Serial(c4.Build()); got != 2 {
		t.Errorf("C4+diagonal has %d triangles, want 2", got)
	}
}

func TestLowerBound(t *testing.T) {
	s := []int32{2, 4, 4, 8, 10}
	cases := []struct {
		x    int32
		want int
	}{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 3}, {10, 4}, {11, 5}}
	for _, c := range cases {
		if got := lowerBound(s, c.x); got != c.want {
			t.Errorf("lowerBound(%v, %d) = %d, want %d", s, c.x, got, c.want)
		}
	}
	if got := lowerBound(nil, 5); got != 0 {
		t.Errorf("lowerBound(nil) = %d", got)
	}
}

func TestCommonAbove(t *testing.T) {
	g := k(5)
	// In K5, vertices 0 and 1 share neighbors {2,3,4}; those above 1 are
	// all three.
	if got := CommonAbove(g, 0, 1); got != 3 {
		t.Errorf("CommonAbove(0,1) = %d, want 3", got)
	}
	if got := CommonAbove(g, 3, 4); got != 0 {
		t.Errorf("CommonAbove(3,4) = %d, want 0", got)
	}
}

// TestQuickSerialMatchesNaive cross-checks the ordered merge count
// against a brute-force O(n^3) enumeration on random graphs.
func TestQuickSerialMatchesNaive(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int32(rawN%12) + 3
		b := graph.NewBuilder("r", n)
		s := seed
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%3 == 0 {
					b.AddEdge(u, v, 1)
				}
			}
		}
		g := b.Build()
		var naive int64
		for a := int32(0); a < n; a++ {
			for bb := a + 1; bb < n; bb++ {
				if !g.HasEdge(a, bb) {
					continue
				}
				for c := bb + 1; c < n; c++ {
					if g.HasEdge(a, c) && g.HasEdge(bb, c) {
						naive++
					}
				}
			}
		}
		return Serial(g) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
