package tc

import (
	"indigo/internal/algo"
	"indigo/internal/algo/gpu"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

const tpb = 256

// sharedCntTag identifies the block's shared triangle counter.
const sharedCntTag = 1

// RunGPU executes the CUDA-model variant selected by cfg on device d and
// returns the result plus the simulated cost. TC's GPU dimensions are
// iteration space (vertex vs edge, including warp/block granularity on
// both since the adjacency intersection is an inner loop), persistence,
// Atomic vs CudaAtomic (only the count accumulation, which is why TC's
// Fig. 1 ratios are small), and the GPU reduction style.
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, gpusim.Stats) {
	opt = opt.Defaults(g.N)
	dg := gpu.Upload(d, g)
	o := gpu.OpsOf(cfg)
	count := d.AllocI64(1)
	n := int64(g.N)

	items := n
	if cfg.Iterate == styles.EdgeBased {
		items = dg.M
	}
	needsBarrier := cfg.GPURed != styles.GlobalAdd

	kern := gpusim.Kernel(func(w *gpusim.Warp) {
		acc := newCountAcc(cfg, o, count)
		persist := cfg.Persist == styles.Persistent
		switch cfg.Iterate {
		case styles.EdgeBased:
			// One directed edge (v, u) per processor; count when v < u.
			handleEdge := func(e int64) {
				v := int64(w.LdI32(dg.Src, e))
				u := int64(w.LdI32(dg.Dst, e))
				if v < u {
					acc.add(w, commonAboveGPU(w, dg, v, u))
				}
			}
			switch cfg.Gran {
			case styles.ThreadGran:
				gpu.ThreadItems(w, items, persist, func(b int64, cnt int) {
					src := w.CoalLdI32(dg.Src, b, cnt)
					dst := w.CoalLdI32(dg.Dst, b, cnt)
					w.Op(2)
					for l := 0; l < cnt; l++ {
						if v, u := int64(src[l]), int64(dst[l]); v < u {
							acc.add(w, commonAboveGPU(w, dg, v, u))
						}
					}
				})
			case styles.WarpGran:
				gpu.WarpItems(w, items, persist, handleEdge)
			default:
				gpu.BlockItems(w, items, persist, func(e int64) {
					// Only one warp of the block does the merge; the
					// rest idle (the paper's observation that block
					// granularity wastes parallelism on low-work items).
					if w.WarpInBlock == 0 {
						handleEdge(e)
					}
				})
			}
		default: // vertex-based
			handleVertex := func(v int64, iter gpu.RangeFn) {
				beg := w.LdI64(dg.NbrIdx, v)
				end := w.LdI64(dg.NbrIdx, v+1)
				iter(w, beg, end, func(_ int, _ int64, u int32) bool {
					if int64(u) > v {
						acc.add(w, commonAboveGPU(w, dg, v, int64(u)))
					}
					return true
				})
			}
			k := gpu.ItemKernel(cfg, dg, items, gpu.Identity, func(w *gpusim.Warp, v int64, iter gpu.RangeFn) {
				handleVertex(v, iter)
			})
			k(w)
		}
		acc.flush(w)
	})

	grid := gpu.Grid(d, cfg, items, tpb)
	st := d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: needsBarrier}, kern)
	return algo.Result{Triangles: count.Host()[0], Iterations: 1}, st
}

// commonAboveGPU counts common neighbors w > u of v and u with a merge
// over the two sorted adjacency lists, skipping to the first entries
// above u with device binary searches.
func commonAboveGPU(w *gpusim.Warp, dg *gpu.DevGraph, v, u int64) int64 {
	ab, ae := w.LdI64(dg.NbrIdx, v), w.LdI64(dg.NbrIdx, v+1)
	bb, be := w.LdI64(dg.NbrIdx, u), w.LdI64(dg.NbrIdx, u+1)
	i := lowerBoundGPU(w, dg.NbrList, ab, ae, int32(u)+1)
	j := lowerBoundGPU(w, dg.NbrList, bb, be, int32(u)+1)
	var count int64
	for i < ae && j < be {
		a := w.LdI32(dg.NbrList, i)
		b := w.LdI32(dg.NbrList, j)
		w.Op(2)
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// lowerBoundGPU binary-searches [lo, hi) of list for the first element
// >= x, charging its loads.
func lowerBoundGPU(w *gpusim.Warp, list *gpusim.I32, lo, hi int64, x int32) int64 {
	for lo < hi {
		mid := (lo + hi) / 2
		w.Op(2)
		if w.LdI32(list, mid) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// countAcc realizes the three GPU reduction styles for the triangle
// count (Listing 10), with the single global add going through the
// configured atomics flavor.
type countAcc struct {
	style  styles.GPURed
	o      gpu.Ops
	count  *gpusim.I64
	local  int64
	shared []int64
}

func newCountAcc(cfg styles.Config, o gpu.Ops, count *gpusim.I64) *countAcc {
	return &countAcc{style: cfg.GPURed, o: o, count: count}
}

func (a *countAcc) add(w *gpusim.Warp, v int64) {
	if v == 0 {
		return
	}
	switch a.style {
	case styles.GlobalAdd:
		a.o.AddI64(w, a.count, 0, v)
	case styles.BlockAdd:
		if a.shared == nil {
			a.shared = w.SharedI64(sharedCntTag, 1)
		}
		w.BlockAtomicAddI64(a.shared, 0, v)
	case styles.ReductionAdd:
		w.Op(1)
		a.local += v
	}
}

func (a *countAcc) flush(w *gpusim.Warp) {
	switch a.style {
	case styles.BlockAdd:
		if a.shared == nil {
			a.shared = w.SharedI64(sharedCntTag, 1)
		}
		w.Sync()
		if w.WarpInBlock == 0 {
			a.o.AddI64(w, a.count, 0, w.SharedLdI64(a.shared, 0))
		}
	case styles.ReductionAdd:
		// Register partials were warp-reduced implicitly; combine the
		// block's warps in shared memory, then one global add.
		shared := w.SharedI64(sharedCntTag, 1)
		w.BlockAtomicAddI64(shared, 0, a.local)
		w.Sync()
		if w.WarpInBlock == 0 {
			a.o.AddI64(w, a.count, 0, w.SharedLdI64(shared, 0))
		}
	}
}
