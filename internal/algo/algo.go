// Package algo holds the types shared by the six algorithm families:
// run options, results, and the mapping from style configurations to the
// CPU substrate's scheduling and synchronization choices.
package algo

import (
	"indigo/internal/guard"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
	"indigo/internal/trace"
)

// Options configures a variant run.
type Options struct {
	// Threads is the CPU worker count; 0 means par.Threads().
	Threads int
	// Pool, when non-nil, pins every parallel region of the run to one
	// persistent worker pool instead of acquiring pools per region from
	// the process-wide free list. Supervisors set it to reuse workers
	// across the variants of a sweep (and replace it when they abandon a
	// timed-out run). It is honored only when its width matches the
	// resolved Threads count, since clause reductions and worklist
	// buffers size per-thread state by that count.
	Pool *par.Pool
	// Scratch, when non-nil, supplies the run's working memory: kernels
	// check out their per-run O(N)/O(M) state (value arrays, worklists,
	// stamps) from it instead of allocating, and reuse cached kernel
	// contexts across runs. nil keeps allocate-per-run behavior. The
	// caller owns the arena lifecycle: result slices alias arena memory,
	// so the arena must not be Reset (or handed to another run) until
	// the Result is consumed. See DESIGN.md §9.
	Scratch *scratch.Arena
	// Source is the root vertex for BFS and SSSP.
	Source int32
	// MaxIter caps outer iterations of iterative algorithms as a safety
	// net; 0 means a generous default derived from the graph size.
	MaxIter int32
	// PRTol is the PageRank convergence threshold on the total residual;
	// 0 means 1e-4.
	PRTol float64
	// PRDamping is the PageRank damping factor; 0 means 0.85.
	PRDamping float64
	// Guard, when non-nil, makes the run cooperatively cancelable: every
	// parallel region polls the token at amortized checkpoints, kernels
	// poll it once per outer round, and (with Scratch set) the arena
	// charges fresh allocations against the token's byte budget. A trip
	// unwinds the kernel via a typed panic; runner.RunCPU/RunGPU convert
	// it to the token's sentinel error. nil means unguarded — the hot
	// loops then carry no checkpoint branches at all.
	Guard *guard.Token
	// Trace, when live, is the parent span timed runs record under:
	// runner.TimeCPU/MeasureGPU open child spans for acquisition and the
	// kernel proper, and the GPU simulator tags launches. The zero value
	// disables tracing at a nil-check per span site (see package trace).
	Trace trace.Ctx
}

// Defaults fills zero fields given the vertex count n.
func (o Options) Defaults(n int32) Options {
	if o.Threads <= 0 {
		o.Threads = par.Threads()
	}
	if o.MaxIter <= 0 {
		// Distance relaxations need at most n iterations; the +8 keeps
		// tiny graphs from tripping the cap.
		o.MaxIter = n + 8
	}
	if o.PRTol <= 0 {
		o.PRTol = 1e-4
	}
	if o.PRDamping <= 0 {
		o.PRDamping = 0.85
	}
	return o
}

// Exec returns the executor a variant's parallel regions should run on:
// the pinned Pool when one is set and its width matches Threads, else
// the default free-list-pooled executor for Threads workers. Call it
// after Defaults has resolved Threads.
func (o Options) Exec() par.Executor {
	if o.Pool != nil && o.Pool.Width() == o.Threads && !o.Pool.Closed() {
		return o.Pool.Guarded(o.Guard)
	}
	return par.FixedGuarded(o.Threads, o.Guard)
}

// Result carries the output of one variant run. Only the fields relevant
// to the algorithm are set.
type Result struct {
	// Dist holds per-vertex hop counts (BFS) or path lengths (SSSP);
	// graph.Inf marks unreachable vertices.
	Dist []int32
	// Label holds per-vertex component labels (CC), the minimum vertex
	// id in each component.
	Label []int32
	// InSet marks the maximal independent set membership (MIS).
	InSet []bool
	// Rank holds PageRank scores in the unnormalized formulation
	// (steady-state sum equals the vertex count).
	Rank []float32
	// Triangles is the triangle count (TC).
	Triangles int64
	// Iterations is the number of outer iterations executed.
	Iterations int32
}

// Detach returns a copy of r whose slices no longer alias the run's
// scratch arena, so the result can outlive the arena's next Reset.
// Callers that consume results before resetting (the sweep supervisor
// verifies in place) never need it.
func (r Result) Detach() Result {
	if r.Dist != nil {
		r.Dist = append([]int32(nil), r.Dist...)
	}
	if r.Label != nil {
		r.Label = append([]int32(nil), r.Label...)
	}
	if r.InSet != nil {
		r.InSet = append([]bool(nil), r.InSet...)
	}
	if r.Rank != nil {
		r.Rank = append([]float32(nil), r.Rank...)
	}
	return r
}

// SchedOf maps a config's model-specific scheduling style to the par
// substrate's schedule.
func SchedOf(c styles.Config) par.Sched {
	switch c.Model {
	case styles.OMP:
		if c.OMPSched == styles.DynamicSched {
			return par.Dynamic
		}
		return par.Static
	case styles.CPP:
		if c.CPPSched == styles.CyclicSched {
			return par.Cyclic
		}
		return par.Blocked
	}
	panic("algo.SchedOf: not a CPU model")
}

// critical/critical64 are the process-wide OpenMP critical sections.
// They are singletons on purpose, and for two reasons: an unnamed OpenMP
// `critical` is one global lock per program, so sharing one mutex across
// a run's regions is the faithful semantics; and returning package
// singletons keeps SyncOf allocation-free, which the zero-allocation
// steady state of warmed-arena runs depends on. (Concurrent sweep
// workers running OMP variants share the lock too — the supervisor runs
// timed tasks one at a time, so measurements never contend across runs.)
var (
	critical   par.Critical
	critical64 par.Critical64
)

// SyncOf returns the synchronization implementation of the config's
// model: CAS atomics for the C++ model, critical sections for OpenMP's
// read-modify-writes (see package par).
func SyncOf(c styles.Config) par.Sync {
	switch c.Model {
	case styles.OMP:
		return &critical
	case styles.CPP:
		return par.CAS{}
	}
	panic("algo.SyncOf: not a CPU model")
}

// Sync64Of is SyncOf for the 64-bit data-type variants.
func Sync64Of(c styles.Config) par.Sync64 {
	switch c.Model {
	case styles.OMP:
		return &critical64
	case styles.CPP:
		return par.CAS64{}
	}
	panic("algo.Sync64Of: not a CPU model")
}

// RedOf maps the CPU reduction style dimension to the par substrate.
func RedOf(c styles.Config) par.RedStyle {
	switch c.CPURed {
	case styles.AtomicRed:
		return par.RedAtomic
	case styles.CriticalRed:
		return par.RedCritical
	case styles.ClauseRed:
		return par.RedClause
	}
	panic("algo.RedOf: unknown reduction style")
}
