// Package cc implements the connected-components family via min-label
// propagation: every vertex converges to the smallest vertex id in its
// component, in every applicable style combination.
package cc

import (
	"indigo/internal/algo"
	"indigo/internal/algo/relax"
	"indigo/internal/graph"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Serial computes canonical component labels (the minimum vertex id per
// component) with BFS sweeps; it is the verification reference (§4.1).
func Serial(g *graph.Graph) []int32 {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for root := int32(0); root < g.N; root++ {
		if label[root] >= 0 {
			continue
		}
		// root is the smallest unvisited id, hence the minimum of its
		// component.
		label[root] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if label[u] < 0 {
					label[u] = root
					queue = append(queue, u)
				}
			}
		}
	}
	return label
}

// cpuCtx adapts CC to the shared min-relaxation engine: labels start at
// the vertex id and the candidate label across any edge is the source's
// label itself. The context is cached on the run's scratch arena; the
// identity seeds slice grows once and is reused across runs.
type cpuCtx struct {
	seeds []int32
	prob  relax.Problem[int32]
}

func (c *cpuCtx) problem() relax.Problem[int32] {
	if c.prob.Cand == nil {
		c.prob = relax.Problem[int32]{
			Init: func(v int32) int32 { return v },
			Cand: func(val int32, e int64) int32 { return val },
			Seeds: func(g *graph.Graph) []int32 {
				// Every vertex's label "changed" at initialization.
				if int32(cap(c.seeds)) < g.N {
					c.seeds = make([]int32, g.N)
				}
				c.seeds = c.seeds[:g.N]
				for v := int32(0); v < g.N; v++ {
					c.seeds[v] = v
				}
				return c.seeds
			},
		}
	}
	return c.prob
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	c := scratch.Of[cpuCtx](opt.Scratch)
	label, iters := relax.Run(g, cfg, opt, c.problem())
	return algo.Result{Label: label, Iterations: iters}
}
