package cc

import (
	"testing"
	"testing/quick"

	"indigo/internal/graph"
)

func TestSerialComponents(t *testing.T) {
	// Three components: {0,1,2}, {3,4}, {5}.
	b := graph.NewBuilder("tri", 6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	label := Serial(b.Build())
	want := []int32{0, 0, 0, 3, 3, 5}
	for v, w := range want {
		if label[v] != w {
			t.Errorf("label[%d] = %d, want %d", v, label[v], w)
		}
	}
}

func TestSerialConnected(t *testing.T) {
	b := graph.NewBuilder("ring", 8)
	for v := int32(0); v < 8; v++ {
		b.AddEdge(v, (v+1)%8, 1)
	}
	for v, l := range Serial(b.Build()) {
		if l != 0 {
			t.Errorf("label[%d] = %d, want 0", v, l)
		}
	}
}

// TestQuickSerialLabelIsComponentMin checks on random graphs that every
// label is the minimum id reachable from the vertex.
func TestQuickSerialLabelIsComponentMin(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int32(rawN%25) + 1
		b := graph.NewBuilder("r", n)
		s := seed
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%5 == 0 {
					b.AddEdge(u, v, 1)
				}
			}
		}
		g := b.Build()
		label := Serial(g)
		// Property 1: labels are idempotent roots (label[label[v]] ==
		// label[v]) and label[v] <= v.
		for v := int32(0); v < n; v++ {
			if label[v] > v || label[label[v]] != label[v] {
				return false
			}
		}
		// Property 2: endpoints of every edge share a label.
		for e := int64(0); e < g.M(); e++ {
			if label[g.Src[e]] != label[g.Dst[e]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
