package cc

import (
	"indigo/internal/algo"
	"indigo/internal/algo/gpurelax"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// RunGPU executes the CUDA-model variant selected by cfg on device d and
// returns the result plus the simulated cost.
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, gpusim.Stats) {
	opt = opt.Defaults(g.N)
	p := gpurelax.Problem{
		Init: func(v int32) int32 { return v },
		Seeds: func(g *graph.Graph) []int32 {
			seeds := make([]int32, g.N)
			for v := int32(0); v < g.N; v++ {
				seeds[v] = v
			}
			return seeds
		},
	}
	label, iters, st := gpurelax.Run(d, g, cfg, opt, p)
	return algo.Result{Label: label, Iterations: iters}, st
}
