package mis

import (
	"testing"
	"testing/quick"

	"indigo/internal/graph"
)

func TestPriorityDistinctAndStable(t *testing.T) {
	seen := make(map[uint64]int32)
	for v := int32(0); v < 100000; v++ {
		p := Priority(v)
		if u, dup := seen[p]; dup {
			t.Fatalf("Priority collision between %d and %d", u, v)
		}
		seen[p] = v
	}
	if Priority(42) != Priority(42) {
		t.Fatal("Priority not stable")
	}
}

func TestHigherIsStrictTotalOrder(t *testing.T) {
	f := func(a, b int32) bool {
		if a == b {
			return !higher(a, b)
		}
		return higher(a, b) != higher(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerialOnStar(t *testing.T) {
	// Star: either the hub alone or all leaves form the MIS; the greedy
	// result must be one of the two and valid.
	b := graph.NewBuilder("star", 8)
	for v := int32(1); v < 8; v++ {
		b.AddEdge(0, v, 1)
	}
	g := b.Build()
	inSet := Serial(g)
	if inSet[0] {
		for v := 1; v < 8; v++ {
			if inSet[v] {
				t.Fatal("hub and leaf both in set")
			}
		}
	} else {
		for v := 1; v < 8; v++ {
			if !inSet[v] {
				t.Fatal("hub out but a leaf missing")
			}
		}
	}
}

func TestSerialPropertiesOnRandomGraphs(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int32(rawN%30) + 2
		b := graph.NewBuilder("r", n)
		s := seed
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%4 == 0 {
					b.AddEdge(u, v, 1)
				}
			}
		}
		g := b.Build()
		inSet := Serial(g)
		// Independence.
		for v := int32(0); v < n; v++ {
			if !inSet[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if inSet[u] {
					return false
				}
			}
		}
		// Maximality.
		for v := int32(0); v < n; v++ {
			if inSet[v] {
				continue
			}
			covered := false
			for _, u := range g.Neighbors(v) {
				if inSet[u] {
					covered = true
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialIncludesIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder("iso", 5)
	b.AddEdge(0, 1, 1)
	g := b.Build() // vertices 2, 3, 4 isolated
	inSet := Serial(g)
	for v := 2; v < 5; v++ {
		if !inSet[v] {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
}
