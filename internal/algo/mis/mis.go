// Package mis implements the maximal-independent-set family. All
// variants use the same fixed pseudo-random per-vertex priorities and
// the local-maximum rule, which makes the resulting set unique (the
// greedy-by-priority MIS) regardless of execution order — that is what
// lets every parallel variant be verified against the serial reference
// (§4.1).
package mis

import (
	"sort"
	"sync/atomic"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/styles"
)

// Vertex status values. Statuses only ever move Undecided -> In/Out.
const (
	undecided int32 = 0
	in        int32 = 1
	out       int32 = 2
)

// Priority returns vertex v's fixed priority (a splitmix-style hash).
// Ties are impossible: the comparison is on (Priority(v), v).
func Priority(v int32) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// higher reports whether vertex a has higher priority than vertex b.
func higher(a, b int32) bool {
	pa, pb := Priority(a), Priority(b)
	if pa != pb {
		return pa > pb
	}
	return a > b
}

// Serial computes the greedy-by-priority MIS, the unique fixed point of
// the parallel local-max rule; it is the verification reference.
func Serial(g *graph.Graph) []bool {
	order := make([]int32, g.N)
	for v := int32(0); v < g.N; v++ {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return higher(order[i], order[j]) })
	inSet := make([]bool, g.N)
	blocked := make([]bool, g.N)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inSet
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	status := make([]int32, g.N)
	// Isolated vertices are in every MIS; deciding them up front keeps
	// the edge-based variants (which only visit edge endpoints) correct.
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) == 0 {
			status[v] = in
		}
	}
	var iters int32
	if cfg.Drive.IsDataDriven() {
		iters = runData(g, cfg, opt, status)
	} else if cfg.Det == styles.Deterministic {
		iters = runTopoDet(g, cfg, opt, status)
	} else {
		iters = runTopoNonDet(g, cfg, opt, status)
	}
	inSet := make([]bool, g.N)
	for v := range status {
		inSet[v] = status[v] == in
	}
	return algo.Result{InSet: inSet, Iterations: iters}
}

// localMax reports whether v outranks every undecided or in-set neighbor
// (reading statuses through read). Out neighbors no longer compete.
func localMax(g *graph.Graph, v int32, read func(u int32) int32) bool {
	for _, u := range g.Neighbors(v) {
		if read(u) != out && higher(u, v) {
			return false
		}
	}
	return true
}

// runTopoNonDet sweeps all vertices, updating statuses in place.
func runTopoNonDet(g *graph.Graph, cfg styles.Config, opt algo.Options, status []int32) int32 {
	s := algo.SyncOf(cfg)
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	read := func(u int32) int32 { return s.Load(&status[u]) }
	var iters int32
	for iters < opt.MaxIter {
		iters++
		var changed atomic.Int32
		decide := func(v int32) {
			if s.Load(&status[v]) != undecided {
				return
			}
			if cfg.Flow == styles.Pull {
				// Pull: v reads neighbors and writes only itself.
				for _, u := range g.Neighbors(v) {
					if s.Load(&status[u]) == in {
						s.Store(&status[v], out)
						changed.Store(1)
						return
					}
				}
				if localMax(g, v, read) {
					s.Store(&status[v], in)
					changed.Store(1)
				}
			} else {
				// Push: v enters the set and pushes Out to neighbors.
				if localMax(g, v, read) {
					s.Store(&status[v], in)
					for _, u := range g.Neighbors(v) {
						s.Max(&status[u], out) // Undecided -> Out; In impossible
					}
					changed.Store(1)
				}
			}
		}
		if cfg.Iterate == styles.EdgeBased {
			// Edge-based: examine each edge's source endpoint; the extra
			// re-examinations are redundant but harmless (idempotent).
			ex.For(g.M(), sched, func(e int64) { decide(g.Src[e]) })
		} else {
			ex.For(int64(g.N), sched, func(i int64) { decide(int32(i)) })
		}
		if changed.Load() == 0 {
			break
		}
	}
	return iters
}

// runTopoDet is the double-buffered deterministic family: decisions in
// iteration k read only iteration k-1 statuses.
func runTopoDet(g *graph.Graph, cfg styles.Config, opt algo.Options, status []int32) int32 {
	s := algo.SyncOf(cfg)
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	next := make([]int32, g.N)
	read := func(u int32) int32 { return status[u] }
	var iters int32
	for iters < opt.MaxIter {
		iters++
		copy(next, status)
		var changed atomic.Int32
		decide := func(v int32) {
			if status[v] != undecided {
				return
			}
			if cfg.Flow == styles.Pull {
				for _, u := range g.Neighbors(v) {
					if status[u] == in {
						s.Store(&next[v], out)
						changed.Store(1)
						return
					}
				}
				if localMax(g, v, read) {
					s.Store(&next[v], in)
					changed.Store(1)
				}
			} else {
				if localMax(g, v, read) {
					s.Store(&next[v], in)
					for _, u := range g.Neighbors(v) {
						if status[u] == undecided {
							s.Max(&next[u], out)
						}
					}
					changed.Store(1)
				}
			}
		}
		if cfg.Iterate == styles.EdgeBased {
			ex.For(g.M(), sched, func(e int64) { decide(g.Src[e]) })
		} else {
			ex.For(int64(g.N), sched, func(i int64) { decide(int32(i)) })
		}
		copy(status, next)
		if changed.Load() == 0 {
			break
		}
	}
	return iters
}

// runData is the worklist-driven family (no-duplicates only, Table 2):
// the worklist holds vertices to (re)examine, seeded with every vertex;
// a decision re-enqueues the undecided neighbors it may have unblocked.
func runData(g *graph.Graph, cfg styles.Config, opt algo.Options, status []int32) int32 {
	s := algo.SyncOf(cfg)
	sched := algo.SchedOf(cfg)
	ex := opt.Exec()
	// The out-list is pushed to from inside parallel regions, so it gets
	// per-worker reservation buffers; the in-list is only read there.
	wlIn := par.NewWorklist(int64(g.N) + 64)
	wlOut := par.NewWorklistTID(int64(g.N)+64, ex.Width())
	stamp := make([]int32, g.N)
	for v := int32(0); v < g.N; v++ {
		wlIn.Push(v)
	}
	read := func(u int32) int32 { return s.Load(&status[u]) }
	var iters int32
	for iters < opt.MaxIter && wlIn.Size() > 0 {
		iters++
		itr := iters
		pushNbrs := func(tid int, u int32) {
			for _, w := range g.Neighbors(u) {
				if s.Load(&status[w]) == undecided {
					wlOut.PushUniqueTID(tid, w, stamp, itr, s)
				}
			}
		}
		ex.ForTID(wlIn.Size(), sched, func(tid int, i int64) {
			v := wlIn.Get(i)
			if s.Load(&status[v]) != undecided {
				return
			}
			if cfg.Flow == styles.Pull {
				for _, u := range g.Neighbors(v) {
					if s.Load(&status[u]) == in {
						s.Store(&status[v], out)
						pushNbrs(tid, v)
						return
					}
				}
				if localMax(g, v, read) {
					s.Store(&status[v], in)
					pushNbrs(tid, v)
				}
			} else {
				if localMax(g, v, read) {
					s.Store(&status[v], in)
					for _, u := range g.Neighbors(v) {
						if s.Max(&status[u], out) == undecided {
							// u just went Out: its undecided neighbors
							// may have become local maxima.
							pushNbrs(tid, u)
						}
					}
				}
			}
		})
		wlOut.Flush()
		wlIn.Reset()
		wlIn.Swap(wlOut)
	}
	return iters
}
