// Package mis implements the maximal-independent-set family. All
// variants use the same fixed pseudo-random per-vertex priorities and
// the local-maximum rule, which makes the resulting set unique (the
// greedy-by-priority MIS) regardless of execution order — that is what
// lets every parallel variant be verified against the serial reference
// (§4.1).
package mis

import (
	"sort"
	"sync/atomic"

	"indigo/internal/algo"
	"indigo/internal/graph"
	"indigo/internal/par"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Vertex status values. Statuses only ever move Undecided -> In/Out.
const (
	undecided int32 = 0
	in        int32 = 1
	out       int32 = 2
)

// Priority returns vertex v's fixed priority (a splitmix-style hash).
// Ties are impossible: the comparison is on (Priority(v), v).
func Priority(v int32) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// higher reports whether vertex a has higher priority than vertex b.
func higher(a, b int32) bool {
	pa, pb := Priority(a), Priority(b)
	if pa != pb {
		return pa > pb
	}
	return a > b
}

// Serial computes the greedy-by-priority MIS, the unique fixed point of
// the parallel local-max rule; it is the verification reference.
func Serial(g *graph.Graph) []bool {
	order := make([]int32, g.N)
	for v := int32(0); v < g.N; v++ {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return higher(order[i], order[j]) })
	inSet := make([]bool, g.N)
	blocked := make([]bool, g.N)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inSet
}

// cpuCtx holds one MIS run's working state plus the loop bodies, built
// once and cached on the scratch arena. The bodies capture only the
// context pointer; everything that varies between runs (graph, config,
// checked-out slices, current iteration) is rebound through fields, so
// warmed-arena runs execute without heap allocation.
type cpuCtx struct {
	g     *graph.Graph
	cfg   styles.Config
	ar    *scratch.Arena
	s     par.Sync
	sched par.Sched
	ex    par.Executor

	status []int32
	next   []int32
	stamp  []int32
	wlIn   *par.Worklist
	wlOut  *par.Worklist

	itr     int32
	changed atomic.Int32

	readND        func(u int32) int32
	readDet       func(u int32) int32
	decideNDVert  func(i int64)
	decideNDEdge  func(e int64)
	decideDetVert func(i int64)
	decideDetEdge func(e int64)
	dataBody      func(tid int, i int64)
}

func (c *cpuCtx) bind(g *graph.Graph, cfg styles.Config, opt algo.Options) {
	c.g, c.cfg, c.ar = g, cfg, opt.Scratch
	c.s = algo.SyncOf(cfg)
	c.sched = algo.SchedOf(cfg)
	c.ex = opt.Exec()
	c.status = scratch.Slice[int32](opt.Scratch, int(g.N))
	if c.readND != nil {
		return
	}
	c.readND = func(u int32) int32 { return c.s.Load(&c.status[u]) }
	c.readDet = func(u int32) int32 { return c.status[u] }
	c.decideNDVert = func(i int64) { c.decideND(int32(i)) }
	c.decideNDEdge = func(e int64) { c.decideND(c.g.Src[e]) }
	c.decideDetVert = func(i int64) { c.decideDet(int32(i)) }
	c.decideDetEdge = func(e int64) { c.decideDet(c.g.Src[e]) }
	c.dataBody = func(tid int, i int64) { c.decideData(tid, c.wlIn.Get(i)) }
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	c := scratch.Of[cpuCtx](opt.Scratch)
	c.bind(g, cfg, opt)
	// Isolated vertices are in every MIS; deciding them up front keeps
	// the edge-based variants (which only visit edge endpoints) correct.
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) == 0 {
			c.status[v] = in
		}
	}
	var iters int32
	if cfg.Drive.IsDataDriven() {
		iters = c.runData(opt)
	} else if cfg.Det == styles.Deterministic {
		iters = c.runTopoDet(opt)
	} else {
		iters = c.runTopoNonDet(opt)
	}
	inSet := scratch.Slice[bool](opt.Scratch, int(g.N))
	for v := range c.status {
		inSet[v] = c.status[v] == in
	}
	return algo.Result{InSet: inSet, Iterations: iters}
}

// localMax reports whether v outranks every undecided or in-set neighbor
// (reading statuses through read). Out neighbors no longer compete.
func localMax(g *graph.Graph, v int32, read func(u int32) int32) bool {
	for _, u := range g.Neighbors(v) {
		if read(u) != out && higher(u, v) {
			return false
		}
	}
	return true
}

// decideND updates v's status in place (the topology-driven
// non-deterministic rule).
func (c *cpuCtx) decideND(v int32) {
	g, s := c.g, c.s
	if s.Load(&c.status[v]) != undecided {
		return
	}
	if c.cfg.Flow == styles.Pull {
		// Pull: v reads neighbors and writes only itself.
		for _, u := range g.Neighbors(v) {
			if s.Load(&c.status[u]) == in {
				s.Store(&c.status[v], out)
				c.changed.Store(1)
				return
			}
		}
		if localMax(g, v, c.readND) {
			s.Store(&c.status[v], in)
			c.changed.Store(1)
		}
	} else {
		// Push: v enters the set and pushes Out to neighbors.
		if localMax(g, v, c.readND) {
			s.Store(&c.status[v], in)
			for _, u := range g.Neighbors(v) {
				s.Max(&c.status[u], out) // Undecided -> Out; In impossible
			}
			c.changed.Store(1)
		}
	}
}

// runTopoNonDet sweeps all vertices, updating statuses in place.
func (c *cpuCtx) runTopoNonDet(opt algo.Options) int32 {
	g := c.g
	var iters int32
	for iters < opt.MaxIter {
		iters++
		c.changed.Store(0)
		if c.cfg.Iterate == styles.EdgeBased {
			// Edge-based: examine each edge's source endpoint; the extra
			// re-examinations are redundant but harmless (idempotent).
			c.ex.For(g.M(), c.sched, c.decideNDEdge)
		} else {
			c.ex.For(int64(g.N), c.sched, c.decideNDVert)
		}
		if c.changed.Load() == 0 {
			break
		}
	}
	return iters
}

// decideDet writes v's decision into the next-iteration buffer, reading
// only previous-iteration statuses.
func (c *cpuCtx) decideDet(v int32) {
	g, s := c.g, c.s
	if c.status[v] != undecided {
		return
	}
	if c.cfg.Flow == styles.Pull {
		for _, u := range g.Neighbors(v) {
			if c.status[u] == in {
				s.Store(&c.next[v], out)
				c.changed.Store(1)
				return
			}
		}
		if localMax(g, v, c.readDet) {
			s.Store(&c.next[v], in)
			c.changed.Store(1)
		}
	} else {
		if localMax(g, v, c.readDet) {
			s.Store(&c.next[v], in)
			for _, u := range g.Neighbors(v) {
				if c.status[u] == undecided {
					s.Max(&c.next[u], out)
				}
			}
			c.changed.Store(1)
		}
	}
}

// runTopoDet is the double-buffered deterministic family: decisions in
// iteration k read only iteration k-1 statuses.
func (c *cpuCtx) runTopoDet(opt algo.Options) int32 {
	g := c.g
	c.next = scratch.Slice[int32](c.ar, int(g.N))
	var iters int32
	for iters < opt.MaxIter {
		iters++
		copy(c.next, c.status)
		c.changed.Store(0)
		if c.cfg.Iterate == styles.EdgeBased {
			c.ex.For(g.M(), c.sched, c.decideDetEdge)
		} else {
			c.ex.For(int64(g.N), c.sched, c.decideDetVert)
		}
		copy(c.status, c.next)
		if c.changed.Load() == 0 {
			break
		}
	}
	return iters
}

// pushNbrs re-enqueues u's undecided neighbors for re-examination.
func (c *cpuCtx) pushNbrs(tid int, u int32) {
	for _, w := range c.g.Neighbors(u) {
		if c.s.Load(&c.status[w]) == undecided {
			c.wlOut.PushUniqueTID(tid, w, c.stamp, c.itr, c.s)
		}
	}
}

// decideData processes one worklist item of the data-driven family.
func (c *cpuCtx) decideData(tid int, v int32) {
	g, s := c.g, c.s
	if s.Load(&c.status[v]) != undecided {
		return
	}
	if c.cfg.Flow == styles.Pull {
		for _, u := range g.Neighbors(v) {
			if s.Load(&c.status[u]) == in {
				s.Store(&c.status[v], out)
				c.pushNbrs(tid, v)
				return
			}
		}
		if localMax(g, v, c.readND) {
			s.Store(&c.status[v], in)
			c.pushNbrs(tid, v)
		}
	} else {
		if localMax(g, v, c.readND) {
			s.Store(&c.status[v], in)
			for _, u := range g.Neighbors(v) {
				if s.Max(&c.status[u], out) == undecided {
					// u just went Out: its undecided neighbors may have
					// become local maxima.
					c.pushNbrs(tid, u)
				}
			}
		}
	}
}

// runData is the worklist-driven family (no-duplicates only, Table 2):
// the worklist holds vertices to (re)examine, seeded with every vertex;
// a decision re-enqueues the undecided neighbors it may have unblocked.
// The stamped no-duplicates push bounds every round at n items, so both
// lists are checked out at the fixed capacity n+64 and never grow.
func (c *cpuCtx) runData(opt algo.Options) int32 {
	g := c.g
	capacity := int64(g.N) + 64
	// The out-list is pushed to from inside parallel regions, so it gets
	// per-worker reservation buffers; the in-list is only read there.
	c.wlIn = c.ar.Worklist(capacity, c.ex.Width())
	c.wlOut = c.ar.Worklist(capacity, c.ex.Width())
	c.stamp = scratch.Slice[int32](c.ar, int(g.N))
	for v := int32(0); v < g.N; v++ {
		c.wlIn.Push(v)
	}
	var iters int32
	for iters < opt.MaxIter && c.wlIn.Size() > 0 {
		iters++
		c.itr = iters
		c.ex.ForTID(c.wlIn.Size(), c.sched, c.dataBody)
		c.wlOut.Flush()
		c.wlIn.Reset()
		c.wlIn.Swap(c.wlOut)
	}
	return iters
}
