package mis

import (
	"indigo/internal/algo"
	"indigo/internal/algo/gpu"
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

const tpb = 256

// RunGPU executes the CUDA-model variant selected by cfg on device d and
// returns the result plus the simulated cost.
func RunGPU(d *gpusim.Device, g *graph.Graph, cfg styles.Config, opt algo.Options) (algo.Result, gpusim.Stats) {
	opt = opt.Defaults(g.N)
	dg := gpu.Upload(d, g)
	o := gpu.OpsOf(cfg)
	status := d.AllocI32(int64(g.N))
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) == 0 {
			status.Host()[v] = in
		}
	}
	var total gpusim.Stats
	var iters int32
	if cfg.Drive.IsDataDriven() {
		iters = gpuData(d, dg, cfg, opt, o, status, &total)
	} else if cfg.Det == styles.Deterministic {
		iters = gpuTopoDet(d, dg, cfg, opt, o, status, &total)
	} else {
		iters = gpuTopoNonDet(d, dg, cfg, opt, o, status, &total)
	}
	inSet := make([]bool, g.N)
	for v, s := range status.Host() {
		inSet[v] = s == in
	}
	return algo.Result{InSet: inSet, Iterations: iters}, total
}

// higher64 adapts the priority order to the int64 vertex ids kernels use.
func higher64(u int32, v int64) bool { return higher(u, int32(v)) }

// decideKernel builds one sweep: undecided vertices try to enter the set
// (push marks neighbors out; pull only writes self). rd is the status
// array decisions read; wr is the one they write (equal for the
// in-place non-deterministic variants).
func decideKernel(dg *gpu.DevGraph, cfg styles.Config, o gpu.Ops, rd, wr *gpusim.I32, changed *gpusim.I32, n int64, getItem func(w *gpusim.Warp, i int64) int64, onDecide func(w *gpusim.Warp, v int64, iter gpu.RangeFn)) gpusim.Kernel {
	if cfg.Gran == styles.BlockGran {
		return decideKernelBlock(dg, cfg, o, rd, wr, changed, n, getItem, onDecide)
	}
	pull := cfg.Flow == styles.Pull
	return gpu.ItemKernel(cfg, dg, n, getItem, func(w *gpusim.Warp, v int64, iter gpu.RangeFn) {
		if w.LdI32(rd, v) != undecided {
			return
		}
		beg := w.LdI64(dg.NbrIdx, v)
		end := w.LdI64(dg.NbrIdx, v+1)
		if pull {
			sawIn := false
			notMax := false
			iter(w, beg, end, func(_ int, _ int64, u int32) bool {
				su := o.Ld(w, rd, int64(u))
				if su == in {
					sawIn = true
					return false
				}
				if su != out && higher64(u, v) {
					notMax = true
				}
				return true
			})
			if sawIn {
				o.St(w, wr, v, out)
				w.StI32(changed, 0, 1)
				if onDecide != nil {
					onDecide(w, v, iter)
				}
			} else if !notMax {
				o.St(w, wr, v, in)
				w.StI32(changed, 0, 1)
				if onDecide != nil {
					onDecide(w, v, iter)
				}
			}
			return
		}
		// Push: enter if local max, then mark neighbors out.
		notMax := false
		iter(w, beg, end, func(_ int, _ int64, u int32) bool {
			if o.Ld(w, rd, int64(u)) != out && higher64(u, v) {
				notMax = true
				return false
			}
			return true
		})
		if notMax {
			return
		}
		o.St(w, wr, v, in)
		w.StI32(changed, 0, 1)
		iter(w, beg, end, func(_ int, _ int64, u int32) bool {
			// In the deterministic variant only undecided (old) statuses
			// may be overwritten; Max(out) is safe in both since In
			// neighbors are impossible.
			o.Max(w, wr, int64(u), out)
			return true
		})
		if onDecide != nil {
			onDecide(w, v, iter)
		}
	})
}

// decideKernelBlock is the block-granularity decide sweep: the warps of
// a block scan disjoint slices of the vertex's neighborhood, so the
// local-max and in-neighbor verdicts are combined in shared memory
// across two barriers before one warp commits the decision (and, in
// push flow, all warps mark their slices out after a third barrier).
// Every control path executes exactly three Syncs per item so the
// block's warps stay barrier-aligned.
func decideKernelBlock(dg *gpu.DevGraph, cfg styles.Config, o gpu.Ops, rd, wr *gpusim.I32, changed *gpusim.I32, n int64, getItem func(w *gpusim.Warp, i int64) int64, onDecide func(w *gpusim.Warp, v int64, iter gpu.RangeFn)) gpusim.Kernel {
	pull := cfg.Flow == styles.Pull
	persist := cfg.Persist == styles.Persistent
	const (
		slotStatus = 0
		slotNotMax = 1
		slotSawIn  = 2
		slotKind   = 3 // 0 none, 1 in, 2 out
	)
	loneIter := func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32) bool) {
		w.Op(2 * (end - beg))
		for e := beg; e < end; e++ {
			if !f(0, e, w.LdI32(dg.NbrList, e)) {
				return
			}
		}
	}
	return func(w *gpusim.Warp) {
		shared := w.SharedI64(3, 4)
		gpu.BlockItems(w, n, persist, func(i int64) {
			v := getItem(w, i)
			if w.WarpInBlock == 0 {
				w.StSharedI64(shared, slotStatus, int64(w.LdI32(rd, v)))
				w.StSharedI64(shared, slotNotMax, 0)
				w.StSharedI64(shared, slotSawIn, 0)
				w.StSharedI64(shared, slotKind, 0)
			}
			w.Sync()
			if w.SharedLdI64(shared, slotStatus) != int64(undecided) {
				w.Sync()
				w.Sync()
				return
			}
			beg := w.LdI64(dg.NbrIdx, v)
			end := w.LdI64(dg.NbrIdx, v+1)
			gpu.BlockRange(w, dg.NbrList, beg, end, func(_ int, _ int64, u int32) {
				su := o.Ld(w, rd, int64(u))
				if su == in {
					w.StSharedI64(shared, slotSawIn, 1)
				}
				if su != out && higher64(u, v) {
					w.StSharedI64(shared, slotNotMax, 1)
				}
			})
			w.Sync()
			if w.WarpInBlock == 0 {
				notMax := w.SharedLdI64(shared, slotNotMax) != 0
				sawIn := w.SharedLdI64(shared, slotSawIn) != 0
				switch {
				case pull && sawIn:
					o.St(w, wr, v, out)
					w.StI32(changed, 0, 1)
					w.StSharedI64(shared, slotKind, 2)
				case !notMax:
					o.St(w, wr, v, in)
					w.StI32(changed, 0, 1)
					w.StSharedI64(shared, slotKind, 1)
				}
			}
			w.Sync()
			kind := w.SharedLdI64(shared, slotKind)
			if !pull && kind == 1 {
				gpu.BlockRange(w, dg.NbrList, beg, end, func(_ int, _ int64, u int32) {
					o.Max(w, wr, int64(u), out)
				})
			}
			if kind != 0 && onDecide != nil && w.WarpInBlock == 0 {
				onDecide(w, v, loneIter)
			}
		})
	}
}

func gpuTopoNonDet(d *gpusim.Device, dg *gpu.DevGraph, cfg styles.Config, opt algo.Options, o gpu.Ops, status *gpusim.I32, total *gpusim.Stats) int32 {
	changed := d.AllocI32(1)
	n := int64(dg.N)
	items := n
	getItem := gpu.Identity
	if cfg.Iterate == styles.EdgeBased {
		items = dg.M
		getItem = func(w *gpusim.Warp, i int64) int64 { return int64(w.LdI32(dg.Src, i)) }
	}
	kern := decideKernel(dg, cfg, o, status, status, changed, items, getItem, nil)
	grid := gpu.Grid(d, cfg, items, tpb)
	barrier := cfg.Gran == styles.BlockGran
	var iters int32
	for iters < opt.MaxIter {
		iters++
		changed.Host()[0] = 0
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: barrier}, kern))
		if changed.Host()[0] == 0 {
			break
		}
	}
	return iters
}

func gpuTopoDet(d *gpusim.Device, dg *gpu.DevGraph, cfg styles.Config, opt algo.Options, o gpu.Ops, status *gpusim.I32, total *gpusim.Stats) int32 {
	changed := d.AllocI32(1)
	next := d.AllocI32(int64(dg.N))
	n := int64(dg.N)
	items := n
	getItem := gpu.Identity
	if cfg.Iterate == styles.EdgeBased {
		items = dg.M
		getItem = func(w *gpusim.Warp, i int64) int64 { return int64(w.LdI32(dg.Src, i)) }
	}
	grid := gpu.Grid(d, cfg, items, tpb)
	var iters int32
	for iters < opt.MaxIter {
		iters++
		total.Add(gpu.CopyI32(d, next, status))
		changed.Host()[0] = 0
		kern := decideKernel(dg, cfg, o, status, next, changed, items, getItem, nil)
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: cfg.Gran == styles.BlockGran}, kern))
		gpusim.SwapI32(status, next)
		if changed.Host()[0] == 0 {
			break
		}
	}
	return iters
}

func gpuData(d *gpusim.Device, dg *gpu.DevGraph, cfg styles.Config, opt algo.Options, o gpu.Ops, status *gpusim.I32, total *gpusim.Stats) int32 {
	n := int64(dg.N)
	wlIn := gpu.NewWorklist(d, n+64)
	wlOut := gpu.NewWorklist(d, n+64)
	stamp := d.AllocI32(n)
	changed := d.AllocI32(1)
	for v := int64(0); v < n; v++ {
		wlIn.Items.Host()[v] = int32(v)
	}
	wlIn.Size.Host()[0] = int32(n)

	var iters int32
	for iters < opt.MaxIter {
		size := int64(wlIn.HostSize())
		if size == 0 {
			break
		}
		iters++
		itr := iters
		wlOut.HostReset()
		getItem := func(w *gpusim.Warp, i int64) int64 { return int64(w.LdI32(wlIn.Items, i)) }
		// When a vertex decides, its (and in push flow, its newly-outed
		// neighbors') undecided neighborhood is re-enqueued.
		pushUndecidedNbrs := func(w *gpusim.Warp, x int64) {
			beg := w.LdI64(dg.NbrIdx, x)
			end := w.LdI64(dg.NbrIdx, x+1)
			w.Op(2 * (end - beg))
			for e := beg; e < end; e++ {
				u := w.LdI32(dg.NbrList, e)
				if o.Ld(w, status, int64(u)) == undecided {
					wlOut.PushUnique(w, o, stamp, itr, u)
				}
			}
		}
		onDecide := func(w *gpusim.Warp, v int64, iter gpu.RangeFn) {
			if cfg.Flow == styles.Pull {
				pushUndecidedNbrs(w, v)
				return
			}
			// Push flow: v entered the set and marked neighbors out;
			// those out neighbors' undecided neighbors may be unblocked.
			beg := w.LdI64(dg.NbrIdx, v)
			end := w.LdI64(dg.NbrIdx, v+1)
			w.Op(2 * (end - beg))
			for e := beg; e < end; e++ {
				pushUndecidedNbrs(w, int64(w.LdI32(dg.NbrList, e)))
			}
		}
		kern := decideKernel(dg, cfg, o, status, status, changed, size, getItem, onDecide)
		grid := gpu.Grid(d, cfg, size, tpb)
		total.Add(d.Launch(gpusim.LaunchCfg{Blocks: grid, ThreadsPerBlock: tpb, NeedsBarrier: cfg.Gran == styles.BlockGran}, kern))
		wlIn, wlOut = wlOut, wlIn
	}
	return iters
}
