package gpu

import (
	"testing"

	"indigo/internal/gen"
	"indigo/internal/gpusim"
	"indigo/internal/styles"
)

func dev() *gpusim.Device { return gpusim.New(gpusim.RTXSim()) }

func TestUploadRoundTrip(t *testing.T) {
	g := gen.Generate(gen.InputRoad, gen.Tiny)
	dg := Upload(dev(), g)
	if dg.N != g.N || dg.M != g.M() {
		t.Fatalf("shape n=%d m=%d, want %d, %d", dg.N, dg.M, g.N, g.M())
	}
	for v := int32(0); v < g.N; v++ {
		if dg.NbrIdx.Host()[v] != g.NbrIdx[v] {
			t.Fatalf("NbrIdx[%d] differs", v)
		}
	}
	for e := int64(0); e < g.M(); e++ {
		if dg.NbrList.Host()[e] != g.NbrList[e] || dg.Src.Host()[e] != g.Src[e] ||
			dg.Dst.Host()[e] != g.Dst[e] || dg.Weights.Host()[e] != g.Weights[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
}

func TestOpsSelectsAtomicFlavor(t *testing.T) {
	d := dev()
	a := d.AllocI32(1)
	a.Host()[0] = 10
	classic := OpsOf(styles.Config{Atomics: styles.ClassicAtomic})
	cuda := OpsOf(styles.Config{Atomics: styles.CudaAtomic})
	var classicCost, cudaCost int64
	d.Launch(gpusim.LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
		before := w.Cycles()
		classic.Min(w, a, 0, 5)
		classicCost = w.Cycles() - before
		before = w.Cycles()
		cuda.Min(w, a, 0, 3)
		cudaCost = w.Cycles() - before
	})
	if a.Host()[0] != 3 {
		t.Fatalf("min result = %d, want 3", a.Host()[0])
	}
	if cudaCost <= classicCost {
		t.Errorf("cuda atomic cost %d not above classic %d", cudaCost, classicCost)
	}
}

func TestOpsFunctional(t *testing.T) {
	d := dev()
	a := d.AllocI32(4)
	cnt := d.AllocI64(1)
	for _, o := range []Ops{{Cuda: false}, {Cuda: true}} {
		a.Host()[0], a.Host()[1], a.Host()[2], a.Host()[3] = 10, 10, 0, 0
		cnt.Host()[0] = 0
		d.Launch(gpusim.LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
			o.Min(w, a, 0, 4)
			o.Max(w, a, 1, 40)
			o.Add(w, a, 2, 5)
			o.St(w, a, 3, 9)
			o.AddI64(w, cnt, 0, 7)
			if o.Ld(w, a, 3) != 9 {
				t.Error("Ld after St wrong")
			}
		})
		if a.Host()[0] != 4 || a.Host()[1] != 40 || a.Host()[2] != 5 || cnt.Host()[0] != 7 {
			t.Fatalf("ops results wrong (cuda=%v): %v %v", o.Cuda, a.Host(), cnt.Host())
		}
	}
}

func TestGridSizing(t *testing.T) {
	d := dev()
	n := int64(10_000)
	cases := []struct {
		cfg  styles.Config
		want int64
	}{
		{styles.Config{Gran: styles.ThreadGran}, gpusim.GridSize(n, 256)},
		{styles.Config{Gran: styles.WarpGran}, gpusim.GridSize(n, 8)},
		{styles.Config{Gran: styles.BlockGran}, n},
		{styles.Config{Gran: styles.ThreadGran, Persist: styles.Persistent}, d.PersistentGrid()},
	}
	for _, c := range cases {
		if got := Grid(d, c.cfg, n, 256); got != c.want {
			t.Errorf("Grid(%v/%v) = %d, want %d", c.cfg.Gran, c.cfg.Persist, got, c.want)
		}
	}
}

// TestItemKernelCoverage checks that every granularity processes each
// item exactly once, topology-driven.
func TestItemKernelCoverage(t *testing.T) {
	g := gen.Generate(gen.InputRMAT, gen.Tiny)
	for _, gran := range []styles.Gran{styles.ThreadGran, styles.WarpGran, styles.BlockGran} {
		for _, persist := range []styles.Persist{styles.NonPersistent, styles.Persistent} {
			d := dev()
			dg := Upload(d, g)
			cfg := styles.Config{Gran: gran, Persist: persist}
			hits := d.AllocI32(int64(g.N))
			kern := ItemKernel(cfg, dg, int64(g.N), Identity, func(w *gpusim.Warp, v int64, iter RangeFn) {
				// Only one warp of a block-granularity block counts the
				// visit; the others cooperate on the range.
				if gran != styles.BlockGran || w.WarpInBlock == 0 {
					w.AtomicAddI32(hits, v, 1)
				}
			})
			d.Launch(gpusim.LaunchCfg{Blocks: Grid(d, cfg, int64(g.N), 256), ThreadsPerBlock: 256}, kern)
			for v, h := range hits.Host() {
				if h != 1 {
					t.Fatalf("gran=%v persist=%v: item %d visited %d times", gran, persist, v, h)
				}
			}
		}
	}
}

// TestIterForVisitsAllNeighbors checks the cooperative range walkers.
func TestIterForVisitsAllNeighbors(t *testing.T) {
	g := gen.Generate(gen.InputCoPaper, gen.Tiny)
	v := int32(0)
	for d := int32(1); d < g.N; d++ {
		if g.Degree(d) > g.Degree(v) {
			v = d
		}
	}
	want := g.Degree(v)
	for _, gran := range []styles.Gran{styles.ThreadGran, styles.WarpGran, styles.BlockGran} {
		d := dev()
		dg := Upload(d, g)
		cfg := styles.Config{Gran: gran}
		count := d.AllocI64(1)
		iter := IterFor(cfg, dg)
		d.Launch(gpusim.LaunchCfg{Blocks: 1, ThreadsPerBlock: 256}, func(w *gpusim.Warp) {
			if gran != styles.BlockGran && w.WarpInBlock != 0 {
				return
			}
			iter(w, dg.NbrIdx.Host()[v], dg.NbrIdx.Host()[v+1], func(_ int, _ int64, u int32) bool {
				w.AtomicAddI64(count, 0, 1)
				return true
			})
		})
		if got := count.Host()[0]; got != want {
			t.Errorf("gran=%v visited %d neighbors, want %d", gran, got, want)
		}
	}
}

func TestIterForEarlyExit(t *testing.T) {
	g := gen.Generate(gen.InputSocial, gen.Tiny)
	d := dev()
	dg := Upload(d, g)
	iter := IterFor(styles.Config{Gran: styles.WarpGran}, dg)
	var visited int64
	d.Launch(gpusim.LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
		iter(w, 0, 100, func(_ int, _ int64, _ int32) bool {
			visited++
			return visited < 5
		})
	})
	if visited != 5 {
		t.Errorf("early exit visited %d, want 5", visited)
	}
}

func TestWorklistPushUnique(t *testing.T) {
	d := dev()
	wl := NewWorklist(d, 100)
	stamp := d.AllocI32(10)
	o := Ops{}
	d.Launch(gpusim.LaunchCfg{Blocks: 2, ThreadsPerBlock: 64}, func(w *gpusim.Warp) {
		for l := 0; l < gpusim.WarpSize; l++ {
			wl.PushUnique(w, o, stamp, 1, int32(w.Gidx(l)%10))
		}
	})
	if got := wl.HostSize(); got != 10 {
		t.Fatalf("unique pushes = %d, want 10", got)
	}
	wl.HostReset()
	if wl.HostSize() != 0 {
		t.Fatal("reset failed")
	}
	// A later iteration may push the same vertices again.
	d.Launch(gpusim.LaunchCfg{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
		wl.PushUnique(w, o, stamp, 2, 3)
		wl.PushUnique(w, o, stamp, 2, 3)
	})
	if got := wl.HostSize(); got != 1 {
		t.Fatalf("iteration-2 pushes = %d, want 1", got)
	}
}

func TestCopyI32(t *testing.T) {
	d := dev()
	src := d.AllocI32(1000)
	for i := range src.Host() {
		src.Host()[i] = int32(i * 3)
	}
	dst := d.AllocI32(1000)
	st := CopyI32(d, dst, src)
	if st.Cycles <= 0 {
		t.Error("copy reported no cost")
	}
	for i := range dst.Host() {
		if dst.Host()[i] != int32(i*3) {
			t.Fatalf("dst[%d] = %d", i, dst.Host()[i])
		}
	}
}
