// Package gpu provides the pieces shared by the GPU kernel families:
// the device-resident graph, the atomics wrapper that realizes the
// Atomic vs CudaAtomic style (§2.9), the work-assignment helpers that
// realize granularity (§2.8) and persistence (§2.7), and device
// worklists (§2.3).
package gpu

import (
	"indigo/internal/gpusim"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// DevGraph is a graph uploaded to a simulated device, in both CSR and
// COO form (§4.2).
type DevGraph struct {
	N       int32
	M       int64
	NbrIdx  *gpusim.I64
	NbrList *gpusim.I32
	Weights *gpusim.I32
	Src     *gpusim.I32
	Dst     *gpusim.I32
}

// Upload copies g to the device.
func Upload(d *gpusim.Device, g *graph.Graph) *DevGraph {
	return &DevGraph{
		N:       g.N,
		M:       g.M(),
		NbrIdx:  d.UploadI64(g.NbrIdx),
		NbrList: d.UploadI32(g.NbrList),
		Weights: d.UploadI32(g.Weights),
		Src:     d.UploadI32(g.Src),
		Dst:     d.UploadI32(g.Dst),
	}
}

// Ops selects between classic atomics and default CudaAtomics for every
// shared-data access of a kernel. In the CudaAtomic style, plain loads
// and stores of shared data also go through cuda::atomic load()/store()
// (§5.1 explains this is why those variants slow down so much).
type Ops struct {
	Cuda bool
}

// OpsOf returns the access wrapper for a config.
func OpsOf(cfg styles.Config) Ops {
	return Ops{Cuda: cfg.Atomics == styles.CudaAtomic}
}

// Ld reads shared location a[i].
func (o Ops) Ld(w *gpusim.Warp, a *gpusim.I32, i int64) int32 {
	if o.Cuda {
		return w.CudaLdI32(a, i)
	}
	return w.LdI32(a, i)
}

// St writes shared location a[i].
func (o Ops) St(w *gpusim.Warp, a *gpusim.I32, i int64, v int32) {
	if o.Cuda {
		w.CudaStI32(a, i, v)
	} else {
		w.StI32(a, i, v)
	}
}

// Min atomically lowers a[i] and returns the old value.
func (o Ops) Min(w *gpusim.Warp, a *gpusim.I32, i int64, v int32) int32 {
	if o.Cuda {
		return w.CudaAtomicMinI32(a, i, v)
	}
	return w.AtomicMinI32(a, i, v)
}

// Max atomically raises a[i] and returns the old value.
func (o Ops) Max(w *gpusim.Warp, a *gpusim.I32, i int64, v int32) int32 {
	if o.Cuda {
		return w.CudaAtomicMaxI32(a, i, v)
	}
	return w.AtomicMaxI32(a, i, v)
}

// Add atomically adds to a[i] and returns the old value.
func (o Ops) Add(w *gpusim.Warp, a *gpusim.I32, i int64, v int32) int32 {
	if o.Cuda {
		return w.CudaAtomicAddI32(a, i, v)
	}
	return w.AtomicAddI32(a, i, v)
}

// AddI64 atomically adds to a[i] and returns the old value.
func (o Ops) AddI64(w *gpusim.Warp, a *gpusim.I64, i int64, v int64) int64 {
	if o.Cuda {
		return w.CudaAtomicAddI64(a, i, v)
	}
	return w.AtomicAddI64(a, i, v)
}

// Grid returns the launch grid for n work items under the configured
// granularity and persistence, with the given threads per block.
func Grid(d *gpusim.Device, cfg styles.Config, n int64, tpb int) int64 {
	if cfg.Persist == styles.Persistent {
		return d.PersistentGrid()
	}
	switch cfg.Gran {
	case styles.ThreadGran:
		return gpusim.GridSize(n, int64(tpb))
	case styles.WarpGran:
		return gpusim.GridSize(n, int64(tpb/gpusim.WarpSize))
	case styles.BlockGran:
		return gpusim.GridSize(n, 1)
	}
	panic("gpu.Grid: unknown granularity")
}

// ThreadItems hands the warp its thread-granularity items in batches of
// up to 32 contiguous ids (one per lane), looping grid-stride when
// persistent (Listing 7a) and once otherwise (Listing 7b).
func ThreadItems(w *gpusim.Warp, n int64, persistent bool, f func(base int64, cnt int)) {
	if persistent {
		stride := w.TotalThreads()
		for base := w.Gidx(0); base < n; base += stride {
			f(base, int(min64(int64(gpusim.WarpSize), n-base)))
		}
		return
	}
	if base := w.Gidx(0); base < n {
		f(base, int(min64(int64(gpusim.WarpSize), n-base)))
	}
}

// WarpItems hands the warp whole items (one vertex per warp, §2.8).
func WarpItems(w *gpusim.Warp, n int64, persistent bool, f func(item int64)) {
	if persistent {
		for it := w.GlobalWarp(); it < n; it += w.TotalWarps() {
			f(it)
		}
		return
	}
	if it := w.GlobalWarp(); it < n {
		f(it)
	}
}

// BlockItems hands every warp of a block the block's items (one vertex
// per block, §2.8); the warps cooperate on each item's neighbor range.
func BlockItems(w *gpusim.Warp, n int64, persistent bool, f func(item int64)) {
	if persistent {
		for it := w.BlockIdx; it < n; it += w.GridDim {
			f(it)
		}
		return
	}
	if it := w.BlockIdx; it < n {
		f(it)
	}
}

// WarpRange iterates [beg, end) cooperatively across the warp's lanes in
// coalesced 32-element chunks (Listing 8b): chunk loads the neighbor ids
// and calls f per element.
func WarpRange(w *gpusim.Warp, list *gpusim.I32, beg, end int64, f func(lane int, e int64, v int32)) {
	for base := beg; base < end; base += gpusim.WarpSize {
		cnt := int(min64(int64(gpusim.WarpSize), end-base))
		vals := w.CoalLdI32(list, base, cnt)
		w.Op(2)
		for l := 0; l < cnt; l++ {
			f(l, base+int64(l), vals[l])
		}
	}
}

// BlockRange iterates [beg, end) cooperatively across all warps of the
// block (Listing 8c): this warp takes every warpsPerBlock-th chunk.
func BlockRange(w *gpusim.Warp, list *gpusim.I32, beg, end int64, f func(lane int, e int64, v int32)) {
	warps := int64(w.BlockDim / gpusim.WarpSize)
	for base := beg + int64(w.WarpInBlock)*gpusim.WarpSize; base < end; base += warps * gpusim.WarpSize {
		cnt := int(min64(int64(gpusim.WarpSize), end-base))
		vals := w.CoalLdI32(list, base, cnt)
		w.Op(2)
		for l := 0; l < cnt; l++ {
			f(l, base+int64(l), vals[l])
		}
	}
}

// CopyI32 copies src to dst on the device with a coalesced kernel (used
// by the deterministic double-buffer variants, §2.6) and returns its
// cost.
func CopyI32(d *gpusim.Device, dst, src *gpusim.I32) gpusim.Stats {
	n := src.Len()
	return d.Launch(gpusim.LaunchCfg{Blocks: gpusim.GridSize(n, 256)}, func(w *gpusim.Warp) {
		base := w.Gidx(0)
		if base >= n {
			return
		}
		cnt := int(min64(int64(gpusim.WarpSize), n-base))
		vals := w.CoalLdI32(src, base, cnt)
		w.CoalStI32(dst, base, cnt, &vals)
	})
}

// Worklist is a device worklist: an item array and an atomically bumped
// size (Listing 3a), plus the iteration-stamp array for the
// no-duplicates style (Listing 3b).
type Worklist struct {
	Items *gpusim.I32
	Size  *gpusim.I32
}

// NewWorklist allocates a device worklist.
func NewWorklist(d *gpusim.Device, capacity int64) *Worklist {
	return &Worklist{Items: d.AllocI32(capacity), Size: d.AllocI32(1)}
}

// Push appends v, allowing duplicates (Listing 3a).
func (wl *Worklist) Push(w *gpusim.Warp, o Ops, v int32) {
	idx := o.Add(w, wl.Size, 0, 1)
	w.StI32(wl.Items, int64(idx), v)
}

// PushUnique appends v only once per iteration, guarded by an atomicMax
// on the stamp array (Listing 3b).
func (wl *Worklist) PushUnique(w *gpusim.Warp, o Ops, stamp *gpusim.I32, itr, v int32) {
	if o.Max(w, stamp, int64(v), itr) != itr {
		wl.Push(w, o, v)
	}
}

// HostSize reads the size from the host between launches.
func (wl *Worklist) HostSize() int32 { return wl.Size.Host()[0] }

// HostReset empties the list from the host between launches.
func (wl *Worklist) HostReset() { wl.Size.Host()[0] = 0 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
