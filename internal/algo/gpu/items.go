package gpu

import (
	"indigo/internal/gpusim"
	"indigo/internal/styles"
)

// RangeFn walks a CSR slot range cooperatively at some granularity,
// loading the neighbor ids and invoking f per element until f returns
// false (early exit).
type RangeFn func(w *gpusim.Warp, beg, end int64, f func(lane int, e int64, u int32) bool)

// IterFor returns the neighbor-range iterator matching cfg's
// granularity: a single divergent lane per item for thread granularity,
// the warp's lanes for warp granularity, and all the block's warps for
// block granularity (§2.8).
func IterFor(cfg styles.Config, dg *DevGraph) RangeFn {
	switch cfg.Gran {
	case styles.ThreadGran:
		return func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32) bool) {
			w.Op(2 * (end - beg))
			for e := beg; e < end; e++ {
				if !f(0, e, w.LdI32(dg.NbrList, e)) {
					return
				}
			}
		}
	case styles.WarpGran:
		return func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32) bool) {
			for base := beg; base < end; base += gpusim.WarpSize {
				cnt := int(min64(int64(gpusim.WarpSize), end-base))
				vals := w.CoalLdI32(dg.NbrList, base, cnt)
				w.Op(2)
				for l := 0; l < cnt; l++ {
					if !f(l, base+int64(l), vals[l]) {
						return
					}
				}
			}
		}
	default: // BlockGran
		return func(w *gpusim.Warp, beg, end int64, f func(int, int64, int32) bool) {
			warps := int64(w.BlockDim / gpusim.WarpSize)
			for base := beg + int64(w.WarpInBlock)*gpusim.WarpSize; base < end; base += warps * gpusim.WarpSize {
				cnt := int(min64(int64(gpusim.WarpSize), end-base))
				vals := w.CoalLdI32(dg.NbrList, base, cnt)
				w.Op(2)
				for l := 0; l < cnt; l++ {
					if !f(l, base+int64(l), vals[l]) {
						return
					}
				}
			}
		}
	}
}

// ItemKernel builds a kernel that processes items [0, n) at cfg's
// granularity and persistence. getItem maps an item index to a vertex
// (identity for topology-driven sweeps, a worklist load for data-driven
// ones); handle processes one vertex with the matching iterator.
func ItemKernel(cfg styles.Config, dg *DevGraph, n int64, getItem func(w *gpusim.Warp, i int64) int64, handle func(w *gpusim.Warp, v int64, iter RangeFn)) gpusim.Kernel {
	persist := cfg.Persist == styles.Persistent
	iter := IterFor(cfg, dg)
	switch cfg.Gran {
	case styles.ThreadGran:
		return func(w *gpusim.Warp) {
			ThreadItems(w, n, persist, func(base int64, cnt int) {
				for l := 0; l < cnt; l++ {
					handle(w, getItem(w, base+int64(l)), iter)
				}
			})
		}
	case styles.WarpGran:
		return func(w *gpusim.Warp) {
			WarpItems(w, n, persist, func(i int64) {
				handle(w, getItem(w, i), iter)
			})
		}
	default: // BlockGran
		return func(w *gpusim.Warp) {
			BlockItems(w, n, persist, func(i int64) {
				handle(w, getItem(w, i), iter)
			})
		}
	}
}

// Identity is the topology-driven getItem.
func Identity(w *gpusim.Warp, i int64) int64 { return i }
