package bfs

import (
	"testing"

	"indigo/internal/graph"
)

func path(n int32) *graph.Graph {
	b := graph.NewBuilder("path", n)
	for v := int32(0); v+1 < n; v++ {
		b.AddEdge(v, v+1, 7)
	}
	return b.Build()
}

func TestSerialPath(t *testing.T) {
	g := path(6)
	level := Serial(g, 0)
	for v := int32(0); v < 6; v++ {
		if level[v] != v {
			t.Errorf("level[%d] = %d, want %d", v, level[v], v)
		}
	}
	mid := Serial(g, 3)
	want := []int32{3, 2, 1, 0, 1, 2}
	for v, w := range want {
		if mid[v] != w {
			t.Errorf("from 3: level[%d] = %d, want %d", v, mid[v], w)
		}
	}
}

func TestSerialUnreachable(t *testing.T) {
	b := graph.NewBuilder("two", 4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	level := Serial(b.Build(), 0)
	if level[0] != 0 || level[1] != 1 {
		t.Errorf("component levels wrong: %v", level)
	}
	if level[2] != graph.Inf || level[3] != graph.Inf {
		t.Errorf("unreachable vertices have finite levels: %v", level)
	}
}

func TestSerialIgnoresWeights(t *testing.T) {
	// BFS counts hops: a heavy short path beats a light long one.
	b := graph.NewBuilder("wb", 4)
	b.AddEdge(0, 3, 100) // 1 hop, heavy
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1) // 3 hops, light
	level := Serial(b.Build(), 0)
	if level[3] != 1 {
		t.Errorf("level[3] = %d, want 1 (hops, not weights)", level[3])
	}
}
