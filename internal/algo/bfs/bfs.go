// Package bfs implements the breadth-first-search family: per-vertex hop
// counts from a source vertex, in every applicable style combination.
package bfs

import (
	"indigo/internal/algo"
	"indigo/internal/algo/relax"
	"indigo/internal/graph"
	"indigo/internal/styles"
)

// Serial computes hop distances from src with a textbook queue BFS; it
// is the verification reference (§4.1).
func Serial(g *graph.Graph, src int32) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = graph.Inf
	}
	level[src] = 0
	queue := make([]int32, 0, g.N)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if level[u] == graph.Inf {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// problem adapts BFS to the shared min-relaxation engine: the candidate
// level of an edge's destination is its source's level plus one.
func problem(src int32) relax.Problem[int32] {
	return relax.Problem[int32]{
		Init: func(v int32) int32 {
			if v == src {
				return 0
			}
			return graph.Inf
		},
		Cand:  func(val int32, e int64) int32 { return val + 1 },
		Seeds: func(g *graph.Graph) []int32 { return []int32{src} },
	}
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	dist, iters := relax.Run(g, cfg, opt, problem(opt.Source))
	return algo.Result{Dist: dist, Iterations: iters}
}
