// Package bfs implements the breadth-first-search family: per-vertex hop
// counts from a source vertex, in every applicable style combination.
package bfs

import (
	"indigo/internal/algo"
	"indigo/internal/algo/relax"
	"indigo/internal/graph"
	"indigo/internal/scratch"
	"indigo/internal/styles"
)

// Serial computes hop distances from src with a textbook queue BFS; it
// is the verification reference (§4.1).
func Serial(g *graph.Graph, src int32) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = graph.Inf
	}
	level[src] = 0
	queue := make([]int32, 0, g.N)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if level[u] == graph.Inf {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// cpuCtx adapts BFS to the shared min-relaxation engine: the candidate
// level of an edge's destination is its source's level plus one. The
// context is cached on the run's scratch arena so the problem closures
// are built once and reused across runs — they capture only the context
// pointer and read the run's source through it.
type cpuCtx struct {
	src  int32
	seed [1]int32
	prob relax.Problem[int32]
}

func (c *cpuCtx) problem() relax.Problem[int32] {
	if c.prob.Cand == nil {
		c.prob = relax.Problem[int32]{
			Init: func(v int32) int32 {
				if v == c.src {
					return 0
				}
				return graph.Inf
			},
			Cand: func(val int32, e int64) int32 { return val + 1 },
			Seeds: func(g *graph.Graph) []int32 {
				c.seed[0] = c.src
				return c.seed[:]
			},
		}
	}
	return c.prob
}

// RunCPU executes the CPU variant selected by cfg.
func RunCPU(g *graph.Graph, cfg styles.Config, opt algo.Options) algo.Result {
	opt = opt.Defaults(g.N)
	c := scratch.Of[cpuCtx](opt.Scratch)
	c.src = opt.Source
	dist, iters := relax.Run(g, cfg, opt, c.problem())
	return algo.Result{Dist: dist, Iterations: iters}
}
