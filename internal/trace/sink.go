package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
)

// The JSONL wire form of one journal record: a completed span renders
// as a "b" line at its begin sequence and an "e" line at its end
// sequence; a point renders as a single "p" line —
//
//	{"ev":"b","seq":2,"trace":1,"span":2,"parent":1,"name":"sweep.task","t":1667363,"attrs":{"input":"road"}}
//	{"ev":"e","seq":9,"trace":1,"span":2,"t":1785199,"dur_ns":117836}
//
// Interleaving the two halves by sequence keeps the journal well
// nested (a parent opens before its children and closes after them)
// and trivially checkable: every "e" must close the innermost matching
// open "b" — see CheckJournal. Lines are rendered by hand (append into
// a reused buffer) rather than through encoding/json: the sink sits on
// the per-run flush path, where reflection and a map allocation per
// line are the dominant cost of live tracing.
type rec struct {
	ev  byte // 'b', 'e', or 'p'
	seq uint64
	ei  int // index into the flush's events
}

// JSONLSink renders flushed events as a JSONL trace journal — the
// -trace file of indigo2 run/experiments/tune.
type JSONLSink struct {
	w    *bufio.Writer
	c    io.Closer // nil when the writer is not ours to close
	recs []rec     // reused staging
	buf  []byte    // reused render buffer
	err  error     // first write error, latched
	mu   sync.Mutex
}

// NewJSONLSink writes the journal to w; Close flushes but does not
// close w unless it is an io.Closer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Write renders the flush as interleaved b/e/p lines ordered by
// sequence number.
func (s *JSONLSink) Write(events []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.recs[:0]
	for i, e := range events {
		if e.Point {
			recs = append(recs, rec{'p', e.BeginSeq, i})
			continue
		}
		recs = append(recs, rec{'b', e.BeginSeq, i}, rec{'e', e.EndSeq, i})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	buf := s.buf[:0]
	for _, r := range recs {
		buf = appendLine(buf, r, &events[r.ei])
	}
	if _, err := s.w.Write(buf); err != nil && s.err == nil {
		s.err = err
	}
	s.recs = recs
	s.buf = buf
}

// appendLine renders one journal line. Fields render in a fixed order;
// zero parent/dur, empty name, and empty attrs are omitted, matching
// what an encoding/json round trip of the wire form would produce.
func appendLine(buf []byte, r rec, e *Event) []byte {
	buf = append(buf, `{"ev":"`...)
	buf = append(buf, r.ev)
	buf = append(buf, `","seq":`...)
	buf = strconv.AppendUint(buf, r.seq, 10)
	buf = append(buf, `,"trace":`...)
	buf = strconv.AppendUint(buf, e.Trace, 10)
	buf = append(buf, `,"span":`...)
	buf = strconv.AppendUint(buf, e.Span, 10)
	if r.ev != 'e' {
		if e.Parent != 0 {
			buf = append(buf, `,"parent":`...)
			buf = strconv.AppendUint(buf, e.Parent, 10)
		}
		if e.Name != "" {
			buf = append(buf, `,"name":`...)
			buf = appendJSONString(buf, e.Name)
		}
	}
	t := e.Start
	if r.ev == 'e' {
		t = e.Start + e.Dur
	}
	buf = append(buf, `,"t":`...)
	buf = strconv.AppendInt(buf, t, 10)
	if r.ev == 'e' && e.Dur != 0 {
		buf = append(buf, `,"dur_ns":`...)
		buf = strconv.AppendInt(buf, e.Dur, 10)
	}
	if r.ev != 'e' && len(e.Attrs) > 0 {
		buf = append(buf, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, a.Key)
			buf = append(buf, ':')
			buf = appendJSONString(buf, a.Val)
		}
		buf = append(buf, '}')
	}
	return append(buf, "}\n"...)
}

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes, and control characters. Span names and attr values are
// plain ASCII in practice; the slow path exists for correctness, not
// speed.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c >= 0x20:
			buf = append(buf, c)
		case c == '\n':
			buf = append(buf, `\n`...)
		case c == '\t':
			buf = append(buf, `\t`...)
		case c == '\r':
			buf = append(buf, `\r`...)
		default:
			const hex = "0123456789abcdef"
			buf = append(buf, `\u00`...)
			buf = append(buf, hex[c>>4], hex[c&0xf])
		}
	}
	return append(buf, '"')
}

// Close flushes the buffered journal (and closes the underlying file,
// when the sink owns one).
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// MemSink retains recent traces in memory for the serve endpoint
// GET /v1/trace/{id}: a bounded FIFO over trace ids, each trace capped
// at MaxEvents (overflow is counted, not silently absorbed).
type MemSink struct {
	mu        sync.Mutex
	maxTraces int
	maxEvents int
	traces    map[uint64][]Event
	truncated map[uint64]int
	order     []uint64 // insertion order, for eviction
}

// NewMemSink retains up to maxTraces traces of up to maxEvents events
// each; non-positive arguments select 256 traces / 4096 events.
func NewMemSink(maxTraces, maxEvents int) *MemSink {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	if maxEvents <= 0 {
		maxEvents = 4096
	}
	return &MemSink{
		maxTraces: maxTraces,
		maxEvents: maxEvents,
		traces:    make(map[uint64][]Event),
		truncated: make(map[uint64]int),
	}
}

// Write files each event under its trace, evicting the oldest trace
// past the retention cap.
func (m *MemSink) Write(events []Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range events {
		evs, ok := m.traces[e.Trace]
		if !ok {
			if len(m.order) >= m.maxTraces {
				victim := m.order[0]
				m.order = m.order[1:]
				delete(m.traces, victim)
				delete(m.truncated, victim)
			}
			m.order = append(m.order, e.Trace)
		}
		if len(evs) >= m.maxEvents {
			m.truncated[e.Trace]++
			continue
		}
		m.traces[e.Trace] = append(evs, e)
	}
}

// Trace returns a copy of the retained events of one trace (ordered by
// begin sequence), the count of events dropped past the per-trace cap,
// and whether the trace is known.
func (m *MemSink) Trace(id uint64) (events []Event, truncated int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	evs, ok := m.traces[id]
	if !ok {
		return nil, 0, false
	}
	out := make([]Event, len(evs))
	copy(out, evs)
	sortEvents(out)
	return out, m.truncated[id], true
}

// Len returns the number of retained traces.
func (m *MemSink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.traces)
}

// Close implements Sink; retained traces stay readable.
func (m *MemSink) Close() error { return nil }
